package experiments

import (
	"fmt"
	"io"

	"vbmo/internal/energy"
	"vbmo/internal/stats"
)

// Figure5 prints the §5.1 performance comparison: IPC of each replay
// configuration normalized to the baseline (paper Figure 5), for the
// uniprocessor and multiprocessor suites. MP rows carry 95% confidence
// half-widths on the normalized value.
func Figure5(w io.Writer, m *Matrix) {
	uni, mp := m.workloadNames()
	cols := MachineNames[1:] // normalized to baseline
	section := func(title string, names []string, mpSection bool) {
		writeHeader(w, title, append([]string{"base-IPC"}, cols...))
		geo := make(map[string][]float64)
		for _, work := range names {
			base := m.Get("baseline", work)
			if base == nil || base.IPC.N() == 0 {
				continue
			}
			fmt.Fprintf(w, "%-12s %15.3f", work, base.IPC.Mean())
			for _, mc := range cols {
				pt := m.Get(mc, work)
				if pt == nil || pt.IPC.N() == 0 {
					fmt.Fprintf(w, " %15s", "-")
					continue
				}
				norm := pt.IPC.Mean() / base.IPC.Mean()
				geo[mc] = append(geo[mc], norm)
				if mpSection && m.Cfg.Samples > 1 {
					ci := pt.IPC.CI95() / base.IPC.Mean()
					fmt.Fprintf(w, "   %6.3f±%5.3f", norm, ci)
				} else {
					fmt.Fprintf(w, " %15.3f", norm)
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-12s %15s", "geomean", "")
		for _, mc := range cols {
			fmt.Fprintf(w, " %15.3f", stats.GeoMean(geo[mc]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "=== Figure 5: value-based replay performance, relative to baseline ===")
	section("-- uniprocessor --", uni, false)
	if len(mp) > 0 {
		section(fmt.Sprintf("-- %d-processor (%d samples) --", m.Cfg.MPCores, m.Cfg.Samples), mp, true)
	}
}

// Figure6 prints the extra L1 data-cache bandwidth consumed by replays
// (paper Figure 6), as a percentage of the baseline machine's total
// accesses, split into the RAW-needed (no-unresolved-store) segment and
// the consistency-only remainder.
func Figure6(w io.Writer, m *Matrix) {
	uni, mp := m.workloadNames()
	fmt.Fprintln(w, "=== Figure 6: increased data cache bandwidth due to replay ===")
	fmt.Fprintln(w, "(each cell: total%  [raw-needed% + consistency-only%])")
	cols := MachineNames[1:]
	section := func(title string, names []string) {
		writeHeader(w, title, cols)
		avg := make(map[string][]float64)
		for _, work := range names {
			base := m.Get("baseline", work)
			if base == nil || base.L1DTotal.Mean() == 0 {
				continue
			}
			fmt.Fprintf(w, "%-12s", work)
			for _, mc := range cols {
				pt := m.Get(mc, work)
				if pt == nil || pt.ReplayAll.N() == 0 {
					fmt.Fprintf(w, " %17s", "-")
					continue
				}
				total := 100 * pt.ReplayAll.Mean() / base.L1DTotal.Mean()
				nus := 100 * pt.ReplayNUS.Mean() / base.L1DTotal.Mean()
				avg[mc] = append(avg[mc], total)
				fmt.Fprintf(w, " %5.1f%%[%4.1f+%4.1f]", total, nus, total-nus)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-12s", "mean")
		for _, mc := range cols {
			fmt.Fprintf(w, " %6.1f%%%10s", stats.Mean(avg[mc]), "")
		}
		fmt.Fprintln(w)
	}
	section("-- uniprocessor --", uni)
	if len(mp) > 0 {
		section("-- multiprocessor --", mp)
	}

	// §5.1 headline scalar: replays per committed instruction for the
	// best filter configuration.
	var rep, com float64
	for _, work := range append(uni, mp...) {
		pt := m.Get("no-recent-snoop", work)
		if pt != nil {
			rep += pt.Replays.Mean()
			com += pt.Committed.Mean()
		}
	}
	if com > 0 {
		fmt.Fprintf(w, "\nreplays per committed instruction (no-recent-snoop/NUS): %.4f (paper: 0.02)\n", rep/com)
	}
}

// Figure7 prints average reorder-buffer occupancy per configuration
// (paper Figure 7).
func Figure7(w io.Writer, m *Matrix) {
	uni, mp := m.workloadNames()
	fmt.Fprintln(w, "=== Figure 7: average reorder buffer utilization ===")
	cols := MachineNames
	section := func(title string, names []string) {
		writeHeader(w, title, cols)
		for _, work := range names {
			fmt.Fprintf(w, "%-12s", work)
			for _, mc := range cols {
				pt := m.Get(mc, work)
				if pt == nil || pt.ROBOccupancy.N() == 0 {
					fmt.Fprintf(w, " %15s", "-")
					continue
				}
				fmt.Fprintf(w, " %15.1f", pt.ROBOccupancy.Mean())
			}
			fmt.Fprintln(w)
		}
	}
	section("-- uniprocessor --", uni)
	if len(mp) > 0 {
		section("-- multiprocessor --", mp)
	}
}

// Figure8 prints the §5.2 comparison: the best replay configuration
// (no-recent-snoop + no-unresolved-store) against baselines whose
// associative load queues are constrained to 16 and 32 entries; values
// are replay IPC divided by constrained-baseline IPC (>1 means replay
// is faster). The error is non-nil only when cfg.Checkpoint names an
// unusable journal (Figure 8 sweeps a different machine set than the
// §5.1 matrix, so sharing one journal path cannot work).
func Figure8(w io.Writer, cfg Config) error {
	machines := []string{"no-recent-snoop", "baseline-lq32", "baseline-lq16"}
	m, err := Run(cfg, machines)
	if err != nil {
		return err
	}
	uni, mp := m.workloadNames()
	fmt.Fprintln(w, "=== Figure 8: replay speedup over constrained load queue sizes ===")
	cols := []string{"vs lq32", "vs lq16"}
	section := func(title string, names []string) {
		writeHeader(w, title, cols)
		var g32, g16 []float64
		var max16 float64
		for _, work := range names {
			rep := m.Get("no-recent-snoop", work)
			b32 := m.Get("baseline-lq32", work)
			b16 := m.Get("baseline-lq16", work)
			if rep == nil || b32.IPC.Mean() == 0 || b16.IPC.Mean() == 0 {
				continue
			}
			s32 := rep.IPC.Mean() / b32.IPC.Mean()
			s16 := rep.IPC.Mean() / b16.IPC.Mean()
			g32 = append(g32, s32)
			g16 = append(g16, s16)
			if s16 > max16 {
				max16 = s16
			}
			fmt.Fprintf(w, "%-12s %15.3f %15.3f\n", work, s32, s16)
		}
		fmt.Fprintf(w, "%-12s %15.3f %15.3f   (max vs lq16: %.3f)\n",
			"geomean", stats.GeoMean(g32), stats.GeoMean(g16), max16)
	}
	section("-- uniprocessor --", uni)
	if len(mp) > 0 {
		section("-- multiprocessor --", mp)
	}
	fmt.Fprintln(w, "(paper: replay ≈ +1.0% vs 32-entry; avg +8%, max +34% vs 16-entry)")
	return nil
}

// SquashStats prints the §5.1 squash-elimination statistics: the
// fraction of baseline RAW and consistency squashes that value-based
// replay avoids thanks to store value locality.
func SquashStats(w io.Writer, m *Matrix) {
	uni, mp := m.workloadNames()
	fmt.Fprintln(w, "=== §5.1 squash elimination (baseline squashes vs replay squashes) ===")
	row := func(work string) {
		base := m.Get("baseline", work)
		rep := m.Get("replay-all", work)
		if base == nil || rep == nil {
			return
		}
		fmt.Fprintf(w, "%-12s RAW: %6.0f -> %6.0f   consistency: %6.0f -> %6.0f\n",
			work, base.RAWSquash.Mean(), rep.RAWSquash.Mean(),
			base.ConsSquash.Mean(), rep.ConsSquash.Mean())
	}
	var bR, rR, bC, rC float64
	for _, work := range append(append([]string{}, uni...), mp...) {
		row(work)
		if base := m.Get("baseline", work); base != nil {
			bR += base.RAWSquash.Mean()
			bC += base.ConsSquash.Mean()
		}
		if rep := m.Get("replay-all", work); rep != nil {
			rR += rep.RAWSquash.Mean()
			rC += rep.ConsSquash.Mean()
		}
	}
	if bR > 0 {
		fmt.Fprintf(w, "RAW squashes eliminated: %.0f%% (paper: 59%%)\n", 100*(1-rR/bR))
	}
	if bC > 0 {
		fmt.Fprintf(w, "consistency squashes eliminated: %.0f%% (paper: 95%%)\n", 100*(1-rC/bC))
	}
}

// Power prints the §5.3 power-model comparison using measured replay
// and load-queue-search counts.
func Power(w io.Writer, m *Matrix) {
	fmt.Fprintln(w, "=== §5.3 power model ===")
	uni, mp := m.workloadNames()
	var replays, committed, searches float64
	for _, work := range append(append([]string{}, uni...), mp...) {
		if pt := m.Get("no-recent-snoop", work); pt != nil {
			replays += pt.Replays.Mean()
			committed += pt.Committed.Mean()
		}
		if pt := m.Get("baseline", work); pt != nil {
			searches += pt.LQSearches.Mean()
		}
	}
	pm := energy.DefaultPowerModel(128, energy.PortConfig{Read: 3, Write: 2})
	fmt.Fprint(w, pm.Report(uint64(replays), uint64(searches), uint64(committed)))
	if committed > 0 {
		fmt.Fprintf(w, "measured replay rate: %.4f/instr; break-even at %.4f/instr (searches %.3f/instr)\n",
			replays/committed, pm.BreakEvenReplayRate(searches/committed), searches/committed)
	}
}

// Tables prints Table 1 and Table 2.
func Tables(w io.Writer) {
	fmt.Fprintln(w, energy.FormatTable1())
	fmt.Fprintln(w, energy.FormatTable2())
	mdl := energy.DefaultCAMModel()
	latErr, enErr := mdl.ModelError()
	fmt.Fprintf(w, "fitted CAM model mean error: latency %.1f%%, energy %.1f%%\n",
		latErr*100, enErr*100)
}
