// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Figure 5 (performance of the replay configurations
// relative to the baseline), Figure 6 (extra data-cache bandwidth),
// Figure 7 (reorder-buffer occupancy), Figure 8 (size-constrained load
// queues), the §5.1 squash statistics, the §5.3 power model, and the
// Table 1/2 hardware models. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"vbmo/internal/config"
	"vbmo/internal/par"
	"vbmo/internal/stats"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// Config scopes an experiment run. The defaults are sized so the whole
// suite finishes in minutes; the paper's shapes are stable at these
// budgets (EXPERIMENTS.md records the reference outputs).
type Config struct {
	// UniInstr is committed instructions per uniprocessor run.
	UniInstr uint64
	// MPInstr is committed instructions per core in MP runs.
	MPInstr uint64
	// MPCores is the multiprocessor width (paper: 16).
	MPCores int
	// Samples is the number of differently-seeded samples per MP data
	// point (Alameldeen–Wood methodology).
	Samples int
	// Seed is the base random seed.
	Seed uint64
	// Workloads restricts the run to the named workloads (nil = all).
	Workloads []string
	// Parallel enables running data points on multiple OS threads.
	Parallel bool
	// Workers bounds the worker pool when Parallel is set (0 = one per
	// runtime.GOMAXPROCS; see par.Workers).
	Workers int
	// LitmusRuns is the perturbed executions per litmus (test, config)
	// cell in the litmus experiment.
	LitmusRuns int
}

// DefaultConfig returns the standard experiment scope.
func DefaultConfig() Config {
	return Config{
		UniInstr:   60000,
		MPInstr:    6000,
		MPCores:    16,
		Samples:    2,
		Seed:       42,
		LitmusRuns: 300,
	}
}

// QuickConfig returns a reduced scope for smoke runs and benchmarks.
func QuickConfig() Config {
	return Config{
		UniInstr:   15000,
		MPInstr:    2500,
		MPCores:    4,
		Samples:    1,
		LitmusRuns: 40,
		Seed:       42,
	}
}

// MachineNames lists the five §5.1 configurations in presentation
// order.
var MachineNames = []string{
	"baseline", "replay-all", "no-reorder", "no-recent-miss", "no-recent-snoop",
}

// machineFor builds the named machine configuration via the shared
// registry, so experiments and the CLIs agree on names.
func machineFor(name string) config.Machine {
	m, ok := config.ByName(name)
	if !ok {
		panic("experiments: unknown machine " + name)
	}
	return m
}

// Point is one (machine, workload) measurement, averaged over samples.
type Point struct {
	Machine  string
	Workload string
	Multi    bool
	IPC      stats.Sample
	// Bandwidth terms (per-sample sums, averaged).
	L1DTotal     stats.Sample
	ReplayAll    stats.Sample // replay accesses (total)
	ReplayNUS    stats.Sample // replay accesses required by RAW filter
	ROBOccupancy stats.Sample
	// Squash terms.
	RAWSquash  stats.Sample // baseline LQ RAW squashes / replay RAW squashes
	ConsSquash stats.Sample // invalidation squashes / replay consistency squashes
	Committed  stats.Sample
	LQSearches stats.Sample
	Replays    stats.Sample
}

// Matrix holds every data point of the shared §5.1 run set, keyed by
// machine then workload.
type Matrix struct {
	Cfg    Config
	Points map[string]map[string]*Point
}

// Get returns the point for (machine, workload).
func (m *Matrix) Get(machine, work string) *Point {
	if mm := m.Points[machine]; mm != nil {
		return mm[work]
	}
	return nil
}

// workloadSet returns the selected workloads.
func (c Config) workloadSet() []workload.Params {
	all := workload.Catalog()
	if len(c.Workloads) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, w := range c.Workloads {
		want[w] = true
	}
	var out []workload.Params
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// cellObs is the raw measurement of one (machine, workload, sample)
// cell. Cells run independently — possibly on different workers, in
// any order — and are folded into Points afterwards in canonical cell
// order, so the Sample observation sequences (and therefore the whole
// Matrix) are bit-identical between serial and parallel execution.
type cellObs struct {
	ipc, l1dTotal, replayAll, replayNUS float64
	robOcc, committed, replays          float64
	lqSearches, rawSquash, consSquash   float64
}

// measureCell executes one sample and returns its observations.
func measureCell(mc config.Machine, work workload.Params, cores int, instr uint64, seed uint64) cellObs {
	opt := system.Options{
		Cores: cores, Seed: seed,
		DMAInterval: 4000, DMABurst: 2,
	}
	s := system.New(mc, work, opt)
	// Warm the caches and predictors, then measure from steady state;
	// cold compulsory misses otherwise dominate short runs.
	s.Run(instr/2, opt)
	s.ResetStats()
	res := s.Run(instr, opt)
	o := cellObs{
		ipc:        res.IPC,
		l1dTotal:   float64(res.Pipe.TotalL1DAccesses()),
		replayAll:  float64(res.Pipe.ReplayAccesses),
		replayNUS:  float64(res.Counters.Get("replay.replays_nus")),
		robOcc:     res.Pipe.AvgROBOccupancy(), // already a per-core average
		committed:  float64(res.Pipe.Committed),
		replays:    float64(res.Pipe.ReplayAccesses),
		lqSearches: float64(res.Counters.Get("lq.searches")),
	}
	if mc.Scheme == config.ValueReplay {
		o.rawSquash = float64(res.Pipe.SquashesReplayRAW)
		o.consSquash = float64(res.Pipe.SquashesReplayCons)
	} else {
		o.rawSquash = float64(res.Pipe.SquashesRAW)
		o.consSquash = float64(res.Pipe.SquashesInval)
	}
	return o
}

// foldCell appends one cell's observations to its point.
func foldCell(pt *Point, o cellObs) {
	pt.IPC.Observe(o.ipc)
	pt.L1DTotal.Observe(o.l1dTotal)
	pt.ReplayAll.Observe(o.replayAll)
	pt.ReplayNUS.Observe(o.replayNUS)
	pt.ROBOccupancy.Observe(o.robOcc)
	pt.Committed.Observe(o.committed)
	pt.Replays.Observe(o.replays)
	pt.LQSearches.Observe(o.lqSearches)
	pt.RAWSquash.Observe(o.rawSquash)
	pt.ConsSquash.Observe(o.consSquash)
}

// Run computes the full §5.1 matrix: every machine × every selected
// workload (uniprocessor workloads on one core, multiprocessor
// workloads on MPCores with Samples samples). The unit of parallelism
// is the (machine, workload, sample) cell — each sample already has a
// deterministic derived seed, so samples of one point spread across
// the worker pool like any other cell.
func Run(cfg Config, machines []string) *Matrix {
	m := &Matrix{Cfg: cfg, Points: make(map[string]map[string]*Point)}
	type cell struct {
		machine string
		work    workload.Params
		cores   int
		instr   uint64
		seed    uint64
	}
	var cells []cell
	for _, name := range machines {
		m.Points[name] = make(map[string]*Point)
		for _, w := range cfg.workloadSet() {
			m.Points[name][w.Name] = &Point{Machine: name, Workload: w.Name, Multi: w.Multi}
			if w.Multi {
				for s := 0; s < cfg.Samples; s++ {
					cells = append(cells, cell{name, w, cfg.MPCores, cfg.MPInstr,
						cfg.Seed + uint64(s)*101})
				}
			} else {
				cells = append(cells, cell{name, w, 1, cfg.UniInstr, cfg.Seed})
			}
		}
	}
	workers := 1
	if cfg.Parallel {
		workers = par.Workers(cfg.Workers)
	}
	obs := make([]cellObs, len(cells))
	par.Run(workers, len(cells), func(i int) {
		c := cells[i]
		obs[i] = measureCell(machineFor(c.machine), c.work, c.cores, c.instr, c.seed)
	})
	// Fold in canonical cell order, never in completion order.
	for i, c := range cells {
		foldCell(m.Points[c.machine][c.work.Name], obs[i])
	}
	return m
}

// workloadNames returns the matrix's workloads, uniprocessor first.
func (m *Matrix) workloadNames() (uni, mp []string) {
	seen := map[string]bool{}
	for _, w := range m.Cfg.workloadSet() {
		if seen[w.Name] {
			continue
		}
		seen[w.Name] = true
		if w.Multi {
			mp = append(mp, w.Name)
		} else {
			uni = append(uni, w.Name)
		}
	}
	sort.Strings(uni)
	sort.Strings(mp)
	return uni, mp
}

func writeHeader(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-12s", "workload")
	for _, c := range cols {
		fmt.Fprintf(w, " %15s", c)
	}
	fmt.Fprintln(w)
}
