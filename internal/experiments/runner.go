// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Figure 5 (performance of the replay configurations
// relative to the baseline), Figure 6 (extra data-cache bandwidth),
// Figure 7 (reorder-buffer occupancy), Figure 8 (size-constrained load
// queues), the §5.1 squash statistics, the §5.3 power model, and the
// Table 1/2 hardware models. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"vbmo/internal/config"
	"vbmo/internal/stats"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// Config scopes an experiment run. The defaults are sized so the whole
// suite finishes in minutes; the paper's shapes are stable at these
// budgets (EXPERIMENTS.md records the reference outputs).
type Config struct {
	// UniInstr is committed instructions per uniprocessor run.
	UniInstr uint64
	// MPInstr is committed instructions per core in MP runs.
	MPInstr uint64
	// MPCores is the multiprocessor width (paper: 16).
	MPCores int
	// Samples is the number of differently-seeded samples per MP data
	// point (Alameldeen–Wood methodology).
	Samples int
	// Seed is the base random seed.
	Seed uint64
	// Workloads restricts the run to the named workloads (nil = all).
	Workloads []string
	// Parallel enables running data points on multiple OS threads.
	Parallel bool
	// LitmusRuns is the perturbed executions per litmus (test, config)
	// cell in the litmus experiment.
	LitmusRuns int
}

// DefaultConfig returns the standard experiment scope.
func DefaultConfig() Config {
	return Config{
		UniInstr:   60000,
		MPInstr:    6000,
		MPCores:    16,
		Samples:    2,
		Seed:       42,
		LitmusRuns: 300,
	}
}

// QuickConfig returns a reduced scope for smoke runs and benchmarks.
func QuickConfig() Config {
	return Config{
		UniInstr:   15000,
		MPInstr:    2500,
		MPCores:    4,
		Samples:    1,
		LitmusRuns: 40,
		Seed:       42,
	}
}

// MachineNames lists the five §5.1 configurations in presentation
// order.
var MachineNames = []string{
	"baseline", "replay-all", "no-reorder", "no-recent-miss", "no-recent-snoop",
}

// machineFor builds the named machine configuration via the shared
// registry, so experiments and the CLIs agree on names.
func machineFor(name string) config.Machine {
	m, ok := config.ByName(name)
	if !ok {
		panic("experiments: unknown machine " + name)
	}
	return m
}

// Point is one (machine, workload) measurement, averaged over samples.
type Point struct {
	Machine  string
	Workload string
	Multi    bool
	IPC      stats.Sample
	// Bandwidth terms (per-sample sums, averaged).
	L1DTotal     stats.Sample
	ReplayAll    stats.Sample // replay accesses (total)
	ReplayNUS    stats.Sample // replay accesses required by RAW filter
	ROBOccupancy stats.Sample
	// Squash terms.
	RAWSquash  stats.Sample // baseline LQ RAW squashes / replay RAW squashes
	ConsSquash stats.Sample // invalidation squashes / replay consistency squashes
	Committed  stats.Sample
	LQSearches stats.Sample
	Replays    stats.Sample
}

// Matrix holds every data point of the shared §5.1 run set, keyed by
// machine then workload.
type Matrix struct {
	Cfg    Config
	Points map[string]map[string]*Point
}

// Get returns the point for (machine, workload).
func (m *Matrix) Get(machine, work string) *Point {
	if mm := m.Points[machine]; mm != nil {
		return mm[work]
	}
	return nil
}

// workloadSet returns the selected workloads.
func (c Config) workloadSet() []workload.Params {
	all := workload.Catalog()
	if len(c.Workloads) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, w := range c.Workloads {
		want[w] = true
	}
	var out []workload.Params
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// runOne executes one sample and folds it into the point.
func runOne(pt *Point, mc config.Machine, work workload.Params, cores int, instr uint64, seed uint64) {
	opt := system.Options{
		Cores: cores, Seed: seed,
		DMAInterval: 4000, DMABurst: 2,
	}
	s := system.New(mc, work, opt)
	// Warm the caches and predictors, then measure from steady state;
	// cold compulsory misses otherwise dominate short runs.
	s.Run(instr/2, opt)
	s.ResetStats()
	res := s.Run(instr, opt)
	pt.IPC.Observe(res.IPC)
	pt.L1DTotal.Observe(float64(res.Pipe.TotalL1DAccesses()))
	pt.ReplayAll.Observe(float64(res.Pipe.ReplayAccesses))
	pt.ReplayNUS.Observe(float64(res.Counters.Get("replay.replays_nus")))
	pt.ROBOccupancy.Observe(res.Pipe.AvgROBOccupancy()) // already a per-core average
	pt.Committed.Observe(float64(res.Pipe.Committed))
	pt.Replays.Observe(float64(res.Pipe.ReplayAccesses))
	pt.LQSearches.Observe(float64(res.Counters.Get("lq.searches")))
	if mc.Scheme == config.ValueReplay {
		pt.RAWSquash.Observe(float64(res.Pipe.SquashesReplayRAW))
		pt.ConsSquash.Observe(float64(res.Pipe.SquashesReplayCons))
	} else {
		pt.RAWSquash.Observe(float64(res.Pipe.SquashesRAW))
		pt.ConsSquash.Observe(float64(res.Pipe.SquashesInval))
	}
}

// Run computes the full §5.1 matrix: every machine × every selected
// workload (uniprocessor workloads on one core, multiprocessor
// workloads on MPCores with Samples samples).
func Run(cfg Config, machines []string) *Matrix {
	m := &Matrix{Cfg: cfg, Points: make(map[string]map[string]*Point)}
	type job struct {
		machine string
		work    workload.Params
	}
	var jobs []job
	for _, name := range machines {
		m.Points[name] = make(map[string]*Point)
		for _, w := range cfg.workloadSet() {
			m.Points[name][w.Name] = &Point{Machine: name, Workload: w.Name, Multi: w.Multi}
			jobs = append(jobs, job{name, w})
		}
	}
	runJob := func(j job) {
		pt := m.Points[j.machine][j.work.Name]
		mc := machineFor(j.machine)
		if j.work.Multi {
			for s := 0; s < cfg.Samples; s++ {
				runOne(pt, mc, j.work, cfg.MPCores, cfg.MPInstr, cfg.Seed+uint64(s)*101)
			}
		} else {
			runOne(pt, mc, j.work, 1, cfg.UniInstr, cfg.Seed)
		}
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		sem := make(chan struct{}, 8)
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runJob(j)
			}(j)
		}
		wg.Wait()
	} else {
		for _, j := range jobs {
			runJob(j)
		}
	}
	return m
}

// workloadNames returns the matrix's workloads, uniprocessor first.
func (m *Matrix) workloadNames() (uni, mp []string) {
	seen := map[string]bool{}
	for _, w := range m.Cfg.workloadSet() {
		if seen[w.Name] {
			continue
		}
		seen[w.Name] = true
		if w.Multi {
			mp = append(mp, w.Name)
		} else {
			uni = append(uni, w.Name)
		}
	}
	sort.Strings(uni)
	sort.Strings(mp)
	return uni, mp
}

func writeHeader(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-12s", "workload")
	for _, c := range cols {
		fmt.Fprintf(w, " %15s", c)
	}
	fmt.Fprintln(w)
}
