// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Figure 5 (performance of the replay configurations
// relative to the baseline), Figure 6 (extra data-cache bandwidth),
// Figure 7 (reorder-buffer occupancy), Figure 8 (size-constrained load
// queues), the §5.1 squash statistics, the §5.3 power model, and the
// Table 1/2 hardware models. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/par"
	"vbmo/internal/stats"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// Config scopes an experiment run. The defaults are sized so the whole
// suite finishes in minutes; the paper's shapes are stable at these
// budgets (EXPERIMENTS.md records the reference outputs).
type Config struct {
	// UniInstr is committed instructions per uniprocessor run.
	UniInstr uint64
	// MPInstr is committed instructions per core in MP runs.
	MPInstr uint64
	// MPCores is the multiprocessor width (paper: 16).
	MPCores int
	// Samples is the number of differently-seeded samples per MP data
	// point (Alameldeen–Wood methodology).
	Samples int
	// Seed is the base random seed.
	Seed uint64
	// Workloads restricts the run to the named workloads (nil = all).
	Workloads []string
	// Parallel enables running data points on multiple OS threads.
	Parallel bool
	// Workers bounds the worker pool when Parallel is set (0 = one per
	// runtime.GOMAXPROCS; see par.Workers).
	Workers int
	// LitmusRuns is the perturbed executions per litmus (test, config)
	// cell in the litmus experiment.
	LitmusRuns int
	// Checkpoint, when non-empty, journals completed cells to this JSONL
	// file as the matrix runs; re-running with the same path (and the
	// same sweep inputs) resumes, replaying journaled cells instead of
	// re-simulating them. Folds happen in canonical order from stored
	// results, so a resumed matrix is bit-identical to an uninterrupted
	// one.
	Checkpoint string
	// Retries re-attempts a failed (panicked) cell this many times.
	Retries int
	// CellTimeout, when positive, abandons a cell at this wall-clock
	// deadline (reported in Matrix.Failed). Wall-clock deadlines are
	// nondeterministic; leave 0 for reproducible sweeps.
	CellTimeout time.Duration
}

// DefaultConfig returns the standard experiment scope.
func DefaultConfig() Config {
	return Config{
		UniInstr:   60000,
		MPInstr:    6000,
		MPCores:    16,
		Samples:    2,
		Seed:       42,
		LitmusRuns: 300,
	}
}

// QuickConfig returns a reduced scope for smoke runs and benchmarks.
func QuickConfig() Config {
	return Config{
		UniInstr:   15000,
		MPInstr:    2500,
		MPCores:    4,
		Samples:    1,
		LitmusRuns: 40,
		Seed:       42,
	}
}

// MachineNames lists the five §5.1 configurations in presentation
// order.
var MachineNames = []string{
	"baseline", "replay-all", "no-reorder", "no-recent-miss", "no-recent-snoop",
}

// machineFor builds the named machine configuration via the shared
// registry, so experiments and the CLIs agree on names.
func machineFor(name string) config.Machine {
	m, ok := config.ByName(name)
	if !ok {
		panic("experiments: unknown machine " + name)
	}
	return m
}

// Point is one (machine, workload) measurement, averaged over samples.
type Point struct {
	Machine  string
	Workload string
	Multi    bool
	IPC      stats.Sample
	// Bandwidth terms (per-sample sums, averaged).
	L1DTotal     stats.Sample
	ReplayAll    stats.Sample // replay accesses (total)
	ReplayNUS    stats.Sample // replay accesses required by RAW filter
	ROBOccupancy stats.Sample
	// Squash terms.
	RAWSquash  stats.Sample // baseline LQ RAW squashes / replay RAW squashes
	ConsSquash stats.Sample // invalidation squashes / replay consistency squashes
	Committed  stats.Sample
	LQSearches stats.Sample
	Replays    stats.Sample
}

// Matrix holds every data point of the shared §5.1 run set, keyed by
// machine then workload.
type Matrix struct {
	Cfg    Config
	Points map[string]map[string]*Point
	// Failed lists cells that did not complete (panicked past their
	// retries, or timed out). Their observations are absent from Points;
	// callers must treat a non-empty list as a degraded result.
	Failed []par.Failure
	// Resumed is how many cells were replayed from the checkpoint
	// journal instead of simulated.
	Resumed int
}

// Get returns the point for (machine, workload).
func (m *Matrix) Get(machine, work string) *Point {
	if mm := m.Points[machine]; mm != nil {
		return mm[work]
	}
	return nil
}

// workloadSet returns the selected workloads. With no explicit
// selection, bench-only workloads are excluded so the figure sweeps
// match the paper's workload set; naming one explicitly still works.
func (c Config) workloadSet() []workload.Params {
	all := workload.Catalog()
	if len(c.Workloads) == 0 {
		var out []workload.Params
		for _, w := range all {
			if !w.BenchOnly {
				out = append(out, w)
			}
		}
		return out
	}
	want := map[string]bool{}
	for _, w := range c.Workloads {
		want[w] = true
	}
	var out []workload.Params
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// CellObs is the raw measurement of one (machine, workload, sample)
// cell. Cells run independently — possibly on different workers, in
// any order — and are folded into Points afterwards in canonical cell
// order, so the Sample observation sequences (and therefore the whole
// Matrix) are bit-identical between serial and parallel execution.
// Fields are exported with JSON tags because the checkpoint journal
// (and the farm service's result cache) round-trip cells through
// encoding/json; Go's float64 encoding is exact, so a journaled
// observation folds identically to a fresh one.
type CellObs struct {
	IPC        float64 `json:"ipc"`
	L1DTotal   float64 `json:"l1d_total"`
	ReplayAll  float64 `json:"replay_all"`
	ReplayNUS  float64 `json:"replay_nus"`
	ROBOcc     float64 `json:"rob_occ"`
	Committed  float64 `json:"committed"`
	Replays    float64 `json:"replays"`
	LQSearches float64 `json:"lq_searches"`
	RAWSquash  float64 `json:"raw_squash"`
	ConsSquash float64 `json:"cons_squash"`
}

// MeasureCell executes one sample — warm to steady state, then measure
// a fixed committed-instruction window — and returns its observations.
// It is exported as the farm service's unit of execution for sweep
// jobs: the same (machine, workload, cores, instr, seed) cell produces
// the same observations whether it runs here, in a farm worker, or is
// replayed from a journal.
func MeasureCell(mc config.Machine, work workload.Params, cores int, instr uint64, seed uint64) CellObs {
	opt := system.Options{
		Cores: cores, Seed: seed,
		DMAInterval: 4000, DMABurst: 2,
	}
	s := system.New(mc, work, opt)
	// Warm the caches and predictors, then measure from steady state;
	// cold compulsory misses otherwise dominate short runs.
	s.Run(instr/2, opt)
	s.ResetStats()
	res := s.Run(instr, opt)
	o := CellObs{
		IPC:        res.IPC,
		L1DTotal:   float64(res.Pipe.TotalL1DAccesses()),
		ReplayAll:  float64(res.Pipe.ReplayAccesses),
		ReplayNUS:  float64(res.Counters.Get("replay.replays_nus")),
		ROBOcc:     res.Pipe.AvgROBOccupancy(), // already a per-core average
		Committed:  float64(res.Pipe.Committed),
		Replays:    float64(res.Pipe.ReplayAccesses),
		LQSearches: float64(res.Counters.Get("lq.searches")),
	}
	if mc.Scheme == config.ValueReplay {
		o.RAWSquash = float64(res.Pipe.SquashesReplayRAW)
		o.ConsSquash = float64(res.Pipe.SquashesReplayCons)
	} else {
		o.RAWSquash = float64(res.Pipe.SquashesRAW)
		o.ConsSquash = float64(res.Pipe.SquashesInval)
	}
	return o
}

// foldCell appends one cell's observations to its point.
func foldCell(pt *Point, o CellObs) {
	pt.IPC.Observe(o.IPC)
	pt.L1DTotal.Observe(o.L1DTotal)
	pt.ReplayAll.Observe(o.ReplayAll)
	pt.ReplayNUS.Observe(o.ReplayNUS)
	pt.ROBOccupancy.Observe(o.ROBOcc)
	pt.Committed.Observe(o.Committed)
	pt.Replays.Observe(o.Replays)
	pt.LQSearches.Observe(o.LQSearches)
	pt.RAWSquash.Observe(o.RAWSquash)
	pt.ConsSquash.Observe(o.ConsSquash)
}

// Run computes the full §5.1 matrix: every machine × every selected
// workload (uniprocessor workloads on one core, multiprocessor
// workloads on MPCores with Samples samples). The unit of parallelism
// is the (machine, workload, sample) cell — each sample already has a
// deterministic derived seed, so samples of one point spread across
// the worker pool like any other cell. A bad checkpoint path or a
// journal belonging to a different sweep is returned as an error (the
// CLI maps it to the exit-code table) rather than panicking.
func Run(cfg Config, machines []string) (*Matrix, error) {
	m := &Matrix{Cfg: cfg, Points: make(map[string]map[string]*Point)}
	type cell struct {
		machine string
		work    workload.Params
		cores   int
		instr   uint64
		seed    uint64
	}
	var cells []cell
	for _, name := range machines {
		m.Points[name] = make(map[string]*Point)
		for _, w := range cfg.workloadSet() {
			m.Points[name][w.Name] = &Point{Machine: name, Workload: w.Name, Multi: w.Multi}
			if w.Multi {
				for s := 0; s < cfg.Samples; s++ {
					cells = append(cells, cell{name, w, cfg.MPCores, cfg.MPInstr,
						cfg.Seed + uint64(s)*101})
				}
			} else {
				cells = append(cells, cell{name, w, 1, cfg.UniInstr, cfg.Seed})
			}
		}
	}
	workers := 1
	if cfg.Parallel {
		workers = par.Workers(cfg.Workers)
	}
	key := func(c cell) string {
		return fmt.Sprintf("%s|%s|cores=%d|instr=%d|seed=%d",
			c.machine, c.work.Name, c.cores, c.instr, c.seed)
	}
	var journal *par.Journal
	if cfg.Checkpoint != "" {
		fp := fmt.Sprintf("experiments-v1|uni=%d|mp=%d|cores=%d|samples=%d|seed=%d|machines=%s",
			cfg.UniInstr, cfg.MPInstr, cfg.MPCores, cfg.Samples, cfg.Seed,
			strings.Join(machines, ","))
		var err error
		if journal, err = par.OpenJournal(cfg.Checkpoint, fp); err != nil {
			return nil, err
		}
		defer journal.Close()
	}
	obs := make([]CellObs, len(cells))
	var todo []int
	for i, c := range cells {
		if journal != nil && journal.Lookup(key(c), &obs[i]) {
			m.Resumed++
			continue
		}
		todo = append(todo, i)
	}
	failures := par.RunSafe(par.SafeOptions{
		Workers: workers, Retries: cfg.Retries, Timeout: cfg.CellTimeout,
		Label: func(j int) string { return key(cells[todo[j]]) },
	}, len(todo), func(j int) error {
		i := todo[j]
		c := cells[i]
		obs[i] = MeasureCell(machineFor(c.machine), c.work, c.cores, c.instr, c.seed)
		if journal != nil {
			return journal.Record(key(c), obs[i])
		}
		return nil
	})
	// A timed-out straggler may still be writing its own obs slot; never
	// read a failed cell's slot.
	failedIdx := make(map[int]bool, len(failures))
	for _, f := range failures {
		f.Index = todo[f.Index]
		failedIdx[f.Index] = true
		m.Failed = append(m.Failed, f)
	}
	// Fold in canonical cell order, never in completion order.
	for i, c := range cells {
		if !failedIdx[i] {
			foldCell(m.Points[c.machine][c.work.Name], obs[i])
		}
	}
	return m, nil
}

// workloadNames returns the matrix's workloads, uniprocessor first.
func (m *Matrix) workloadNames() (uni, mp []string) {
	seen := map[string]bool{}
	for _, w := range m.Cfg.workloadSet() {
		if seen[w.Name] {
			continue
		}
		seen[w.Name] = true
		if w.Multi {
			mp = append(mp, w.Name)
		} else {
			uni = append(uni, w.Name)
		}
	}
	sort.Strings(uni)
	sort.Strings(mp)
	return uni, mp
}

func writeHeader(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-12s", "workload")
	for _, c := range cols {
		fmt.Fprintf(w, " %15s", c)
	}
	fmt.Fprintln(w)
}
