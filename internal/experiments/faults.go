// The faults experiment: the robustness companion to the litmus
// battery. Two matrices, two claims. First, value corruption — bit
// flips injected into premature load values and cache fills — must be
// detected by commit-time replay on the replay-all machine (the paper's
// soundness argument: every premature load is re-executed, so a wrong
// value cannot commit). Filtered machines replay only flagged loads, so
// corruptions riding unflagged loads escape there; those rows are
// printed as the measured cost of filtering, not asserted. Second,
// filter sabotage — suppressed window signals, dropped coherence
// messages — must surface as SC violations or constraint-graph cycles
// in the litmus battery: a sabotaged filter is an unsound filter, and
// the checker has to say so.

package experiments

import (
	"fmt"
	"io"

	"vbmo/internal/fault"
	"vbmo/internal/litmus"
	"vbmo/internal/par"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// faultValueRate is the per-opportunity corruption probability for the
// value matrix: high enough to land hundreds of injections in a
// default-budget run, low enough that the run still resembles the
// workload.
const faultValueRate = 0.005

// FaultSummary aggregates the faults experiment for callers and tests.
type FaultSummary struct {
	// Value-corruption totals on the replay-all rows (the asserted ones).
	Injected, Detected, Missed, Vacated, Benign uint64
	// ValueOK: replay-all saw corruptions and let none commit undetected.
	ValueOK bool
	// SuppressOK: every filter-breaking sabotage kind was flagged by the
	// SC oracle or constraint-graph checker at least once.
	SuppressOK bool
	// Escaped lists sabotage kinds the checker never flagged.
	Escaped []string
}

// OK reports whether both asserted claims held.
func (s FaultSummary) OK() bool { return s.ValueOK && s.SuppressOK }

// faultValueRow is one machine's aggregated corruption ledger.
type faultValueRow struct {
	label    string
	asserted bool // Missed == 0 is a hard claim on this row
	stats    fault.Stats
	lat      fault.Hist
}

// FaultMatrix runs both fault-injection matrices and writes them to w.
func FaultMatrix(w io.Writer, cfg Config) FaultSummary {
	sum := FaultSummary{}

	// ---- Matrix 1: value corruption vs. replay detection ----
	// Rows: replay-all (asserted, uni + MP), then two informational
	// contrasts — a filtered machine (corruptions on unflagged loads
	// escape) and the baseline (no replay at all, everything escapes).
	var uni []workload.Params
	var mp *workload.Params
	for _, wk := range cfg.workloadSet() {
		wk := wk
		if wk.Multi {
			if mp == nil {
				mp = &wk
			}
		} else {
			uni = append(uni, wk)
		}
	}
	type valueCell struct {
		row   int
		mc    string
		work  workload.Params
		cores int
		instr uint64
	}
	rows := []faultValueRow{
		{label: "replay-all", asserted: true},
		{label: "replay-all (MP)", asserted: true},
		{label: "no-recent-snoop", asserted: false},
		{label: "baseline", asserted: false},
	}
	var cells []valueCell
	for _, wk := range uni {
		cells = append(cells, valueCell{row: 0, mc: "replay-all", work: wk, cores: 1, instr: cfg.UniInstr})
		cells = append(cells, valueCell{row: 2, mc: "no-recent-snoop", work: wk, cores: 1, instr: cfg.UniInstr})
		cells = append(cells, valueCell{row: 3, mc: "baseline", work: wk, cores: 1, instr: cfg.UniInstr})
	}
	if mp != nil && cfg.MPCores > 1 {
		cells = append(cells, valueCell{row: 1, mc: "replay-all", work: *mp, cores: cfg.MPCores, instr: cfg.MPInstr})
	}
	fmt.Fprintf(w, "\n== Fault injection: value corruption vs. replay detection (rate %g) ==\n", faultValueRate)

	workers := 1
	if cfg.Parallel {
		workers = par.Workers(cfg.Workers)
	}
	type valueObs struct {
		stats fault.Stats
		lat   fault.Hist
	}
	obs := make([]valueObs, len(cells))
	par.Run(workers, len(cells), func(i int) {
		c := cells[i]
		seed := cfg.Seed + uint64(i)*7919
		opt := system.Options{
			Cores: c.cores, Seed: seed,
			DMAInterval: 4000, DMABurst: 2,
			Fault: &fault.Config{
				Kinds: []fault.Kind{fault.LoadValue, fault.CacheData},
				Rate:  faultValueRate,
				Seed:  seed ^ 0x9e3779b97f4a7c15,
			},
		}
		s := system.New(machineFor(c.mc), c.work, opt)
		s.Run(c.instr, opt)
		obs[i].stats = s.Faults.Stats
		obs[i].lat = s.Faults.Lat
	})
	// Fold in canonical cell order so the printed matrix is independent
	// of worker scheduling.
	for i, c := range cells {
		r := &rows[c.row]
		st := &obs[i].stats
		r.stats.Injected += st.Injected
		r.stats.Detected += st.Detected
		r.stats.Missed += st.Missed
		r.stats.Vacated += st.Vacated
		r.stats.Benign += st.Benign
		r.lat.Merge(obs[i].lat)
	}

	fmt.Fprintf(w, "%-18s %9s %9s %7s %8s %7s  %s\n",
		"machine", "injected", "detected", "missed", "vacated", "benign", "verdict")
	sum.ValueOK = true
	sawAsserted := false
	for _, r := range rows {
		if r.stats.Injected == 0 && !r.asserted {
			continue
		}
		verdict := "informational (filtered/no replay: misses expected)"
		if r.asserted {
			sawAsserted = true
			sum.Injected += r.stats.Injected
			sum.Detected += r.stats.Detected
			sum.Missed += r.stats.Missed
			sum.Vacated += r.stats.Vacated
			sum.Benign += r.stats.Benign
			if r.stats.Missed == 0 && r.stats.Injected > 0 {
				verdict = "DETECTED-ALL"
			} else {
				verdict = fmt.Sprintf("MISSED %d", r.stats.Missed)
				sum.ValueOK = false
			}
		}
		fmt.Fprintf(w, "%-18s %9d %9d %7d %8d %7d  %s\n",
			r.label, r.stats.Injected, r.stats.Detected, r.stats.Missed,
			r.stats.Vacated, r.stats.Benign, verdict)
		if r.asserted && r.stats.Detected > 0 {
			fmt.Fprintf(w, "%-18s detection latency: %s\n", "", r.lat.String())
		}
	}
	if !sawAsserted {
		sum.ValueOK = false
	}

	// ---- Matrix 2: filter sabotage vs. the checker ----
	// Each sabotage kind runs the filtered sound configurations through
	// the litmus battery at rate 1.0; a kind that breaks the soundness
	// argument must produce flagged runs. Delay kinds stretch message
	// timing without losing information — the windowing is expected to
	// absorb them, so they are informational.
	runs := cfg.LitmusRuns
	if runs <= 0 {
		runs = 300
	}
	// suppress-nus is informational: litmus programs resolve store
	// addresses before younger loads issue, so the NUS flag never arises
	// in the battery and there is nothing to suppress (interference 0).
	sabotage := []struct {
		kind     fault.Kind
		asserted bool
	}{
		{fault.SuppressWindow, true},
		{fault.SuppressNUS, false},
		{fault.DropSnoop, true},
		{fault.DropFill, true},
		{fault.DelaySnoop, false},
		{fault.DelayFill, false},
	}
	var tests []*litmus.Test
	for _, name := range []string{"SB", "MP"} {
		if t, ok := litmus.ByName(name); ok {
			tests = append(tests, t)
		}
	}
	var cols []litmus.Config
	for _, c := range litmus.Configs() {
		if c.Sound && (c.Name == "nrm+nus" || c.Name == "nrs+nus") {
			cols = append(cols, c)
		}
	}
	fmt.Fprintf(w, "\n== Fault injection: filter sabotage vs. checker (%d tests × %d filtered configs × %d runs) ==\n",
		len(tests), len(cols), runs)
	fmt.Fprintf(w, "%-16s %12s %8s  %s\n", "kind", "interference", "flagged", "verdict")
	sum.SuppressOK = true
	for _, sb := range sabotage {
		verdicts, err := litmus.Sweep(litmus.SweepOptions{
			Tests: tests, Configs: cols,
			Runs: runs, Workers: workers, Seed: cfg.Seed,
			Fault: &fault.Config{
				Kinds: []fault.Kind{sb.kind},
				Rate:  1.0,
				Seed:  cfg.Seed ^ 0x9e3779b97f4a7c15 ^ uint64(sb.kind)<<32,
			},
		})
		if err != nil {
			// No checkpoint is configured here; treat a sweep that cannot
			// run as a failed sabotage assertion rather than a panic.
			fmt.Fprintf(w, "%-16s sweep error: %v\n", sb.kind.String(), err)
			sum.SuppressOK = false
			sum.Escaped = append(sum.Escaped, sb.kind.String())
			continue
		}
		var interference uint64
		caught := 0
		for _, v := range verdicts {
			interference += v.FaultDropped + v.FaultDelayed + v.FaultSuppressed
			caught += v.Forbidden + v.Cycles
		}
		verdict := "informational (timing only)"
		if sb.asserted {
			if caught > 0 {
				verdict = "CAUGHT"
			} else {
				verdict = "ESCAPED"
				sum.SuppressOK = false
				sum.Escaped = append(sum.Escaped, sb.kind.String())
			}
		}
		fmt.Fprintf(w, "%-16s %12d %8d  %s\n", sb.kind.String(), interference, caught, verdict)
	}

	fmt.Fprintf(w, "value corruption contained: %v   filter sabotage flagged: %v\n",
		sum.ValueOK, sum.SuppressOK)
	return sum
}
