// The bench experiment: a regression harness for the simulator's own
// speed, as opposed to the simulated machines' performance that every
// other experiment measures. It times steady-state simulation windows
// (simulated instructions per wall second, allocations and bytes per
// committed instruction) and whole-figure regenerations, and emits a
// JSON report (BENCH_1.json) that can be diffed across commits. The
// report embeds the pre-optimization reference numbers so a regression
// is visible without checking out old code.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/litmus"
	"vbmo/internal/par"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// ThroughputCell is one steady-state simulation-speed measurement:
// warm a system past its compulsory-miss phase, then time a fixed
// instruction window with the allocator stats sampled on both sides.
type ThroughputCell struct {
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	// Instrs is the committed-instruction count of the timed window,
	// summed over cores.
	Instrs uint64 `json:"instrs"`
	// WallSec is the wall-clock duration of the timed window.
	WallSec float64 `json:"wall_sec"`
	// InstrsPerSec is the headline simulator speed, Instrs / WallSec.
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// AllocsPerInstr is heap allocations per committed instruction in
	// the window (the hot path's steady-state target is ~0).
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	// BytesPerInstr is heap bytes allocated per committed instruction.
	BytesPerInstr float64 `json:"bytes_per_instr"`
}

// FigureTime is the wall time of one end-to-end figure regeneration at
// reduced budget — the number a contributor actually waits on.
type FigureTime struct {
	Name    string  `json:"name"`
	WallSec float64 `json:"wall_sec"`
}

// PrePRBaseline holds the reference numbers measured on the code
// before the allocation-free hot-path rework (same workloads, same
// budgets), kept here so BENCH_1.json is self-describing: current /
// baseline is the speedup, and a current number drifting back toward
// the baseline is a regression.
type PrePRBaseline struct {
	// BenchMsPerOp: BenchmarkSimulatorThroughput ms/op (20k-instr gzip
	// run including construction).
	BenchMsPerOp float64 `json:"bench_ms_per_op"`
	// BenchAllocsPerOp: allocs/op of the same benchmark.
	BenchAllocsPerOp float64 `json:"bench_allocs_per_op"`
	// SteadyInstrsPerSec: warm baseline/gzip simulation speed.
	SteadyInstrsPerSec float64 `json:"steady_instrs_per_sec"`
	// SteadyAllocsPerInstr: warm baseline/gzip allocations per
	// committed instruction.
	SteadyAllocsPerInstr float64 `json:"steady_allocs_per_instr"`
	// SteadyBytesPerInstr: warm baseline/gzip heap bytes per committed
	// instruction.
	SteadyBytesPerInstr float64 `json:"steady_bytes_per_instr"`
}

// prePR is the recorded pre-optimization reference (commit a8b8856,
// this host class): see DESIGN.md §9.
var prePR = PrePRBaseline{
	BenchMsPerOp:         15.744,
	BenchAllocsPerOp:     1778,
	SteadyInstrsPerSec:   1.744e6,
	SteadyAllocsPerInstr: 0.0492,
	SteadyBytesPerInstr:  189.3,
}

// BenchReport is the BENCH_1.json document.
type BenchReport struct {
	Schema     int    `json:"schema"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// BenchMsPerOp and BenchAllocsPerOp mirror the root
	// BenchmarkSimulatorThroughput measurement (construct a baseline
	// gzip system, run 20k instructions) so the report is directly
	// comparable to PrePRBaseline.BenchMsPerOp without running go test.
	BenchMsPerOp     float64 `json:"bench_ms_per_op"`
	BenchAllocsPerOp float64 `json:"bench_allocs_per_op"`
	// Throughput holds the steady-state simulation-speed cells.
	Throughput []ThroughputCell `json:"throughput"`
	// Figures holds end-to-end figure regeneration wall times.
	Figures []FigureTime `json:"figures"`
	// PrePRBaseline is the fixed pre-optimization reference.
	PrePRBaseline PrePRBaseline `json:"pre_pr_baseline"`
}

// measureThroughput warms one system past its cold-start phase and
// times a steady-state window with allocator stats sampled on both
// sides. Committed instructions are read through Result after the
// clock stops, so the summary's allocations stay out of the window.
func measureThroughput(machineName string, mc config.Machine, work workload.Params,
	cores int, warm, window uint64) ThroughputCell {
	opt := system.Options{Cores: cores, Seed: 1, DMAInterval: 4000, DMABurst: 2}
	s := system.New(mc, work, opt)
	s.Advance(warm, opt)
	s.ResetStats()

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	s.Advance(window, opt)
	wall := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)

	committed := s.Result().Pipe.Committed
	if committed == 0 {
		committed = 1
	}
	return ThroughputCell{
		Machine:        machineName,
		Workload:       work.Name,
		Cores:          cores,
		Instrs:         committed,
		WallSec:        wall,
		InstrsPerSec:   float64(committed) / wall,
		AllocsPerInstr: float64(m1.Mallocs-m0.Mallocs) / float64(committed),
		BytesPerInstr:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(committed),
	}
}

// benchWorkload resolves a workload by name, panicking on a typo —
// the cell list below is static.
func benchWorkload(name string) workload.Params {
	w, ok := workload.ByName(name)
	if !ok {
		panic("experiments: unknown bench workload " + name)
	}
	return w
}

// Bench runs the simulator-speed regression harness and writes a
// human-readable summary to w. The cells cover the baseline and the
// two most-exercised replay machines on a uniprocessor workload, plus
// one multiprocessor cell (coherence traffic exercises different
// paths); the figure timings cover the §5.1 matrix, Figure 8, and a
// reduced litmus sweep.
func Bench(w io.Writer, cfg Config) BenchReport {
	rep := BenchReport{
		Schema:        1,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		PrePRBaseline: prePR,
	}

	// Mirror BenchmarkSimulatorThroughput: cold construction plus a
	// 20k-instruction run, best-of-3 to shrug off scheduler noise.
	{
		work := benchWorkload("gzip")
		mc := machineFor("baseline")
		opt := system.Options{Cores: 1, Seed: 1, DMAInterval: 4000, DMABurst: 2}
		best := 0.0
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			s := system.New(mc, work, opt)
			s.Run(20000, opt)
			if d := time.Since(t0).Seconds(); best == 0 || d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&m1)
		rep.BenchMsPerOp = best * 1e3
		rep.BenchAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / 3
		fmt.Fprintf(w, "\n== BenchmarkSimulatorThroughput equivalent (best of 3) ==\n")
		fmt.Fprintf(w, "%.3f ms/op (pre-optimization reference %.3f ms/op, %.2fx), %.0f allocs/op (reference %.0f)\n",
			rep.BenchMsPerOp, prePR.BenchMsPerOp, prePR.BenchMsPerOp/rep.BenchMsPerOp,
			rep.BenchAllocsPerOp, prePR.BenchAllocsPerOp)
	}

	type cellSpec struct {
		machine      string
		work         string
		cores        int
		warm, window uint64
	}
	cells := []cellSpec{
		{"baseline", "gzip", 1, 10000, 40000},
		{"no-recent-snoop", "gzip", 1, 10000, 40000},
		{"replay-all", "gzip", 1, 10000, 40000},
		{"baseline", "ocean", 4, 2000, 6000},
	}
	fmt.Fprintf(w, "\n== Simulator speed: steady-state windows ==\n")
	fmt.Fprintf(w, "%-16s %-10s %5s %10s %12s %14s %12s\n",
		"machine", "workload", "cores", "instrs", "wall (ms)", "instrs/sec", "allocs/instr")
	for _, c := range cells {
		cell := measureThroughput(c.machine, machineFor(c.machine), benchWorkload(c.work),
			c.cores, c.warm, c.window)
		rep.Throughput = append(rep.Throughput, cell)
		fmt.Fprintf(w, "%-16s %-10s %5d %10d %12.2f %14.0f %12.4f\n",
			cell.Machine, cell.Workload, cell.Cores, cell.Instrs,
			cell.WallSec*1e3, cell.InstrsPerSec, cell.AllocsPerInstr)
	}

	timeFigure := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		ft := FigureTime{Name: name, WallSec: time.Since(t0).Seconds()}
		rep.Figures = append(rep.Figures, ft)
		fmt.Fprintf(w, "%-24s %10.2f ms\n", ft.Name, ft.WallSec*1e3)
	}
	figCfg := cfg
	figCfg.Workloads = []string{"gzip", "vortex", "tpcb", "ocean"}
	fmt.Fprintf(w, "\n== Figure regeneration wall time (quick budgets) ==\n")
	timeFigure("fig5-matrix", func() {
		m := Run(figCfg, MachineNames)
		Figure5(io.Discard, m)
	})
	fig8Cfg := figCfg
	fig8Cfg.Workloads = []string{"gzip"}
	timeFigure("fig8", func() { Figure8(io.Discard, fig8Cfg) })
	timeFigure("litmus-sweep", func() {
		workers := 1
		if cfg.Parallel {
			workers = par.Workers(cfg.Workers)
		}
		litmus.Sweep(litmus.SweepOptions{
			Tests: litmus.Battery(), Configs: litmus.Configs(),
			Runs: 20, Workers: workers, Seed: cfg.Seed,
		})
	})

	base := rep.Throughput[0]
	fmt.Fprintf(w, "\nheadline: %.2fx end-to-end (ms/op), %.0fx fewer steady-state allocs/instr vs pre-optimization reference\n",
		prePR.BenchMsPerOp/rep.BenchMsPerOp,
		prePR.SteadyAllocsPerInstr/maxf(base.AllocsPerInstr, 1e-6))
	return rep
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WriteBenchReport writes the report as indented JSON to path.
func WriteBenchReport(path string, rep BenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
