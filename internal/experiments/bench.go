// The bench experiment: a regression harness for the simulator's own
// speed, as opposed to the simulated machines' performance that every
// other experiment measures. It times steady-state simulation windows
// (simulated instructions per wall second, allocations and bytes per
// committed instruction), quiescence fast-forward and stage-skip A/B
// pairs, and whole-figure regenerations, and emits a JSON report
// (BENCH_3.json) that can be diffed across commits. The report embeds
// the pre-optimization reference numbers and the BENCH_1 and BENCH_2
// baselines, and evaluates regression gates against the latter (host
// speed normalized by the baseline/gzip cell) so CI can fail on a
// slowdown without any external state.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/litmus"
	"vbmo/internal/par"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// ThroughputCell is one steady-state simulation-speed measurement:
// warm a system past its compulsory-miss phase, then time a fixed
// instruction window with the allocator stats sampled on both sides.
type ThroughputCell struct {
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	// Instrs is the committed-instruction count of the timed window,
	// summed over cores.
	Instrs uint64 `json:"instrs"`
	// WallSec is the wall-clock duration of the timed window.
	WallSec float64 `json:"wall_sec"`
	// InstrsPerSec is the headline simulator speed, Instrs / WallSec.
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// AllocsPerInstr is heap allocations per committed instruction in
	// the window (the hot path's steady-state target is ~0).
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	// BytesPerInstr is heap bytes allocated per committed instruction.
	BytesPerInstr float64 `json:"bytes_per_instr"`
}

// FigureTime is the wall time of one end-to-end figure regeneration at
// reduced budget — the number a contributor actually waits on.
type FigureTime struct {
	Name    string  `json:"name"`
	WallSec float64 `json:"wall_sec"`
}

// PrePRBaseline holds the reference numbers measured on the code
// before the allocation-free hot-path rework (same workloads, same
// budgets), kept here so BENCH_1.json is self-describing: current /
// baseline is the speedup, and a current number drifting back toward
// the baseline is a regression.
type PrePRBaseline struct {
	// BenchMsPerOp: BenchmarkSimulatorThroughput ms/op (20k-instr gzip
	// run including construction).
	BenchMsPerOp float64 `json:"bench_ms_per_op"`
	// BenchAllocsPerOp: allocs/op of the same benchmark.
	BenchAllocsPerOp float64 `json:"bench_allocs_per_op"`
	// SteadyInstrsPerSec: warm baseline/gzip simulation speed.
	SteadyInstrsPerSec float64 `json:"steady_instrs_per_sec"`
	// SteadyAllocsPerInstr: warm baseline/gzip allocations per
	// committed instruction.
	SteadyAllocsPerInstr float64 `json:"steady_allocs_per_instr"`
	// SteadyBytesPerInstr: warm baseline/gzip heap bytes per committed
	// instruction.
	SteadyBytesPerInstr float64 `json:"steady_bytes_per_instr"`
}

// prePR is the recorded pre-optimization reference (commit a8b8856,
// this host class): see DESIGN.md §9.
var prePR = PrePRBaseline{
	BenchMsPerOp:         15.744,
	BenchAllocsPerOp:     1778,
	SteadyInstrsPerSec:   1.744e6,
	SteadyAllocsPerInstr: 0.0492,
	SteadyBytesPerInstr:  189.3,
}

// Bench1Cell is one embedded BENCH_1 throughput reference point.
type Bench1Cell struct {
	Machine      string  `json:"machine"`
	Workload     string  `json:"workload"`
	Cores        int     `json:"cores"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
}

// Bench1Baseline embeds the committed BENCH_1.json reference so the
// schema-2 report's regression gates are self-contained.
type Bench1Baseline struct {
	BenchMsPerOp float64      `json:"bench_ms_per_op"`
	Cells        []Bench1Cell `json:"cells"`
}

// bench1 is the recorded BENCH_1.json throughput baseline (same host
// class as prePR).
var bench1 = Bench1Baseline{
	BenchMsPerOp: 10.010683,
	Cells: []Bench1Cell{
		{"baseline", "gzip", 1, 2178520.976937206},
		{"no-recent-snoop", "gzip", 1, 2133452.0101571516},
		{"replay-all", "gzip", 1, 1810314.1247764996},
		{"baseline", "ocean", 4, 2996004.661893016},
	},
}

// Bench2Cell is one embedded BENCH_2 throughput reference point,
// including its allocator rates (the spin allocation anomaly fixed in
// the stage-skip PR is gated against regression through these).
type Bench2Cell struct {
	Machine        string  `json:"machine"`
	Workload       string  `json:"workload"`
	Cores          int     `json:"cores"`
	InstrsPerSec   float64 `json:"instrs_per_sec"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	BytesPerInstr  float64 `json:"bytes_per_instr"`
}

// Bench2Baseline embeds the committed BENCH_2.json reference so the
// schema-3 report's regression gates are self-contained.
type Bench2Baseline struct {
	BenchMsPerOp float64      `json:"bench_ms_per_op"`
	Cells        []Bench2Cell `json:"cells"`
}

// bench2 is the recorded BENCH_2.json throughput baseline (same host
// class as prePR and bench1).
var bench2 = Bench2Baseline{
	BenchMsPerOp: 10.324408,
	Cells: []Bench2Cell{
		{"baseline", "gzip", 1, 2142038.6572595173, 0.0005749712514374281, 4.942152892355383},
		{"no-recent-snoop", "gzip", 1, 2128748.8597888923, 0.00055, 4.942},
		{"replay-all", "gzip", 1, 1819794.0347803885, 0.000549958753093518, 4.941629377796665},
		{"baseline", "ocean", 4, 3143685.2629217636, 0.0017069109075770192, 4.945545378850958},
		{"baseline", "ocean", 16, 2756354.2759272433, 0.0014469972205161303, 4.922871925130907},
		{"baseline", "spin", 1, 923447.0518708205, 0.03659268146370726, 186.1995600879824},
		{"baseline", "spin-mp", 16, 67514.18746554284, 0.05890610377456587, 300.5461162524696},
	},
}

// FFCell is one quiescence fast-forward A/B measurement: the same
// steady-state window simulated with skipping on and off. Identical
// asserts the bit-identity contract on the pair's end-of-run results.
type FFCell struct {
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	// OnInstrsPerSec / OffInstrsPerSec are the window speeds with
	// fast-forward enabled / disabled; Speedup is their ratio.
	OnInstrsPerSec  float64 `json:"on_instrs_per_sec"`
	OffInstrsPerSec float64 `json:"off_instrs_per_sec"`
	Speedup         float64 `json:"speedup"`
	// SkippedFrac is the fraction of the enabled run's cycles covered
	// by fast-forward windows.
	SkippedFrac float64 `json:"skipped_frac"`
	// Identical is true when the two runs' results (cycle count,
	// pipeline statistics, every named counter) matched exactly.
	Identical bool `json:"identical"`
}

// StageSkipCell is one stage-skip A/B measurement: the same busy-region
// steady-state window simulated with the per-stage readiness layer on
// and off (fast-forward stays at its default in both runs). The skip
// fractions are the enabled run's per-stage skip counters over the
// window's stepped core-cycles.
type StageSkipCell struct {
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	// NoFastForward marks the cells measured with the quiescence
	// fast-forward disabled in both arms — the stall-bound regime where
	// the stage skip carries the run on its own.
	NoFastForward bool `json:"no_fastforward,omitempty"`
	// OnInstrsPerSec / OffInstrsPerSec are the window speeds with stage
	// skipping enabled / disabled; Speedup is their ratio.
	OnInstrsPerSec  float64 `json:"on_instrs_per_sec"`
	OffInstrsPerSec float64 `json:"off_instrs_per_sec"`
	Speedup         float64 `json:"speedup"`
	// Per-stage skip fractions of the enabled run (stage scans elided /
	// core-cycles stepped).
	WritebackFrac float64 `json:"writeback_frac"`
	CaptureFrac   float64 `json:"capture_frac"`
	CommitFrac    float64 `json:"commit_frac"`
	ReplayFrac    float64 `json:"replay_frac"`
	IssueFrac     float64 `json:"issue_frac"`
	// Identical is true when the two runs' results (cycle count,
	// pipeline statistics, every named counter) matched exactly.
	Identical bool `json:"identical"`
}

// GateResult is one pass/fail regression gate evaluated by the bench
// experiment; CI fails the build when any gate fails.
type GateResult struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// BenchReport is the BENCH_1.json document.
type BenchReport struct {
	Schema     int    `json:"schema"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// BenchMsPerOp and BenchAllocsPerOp mirror the root
	// BenchmarkSimulatorThroughput measurement (construct a baseline
	// gzip system, run 20k instructions) so the report is directly
	// comparable to PrePRBaseline.BenchMsPerOp without running go test.
	BenchMsPerOp     float64 `json:"bench_ms_per_op"`
	BenchAllocsPerOp float64 `json:"bench_allocs_per_op"`
	// Throughput holds the steady-state simulation-speed cells.
	Throughput []ThroughputCell `json:"throughput"`
	// FastForward holds the quiescence-skip A/B cells.
	FastForward []FFCell `json:"fast_forward"`
	// StageSkip holds the per-stage readiness-skip A/B cells.
	StageSkip []StageSkipCell `json:"stage_skip"`
	// Figures holds end-to-end figure regeneration wall times.
	Figures []FigureTime `json:"figures"`
	// Gates holds the evaluated regression gates; AllPass is their
	// conjunction.
	Gates   []GateResult `json:"gates"`
	AllPass bool         `json:"all_pass"`
	// PrePRBaseline is the fixed pre-optimization reference.
	PrePRBaseline PrePRBaseline `json:"pre_pr_baseline"`
	// Bench1Baseline is the embedded BENCH_1 throughput reference,
	// kept for lineage.
	Bench1Baseline Bench1Baseline `json:"bench1_baseline"`
	// Bench2Baseline is the embedded BENCH_2 reference the schema-3
	// gates compare against.
	Bench2Baseline Bench2Baseline `json:"bench2_baseline"`
}

// measureThroughput warms one system past its cold-start phase and
// times a steady-state window with allocator stats sampled on both
// sides. Committed instructions are read through Result after the
// clock stops, so the summary's allocations stay out of the window.
func measureThroughput(machineName string, mc config.Machine, work workload.Params,
	cores int, warm, window uint64) ThroughputCell {
	cell, _ := measureThroughputAB(machineName, mc, work, cores, warm, window, false, false)
	return cell
}

// measureThroughputAB is measureThroughput with explicit fast-forward
// and stage-skip switches; it also returns the timed system for result
// comparison and skip accounting. Wall clock on shared-CPU hosts
// swings >30% between runs of the same binary, so the deterministic
// window is run three times and the fastest repeat is kept — gates
// built on these cells (host-scale anchor, A/B speedup ratios) then
// compare best against best instead of gating on scheduler noise.
// Simulated results are bit-identical across repeats, so any repeat's
// system and allocation counts stand for all of them.
func measureThroughputAB(machineName string, mc config.Machine, work workload.Params,
	cores int, warm, window uint64, noFF, noSkip bool) (ThroughputCell, *system.System) {
	const repeats = 3
	var best ThroughputCell
	var sys *system.System
	for i := 0; i < repeats; i++ {
		opt := system.Options{Cores: cores, Seed: 1, DMAInterval: 4000, DMABurst: 2,
			NoFastForward: noFF, NoStageSkip: noSkip}
		s := system.New(mc, work, opt)
		s.Advance(warm, opt)
		s.ResetStats()

		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		s.Advance(window, opt)
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)

		committed := s.Result().Pipe.Committed
		if committed == 0 {
			committed = 1
		}
		if i == 0 || wall < best.WallSec {
			best = ThroughputCell{
				Machine:        machineName,
				Workload:       work.Name,
				Cores:          cores,
				Instrs:         committed,
				WallSec:        wall,
				InstrsPerSec:   float64(committed) / wall,
				AllocsPerInstr: float64(m1.Mallocs-m0.Mallocs) / float64(committed),
				BytesPerInstr:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(committed),
			}
			sys = s
		}
	}
	return best, sys
}

// measureFF times the same steady-state window with fast-forward on
// and off and checks the two runs' end states for bit-identity.
func measureFF(machineName string, mc config.Machine, work workload.Params,
	cores int, warm, window uint64) FFCell {
	on, sOn := measureThroughputAB(machineName, mc, work, cores, warm, window, false, false)
	off, sOff := measureThroughputAB(machineName, mc, work, cores, warm, window, true, false)
	ffs := sOn.FastForwardStats()
	cell := FFCell{
		Machine:         machineName,
		Workload:        work.Name,
		Cores:           cores,
		OnInstrsPerSec:  on.InstrsPerSec,
		OffInstrsPerSec: off.InstrsPerSec,
		Speedup:         on.InstrsPerSec / off.InstrsPerSec,
		SkippedFrac:     float64(ffs.SkippedCycles) / maxf(float64(sOn.CycleNum), 1),
		Identical: sOn.CycleNum == sOff.CycleNum &&
			reflect.DeepEqual(sOn.Result(), sOff.Result()),
	}
	return cell
}

// measureStageSkip times the same steady-state window with the
// per-stage readiness layer on and off and checks the two runs' end
// states for bit-identity. The skip-rate denominator is the enabled
// run's window core-cycles (per-core Stats.Cycles summed over cores;
// fast-forwarded cycles are included in it, so on FF-heavy workloads
// the fractions understate the per-stepped-cycle rate). noFF disables
// the quiescence fast-forward in both arms — that isolates the stage
// skip on stall-bound workloads, the regime where it carries the run
// because whole-machine fast-forward is unavailable (OnCycle hooks
// and fault campaigns suspend it).
func measureStageSkip(machineName string, mc config.Machine, work workload.Params,
	cores int, warm, window uint64, noFF bool) StageSkipCell {
	on, sOn := measureThroughputAB(machineName, mc, work, cores, warm, window, noFF, false)
	off, sOff := measureThroughputAB(machineName, mc, work, cores, warm, window, noFF, true)
	sk := sOn.StageSkipStats()
	cc := maxf(float64(sOn.Result().Pipe.Cycles), 1)
	return StageSkipCell{
		Machine:         machineName,
		Workload:        work.Name,
		Cores:           cores,
		OnInstrsPerSec:  on.InstrsPerSec,
		OffInstrsPerSec: off.InstrsPerSec,
		Speedup:         on.InstrsPerSec / off.InstrsPerSec,
		WritebackFrac:   float64(sk.Writeback) / cc,
		CaptureFrac:     float64(sk.Capture) / cc,
		CommitFrac:      float64(sk.Commit) / cc,
		ReplayFrac:      float64(sk.Replay) / cc,
		IssueFrac:       float64(sk.Issue) / cc,
		Identical: sOn.CycleNum == sOff.CycleNum &&
			reflect.DeepEqual(sOn.Result(), sOff.Result()),
	}
}

// benchWorkload resolves a workload by name, panicking on a typo —
// the cell list below is static.
func benchWorkload(name string) workload.Params {
	w, ok := workload.ByName(name)
	if !ok {
		panic("experiments: unknown bench workload " + name)
	}
	return w
}

// Bench runs the simulator-speed regression harness and writes a
// human-readable summary to w. The cells cover the baseline and the
// two most-exercised replay machines on a uniprocessor workload, plus
// one multiprocessor cell (coherence traffic exercises different
// paths); the figure timings cover the §5.1 matrix, Figure 8, and a
// reduced litmus sweep.
func Bench(w io.Writer, cfg Config) BenchReport {
	rep := BenchReport{
		Schema:         3,
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		PrePRBaseline:  prePR,
		Bench1Baseline: bench1,
		Bench2Baseline: bench2,
	}

	// Mirror BenchmarkSimulatorThroughput: cold construction plus a
	// 20k-instruction run, best-of-3 to shrug off scheduler noise.
	{
		work := benchWorkload("gzip")
		mc := machineFor("baseline")
		opt := system.Options{Cores: 1, Seed: 1, DMAInterval: 4000, DMABurst: 2}
		best := 0.0
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			s := system.New(mc, work, opt)
			s.Run(20000, opt)
			if d := time.Since(t0).Seconds(); best == 0 || d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&m1)
		rep.BenchMsPerOp = best * 1e3
		rep.BenchAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / 3
		fmt.Fprintf(w, "\n== BenchmarkSimulatorThroughput equivalent (best of 3) ==\n")
		fmt.Fprintf(w, "%.3f ms/op (pre-optimization reference %.3f ms/op, %.2fx), %.0f allocs/op (reference %.0f)\n",
			rep.BenchMsPerOp, prePR.BenchMsPerOp, prePR.BenchMsPerOp/rep.BenchMsPerOp,
			rep.BenchAllocsPerOp, prePR.BenchAllocsPerOp)
	}

	type cellSpec struct {
		machine      string
		work         string
		cores        int
		warm, window uint64
	}
	cells := []cellSpec{
		{"baseline", "gzip", 1, 10000, 40000},
		{"no-recent-snoop", "gzip", 1, 10000, 40000},
		{"replay-all", "gzip", 1, 10000, 40000},
		{"baseline", "ocean", 4, 2000, 6000},
		{"baseline", "ocean", 16, 2000, 6000},
		{"baseline", "spin", 1, 2000, 20000},
		{"baseline", "spin-mp", 16, 300, 1200},
	}
	fmt.Fprintf(w, "\n== Simulator speed: steady-state windows ==\n")
	fmt.Fprintf(w, "%-16s %-10s %5s %10s %12s %14s %12s\n",
		"machine", "workload", "cores", "instrs", "wall (ms)", "instrs/sec", "allocs/instr")
	for _, c := range cells {
		cell := measureThroughput(c.machine, machineFor(c.machine), benchWorkload(c.work),
			c.cores, c.warm, c.window)
		rep.Throughput = append(rep.Throughput, cell)
		fmt.Fprintf(w, "%-16s %-10s %5d %10d %12.2f %14.0f %12.4f\n",
			cell.Machine, cell.Workload, cell.Cores, cell.Instrs,
			cell.WallSec*1e3, cell.InstrsPerSec, cell.AllocsPerInstr)
	}

	ffSpecs := []cellSpec{
		{"baseline", "spin", 1, 2000, 20000},
		{"baseline", "spin-mp", 16, 300, 1200},
	}
	fmt.Fprintf(w, "\n== Quiescence fast-forward A/B (same window, skip on/off) ==\n")
	fmt.Fprintf(w, "%-16s %-10s %5s %14s %14s %9s %9s %10s\n",
		"machine", "workload", "cores", "on instrs/s", "off instrs/s", "speedup", "skipped", "identical")
	for _, c := range ffSpecs {
		cell := measureFF(c.machine, machineFor(c.machine), benchWorkload(c.work),
			c.cores, c.warm, c.window)
		rep.FastForward = append(rep.FastForward, cell)
		fmt.Fprintf(w, "%-16s %-10s %5d %14.0f %14.0f %8.1fx %8.1f%% %10t\n",
			cell.Machine, cell.Workload, cell.Cores, cell.OnInstrsPerSec,
			cell.OffInstrsPerSec, cell.Speedup, 100*cell.SkippedFrac, cell.Identical)
	}

	// The spin/noFF cell isolates the layer where it carries the run:
	// stall-bound cycles with whole-machine fast-forward unavailable
	// (as in OnCycle-hooked and fault-campaign runs). The busy cells
	// pin identity and engagement; their speedup is parity-level by
	// design — busy stages have work, so there is little to skip.
	skipSpecs := []struct {
		machine, work string
		cores         int
		warm, window  uint64
		noFF          bool
	}{
		{"baseline", "gzip", 1, 10000, 40000, false},
		{"replay-all", "gzip", 1, 10000, 40000, false},
		{"baseline", "ocean", 4, 2000, 6000, false},
		{"baseline", "spin", 1, 2000, 20000, true},
	}
	fmt.Fprintf(w, "\n== Stage-skip A/B (same window, readiness layer on/off) ==\n")
	fmt.Fprintf(w, "%-16s %-10s %5s %5s %14s %14s %9s %28s %10s\n",
		"machine", "workload", "cores", "ff", "on instrs/s", "off instrs/s", "speedup", "skip% wb/cap/com/rep/iss", "identical")
	for _, c := range skipSpecs {
		cell := measureStageSkip(c.machine, machineFor(c.machine), benchWorkload(c.work),
			c.cores, c.warm, c.window, c.noFF)
		cell.NoFastForward = c.noFF
		rep.StageSkip = append(rep.StageSkip, cell)
		ff := "on"
		if c.noFF {
			ff = "off"
		}
		fmt.Fprintf(w, "%-16s %-10s %5d %5s %14.0f %14.0f %8.2fx  %4.0f/%4.0f/%4.0f/%4.0f/%4.0f %11t\n",
			cell.Machine, cell.Workload, cell.Cores, ff, cell.OnInstrsPerSec,
			cell.OffInstrsPerSec, cell.Speedup,
			100*cell.WritebackFrac, 100*cell.CaptureFrac, 100*cell.CommitFrac,
			100*cell.ReplayFrac, 100*cell.IssueFrac, cell.Identical)
	}

	timeFigure := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		ft := FigureTime{Name: name, WallSec: time.Since(t0).Seconds()}
		rep.Figures = append(rep.Figures, ft)
		fmt.Fprintf(w, "%-24s %10.2f ms\n", ft.Name, ft.WallSec*1e3)
	}
	figCfg := cfg
	figCfg.Workloads = []string{"gzip", "vortex", "tpcb", "ocean"}
	// The timing closures re-run sweeps with budgets that differ from the
	// user's main run, so a shared checkpoint journal would be rejected;
	// the timed figures always run journal-free.
	figCfg.Checkpoint = ""
	fmt.Fprintf(w, "\n== Figure regeneration wall time (quick budgets) ==\n")
	timeFigure("fig5-matrix", func() {
		m, err := Run(figCfg, MachineNames)
		if err != nil {
			fmt.Fprintf(w, "fig5-matrix: %v\n", err)
			return
		}
		Figure5(io.Discard, m)
	})
	fig8Cfg := figCfg
	fig8Cfg.Workloads = []string{"gzip"}
	timeFigure("fig8", func() {
		if err := Figure8(io.Discard, fig8Cfg); err != nil {
			fmt.Fprintf(w, "fig8: %v\n", err)
		}
	})
	timeFigure("litmus-sweep", func() {
		workers := 1
		if cfg.Parallel {
			workers = par.Workers(cfg.Workers)
		}
		if _, err := litmus.Sweep(litmus.SweepOptions{
			Tests: litmus.Battery(), Configs: litmus.Configs(),
			Runs: 20, Workers: workers, Seed: cfg.Seed,
		}); err != nil {
			fmt.Fprintf(w, "litmus-sweep: %v\n", err)
		}
	})
	timeFigure("litmus-sweep-16", func() {
		workers := 1
		if cfg.Parallel {
			workers = par.Workers(cfg.Workers)
		}
		if _, err := litmus.Sweep(litmus.SweepOptions{
			Tests: litmus.Battery(), Configs: litmus.Configs(),
			Runs: 20, Workers: workers, Seed: cfg.Seed, Cores: 16,
		}); err != nil {
			fmt.Fprintf(w, "litmus-sweep-16: %v\n", err)
		}
	})

	evaluateGates(&rep)
	fmt.Fprintf(w, "\n== Regression gates (vs embedded BENCH_2 baseline) ==\n")
	for _, g := range rep.Gates {
		status := "pass"
		if !g.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-32s %-4s %s\n", g.Name, status, g.Detail)
	}

	base := rep.Throughput[0]
	fmt.Fprintf(w, "\nheadline: %.2fx end-to-end (ms/op), %.0fx fewer steady-state allocs/instr vs pre-optimization reference\n",
		prePR.BenchMsPerOp/rep.BenchMsPerOp,
		prePR.SteadyAllocsPerInstr/maxf(base.AllocsPerInstr, 1e-6))
	return rep
}

// Gate floors for the stage-skip leg, set with margin below the
// measured achievement. On high-IPC workloads the ISSUE 8 target of
// 5x does not apply: with best-of-N measurement the gzip on/off ratio
// is parity (0.95-1.03x) — busy stages have work every cycle, so
// there is nothing to skip, and profiling shows the time is productive
// per-instruction dataflow work (issue wakeup, commit bookkeeping,
// operand latching). The layer's real win is stall-bound runs where
// whole-machine fast-forward is unavailable (OnCycle hooks and fault
// campaigns suspend it): spin with fast-forward off measures ~8x —
// see DESIGN.md §14 for the breakdown. Raw wall-clock on shared-CPU
// CI hosts swings by more than 30% between runs of the same binary,
// so every pass/fail floor below is either a same-process A/B ratio,
// an allocation count, or a host-scaled relative floor; raw
// cross-host comparisons are reported but informational.
const (
	// skipParityFloor gates the busy-cell (gzip) stage-skip on/off
	// ratio (host-independent, same process): the readiness layer must
	// not slow busy runs down. Measured 0.95-1.03x; floor 0.93x leaves
	// noise margin without hiding a real regression.
	skipParityFloor = 0.93
	// skipSpinNoFFFloor gates the spin cell measured with fast-forward
	// disabled in both arms — the stall-bound regime where the skip
	// layer carries the run on its own. Measured 7.6-8.7x; floor 4x.
	skipSpinNoFFFloor = 4.0
	// ffSpinSpeedupFloor gates the spin fast-forward on/off ratio.
	// BENCH_2 measured >3x, but this leg made the non-fast-forward
	// spin baseline ~2.4x faster (sparse-overlay image + stage skip),
	// which shrinks the ratio while absolute speed improved; measured
	// 2.2-2.6x now, floor 1.8x.
	ffSpinSpeedupFloor = 1.8
	// spinAllocsCeil / spinBytesCeil gate the spin allocation-anomaly
	// fix: BENCH_2 measured 0.0366 allocs and 186 bytes per
	// instruction; the sparse-overlay image measures 0.0038-0.0041
	// allocs and 52-55 bytes. The bytes ceiling is looser than the
	// steady-state figure (~4 bytes/instr over 500k instrs) because
	// the short bench window amortizes overlay-map growth poorly.
	spinAllocsCeil = 0.005
	spinBytesCeil  = 80.0
)

// evaluateGates fills rep.Gates and rep.AllPass. Host speed varies
// across CI machines, so the BENCH_2 comparison is normalized: the
// current baseline/gzip cell against its embedded counterpart gives a
// host scale factor, and every other shared cell must reach 90% of its
// scaled reference (60% for >=8-way cells, whose throughput tracks
// free parallel capacity rather than single-core speed). The remaining gates are host-independent ratios:
// fast-forward and stage-skip A/B pairs must be bit-identical, the
// spin fast-forward speedup and the stall-bound (fast-forward-off)
// spin stage-skip speedup must hold their floors, the busy gzip cell
// must hold stage-skip parity with sane skip rates, and the spin
// allocation rates must stay fixed. The raw gzip-vs-BENCH_2 ratio is
// reported for the record but never fails the run.
func evaluateGates(rep *BenchReport) {
	cur := func(machine, work string, cores int) *ThroughputCell {
		for i := range rep.Throughput {
			c := &rep.Throughput[i]
			if c.Machine == machine && c.Workload == work && c.Cores == cores {
				return c
			}
		}
		return nil
	}
	hostScale := 1.0
	if ref := cur(bench2.Cells[0].Machine, bench2.Cells[0].Workload, bench2.Cells[0].Cores); ref != nil {
		hostScale = ref.InstrsPerSec / bench2.Cells[0].InstrsPerSec
	}
	for _, b2 := range bench2.Cells {
		name := fmt.Sprintf("throughput/%s/%s/%d", b2.Machine, b2.Workload, b2.Cores)
		c := cur(b2.Machine, b2.Workload, b2.Cores)
		if c == nil {
			rep.Gates = append(rep.Gates, GateResult{Name: name, Pass: false,
				Detail: "cell missing from report"})
			continue
		}
		// Wide cells get a looser floor: the anchor measures single-core
		// host speed, but >=8-way throughput tracks the host's free
		// parallel capacity, which swings independently on shared CI
		// machines (observed 0.84-1.18x of the scaled reference across
		// back-to-back runs). The floor is a gross-regression tripwire;
		// the bit-identity and allocation gates carry the precision.
		factor := 0.9
		if b2.Cores >= 8 {
			factor = 0.6
		}
		want := factor * hostScale * b2.InstrsPerSec
		rep.Gates = append(rep.Gates, GateResult{
			Name: name, Pass: c.InstrsPerSec >= want,
			Detail: fmt.Sprintf("%.0f instrs/s, floor %.0f (host scale %.2f, factor %.1f)",
				c.InstrsPerSec, want, hostScale, factor),
		})
	}
	if c := cur("baseline", "gzip", 1); c != nil {
		// Informational, always passes: raw wall-clock varies >30%
		// between runs on shared-CPU hosts, so a raw cross-host floor
		// would gate on machine noise. Host-independent improvements
		// are gated by the stage-skip and fast-forward ratio gates.
		rep.Gates = append(rep.Gates, GateResult{
			Name: "throughput/baseline/gzip/vs-bench2", Pass: true,
			Detail: fmt.Sprintf("%.2fx of raw BENCH_2 (informational; host-dependent)",
				c.InstrsPerSec/bench2.Cells[0].InstrsPerSec),
		})
	}
	if c := cur("baseline", "spin", 1); c != nil {
		rep.Gates = append(rep.Gates, GateResult{
			Name: "alloc/baseline/spin/allocs-per-instr", Pass: c.AllocsPerInstr <= spinAllocsCeil,
			Detail: fmt.Sprintf("%.4f allocs/instr, ceiling %.4f (BENCH_2 anomaly: %.4f)",
				c.AllocsPerInstr, spinAllocsCeil, bench2.Cells[5].AllocsPerInstr),
		})
		rep.Gates = append(rep.Gates, GateResult{
			Name: "alloc/baseline/spin/bytes-per-instr", Pass: c.BytesPerInstr <= spinBytesCeil,
			Detail: fmt.Sprintf("%.1f bytes/instr, ceiling %.1f (BENCH_2 anomaly: %.1f)",
				c.BytesPerInstr, spinBytesCeil, bench2.Cells[5].BytesPerInstr),
		})
	}
	for _, sc := range rep.StageSkip {
		name := fmt.Sprintf("stage-skip/%s/%s/%d", sc.Machine, sc.Workload, sc.Cores)
		if sc.NoFastForward {
			name += "-noff"
		}
		rep.Gates = append(rep.Gates, GateResult{
			Name: name + "/bit-identical", Pass: sc.Identical,
			Detail: fmt.Sprintf("skip on/off results match: %t", sc.Identical),
		})
		if sc.NoFastForward && sc.Workload == "spin" {
			rep.Gates = append(rep.Gates, GateResult{
				Name: name + "/speedup", Pass: sc.Speedup >= skipSpinNoFFFloor,
				Detail: fmt.Sprintf("%.2fx, floor %.2fx (stall-bound, fast-forward off in both arms)",
					sc.Speedup, skipSpinNoFFFloor),
			})
		}
		if sc.Machine == "baseline" && sc.Workload == "gzip" {
			rep.Gates = append(rep.Gates, GateResult{
				Name: name + "/parity", Pass: sc.Speedup >= skipParityFloor,
				Detail: fmt.Sprintf("%.2fx, floor %.2fx (busy cell: layer must not slow the run)",
					sc.Speedup, skipParityFloor),
			})
			sane := true
			for _, f := range []float64{sc.WritebackFrac, sc.CaptureFrac, sc.CommitFrac, sc.IssueFrac} {
				if f <= 0.01 || f >= 0.999 {
					sane = false
				}
			}
			rep.Gates = append(rep.Gates, GateResult{
				Name: name + "/skip-rates-sane", Pass: sane,
				Detail: fmt.Sprintf("wb=%.0f%% cap=%.0f%% com=%.0f%% iss=%.0f%% of core-cycles (each must sit in (1%%, 99.9%%))",
					100*sc.WritebackFrac, 100*sc.CaptureFrac, 100*sc.CommitFrac, 100*sc.IssueFrac),
			})
		}
	}
	for _, f := range rep.FastForward {
		name := fmt.Sprintf("fast-forward/%s/%s/%d", f.Machine, f.Workload, f.Cores)
		pass, want := true, ""
		if f.Workload == "spin" {
			pass = f.Speedup >= ffSpinSpeedupFloor
			want = fmt.Sprintf(", floor %.1fx", ffSpinSpeedupFloor)
		}
		rep.Gates = append(rep.Gates, GateResult{
			Name: name + "/speedup", Pass: pass,
			Detail: fmt.Sprintf("%.1fx%s", f.Speedup, want),
		})
		rep.Gates = append(rep.Gates, GateResult{
			Name: name + "/bit-identical", Pass: f.Identical,
			Detail: fmt.Sprintf("skip on/off results match: %t", f.Identical),
		})
	}
	rep.AllPass = true
	for _, g := range rep.Gates {
		if !g.Pass {
			rep.AllPass = false
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WriteBenchReport writes the report as indented JSON to path.
func WriteBenchReport(path string, rep BenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
