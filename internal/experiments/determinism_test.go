package experiments

import (
	"reflect"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// TestSweepDeterminism runs the full registry — every machine, a
// uniprocessor and a multiprocessor workload, multiple MP samples —
// through the serial and the parallel sweep paths and requires the two
// matrices to be bit-identical. This is the contract that lets
// Parallel default to on: the worker pool may schedule cells in any
// order, but seeds are derived per cell and observations are folded in
// canonical cell order, so parallelism must be invisible in the
// results.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry sweep is slow; skipped in -short")
	}
	cfg := Config{
		UniInstr:  3000,
		MPInstr:   800,
		MPCores:   2,
		Samples:   2,
		Seed:      42,
		Workloads: []string{"gzip", "radiosity"},
	}
	machines := config.Names()

	cfg.Parallel = false
	serial := Run(cfg, machines)
	cfg.Parallel = true
	parallel := Run(cfg, machines)

	for _, mc := range machines {
		for _, w := range cfg.Workloads {
			a, b := serial.Get(mc, w), parallel.Get(mc, w)
			if a == nil || b == nil {
				t.Fatalf("%s/%s: missing point (serial=%v parallel=%v)", mc, w, a != nil, b != nil)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: serial and parallel sweeps diverge:\n serial   IPC=%v raw=%v cons=%v\n parallel IPC=%v raw=%v cons=%v",
					mc, w, a.IPC, a.RAWSquash, a.ConsSquash, b.IPC, b.RAWSquash, b.ConsSquash)
			}
		}
	}
}

// TestRunRepeatable runs every registered machine twice with the same
// seed and requires identical end-of-run results: same IPC, same
// pipeline counter block, same named counters. This pins down the
// simulator's own determinism, independent of the sweep layer.
func TestRunRepeatable(t *testing.T) {
	work, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip workload missing")
	}
	for _, name := range config.Names() {
		mc, ok := config.ByName(name)
		if !ok {
			t.Fatalf("machine %q not in registry", name)
		}
		opt := system.Options{Cores: 1, Seed: 7, DMAInterval: 4000, DMABurst: 2}
		run := func() system.Result {
			s := system.New(mc, work, opt)
			return s.Run(4000, opt)
		}
		a, b := run(), run()
		if a.IPC != b.IPC {
			t.Errorf("%s: IPC differs across identical runs: %v vs %v", name, a.IPC, b.IPC)
		}
		if !reflect.DeepEqual(a.Pipe, b.Pipe) {
			t.Errorf("%s: pipeline stats differ across identical runs", name)
		}
		an, bn := a.Counters.Names(), b.Counters.Names()
		if !reflect.DeepEqual(an, bn) {
			t.Errorf("%s: counter name sets differ", name)
			continue
		}
		for _, c := range an {
			if av, bv := a.Counters.Get(c), b.Counters.Get(c); av != bv {
				t.Errorf("%s: counter %s differs: %d vs %d", name, c, av, bv)
			}
		}
	}
}
