package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// TestSweepDeterminism runs the full registry — every machine, a
// uniprocessor and a multiprocessor workload, multiple MP samples —
// through the serial and the parallel sweep paths and requires the two
// matrices to be bit-identical. This is the contract that lets
// Parallel default to on: the worker pool may schedule cells in any
// order, but seeds are derived per cell and observations are folded in
// canonical cell order, so parallelism must be invisible in the
// results.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry sweep is slow; skipped in -short")
	}
	cfg := Config{
		UniInstr:  3000,
		MPInstr:   800,
		MPCores:   2,
		Samples:   2,
		Seed:      42,
		Workloads: []string{"gzip", "radiosity"},
	}
	machines := config.Names()

	cfg.Parallel = false
	serial := mustRun(t, cfg, machines)
	cfg.Parallel = true
	parallel := mustRun(t, cfg, machines)

	for _, mc := range machines {
		for _, w := range cfg.Workloads {
			a, b := serial.Get(mc, w), parallel.Get(mc, w)
			if a == nil || b == nil {
				t.Fatalf("%s/%s: missing point (serial=%v parallel=%v)", mc, w, a != nil, b != nil)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: serial and parallel sweeps diverge:\n serial   IPC=%v raw=%v cons=%v\n parallel IPC=%v raw=%v cons=%v",
					mc, w, a.IPC, a.RAWSquash, a.ConsSquash, b.IPC, b.RAWSquash, b.ConsSquash)
			}
		}
	}
}

// TestCheckpointResumeDeterminism extends the determinism contract to
// crash recovery: a matrix resumed from a partially-written checkpoint
// journal (half the cells present, plus a torn trailing line as a kill
// mid-fsync would leave) must be bit-identical to an uninterrupted run.
func TestCheckpointResumeDeterminism(t *testing.T) {
	cfg := Config{
		UniInstr:  2000,
		MPInstr:   600,
		MPCores:   2,
		Samples:   2,
		Seed:      42,
		Workloads: []string{"gzip", "radiosity"},
		Parallel:  true,
	}
	machines := []string{"baseline", "replay-all"}

	clean := mustRun(t, cfg, machines)

	// Build a complete journal, then tear it: keep the header and half
	// the cell records, append a truncated line.
	journal := filepath.Join(t.TempDir(), "matrix.jsonl")
	cfg.Checkpoint = journal
	full := mustRun(t, cfg, machines)
	if len(full.Failed) != 0 {
		t.Fatalf("journaled run failed cells: %v", full.Failed)
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(raw)
	if len(lines) < 4 {
		t.Fatalf("journal too small to tear (%d lines)", len(lines))
	}
	keep := lines[:1+(len(lines)-1)/2]
	torn := append([]byte{}, joinLines(keep)...)
	torn = append(torn, []byte(`{"key":"torn","result":{"ip`)...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := mustRun(t, cfg, machines)
	if resumed.Resumed == 0 {
		t.Fatal("nothing resumed from the torn journal")
	}
	if len(resumed.Failed) != 0 {
		t.Fatalf("resumed run failed cells: %v", resumed.Failed)
	}
	for _, mc := range machines {
		for _, w := range cfg.Workloads {
			a, b := clean.Get(mc, w), resumed.Get(mc, w)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: resumed matrix diverges from uninterrupted run:\n clean   %+v\n resumed %+v",
					mc, w, a, b)
			}
		}
	}
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, b[start:i+1])
			start = i + 1
		}
	}
	return out
}

func joinLines(lines [][]byte) []byte {
	var out []byte
	for _, l := range lines {
		out = append(out, l...)
	}
	return out
}

// TestRunRepeatable runs every registered machine twice with the same
// seed and requires identical end-of-run results: same IPC, same
// pipeline counter block, same named counters. This pins down the
// simulator's own determinism, independent of the sweep layer.
func TestRunRepeatable(t *testing.T) {
	work, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip workload missing")
	}
	for _, name := range config.Names() {
		mc, ok := config.ByName(name)
		if !ok {
			t.Fatalf("machine %q not in registry", name)
		}
		opt := system.Options{Cores: 1, Seed: 7, DMAInterval: 4000, DMABurst: 2}
		run := func() system.Result {
			s := system.New(mc, work, opt)
			return s.Run(4000, opt)
		}
		a, b := run(), run()
		if a.IPC != b.IPC {
			t.Errorf("%s: IPC differs across identical runs: %v vs %v", name, a.IPC, b.IPC)
		}
		if !reflect.DeepEqual(a.Pipe, b.Pipe) {
			t.Errorf("%s: pipeline stats differ across identical runs", name)
		}
		an, bn := a.Counters.Names(), b.Counters.Names()
		if !reflect.DeepEqual(an, bn) {
			t.Errorf("%s: counter name sets differ", name)
			continue
		}
		for _, c := range an {
			if av, bv := a.Counters.Get(c), b.Counters.Get(c); av != bv {
				t.Errorf("%s: counter %s differs: %d vs %d", name, c, av, bv)
			}
		}
	}
}
