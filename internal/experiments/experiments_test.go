package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// mustRun fails the test on a matrix infrastructure error (journal
// open/fingerprint problems; impossible without a Checkpoint).
func mustRun(t *testing.T, cfg Config, machines []string) *Matrix {
	t.Helper()
	m, err := Run(cfg, machines)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyCfg() Config {
	return Config{
		UniInstr:  6000,
		MPInstr:   1500,
		MPCores:   2,
		Samples:   1,
		Seed:      42,
		Workloads: []string{"gzip", "vortex", "radiosity"},
		Parallel:  true,
	}
}

func TestMatrixShapeAndInvariants(t *testing.T) {
	cfg := tinyCfg()
	m := mustRun(t, cfg, MachineNames)
	for _, mc := range MachineNames {
		for _, w := range cfg.Workloads {
			pt := m.Get(mc, w)
			if pt == nil || pt.IPC.N() == 0 {
				t.Fatalf("missing point %s/%s", mc, w)
			}
			if pt.IPC.Mean() <= 0 {
				t.Errorf("%s/%s: nonpositive IPC", mc, w)
			}
			if pt.Committed.Mean() <= 0 {
				t.Errorf("%s/%s: no commits", mc, w)
			}
		}
	}
	// The baseline never replays; every replay machine replays ≥ 0 and
	// replay-all replays the most.
	for _, w := range cfg.Workloads {
		base := m.Get("baseline", w)
		if base.Replays.Mean() != 0 {
			t.Errorf("%s: baseline performed replays", w)
		}
		all := m.Get("replay-all", w).Replays.Mean()
		for _, mc := range []string{"no-reorder", "no-recent-miss", "no-recent-snoop"} {
			if got := m.Get(mc, w).Replays.Mean(); got > all {
				t.Errorf("%s/%s: filtered config replays more (%.0f) than replay-all (%.0f)",
					mc, w, got, all)
			}
		}
		// NRS+NUS replays at least the NUS-flagged fraction but far
		// fewer than replay-all (the filters actually filter).
		nrs := m.Get("no-recent-snoop", w).Replays.Mean()
		if nrs > all*0.6 {
			t.Errorf("%s: NRS filtered too little: %.0f of %.0f", w, nrs, all)
		}
	}
	if m.Get("nosuch", "gzip") != nil || m.Get("baseline", "nosuch") != nil {
		t.Error("Get of unknown keys must return nil")
	}
}

func TestFigureRenderers(t *testing.T) {
	cfg := tinyCfg()
	m := mustRun(t, cfg, MachineNames)
	var b bytes.Buffer
	Figure5(&b, m)
	Figure6(&b, m)
	Figure7(&b, m)
	SquashStats(&b, m)
	Power(&b, m)
	Tables(&b)
	out := b.String()
	for _, frag := range []string{
		"Figure 5", "Figure 6", "Figure 7",
		"geomean", "replays per committed instruction",
		"squash elimination", "power model", "ΔEnergy",
		"Table 1", "Table 2",
		"gzip", "vortex", "radiosity",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered output missing %q", frag)
		}
	}
}

func TestFigure8Renderer(t *testing.T) {
	cfg := tinyCfg()
	cfg.Workloads = []string{"gzip"}
	var b bytes.Buffer
	Figure8(&b, cfg)
	out := b.String()
	if !strings.Contains(out, "vs lq32") || !strings.Contains(out, "vs lq16") {
		t.Errorf("figure 8 output incomplete:\n%s", out)
	}
}

func TestWorkloadSubsetFilter(t *testing.T) {
	cfg := tinyCfg()
	cfg.Workloads = []string{"gzip"}
	m := mustRun(t, cfg, []string{"baseline"})
	if m.Get("baseline", "gzip") == nil {
		t.Fatal("selected workload missing")
	}
	if pt := m.Get("baseline", "vortex"); pt != nil && pt.IPC.N() > 0 {
		t.Error("unselected workload was run")
	}
}

func TestSerialMatchesParallel(t *testing.T) {
	cfg := tinyCfg()
	cfg.Workloads = []string{"gzip"}
	cfg.Parallel = false
	a := mustRun(t, cfg, []string{"baseline"})
	cfg.Parallel = true
	b := mustRun(t, cfg, []string{"baseline"})
	ia := a.Get("baseline", "gzip").IPC.Mean()
	ib := b.Get("baseline", "gzip").IPC.Mean()
	if ia != ib {
		t.Errorf("parallel execution changed results: %v vs %v", ia, ib)
	}
}

func TestUnknownMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown machine should panic")
		}
	}()
	machineFor("bogus")
}

func TestRelatedWorkRenderer(t *testing.T) {
	cfg := tinyCfg()
	cfg.Workloads = []string{"vortex"}
	var b bytes.Buffer
	RelatedWork(&b, cfg)
	out := b.String()
	for _, frag := range []string{"bloom-lq", "hier-sq", "insulated", "hybrid", "replay-nrs", "replay-vpred", "geomean"} {
		if !strings.Contains(out, frag) {
			t.Errorf("related-work output missing %q", frag)
		}
	}
}
