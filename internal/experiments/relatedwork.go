package experiments

import (
	"fmt"
	"io"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/stats"
	"vbmo/internal/system"
)

// RelatedWork compares the paper's replay machine against the
// augmentative load/store-queue designs its introduction surveys
// (§1): the plain snooping baseline, the Bloom-filtered load queue
// (Sethumadhavan et al.), the hierarchical store queue (Akkary et
// al.), the Alpha-style insulated and Power4-style hybrid queues, and
// replay-verified value prediction. For each design it reports IPC
// relative to the plain baseline plus the design's signature statistic.
func RelatedWork(w io.Writer, cfg Config) {
	type design struct {
		name string
		mc   config.Machine
	}
	designs := []design{
		{"baseline", config.Baseline()},
		{"bloom-lq", config.BloomBaseline()},
		{"hier-sq", config.HierSQBaseline()},
		{"insulated", config.InsulatedBaseline()},
		{"hybrid", config.HybridBaseline()},
		{"replay-nrs", config.Replay(core.NoRecentSnoop)},
		{"replay-vpred", config.ReplayVP(core.NoRecentSnoop)},
	}
	works := cfg.workloadSet()
	fmt.Fprintln(w, "=== Related-work designs (paper §1) vs value-based replay ===")
	fmt.Fprintf(w, "%-12s", "workload")
	for _, d := range designs[1:] {
		fmt.Fprintf(w, " %13s", d.name)
	}
	fmt.Fprintln(w)

	geo := make([][]float64, len(designs))
	var bloomFiltered, bloomSearches, l2Filtered, l2Searches float64
	var vpPred, vpWrong float64
	for _, work := range works {
		if work.Multi {
			continue
		}
		ipcs := make([]float64, len(designs))
		for i, d := range designs {
			opt := system.Options{Cores: 1, Seed: cfg.Seed, DMAInterval: 4000, DMABurst: 2}
			s := system.New(d.mc, work, opt)
			s.Run(cfg.UniInstr/2, opt)
			s.ResetStats()
			res := s.Run(cfg.UniInstr, opt)
			ipcs[i] = res.IPC
			switch d.name {
			case "bloom-lq":
				bloomFiltered += float64(res.Counters.Get("lq.bloom_filtered"))
				bloomSearches += float64(res.Counters.Get("lq.searches"))
			case "hier-sq":
				l2Filtered += float64(res.Counters.Get("sq.l2_filtered"))
				l2Searches += float64(res.Counters.Get("sq.l2_searches"))
			case "replay-vpred":
				vpPred += float64(res.Counters.Get("vpred.predictions"))
				vpWrong += float64(res.Counters.Get("vpred.incorrect"))
			}
		}
		fmt.Fprintf(w, "%-12s", work.Name)
		for i := 1; i < len(designs); i++ {
			rel := ipcs[i] / ipcs[0]
			geo[i] = append(geo[i], rel)
			fmt.Fprintf(w, " %13.3f", rel)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "geomean")
	for i := 1; i < len(designs); i++ {
		fmt.Fprintf(w, " %13.3f", stats.GeoMean(geo[i]))
	}
	fmt.Fprintln(w)
	if bloomSearches+bloomFiltered > 0 {
		fmt.Fprintf(w, "bloom filter: %.1f%% of LQ CAM searches avoided\n",
			100*bloomFiltered/(bloomFiltered+bloomSearches))
	}
	if l2Searches+l2Filtered > 0 {
		fmt.Fprintf(w, "hier SQ: %.1f%% of level-two probes avoided\n",
			100*l2Filtered/(l2Filtered+l2Searches))
	}
	if vpPred > 0 {
		fmt.Fprintf(w, "value prediction: %.0f predictions, %.2f%% wrong (all verified by replay)\n",
			vpPred, 100*vpWrong/vpPred)
	}
	fmt.Fprintln(w, "(the augmentative designs keep the CAM and add hardware; replay deletes it —")
	fmt.Fprintln(w, " the paper's §1 complexity argument)")
}
