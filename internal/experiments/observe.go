package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// snapshotRuns is the representative (machine, workload) set the
// snapshots experiment samples: one uniprocessor and one multiprocessor
// workload on the baseline and on a replay configuration, enough to see
// how occupancy and replay traffic evolve over a run on both machine
// styles without rerunning the whole §5.1 matrix.
var snapshotRuns = []struct {
	machine, work string
}{
	{"baseline", "gzip"},
	{"replay-all", "gzip"},
	{"no-recent-snoop", "ocean"},
}

// Snapshots runs the metrics-snapshot experiment: each representative
// configuration executes with interval sampling enabled, then the
// interval table and the ROB/LQ/SQ occupancy histograms are printed.
// The histogram means are the time-averages behind Figure 7: the ROB
// histogram's mean for a replay machine, compared against the
// baseline's, is exactly the occupancy gap the paper's Figure 7 bars
// show. When dir is non-empty, each run's snapshots are also written to
// dir/snapshots-<machine>-<workload>.jsonl for offline analysis
// (EXPERIMENTS.md "Metrics snapshots").
func Snapshots(w io.Writer, cfg Config, dir string) error {
	for _, sr := range snapshotRuns {
		work, ok := workload.ByName(sr.work)
		if !ok {
			panic("experiments: unknown snapshot workload " + sr.work)
		}
		cores, instr := 1, cfg.UniInstr
		if work.Multi {
			cores, instr = cfg.MPCores, cfg.MPInstr
		}
		interval := int64(instr / 20)
		if interval < 100 {
			interval = 100
		}
		opt := system.Options{
			Cores: cores, Seed: cfg.Seed,
			DMAInterval: 4000, DMABurst: 2,
			SnapshotInterval: interval,
		}
		s := system.New(machineFor(sr.machine), work, opt)
		res := s.Run(instr, opt)

		fmt.Fprintf(w, "\n== %s / %s (cores=%d, interval=%d cycles) ==\n",
			sr.machine, sr.work, cores, interval)
		fmt.Fprintf(w, "%s\n", res)

		// Interval table: core 0's deltas over time.
		names := s.Metrics.CounterNames()
		fmt.Fprintf(w, "\n%-10s", "cycle")
		for _, n := range names {
			fmt.Fprintf(w, " %10s", n)
		}
		fmt.Fprintln(w)
		for _, snap := range s.Metrics.Snapshots {
			if snap.Core != 0 {
				continue
			}
			fmt.Fprintf(w, "%-10d", snap.Cycle)
			for _, n := range names {
				fmt.Fprintf(w, " %10d", snap.Deltas[n])
			}
			fmt.Fprintln(w)
		}

		fmt.Fprintf(w, "\nROB occupancy (core 0)  [Figure 7's bar for this machine is this mean]\n%s",
			s.Metrics.ROB[0])
		fmt.Fprintf(w, "LQ occupancy (core 0)\n%s", s.Metrics.LQ[0])
		fmt.Fprintf(w, "SQ occupancy (core 0)\n%s", s.Metrics.SQ[0])

		if dir != "" {
			path := filepath.Join(dir, fmt.Sprintf("snapshots-%s-%s.jsonl", sr.machine, sr.work))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := s.Metrics.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d snapshots)\n", path, len(s.Metrics.Snapshots))
		}
	}
	return nil
}
