// The litmus experiment: run the memory-ordering battery across the
// sweep configurations and print the verdict matrix. This is the
// soundness companion to the performance figures — Figure 5 shows the
// replay machines are fast, this table shows they are correct (and that
// the deliberately mis-composed NUS-alone filter of §3.3 is not).

package experiments

import (
	"fmt"
	"io"
	"strings"

	"vbmo/internal/litmus"
	"vbmo/internal/par"
)

// LitmusMatrix runs the battery sweep and writes the per-config verdict
// matrix. It returns the battery-level summary so callers (and tests)
// can assert on it.
func LitmusMatrix(w io.Writer, cfg Config) litmus.Summary {
	runs := cfg.LitmusRuns
	if runs <= 0 {
		runs = 300
	}
	workers := 1
	if cfg.Parallel {
		workers = par.Workers(cfg.Workers)
	}
	tests := litmus.Battery()
	cols := litmus.Configs()
	fmt.Fprintf(w, "\n== Litmus battery: %d tests × %d configs × %d perturbed runs ==\n",
		len(tests), len(cols), runs)
	verdicts, err := litmus.Sweep(litmus.SweepOptions{
		Tests: tests, Configs: cols,
		Runs: runs, Workers: workers, Seed: cfg.Seed,
	})
	if err != nil {
		// No checkpoint is configured here, so this cannot fire today;
		// report it as an infrastructure failure if it ever does.
		fmt.Fprintf(w, "litmus sweep error: %v\n", err)
		return litmus.Summary{Errors: []string{err.Error()}}
	}
	byCell := make(map[string]litmus.Verdict, len(verdicts))
	for _, v := range verdicts {
		byCell[v.Test+"/"+v.Config] = v
	}

	fmt.Fprintf(w, "%-10s", "")
	for _, c := range cols {
		fmt.Fprintf(w, " %-10s", c.Name)
	}
	fmt.Fprintln(w)
	for _, t := range tests {
		fmt.Fprintf(w, "%-10s", t.Name)
		for _, c := range cols {
			v := byCell[t.Name+"/"+c.Name]
			cell := "ok"
			switch {
			case v.Sound && !v.Pass():
				cell = fmt.Sprintf("FAIL(%d)", v.Forbidden+v.Cycles+v.Incomplete)
			case !v.Sound && v.Caught():
				cell = fmt.Sprintf("caught=%d", v.Forbidden+v.Cycles)
			case !v.Sound:
				cell = "escaped"
			}
			fmt.Fprintf(w, " %-10s", cell)
		}
		fmt.Fprintln(w)
	}

	sum := litmus.Summarize(verdicts)
	fmt.Fprintf(w, "sound configurations clean: %v", sum.SoundOK)
	if len(sum.FailedCells) > 0 {
		fmt.Fprintf(w, "  (failed: %s)", strings.Join(sum.FailedCells, ", "))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "unsound configuration caught: %v", sum.UnsoundCaught)
	if len(sum.CaughtBy) > 0 {
		fmt.Fprintf(w, "  (by: %s)", strings.Join(sum.CaughtBy, ", "))
	}
	fmt.Fprintln(w)
	return sum
}
