package bpred

import (
	"testing"

	"vbmo/internal/isa"
)

func small() Config {
	return Config{
		BimodalEntries:  64,
		GshareEntries:   64,
		SelectorEntries: 64,
		BTBEntries:      16,
		BTBWays:         4,
		RASEntries:      4,
	}
}

func TestAlwaysTakenLearns(t *testing.T) {
	p := New(small())
	pc := uint64(0x400)
	wrong := 0
	for i := 0; i < 100; i++ {
		taken, m := p.Predict(pc)
		if !taken {
			wrong++
		}
		p.Update(pc, true, m)
	}
	if wrong > 2 {
		t.Errorf("always-taken branch mispredicted %d times", wrong)
	}
}

func TestAlwaysNotTakenLearns(t *testing.T) {
	p := New(small())
	pc := uint64(0x404)
	wrong := 0
	for i := 0; i < 100; i++ {
		taken, m := p.Predict(pc)
		if taken {
			wrong++
		}
		p.Update(pc, false, m)
	}
	// Counters initialize weakly-taken, so a couple of warmup misses.
	if wrong > 4 {
		t.Errorf("never-taken branch mispredicted %d times", wrong)
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	p := New(small())
	pc := uint64(0x408)
	wrong := 0
	for i := 0; i < 400; i++ {
		want := i%2 == 0
		taken, m := p.Predict(pc)
		if taken != want && i > 100 {
			wrong++
		}
		p.Update(pc, want, m)
	}
	// Bimodal cannot learn T/N/T/N but gshare (and the selector) can.
	if wrong > 10 {
		t.Errorf("alternating pattern mispredicted %d of 300 post-warmup", wrong)
	}
}

func TestMispredictRateCounting(t *testing.T) {
	p := New(small())
	pc := uint64(0x40c)
	for i := 0; i < 10; i++ {
		_, m := p.Predict(pc)
		p.Update(pc, true, m)
	}
	if p.Lookups != 10 {
		t.Errorf("Lookups = %d", p.Lookups)
	}
	if r := p.MispredictRate(); r < 0 || r > 1 {
		t.Errorf("rate out of range: %v", r)
	}
	empty := New(small())
	if empty.MispredictRate() != 0 {
		t.Error("empty predictor rate should be 0")
	}
}

func TestHistoryRepairOnMispredict(t *testing.T) {
	p := New(small())
	pc := uint64(0x500)
	_, m := p.Predict(pc)
	// Force a mispredict: whatever was predicted, report the opposite.
	pred := m.BimodalTaken
	if m.UsedGshare {
		pred = m.GshareTaken
	}
	p.Update(pc, !pred, m)
	// After repair, history's low bit must reflect the actual outcome.
	wantBit := uint64(0)
	if !pred {
		wantBit = 1
	}
	if p.history&1 != wantBit {
		t.Errorf("history low bit = %d, want %d", p.history&1, wantBit)
	}
}

func TestBTBInstallAndLookup(t *testing.T) {
	p := New(small())
	if _, hit := p.PredictTarget(0x100); hit {
		t.Error("cold BTB should miss")
	}
	p.UpdateTarget(0x100, 0x2000)
	if tgt, hit := p.PredictTarget(0x100); !hit || tgt != 0x2000 {
		t.Errorf("BTB lookup = %#x,%v", tgt, hit)
	}
	// Overwrite same entry.
	p.UpdateTarget(0x100, 0x3000)
	if tgt, _ := p.PredictTarget(0x100); tgt != 0x3000 {
		t.Errorf("BTB update failed: %#x", tgt)
	}
}

func TestBTBSetConflictEviction(t *testing.T) {
	p := New(small()) // 16 entries, 4 ways -> 4 sets
	// Five PCs mapping to the same set (stride = sets*4 bytes = 16).
	pcs := []uint64{0x0, 0x10, 0x20, 0x30, 0x40}
	for i, pc := range pcs {
		p.UpdateTarget(pc, uint64(0x1000+i))
	}
	hits := 0
	for _, pc := range pcs {
		if _, hit := p.PredictTarget(pc); hit {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("expected exactly 4 of 5 conflicting entries resident, got %d", hits)
	}
}

func TestRASPushPop(t *testing.T) {
	p := New(small())
	p.Push(0x10)
	p.Push(0x20)
	if a, ok := p.Pop(); !ok || a != 0x20 {
		t.Errorf("Pop = %#x,%v", a, ok)
	}
	if a, ok := p.Pop(); !ok || a != 0x10 {
		t.Errorf("Pop = %#x,%v", a, ok)
	}
	if _, ok := p.Pop(); ok {
		t.Error("popping a cold slot should report !ok")
	}
}

func TestRASWrapsWhenFull(t *testing.T) {
	p := New(small()) // 4-entry RAS
	for i := 1; i <= 6; i++ {
		p.Push(uint64(i * 0x10))
	}
	// The newest 4 survive: 0x30,0x40,0x50,0x60 (popped newest-first).
	for _, want := range []uint64{0x60, 0x50, 0x40, 0x30} {
		if a, ok := p.Pop(); !ok || a != want {
			t.Fatalf("Pop = %#x, want %#x", a, want)
		}
	}
}

func TestPredictInstUnconditional(t *testing.T) {
	p := New(small())
	taken, _ := p.PredictInst(isa.Inst{Op: isa.OpJump}, 0x100)
	if !taken {
		t.Error("jump must predict taken")
	}
	if p.Lookups != 0 {
		t.Error("unconditional branches must not consult direction tables")
	}
	taken2, _ := p.PredictInst(isa.Inst{Op: isa.OpBeqz}, 0x104)
	_ = taken2
	if p.Lookups != 1 {
		t.Error("conditional branch should count a lookup")
	}
}

func TestDistinctBranchesDoNotInterfere(t *testing.T) {
	p := New(Config{
		BimodalEntries: 1024, GshareEntries: 1024, SelectorEntries: 1024,
		BTBEntries: 64, BTBWays: 4, RASEntries: 4,
	})
	// Train two branches with opposite biases; both should be learned.
	wrongA, wrongB := 0, 0
	for i := 0; i < 200; i++ {
		ta, ma := p.Predict(0x1000)
		p.Update(0x1000, true, ma)
		if !ta && i > 20 {
			wrongA++
		}
		tb, mb := p.Predict(0x2000)
		p.Update(0x2000, false, mb)
		if tb && i > 20 {
			wrongB++
		}
	}
	if wrongA > 8 || wrongB > 8 {
		t.Errorf("interference: wrongA=%d wrongB=%d", wrongA, wrongB)
	}
}
