// Package bpred implements the front-end branch prediction hardware from
// the paper's Table 3 machine configuration: a combined bimodal (16k
// entry) / gshare (16k entry) direction predictor with a 16k-entry
// selector, an 8k-entry 4-way BTB, and a 64-entry return address stack.
package bpred

import "vbmo/internal/isa"

// Config sizes the predictor structures. All table sizes must be powers
// of two.
type Config struct {
	BimodalEntries  int // PC-indexed 2-bit counters
	GshareEntries   int // history-xor-PC indexed 2-bit counters
	SelectorEntries int // chooser between bimodal and gshare
	BTBEntries      int // total BTB entries
	BTBWays         int
	RASEntries      int
}

// DefaultConfig returns the Table 3 configuration.
func DefaultConfig() Config {
	return Config{
		BimodalEntries:  16 * 1024,
		GshareEntries:   16 * 1024,
		SelectorEntries: 16 * 1024,
		BTBEntries:      8 * 1024,
		BTBWays:         4,
		RASEntries:      64,
	}
}

// Meta carries per-prediction state from Predict to Update so the
// predictor can train its component tables and repair global history
// after a misprediction.
type Meta struct {
	History      uint64 // global history before this prediction
	BimodalTaken bool
	GshareTaken  bool
	UsedGshare   bool
}

// Predictor is the combined direction predictor plus BTB and RAS. The
// zero value is not usable; call New.
type Predictor struct {
	cfg      Config
	bimodal  []uint8 // 2-bit saturating counters
	gshare   []uint8
	selector []uint8 // 2-bit: >=2 means "use gshare"
	history  uint64  // speculative global history, newest outcome in bit 0
	histBits uint

	btbTags    []uint64
	btbTargets []uint64
	btbLRU     []uint8
	btbSets    int

	ras    []uint64
	rasTop int

	// Lookups and Mispredicts count conditional-branch direction
	// predictions and wrong ones.
	Lookups, Mispredicts uint64
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// New builds a predictor with the given configuration.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]uint8, cfg.BimodalEntries),
		gshare:   make([]uint8, cfg.GshareEntries),
		selector: make([]uint8, cfg.SelectorEntries),
		histBits: log2(cfg.GshareEntries),
		btbSets:  cfg.BTBEntries / cfg.BTBWays,
		ras:      make([]uint64, cfg.RASEntries),
	}
	// Initialize counters to weakly taken: loop-closing backward
	// branches dominate, so this warms up quickly.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.selector {
		p.selector[i] = 1 // weakly prefer bimodal
	}
	p.btbTags = make([]uint64, cfg.BTBEntries)
	p.btbTargets = make([]uint64, cfg.BTBEntries)
	p.btbLRU = make([]uint8, cfg.BTBEntries)
	return p
}

func pcIndex(pc uint64, size int) int {
	return int((pc >> 2) & uint64(size-1))
}

// Predict returns the predicted direction for the conditional branch at
// pc and the metadata needed to train/repair on resolution. The global
// history is speculatively updated with the prediction.
func (p *Predictor) Predict(pc uint64) (bool, Meta) {
	p.Lookups++
	m := Meta{History: p.history}
	bi := p.bimodal[pcIndex(pc, p.cfg.BimodalEntries)]
	gi := p.gshare[p.gshareIndex(pc, p.history)]
	sel := p.selector[pcIndex(pc, p.cfg.SelectorEntries)]
	m.BimodalTaken = bi >= 2
	m.GshareTaken = gi >= 2
	m.UsedGshare = sel >= 2
	taken := m.BimodalTaken
	if m.UsedGshare {
		taken = m.GshareTaken
	}
	p.history = p.shiftHistory(p.history, taken)
	return taken, m
}

func (p *Predictor) gshareIndex(pc, hist uint64) int {
	return int(((pc >> 2) ^ hist) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) shiftHistory(h uint64, taken bool) uint64 {
	h <<= 1
	if taken {
		h |= 1
	}
	return h & ((1 << p.histBits) - 1)
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// Update trains the predictor with the actual outcome of the branch at
// pc, using the Meta captured at prediction time. When the prediction
// was wrong it repairs the speculative global history.
func (p *Predictor) Update(pc uint64, taken bool, m Meta) {
	predicted := m.BimodalTaken
	if m.UsedGshare {
		predicted = m.GshareTaken
	}
	if predicted != taken {
		p.Mispredicts++
		// Squash the wrong speculative history and re-insert truth.
		p.history = p.shiftHistory(m.History, taken)
	}
	bIdx := pcIndex(pc, p.cfg.BimodalEntries)
	gIdx := p.gshareIndex(pc, m.History)
	p.bimodal[bIdx] = bump(p.bimodal[bIdx], taken)
	p.gshare[gIdx] = bump(p.gshare[gIdx], taken)
	// Selector trains toward whichever component was right, when they
	// disagree.
	if m.BimodalTaken != m.GshareTaken {
		sIdx := pcIndex(pc, p.cfg.SelectorEntries)
		p.selector[sIdx] = bump(p.selector[sIdx], m.GshareTaken == taken)
	}
}

// PredictTarget looks up the BTB for the branch at pc.
func (p *Predictor) PredictTarget(pc uint64) (uint64, bool) {
	set := pcIndex(pc, p.btbSets)
	base := set * p.cfg.BTBWays
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[base+w] == pc|1 {
			p.btbLRU[base+w] = 0
			for o := 0; o < p.cfg.BTBWays; o++ {
				if o != w && p.btbLRU[base+o] < 255 {
					p.btbLRU[base+o]++
				}
			}
			return p.btbTargets[base+w], true
		}
	}
	return 0, false
}

// UpdateTarget installs or refreshes the BTB entry for pc.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	set := pcIndex(pc, p.btbSets)
	base := set * p.cfg.BTBWays
	victim := 0
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[base+w] == pc|1 {
			victim = w
			break
		}
		if p.btbLRU[base+w] > p.btbLRU[base+victim] {
			victim = w
		}
	}
	p.btbTags[base+victim] = pc | 1
	p.btbTargets[base+victim] = target
	p.btbLRU[base+victim] = 0
	for o := 0; o < p.cfg.BTBWays; o++ {
		if o != victim && p.btbLRU[base+o] < 255 {
			p.btbLRU[base+o]++
		}
	}
}

// Push pushes a return address onto the RAS (overwriting the oldest
// entry when full, as hardware does).
func (p *Predictor) Push(addr uint64) {
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

// Pop pops the most recent return address; ok is false when it pops a
// never-written slot (cold stack).
func (p *Predictor) Pop() (uint64, bool) {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	a := p.ras[p.rasTop]
	return a, a != 0
}

// History returns the current speculative global history (snapshotted
// by the pipeline for squash repair).
func (p *Predictor) History() uint64 { return p.history }

// SetHistory restores the global history to a snapshot (used when a
// non-branch squash discards speculatively-updated history).
func (p *Predictor) SetHistory(h uint64) { p.history = h }

// MispredictRate returns mispredicts/lookups.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// PredictInst is a convenience wrapper: unconditional branches are
// always predicted taken and do not consult the direction tables.
func (p *Predictor) PredictInst(in isa.Inst, pc uint64) (bool, Meta) {
	if !in.IsConditional() {
		return true, Meta{}
	}
	return p.Predict(pc)
}
