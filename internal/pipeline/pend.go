// pendList is the issued-awaiting-completion list in struct-of-arrays
// form (DESIGN.md §12): the completion cycles that writeback — and the
// quiescence predicate — scan every cycle live in their own dense
// int64 array, so the common no-completion cycle touches one cache
// line per handful of in-flight instructions instead of chasing one
// entry pointer each. The entry pointers are parallel cold payload,
// dereferenced only for due completions. Both slices are preallocated
// to ROB capacity; the hot loop never grows them.

package pipeline

// pendList holds issued instructions awaiting writeback.
type pendList struct {
	// due mirrors each entry's doneCycle (immutable after issue).
	due     []int64
	entries []*entry
}

func (p *pendList) init(n int) {
	p.due = make([]int64, 0, n)
	p.entries = make([]*entry, 0, n)
}

func (p *pendList) len() int { return len(p.entries) }

//vbr:hotpath
func (p *pendList) push(e *entry) {
	// Both slices are preallocated to ROB capacity in init and the ROB
	// bounds in-flight instructions, so these appends never grow.
	p.due = append(p.due, e.doneCycle) //vbr:allow hotalloc capacity preallocated to ROB size in init
	p.entries = append(p.entries, e)   //vbr:allow hotalloc capacity preallocated to ROB size in init
}

// swapRemove drops index i, moving the last element into its place
// (writeback's compaction order, preserved exactly from the AoS form).
func (p *pendList) swapRemove(i int) {
	last := len(p.entries) - 1
	p.due[i] = p.due[last]
	p.entries[i] = p.entries[last]
	p.entries[last] = nil // do not pin recycled entries
	p.due = p.due[:last]
	p.entries = p.entries[:last]
}

// filterOlder keeps only entries with tag < fromTag, in order (squash).
func (p *pendList) filterOlder(fromTag int64) {
	out := 0
	for i, e := range p.entries {
		if e.tag < fromTag {
			p.due[out] = p.due[i]
			p.entries[out] = e
			out++
		}
	}
	clearTail(p.entries[out:])
	p.due = p.due[:out]
	p.entries = p.entries[:out]
}
