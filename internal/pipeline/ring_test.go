package pipeline

import (
	"testing"

	"vbmo/internal/consistency"
)

// The ring buffers exist to make the cycle loop allocation-free, but
// they must stay drop-in replacements for the slices they replaced.
// These tests exercise every operation across wraparound boundaries
// and check the writerRing against a reference map + eviction log.

func TestEntryRingFIFOWraparound(t *testing.T) {
	const capacity = 4
	r := newEntryRing(capacity)
	mk := func(tag int64) *entry { return &entry{tag: tag} }

	// Push/pop enough times to wrap the head several times over.
	next := int64(0)
	oldest := int64(0)
	for round := 0; round < 5; round++ {
		for r.Len() < capacity {
			r.Push(mk(next))
			next++
		}
		// Random access must see entries oldest-first.
		for i := 0; i < r.Len(); i++ {
			if got := r.At(i).tag; got != oldest+int64(i) {
				t.Fatalf("round %d: At(%d).tag = %d, want %d", round, i, got, oldest+int64(i))
			}
		}
		// Drain a couple from the front.
		for k := 0; k < 2; k++ {
			if got := r.PopFront().tag; got != oldest {
				t.Fatalf("round %d: PopFront tag = %d, want %d", round, got, oldest)
			}
			oldest++
		}
	}
}

func TestEntryRingTruncateFrom(t *testing.T) {
	const capacity = 4
	r := newEntryRing(capacity)
	mk := func(tag int64) *entry { return &entry{tag: tag} }

	// Arrange a wrapped state: head in the middle of the backing array.
	for i := int64(0); i < capacity; i++ {
		r.Push(mk(i))
	}
	r.PopFront()
	r.PopFront()
	r.Push(mk(4))
	r.Push(mk(5)) // ring now holds 2,3,4,5 with head=2

	r.TruncateFrom(1) // squash everything younger than the oldest
	if r.Len() != 1 {
		t.Fatalf("Len after TruncateFrom(1) = %d, want 1", r.Len())
	}
	if got := r.At(0).tag; got != 2 {
		t.Fatalf("survivor tag = %d, want 2", got)
	}
	// Dropped slots must be nil'd so the pool's recycled entries are not
	// also reachable through the ring.
	nils := 0
	for _, e := range r.buf {
		if e == nil {
			nils++
		}
	}
	if nils != capacity-1 {
		t.Fatalf("nil backing slots = %d, want %d", nils, capacity-1)
	}

	// The ring stays usable after a truncate.
	r.Push(mk(6))
	if r.Len() != 2 || r.At(1).tag != 6 {
		t.Fatal("push after truncate broke the ring")
	}
}

func TestFetchRingOps(t *testing.T) {
	const capacity = 3
	r := newFetchRing(capacity)
	next := uint64(0)
	front := uint64(0)
	for round := 0; round < 4; round++ {
		for r.Len() < capacity {
			f := r.PushSlot()
			if f.pc != 0 || f.readyCycle != 0 {
				t.Fatal("PushSlot must hand out a zeroed slot")
			}
			f.pc = next
			next++
		}
		for k := 0; k < 2; k++ {
			if got := r.Front().pc; got != front {
				t.Fatalf("round %d: Front().pc = %d, want %d", round, got, front)
			}
			r.DropFront()
			front++
		}
	}
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear left entries behind")
	}
	// A cleared ring accepts a full capacity again.
	for i := 0; i < capacity; i++ {
		r.PushSlot().pc = 100 + uint64(i)
	}
	if r.Front().pc != 100 {
		t.Fatal("ring confused after Clear")
	}
}

// TestWriterRingMatchesReferenceWindow drives the writerRing alongside
// the map-plus-eviction-log it replaced and requires identical lookup
// results for hits, evicted tags, and never-pushed tags.
func TestWriterRingMatchesReferenceWindow(t *testing.T) {
	const window = 8
	r := newWriterRing(window)
	ref := make(map[int64]consistency.Writer)
	var log []int64

	tag := int64(0)
	for i := 0; i < 50; i++ {
		tag += int64(1 + i%3) // strictly increasing, with gaps
		w := consistency.Writer(i + 1)
		r.Push(tag, w)
		ref[tag] = w
		log = append(log, tag)
		if len(log) > window {
			delete(ref, log[0])
			log = log[1:]
		}

		// Every tag ever seen, plus some never-pushed ones.
		for probe := int64(0); probe <= tag+2; probe++ {
			gotW, gotOK := r.Lookup(probe)
			wantW, wantOK := ref[probe]
			if gotOK != wantOK || (gotOK && gotW != wantW) {
				t.Fatalf("after %d pushes: Lookup(%d) = (%v,%v), want (%v,%v)",
					i+1, probe, gotW, gotOK, wantW, wantOK)
			}
		}
	}
}

func TestWriterRingNilSafe(t *testing.T) {
	var r *writerRing
	if _, ok := r.Lookup(1); ok {
		t.Fatal("nil writerRing must report a miss")
	}
}

// TestPoolGenerationTags checks the freelist's recycle contract: the
// generation survives zeroing and strictly increases, so a consumer
// holding a stale producer pointer is detectable (entry.srcReady
// panics on a generation mismatch).
func TestPoolGenerationTags(t *testing.T) {
	var p pool
	p.init(2)
	a := p.get()
	g := a.gen
	if g == 0 {
		t.Fatal("recycled entry must have a nonzero generation")
	}
	a.tag = 99
	a.result = 7
	p.put(a)
	b := p.get()
	if b != a {
		t.Fatal("pool did not recycle the freed entry")
	}
	if b.tag != 0 || b.result != 0 {
		t.Fatal("pool must zero recycled entries")
	}
	if b.gen != g+1 {
		t.Fatalf("generation after recycle = %d, want %d", b.gen, g+1)
	}

	// Stale-pointer detection end to end.
	consumer := &entry{reads1: true, src1: b, src1Gen: b.gen}
	p.put(b)
	stale := p.get() // same slot, bumped generation
	if stale != b {
		t.Fatal("expected the same slot back")
	}
	defer func() {
		if recover() == nil {
			t.Error("srcReady must panic on a stale producer generation")
		}
	}()
	consumer.srcReady(1)
}

// TestPoolExhaustionFallback: an empty pool falls back to heap
// allocation with a fresh generation rather than failing.
func TestPoolExhaustionFallback(t *testing.T) {
	var p pool
	p.init(1)
	_ = p.get()
	extra := p.get()
	if extra == nil || extra.gen != 1 {
		t.Fatalf("fallback entry gen = %v, want 1", extra.gen)
	}
}
