package pipeline

import (
	"fmt"
	"strings"

	"vbmo/internal/fault"
)

// SetFaults attaches a fault injector to the core. Nil (the default)
// disables every injection hook at the cost of one nil check per site.
func (c *Core) SetFaults(f *fault.Injector) { c.flt = f }

// Faults returns the attached fault injector (nil when disabled).
func (c *Core) Faults() *fault.Injector { return c.flt }

// Throttle stalls fetch until the given cycle if that is later than any
// stall already in effect — the watchdog's replay-squash-storm backoff
// lever. It never shortens an existing stall, so it composes with
// i-cache-miss and redirect stalls.
func (c *Core) Throttle(until int64) {
	if until > c.fetchStallUntil {
		c.fetchStallUntil = until
	}
}

// ReplaySquashes returns the core's cumulative replay-triggered squash
// count (RAW + consistency + value-prediction mismatches) — the signal
// the watchdog's storm detector integrates.
func (c *Core) ReplaySquashes() uint64 {
	return c.Stats.SquashesReplayRAW + c.Stats.SquashesReplayCons + c.Stats.SquashesVPred
}

// EntryDump is one reorder-buffer entry's externally visible state, for
// deadlock reports.
type EntryDump struct {
	Tag       int64  `json:"tag"`
	PC        uint64 `json:"pc"`
	Class     string `json:"class"`
	Issued    bool   `json:"issued"`
	Done      bool   `json:"done"`
	Load      bool   `json:"load,omitempty"`
	Store     bool   `json:"store,omitempty"`
	Addr      uint64 `json:"addr,omitempty"`
	AddrValid bool   `json:"addr_valid,omitempty"`
	// Replay progress (value-replay machines).
	ReplayDecided bool `json:"replay_decided,omitempty"`
	NeedReplay    bool `json:"need_replay,omitempty"`
	ReplayIssued  bool `json:"replay_issued,omitempty"`
	ReplayedOK    bool `json:"replayed_ok,omitempty"`
	NoReplay      bool `json:"no_replay,omitempty"`
}

// StateDump is a structured snapshot of a core's commit-relevant state,
// taken by the forward-progress watchdog when the machine stops
// committing.
type StateDump struct {
	Core            int         `json:"core"`
	Cycle           int64       `json:"cycle"`
	Committed       uint64      `json:"committed"`
	FetchPC         uint64      `json:"fetch_pc"`
	FetchStallUntil int64       `json:"fetch_stall_until"`
	DispatchBarrier int64       `json:"dispatch_barrier"`
	ROBLen          int         `json:"rob_len"`
	IQLen           int         `json:"iq_len"`
	LQLen           int         `json:"lq_len"`
	SQLen           int         `json:"sq_len"`
	FetchQLen       int         `json:"fetchq_len"`
	ReplaySquashes  uint64      `json:"replay_squashes"`
	ROB             []EntryDump `json:"rob"`
}

// Dump snapshots the core's state, including up to maxROB entries from
// the head (commit end) of the reorder buffer.
func (c *Core) Dump(maxROB int) StateDump {
	d := StateDump{
		Core:            c.ID,
		Cycle:           c.cycle,
		Committed:       c.Stats.Committed,
		FetchPC:         c.fetchPC,
		FetchStallUntil: c.fetchStallUntil,
		DispatchBarrier: c.dispatchBarrier,
		ROBLen:          c.rob.Len(),
		IQLen:           len(c.iq),
		LQLen:           c.LQLen(),
		SQLen:           c.sq.Len(),
		FetchQLen:       c.fetchQ.Len(),
		ReplaySquashes:  c.ReplaySquashes(),
	}
	n := c.rob.Len()
	if maxROB > 0 && n > maxROB {
		n = maxROB
	}
	for i := 0; i < n; i++ {
		e := c.rob.At(i)
		d.ROB = append(d.ROB, EntryDump{
			Tag: e.tag, PC: e.pc, Class: e.cls.String(),
			Issued: e.issued, Done: e.done,
			Load: e.isLoad, Store: e.isStore,
			Addr: e.addr, AddrValid: e.addrValid,
			ReplayDecided: e.replayDecided, NeedReplay: e.needReplay,
			ReplayIssued: e.replayIssued, ReplayedOK: e.replayedOK,
			NoReplay: e.noReplay,
		})
	}
	return d
}

// String renders the dump for a human-readable deadlock report.
func (d StateDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d @cycle %d: committed=%d fetchPC=%#x stallUntil=%d barrier=%d rob=%d iq=%d lq=%d sq=%d fetchq=%d replaySquashes=%d",
		d.Core, d.Cycle, d.Committed, d.FetchPC, d.FetchStallUntil,
		d.DispatchBarrier, d.ROBLen, d.IQLen, d.LQLen, d.SQLen,
		d.FetchQLen, d.ReplaySquashes)
	for _, e := range d.ROB {
		fmt.Fprintf(&b, "\n    tag=%d pc=%#x %s", e.Tag, e.PC, e.Class)
		if e.Issued {
			b.WriteString(" issued")
		}
		if e.Done {
			b.WriteString(" done")
		}
		if e.AddrValid {
			fmt.Fprintf(&b, " addr=%#x", e.Addr)
		}
		if e.Load {
			fmt.Fprintf(&b, " replay[decided=%v need=%v issued=%v ok=%v norepl=%v]",
				e.ReplayDecided, e.NeedReplay, e.ReplayIssued, e.ReplayedOK, e.NoReplay)
		}
	}
	return b.String()
}
