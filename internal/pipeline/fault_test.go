package pipeline

// Fault-injection tests: deliberately break each ordering mechanism and
// assert that the verification infrastructure — the machine-equivalence
// oracle — catches the resulting violations. A verifier that cannot
// detect seeded bugs proves nothing.

import (
	"testing"

	"vbmo/internal/config"
	ecore "vbmo/internal/core"
	"vbmo/internal/isa"
	"vbmo/internal/prog"
)

// rawHazardLoop: a store whose address resolves late (behind a divide)
// followed by a same-address load whose address is ready at once, with
// a changing stored value — premature loads read stale data.
func rawHazardLoop() *prog.Program {
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 14, Src1: 20, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpXor, Dst: 15, Src1: 14, Src2: 14})
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 13, Src1: 1, Src2: 15})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 13, Src2: 20})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 1})
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 22, Src1: 21, Src2: 22})
	b.Branch(isa.OpJump, 0, top)
	return b.Build()
}

// oracleDiverges runs the core and reports whether its committed stream
// ever disagrees with the in-order reference executor.
func oracleDiverges(t *testing.T, c *Core, p *prog.Program, st prog.ArchState, n uint64) bool {
	t.Helper()
	var stream []prog.Committed
	c.CommitHook = func(r prog.Committed) { stream = append(stream, r) }
	runFor(t, c, n)
	ex := prog.NewExecutor(p, prog.NewImage(11), st)
	want := ex.Run(len(stream))
	for i := range want {
		g, w := stream[i], want[i]
		if g.PC != w.PC || g.Result != w.Result || g.Addr != w.Addr {
			return true
		}
	}
	return false
}

func TestFaultInjectionBaselineRAWCheck(t *testing.T) {
	p := rawHazardLoop()
	st := initState()

	// Healthy baseline: stream matches the oracle.
	c, _ := mkCore(config.Baseline(), p, st)
	if oracleDiverges(t, c, p, st, 1500) {
		t.Fatal("healthy baseline diverged from the oracle")
	}

	// Break the load-queue RAW search: premature loads commit stale
	// values and the oracle must notice.
	cBroken, _ := mkCore(config.Baseline(), p, st)
	cBroken.faultNoRAWCheck = true
	if !oracleDiverges(t, cBroken, p, st, 1500) {
		t.Error("seeded RAW-check fault went undetected — the oracle has no teeth")
	}
}

func TestFaultInjectionReplayCompare(t *testing.T) {
	p := rawHazardLoop()
	st := initState()

	c, _ := mkCore(config.Replay(ecore.ReplayAll), p, st)
	if oracleDiverges(t, c, p, st, 1500) {
		t.Fatal("healthy replay machine diverged from the oracle")
	}

	cBroken, _ := mkCore(config.Replay(ecore.ReplayAll), p, st)
	cBroken.faultNoReplay = true
	if !oracleDiverges(t, cBroken, p, st, 1500) {
		t.Error("seeded replay fault went undetected — the oracle has no teeth")
	}
}

func TestFaultInjectionNoFalsePositiveWithoutHazard(t *testing.T) {
	// A program with no memory hazards commits correctly even with both
	// mechanisms disabled: the faults only matter when ordering does.
	p := straightline()
	st := initState()
	c, _ := mkCore(config.Baseline(), p, st)
	c.faultNoRAWCheck = true
	if oracleDiverges(t, c, p, st, 600) {
		t.Error("hazard-free program diverged with RAW check disabled")
	}
}
