package pipeline

import (
	"vbmo/internal/bpred"
	"vbmo/internal/cache"
	"vbmo/internal/config"
	"vbmo/internal/consistency"
	"vbmo/internal/core"
	"vbmo/internal/deppred"
	"vbmo/internal/fault"
	"vbmo/internal/isa"
	"vbmo/internal/lsq"
	"vbmo/internal/prog"
	"vbmo/internal/trace"
	"vbmo/internal/vpred"
)

// Core is one out-of-order processor core.
type Core struct {
	ID  int
	cfg config.Machine

	prog *prog.Program
	mem  *prog.Image
	hier *cache.Hierarchy
	bp   *bpred.Predictor

	sq     *lsq.StoreQueue
	alq    *lsq.AssocLoadQueue // baseline machines
	eng    *core.Engine        // value-replay machines
	ssets  *deppred.StoreSets
	simple *deppred.Simple
	vp     *vpred.LastValue // optional load-value predictor

	nextTag int64
	rob     entryRing // reorder buffer, capacity ROBSize
	iq      []*entry  // issue queue, preallocated to IQSize
	pend    pendList  // issued, awaiting completion; preallocated
	psd     []*entry  // stores awaiting data capture; preallocated
	pool    pool

	renameMap [isa.NumRegs]*entry
	arch      prog.ArchState

	fetchPC         uint64
	fetchQ          fetchRing // fetch-to-dispatch buffer, capacity FetchBuf
	fetchStallUntil int64

	dispatchBarrier int64 // membar tag stalling dispatch, -1 when clear

	// replay sequencing. The commit-stage cache port budget is 1 in
	// the paper's design (stores have priority, replays compete); the
	// back-end-ports ablation widens it via ReplayPerCycle.
	portsUsed       int
	storeCommitted  bool
	lastReplayCycle int64
	noReplayPC      uint64 // rule-3 mark for the next dispatch of this PC
	noReplayArmed   bool

	cycle int64

	// ffStall is the dispatch stall kind the last Quiescent call
	// recorded, consumed by FastForward (see quiesce.go).
	ffStall stallKind

	// Stage-skip readiness layer (stageskip.go, DESIGN.md §14): cheap
	// per-stage predicates, maintained at enqueue/dequeue time, that let
	// Step elide a stage's scan when it provably has no work this cycle.
	// A skipped scan is exactly a scan that would have mutated nothing
	// and counted nothing, so skipping is bit-identical to full
	// stepping; skipOff is the -stageskip=off escape hatch.
	skipOff     bool
	wbMinDue    int64 // lower bound on the earliest pending completion cycle
	psdQuiet    bool  // no store-data capture can progress until an event
	commitQuiet bool  // the ROB head cannot commit until an event
	issueQuiet  bool  // no issue-queue entry can act until an event
	issueProbe  bool  // scratch: a load reached the probe path this scan
	replayBase  int   // settled ROB prefix the replay scan starts past
	loads       loadTracker

	// Skip counts the stage scans elided by the readiness layer; it
	// lives outside Stats so a skipping run's Result stays bit-identical
	// to a non-skipping one (same contract as the system's FFStats).
	Skip SkipStats

	// CommitHook, if set, observes every committed instruction (the
	// machine-equivalence oracle and the constraint-graph checker).
	CommitHook func(prog.Committed)

	// Fault-injection switches (tests only): disable the baseline's
	// store-agen load-queue search, or the replay machine's value
	// comparison. They exist to prove the oracle and the consistency
	// checker detect the violations these mechanisms prevent.
	faultNoRAWCheck bool
	faultNoReplay   bool

	// Shadow, if set, tracks store identity for the constraint-graph
	// checker: loads sample their value's writer at the same instant
	// they sample the value.
	Shadow *consistency.Shadow
	// storeWriters records recently committed store tags and their writer
	// identities so forwarded loads can resolve provenance at commit; the
	// fixed window (2×ROBSize stores) bounds its size — any forwarding
	// load commits within one ROB generation of its source store. Nil
	// until the first consistency-tracked store commit.
	storeWriters *writerRing
	writerSeq    uint64 // store writer sequence (survives ResetStats)

	// trace, when non-nil, receives the replay-lifecycle event stream
	// (DESIGN.md §6). Every emission site is guarded by one nil check so
	// the disabled path costs nothing; set it with SetTracer.
	trace *trace.Tracer

	// flt, when non-nil, is the adversarial fault injector (DESIGN.md
	// §10): it corrupts premature load values, suppresses filter
	// signals, and tracks each injection to its detection or escape.
	// Same contract as trace: every hook site is one nil check, so a
	// run without faults is bit-identical to an uninstrumented one.
	flt *fault.Injector

	Stats Stats
}

// New builds a core running program p against the shared image, with
// the given cache hierarchy (already attached to its backend/bus).
func New(id int, cfg config.Machine, p *prog.Program, mem *prog.Image, hier *cache.Hierarchy, init prog.ArchState) *Core {
	// A nonzero init.PC selects a per-core entry point within the shared
	// program — litmus tests give every core its own section; SPMD
	// workloads leave PC zero and start at the program entry.
	entryPC := init.PC
	if entryPC == 0 {
		entryPC = p.Entry
	}
	c := &Core{
		ID:              id,
		cfg:             cfg,
		prog:            p,
		mem:             mem,
		hier:            hier,
		bp:              bpred.New(cfg.BP),
		sq:              lsq.NewStoreQueue(cfg.SQSize),
		arch:            init,
		fetchPC:         entryPC,
		dispatchBarrier: -1,
		lastReplayCycle: -1,
		rob:             newEntryRing(cfg.ROBSize),
		fetchQ:          newFetchRing(cfg.FetchBuf),
		iq:              make([]*entry, 0, cfg.IQSize),
		psd:             make([]*entry, 0, cfg.SQSize),
	}
	c.pend.init(cfg.ROBSize)
	c.pool.init(cfg.ROBSize)
	c.loads.init(cfg.ROBSize)
	c.wbMinDue = noDue
	c.arch.PC = entryPC
	if cfg.Scheme == config.ValueReplay {
		c.eng = core.NewEngine(cfg.Filter, cfg.LQSize)
	} else {
		c.alq = lsq.NewAssocLoadQueue(cfg.LQMode, cfg.LQSize)
		if cfg.BloomCounters > 0 {
			hashes := cfg.BloomHashes
			if hashes == 0 {
				hashes = 2
			}
			c.alq.EnableBloom(cfg.BloomCounters, hashes)
		}
	}
	if cfg.SQL1Size > 0 {
		ctrs := cfg.SQFilterCtrs
		if ctrs == 0 {
			ctrs = 1024
		}
		c.sq.EnableTwoLevel(cfg.SQL1Size, cfg.SQL2Latency, ctrs)
	}
	if cfg.UseStoreSets {
		c.ssets = deppred.NewStoreSets(cfg.SSITEntries, cfg.LFSTEntries)
	}
	if cfg.UseValuePrediction && cfg.Scheme == config.ValueReplay {
		n := cfg.VPredEntries
		if n == 0 {
			n = 4096
		}
		c.vp = vpred.New(n)
	}
	c.simple = deppred.NewSimple(cfg.SimpleEntries)
	return c
}

// ValuePredictor exposes the load-value predictor (nil when disabled).
func (c *Core) ValuePredictor() *vpred.LastValue { return c.vp }

// Engine exposes the replay engine (nil on baseline machines).
func (c *Core) Engine() *core.Engine { return c.eng }

// LoadQueue exposes the associative load queue (nil on replay machines).
func (c *Core) LoadQueue() *lsq.AssocLoadQueue { return c.alq }

// StoreQueue exposes the store queue.
func (c *Core) StoreQueue() *lsq.StoreQueue { return c.sq }

// Hierarchy exposes the core's cache hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Predictor exposes the branch predictor.
func (c *Core) Predictor() *bpred.Predictor { return c.bp }

// SimplePredictor exposes the 1-bit dependence predictor.
func (c *Core) SimplePredictor() *deppred.Simple { return c.simple }

// Cycle returns the current cycle.
func (c *Core) Cycle() int64 { return c.cycle }

// SetTracer attaches (or, with nil, detaches) the observability event
// stream. It also hooks the events only the queue structures can see
// (the hybrid load queue's snoop marks).
func (c *Core) SetTracer(t *trace.Tracer) {
	c.trace = t
	if c.alq == nil {
		return
	}
	if t == nil {
		c.alq.Emit = nil
		return
	}
	c.alq.Emit = func(kind trace.Kind, tag int64, pc, addr uint64) {
		t.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID), Kind: kind,
			Tag: tag, PC: pc, Addr: addr})
	}
}

// ROBLen returns the reorder buffer's current occupancy.
func (c *Core) ROBLen() int { return c.rob.Len() }

// IQLen returns the issue queue's current occupancy.
func (c *Core) IQLen() int { return len(c.iq) }

// LQLen returns the load queue's current occupancy (FIFO queue on
// replay machines, associative queue on baselines).
func (c *Core) LQLen() int {
	if c.eng != nil {
		return c.eng.Queue.Len()
	}
	return c.alq.Len()
}

// SQLen returns the store queue's current occupancy.
func (c *Core) SQLen() int { return c.sq.Len() }

// Step advances the core by one cycle. With the stage-skip readiness
// layer on (the default), each back-end stage scan runs only when its
// predicate says it might act; the skipped scans are exactly the ones
// that would have been no-ops, so both paths are bit-identical
// (DESIGN.md §14).
//
//vbr:hotpath
func (c *Core) Step() {
	c.portsUsed = 0
	c.storeCommitted = false
	if c.skipOff {
		c.writeback()
		c.captureStoreData()
		c.commit()
		if c.cfg.Scheme == config.ValueReplay {
			c.replayStage()
		}
		c.issue()
	} else {
		if c.cycle >= c.wbMinDue {
			c.writeback()
		} else {
			c.Skip.Writeback++
		}
		if len(c.psd) > 0 && !c.psdQuiet {
			c.captureStoreData()
		} else {
			c.Skip.Capture++
		}
		if !c.commitQuiet {
			c.commit()
		} else {
			c.Skip.Commit++
		}
		if c.cfg.Scheme == config.ValueReplay {
			c.replayStage()
		}
		if !c.issueQuiet {
			c.issue()
		} else {
			c.Skip.Issue++
		}
	}
	c.dispatch()
	c.fetch()
	c.Stats.ROBOccupancySum += uint64(c.rob.Len())
	c.Stats.Cycles++
	c.cycle++
}

// ---------------------------------------------------------------------
// Writeback: completions, branch resolution, store agen effects.

func (c *Core) writeback() {
	// Compact the pending list while processing completions. A squash
	// inside the loop truncates c.pend via squashFrom; the tag check
	// keeps iteration safe because we re-filter against the surviving
	// prefix below. The scan recomputes the earliest surviving
	// completion cycle for free, so Step can sleep the stage until it.
	min := noDue
	i := 0
	for i < c.pend.len() {
		if d := c.pend.due[i]; d > c.cycle {
			if d < min {
				min = d
			}
			i++
			continue
		}
		e := c.pend.entries[i]
		if e.done {
			i++
			continue
		}
		c.pend.swapRemove(i)
		if c.complete(e) {
			// A squash occurred; c.pend was rebuilt. Restart.
			i = 0
			min = noDue
		}
	}
	c.wbMinDue = min
}

// complete finishes one instruction; it reports whether a squash
// happened (invalidating iteration state).
func (c *Core) complete(e *entry) bool {
	e.done = true
	e.resultReady = true
	// A completion is the wake event for every sleeping back-end stage:
	// it can ready a consumer's operand, a store's data, or the head.
	c.commitQuiet = false
	c.issueQuiet = false
	c.psdQuiet = false
	switch {
	case e.isBranch:
		return c.resolveBranch(e)
	case e.isStore:
		// Store agen completing.
		e.agenDone = true
		c.sq.SetAddr(e.tag, e.addr)
		if e.dataDone {
			e.done = true
		} else {
			e.done = false
		}
		if c.alq != nil && !c.faultNoRAWCheck {
			if sqz, found := c.alq.OnStoreAgen(e.addr, e.tag); found {
				c.trainViolation(sqz.PC, e.pc)
				c.Stats.SquashesRAW++
				if c.trace != nil {
					c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
						Kind: trace.KSquash, Reason: trace.RSquashRAW,
						Tag: sqz.Tag, PC: sqz.PC, Addr: e.addr})
				}
				c.squashFrom(sqz.Tag, sqz.PC, false)
				return true
			}
		}
	case e.isLoad:
		e.loadDone = true
		c.loads.remove(e.tag)
	}
	return false
}

func (c *Core) resolveBranch(e *entry) bool {
	src1, _ := e.srcReady(1)
	e.taken = e.inst.BranchTaken(src1)
	if e.inst.IsConditional() {
		c.bp.Update(e.pc, e.taken, e.meta)
	}
	if e.taken {
		c.bp.UpdateTarget(e.pc, c.prog.Target(e.inst, e.pc))
	}
	if e.taken != e.predTaken {
		c.Stats.SquashesMispredict++
		next := c.prog.NextPC(e.inst, e.pc, e.taken)
		if c.trace != nil {
			c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
				Kind: trace.KSquash, Reason: trace.RSquashMispredict,
				Tag: e.tag + 1, PC: e.pc})
		}
		c.squashFrom(e.tag+1, next, true)
		return true
	}
	return false
}

func (c *Core) trainViolation(loadPC, storePC uint64) {
	if c.ssets != nil {
		c.ssets.TrainViolation(loadPC, storePC)
	} else {
		c.simple.TrainViolation(loadPC)
	}
}

// ---------------------------------------------------------------------
// Store data capture.

func (c *Core) captureStoreData() {
	i := 0
	for i < len(c.psd) {
		e := c.psd[i]
		if e.dataDone {
			c.psd[i] = c.psd[len(c.psd)-1]
			c.psd = c.psd[:len(c.psd)-1]
			continue
		}
		if v, ok := e.srcReady(2); ok {
			e.value = v
			e.dataDone = true
			c.sq.SetData(e.tag, v)
			if e.agenDone {
				e.done = true
				c.commitQuiet = false // the store may be the ROB head
			}
			c.psd[i] = c.psd[len(c.psd)-1]
			c.psd = c.psd[:len(c.psd)-1]
			continue
		}
		i++
	}
	// Every survivor is blocked on a producer that has not completed;
	// only a completion, a store dispatch, or a squash can change that.
	c.psdQuiet = true
}

// ---------------------------------------------------------------------
// Commit.

func (c *Core) commit() {
	for n := 0; n < c.cfg.Width && c.rob.Len() > 0; n++ {
		e := c.rob.At(0)
		if !e.done {
			// Head blocked on completion: only a completion, a data
			// capture, a replay verdict, or a squash can unblock it, and
			// each of those clears the flag. (The port-limited returns
			// below must NOT sleep: they commit next cycle unaided.)
			c.commitQuiet = true
			return
		}
		if e.isStore {
			if c.storeCommitted || c.portsUsed >= c.portCap() {
				return // one store per cycle through the commit port
			}
			c.storeCommitted = true
			c.portsUsed++
			silent := c.mem.Write(e.addr, e.value)
			if silent {
				c.Stats.SilentStores++
			}
			if c.Shadow != nil {
				w := consistency.MakeWriter(c.ID, c.writerSeq)
				c.writerSeq++
				c.Shadow.Write(e.addr, w, e.value)
				if c.storeWriters == nil {
					c.storeWriters = newWriterRing(2 * c.cfg.ROBSize)
				}
				c.storeWriters.Push(e.tag, w)
			}
			c.hier.Write(e.addr, c.cycle)
			c.Stats.StoreAccesses++
			c.Stats.CommittedStores++
			c.sq.Remove(e.tag)
			if c.ssets != nil {
				c.ssets.StoreRetired(e.pc, e.tag)
			}
		}
		if e.isLoad {
			if c.eng != nil {
				if !e.replayedOK {
					// Must pass replay & compare first; every replayedOK
					// assignment (and squash) clears the flag.
					c.commitQuiet = true
					return
				}
				if c.vp != nil && !e.replayIssued {
					// Filtered loads train the value predictor at
					// commit (replayed loads trained at compare).
					c.vp.Train(e.pc, e.result, false)
				}
				c.eng.Queue.Remove(e.tag)
			} else {
				c.alq.Remove(e.tag)
			}
			if e.valuePredicted {
				c.Stats.ValuePredictedCommitted++
			}
			if c.flt != nil {
				// An injection still unresolved here escaped every check:
				// the corrupted value just became architectural.
				c.flt.OnLoadCommit(c.ID, e.tag, c.cycle)
			}
			c.Stats.CommittedLoads++
		}
		if e.isBranch {
			c.Stats.CommittedBranches++
		}
		if e.writesReg {
			c.arch.WriteReg(e.inst.Dst, e.result)
			if c.renameMap[e.inst.Dst] == e {
				c.renameMap[e.inst.Dst] = nil
			}
			// Unlink unissued consumers before the entry is recycled:
			// they latch the value now instead of holding a pointer. The
			// reference count makes the common no-consumer case O(1)
			// instead of an IQ+PSD scan.
			if e.consumers != 0 {
				c.unlink(e)
			}
		}
		if c.dispatchBarrier == e.tag {
			c.dispatchBarrier = -1
		}
		if c.CommitHook != nil {
			rec := prog.Committed{
				Seq: c.Stats.Committed, PC: e.pc, Op: e.inst.Op,
				Result: e.result, Addr: e.addr, Taken: e.taken,
			}
			if e.isStore {
				rec.Result = e.value
				if c.Shadow != nil {
					// Self-identity for the consistency checker.
					rec.Writer = uint64(c.Shadow.Read(e.addr))
				}
			}
			if e.isLoad && c.Shadow != nil {
				w := e.writer
				if e.forwardTag >= 0 && !e.replayIssued {
					// Non-replayed forwarded loads resolve provenance
					// at commit: the source store has already committed
					// (it is older). Replayed loads already carry their
					// replay-time writer.
					if sw, ok := c.storeWriters.Lookup(e.forwardTag); ok {
						w = sw
					}
				}
				rec.Writer = uint64(w)
			}
			c.CommitHook(rec)
		}
		c.Stats.Committed++
		c.rob.PopFront()
		if c.replayBase > 0 {
			c.replayBase-- // ROB indices shifted down by one
		}
		c.pool.put(e)
	}
	if c.rob.Len() == 0 {
		c.commitQuiet = true // dispatch into an empty ROB clears this
	}
}

// ---------------------------------------------------------------------
// Replay & compare stages (value-replay machines).

//vbr:hotpath
func (c *Core) replayStage() {
	budget := c.cfg.ReplayPerCycle
	depth := c.cfg.ReplayWindow
	if depth > c.rob.Len() {
		depth = c.rob.Len()
	}
	// The settled-prefix cursor: entries below replayBase are known to
	// be non-stores the scan would only continue over (non-loads, or
	// loads already replayedOK — a state that never reverts while the
	// entry is resident), so the scan resumes there instead of
	// rescanning the window head every cycle. Commit shifts it down,
	// squash clamps it.
	start := 0
	if !c.skipOff {
		start = c.replayBase
		if start >= depth {
			if start > 0 {
				c.Skip.Replay++ // the whole window is settled
			}
			return
		}
	}
	// Replay and compare are pipelined: one replay may *issue* per
	// cycle even while older replays' compares are pending, but
	// compares complete strictly in program order (olderPending) and a
	// replay miss delays every younger completion (lastReplayCycle).
	olderPending := false
	for i := start; i < depth; i++ {
		e := c.rob.At(i)
		if e.isStore {
			// Constraint 1: all prior stores must have written the
			// cache before any younger load replays.
			return
		}
		if !e.isLoad || e.replayedOK {
			if !c.skipOff && i == c.replayBase {
				c.replayBase++ // extend the settled prefix
			}
			continue
		}
		if !e.loadDone {
			// Premature execution still in flight; replay is in-order,
			// so nothing younger may replay either.
			return
		}
		fe := c.eng.Queue.Find(e.tag)
		if fe == nil {
			e.replayedOK = true
			c.commitQuiet = false
			if !c.skipOff && i == c.replayBase {
				c.replayBase++
			}
			continue
		}
		if !e.replayDecided {
			e.replayDecided = true
			e.needReplay = false
			if !c.faultNoReplay {
				var why trace.Reason
				e.needReplay, why = c.eng.Decide(fe)
				if c.trace != nil {
					c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
						Kind: trace.KFilterDecision, Reason: why,
						Tag: e.tag, PC: e.pc, Addr: e.addr})
				}
			}
			if !e.needReplay {
				e.replayedOK = true
				c.commitQuiet = false
				c.eng.OnLoadPassedReplayStage(e.tag)
				if !c.skipOff && i == c.replayBase {
					c.replayBase++
				}
				continue
			}
		}
		if !e.replayIssued {
			if budget == 0 || c.portsUsed >= c.portCap() {
				// Constraint: replays share the commit-stage port(s)
				// with stores; stores have priority.
				return
			}
			budget--
			c.portsUsed++
			res := c.hier.ReadReplay(e.addr, c.cycle)
			c.Stats.ReplayAccesses++
			e.replayIssued = true
			// The replayed value is sampled at replay issue: all prior
			// stores have committed, so this is the load's commit-time
			// (sequentially consistent) value.
			e.replayValue = c.mem.Read(e.addr)
			if c.Shadow != nil {
				e.replayWriter = c.Shadow.Read(e.addr)
			}
			if c.trace != nil {
				c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
					Kind: trace.KReplay, Tag: e.tag, PC: e.pc,
					Addr: e.addr, Value: e.replayValue})
			}
			// The compare completes within the compare stage; for an L1
			// hit the result is available with the access latency (the
			// two added pipe stages are latency the window hides, not
			// commit-throughput).
			done := c.cycle + int64(res.Latency)
			// Constraint 2: replays complete in program order; a miss
			// delays every subsequent replay.
			if done <= c.lastReplayCycle {
				done = c.lastReplayCycle + 1
			}
			e.replayCycle = done
			c.lastReplayCycle = done
			olderPending = true
			continue
		}
		if c.cycle < e.replayCycle || olderPending {
			// Compare pending (or an older one is): completions stay
			// in order, but younger replays may still issue.
			olderPending = true
			continue
		}
		// A replayed load's ordering point is its replay instant: its
		// provenance is the replay-time writer whether or not the value
		// matched. (With a match the values agree, so the value-aware
		// constraint graph treats both attributions consistently; with
		// a mismatch the replay value is the committed one.)
		e.writer = e.replayWriter
		if c.vp != nil {
			c.vp.Train(e.pc, e.replayValue, fe.ValuePredicted)
		}
		if c.eng.OnReplayComplete(fe, e.replayValue) {
			// Value mismatch: the premature load resolved its
			// dependences incorrectly (or a value prediction was
			// wrong). The load keeps the correct (replayed) value;
			// everything younger squashes.
			if c.flt != nil {
				c.flt.OnReplayVerdict(c.ID, e.tag, true, c.cycle)
			}
			premature := e.value
			e.result = e.replayValue
			e.value = e.replayValue
			why := trace.RSquashReplayCons
			switch {
			case fe.ValuePredicted:
				c.Stats.SquashesVPred++
				why = trace.RSquashVPred
			case fe.NUS:
				c.simple.TrainViolation(e.pc)
				c.Stats.SquashesReplayRAW++
				why = trace.RSquashReplayRAW
			default:
				c.Stats.SquashesReplayCons++
			}
			if c.trace != nil {
				c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
					Kind: trace.KValueMismatch, Tag: e.tag, PC: e.pc,
					Addr: e.addr, Value: e.replayValue, Aux: premature})
				c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
					Kind: trace.KSquash, Reason: why,
					Tag: e.tag, PC: e.pc, Addr: e.addr})
			}
			e.replayedOK = true
			if c.cfg.SquashIncludesLoad {
				// Ablation variant: refetch the load itself too; rule 3
				// marks it so it is not replayed again.
				if c.flt == nil || !c.flt.SuppressRule3(c.ID, c.cycle) {
					c.noReplayPC = e.pc
					c.noReplayArmed = true
				}
				c.squashFrom(e.tag, e.pc, false)
			} else {
				c.squashFrom(e.tag+1, e.pc+prog.InstBytes, false)
			}
			return
		}
		if c.flt != nil {
			c.flt.OnReplayVerdict(c.ID, e.tag, false, c.cycle)
		}
		e.replayedOK = true
		c.commitQuiet = false
	}
}

// ---------------------------------------------------------------------
// Issue.

type fuBudget struct {
	intALU, intMulDiv, fpALU, fpMulDiv, loadPorts, total int
}

func (c *Core) issue() {
	b := fuBudget{
		intALU:    c.cfg.IntALU,
		intMulDiv: c.cfg.IntMulDiv,
		fpALU:     c.cfg.FPALU,
		fpMulDiv:  c.cfg.FPMulDiv,
		loadPorts: c.cfg.LoadPorts,
		total:     c.cfg.Width,
	}
	// One pass with in-place compaction: issued entries (and strays left
	// inIQ=false by a squash cycle) drop out, survivors keep their order.
	// A mid-scan squash rebuilds c.iq via filterOlder and ends the cycle;
	// entries issued earlier this cycle then linger (inIQ=false) until
	// this loop drops them next cycle — before dispatch looks at the
	// queue again, so occupancy checks never see them.
	c.issueProbe = false
	acted := false
	out := 0
	for i := 0; i < len(c.iq); i++ {
		e := c.iq[i]
		if !e.inIQ {
			acted = true
			continue
		}
		if b.total > 0 {
			issued, squashed := c.tryIssue(e, &b)
			if squashed {
				return
			}
			if issued {
				acted = true
				b.total--
				continue
			}
		}
		c.iq[out] = e
		out++
	}
	clearTail(c.iq[out:])
	c.iq = c.iq[:out]
	// Sleep the stage when this scan provably did nothing and would do
	// nothing next cycle: nothing issued, no stray dropped, and no load
	// reached the probe path (predictor and store-queue probes count
	// their lookups, so a cycle that probes is never skippable — the
	// same conservatism as issueWould in quiesce.go). Because nothing
	// issued, every per-class budget was still full, so each survivor
	// failed purely on operand readiness — which only a completion, a
	// dispatch, or a squash can change; those clear the flag.
	if !acted && !c.issueProbe {
		c.issueQuiet = true
	}
}

// clearTail nils dropped slots so recycled entries are not pinned by
// the slice's backing array.
func clearTail(s []*entry) {
	for i := range s {
		s[i] = nil
	}
}

// pendPush enters an issued instruction into the pending-completion
// list, lowering the writeback stage's next-wake watermark to cover it.
//
//vbr:hotpath
func (c *Core) pendPush(e *entry) {
	if e.doneCycle < c.wbMinDue {
		c.wbMinDue = e.doneCycle
	}
	c.pend.push(e)
}

// tryIssue attempts to issue one instruction; it reports (issued,
// squashed). A squash can happen when an insulated/hybrid load-issue
// search finds a violation.
func (c *Core) tryIssue(e *entry, b *fuBudget) (bool, bool) {
	switch e.cls {
	case isa.ClassIntALU:
		return c.issueALU(e, &b.intALU, c.cfg.IntLat), false
	case isa.ClassIntMul:
		return c.issueALU(e, &b.intMulDiv, c.cfg.MulLat), false
	case isa.ClassIntDiv:
		return c.issueALU(e, &b.intMulDiv, c.cfg.DivLat), false
	case isa.ClassFPALU:
		return c.issueALU(e, &b.fpALU, c.cfg.FPLat), false
	case isa.ClassFPMul, isa.ClassFPDiv:
		return c.issueALU(e, &b.fpMulDiv, c.cfg.FPLat), false
	case isa.ClassBranch:
		return c.issueBranch(e, &b.intALU), false
	case isa.ClassStore:
		return c.issueStoreAgen(e, &b.intALU), false
	case isa.ClassLoad:
		return c.issueLoad(e, b)
	}
	return false, false
}

func (c *Core) issueALU(e *entry, units *int, lat int) bool {
	if *units == 0 {
		return false
	}
	s1, ok1 := e.srcReady(1)
	s2, ok2 := e.srcReady(2)
	if !ok1 || !ok2 {
		return false
	}
	*units--
	e.issued = true
	e.inIQ = false
	e.result = e.inst.Eval(s1, s2)
	e.doneCycle = c.cycle + int64(lat)
	c.pendPush(e)
	return true
}

func (c *Core) issueBranch(e *entry, units *int) bool {
	if *units == 0 {
		return false
	}
	s1, ok := e.srcReady(1)
	if !ok {
		return false
	}
	*units--
	e.src1Val = s1
	e.src1 = nil // latch the value for resolution
	e.issued = true
	e.inIQ = false
	e.doneCycle = c.cycle + int64(c.cfg.IntLat)
	c.pendPush(e)
	return true
}

func (c *Core) issueStoreAgen(e *entry, units *int) bool {
	if e.agenDone || e.issued {
		return false
	}
	if *units == 0 {
		return false
	}
	s1, ok := e.srcReady(1)
	if !ok {
		return false
	}
	*units--
	e.addr = e.inst.EffAddr(s1)
	// Agen bypass: the resolved address is visible to store-queue
	// searches in the same cycle (loads stop seeing this store as
	// unresolved immediately); the load-queue violation search and the
	// agenDone ordering flag still take effect at writeback.
	c.sq.SetAddr(e.tag, e.addr)
	e.issued = true
	e.inIQ = false
	e.doneCycle = c.cycle + int64(c.cfg.IntLat)
	c.pendPush(e)
	return true
}

func (c *Core) issueLoad(e *entry, b *fuBudget) (bool, bool) {
	if b.loadPorts == 0 {
		return false, false
	}
	s1, ok := e.srcReady(1)
	if !ok {
		return false, false
	}
	c.issueProbe = true // address ready: probes below count lookups
	addr := e.inst.EffAddr(s1)
	// Dependence predictor constraints.
	if e.waitStoreTag >= 0 {
		if se, ok := c.sq.Entry(e.waitStoreTag); ok && !se.AddrValid {
			return false, false // store-set: wait for the store's agen
		}
		e.waitStoreTag = -1
	}
	simpleWait := c.ssets == nil && c.simple.ShouldWait(e.pc)
	if simpleWait && c.sq.UnresolvedBefore(e.tag) {
		return false, false // simple predictor: wait for all prior agens
	}
	r := c.sq.Search(addr, e.tag)
	if r.Match && !r.DataReady {
		return false, false // forwarding store's data not ready yet
	}
	b.loadPorts--
	e.addr = addr
	e.addrValid = true
	e.issued = true
	e.inIQ = false
	e.forwardTag = -1
	e.nus = r.UnresolvedOlder
	if e.nus && c.flt != nil && c.flt.SuppressNUS(c.ID, c.cycle) {
		e.nus = false // injected fault: blind the RAW filter input
	}
	if e.nus {
		c.Stats.LoadsNUSFlagged++
	}
	e.reordered = c.priorMemIncomplete(e)
	if e.reordered {
		c.Stats.LoadsReordered++
	}
	var lat int
	if r.Match {
		// Store-to-load forwarding: value from the store queue. A
		// hierarchical store queue's level-two matches forward slower.
		if !e.valuePredicted {
			e.value = r.Data
		}
		e.forwardTag = r.MatchTag
		lat = c.cfg.Hier.L1D.Latency
		if r.Latency > lat {
			lat = r.Latency
		}
		c.Stats.ForwardedLoads++
	} else {
		res := c.hier.Read(e.pc, addr, c.cycle)
		c.Stats.DemandLoadAccesses++
		if !e.valuePredicted {
			// A value-predicted load's "premature value" IS the
			// prediction; the cache access warms the block the replay
			// will verify against.
			e.value = c.mem.Read(addr)
			if c.Shadow != nil {
				e.writer = c.Shadow.Read(addr)
			}
		}
		lat = res.Latency
	}
	if c.flt != nil && !e.valuePredicted {
		// A predicted value is not a datapath sample, so it is exempt;
		// forwarded values are LoadValue-eligible only, demand reads may
		// also take a CacheData array fault.
		if v, ok := c.flt.CorruptLoadValue(c.ID, e.tag, e.pc, addr, e.value, !r.Match, c.cycle); ok {
			e.value = v
		}
	}
	e.result = e.value
	e.doneCycle = c.cycle + int64(lat)
	c.pendPush(e)
	if c.trace != nil {
		var flags uint64
		if r.Match {
			flags |= trace.FlagForwarded
		}
		if e.nus {
			flags |= trace.FlagNUS
		}
		if e.reordered {
			flags |= trace.FlagReordered
		}
		if e.valuePredicted {
			flags |= trace.FlagVPred
		}
		c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
			Kind: trace.KLoadIssue, Tag: e.tag, PC: e.pc,
			Addr: e.addr, Value: e.value, Aux: flags})
	}

	if c.eng != nil {
		if fe := c.eng.Queue.Find(e.tag); fe != nil {
			fe.Addr = e.addr
			fe.Value = e.value
			fe.Issued = true
			fe.Forwarded = r.Match
			fe.NUS = e.nus
			fe.Reordered = e.reordered
			fe.NoReplay = e.noReplay
			fe.ValuePredicted = e.valuePredicted
		}
		return true, false
	}
	if sqz, found := c.alq.OnIssue(e.tag, e.addr, e.forwardTag); found {
		// Insulated/hybrid load-issue search found a younger issued
		// load to the same address (Figure 1(c)).
		c.Stats.SquashesLoadIssue++
		if c.trace != nil {
			c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
				Kind: trace.KSquash, Reason: trace.RSquashLoadIssue,
				Tag: sqz.Tag, PC: sqz.PC, Addr: e.addr})
		}
		c.squashFrom(sqz.Tag, sqz.PC, false)
		return true, true
	}
	return true, false
}

// unlink copies a committing producer's result into any consumer that
// still references it, so the producer's storage can be recycled safely.
// Only unissued instructions hold producer pointers: everything in the
// issue queue, plus stores awaiting data capture.
func (c *Core) unlink(p *entry) {
	fix := func(e *entry) {
		if e.src1 == p {
			e.src1 = nil
			e.src1Val = p.result
			p.consumers--
		}
		if e.src2 == p {
			e.src2 = nil
			e.src2Val = p.result
			p.consumers--
		}
	}
	for _, e := range c.iq {
		fix(e)
	}
	for _, e := range c.psd {
		fix(e)
	}
}

// priorMemIncomplete reports whether any older memory operation is
// still incomplete (prior load not done, or prior store address
// unresolved) — the no-reorder filter's issue-time condition. A store
// is incomplete until it commits (writes the cache), and the store
// queue holds exactly the dispatched-uncommitted stores, so its oldest
// tag answers the store half in O(1); the loadTracker's sorted
// incomplete-load tags answer the load half with one comparison. Both
// are exact replacements for the former O(ROB) entry walk, not
// approximations.
//
//vbr:hotpath
func (c *Core) priorMemIncomplete(e *entry) bool {
	return c.sq.HasOlderThan(e.tag) || c.loads.hasBefore(e.tag)
}

// ---------------------------------------------------------------------
// Dispatch.

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.Width; n++ {
		if c.fetchQ.Len() == 0 || c.fetchQ.Front().readyCycle > c.cycle {
			return
		}
		if c.dispatchBarrier >= 0 {
			c.Stats.StallBarrier++
			return
		}
		if c.rob.Len() >= c.cfg.ROBSize {
			c.Stats.StallROB++
			return
		}
		f := c.fetchQ.Front()
		cls := f.cls
		needIQ := cls != isa.ClassNop && cls != isa.ClassMembar
		if needIQ && len(c.iq) >= c.cfg.IQSize {
			c.Stats.StallIQ++
			return
		}
		switch cls {
		case isa.ClassLoad:
			full := false
			if c.eng != nil {
				full = c.eng.Queue.Full()
			} else {
				full = c.alq.Full()
			}
			if full {
				c.Stats.StallLQ++
				return
			}
		case isa.ClassStore:
			if c.sq.Full() {
				c.Stats.StallSQ++
				return
			}
		}
		c.fetchQ.DropFront()
		c.dispatchOne(f) // f stays valid: the slot is not reused until a push
	}
}

func (c *Core) dispatchOne(f *fetched) {
	e := c.pool.get()
	e.tag = c.nextTag
	c.nextTag++
	e.pc = f.pc
	e.inst = f.inst
	e.cls = f.cls
	e.predTaken = f.predTaken
	e.meta = f.meta
	e.histSnapshot = f.hist
	e.waitStoreTag = -1
	e.forwardTag = -1
	e.doneCycle = -1

	// Rename: bind sources to producers or architectural values. Each
	// bind counts on the producer so commit's unlink can skip its scan
	// once every reference has latched (entry.consumers).
	if f.inst.ReadsReg(1) {
		r := f.inst.Src1
		e.reads1 = true
		if p := c.renameMap[r]; p != nil && r != isa.RZero {
			e.src1 = p
			e.src1Gen = p.gen
			p.consumers++
		} else {
			e.src1Val = c.arch.ReadReg(r)
		}
	}
	if f.inst.ReadsReg(2) {
		r := f.inst.Src2
		e.reads2 = true
		if p := c.renameMap[r]; p != nil && r != isa.RZero {
			e.src2 = p
			e.src2Gen = p.gen
			p.consumers++
		} else {
			e.src2Val = c.arch.ReadReg(r)
		}
	}
	e.writesReg = f.inst.WritesReg()
	if e.writesReg {
		c.renameMap[f.inst.Dst] = e
	}

	switch f.cls {
	case isa.ClassNop:
		e.done = true
		e.doneCycle = c.cycle
	case isa.ClassMembar:
		e.done = true
		e.doneCycle = c.cycle
		c.dispatchBarrier = e.tag
	case isa.ClassBranch:
		e.isBranch = true
		e.inIQ = true
		c.iq = append(c.iq, e)
	case isa.ClassLoad:
		e.isLoad = true
		e.inIQ = true
		c.iq = append(c.iq, e)
		c.loads.add(e.tag)
		if c.vp != nil && !(c.noReplayArmed && e.pc == c.noReplayPC) {
			if v, ok := c.vp.Predict(e.pc); ok {
				// Consumers may use the predicted value immediately;
				// the replay/compare stages verify it before commit.
				e.valuePredicted = true
				e.result = v
				e.value = v
				e.resultReady = true
				c.Stats.ValuePredictedLoads++
			}
		}
		if c.eng != nil {
			c.eng.Queue.Insert(e.tag, e.pc)
			if c.noReplayArmed && e.pc == c.noReplayPC {
				// Forward-progress rule 3: the refetched instance of a
				// load that caused a replay squash is not replayed.
				e.noReplay = true
				c.noReplayArmed = false
			}
		} else {
			c.alq.Insert(e.tag, e.pc)
			if c.ssets != nil {
				e.waitStoreTag = c.ssets.LoadDispatched(e.pc)
			}
		}
	case isa.ClassStore:
		e.isStore = true
		e.inIQ = true
		c.iq = append(c.iq, e)
		c.sq.Insert(e.tag, e.pc)
		c.psd = append(c.psd, e)
		c.psdQuiet = false
		if c.ssets != nil {
			c.ssets.StoreDispatched(e.pc, e.tag)
		}
	default:
		e.inIQ = true
		c.iq = append(c.iq, e)
	}
	c.rob.Push(e)
	// Dispatch wakes the issue stage (a new queue entry) and, when the
	// ROB was empty, commit (the new head may already be done).
	c.issueQuiet = false
	if c.rob.Len() == 1 {
		c.commitQuiet = false
	}
}

// ---------------------------------------------------------------------
// Fetch.

func (c *Core) fetch() {
	if c.cycle < c.fetchStallUntil {
		return
	}
	if c.fetchQ.Len() >= c.cfg.FetchBuf {
		return
	}
	// One instruction-cache access per fetch cycle.
	ifres := c.hier.InstrFetch(c.fetchPC)
	if ifres.Latency > c.cfg.Hier.L1I.Latency {
		c.fetchStallUntil = c.cycle + int64(ifres.Latency)
		return
	}
	ready := c.cycle + int64(c.cfg.FrontEndDepth)
	for n := 0; n < c.cfg.Width && c.fetchQ.Len() < c.cfg.FetchBuf; n++ {
		in, ok := c.prog.Fetch(c.fetchPC)
		if !ok {
			in = isa.Inst{Op: isa.OpNop} // wrong-path filler
		}
		cls := in.Class()
		f := c.fetchQ.PushSlot()
		f.pc = c.fetchPC
		f.inst = in
		f.cls = cls
		f.readyCycle = ready
		f.hist = c.bp.History()
		if cls == isa.ClassBranch {
			f.predTaken, f.meta = c.bp.PredictInst(in, c.fetchPC)
		}
		if cls == isa.ClassBranch && f.predTaken {
			target := c.prog.Target(in, c.fetchPC)
			if _, hit := c.bp.PredictTarget(c.fetchPC); !hit {
				// BTB miss on a predicted-taken branch: one bubble while
				// decode computes the target.
				c.fetchStallUntil = c.cycle + 2
			}
			c.fetchPC = target
			return // fetch stops at the first taken branch (Table 3)
		}
		c.fetchPC += prog.InstBytes
	}
}

// ---------------------------------------------------------------------
// Squash.

// squashFrom kills every instruction with tag >= fromTag, redirects
// fetch to newPC, and repairs rename/predictor state. When
// branchRepair is true the branch's own Update already fixed global
// history; otherwise history is restored from the oldest killed
// instruction's snapshot.
func (c *Core) squashFrom(fromTag int64, newPC uint64, branchRepair bool) {
	if c.flt != nil {
		// Pending injections on killed loads leave the machine with them.
		c.flt.OnSquash(c.ID, fromTag, c.cycle)
	}
	// Find the cut point.
	robLen := c.rob.Len()
	cut := robLen
	for i := 0; i < robLen; i++ {
		if c.rob.At(i).tag >= fromTag {
			cut = i
			break
		}
	}
	if !branchRepair {
		if cut < robLen {
			c.bp.SetHistory(c.rob.At(cut).histSnapshot)
		} else if c.fetchQ.Len() > 0 {
			// Nothing in the ROB was killed, but the fetch buffer holds
			// speculative predictions that polluted global history.
			c.bp.SetHistory(c.fetchQ.Front().hist)
		}
	}
	c.Stats.SquashedInstrs += uint64(robLen-cut) + uint64(c.fetchQ.Len())
	// Recycle the killed entries (oldest first, matching the old append
	// order) before the ring drops its references. Each killed consumer
	// still holding a producer pointer releases its reference count, and
	// killed loads leave the incomplete-load bitset.
	for i := cut; i < robLen; i++ {
		e := c.rob.At(i)
		if e.src1 != nil {
			e.src1.consumers--
		}
		if e.src2 != nil {
			e.src2.consumers--
		}
		if e.isLoad {
			c.loads.remove(e.tag)
		}
		c.pool.put(e)
	}
	c.rob.TruncateFrom(cut)
	// Wake every sleeping stage: occupancies and readiness changed, and
	// issue must drop any strays the cut left behind. The settled-prefix
	// replay cursor clamps to the surviving prefix.
	c.issueQuiet = false
	c.psdQuiet = false
	c.commitQuiet = false
	if c.replayBase > cut {
		c.replayBase = cut
	}

	// Rebuild the rename map from survivors.
	for i := range c.renameMap {
		c.renameMap[i] = nil
	}
	for i := 0; i < cut; i++ {
		e := c.rob.At(i)
		if e.writesReg {
			c.renameMap[e.inst.Dst] = e
		}
	}

	// Filter the side lists.
	c.iq = filterOlder(c.iq, fromTag)
	c.pend.filterOlder(fromTag)
	c.psd = filterOlder(c.psd, fromTag)

	c.sq.Squash(fromTag)
	if c.alq != nil {
		c.alq.Squash(fromTag)
	}
	if c.eng != nil {
		c.eng.OnSquash(fromTag)
	}
	if c.ssets != nil {
		c.ssets.SquashTag(fromTag)
	}
	if c.dispatchBarrier >= fromTag {
		c.dispatchBarrier = -1
	}

	c.fetchQ.Clear()
	c.fetchPC = newPC
	// Redirect takes effect next cycle.
	if c.fetchStallUntil <= c.cycle {
		c.fetchStallUntil = c.cycle + 1
	}
}

func filterOlder(s []*entry, fromTag int64) []*entry {
	out := s[:0]
	for _, e := range s {
		if e.tag < fromTag {
			out = append(out, e)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// External events (wired by the system package).

// HandleExternalInvalidation processes an invalidation (or castout)
// observed by this core: baseline snooping/hybrid load queues search and
// possibly squash; the no-recent-snoop filter opens its replay window.
func (c *Core) HandleExternalInvalidation(block uint64) {
	if c.trace != nil {
		c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
			Kind: trace.KSnoopInval, Addr: block})
	}
	if c.alq != nil {
		commitTag := int64(-1)
		if c.rob.Len() > 0 {
			commitTag = c.rob.At(0).tag
		}
		sqz, found := c.alq.OnInvalidation(block, commitTag)
		if found {
			c.Stats.SquashesInval++
			if c.trace != nil {
				c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
					Kind: trace.KSquash, Reason: trace.RSquashInval,
					Tag: sqz.Tag, PC: sqz.PC, Addr: block})
			}
			c.squashFrom(sqz.Tag, sqz.PC, false)
		}
		return
	}
	if c.eng.Filter.NeedsSnoopEvents() {
		if c.flt != nil && c.flt.SuppressWindow(c.ID, c.cycle) {
			return // injected fault: the NRS window never opens
		}
		c.eng.NoteExternalEvent(c.youngestLoadTag())
	}
}

// HandleExternalFill feeds the no-recent-miss filter: a block entered
// the local hierarchy from an external source.
func (c *Core) HandleExternalFill(block uint64) {
	if c.trace != nil {
		c.trace.Emit(trace.Event{Cycle: c.cycle, Core: int32(c.ID),
			Kind: trace.KExtFill, Addr: block})
	}
	if c.eng != nil && c.eng.Filter.NeedsMissEvents() {
		if c.flt != nil && c.flt.SuppressWindow(c.ID, c.cycle) {
			return // injected fault: the NRM window never opens
		}
		c.eng.NoteExternalEvent(c.youngestLoadTag())
	}
}

func (c *Core) youngestLoadTag() int64 {
	for i := c.rob.Len() - 1; i >= 0; i-- {
		if e := c.rob.At(i); e.isLoad {
			return e.tag
		}
	}
	return -1
}

// portCap returns the commit-stage cache port count (1 in the paper).
func (c *Core) portCap() int {
	if c.cfg.ReplayPerCycle > 1 {
		return c.cfg.ReplayPerCycle
	}
	return 1
}

// ResetStats zeroes every statistics counter on the core and its
// attached structures (used after cache warmup so measurements reflect
// steady state). Architectural and microarchitectural state persist.
func (c *Core) ResetStats() {
	c.Stats = Stats{}
	c.Skip = SkipStats{}
	c.hier.Stats = cache.Stats{}
	c.bp.Lookups, c.bp.Mispredicts = 0, 0
	if c.eng != nil {
		c.eng.Stats = core.Stats{}
	}
	if c.alq != nil {
		c.alq.Searches = 0
		c.alq.SearchedEntries = 0
		c.alq.RAWSquashes = 0
		c.alq.InvalSquashes = 0
		c.alq.IssueSquashes = 0
	}
	c.sq.Searches = 0
	c.simple.Trainings, c.simple.Waits = 0, 0
	if c.ssets != nil {
		c.ssets.Violations, c.ssets.Dependences = 0, 0
	}
}

// ArchState returns a copy of the committed architectural state.
func (c *Core) ArchState() prog.ArchState { return c.arch }
