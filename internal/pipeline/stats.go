package pipeline

// Stats are one core's pipeline-level measurements. The experiment
// harness derives every figure's series from these plus the cache,
// load-queue, and replay-engine counters.
type Stats struct {
	Cycles    int64
	Committed uint64

	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64
	SilentStores      uint64

	// Data-cache bandwidth accounting (Figure 6). DemandLoadAccesses
	// counts premature load cache accesses including wrong-path ones;
	// ForwardedLoads got their value from the store queue;
	// ReplayAccesses are the replay stage's extra cache reads;
	// StoreAccesses are commit-stage store writes.
	DemandLoadAccesses uint64
	ForwardedLoads     uint64
	ReplayAccesses     uint64
	StoreAccesses      uint64

	// Squash accounting.
	SquashesMispredict uint64
	SquashesRAW        uint64 // baseline LQ store-agen violations
	SquashesInval      uint64 // baseline LQ snoop violations
	SquashesLoadIssue  uint64 // insulated/hybrid load-issue violations
	SquashesReplayRAW  uint64 // replay mismatches on NUS loads
	SquashesReplayCons uint64 // replay mismatches on non-NUS loads
	SquashedInstrs     uint64

	// Flag rates for the filters.
	LoadsNUSFlagged uint64
	LoadsReordered  uint64

	// Value prediction (optional).
	ValuePredictedLoads     uint64 // predictions issued at dispatch
	ValuePredictedCommitted uint64 // predicted loads that committed
	SquashesVPred           uint64

	// Occupancy (Figure 7): ROBOccupancySum / Cycles is the average
	// reorder-buffer utilization.
	ROBOccupancySum uint64

	// Dispatch stall causes.
	StallROB, StallIQ, StallLQ, StallSQ, StallBarrier uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// AvgROBOccupancy returns the Figure 7 metric.
func (s *Stats) AvgROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ROBOccupancySum) / float64(s.Cycles)
}

// TotalL1DAccesses returns all data-cache accesses: premature loads,
// replays, and stores (forwarded loads probe the store queue, not the
// cache).
func (s *Stats) TotalL1DAccesses() uint64 {
	return s.DemandLoadAccesses + s.ReplayAccesses + s.StoreAccesses
}
