// Package pipeline implements the 15-stage, 8-wide out-of-order
// superscalar core of Table 3: fetch with combined branch prediction
// (stopping at the first taken branch per cycle), rename/dispatch into a
// 256-entry reorder buffer and 32-entry issue queue, dataflow issue to
// the Table 3 functional-unit pool, a store queue with forwarding, and
// in-order commit where stores write the L1 data cache. Memory ordering
// is enforced either by a conventional associative load queue (package
// lsq) or by value-based replay (package core), selected by the machine
// configuration.
package pipeline

import (
	"vbmo/internal/bpred"
	"vbmo/internal/consistency"
	"vbmo/internal/isa"
)

// entry is one reorder-buffer entry (a dynamic instruction in flight).
// Dataflow uses direct producer pointers: a consumer is always younger
// than its producers, so a squash that frees a producer also frees every
// consumer holding a pointer to it. Entries are recycled through a
// generation-tagged freelist (pool): every recycle bumps gen, and a
// consumer snapshots its producer's generation at rename, so a read
// through a stale pointer — a pointer that survived its producer's
// recycling, which the squash/unlink invariants forbid — is detected
// instead of silently reading the wrong instruction's result.
type entry struct {
	tag       int64
	pc        uint64
	inst      isa.Inst
	cls       isa.Class // inst.Class(), computed once at fetch
	writesReg bool      // inst.WritesReg(), computed once at dispatch

	// Dataflow. srcN is nil when the operand was ready at dispatch (its
	// value is in srcNVal) or when the instruction does not read slot N.
	src1, src2   *entry
	src1Gen      uint64 // src1's generation at rename
	src2Gen      uint64 // src2's generation at rename
	src1Val      uint64
	src2Val      uint64
	reads1       bool
	reads2       bool
	histSnapshot uint64 // branch-history state at fetch, for repair
	// consumers counts live references held by younger entries' srcN
	// pointers: incremented at rename, decremented when a consumer
	// latches the value (srcReady), is squashed, or is unlinked. When it
	// is zero at commit, unlink's IQ+PSD scan is provably a no-op and
	// skipped.
	consumers int32

	// Scheduling state.
	inIQ   bool
	issued bool
	done   bool
	// resultReady lets consumers read result before done (value
	// prediction delivers results at dispatch).
	resultReady bool
	doneCycle   int64
	result      uint64

	// Branch state.
	isBranch  bool
	predTaken bool
	meta      bpred.Meta
	taken     bool

	// Memory state.
	isLoad, isStore bool
	addr            uint64
	addrValid       bool
	value           uint64 // load premature value / store data
	forwardTag      int64
	loadDone        bool
	agenDone        bool // store address in the store queue
	dataDone        bool // store data in the store queue
	waitStoreTag    int64
	nus             bool // issued past an unresolved store address
	reordered       bool // issued while prior memory ops incomplete

	// Provenance (consistency tracking): the identity of the store
	// whose value this load observed, sampled with the value.
	writer       consistency.Writer
	replayWriter consistency.Writer

	// Value prediction state.
	valuePredicted bool

	// Replay state (value-replay machines).
	replayDecided bool
	needReplay    bool
	replayIssued  bool
	replayCycle   int64
	replayValue   uint64
	replayedOK    bool
	noReplay      bool // forward-progress rule 3 mark

	// gen counts recyclings of this storage slot. It survives the pool's
	// zeroing and is never reset; see pool.get.
	gen uint64
}

// srcReady reports whether operand slot n is available and returns its
// value. On the first ready observation the value is latched into the
// entry and the producer pointer dropped: a producer's result is
// immutable once done/resultReady (a mispredicted value reaches
// consumers only through a squash that kills them), so latching is
// invisible to results while sparing the issue loop's repeated scans a
// pointer chase per operand per cycle.
func (e *entry) srcReady(n int) (uint64, bool) {
	var p *entry
	var v uint64
	var gen uint64
	var reads bool
	if n == 1 {
		p, v, gen, reads = e.src1, e.src1Val, e.src1Gen, e.reads1
	} else {
		p, v, gen, reads = e.src2, e.src2Val, e.src2Gen, e.reads2
	}
	if !reads {
		return 0, true
	}
	if p == nil {
		return v, true
	}
	if p.gen != gen {
		// The producer slot was recycled while this consumer still held a
		// pointer to it. The squash and commit-time unlink invariants make
		// this unreachable; reaching it means the freelist would otherwise
		// have handed this consumer another instruction's result.
		panic("pipeline: consumer read a recycled producer entry")
	}
	if p.done || p.resultReady {
		v = p.result
		p.consumers--
		if n == 1 {
			e.src1 = nil
			e.src1Val = v
		} else {
			e.src2 = nil
			e.src2Val = v
		}
		return v, true
	}
	return 0, false
}

// pool is a generation-tagged freelist of entries. At most ROBSize
// entries are ever live (every entry is in the ROB), so the pool is
// pre-filled from one contiguous slab at core construction and the
// cycle loop never allocates entry storage. Recycling bumps the
// entry's generation (see entry.gen); everything else is zeroed.
type pool struct{ free []*entry }

// init pre-fills the freelist with n slab-backed entries.
func (p *pool) init(n int) {
	slab := make([]entry, n)
	p.free = make([]*entry, n)
	for i := range slab {
		p.free[i] = &slab[i]
	}
}

func (p *pool) get() *entry {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		gen := e.gen
		*e = entry{}
		e.gen = gen + 1
		return e
	}
	return &entry{gen: 1}
}

func (p *pool) put(e *entry) { p.free = append(p.free, e) }

// fetched is one instruction in the fetch-to-dispatch buffer.
type fetched struct {
	pc         uint64
	inst       isa.Inst
	cls        isa.Class // inst.Class(), computed once at fetch
	predTaken  bool
	meta       bpred.Meta
	hist       uint64
	readyCycle int64
}
