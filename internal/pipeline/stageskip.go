// Stage-skip readiness layer (DESIGN.md §14). The quiescence
// fast-forward (quiesce.go) only wins when a whole core goes idle; busy
// high-IPC regions still walked every stage of Step each cycle even
// when most stages provably had no work. This file holds the state that
// lets Step elide individual stage scans: a next-wake watermark for
// writeback (the earliest pending completion cycle), dirty/quiet flags
// for store-data capture, commit, and issue that are cleared by exactly
// the events that could give the stage work, and a settled-prefix
// cursor for the replay scan. The contract is the same as the
// fast-forward's: a skipped scan is precisely a scan that would have
// mutated nothing and counted nothing, so a run with skipping on is
// bit-identical — counters, stats, trace events, committed values — to
// one with it off. The -stageskip=off escape hatch exists for A/B
// equivalence tests and measurement, not for correctness.

package pipeline

import "math"

// noDue is the writeback watermark's "no pending completion" sentinel.
const noDue = int64(math.MaxInt64)

// SkipStats counts, per stage, the Step cycles whose stage scan the
// readiness layer elided. They live outside Stats — like the system's
// FFStats — so a skipping run's Result stays bit-identical to a
// non-skipping one while the skip rates remain observable.
type SkipStats struct {
	Writeback uint64 // cycles before the earliest pending completion
	Capture   uint64 // store-data list empty or provably blocked
	Commit    uint64 // ROB head provably unable to commit
	Replay    uint64 // replay window fully settled past the cursor
	Issue     uint64 // no issue-queue entry could issue or probe
}

// Add accumulates o into s (the system sums per-core skip stats).
func (s *SkipStats) Add(o SkipStats) {
	s.Writeback += o.Writeback
	s.Capture += o.Capture
	s.Commit += o.Commit
	s.Replay += o.Replay
	s.Issue += o.Issue
}

// Total returns the sum over all stages.
func (s *SkipStats) Total() uint64 {
	return s.Writeback + s.Capture + s.Commit + s.Replay + s.Issue
}

// SetStageSkip enables or disables the stage-skip readiness layer.
// Skipping is bit-identical to unconditional stage scans, so the
// switch exists for A/B equivalence runs, never for correctness.
func (c *Core) SetStageSkip(on bool) { c.skipOff = !on }

// loadTracker holds the tags of ROB-resident loads whose premature
// execution has not yet completed, sorted ascending. Dispatch appends
// (tags are monotone), completion and squash remove, so "is any older
// load still incomplete?" — issueLoad's prior-memory-incomplete
// condition — is one comparison against the oldest tracked tag instead
// of a walk over the ROB. A residue bitset would not do here: squashes
// leave gaps in the ROB's tag sequence, so the live tag window is
// unbounded and tag-mod-capacity indexing aliases.
type loadTracker struct {
	tags []int64
}

func (t *loadTracker) init(robSize int) {
	t.tags = t.tags[:0]
	if cap(t.tags) < robSize {
		t.tags = make([]int64, 0, robSize)
	}
}

// add records a newly dispatched load. Tags arrive in increasing order,
// so appending keeps the list sorted. The backing array holds ROBSize
// tags — the most that can ever be in flight — so the append never
// grows it.
//
//vbr:hotpath
func (t *loadTracker) add(tag int64) {
	t.tags = append(t.tags, tag) //vbr:allow hotalloc capacity preallocated to ROB size in init
}

// remove drops tag from the list if present (a squashed load may have
// completed already, in which case it was removed at completion).
// Loads complete roughly in order, so the binary search usually lands
// near the front and the shift is short.
//
//vbr:hotpath
func (t *loadTracker) remove(tag int64) {
	lo, hi := 0, len(t.tags)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.tags[mid] < tag {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.tags) && t.tags[lo] == tag {
		copy(t.tags[lo:], t.tags[lo+1:])
		t.tags = t.tags[:len(t.tags)-1]
	}
}

// hasBefore reports whether any tracked (incomplete) load is older
// than tag. Every tracked tag belongs to a ROB-resident load, so no
// lower bound is needed.
//
//vbr:hotpath
func (t *loadTracker) hasBefore(tag int64) bool {
	return len(t.tags) > 0 && t.tags[0] < tag
}
