// Quiescence detection for the system's cycle-skipping fast-forward
// (DESIGN.md §12). A core is quiescent when stepping it one cycle would
// change nothing observable except the deterministic per-cycle
// accounting: the cycle counter, the ROB-occupancy integral, and at
// most one dispatch stall counter. Quiescent proves that cycle by
// re-walking Step's stages read-only, in stage order, and vetoing on
// the first action any stage would take; FastForward then replicates
// the per-cycle accounting for a whole window of such cycles at once.
// The system composes the per-core predicate with the machine-level
// wake sources (DMA, deferred fault deliveries, watchdog deadlines,
// snapshot boundaries) in internal/system.

package pipeline

import "vbmo/internal/isa"

// stallKind identifies which dispatch stall counter accrues once per
// cycle while the core is quiescent (stallNone when dispatch is idle:
// fetch buffer empty or its front not yet through the front end).
type stallKind uint8

const (
	stallNone stallKind = iota
	stallBarrier
	stallROB
	stallIQ
	stallLQ
	stallSQ
)

// noWake is Quiescent's "no scheduled wake event" sentinel: the core is
// inert until an external event (or the run's cycle bound) arrives.
const noWake = int64(-1)

// wouldBeReady reports whether operand slot n is available, without
// srcReady's value latching: Quiescent must observe, never mutate. The
// latch itself is unobservable (a producer's result is immutable once
// done/resultReady), so mirroring only the readiness test is exact.
func (e *entry) wouldBeReady(n int) bool {
	var p *entry
	var reads bool
	if n == 1 {
		p, reads = e.src1, e.reads1
	} else {
		p, reads = e.src2, e.reads2
	}
	if !reads || p == nil {
		return true
	}
	return p.done || p.resultReady
}

// Quiescent reports whether stepping the core this cycle would be a
// no-op apart from the deterministic per-cycle accounting FastForward
// replicates. When quiescent, wake is the earliest future cycle at
// which the core might act again (noWake when it is inert until an
// external event), and the dispatch stall kind of the window is
// recorded for FastForward. The walk mirrors Step's stage order; every
// check is read-only.
//
//vbr:hotpath
func (c *Core) Quiescent() (wake int64, ok bool) {
	now := c.cycle
	wake = noWake

	// Writeback: a due completion mutates; a future one schedules a
	// wake at its completion cycle.
	for _, e := range c.pend.entries {
		if e.done {
			continue
		}
		if e.doneCycle <= now {
			return noWake, false
		}
		if wake < 0 || e.doneCycle < wake {
			wake = e.doneCycle
		}
	}

	// Store data capture: removal (dataDone) and capture (operand 2
	// ready) both mutate. A blocked capture's wake is its data
	// producer's completion, which the pending list above covers.
	for _, e := range c.psd {
		if e.dataDone || e.wouldBeReady(2) {
			return noWake, false
		}
	}

	// Commit: a done head commits — except a replay-machine load still
	// awaiting its replay verdict, where commit returns untouched and
	// the replay scan below owns the wake.
	if c.rob.Len() > 0 {
		h := c.rob.At(0)
		if h.done && !(h.isLoad && c.eng != nil && !h.replayedOK) {
			return noWake, false
		}
	}

	// Replay & compare stages (value-replay machines).
	if c.eng != nil {
		w, quiet := c.replayQuiescent(now)
		if !quiet {
			return noWake, false
		}
		if w >= 0 && (wake < 0 || w < wake) {
			wake = w
		}
	}

	// Issue: any entry the scan would act on vetoes the cycle.
	for _, e := range c.iq {
		if !e.inIQ {
			// A stray left by a mid-cycle squash: the issue scan would
			// drop it, changing the queue occupancy dispatch checks.
			return noWake, false
		}
		if c.issueWould(e) {
			return noWake, false
		}
	}

	// Dispatch: either idle (front-end empty or front not ready, with
	// its ready cycle as wake), deterministically stalled (one stall
	// counter accrues per cycle; record which), or it would dispatch.
	c.ffStall = stallNone
	if c.fetchQ.Len() > 0 {
		f := c.fetchQ.Front()
		if f.readyCycle > now {
			if wake < 0 || f.readyCycle < wake {
				wake = f.readyCycle
			}
		} else {
			needIQ := f.cls != isa.ClassNop && f.cls != isa.ClassMembar
			switch {
			case c.dispatchBarrier >= 0:
				c.ffStall = stallBarrier
			case c.rob.Len() >= c.cfg.ROBSize:
				c.ffStall = stallROB
			case needIQ && len(c.iq) >= c.cfg.IQSize:
				c.ffStall = stallIQ
			case f.cls == isa.ClassLoad && c.lqFull():
				c.ffStall = stallLQ
			case f.cls == isa.ClassStore && c.sq.Full():
				c.ffStall = stallSQ
			default:
				return noWake, false // the front instruction would dispatch
			}
		}
	}

	// Fetch: stalled-with-deadline wakes at the deadline; a non-full
	// fetch buffer means an instruction-cache access (which mutates
	// cache state and counters) would happen.
	if now < c.fetchStallUntil {
		if wake < 0 || c.fetchStallUntil < wake {
			wake = c.fetchStallUntil
		}
	} else if c.fetchQ.Len() < c.cfg.FetchBuf {
		return noWake, false
	}
	return wake, true
}

// replayQuiescent walks the replay window exactly as replayStage does,
// read-only: the filter decision, a replay issue, and a due compare
// completion all mutate; an in-flight compare wakes at its completion
// cycle (in-order completion makes the first one the earliest).
func (c *Core) replayQuiescent(now int64) (int64, bool) {
	depth := c.cfg.ReplayWindow
	if n := c.rob.Len(); depth > n {
		depth = n
	}
	wake := noWake
	pending := false // an older in-flight compare defers younger ones
	for i := 0; i < depth; i++ {
		e := c.rob.At(i)
		if e.isStore {
			break // constraint 1 stops the replay scan at a store
		}
		if !e.isLoad || e.replayedOK {
			continue
		}
		if !e.loadDone {
			break // in-order: nothing younger replays; pend holds the wake
		}
		if !e.replayDecided {
			return noWake, false // the filter decision mutates engine state
		}
		if !e.replayIssued {
			if c.cfg.ReplayPerCycle <= 0 {
				break // no replay port: deterministically stalled
			}
			// In a quiescent candidate cycle no store committed, so the
			// commit-stage port is free and the replay would issue.
			return noWake, false
		}
		if now >= e.replayCycle && !pending {
			return noWake, false // the compare would complete
		}
		if !pending {
			wake = e.replayCycle
		}
		pending = true
	}
	return wake, true
}

// issueWould reports whether the issue stage would act on entry e this
// cycle: actually issue it, or — for loads with a ready address
// operand — probe the dependence predictor and store queue, both of
// which count their lookups. Budget checks use the cycle's initial
// per-class budgets: in a quiescent candidate cycle nothing has issued,
// so none are spent.
func (c *Core) issueWould(e *entry) bool {
	switch e.cls {
	case isa.ClassIntALU:
		return c.cfg.IntALU > 0 && e.wouldBeReady(1) && e.wouldBeReady(2)
	case isa.ClassIntMul, isa.ClassIntDiv:
		return c.cfg.IntMulDiv > 0 && e.wouldBeReady(1) && e.wouldBeReady(2)
	case isa.ClassFPALU:
		return c.cfg.FPALU > 0 && e.wouldBeReady(1) && e.wouldBeReady(2)
	case isa.ClassFPMul, isa.ClassFPDiv:
		return c.cfg.FPMulDiv > 0 && e.wouldBeReady(1) && e.wouldBeReady(2)
	case isa.ClassBranch:
		return c.cfg.IntALU > 0 && e.wouldBeReady(1)
	case isa.ClassStore:
		if e.agenDone || e.issued {
			return false
		}
		return c.cfg.IntALU > 0 && e.wouldBeReady(1)
	case isa.ClassLoad:
		// Conservative: once the address operand is ready, issueLoad's
		// predictor and store-queue probes bump observable counters even
		// when the load ends up blocked, so the cycle is not skippable.
		return c.cfg.LoadPorts > 0 && e.wouldBeReady(1)
	}
	return false
}

// lqFull reports whether the load queue (FIFO on replay machines,
// associative on baselines) is at capacity.
func (c *Core) lqFull() bool {
	if c.eng != nil {
		return c.eng.Queue.Full()
	}
	return c.alq.Full()
}

// FastForward advances the core n cycles without stepping it. The
// caller must have established via Quiescent (with no intervening
// Step or external event) that every skipped cycle is a no-op apart
// from the deterministic per-cycle accounting replicated here: the
// cycle counter, the ROB-occupancy integral, and the dispatch stall
// counter Quiescent recorded.
//
//vbr:hotpath
func (c *Core) FastForward(n int64) {
	c.cycle += n
	c.Stats.Cycles += n
	c.Stats.ROBOccupancySum += uint64(n) * uint64(c.rob.Len())
	k := uint64(n)
	switch c.ffStall {
	case stallBarrier:
		c.Stats.StallBarrier += k
	case stallROB:
		c.Stats.StallROB += k
	case stallIQ:
		c.Stats.StallIQ += k
	case stallLQ:
		c.Stats.StallLQ += k
	case stallSQ:
		c.Stats.StallSQ += k
	}
}
