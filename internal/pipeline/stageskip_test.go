package pipeline

// White-box tests for the stage-skip readiness layer's loadTracker:
// the sorted incomplete-load tag list must agree with a naive set
// under dispatch/complete/squash sequences, including the gap-laden
// tag patterns that squashes leave behind (tags are never reused, so
// the live window is not contiguous — the bug class a residue bitset
// would reintroduce).

import (
	"math/rand"
	"testing"
)

// naiveLoads is the reference model: an unordered set of tags.
type naiveLoads map[int64]bool

func (n naiveLoads) hasBefore(tag int64) bool {
	for t := range n {
		if t < tag {
			return true
		}
	}
	return false
}

func TestLoadTrackerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tr loadTracker
	tr.init(64)
	ref := naiveLoads{}

	live := []int64{} // tags currently tracked, ascending
	next := int64(0)

	check := func(q int64) {
		t.Helper()
		if got, want := tr.hasBefore(q), ref.hasBefore(q); got != want {
			t.Fatalf("hasBefore(%d) = %v, naive = %v (live=%v)", q, got, want, live)
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 && len(live) < 64: // dispatch a load
			// Leave gaps in the tag sequence, as post-squash
			// redispatch does.
			next += 1 + int64(rng.Intn(5))
			tr.add(next)
			ref[next] = true
			live = append(live, next)
		case op < 7 && len(live) > 0: // complete one load, any order
			i := rng.Intn(len(live))
			tag := live[i]
			tr.remove(tag)
			delete(ref, tag)
			live = append(live[:i], live[i+1:]...)
		case op < 8 && len(live) > 0: // squash: kill a suffix
			cut := rng.Intn(len(live))
			for _, tag := range live[cut:] {
				tr.remove(tag)
				delete(ref, tag)
			}
			live = live[:cut]
		default: // query around the live window
			q := next - int64(rng.Intn(20)) + 5
			check(q)
		}
		if len(live) > 0 {
			check(live[0])     // oldest: never "before"
			check(live[0] + 1) // just past the oldest: always "before"
		}
		check(next + 1) // youngest bound
	}
}

// TestLoadTrackerRemoveAbsent: a squashed load that already completed
// was removed at completion; the squash-path remove of the same tag
// must be a no-op, not a corruption.
func TestLoadTrackerRemoveAbsent(t *testing.T) {
	var tr loadTracker
	tr.init(8)
	tr.add(10)
	tr.add(20)
	tr.remove(15) // never present
	tr.remove(20)
	tr.remove(20) // already gone
	if !tr.hasBefore(11) {
		t.Fatal("tag 10 lost by absent-tag removes")
	}
	if tr.hasBefore(10) {
		t.Fatal("phantom tag older than 10")
	}
	tr.remove(10)
	if tr.hasBefore(1 << 40) {
		t.Fatal("tracker not empty after removing all tags")
	}
}
