package pipeline

// White-box microarchitecture tests: rename, dataflow, squash recovery,
// structural hazards, store data capture, membar semantics, and fetch
// behaviour — all against hand-built programs on a real core.

import (
	"testing"

	"vbmo/internal/cache"
	"vbmo/internal/config"
	ecore "vbmo/internal/core"
	"vbmo/internal/isa"
	"vbmo/internal/prog"
)

const testBase = uint64(0x40000)

// archReg reads a committed architectural register.
func archReg(c *Core, r isa.Reg) uint64 {
	st := c.ArchState()
	return st.ReadReg(r)
}

// mkCore builds a uniprocessor core over a private hierarchy.
func mkCore(cfg config.Machine, p *prog.Program, init prog.ArchState) (*Core, *prog.Image) {
	img := prog.NewImage(11)
	hier := cache.NewHierarchy(0, cfg.Hier, cache.MemoryBackend{Latency: cfg.MemLatency})
	c := New(0, cfg, p, img, hier, init)
	return c, img
}

// runFor steps the core until n instructions commit (or a bound).
func runFor(t *testing.T, c *Core, n uint64) {
	t.Helper()
	for i := 0; i < int(n)*300+3000; i++ {
		if c.Stats.Committed >= n {
			return
		}
		c.Step()
	}
	t.Fatalf("core stalled: committed %d of %d after bound (cycle %d)",
		c.Stats.Committed, n, c.cycle)
}

func initState() prog.ArchState {
	var s prog.ArchState
	s.WriteReg(1, testBase)
	s.WriteReg(9, 3)
	return s
}

// straightline builds: r20 = r20+1 repeated n times inside a loop.
func straightline() *prog.Program {
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	for i := 0; i < 12; i++ {
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	}
	b.Branch(isa.OpJump, 0, top)
	return b.Build()
}

func TestDataflowChainCommits(t *testing.T) {
	c, _ := mkCore(config.Baseline(), straightline(), initState())
	runFor(t, c, 130)
	// Ten loop iterations: r20 has been incremented once per committed
	// addi. Count addis committed via arch state after exact commits.
	got := archReg(c, 20)
	// committed includes jumps: each iteration = 12 addi + 1 jump.
	addis := c.Stats.Committed - c.Stats.CommittedBranches
	if got != addis {
		t.Errorf("r20 = %d, want %d (serial chain broken)", got, addis)
	}
}

func TestSerialChainIPCBounded(t *testing.T) {
	// A pure serial dependence chain cannot exceed ~1 IPC regardless of
	// width.
	c, _ := mkCore(config.Baseline(), straightline(), initState())
	runFor(t, c, 2000)
	if ipc := c.Stats.IPC(); ipc > 1.3 {
		t.Errorf("serial chain IPC %.2f exceeds dataflow bound", ipc)
	}
}

func TestIndependentOpsExploitWidth(t *testing.T) {
	// Independent ops across many registers should push IPC well above
	// the serial bound.
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	for i := 0; i < 24; i++ {
		dst := isa.Reg(20 + i%8)
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: dst, Src1: dst, Imm: 1})
	}
	b.Branch(isa.OpJump, 0, top)
	c, _ := mkCore(config.Baseline(), b.Build(), initState())
	runFor(t, c, 4000)
	if ipc := c.Stats.IPC(); ipc < 2.0 {
		t.Errorf("8 independent chains IPC %.2f; expected superscalar speedup", ipc)
	}
}

func TestRenameAcrossSquash(t *testing.T) {
	// A mispredicted branch squashes wrong-path writers; the rename map
	// must recover so later readers see the committed value.
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	// Branch on low bit of r20: alternates, so some mispredicts happen.
	b.Emit(isa.Inst{Op: isa.OpAnd, Dst: 12, Src1: 20, Src2: 34}) // r34=1
	skip := b.NewLabel()
	b.Branch(isa.OpBnez, 12, skip)
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 21, Src1: 21, Imm: 10})
	b.Bind(skip)
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 22, Src1: 21, Src2: 20})
	b.Branch(isa.OpJump, 0, top)
	p := b.Build()

	st := initState()
	st.WriteReg(34, 1)
	c, _ := mkCore(config.Baseline(), p, st)
	runFor(t, c, 3000)
	if c.Stats.SquashesMispredict == 0 {
		t.Fatal("alternating branch never mispredicted")
	}
	// Oracle check of final state.
	ex := prog.NewExecutor(p, prog.NewImage(11), st)
	ex.Run(int(c.Stats.Committed))
	for _, r := range []isa.Reg{20, 21, 22} {
		if archReg(c, r) != ex.State.ReadReg(r) {
			t.Errorf("r%d = %d, oracle %d (rename recovery broken)",
				r, archReg(c, r), ex.State.ReadReg(r))
		}
	}
}

func TestDivLatency(t *testing.T) {
	// A chain of dependent divides commits no faster than DivLat each.
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	for i := 0; i < 4; i++ {
		b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 20, Src1: 20, Src2: 9})
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1000000})
	}
	b.Branch(isa.OpJump, 0, top)
	st := initState()
	st.WriteReg(20, 1<<60)
	c, _ := mkCore(config.Baseline(), b.Build(), st)
	runFor(t, c, 900)
	cfg := config.Baseline()
	wantMin := float64(cfg.DivLat+cfg.IntLat) / 2.5 // cycles per instr lower bound (loose)
	cpi := float64(c.Stats.Cycles) / float64(c.Stats.Committed)
	if cpi < wantMin {
		t.Errorf("CPI %.2f under dependent-divide bound %.2f", cpi, wantMin)
	}
}

func TestFUContention(t *testing.T) {
	// Functional units model issue bandwidth (fully pipelined): with 3
	// divide issues per cycle, 12 independent divides per iteration
	// need at least 4 issue cycles; with 1 unit, 12. Compare.
	mk := func(units int) float64 {
		b := prog.NewBuilder(0x1000)
		top := b.Here()
		for i := 0; i < 12; i++ {
			b.Emit(isa.Inst{Op: isa.OpDiv, Dst: isa.Reg(20 + i%12), Src1: 9, Src2: 9})
		}
		b.Branch(isa.OpJump, 0, top)
		cfg := config.Baseline()
		cfg.IntMulDiv = units
		c, _ := mkCore(cfg, b.Build(), initState())
		runFor(t, c, 1200)
		return float64(c.Stats.Cycles) / float64(c.Stats.Committed)
	}
	cpi3 := mk(3)
	cpi1 := mk(1)
	if cpi1 < cpi3*1.8 {
		t.Errorf("divider-count contention invisible: cpi(1 unit)=%.2f cpi(3 units)=%.2f", cpi1, cpi3)
	}
	// Issue-bandwidth lower bound with 1 unit: 12 divides/iteration of
	// 13 instructions → CPI ≥ 12/13.
	if cpi1 < 12.0/13.0 {
		t.Errorf("CPI %.2f beats the 1-divider issue bound", cpi1)
	}
}

func TestStoreLoadForwardingValue(t *testing.T) {
	// st [r1], r20 ; ld r21,[r1] — the load's committed value must be
	// the store's, via forwarding (store cannot have committed first
	// when the load issues promptly).
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	// A dependent divide chain ahead of the pair keeps the store away
	// from the reorder-buffer head, so its data must be forwarded from
	// the store queue rather than read from the cache after commit.
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 25, Src1: 25, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 25, Src1: 25, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 25, Src1: 25, Imm: 1000000})
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 7})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 1, Src2: 20})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 1})
	b.Branch(isa.OpJump, 0, top)
	st := initState()
	st.WriteReg(25, 1<<60)
	c, _ := mkCore(config.Baseline(), b.Build(), st)
	runFor(t, c, 800)
	if c.Stats.ForwardedLoads == 0 {
		t.Error("no forwarding observed")
	}
	// r21 must equal r20's value at each iteration; final check:
	if archReg(c, 21) == 0 {
		t.Error("forwarded value lost")
	}
	if c.Stats.SquashesRAW > 0 {
		t.Error("forwarding pair must not squash")
	}
}

func TestMembarDrainsROB(t *testing.T) {
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpMembar})
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 21, Src1: 21, Imm: 1})
	b.Branch(isa.OpJump, 0, top)
	c, _ := mkCore(config.Baseline(), b.Build(), initState())
	runFor(t, c, 500)
	if c.Stats.StallBarrier == 0 {
		t.Error("membar never stalled dispatch")
	}
	// Occupancy must stay tiny: the barrier drains the window.
	if occ := c.Stats.AvgROBOccupancy(); occ > 8 {
		t.Errorf("ROB occupancy %.1f with a membar every 4 instructions", occ)
	}
	// And correctness holds.
	if archReg(c, 20) != archReg(c, 21) &&
		archReg(c, 20) != archReg(c, 21)+1 {
		t.Error("membar-separated counters diverged")
	}
}

func TestIQCapacityStalls(t *testing.T) {
	// A long-latency producer with many dependents fills the 32-entry
	// issue queue and stalls dispatch.
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 20, Src1: 20, Src2: 9})
	for i := 0; i < 40; i++ {
		b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 21, Src1: 20, Src2: 21})
	}
	b.Branch(isa.OpJump, 0, top)
	st := initState()
	st.WriteReg(20, 1<<62)
	c, _ := mkCore(config.Baseline(), b.Build(), st)
	runFor(t, c, 600)
	if c.Stats.StallIQ == 0 {
		t.Error("dependent swarm never filled the issue queue")
	}
}

func TestLQCapacityStallsDispatch(t *testing.T) {
	cfg := config.ConstrainedBaseline(16)
	// Loads that all miss to memory pile up in the load queue.
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	for i := 0; i < 24; i++ {
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 11, Src1: 11, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpLoad, Dst: isa.Reg(20 + i%8), Src1: 11})
	}
	b.Branch(isa.OpJump, 0, top)
	c, _ := mkCore(cfg, b.Build(), initState())
	runFor(t, c, 400)
	if c.Stats.StallLQ == 0 {
		t.Error("16-entry load queue never stalled dispatch")
	}
}

func TestReplayMachineCommitsSameStream(t *testing.T) {
	// The same program on baseline and replay-all must commit identical
	// streams (local determinism of the two ordering mechanisms).
	p := straightline()
	var streams [2][]prog.Committed
	for i, cfg := range []config.Machine{config.Baseline(), config.Replay(ecore.ReplayAll)} {
		c, _ := mkCore(cfg, p, initState())
		idx := i
		c.CommitHook = func(r prog.Committed) { streams[idx] = append(streams[idx], r) }
		runFor(t, c, 500)
	}
	n := len(streams[0])
	if len(streams[1]) < n {
		n = len(streams[1])
	}
	for i := 0; i < n; i++ {
		a, b := streams[0][i], streams[1][i]
		if a.PC != b.PC || a.Result != b.Result {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestResetStatsPreservesState(t *testing.T) {
	c, _ := mkCore(config.Replay(ecore.NoRecentSnoop), straightline(), initState())
	runFor(t, c, 300)
	r20 := archReg(c, 20)
	c.ResetStats()
	if c.Stats.Committed != 0 || c.Stats.Cycles != 0 {
		t.Error("stats not reset")
	}
	if archReg(c, 20) != r20 {
		t.Error("architectural state must survive reset")
	}
	runFor(t, c, 100) // continues from preserved state
	if archReg(c, 20) <= r20 {
		t.Error("core did not continue after reset")
	}
}

func TestWrongPathLoadsAccessCache(t *testing.T) {
	// Wrong-path execution must generate cache traffic (the paper's
	// Figure 6 denominator includes it). Build a hard-to-predict branch
	// guarding a load.
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	// The branch condition depends on a divide chain, so it resolves
	// long after the wrong-path loads have dispatched and issued.
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 25, Src1: 25, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 25, Src1: 25, Imm: 999999937})
	b.Emit(isa.Inst{Op: isa.OpAnd, Dst: 12, Src1: 25, Src2: 34})
	skip := b.NewLabel()
	b.Branch(isa.OpBnez, 12, skip)
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 1})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 22, Src1: 1, Imm: 8})
	b.Bind(skip)
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 23, Src1: 23, Imm: 1})
	b.Branch(isa.OpJump, 0, top)
	st := initState()
	st.WriteReg(34, 1)
	st.WriteReg(25, 1<<61)
	c, _ := mkCore(config.Baseline(), b.Build(), st)
	runFor(t, c, 2000)
	if c.Stats.DemandLoadAccesses <= c.Stats.CommittedLoads {
		t.Errorf("no wrong-path loads: demand=%d committed=%d",
			c.Stats.DemandLoadAccesses, c.Stats.CommittedLoads)
	}
}

func TestRule3MarkOnRefetch(t *testing.T) {
	// With SquashIncludesLoad, a replay-mismatching load is refetched
	// and must not be replayed a second time (forward-progress rule 3).
	cfg := config.Replay(ecore.ReplayAll)
	cfg.SquashIncludesLoad = true
	// Late-address silent..non-silent store + premature load (the
	// Figure 1(a) shape, guaranteeing mismatches).
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 14, Src1: 20, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpXor, Dst: 15, Src1: 14, Src2: 14})
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 13, Src1: 1, Src2: 15})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 13, Src2: 20})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 1})
	b.Branch(isa.OpJump, 0, top)
	c, _ := mkCore(cfg, b.Build(), initState())
	runFor(t, c, 2000)
	if c.Stats.SquashesReplayRAW == 0 {
		t.Fatal("no replay squashes produced")
	}
	if c.Engine().Stats.Rule3Skips == 0 {
		t.Error("rule 3 never suppressed a refetched load's replay")
	}
	// Forward progress: committed target reached (runFor asserts).
}

func TestBTBMissCausesFetchBubble(t *testing.T) {
	// Compare cycles for a tight loop with a cold vs warm BTB via two
	// runs: the second window (post-warm) must be faster per iteration.
	p := straightline()
	c, _ := mkCore(config.Baseline(), p, initState())
	runFor(t, c, 130)
	firstCycles := c.Stats.Cycles
	c.ResetStats()
	runFor(t, c, 130)
	if c.Stats.Cycles > firstCycles {
		t.Errorf("warm run slower than cold: %d vs %d", c.Stats.Cycles, firstCycles)
	}
}

func TestSquashedInstrsCounted(t *testing.T) {
	st := initState()
	st.WriteReg(34, 1)
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpAnd, Dst: 12, Src1: 20, Src2: 34})
	skip := b.NewLabel()
	b.Branch(isa.OpBnez, 12, skip)
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 21, Src1: 21, Imm: 1})
	b.Bind(skip)
	b.Branch(isa.OpJump, 0, top)
	c, _ := mkCore(config.Baseline(), b.Build(), st)
	runFor(t, c, 1500)
	if c.Stats.SquashesMispredict == 0 || c.Stats.SquashedInstrs == 0 {
		t.Errorf("mispredicts=%d squashed=%d",
			c.Stats.SquashesMispredict, c.Stats.SquashedInstrs)
	}
}
