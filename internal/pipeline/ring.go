package pipeline

import "vbmo/internal/consistency"

// This file holds the fixed-capacity ring buffers that keep the cycle
// loop allocation-free in steady state (DESIGN.md §9). The reorder
// buffer and the fetch-to-dispatch buffer are FIFOs that previously
// slid their backing arrays with `s = s[1:]` + append — a pattern that
// reallocates every ~capacity operations and kept the GC busy. Both are
// bounded by configuration (ROBSize, FetchBuf), so a ring over a
// preallocated array serves every access pattern they need: push-back,
// pop-front, random access by age, and truncate-from-back (squash).

// entryRing is a fixed-capacity FIFO of ROB entries. Index 0 is the
// oldest (next to commit); capacity is config.Machine.ROBSize, which
// dispatch enforces before every Push.
type entryRing struct {
	buf  []*entry
	head int
	n    int
}

func newEntryRing(capacity int) entryRing {
	return entryRing{buf: make([]*entry, capacity)}
}

// Len returns the current occupancy.
func (r *entryRing) Len() int { return r.n }

// At returns the i-th oldest entry (0 = next to commit).
func (r *entryRing) At(i int) *entry {
	idx := r.head + i
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	return r.buf[idx]
}

// Push appends a dispatched entry at the young end.
func (r *entryRing) Push(e *entry) {
	idx := r.head + r.n
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	r.buf[idx] = e
	r.n++
}

// PopFront removes and returns the oldest entry (commit).
func (r *entryRing) PopFront() *entry {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// TruncateFrom drops entries [i, Len) — the squash path. The caller has
// already recycled the dropped entries.
func (r *entryRing) TruncateFrom(i int) {
	for j := i; j < r.n; j++ {
		idx := r.head + j
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		r.buf[idx] = nil
	}
	r.n = i
}

// fetchRing is a fixed-capacity FIFO of fetched instructions (the
// fetch-to-dispatch buffer). Capacity is config.Machine.FetchBuf, which
// fetch enforces before every Push.
type fetchRing struct {
	buf  []fetched
	head int
	n    int
}

func newFetchRing(capacity int) fetchRing {
	return fetchRing{buf: make([]fetched, capacity)}
}

// Len returns the current occupancy.
func (r *fetchRing) Len() int { return r.n }

// Front returns the oldest buffered instruction.
func (r *fetchRing) Front() *fetched { return &r.buf[r.head] }

// DropFront removes the oldest buffered instruction. Callers read it
// through Front first; dropping by head advance avoids copying the
// struct out of the ring.
func (r *fetchRing) DropFront() {
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
}

// PushSlot appends one zeroed slot and returns it for in-place filling,
// sparing the caller a struct copy.
func (r *fetchRing) PushSlot() *fetched {
	idx := r.head + r.n
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	r.n++
	f := &r.buf[idx]
	*f = fetched{}
	return f
}

// Clear empties the buffer (squash redirect).
func (r *fetchRing) Clear() {
	r.head = 0
	r.n = 0
}

// writerRing is the ring-indexed table of recently committed store
// writer identities, replacing the map[int64]consistency.Writer + log
// slice the commit stage previously churned on every store. Stores
// commit in program order, so tags arrive strictly increasing and the
// window — the most recent `cap` committed stores, exactly the old
// map's eviction policy — stays sorted; Lookup is a binary search over
// the circular window. Only consistency-tracked runs (litmus, -sc)
// ever allocate one.
type writerRing struct {
	tags    []int64
	writers []consistency.Writer
	start   int // index of the oldest element
	n       int
}

func newWriterRing(capacity int) *writerRing {
	return &writerRing{
		tags:    make([]int64, capacity),
		writers: make([]consistency.Writer, capacity),
	}
}

// Push records a committed store's writer identity, evicting the oldest
// record once the window is full. Tags must arrive in increasing order
// (commit order guarantees this).
//
//vbr:hotpath
func (r *writerRing) Push(tag int64, w consistency.Writer) {
	if r.n == len(r.tags) {
		r.tags[r.start] = tag
		r.writers[r.start] = w
		r.start++
		if r.start == len(r.tags) {
			r.start = 0
		}
		return
	}
	idx := r.start + r.n
	if idx >= len(r.tags) {
		idx -= len(r.tags)
	}
	r.tags[idx] = tag
	r.writers[idx] = w
	r.n++
}

// Lookup returns the writer recorded for tag, if it is still inside the
// window. Safe on a nil ring (reports a miss).
//
//vbr:hotpath
func (r *writerRing) Lookup(tag int64) (consistency.Writer, bool) {
	if r == nil {
		return 0, false
	}
	lo, hi := 0, r.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		idx := r.start + mid
		if idx >= len(r.tags) {
			idx -= len(r.tags)
		}
		switch {
		case r.tags[idx] == tag:
			return r.writers[idx], true
		case r.tags[idx] < tag:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}
