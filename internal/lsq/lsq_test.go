package lsq

import (
	"testing"
	"testing/quick"
)

func TestStoreQueueInsertFull(t *testing.T) {
	q := NewStoreQueue(2)
	if !q.Insert(1, 0x10) || !q.Insert(2, 0x14) {
		t.Fatal("inserts into empty queue failed")
	}
	if q.Insert(3, 0x18) {
		t.Error("insert into full queue should fail")
	}
	if q.Len() != 2 || !q.Full() {
		t.Errorf("Len=%d Full=%v", q.Len(), q.Full())
	}
}

func TestStoreQueueOutOfOrderInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order insert should panic")
		}
	}()
	q := NewStoreQueue(4)
	q.Insert(5, 0)
	q.Insert(3, 0)
}

func TestStoreQueueForwarding(t *testing.T) {
	q := NewStoreQueue(8)
	q.Insert(1, 0x10)
	q.Insert(3, 0x14)
	q.SetAddr(1, 0x1000)
	q.SetData(1, 42)
	q.SetAddr(3, 0x2000)
	q.SetData(3, 99)

	// Load tag 5 at 0x1000 forwards from store 1.
	r := q.Search(0x1000, 5)
	if !r.Match || r.MatchTag != 1 || r.Data != 42 || !r.DataReady {
		t.Errorf("forward failed: %+v", r)
	}
	if r.UnresolvedOlder {
		t.Error("all addresses resolved; no unresolved flag expected")
	}
	// A load older than both stores sees nothing.
	r = q.Search(0x1000, 0)
	if r.Match || r.UnresolvedOlder {
		t.Errorf("older load should see empty queue: %+v", r)
	}
}

func TestStoreQueueYoungestMatchWins(t *testing.T) {
	q := NewStoreQueue(8)
	q.Insert(1, 0)
	q.Insert(2, 0)
	q.SetAddr(1, 0x1000)
	q.SetData(1, 1)
	q.SetAddr(2, 0x1000)
	q.SetData(2, 2)
	r := q.Search(0x1000, 9)
	if r.MatchTag != 2 || r.Data != 2 {
		t.Errorf("should forward from youngest older store: %+v", r)
	}
}

func TestStoreQueueUnresolvedOlder(t *testing.T) {
	q := NewStoreQueue(8)
	q.Insert(1, 0)
	q.Insert(2, 0) // address never set
	q.SetAddr(1, 0x1000)
	q.SetData(1, 7)
	r := q.Search(0x3000, 9)
	if r.Match {
		t.Error("no address match expected")
	}
	if !r.UnresolvedOlder {
		t.Error("store 2 is unresolved; flag expected")
	}
	// Unresolved store *younger than the match* also sets the flag.
	r = q.Search(0x1000, 9)
	if !r.Match || !r.UnresolvedOlder {
		t.Errorf("match with younger unresolved store: %+v", r)
	}
	if !q.UnresolvedBefore(9) {
		t.Error("UnresolvedBefore should see store 2")
	}
	if q.UnresolvedBefore(2) {
		t.Error("store 1 is resolved")
	}
}

func TestStoreQueueMatchWithoutData(t *testing.T) {
	q := NewStoreQueue(8)
	q.Insert(1, 0)
	q.SetAddr(1, 0x1000)
	r := q.Search(0x1000, 5)
	if !r.Match || r.DataReady {
		t.Errorf("address match with pending data: %+v", r)
	}
}

func TestStoreQueueWordGranularity(t *testing.T) {
	q := NewStoreQueue(8)
	q.Insert(1, 0)
	q.SetAddr(1, 0x1000)
	q.SetData(1, 7)
	if r := q.Search(0x1004, 5); !r.Match {
		t.Error("same word, different byte offset should match")
	}
	if r := q.Search(0x1008, 5); r.Match {
		t.Error("next word should not match")
	}
}

func TestStoreQueueRemoveSquash(t *testing.T) {
	q := NewStoreQueue(8)
	for i := int64(1); i <= 4; i++ {
		q.Insert(i, 0)
	}
	q.Remove(1)
	if q.OldestTag() != 2 {
		t.Errorf("OldestTag = %d", q.OldestTag())
	}
	q.Squash(3)
	if q.Len() != 1 || q.OldestTag() != 2 {
		t.Errorf("after squash: len=%d oldest=%d", q.Len(), q.OldestTag())
	}
	if q.HasOlderThan(2) {
		t.Error("nothing older than 2 remains")
	}
	if !q.HasOlderThan(3) {
		t.Error("store 2 is older than 3")
	}
	q2 := NewStoreQueue(2)
	if q2.OldestTag() != -1 {
		t.Error("empty queue OldestTag should be -1")
	}
}

func TestAssocLQInsertCapacity(t *testing.T) {
	q := NewAssocLoadQueue(Snooping, 2)
	if !q.Insert(1, 0) || !q.Insert(2, 0) || q.Insert(3, 0) {
		t.Error("capacity enforcement failed")
	}
}

func TestRAWViolationDetection(t *testing.T) {
	// Figure 1(a): load issues before an older store's address
	// resolves; the store agen search finds it.
	q := NewAssocLoadQueue(Snooping, 8)
	q.Insert(5, 0x100) // load, program order after store tag 3
	q.OnIssue(5, 0x1000, -1)
	sq, found := q.OnStoreAgen(0x1000, 3)
	if !found || sq.Tag != 5 || sq.PC != 0x100 {
		t.Fatalf("RAW violation not found: %+v %v", sq, found)
	}
	if q.RAWSquashes != 1 {
		t.Errorf("RAWSquashes = %d", q.RAWSquashes)
	}
	// Different address: no violation.
	if _, found := q.OnStoreAgen(0x2000, 3); found {
		t.Error("unrelated store should not squash")
	}
}

func TestRAWForwardedFromYoungerStoreIsSafe(t *testing.T) {
	q := NewAssocLoadQueue(Snooping, 8)
	q.Insert(5, 0x100)
	// Load forwarded from store tag 4 (younger than resolving store 3).
	q.OnIssue(5, 0x1000, 4)
	if _, found := q.OnStoreAgen(0x1000, 3); found {
		t.Error("load with value from a younger store must not squash")
	}
	// But a store younger than the forwarding store is a violation.
	q2 := NewAssocLoadQueue(Snooping, 8)
	q2.Insert(5, 0x100)
	q2.OnIssue(5, 0x1000, 2)
	if _, found := q2.OnStoreAgen(0x1000, 3); !found {
		t.Error("store between forwarder and load must squash the load")
	}
}

func TestSnoopingInvalidation(t *testing.T) {
	// Figure 1(b): an external invalidation matches an issued load that
	// is not at the head.
	q := NewAssocLoadQueue(Snooping, 8)
	q.Insert(1, 0x100)
	q.Insert(2, 0x104)
	q.OnIssue(1, 0x1000, -1)
	q.OnIssue(2, 0x1040, -1)
	sq, found := q.OnInvalidation(0x1040, 1)
	if !found || sq.Tag != 2 {
		t.Fatalf("snoop should squash load 2: %+v %v", sq, found)
	}
	if q.InvalSquashes != 1 {
		t.Errorf("InvalSquashes = %d", q.InvalSquashes)
	}
}

func TestSnoopCommitPointExemption(t *testing.T) {
	// The load at the commit point is never squashed (forward progress;
	// paper §2.1)...
	q := NewAssocLoadQueue(Snooping, 8)
	q.Insert(1, 0x100)
	q.OnIssue(1, 0x1000, -1)
	if _, found := q.OnInvalidation(0x1000, 1); found {
		t.Error("commit-point load must never squash on snoops")
	}
	// ...but merely being the oldest load is not enough: with an
	// uncommitted older store at the ROB head the exemption does not
	// apply (this distinction is what keeps SB sequentially consistent
	// on the baseline).
	if sq, found := q.OnInvalidation(0x1000, 0); !found || sq.Tag != 1 {
		t.Error("oldest load with an uncommitted older store must squash")
	}
}

func TestSnoopInFlightLoadSquashes(t *testing.T) {
	// An issued load whose fill is still outstanding squashes like a
	// completed one: the invalidation strips the block from the local
	// cache, so a later remote write would deliver no snoop here —
	// merely refreshing the value would leave it with no coherence
	// guarantee at commit (the MP litmus test observes that hole as
	// r=1,0 under probe contention).
	q := NewAssocLoadQueue(Snooping, 8)
	q.Insert(1, 0x100)
	q.Insert(2, 0x104)
	q.OnIssue(1, 0x1000, -1)
	q.OnIssue(2, 0x1000, -1)
	sq, found := q.OnInvalidation(0x1000, 0)
	if !found || sq.Tag != 1 {
		t.Fatalf("oldest in-flight load must squash: %+v %v", sq, found)
	}
}

func TestInsulatedLoadIssueSearch(t *testing.T) {
	// Figure 1(c): younger load to the same address already issued.
	q := NewAssocLoadQueue(Insulated, 8)
	q.Insert(1, 0x100)
	q.Insert(2, 0x104)
	// Younger load 2 issues first.
	if _, found := q.OnIssue(2, 0x1000, -1); found {
		t.Error("first issue cannot conflict")
	}
	// Older load 1 issues to the same address: load 2 must squash.
	sq, found := q.OnIssue(1, 0x1000, -1)
	if !found || sq.Tag != 2 {
		t.Fatalf("insulated issue search failed: %+v %v", sq, found)
	}
	if q.IssueSquashes != 1 {
		t.Errorf("IssueSquashes = %d", q.IssueSquashes)
	}
	// Invalidations are ignored by insulated queues.
	if _, found := q.OnInvalidation(0x1000, -1); found {
		t.Error("insulated queue must not process invalidations")
	}
}

func TestInsulatedDifferentAddressNoSquash(t *testing.T) {
	q := NewAssocLoadQueue(Insulated, 8)
	q.Insert(1, 0x100)
	q.Insert(2, 0x104)
	q.OnIssue(2, 0x2000, -1)
	if _, found := q.OnIssue(1, 0x1000, -1); found {
		t.Error("different addresses must not conflict")
	}
}

func TestHybridMarkThenSquash(t *testing.T) {
	// Power4: the snoop marks; only a later same-address load-issue
	// search squashes marked conflicts.
	q := NewAssocLoadQueue(Hybrid, 8)
	q.Insert(1, 0x100)
	q.Insert(2, 0x104)
	q.Insert(3, 0x108)
	q.OnIssue(2, 0x1040, -1)
	if _, found := q.OnInvalidation(0x1040, 1); found {
		t.Fatal("hybrid snoop must mark, not squash")
	}
	// Older load 1 issues to the same address: marked load 2 squashes.
	sq, found := q.OnIssue(1, 0x1040, -1)
	if !found || sq.Tag != 2 {
		t.Fatalf("marked conflict not squashed: %+v %v", sq, found)
	}
	// Unmarked same-address conflicts do not squash in hybrid mode.
	q2 := NewAssocLoadQueue(Hybrid, 8)
	q2.Insert(1, 0x100)
	q2.Insert(2, 0x104)
	q2.OnIssue(2, 0x1040, -1)
	if _, found := q2.OnIssue(1, 0x1040, -1); found {
		t.Error("hybrid without snoop mark must not squash")
	}
}

func TestSearchAccounting(t *testing.T) {
	q := NewAssocLoadQueue(Snooping, 8)
	q.Insert(1, 0)
	q.Insert(2, 0)
	q.OnIssue(1, 0x1000, -1) // snooping: no search at issue
	if q.Searches != 0 {
		t.Errorf("snooping issue should not search; Searches=%d", q.Searches)
	}
	q.OnStoreAgen(0x99, 0)
	q.OnInvalidation(0x1000, -1)
	if q.Searches != 2 {
		t.Errorf("Searches = %d, want 2", q.Searches)
	}
	if q.SearchedEntries != 4 {
		t.Errorf("SearchedEntries = %d, want 4", q.SearchedEntries)
	}

	ins := NewAssocLoadQueue(Insulated, 8)
	ins.Insert(1, 0)
	ins.OnIssue(1, 0x1000, -1)
	if ins.Searches != 1 {
		t.Errorf("insulated issue must search; Searches=%d", ins.Searches)
	}
}

func TestLoadQueueRemoveSquash(t *testing.T) {
	q := NewAssocLoadQueue(Snooping, 8)
	for i := int64(1); i <= 4; i++ {
		q.Insert(i, 0)
	}
	q.Remove(1)
	q.Squash(3)
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	// Remaining load is tag 2 and now at the commit point: snoops skip it.
	q.OnIssue(2, 0x1000, -1)
	if _, found := q.OnInvalidation(0x1000, 2); found {
		t.Error("commit-point skip after remove/squash failed")
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Snooping, Insulated, Hybrid} {
		if m.String() == "?" {
			t.Errorf("mode %d unnamed", m)
		}
	}
}

func TestStoreQueueSearchProperty(t *testing.T) {
	// Property: Search never returns a match younger than the load.
	err := quick.Check(func(addrs []uint16, loadTag uint8) bool {
		if len(addrs) == 0 {
			return true
		}
		q := NewStoreQueue(64)
		for i, a := range addrs {
			if i >= 60 {
				break
			}
			tag := int64(i)
			q.Insert(tag, 0)
			q.SetAddr(tag, uint64(a)*8)
			q.SetData(tag, uint64(i))
		}
		r := q.Search(uint64(addrs[0])*8, int64(loadTag))
		return !r.Match || r.MatchTag < int64(loadTag)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
