package lsq

import (
	"vbmo/internal/cache"
	"vbmo/internal/trace"
)

// Mode selects the associative load queue's consistency-enforcement
// style (paper §2.1).
type Mode int

const (
	// Snooping load queues are searched by external invalidations
	// (Gharachorloo et al.; MIPS R10000, Pentium Pro).
	Snooping Mode = iota
	// Insulated load queues are searched by each issuing load and never
	// process external invalidations (Alpha 21264).
	Insulated
	// Hybrid queues snoop to *mark* conflicting loads and squash only
	// marked conflicts found by load-issue searches (IBM Power4).
	Hybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Snooping:
		return "snooping"
	case Insulated:
		return "insulated"
	case Hybrid:
		return "hybrid"
	}
	return "?"
}

// LoadEntry is one in-flight load in the associative queue.
type LoadEntry struct {
	// Tag is the load's ROB sequence number (program order).
	Tag int64
	// PC is the load's program counter (for predictor training).
	PC uint64
	// Addr is the word-aligned effective address, valid once Issued.
	Addr uint64
	// Issued marks loads that have executed prematurely (only issued
	// loads participate in violation searches).
	Issued bool
	// ForwardTag is the store the load's value was forwarded from
	// (-1 when the value came from the cache).
	ForwardTag int64
	// Marked is the hybrid design's snoop-hit mark.
	Marked bool
}

// Squash describes a memory-order violation found by a search: the
// pipeline must squash from Tag (inclusive) and may train a dependence
// predictor with PC.
type Squash struct {
	// Tag is the oldest violating load's ROB sequence number.
	Tag int64
	// PC is the violating load's program counter.
	PC uint64
}

// AssocLoadQueue is the conventional CAM-based load queue. Searches are
// counted, along with the occupancy at each search, for the Table 2 /
// §5.3 energy accounting.
type AssocLoadQueue struct {
	mode    Mode
	entries []LoadEntry
	cap     int
	// Searches counts CAM search operations; SearchedEntries
	// accumulates occupancy over searches (energy scales with entries
	// searched).
	Searches        uint64
	SearchedEntries uint64
	// InvalSquashes, RAWSquashes, IssueSquashes count violations found
	// by each search type.
	InvalSquashes, RAWSquashes, IssueSquashes uint64
	// bloom, when enabled, summarizes issued-load block addresses so
	// store-agen and snoop searches can skip the CAM when no issued
	// load can match (Sethumadhavan et al.; see bloom.go).
	bloom *BloomFilter
	// BloomFiltered counts CAM searches avoided by the filter.
	BloomFiltered uint64
	// Emit, when non-nil, receives trace events only the queue itself
	// can see — currently the hybrid design's snoop marks (KLQMark),
	// which defer a possible squash rather than causing one. The
	// pipeline wires it in SetTracer, filling in core and cycle.
	Emit func(kind trace.Kind, tag int64, pc, addr uint64)
}

// NewAssocLoadQueue creates a queue of the given capacity and mode.
func NewAssocLoadQueue(mode Mode, capacity int) *AssocLoadQueue {
	return &AssocLoadQueue{mode: mode, cap: capacity}
}

// EnableBloom attaches a counting Bloom filter with the given counter
// count and hash functions.
func (q *AssocLoadQueue) EnableBloom(counters, hashes int) {
	q.bloom = NewBloomFilter(counters, hashes)
}

// Bloom returns the attached filter (nil when disabled).
func (q *AssocLoadQueue) Bloom() *BloomFilter { return q.bloom }

// Mode returns the queue's consistency-enforcement style.
func (q *AssocLoadQueue) Mode() Mode { return q.mode }

// Len returns the occupancy.
func (q *AssocLoadQueue) Len() int { return len(q.entries) }

// Full reports whether another load can be dispatched. A full load
// queue stalls dispatch — the size-constrained configurations of
// Figure 8 bite here.
func (q *AssocLoadQueue) Full() bool { return len(q.entries) >= q.cap }

// Insert adds a load at dispatch in program order.
func (q *AssocLoadQueue) Insert(tag int64, pc uint64) bool {
	if q.Full() {
		return false
	}
	if n := len(q.entries); n > 0 && q.entries[n-1].Tag >= tag {
		panic("lsq: load tags must be inserted in program order")
	}
	q.entries = append(q.entries, LoadEntry{Tag: tag, PC: pc, ForwardTag: -1})
	return true
}

func (q *AssocLoadQueue) find(tag int64) *LoadEntry {
	for i := range q.entries {
		if q.entries[i].Tag == tag {
			return &q.entries[i]
		}
	}
	return nil
}

func (q *AssocLoadQueue) countSearch() {
	q.Searches++
	q.SearchedEntries += uint64(len(q.entries))
}

// OnIssue records a load's premature execution and, in the insulated
// and hybrid designs, searches for younger already-issued loads to the
// same address that must squash (paper Figure 1(c)). It returns the
// oldest such violation, if any.
//
//vbr:hotpath
func (q *AssocLoadQueue) OnIssue(tag int64, addr uint64, forwardTag int64) (Squash, bool) {
	e := q.find(tag)
	if e == nil {
		return Squash{}, false
	}
	e.Addr = addr &^ 7
	e.Issued = true
	e.ForwardTag = forwardTag
	if q.bloom != nil {
		q.bloom.Insert(cache.BlockAddr(addr))
	}
	if q.mode == Snooping {
		// Snooping SC queues need no load-issue search.
		return Squash{}, false
	}
	q.countSearch()
	for i := range q.entries {
		le := &q.entries[i]
		if le.Tag <= tag || !le.Issued || le.Addr != e.Addr {
			continue
		}
		if q.mode == Hybrid && !le.Marked {
			// Power4: only snoop-marked conflicts squash.
			continue
		}
		q.IssueSquashes++
		return Squash{Tag: le.Tag, PC: le.PC}, true
	}
	return Squash{}, false
}

// OnStoreAgen is the uniprocessor RAW check (paper Figure 1(a)): when a
// store's address resolves, issued younger loads to the same address
// that did not forward from a yet-younger store are violations. The
// oldest violation is returned.
//
//vbr:hotpath
func (q *AssocLoadQueue) OnStoreAgen(addr uint64, storeTag int64) (Squash, bool) {
	if q.bloom != nil && !q.bloom.MayContain(cache.BlockAddr(addr)) {
		q.BloomFiltered++
		return Squash{}, false
	}
	q.countSearch()
	addr &^= 7
	for i := range q.entries {
		le := &q.entries[i]
		if le.Tag <= storeTag || !le.Issued || le.Addr != addr {
			continue
		}
		if le.ForwardTag >= storeTag {
			// The load's value came from the resolving store itself or
			// from a younger one; no violation.
			continue
		}
		q.RAWSquashes++
		return Squash{Tag: le.Tag, PC: le.PC}, true
	}
	return Squash{}, false
}

// OnInvalidation processes an external invalidation (or an L3 castout,
// which must be treated identically to preserve snoop visibility).
// commitTag is the ROB's next-to-commit instruction. That load is never
// squashed: every older instruction has committed, so architectural
// state is consistent with the load having already performed (paper
// §2.1 — note this is the next instruction to commit, not merely the
// oldest queue entry; an uncommitted older store voids the argument,
// which the SB litmus test observes as the forbidden r=0,0 outcome).
// Every other issued match is a violation — including loads whose fill
// is still outstanding: the invalidation strips the block from the
// local cache, so a later remote write would deliver no snoop here,
// and a merely refreshed value would commit with nothing guaranteeing
// its coherence (the MP litmus test observes exactly that hole as
// r=1,0 under probe contention). The oldest violation is returned
// (hybrid queues mark instead of squashing).
//
//vbr:hotpath
func (q *AssocLoadQueue) OnInvalidation(block uint64, commitTag int64) (Squash, bool) {
	if q.mode == Insulated {
		return Squash{}, false
	}
	if q.bloom != nil && !q.bloom.MayContain(cache.BlockAddr(block)) {
		q.BloomFiltered++
		return Squash{}, false
	}
	q.countSearch()
	for i := range q.entries {
		le := &q.entries[i]
		if !le.Issued || cache.BlockAddr(le.Addr) != cache.BlockAddr(block) {
			continue
		}
		if le.Tag == commitTag {
			continue
		}
		if q.mode == Hybrid {
			le.Marked = true
			if q.Emit != nil {
				q.Emit(trace.KLQMark, le.Tag, le.PC, block)
			}
			continue
		}
		q.InvalSquashes++
		return Squash{Tag: le.Tag, PC: le.PC}, true
	}
	return Squash{}, false
}

// Remove deletes the load with the given tag (at commit).
func (q *AssocLoadQueue) Remove(tag int64) {
	for i := range q.entries {
		if q.entries[i].Tag == tag {
			q.unfilter(&q.entries[i])
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return
		}
	}
}

// Squash removes every load with tag >= fromTag.
func (q *AssocLoadQueue) Squash(fromTag int64) {
	for i := range q.entries {
		if q.entries[i].Tag >= fromTag {
			for j := i; j < len(q.entries); j++ {
				q.unfilter(&q.entries[j])
			}
			q.entries = q.entries[:i]
			return
		}
	}
}

func (q *AssocLoadQueue) unfilter(e *LoadEntry) {
	if q.bloom != nil && e.Issued {
		q.bloom.Remove(cache.BlockAddr(e.Addr))
	}
}
