// Package lsq implements the load/store queue microarchitecture of
// Section 2: a store queue with store-to-load forwarding and unresolved-
// address tracking, and the three conventional associative load-queue
// designs the paper describes — snooping, insulated, and Power4-style
// hybrid — with CAM-search accounting for the §5.3 power model. The
// replay machine's non-associative FIFO load queue lives in package
// core, next to the replay engine that owns it.
//
// Tags are reorder-buffer sequence numbers: monotonically increasing,
// never reused within a run, so tag order is program order.
package lsq

// StoreEntry is one in-flight store.
type StoreEntry struct {
	// Tag is the store's ROB sequence number (program order).
	Tag int64
	// PC is the store's program counter (for predictor training).
	PC uint64
	// Addr is the effective address, meaningful once AddrValid is set
	// by the store's address generation.
	Addr uint64
	// AddrValid marks stores whose address has resolved; unresolved
	// stores are what the no-unresolved-store filter watches for.
	AddrValid bool
	// Data is the store's value, meaningful once DataValid is set by
	// data capture (forwarding requires it).
	Data uint64
	// DataValid marks stores whose data operand has been captured.
	DataValid bool
}

// SearchResult reports a store-queue search by a load.
type SearchResult struct {
	// Latency is the forwarding latency in cycles (0 = the fast path;
	// a two-level queue reports its level-two latency for deep
	// matches — Akkary et al.'s hierarchical store queue).
	Latency int
	// Match is true when an older store with a resolved, equal address
	// was found; MatchTag/Data/DataReady describe the youngest such
	// store.
	Match     bool
	MatchTag  int64
	Data      uint64
	DataReady bool
	// MatchPC is the matching store's PC (for predictor training).
	MatchPC uint64
	// UnresolvedOlder is true when some older store that could alias
	// (younger than the match, or any older store if no match) has an
	// unresolved address — the condition the no-unresolved-store
	// filter records.
	UnresolvedOlder bool
}

// StoreQueue holds in-flight stores in program order. Optionally it is
// hierarchical (Akkary et al., "Checkpoint processing and recovery",
// MICRO 2003 — cited in the paper's §1): a small fast level-one queue
// holds the most recent stores; older stores live in a larger, slower
// level-two buffer whose lookups are avoided by a membership filter
// when no resolved older store can match.
//
// Internally the queue is struct-of-arrays (DESIGN.md §12): the fields
// every Search touches for every entry — tag, resolved address, and the
// resolved bit — live in dense parallel arrays the scan walks without
// loading the cold payload (PC, data), which is only read on a match.
// All arrays are preallocated to capacity; steady state never grows
// them. Indices align across all six arrays at all times.
type StoreQueue struct {
	// Hot scan state, one element per in-flight store, program order.
	tags   []int64
	addrs  []uint64
	addrOK []bool
	// Cold payload, parallel to the hot arrays.
	pcs    []uint64
	data   []uint64
	dataOK []bool

	cap int
	// Searches counts associative lookups (loads probing for
	// forwarding).
	Searches uint64

	// Two-level mode (0 = flat queue).
	l1Size     int
	l2Latency  int
	filter     *BloomFilter
	unresolved int // stores whose address is not yet known
	// L2Searches counts searches that had to probe the level-two
	// buffer; L2Filtered counts level-two probes avoided.
	L2Searches, L2Filtered uint64
}

// EnableTwoLevel makes the queue hierarchical: the newest l1Size
// stores are the fast level-one queue; matches found deeper incur
// l2Latency cycles; a membership filter of filterCounters counters
// skips level-two probes that cannot match.
func (q *StoreQueue) EnableTwoLevel(l1Size, l2Latency, filterCounters int) {
	q.l1Size = l1Size
	q.l2Latency = l2Latency
	q.filter = NewBloomFilter(filterCounters, 2)
}

// NewStoreQueue creates a queue with the given capacity.
func NewStoreQueue(capacity int) *StoreQueue {
	return &StoreQueue{
		cap:    capacity,
		tags:   make([]int64, 0, capacity),
		addrs:  make([]uint64, 0, capacity),
		addrOK: make([]bool, 0, capacity),
		pcs:    make([]uint64, 0, capacity),
		data:   make([]uint64, 0, capacity),
		dataOK: make([]bool, 0, capacity),
	}
}

// Len returns the current occupancy.
func (q *StoreQueue) Len() int { return len(q.tags) }

// Full reports whether another store can be inserted.
func (q *StoreQueue) Full() bool { return len(q.tags) >= q.cap }

// Insert adds a store at dispatch; it fails when the queue is full.
// Tags must arrive in increasing order.
func (q *StoreQueue) Insert(tag int64, pc uint64) bool {
	if q.Full() {
		return false
	}
	if n := len(q.tags); n > 0 && q.tags[n-1] >= tag {
		panic("lsq: store tags must be inserted in program order")
	}
	q.tags = append(q.tags, tag)
	q.addrs = append(q.addrs, 0)
	q.addrOK = append(q.addrOK, false)
	q.pcs = append(q.pcs, pc)
	q.data = append(q.data, 0)
	q.dataOK = append(q.dataOK, false)
	q.unresolved++
	return true
}

// findIdx returns the index of the store with the given tag, or -1.
func (q *StoreQueue) findIdx(tag int64) int {
	for i, t := range q.tags {
		if t == tag {
			return i
		}
	}
	return -1
}

// SetAddr records the store's resolved effective address (agen).
func (q *StoreQueue) SetAddr(tag int64, addr uint64) {
	if i := q.findIdx(tag); i >= 0 {
		if !q.addrOK[i] {
			q.unresolved--
			if q.filter != nil {
				q.filter.Insert(addr &^ 7)
			}
		}
		q.addrs[i] = addr
		q.addrOK[i] = true
	}
}

// SetData records the store's data operand.
func (q *StoreQueue) SetData(tag int64, data uint64) {
	if i := q.findIdx(tag); i >= 0 {
		q.data[i] = data
		q.dataOK[i] = true
	}
}

// Entry returns a copy of the entry with the given tag.
func (q *StoreQueue) Entry(tag int64) (StoreEntry, bool) {
	if i := q.findIdx(tag); i >= 0 {
		return StoreEntry{
			Tag: q.tags[i], PC: q.pcs[i],
			Addr: q.addrs[i], AddrValid: q.addrOK[i],
			Data: q.data[i], DataValid: q.dataOK[i],
		}, true
	}
	return StoreEntry{}, false
}

// Search probes for the youngest older store matching addr, as a load
// issuing with the given tag would. Word (8-byte) granularity. In
// two-level mode a match found beyond the level-one region reports the
// level-two latency, and the level-two probe is skipped entirely when
// the membership filter proves no resolved store there can match (and
// no unresolved store could alias).
//
//vbr:hotpath
func (q *StoreQueue) Search(addr uint64, loadTag int64) SearchResult {
	q.Searches++
	addr &^= 7
	var r SearchResult
	n := len(q.tags)
	l1Boundary := -1
	if q.l1Size > 0 {
		l1Boundary = n - q.l1Size
	}
	for i := n - 1; i >= 0; i-- {
		if q.l1Size > 0 && i < l1Boundary {
			// Crossing into the level-two buffer: consult the filter
			// once. With no unresolved stores anywhere and a filter
			// miss, nothing deeper can match or alias.
			if q.unresolved == 0 && q.filter != nil && !q.filter.MayContain(addr) {
				q.L2Filtered++
				return r
			}
			q.L2Searches++
			l1Boundary = -1 // count the crossing only once
		}
		if q.tags[i] >= loadTag {
			continue
		}
		if !q.addrOK[i] {
			r.UnresolvedOlder = true
			continue
		}
		if q.addrs[i]&^7 == addr {
			r.Match = true
			r.MatchTag = q.tags[i]
			r.MatchPC = q.pcs[i]
			r.Data = q.data[i]
			r.DataReady = q.dataOK[i]
			if q.l1Size > 0 && i < n-q.l1Size {
				r.Latency = q.l2Latency
			}
			break
		}
	}
	return r
}

// UnresolvedBefore reports whether any store older than tag has an
// unresolved address.
func (q *StoreQueue) UnresolvedBefore(tag int64) bool {
	for i, t := range q.tags {
		if t >= tag {
			break
		}
		if !q.addrOK[i] {
			return true
		}
	}
	return false
}

// OldestTag returns the tag of the oldest in-flight store, or -1.
func (q *StoreQueue) OldestTag() int64 {
	if len(q.tags) == 0 {
		return -1
	}
	return q.tags[0]
}

// HasOlderThan reports whether any store older than tag is in flight.
func (q *StoreQueue) HasOlderThan(tag int64) bool {
	return len(q.tags) > 0 && q.tags[0] < tag
}

// Remove deletes the store with the given tag (at commit, after its
// cache write).
func (q *StoreQueue) Remove(tag int64) {
	i := q.findIdx(tag)
	if i < 0 {
		return
	}
	q.dropAt(i)
	q.tags = append(q.tags[:i], q.tags[i+1:]...)
	q.addrs = append(q.addrs[:i], q.addrs[i+1:]...)
	q.addrOK = append(q.addrOK[:i], q.addrOK[i+1:]...)
	q.pcs = append(q.pcs[:i], q.pcs[i+1:]...)
	q.data = append(q.data[:i], q.data[i+1:]...)
	q.dataOK = append(q.dataOK[:i], q.dataOK[i+1:]...)
}

// Squash removes every store with tag >= fromTag.
func (q *StoreQueue) Squash(fromTag int64) {
	for i, t := range q.tags {
		if t >= fromTag {
			for j := i; j < len(q.tags); j++ {
				q.dropAt(j)
			}
			q.tags = q.tags[:i]
			q.addrs = q.addrs[:i]
			q.addrOK = q.addrOK[:i]
			q.pcs = q.pcs[:i]
			q.data = q.data[:i]
			q.dataOK = q.dataOK[:i]
			return
		}
	}
}

// dropAt maintains the unresolved count and membership filter as the
// entry at index i leaves the queue.
func (q *StoreQueue) dropAt(i int) {
	if !q.addrOK[i] {
		q.unresolved--
	} else if q.filter != nil {
		q.filter.Remove(q.addrs[i] &^ 7)
	}
}
