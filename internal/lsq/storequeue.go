// Package lsq implements the load/store queue microarchitecture of
// Section 2: a store queue with store-to-load forwarding and unresolved-
// address tracking, and the three conventional associative load-queue
// designs the paper describes — snooping, insulated, and Power4-style
// hybrid — with CAM-search accounting for the §5.3 power model. The
// replay machine's non-associative FIFO load queue lives in package
// core, next to the replay engine that owns it.
//
// Tags are reorder-buffer sequence numbers: monotonically increasing,
// never reused within a run, so tag order is program order.
package lsq

// StoreEntry is one in-flight store.
type StoreEntry struct {
	// Tag is the store's ROB sequence number (program order).
	Tag int64
	// PC is the store's program counter (for predictor training).
	PC uint64
	// Addr is the effective address, meaningful once AddrValid is set
	// by the store's address generation.
	Addr uint64
	// AddrValid marks stores whose address has resolved; unresolved
	// stores are what the no-unresolved-store filter watches for.
	AddrValid bool
	// Data is the store's value, meaningful once DataValid is set by
	// data capture (forwarding requires it).
	Data uint64
	// DataValid marks stores whose data operand has been captured.
	DataValid bool
}

// SearchResult reports a store-queue search by a load.
type SearchResult struct {
	// Latency is the forwarding latency in cycles (0 = the fast path;
	// a two-level queue reports its level-two latency for deep
	// matches — Akkary et al.'s hierarchical store queue).
	Latency int
	// Match is true when an older store with a resolved, equal address
	// was found; MatchTag/Data/DataReady describe the youngest such
	// store.
	Match     bool
	MatchTag  int64
	Data      uint64
	DataReady bool
	// MatchPC is the matching store's PC (for predictor training).
	MatchPC uint64
	// UnresolvedOlder is true when some older store that could alias
	// (younger than the match, or any older store if no match) has an
	// unresolved address — the condition the no-unresolved-store
	// filter records.
	UnresolvedOlder bool
}

// StoreQueue holds in-flight stores in program order. Optionally it is
// hierarchical (Akkary et al., "Checkpoint processing and recovery",
// MICRO 2003 — cited in the paper's §1): a small fast level-one queue
// holds the most recent stores; older stores live in a larger, slower
// level-two buffer whose lookups are avoided by a membership filter
// when no resolved older store can match.
type StoreQueue struct {
	entries []StoreEntry
	cap     int
	// Searches counts associative lookups (loads probing for
	// forwarding).
	Searches uint64

	// Two-level mode (0 = flat queue).
	l1Size     int
	l2Latency  int
	filter     *BloomFilter
	unresolved int // stores whose address is not yet known
	// L2Searches counts searches that had to probe the level-two
	// buffer; L2Filtered counts level-two probes avoided.
	L2Searches, L2Filtered uint64
}

// EnableTwoLevel makes the queue hierarchical: the newest l1Size
// stores are the fast level-one queue; matches found deeper incur
// l2Latency cycles; a membership filter of filterCounters counters
// skips level-two probes that cannot match.
func (q *StoreQueue) EnableTwoLevel(l1Size, l2Latency, filterCounters int) {
	q.l1Size = l1Size
	q.l2Latency = l2Latency
	q.filter = NewBloomFilter(filterCounters, 2)
}

// NewStoreQueue creates a queue with the given capacity.
func NewStoreQueue(capacity int) *StoreQueue {
	return &StoreQueue{cap: capacity}
}

// Len returns the current occupancy.
func (q *StoreQueue) Len() int { return len(q.entries) }

// Full reports whether another store can be inserted.
func (q *StoreQueue) Full() bool { return len(q.entries) >= q.cap }

// Insert adds a store at dispatch; it fails when the queue is full.
// Tags must arrive in increasing order.
func (q *StoreQueue) Insert(tag int64, pc uint64) bool {
	if q.Full() {
		return false
	}
	if n := len(q.entries); n > 0 && q.entries[n-1].Tag >= tag {
		panic("lsq: store tags must be inserted in program order")
	}
	q.entries = append(q.entries, StoreEntry{Tag: tag, PC: pc})
	q.unresolved++
	return true
}

func (q *StoreQueue) find(tag int64) *StoreEntry {
	for i := range q.entries {
		if q.entries[i].Tag == tag {
			return &q.entries[i]
		}
	}
	return nil
}

// SetAddr records the store's resolved effective address (agen).
func (q *StoreQueue) SetAddr(tag int64, addr uint64) {
	if e := q.find(tag); e != nil {
		if !e.AddrValid {
			q.unresolved--
			if q.filter != nil {
				q.filter.Insert(addr &^ 7)
			}
		}
		e.Addr = addr
		e.AddrValid = true
	}
}

// SetData records the store's data operand.
func (q *StoreQueue) SetData(tag int64, data uint64) {
	if e := q.find(tag); e != nil {
		e.Data = data
		e.DataValid = true
	}
}

// Entry returns a copy of the entry with the given tag.
func (q *StoreQueue) Entry(tag int64) (StoreEntry, bool) {
	if e := q.find(tag); e != nil {
		return *e, true
	}
	return StoreEntry{}, false
}

// Search probes for the youngest older store matching addr, as a load
// issuing with the given tag would. Word (8-byte) granularity. In
// two-level mode a match found beyond the level-one region reports the
// level-two latency, and the level-two probe is skipped entirely when
// the membership filter proves no resolved store there can match (and
// no unresolved store could alias).
//
//vbr:hotpath
func (q *StoreQueue) Search(addr uint64, loadTag int64) SearchResult {
	q.Searches++
	addr &^= 7
	var r SearchResult
	l1Boundary := -1
	if q.l1Size > 0 {
		l1Boundary = len(q.entries) - q.l1Size
	}
	for i := len(q.entries) - 1; i >= 0; i-- {
		e := &q.entries[i]
		if q.l1Size > 0 && i < l1Boundary {
			// Crossing into the level-two buffer: consult the filter
			// once. With no unresolved stores anywhere and a filter
			// miss, nothing deeper can match or alias.
			if q.unresolved == 0 && q.filter != nil && !q.filter.MayContain(addr) {
				q.L2Filtered++
				return r
			}
			q.L2Searches++
			l1Boundary = -1 // count the crossing only once
		}
		if e.Tag >= loadTag {
			continue
		}
		if !e.AddrValid {
			r.UnresolvedOlder = true
			continue
		}
		if e.Addr&^7 == addr {
			r.Match = true
			r.MatchTag = e.Tag
			r.MatchPC = e.PC
			r.Data = e.Data
			r.DataReady = e.DataValid
			if q.l1Size > 0 && i < len(q.entries)-q.l1Size {
				r.Latency = q.l2Latency
			}
			break
		}
	}
	return r
}

// UnresolvedBefore reports whether any store older than tag has an
// unresolved address.
func (q *StoreQueue) UnresolvedBefore(tag int64) bool {
	for i := range q.entries {
		e := &q.entries[i]
		if e.Tag >= tag {
			break
		}
		if !e.AddrValid {
			return true
		}
	}
	return false
}

// OldestTag returns the tag of the oldest in-flight store, or -1.
func (q *StoreQueue) OldestTag() int64 {
	if len(q.entries) == 0 {
		return -1
	}
	return q.entries[0].Tag
}

// HasOlderThan reports whether any store older than tag is in flight.
func (q *StoreQueue) HasOlderThan(tag int64) bool {
	return len(q.entries) > 0 && q.entries[0].Tag < tag
}

// Remove deletes the store with the given tag (at commit, after its
// cache write).
func (q *StoreQueue) Remove(tag int64) {
	for i := range q.entries {
		if q.entries[i].Tag == tag {
			q.drop(&q.entries[i])
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return
		}
	}
}

// Squash removes every store with tag >= fromTag.
func (q *StoreQueue) Squash(fromTag int64) {
	for i := range q.entries {
		if q.entries[i].Tag >= fromTag {
			for j := i; j < len(q.entries); j++ {
				q.drop(&q.entries[j])
			}
			q.entries = q.entries[:i]
			return
		}
	}
}

// drop maintains the unresolved count and membership filter as an
// entry leaves the queue.
func (q *StoreQueue) drop(e *StoreEntry) {
	if !e.AddrValid {
		q.unresolved--
	} else if q.filter != nil {
		q.filter.Remove(e.Addr &^ 7)
	}
}
