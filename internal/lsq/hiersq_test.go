package lsq

import "testing"

// twoLevelQueue builds a hierarchical store queue with n resolved
// stores at distinct addresses.
func twoLevelQueue(n int) *StoreQueue {
	q := NewStoreQueue(64)
	q.EnableTwoLevel(4, 3, 256)
	for i := 0; i < n; i++ {
		tag := int64(i)
		q.Insert(tag, 0)
		q.SetAddr(tag, uint64(0x1000+i*8))
		q.SetData(tag, uint64(i))
	}
	return q
}

func TestTwoLevelL1MatchIsFast(t *testing.T) {
	q := twoLevelQueue(10)
	// The newest 4 stores (tags 6..9) are level one.
	r := q.Search(0x1000+9*8, 100)
	if !r.Match || r.MatchTag != 9 {
		t.Fatalf("L1 match failed: %+v", r)
	}
	if r.Latency != 0 {
		t.Errorf("L1 match latency = %d, want 0", r.Latency)
	}
}

func TestTwoLevelL2MatchIsSlow(t *testing.T) {
	q := twoLevelQueue(10)
	r := q.Search(0x1000, 100) // oldest store, deep in L2
	if !r.Match || r.MatchTag != 0 {
		t.Fatalf("L2 match failed: %+v", r)
	}
	if r.Latency != 3 {
		t.Errorf("L2 match latency = %d, want 3", r.Latency)
	}
	if q.L2Searches != 1 {
		t.Errorf("L2Searches = %d", q.L2Searches)
	}
}

func TestTwoLevelFilterSkipsL2(t *testing.T) {
	q := twoLevelQueue(10)
	r := q.Search(0x9000, 100) // matches nothing anywhere
	if r.Match {
		t.Fatal("phantom match")
	}
	if q.L2Filtered != 1 {
		t.Errorf("L2 probe not filtered: filtered=%d searched=%d", q.L2Filtered, q.L2Searches)
	}
}

func TestTwoLevelUnresolvedForcesL2(t *testing.T) {
	q := twoLevelQueue(10)
	// An unresolved store anywhere defeats the filter (it could alias).
	q.Insert(50, 0)
	r := q.Search(0x9000, 100)
	if r.Match {
		t.Fatal("phantom match")
	}
	if !r.UnresolvedOlder {
		t.Error("unresolved store not reported")
	}
	if q.L2Filtered != 0 || q.L2Searches != 1 {
		t.Errorf("filter must not skip with unresolved stores: filtered=%d searched=%d",
			q.L2Filtered, q.L2Searches)
	}
}

func TestTwoLevelFilterMaintenance(t *testing.T) {
	q := twoLevelQueue(10)
	// Remove the oldest store; its address leaves the filter, so a
	// search for it is now filtered.
	q.Remove(0)
	r := q.Search(0x1000, 100)
	if r.Match {
		t.Error("removed store still matches")
	}
	if q.L2Filtered != 1 {
		t.Errorf("filter not maintained on Remove: %d", q.L2Filtered)
	}
	// Squash the rest; all filter state drains.
	q.Squash(0)
	if q.Len() != 0 {
		t.Error("squash incomplete")
	}
	q2 := twoLevelQueue(10)
	q2.Squash(5)
	if r := q2.Search(0x1000+8*8, 100); r.Match {
		t.Error("squashed store still matches")
	}
}

func TestFlatQueueUnaffected(t *testing.T) {
	q := NewStoreQueue(8)
	q.Insert(1, 0)
	q.SetAddr(1, 0x1000)
	q.SetData(1, 5)
	r := q.Search(0x1000, 9)
	if !r.Match || r.Latency != 0 {
		t.Errorf("flat queue changed: %+v", r)
	}
}
