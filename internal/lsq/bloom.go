package lsq

// Bloom filtering of load-queue searches, after Sethumadhavan et al.
// ("Scalable hardware memory disambiguation for high-ILP processors",
// MICRO 2003) — the first of the augmentative alternatives the paper's
// introduction contrasts with value-based replay. A small counting
// Bloom filter summarizes the addresses of issued loads; store-agen and
// snoop searches consult it first and skip the full CAM search when the
// filter proves no issued load can match. The CAM itself remains — this
// reduces search *energy*, not queue complexity, which is the paper's
// §1 argument for replacing the structure outright.

// BloomFilter is a counting Bloom filter over block/word addresses.
type BloomFilter struct {
	counters []uint8
	mask     uint64
	hashes   int
	// Queries counts membership tests; Misses counts definite-absence
	// answers (each one saves a full CAM search).
	Queries, Misses uint64
}

// NewBloomFilter builds a filter with the given counter count (power of
// two) and hash count.
func NewBloomFilter(counters, hashes int) *BloomFilter {
	if counters <= 0 || counters&(counters-1) != 0 {
		panic("lsq: bloom counters must be a positive power of two")
	}
	if hashes < 1 || hashes > 4 {
		panic("lsq: bloom hash count must be 1..4")
	}
	return &BloomFilter{
		counters: make([]uint8, counters),
		mask:     uint64(counters - 1),
		hashes:   hashes,
	}
}

// hash derives the i-th index for addr.
func (f *BloomFilter) hash(addr uint64, i int) uint64 {
	x := (addr >> 3) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return (x >> (uint(i) * 13)) & f.mask
}

// Insert records an issued load's address.
func (f *BloomFilter) Insert(addr uint64) {
	for i := 0; i < f.hashes; i++ {
		idx := f.hash(addr, i)
		if f.counters[idx] < 255 {
			f.counters[idx]++
		}
	}
}

// Remove erases one occurrence of addr (at commit or squash).
func (f *BloomFilter) Remove(addr uint64) {
	for i := 0; i < f.hashes; i++ {
		idx := f.hash(addr, i)
		if f.counters[idx] > 0 && f.counters[idx] < 255 {
			f.counters[idx]--
		}
	}
}

// MayContain reports whether addr could be present; false is definite.
func (f *BloomFilter) MayContain(addr uint64) bool {
	f.Queries++
	for i := 0; i < f.hashes; i++ {
		if f.counters[f.hash(addr, i)] == 0 {
			f.Misses++
			return false
		}
	}
	return true
}

// FilterRate returns the fraction of queries answered "definitely
// absent" (full searches avoided).
func (f *BloomFilter) FilterRate() float64 {
	if f.Queries == 0 {
		return 0
	}
	return float64(f.Misses) / float64(f.Queries)
}
