package lsq

import (
	"testing"
	"testing/quick"
)

func TestBloomBasics(t *testing.T) {
	f := NewBloomFilter(256, 2)
	if f.MayContain(0x1000) {
		t.Error("empty filter should answer definitely-absent")
	}
	f.Insert(0x1000)
	if !f.MayContain(0x1000) {
		t.Error("inserted address must be (possibly) present")
	}
	f.Remove(0x1000)
	if f.MayContain(0x1000) {
		t.Error("removed address should be absent again")
	}
	if f.Queries != 3 || f.Misses != 2 {
		t.Errorf("stats: %d queries %d misses", f.Queries, f.Misses)
	}
	if r := f.FilterRate(); r < 0.6 || r > 0.7 {
		t.Errorf("FilterRate = %v", r)
	}
}

func TestBloomCounting(t *testing.T) {
	f := NewBloomFilter(256, 2)
	f.Insert(0x40)
	f.Insert(0x40)
	f.Remove(0x40)
	if !f.MayContain(0x40) {
		t.Error("one of two occurrences removed: still present")
	}
	f.Remove(0x40)
	if f.MayContain(0x40) {
		t.Error("both occurrences removed: absent")
	}
}

func TestBloomNoFalseNegativesProperty(t *testing.T) {
	// The safety property: an inserted, un-removed address is never
	// reported absent.
	f := NewBloomFilter(128, 2)
	live := map[uint64]int{}
	err := quick.Check(func(addr uint64, remove bool) bool {
		a := (addr % 4096) &^ 63
		if remove && live[a] > 0 {
			f.Remove(a)
			live[a]--
		} else {
			f.Insert(a)
			live[a]++
		}
		for k, n := range live {
			if n > 0 && !f.MayContain(k) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestBloomBadConfigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBloomFilter(100, 2) },
		func() { NewBloomFilter(128, 0) },
		func() { NewBloomFilter(128, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestLQBloomFiltersSearches(t *testing.T) {
	q := NewAssocLoadQueue(Snooping, 16)
	q.EnableBloom(256, 2)
	q.Insert(1, 0x100)
	q.OnIssue(1, 0x1000, -1)
	// A store to an unrelated block skips the CAM entirely.
	if _, found := q.OnStoreAgen(0x9000, 0); found {
		t.Error("unrelated store squashed")
	}
	if q.BloomFiltered != 1 || q.Searches != 0 {
		t.Errorf("filtered=%d searches=%d", q.BloomFiltered, q.Searches)
	}
	// Same-block store must still search and find the violation.
	if _, found := q.OnStoreAgen(0x1000, 0); !found {
		t.Error("real violation missed with bloom enabled")
	}
	// After commit-removal the filter empties again.
	q.Squash(1)
	if _, found := q.OnStoreAgen(0x1000, 0); found {
		t.Error("squashed load still matched")
	}
	if q.BloomFiltered != 2 {
		t.Errorf("post-squash search not filtered: %d", q.BloomFiltered)
	}
}

func TestLQBloomInvalidationFilter(t *testing.T) {
	q := NewAssocLoadQueue(Snooping, 16)
	q.EnableBloom(256, 2)
	q.Insert(1, 0x100)
	q.Insert(2, 0x104)
	q.OnIssue(1, 0x1000, -1)
	q.OnIssue(2, 0x2000, -1)
	if _, found := q.OnInvalidation(0x7000, 1); found {
		t.Error("unrelated invalidation squashed")
	}
	if q.BloomFiltered == 0 {
		t.Error("invalidation search not filtered")
	}
	if _, found := q.OnInvalidation(0x2000, 1); !found {
		t.Error("real snoop conflict missed with bloom enabled")
	}
}
