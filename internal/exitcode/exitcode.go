// Package exitcode is the single table of process exit codes shared by
// every command in the module. The numeric values are a documented,
// frozen contract: CI scripts, the fault-smoke workflow, and the
// experiment drivers all branch on them, so a command must never invent
// an ad-hoc literal. The exitcode static analyzer (internal/analysis)
// enforces this: os.Exit in cmd/* may only be called with a constant
// from this table, and internal packages may not call os.Exit at all.
package exitcode

const (
	// OK is the success exit.
	OK = 0
	// Err covers usage errors and infrastructure failures (bad flags,
	// unreadable files, profiling setup, failed sweep cells) — in
	// vbrlint, any diagnostic finding; in vbrworker, a fatal
	// worker/server code-version mismatch (farm.VersionError).
	Err = 1
	// SCViolation is reported by vbrsim when the constraint-graph
	// checker finds a cycle, i.e. the committed execution is not
	// sequentially consistent.
	SCViolation = 2
	// Incomplete is reported when a run ends before reaching its commit
	// target (e.g. the workload ran out of instructions).
	Incomplete = 3
	// Deadlock is reported when the forward-progress watchdog fires:
	// no commit within the configured window, or a squash storm.
	Deadlock = 4
	// FaultEscape is reported when fault injection was enabled and at
	// least one injected fault was neither detected nor repaired — the
	// value-based filters missed a corruption they claim to catch.
	FaultEscape = 5
)
