package energy

import (
	"fmt"
	"strings"
)

// PowerModel is the §5.3 dynamic-energy comparison:
//
//	ΔEnergy = (Ecache + Ecmp)·replays − Eldqsearch·searches + overhead
//
// Negative ΔEnergy means value-based replay saves energy relative to
// the associative load queue it replaces.
type PowerModel struct {
	// ECacheAccess is the energy of one L1 data cache read (nJ). A 32k
	// direct-mapped cache read at 0.09 micron is on the order of a
	// tenth of a nanojoule (CACTI).
	ECacheAccess float64
	// EWordCompare is the energy of one 64-bit comparison (nJ).
	EWordCompare float64
	// ELQSearch is the energy of one associative load-queue search
	// (nJ), from the Table 2 CAM model for the machine's queue.
	ELQSearch float64
	// OverheadPerInstr is the replay machinery's fixed cost per
	// committed instruction (two pipeline latches + filter logic), nJ.
	OverheadPerInstr float64
}

// DefaultPowerModel returns a model for the paper's Table 3 machine
// with the given load-queue CAM configuration.
func DefaultPowerModel(lqEntries int, ports PortConfig) PowerModel {
	cam := DefaultCAMModel()
	return PowerModel{
		ECacheAccess:     0.10,
		EWordCompare:     0.002,
		ELQSearch:        cam.Lookup(lqEntries, ports).EnergyNJ,
		OverheadPerInstr: 0.0002,
	}
}

// Delta returns ΔEnergy in nanojoules for a run with the given event
// counts.
func (m PowerModel) Delta(replays, lqSearches, committed uint64) float64 {
	return (m.ECacheAccess+m.EWordCompare)*float64(replays) -
		m.ELQSearch*float64(lqSearches) +
		m.OverheadPerInstr*float64(committed)
}

// BreakEvenReplayRate returns the replays-per-committed-instruction
// below which value-based replay consumes less energy than a load
// queue performing searchesPerInstr CAM searches per committed
// instruction. The paper's observation: with 0.02 replays per
// instruction, replay wins whenever the load queue spends more than
// 0.02·(Ecache+Ecmp) per instruction on searches.
func (m PowerModel) BreakEvenReplayRate(searchesPerInstr float64) float64 {
	return (m.ELQSearch*searchesPerInstr - m.OverheadPerInstr) /
		(m.ECacheAccess + m.EWordCompare)
}

// Report renders the model's verdict for a run.
func (m PowerModel) Report(replays, lqSearches, committed uint64) string {
	var sb strings.Builder
	d := m.Delta(replays, lqSearches, committed)
	fmt.Fprintf(&sb, "replays=%d lq-searches=%d committed=%d\n", replays, lqSearches, committed)
	fmt.Fprintf(&sb, "replay energy:   %10.2f nJ (cache %.3f + cmp %.4f per replay)\n",
		(m.ECacheAccess+m.EWordCompare)*float64(replays), m.ECacheAccess, m.EWordCompare)
	fmt.Fprintf(&sb, "LQ search energy:%10.2f nJ (%.3f nJ per search)\n",
		m.ELQSearch*float64(lqSearches), m.ELQSearch)
	fmt.Fprintf(&sb, "replay overhead: %10.2f nJ\n", m.OverheadPerInstr*float64(committed))
	verdict := "value-based replay SAVES energy"
	if d > 0 {
		verdict = "associative load queue is cheaper"
	}
	fmt.Fprintf(&sb, "ΔEnergy = %.2f nJ → %s\n", d, verdict)
	return sb.String()
}
