// Package energy reproduces the paper's hardware cost models: the
// Table 1 survey of commercial load-queue port requirements, the Table 2
// CACTI-derived CAM search latency/energy table (with an analytical
// model fitted to it for other configurations), and the §5.3 dynamic
// power model comparing value-based replay against an associative load
// queue.
package energy

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PortConfig is a CAM read/write port configuration.
type PortConfig struct {
	Read, Write int
}

// String formats the configuration as "R/W".
func (p PortConfig) String() string { return fmt.Sprintf("%d/%d", p.Read, p.Write) }

// CAMPoint is one Table 2 measurement: search latency in nanoseconds
// and energy per search in nanojoules, for a 0.09 micron technology.
type CAMPoint struct {
	LatencyNS float64
	EnergyNJ  float64
}

// Table2Entries are the row labels of Table 2.
var Table2Entries = []int{16, 32, 64, 128, 256, 512}

// Table2Ports are the column labels of Table 2.
var Table2Ports = []PortConfig{{2, 2}, {3, 2}, {4, 4}, {6, 6}}

// table2 is the paper's published Table 2 (CACTI v3.2, 0.09 micron).
var table2 = map[int]map[PortConfig]CAMPoint{
	16: {
		{2, 2}: {0.60, 0.03}, {3, 2}: {0.68, 0.04},
		{4, 4}: {0.72, 0.07}, {6, 6}: {0.79, 0.12},
	},
	32: {
		{2, 2}: {0.75, 0.05}, {3, 2}: {0.77, 0.06},
		{4, 4}: {0.85, 0.12}, {6, 6}: {0.94, 0.20},
	},
	64: {
		{2, 2}: {0.78, 0.12}, {3, 2}: {0.80, 0.15},
		{4, 4}: {0.87, 0.27}, {6, 6}: {0.97, 0.45},
	},
	128: {
		{2, 2}: {0.78, 0.22}, {3, 2}: {0.80, 0.28},
		{4, 4}: {0.88, 0.50}, {6, 6}: {0.97, 0.85},
	},
	256: {
		{2, 2}: {0.97, 0.37}, {3, 2}: {1.01, 0.48},
		{4, 4}: {1.13, 0.87}, {6, 6}: {1.28, 1.51},
	},
	512: {
		{2, 2}: {1.00, 0.80}, {3, 2}: {1.04, 1.03},
		{4, 4}: {1.16, 1.87}, {6, 6}: {1.32, 3.22},
	},
}

// Table2 returns the published measurement for an exact Table 2
// configuration; ok is false for configurations outside the table.
func Table2(entries int, ports PortConfig) (CAMPoint, bool) {
	row, ok := table2[entries]
	if !ok {
		return CAMPoint{}, false
	}
	p, ok := row[ports]
	return p, ok
}

// CAMModel is an analytical model fitted to Table 2:
//
//	energy  ≈ e0 · entries · (read+write ports)^pe
//	latency ≈ (l0 + l1·log2(entries)) · (1 + lp·(ports-4))
//
// The paper observes exactly these trends: energy grows linearly with
// entries, latency logarithmically, and doubling ports more than
// doubles energy while adding ~15% latency.
type CAMModel struct {
	E0, PE float64
	L0, L1 float64
	LP     float64
}

// DefaultCAMModel returns coefficients fitted (least squares over the
// published grid) to Table 2.
func DefaultCAMModel() CAMModel {
	return CAMModel{E0: 3.4e-4, PE: 1.25, L0: 0.42, L1: 0.062, LP: 0.035}
}

// Energy returns modeled nanojoules per search.
func (m CAMModel) Energy(entries int, ports PortConfig) float64 {
	return m.E0 * float64(entries) * math.Pow(float64(ports.Read+ports.Write), m.PE)
}

// Latency returns modeled nanoseconds per search.
func (m CAMModel) Latency(entries int, ports PortConfig) float64 {
	base := m.L0 + m.L1*math.Log2(float64(entries))
	return base * (1 + m.LP*float64(ports.Read+ports.Write-4))
}

// Lookup returns the published Table 2 point when available, otherwise
// the fitted model's estimate.
func (m CAMModel) Lookup(entries int, ports PortConfig) CAMPoint {
	if p, ok := Table2(entries, ports); ok {
		return p
	}
	return CAMPoint{LatencyNS: m.Latency(entries, ports), EnergyNJ: m.Energy(entries, ports)}
}

// FitsInCycle reports whether a CAM of the given size can be searched
// within one clock cycle at the given frequency (GHz). At the paper's
// 5 GHz even a 16-entry CAM search (0.6ns) exceeds the 0.2ns cycle —
// which is the motivating observation of §5.2: future load queues must
// shrink or be pipelined.
func (m CAMModel) FitsInCycle(entries int, ports PortConfig, ghz float64) bool {
	return m.Lookup(entries, ports).LatencyNS <= 1.0/ghz
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: Associative load queue search latency (ns), energy (nJ)\n")
	fmt.Fprintf(&sb, "%8s", "entries")
	for _, p := range Table2Ports {
		fmt.Fprintf(&sb, " | %16s", p)
	}
	sb.WriteString("\n")
	for _, n := range Table2Entries {
		fmt.Fprintf(&sb, "%8d", n)
		for _, p := range Table2Ports {
			pt, _ := Table2(n, p)
			fmt.Fprintf(&sb, " | %6.2f ns %5.2f nJ", pt.LatencyNS, pt.EnergyNJ)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table1Row is one entry of the paper's Table 1 survey.
type Table1Row struct {
	Processor  string
	LQEntries  string
	ReadPorts  string
	WritePorts string
}

// Table1 is the paper's survey of load-queue attributes in
// contemporaneous dynamically scheduled processors.
func Table1() []Table1Row {
	return []Table1Row{
		{"Compaq Alpha 21364", "32-entry load queue, max 2 load or store agens/cycle",
			"2 (loads search on issue; weakly ordered)", "2 (1 per load issued/cycle)"},
		{"HAL SPARC64 V", "size unknown, max 2 loads and 2 store agens/cycle",
			"2", "2"},
		{"IBM Power 4", "32-entry load queue, max 2 load or store agens/cycle",
			"2 for loads/stores, 1 for external snoops", "2"},
		{"Intel Pentium 4", "48-entry load queue, max 1 load and 1 store agen/cycle",
			"2", "2"},
	}
}

// FormatTable1 renders the Table 1 survey.
func FormatTable1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Load queue attributes for current dynamically scheduled processors\n")
	for _, r := range Table1() {
		fmt.Fprintf(&sb, "%-22s | %-55s | read: %-42s | write: %s\n",
			r.Processor, r.LQEntries, r.ReadPorts, r.WritePorts)
	}
	return sb.String()
}

// ModelError reports the fitted model's mean relative error against the
// published grid (diagnostic; kept under test).
func (m CAMModel) ModelError() (latErr, enErr float64) {
	var le, ee float64
	n := 0
	keys := make([]int, 0, len(table2))
	for k := range table2 {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, entries := range keys {
		for _, ports := range Table2Ports {
			pt := table2[entries][ports]
			le += math.Abs(m.Latency(entries, ports)-pt.LatencyNS) / pt.LatencyNS
			ee += math.Abs(m.Energy(entries, ports)-pt.EnergyNJ) / pt.EnergyNJ
			n++
		}
	}
	return le / float64(n), ee / float64(n)
}
