package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable2ExactValues(t *testing.T) {
	// Spot-check published corners.
	cases := []struct {
		entries  int
		ports    PortConfig
		lat, enj float64
	}{
		{16, PortConfig{2, 2}, 0.60, 0.03},
		{16, PortConfig{6, 6}, 0.79, 0.12},
		{128, PortConfig{2, 2}, 0.78, 0.22},
		{512, PortConfig{6, 6}, 1.32, 3.22},
		{256, PortConfig{3, 2}, 1.01, 0.48},
	}
	for _, c := range cases {
		pt, ok := Table2(c.entries, c.ports)
		if !ok {
			t.Fatalf("missing table entry %d %v", c.entries, c.ports)
		}
		if pt.LatencyNS != c.lat || pt.EnergyNJ != c.enj {
			t.Errorf("Table2(%d,%v) = %+v, want %v/%v", c.entries, c.ports, pt, c.lat, c.enj)
		}
	}
	if _, ok := Table2(48, PortConfig{2, 2}); ok {
		t.Error("off-grid entry should miss")
	}
}

func TestTable2Complete(t *testing.T) {
	for _, n := range Table2Entries {
		for _, p := range Table2Ports {
			if _, ok := Table2(n, p); !ok {
				t.Errorf("table hole at %d %v", n, p)
			}
		}
	}
}

func TestEnergyScalingTrends(t *testing.T) {
	// Paper: energy grows linearly with entries; doubling ports more
	// than doubles energy; latency grows logarithmically and ~15% per
	// port doubling.
	for _, p := range Table2Ports {
		e128, _ := Table2(128, p)
		e256, _ := Table2(256, p)
		ratio := e256.EnergyNJ / e128.EnergyNJ
		if ratio < 1.5 || ratio > 2.3 {
			t.Errorf("energy should ~double 128→256 at %v: ratio %.2f", p, ratio)
		}
	}
	for _, n := range Table2Entries {
		small, _ := Table2(n, PortConfig{2, 2})
		big, _ := Table2(n, PortConfig{4, 4})
		if big.EnergyNJ < 2*small.EnergyNJ {
			t.Errorf("%d entries: doubling ports should >2x energy (%.2f vs %.2f)",
				n, big.EnergyNJ, small.EnergyNJ)
		}
		if big.LatencyNS < small.LatencyNS {
			t.Errorf("%d entries: more ports cannot be faster", n)
		}
	}
}

func TestCAMModelFitsTable(t *testing.T) {
	m := DefaultCAMModel()
	latErr, enErr := m.ModelError()
	if latErr > 0.10 {
		t.Errorf("latency model mean error %.1f%% too high", latErr*100)
	}
	if enErr > 0.30 {
		t.Errorf("energy model mean error %.1f%% too high", enErr*100)
	}
}

func TestCAMModelMonotonicityProperty(t *testing.T) {
	m := DefaultCAMModel()
	err := quick.Check(func(e1 uint8, p1 uint8) bool {
		entries := 16 + int(e1)%497
		ports := PortConfig{2 + int(p1)%5, 2 + int(p1)%5}
		bigger := PortConfig{ports.Read + 1, ports.Write + 1}
		if m.Energy(entries, bigger) <= m.Energy(entries, ports) {
			return false
		}
		if m.Energy(entries*2, ports) <= m.Energy(entries, ports) {
			return false
		}
		if m.Latency(entries*2, ports) <= m.Latency(entries, ports) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestLookupPrefersPublishedValues(t *testing.T) {
	m := DefaultCAMModel()
	pt := m.Lookup(32, PortConfig{2, 2})
	if pt.LatencyNS != 0.75 || pt.EnergyNJ != 0.05 {
		t.Errorf("Lookup should return published point, got %+v", pt)
	}
	// Off-grid falls back to model.
	off := m.Lookup(48, PortConfig{2, 2})
	if off.LatencyNS <= 0 || off.EnergyNJ <= 0 {
		t.Errorf("model fallback invalid: %+v", off)
	}
	if off.EnergyNJ <= pt.EnergyNJ {
		t.Error("48 entries should cost more than 32")
	}
}

func TestFitsInCycle(t *testing.T) {
	m := DefaultCAMModel()
	// Paper §5.2: at 5 GHz (0.2ns cycle) even small CAMs do not fit.
	if m.FitsInCycle(32, PortConfig{3, 2}, 5.0) {
		t.Error("32-entry CAM cannot fit a 5GHz cycle")
	}
	// At 1 GHz (1ns) a 128-entry 2/2 CAM (0.78ns) fits.
	if !m.FitsInCycle(128, PortConfig{2, 2}, 1.0) {
		t.Error("128-entry CAM should fit a 1GHz cycle")
	}
}

func TestTable1Survey(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Processor] = true
	}
	for _, want := range []string{"Compaq Alpha 21364", "IBM Power 4", "Intel Pentium 4", "HAL SPARC64 V"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	s := FormatTable1()
	if !strings.Contains(s, "Power 4") || !strings.Contains(s, "snoop") {
		t.Error("FormatTable1 output incomplete")
	}
}

func TestFormatTable2(t *testing.T) {
	s := FormatTable2()
	for _, frag := range []string{"512", "3.22", "0.60", "2/2", "6/6"} {
		if !strings.Contains(s, frag) {
			t.Errorf("FormatTable2 missing %q", frag)
		}
	}
}

func TestPowerModelDelta(t *testing.T) {
	m := PowerModel{ECacheAccess: 0.1, EWordCompare: 0.0, ELQSearch: 0.05, OverheadPerInstr: 0}
	// 1 replay costs 0.1; 2 searches save 0.1: break even.
	if d := m.Delta(1, 2, 0); math.Abs(d) > 1e-12 {
		t.Errorf("Delta = %v, want 0", d)
	}
	if d := m.Delta(1, 3, 0); d >= 0 {
		t.Error("more searches saved should favor replay (negative)")
	}
	if d := m.Delta(2, 1, 0); d <= 0 {
		t.Error("more replays should favor the CAM (positive)")
	}
}

func TestBreakEvenMatchesPaperObservation(t *testing.T) {
	// Paper: with 0.02 replays/instruction, replay wins when the LQ
	// CAM's per-instruction search energy exceeds 0.02 × (cache+cmp).
	m := DefaultPowerModel(128, PortConfig{3, 2})
	// One LQ search per instruction at 0.28nJ vs 0.02 replays at
	// ~0.1nJ: replay saves by a wide margin.
	rate := m.BreakEvenReplayRate(1.0)
	if rate < 0.02 {
		t.Errorf("break-even rate %.4f should comfortably exceed 0.02", rate)
	}
	// Sanity via Delta with the same numbers per 1M instructions.
	d := m.Delta(uint64(0.02*1e6), 1e6, 1e6)
	if d >= 0 {
		t.Error("0.02 replays/instr vs 1 search/instr must favor replay")
	}
}

func TestPowerReport(t *testing.T) {
	m := DefaultPowerModel(128, PortConfig{3, 2})
	rep := m.Report(2000, 100000, 1000000)
	if !strings.Contains(rep, "ΔEnergy") {
		t.Error("report missing delta")
	}
	if !strings.Contains(rep, "SAVES") {
		t.Errorf("this configuration should favor replay:\n%s", rep)
	}
}

func TestDefaultPowerModelUsesTableEnergy(t *testing.T) {
	pm := DefaultPowerModel(128, PortConfig{Read: 3, Write: 2})
	if pm.ELQSearch != 0.28 {
		t.Errorf("ELQSearch = %v, want the published 0.28 nJ", pm.ELQSearch)
	}
	if pm.ECacheAccess <= 0 || pm.EWordCompare <= 0 {
		t.Error("nonpositive energies")
	}
}

func TestPortConfigString(t *testing.T) {
	if (PortConfig{3, 2}).String() != "3/2" {
		t.Errorf("String = %q", PortConfig{3, 2}.String())
	}
}
