// The distributed-worker lease layer: remote worker processes check
// cells out in batches over HTTP, renew them with heartbeats, and post
// results back through the cache-before-acknowledge path. A pending
// cell is owned by exactly one executor at a time — the local pool or
// one lease — but ownership is only an optimization: every completion
// funnels through the content-addressed cache, where equal keys imply
// equal results, so a worker finishing after its lease expired (or two
// executors racing across an expiry window) resolves as a benign
// duplicate rather than a conflict. A lease that outlives its TTL
// without a heartbeat is swept back into the queue, so a SIGKILLed or
// wedged worker strands nothing.

package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"vbmo/internal/farm/cachekey"
	"vbmo/internal/trace"
)

// LeaseRequest is the body of POST /v1/cells/lease: one worker asking
// to check out up to Max cells in a single round trip.
type LeaseRequest struct {
	// Worker is the caller's stable identity; leases, heartbeats, and
	// the registry key off it.
	Worker string `json:"worker"`
	// Max bounds the batch size (<=0 means 1; the server caps it).
	Max int `json:"max"`
}

// LeasedCell is one checked-out cell: the opaque lease token, the
// cell's content-addressed cache key, and the cell itself — everything
// a worker needs to execute and complete it.
type LeasedCell struct {
	Lease uint64 `json:"lease"`
	Key   string `json:"key"`
	Cell  Cell   `json:"cell"`
}

// LeaseResponse answers a lease request. Version is the server's
// code-version fingerprint: a worker built from different code MUST
// refuse the batch, because its results would be filed under this
// build's cache keys. TTLMillis tells the worker how often to
// heartbeat (any interval comfortably under the TTL works).
type LeaseResponse struct {
	Version   string       `json:"version"`
	TTLMillis int64        `json:"ttl_ms"`
	Cells     []LeasedCell `json:"cells"`
}

// HeartbeatRequest renews every lease the named worker holds.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse reports how many leases the heartbeat extended.
// Renewed == 0 with work in flight means the server no longer knows
// these leases (restart, or expiry already swept them); the worker
// should finish and complete its batch anyway — completions are
// idempotent — and lease afresh.
type HeartbeatResponse struct {
	Renewed   int   `json:"renewed"`
	TTLMillis int64 `json:"ttl_ms"`
}

// CompleteRequest is the body of POST /v1/cells/complete: one finished
// cell. Exactly one of Result and Error is set. The key, not the lease
// token, is the real coordinate: a completion for an expired or unknown
// lease is still accepted, cached, and deduped.
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Lease  uint64          `json:"lease,omitempty"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// CompleteResponse acknowledges a completion after the result is
// durably cached. Duplicate means the cell had already been resolved by
// another executor — benign by construction.
type CompleteResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate"`
}

// cellState is a pending cell's executor-ownership state.
type cellState int

const (
	// cellQueued: available for local execution or a worker lease.
	cellQueued cellState = iota
	// cellLocal: a local pool worker is executing it.
	cellLocal
	// cellLeased: a remote worker holds it under a live (or expired but
	// not yet swept) lease.
	cellLeased
	// cellDone: resolved; kept only transiently before removal.
	cellDone
)

// waiter is one (job, cell index) awaiting a pending cell's result.
// Several jobs sharing a cache key wait on the same pending cell.
type waiter struct {
	j     *job
	index int
}

// pendingCell is one not-yet-resolved unit of work, shared between the
// queue, the by-key index, and any executor that claimed it.
type pendingCell struct {
	key     string
	cell    Cell
	state   cellState
	waiters []waiter

	// Lease fields, meaningful while state == cellLeased.
	worker   string
	lease    uint64
	deadline time.Time
}

// workerInfo is the registry entry for one remote worker identity.
type workerInfo struct {
	active    int    // leases currently held
	leased    uint64 // cells ever checked out
	completed uint64 // completions accepted (including duplicates)
	lastSeen  time.Time
}

// now returns the server's lease clock (real time unless the test seam
// overrides it).
func (s *Server) now() time.Time {
	if s.opt.Clock != nil {
		return s.opt.Clock()
	}
	return time.Now()
}

// dispatch routes one cache-missed cell: join an existing pending cell
// with the same key, or queue a new one and (in hybrid mode) hand the
// local pool a claim on it.
func (s *Server) dispatch(j *job, i int, c Cell, key string) {
	s.leaseMu.Lock()
	if pc, ok := s.pending[key]; ok {
		pc.waiters = append(pc.waiters, waiter{j, i})
		s.leaseMu.Unlock()
		return
	}
	pc := &pendingCell{key: key, cell: c, state: cellQueued,
		waiters: []waiter{{j, i}}}
	s.pending[key] = pc
	s.queue = append(s.queue, pc)
	s.leaseMu.Unlock()
	if !s.opt.NoLocalExec {
		s.submitLocal(pc)
	}
}

// submitLocal hands the pool a claim on pc. If the pool has stopped
// (shutdown in progress — the crash analog), the cell's jobs are marked
// interrupted exactly as dropped queue entries always were.
func (s *Server) submitLocal(pc *pendingCell) {
	ok := s.pool.Submit(shardOf(pc.key, s.pool.Shards()), func() { s.runLocal(pc) })
	if ok {
		return
	}
	s.leaseMu.Lock()
	waiters := append([]waiter(nil), pc.waiters...)
	s.leaseMu.Unlock()
	s.mu.Lock()
	for _, w := range waiters {
		w.j.interrupted = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runLocal is the pool-side executor: claim the cell if it is still
// queued (a worker may have leased it first — then this claim is a
// no-op and the lease, or its expiry sweep, owns the cell), execute,
// cache before acknowledging, resolve.
func (s *Server) runLocal(pc *pendingCell) {
	s.leaseMu.Lock()
	if pc.state != cellQueued {
		s.leaseMu.Unlock()
		return
	}
	pc.state = cellLocal
	s.leaseMu.Unlock()

	res, err := pc.cell.Execute()
	if err == nil {
		// Cache before acknowledging: once a result is visible it must
		// be durable, or a crash between the two could serve a cell
		// cheaply now and expensively later.
		if cerr := s.cache.Put(pc.key, res); cerr != nil {
			err = cerr
		}
	}
	s.resolve(pc.key, res, err, false)
}

// resolve marks the pending cell for key done and fans its result out
// to every waiting (job, index). Reports duplicate=true when the key is
// no longer pending — somebody else resolved it first, which the
// content-addressed cache makes benign.
func (s *Server) resolve(key string, raw json.RawMessage, execErr error, remote bool) (duplicate bool) {
	s.leaseMu.Lock()
	pc, ok := s.pending[key]
	if !ok {
		s.leaseMu.Unlock()
		s.metrics.duplicateCompletion()
		return true
	}
	delete(s.pending, key)
	pc.state = cellDone
	if pc.worker != "" {
		if w := s.workers[pc.worker]; w != nil && w.active > 0 {
			w.active--
		}
		pc.worker = ""
	}
	waiters := pc.waiters
	s.leaseMu.Unlock()

	if remote {
		s.metrics.remoteCompletion()
		if s.tr != nil {
			s.tr.Emit(trace.Event{Kind: trace.KFarmCell, Reason: trace.RFarmCellRemote, Core: -1})
		}
	}
	for wi, w := range waiters {
		// The first waiter accounts the execution; further jobs sharing
		// the key were served without a run of their own.
		s.finishCell(w.j, w.index, raw, wi > 0 && execErr == nil, execErr)
	}
	return false
}

// grantLeases checks out up to max queued cells to worker, stamping
// each with a fresh lease and the TTL deadline. Stale queue entries
// (claimed locally or resolved) are compacted out in passing.
func (s *Server) grantLeases(worker string, max int) []LeasedCell {
	if max <= 0 {
		max = 1
	}
	if max > s.opt.MaxLeaseBatch {
		max = s.opt.MaxLeaseBatch
	}
	now := s.now()
	s.leaseMu.Lock()
	w := s.workerLocked(worker, now)
	var out []LeasedCell
	rest := s.queue[:0]
	for _, pc := range s.queue {
		if pc.state != cellQueued {
			continue // claimed or resolved since queued: drop
		}
		if len(out) >= max {
			rest = append(rest, pc)
			continue
		}
		s.leaseSeq++
		pc.state = cellLeased
		pc.worker = worker
		pc.lease = s.leaseSeq
		pc.deadline = now.Add(s.opt.LeaseTTL)
		w.active++
		w.leased++
		out = append(out, LeasedCell{Lease: pc.lease, Key: pc.key, Cell: pc.cell})
	}
	s.queue = rest
	s.leaseMu.Unlock()

	if len(out) > 0 {
		s.metrics.leasesGranted(uint64(len(out)))
		if s.tr != nil {
			s.tr.Emit(trace.Event{Kind: trace.KFarmLease, Reason: trace.RFarmLeaseGranted,
				Core: -1, Aux: uint64(len(out))})
		}
	}
	return out
}

// renewLeases extends every live lease the worker holds to a fresh TTL
// deadline — and only that worker's: a heartbeat is a claim of
// liveness, not a proxy for anyone else's.
func (s *Server) renewLeases(worker string) int {
	now := s.now()
	s.leaseMu.Lock()
	s.workerLocked(worker, now)
	renewed := 0
	keys := make([]string, 0, len(s.pending))
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pc := s.pending[k]
		if pc.state == cellLeased && pc.worker == worker {
			pc.deadline = now.Add(s.opt.LeaseTTL)
			renewed++
		}
	}
	s.leaseMu.Unlock()

	if renewed > 0 {
		s.metrics.leasesRenewed(uint64(renewed))
		if s.tr != nil {
			s.tr.Emit(trace.Event{Kind: trace.KFarmLease, Reason: trace.RFarmLeaseRenewed,
				Core: -1, Aux: uint64(renewed)})
		}
	}
	return renewed
}

// expireLeases is the sweeper body: every leased cell past its deadline
// goes back to the queue (and, in hybrid mode, back to the local pool),
// so a dead worker's checkout strands nothing beyond one TTL.
func (s *Server) expireLeases() {
	now := s.now()
	s.leaseMu.Lock()
	var expired []*pendingCell
	keys := make([]string, 0, len(s.pending))
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pc := s.pending[k]
		if pc.state == cellLeased && now.After(pc.deadline) {
			if w := s.workers[pc.worker]; w != nil && w.active > 0 {
				w.active--
			}
			pc.state = cellQueued
			pc.worker = ""
			s.queue = append(s.queue, pc)
			expired = append(expired, pc)
		}
	}
	s.leaseMu.Unlock()

	if len(expired) == 0 {
		return
	}
	s.metrics.leasesExpired(uint64(len(expired)))
	if s.tr != nil {
		s.tr.Emit(trace.Event{Kind: trace.KFarmLease, Reason: trace.RFarmLeaseExpired,
			Core: -1, Aux: uint64(len(expired))})
	}
	if !s.opt.NoLocalExec {
		for _, pc := range expired {
			s.submitLocal(pc)
		}
	}
}

// scheduleSweep arms the next sweeper tick. A self-rescheduling
// time.AfterFunc stands in for a ticker loop so the farm package stays
// free of multi-way selects (the determinism analyzer's rule).
func (s *Server) scheduleSweep() {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	if s.closed {
		return
	}
	s.sweeper = time.AfterFunc(s.opt.SweepInterval, func() {
		s.expireLeases()
		s.scheduleSweep()
	})
}

// stopSweeper halts lease expiry; called once from Stop.
func (s *Server) stopSweeper() {
	s.leaseMu.Lock()
	s.closed = true
	t := s.sweeper
	s.leaseMu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// workerLocked finds or registers the worker's registry entry and
// stamps it seen. Caller holds s.leaseMu.
func (s *Server) workerLocked(id string, now time.Time) *workerInfo {
	w := s.workers[id]
	if w == nil {
		w = &workerInfo{}
		s.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// workerSnapshots renders the registry for /v1/metrics, sorted by ID.
func (s *Server) workerSnapshots() []WorkerSnapshot {
	now := s.now()
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]WorkerSnapshot, 0, len(ids))
	for _, id := range ids {
		w := s.workers[id]
		out = append(out, WorkerSnapshot{
			ID: id, ActiveLeases: w.active, CellsLeased: w.leased,
			Completions: w.completed, LastSeenMillis: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	return out
}

// queueDepth counts genuinely lease-able cells (state queued) and total
// pending cells for the metrics snapshot.
func (s *Server) queueDepth() (queued, pending int) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	for _, pc := range s.queue {
		if pc.state == cellQueued {
			queued++
		}
	}
	return queued, len(s.pending)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "farm: bad lease request (worker required)", http.StatusBadRequest)
		return
	}
	cells := s.grantLeases(req.Worker, req.Max)
	writeJSON(w, http.StatusOK, LeaseResponse{
		Version:   cachekey.Version(),
		TTLMillis: s.opt.LeaseTTL.Milliseconds(),
		Cells:     cells,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "farm: bad heartbeat (worker required)", http.StatusBadRequest)
		return
	}
	renewed := s.renewLeases(req.Worker)
	writeJSON(w, http.StatusOK, HeartbeatResponse{
		Renewed: renewed, TTLMillis: s.opt.LeaseTTL.Milliseconds(),
	})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Key == "" {
		http.Error(w, "farm: bad completion (key required)", http.StatusBadRequest)
		return
	}
	if req.Error == "" && len(req.Result) == 0 {
		http.Error(w, "farm: completion carries neither result nor error", http.StatusBadRequest)
		return
	}

	var execErr error
	if req.Error != "" {
		execErr = errors.New(req.Error)
	} else {
		// Cache before acknowledging. A put failure is the one
		// non-acknowledgeable outcome: answer 500 and leave the lease
		// standing — the worker retries, or expiry re-queues the cell.
		if err := s.cache.Put(req.Key, req.Result); err != nil {
			http.Error(w, fmt.Sprintf("farm: caching result: %v", err), http.StatusInternalServerError)
			return
		}
	}
	dup := s.resolve(req.Key, req.Result, execErr, true)

	now := s.now()
	s.leaseMu.Lock()
	s.workerLocked(req.Worker, now).completed++
	s.leaseMu.Unlock()
	writeJSON(w, http.StatusOK, CompleteResponse{Accepted: true, Duplicate: dup})
}
