package farm

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// e2eSpec is the kill-tolerance workload: four litmus cells, enough
// that a worker killed mid-batch provably strands leased work.
func e2eSpec() JobSpec {
	return JobSpec{Litmus: &LitmusSpec{
		Tests: []string{"SB", "MP"}, Configs: []string{"baseline", "nus-only"},
		Runs: 2, Seed: 7}}
}

// controlDigest runs spec to completion on a plain local-only server
// and returns the digest every distributed run must reproduce.
func controlDigest(t *testing.T, spec JobSpec) string {
	t.Helper()
	s, err := NewServer(t.TempDir(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + addr.String()}
	st, err := c.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(st.ID, time.Minute); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Digest == "" {
		t.Fatalf("control job %+v, want done with a digest", st)
	}
	return st.Digest
}

// TestWorkerProcessHelper is not a test: it is the body of the worker
// processes the kill-tolerance tests spawn by re-executing the test
// binary. Killing a goroutine is impossible, so a real OS process is
// the only honest way to exercise SIGKILL mid-cell.
func TestWorkerProcessHelper(t *testing.T) {
	if os.Getenv("FARM_WORKER_PROC") != "1" {
		t.Skip("helper body for re-exec; not a test")
	}
	delayMS, _ := strconv.Atoi(os.Getenv("FARM_EXEC_DELAY_MS"))
	batch, _ := strconv.Atoi(os.Getenv("FARM_BATCH"))
	w := &Worker{
		Client: &Client{
			Base:  os.Getenv("FARM_ADDR"),
			Retry: RetryPolicy{Attempts: 2, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		},
		ID:        os.Getenv("FARM_WORKER_ID"),
		Batch:     batch,
		ExecDelay: time.Duration(delayMS) * time.Millisecond,
		Poll:      50 * time.Millisecond,
		MaxPoll:   500 * time.Millisecond,
		Logf:      t.Logf,
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker run: %v", err)
	}
}

// spawnWorker re-execs the test binary as a worker process against
// addr. The caller kills it; cleanup reaps it if the test bails first.
func spawnWorker(t *testing.T, addr, id string, batch, execDelayMS int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWorkerProcessHelper$")
	cmd.Env = append(os.Environ(),
		"FARM_WORKER_PROC=1",
		"FARM_ADDR=http://"+addr,
		"FARM_WORKER_ID="+id,
		fmt.Sprintf("FARM_BATCH=%d", batch),
		fmt.Sprintf("FARM_EXEC_DELAY_MS=%d", execDelayMS),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// waitSnapshot polls the server's metrics until cond holds.
func waitSnapshot(t *testing.T, s *Server, what string, cond func(MetricsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond(s.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; metrics %+v", what, s.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerSIGKILLMidCell is the headline robustness test: SIGKILL a
// worker while it provably holds unfinished leases, let the sweeper
// re-queue the stranded cells, have a second worker finish the job, and
// demand the digest be bit-identical to an uninterrupted local run.
func TestWorkerSIGKILLMidCell(t *testing.T) {
	spec := e2eSpec()
	want := controlDigest(t, spec)

	s, err := NewServerWith(t.TempDir(), ServerOptions{
		Shards:        1,
		NoLocalExec:   true, // pure coordinator: only workers execute
		LeaseTTL:      400 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + addr.String()}
	st, err := c.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: a 300ms pre-cell delay means that at the moment its first
	// lease appears in the metrics it cannot have completed anything —
	// the kill below lands mid-cell with three leases held.
	victim := spawnWorker(t, addr.String(), "victim", 3, 300)
	waitSnapshot(t, s, "victim's leases", func(m MetricsSnapshot) bool {
		return m.LeasesGranted >= 1
	})
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	victim.Wait()

	// The sweeper notices the silence one TTL later and re-queues.
	waitSnapshot(t, s, "lease expiry after SIGKILL", func(m MetricsSnapshot) bool {
		return m.LeasesExpired >= 1 && m.CellsRequeued >= 1
	})

	// A second worker drains the re-queued cells.
	spawnWorker(t, addr.String(), "rescuer", 4, 0)
	st, err = c.Wait(st.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job after rescue %+v, want done", st)
	}
	if st.Digest != want {
		t.Fatalf("digest after SIGKILL recovery %s, want the uninterrupted control's %s", st.Digest, want)
	}
	m := s.Snapshot()
	if m.RemoteCompletions == 0 {
		t.Fatalf("metrics %+v: rescue completed no cells remotely", m)
	}
}

// TestExpiredLeaseFallsBackToLocalPool: in hybrid mode a dead worker's
// cells re-enter the local pool, so a farm with zero live workers still
// finishes the job. The pool's one shard is parked behind a blocker
// until after the lease expires, which makes the claim/lease race
// deterministic: the worker leases first, dies silently, and the local
// pool executes the re-queued cell — no Complete call ever arrives.
func TestExpiredLeaseFallsBackToLocalPool(t *testing.T) {
	clock := newFakeClock()
	s, err := NewServerWith(t.TempDir(), ServerOptions{
		Shards:        1,
		LeaseTTL:      time.Minute,
		SweepInterval: 20 * time.Millisecond,
		Clock:         clock.Now,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + addr.String(), Retry: RetryPolicy{Attempts: 1}}

	release := make(chan struct{})
	s.pool.Submit(0, func() { <-release })

	st, err := c.Submit(oneCellSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	la, err := c.Lease(LeaseRequest{Worker: "doomed", Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Cells) != 1 {
		t.Fatalf("leased %d cells, want 1 (pool is parked; nothing local claimed it)", len(la.Cells))
	}

	// The worker dies without a word; its lease expires.
	clock.Advance(time.Minute + time.Second)
	waitSnapshot(t, s, "lease expiry", func(m MetricsSnapshot) bool {
		return m.LeasesExpired >= 1
	})

	// Unpark the pool: the re-queued cell runs locally.
	close(release)
	st, err = c.Wait(st.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Digest == "" {
		t.Fatalf("job %+v, want done via local fallback", st)
	}
	m := s.Snapshot()
	if m.RemoteCompletions != 0 {
		t.Fatalf("remote completions %d, want 0 — the local pool must have run the cell", m.RemoteCompletions)
	}
}

// TestWorkerSurvivesServerRestart: a running worker rides out a full
// server stop/start on the same address (bounded backoff, then fresh
// leases), the restarted server recovers the job from its journal, and
// the digest still matches the uninterrupted control.
func TestWorkerSurvivesServerRestart(t *testing.T) {
	spec := e2eSpec()
	want := controlDigest(t, spec)
	dir := t.TempDir()

	opts := ServerOptions{Shards: 1, NoLocalExec: true,
		LeaseTTL: 2 * time.Second, SweepInterval: 100 * time.Millisecond}
	s1, err := NewServerWith(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Start("127.0.0.1:0")
	if err != nil {
		s1.Stop()
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + addr.String()}
	st, err := c.Submit(spec, false)
	if err != nil {
		s1.Stop()
		t.Fatal(err)
	}

	// Batch 1 + 150ms per cell: the worker completes cells one at a
	// time, so stopping after the first remote completion is guaranteed
	// to leave work for the restarted server.
	worker := spawnWorker(t, addr.String(), "steady", 1, 150)
	waitSnapshot(t, s1, "first remote completion", func(m MetricsSnapshot) bool {
		return m.RemoteCompletions >= 1
	})
	s1.Stop()

	// Same state dir, same address: journal recovery re-enqueues the
	// unfinished job; the worker's backoff finds the new listener.
	s2, err := NewServerWith(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if _, err := s2.Start(addr.String()); err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(st.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job after restart %+v, want done", st)
	}
	if st.Digest != want {
		t.Fatalf("digest across restart %s, want the control's %s", st.Digest, want)
	}
	if m := s2.Snapshot(); m.LeasesGranted == 0 {
		t.Fatalf("restarted server granted no leases: %+v — the worker did not reconnect", m)
	}
	// The worker process itself survived both the outage and the rescue.
	if err := worker.Process.Signal(syscall.Signal(0)); err != nil {
		t.Fatalf("worker process died during the restart: %v", err)
	}
}
