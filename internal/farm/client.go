// The farm client: a thin typed wrapper over the HTTP API, shared by
// the vbrfarm CLI's submit/status/results modes and the end-to-end
// tests. Every method round-trips the same JSON shapes the server
// serves, so a CLI against a live farm and a test against an in-process
// one exercise identical code.

package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a farm server at Base (e.g. "http://127.0.0.1:8373").
type Client struct {
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decode reads a JSON response, turning non-2xx statuses into errors
// that carry the server's message.
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("farm: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec. With fresh set, a job this server already
// completed is re-run through the result cache (cells hit; nothing
// re-simulates) so cache behaviour can be measured.
func (c *Client) Submit(spec JobSpec, fresh bool) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	url := c.url("/v1/jobs")
	if fresh {
		url += "?fresh=1"
	}
	resp, err := c.httpClient().Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	return st, decode(resp, &st)
}

// Status fetches a job's current state without blocking.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	resp, err := c.httpClient().Get(c.url("/v1/jobs/" + id))
	if err != nil {
		return st, err
	}
	return st, decode(resp, &st)
}

// Wait blocks until the job leaves the running state, long-polling the
// status endpoint (and retrying at poll intervals if a long-poll
// connection drops — e.g. across a server restart, where the caller
// resubmits and waits again).
func (c *Client) Wait(id string, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := c.httpClient().Get(c.url("/v1/jobs/" + id + "?wait=1"))
		if err == nil {
			var st JobStatus
			if derr := decode(resp, &st); derr != nil {
				return st, derr
			}
			if st.State != StateRunning {
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return JobStatus{}, fmt.Errorf("farm: job %s still running after %s", id, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Results fetches a completed job's ordered cell results and digest.
func (c *Client) Results(id string) (JobResults, error) {
	var out JobResults
	resp, err := c.httpClient().Get(c.url("/v1/jobs/" + id + "/results"))
	if err != nil {
		return out, err
	}
	return out, decode(resp, &out)
}

// Metrics fetches the server's counters.
func (c *Client) Metrics() (MetricsSnapshot, error) {
	var out MetricsSnapshot
	resp, err := c.httpClient().Get(c.url("/v1/metrics"))
	if err != nil {
		return out, err
	}
	return out, decode(resp, &out)
}
