// The farm client: a typed wrapper over the HTTP API, shared by the
// vbrfarm CLI's submit/status/results modes, the vbrworker runtime, and
// the end-to-end tests. Every verb goes through one retrying request
// path: transport errors (connection refused, reset, timeout) and 5xx
// statuses back off exponentially up to a bounded attempt budget, which
// is safe because the API is idempotent by construction — submissions
// dedupe through the content-addressed cache and job IDs, completions
// dedupe through the cache's first-write-wins journal.

package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// StatusError is a non-2xx HTTP answer from the farm server. It is
// permanent for 4xx codes (the request itself is wrong; retrying cannot
// help) and transient for 5xx (the client retries those itself).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("farm: server answered %d: %s", e.Code, e.Msg)
}

// RetryPolicy bounds the client's retry loop. The zero value means the
// defaults: 5 attempts starting at 100ms, doubling to a 2s cap —
// roughly 3s of patience, enough to ride out a server restart without
// masking a genuinely dead endpoint for long.
type RetryPolicy struct {
	Attempts int           // total tries per request (min 1)
	Base     time.Duration // first backoff delay
	Max      time.Duration // backoff cap
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 5
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	return p
}

// Client talks to a farm server at Base (e.g. "http://127.0.0.1:8373").
type Client struct {
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retry bounds the per-request retry loop (zero value = defaults).
	// Set Attempts to 1 for fail-fast behavior.
	Retry RetryPolicy
	// Timeout bounds each individual HTTP attempt so a hung server
	// cannot park a caller forever (0 = 2 minutes; long-polls size
	// their own). Negative disables the bound.
	Timeout time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

func (c *Client) attemptTimeout() time.Duration {
	switch {
	case c.Timeout < 0:
		return 0
	case c.Timeout == 0:
		return 2 * time.Minute
	default:
		return c.Timeout
	}
}

// do runs one API request through the retry loop: marshal in (nil for
// GET), decode the answer into out, back off and retry on transport
// errors and 5xx statuses, fail immediately on 4xx. timeout bounds each
// attempt (0 = the client's default).
func (c *Client) do(method, path string, in, out any, timeout time.Duration) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	if timeout == 0 {
		timeout = c.attemptTimeout()
	}
	pol := c.Retry.withDefaults()
	delay := pol.Base
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			if delay *= 2; delay > pol.Max {
				delay = pol.Max
			}
		}
		err := c.once(method, path, body, out, timeout)
		if err == nil {
			return nil
		}
		lastErr = err
		var se *StatusError
		if errors.As(err, &se) && se.Code < 500 {
			return err // the request is wrong; retrying cannot help
		}
	}
	return fmt.Errorf("farm: giving up after %d attempts: %w", pol.Attempts, lastErr)
}

// once is a single HTTP attempt.
func (c *Client) once(method, path string, body []byte, out any, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec. With fresh set, a job this server already
// completed is re-run through the result cache (cells hit; nothing
// re-simulates) so cache behaviour can be measured.
func (c *Client) Submit(spec JobSpec, fresh bool) (JobStatus, error) {
	var st JobStatus
	path := "/v1/jobs"
	if fresh {
		path += "?fresh=1"
	}
	return st, c.do("POST", path, spec, &st, 0)
}

// Status fetches a job's current state without blocking.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	return st, c.do("GET", "/v1/jobs/"+id, nil, &st, 0)
}

// Wait blocks until the job leaves the running state or the overall
// timeout passes. Each round is a bounded long-poll: the server answers
// with the current status at its horizon (so neither side is parked on
// a connection indefinitely), the attempt itself carries a deadline
// slightly past the poll window (so a hung server cannot block the
// caller), and transport errors ride the normal backoff — a Wait in
// flight across a server restart picks the job back up once recovery
// has re-enqueued it.
func (c *Client) Wait(id string, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return JobStatus{}, fmt.Errorf("farm: job %s still running after %s", id, timeout)
		}
		poll := 15 * time.Second
		if poll > remaining {
			poll = remaining
		}
		var st JobStatus
		path := fmt.Sprintf("/v1/jobs/%s?wait=1&poll_ms=%d", id, poll.Milliseconds())
		err := c.do("GET", path, nil, &st, poll+15*time.Second)
		switch {
		case err == nil:
			if st.State != StateRunning {
				return st, nil
			}
		default:
			var se *StatusError
			if errors.As(err, &se) && se.Code < 500 {
				return st, err // e.g. 404: the job is genuinely unknown
			}
			// Transport-level trouble beyond do's own retries (most
			// likely a restart still in progress): pace the outer loop.
			time.Sleep(200 * time.Millisecond)
		}
	}
}

// Results fetches a completed job's ordered cell results and digest.
func (c *Client) Results(id string) (JobResults, error) {
	var out JobResults
	return out, c.do("GET", "/v1/jobs/"+id+"/results", nil, &out, 0)
}

// Metrics fetches the server's counters.
func (c *Client) Metrics() (MetricsSnapshot, error) {
	var out MetricsSnapshot
	return out, c.do("GET", "/v1/metrics", nil, &out, 0)
}

// Health fetches the server's liveness answer, including its
// code-version fingerprint — the field workers use to refuse a
// mismatched server.
func (c *Client) Health() (map[string]string, error) {
	out := map[string]string{}
	return out, c.do("GET", "/v1/healthz", nil, &out, 0)
}

// Lease checks out up to req.Max cells for req.Worker.
func (c *Client) Lease(req LeaseRequest) (LeaseResponse, error) {
	var out LeaseResponse
	return out, c.do("POST", "/v1/cells/lease", req, &out, 0)
}

// Heartbeat renews every lease the worker holds.
func (c *Client) Heartbeat(worker string) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	return out, c.do("POST", "/v1/cells/heartbeat", HeartbeatRequest{Worker: worker}, &out, 0)
}

// Complete uploads one finished cell. The server caches the result
// durably before acknowledging, so a worker crash after this call
// returns loses nothing; retries and post-expiry completions dedupe to
// a benign Duplicate.
func (c *Client) Complete(req CompleteRequest) (CompleteResponse, error) {
	var out CompleteResponse
	return out, c.do("POST", "/v1/cells/complete", req, &out, 0)
}
