package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test backoff delays in the low milliseconds.
var fastRetry = RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 4 * time.Millisecond}

// TestClientRetries5xx: a server that throws 503 twice and then answers
// is a restart in progress, not a failure — the client rides it out.
func TestClientRetries5xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Retry: fastRetry}
	h, err := c.Health()
	if err != nil {
		t.Fatalf("health through two 503s: %v", err)
	}
	if h["status"] != "ok" {
		t.Fatalf("health answer %v, want the post-recovery body", h)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two failures + success)", got)
	}
}

// TestClientNoRetryOn4xx: a 4xx means the request itself is wrong;
// retrying would only hammer the server with the same mistake.
func TestClientNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Retry: fastRetry}
	_, err := c.Status("deadbeef")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want a 404 StatusError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 404, want exactly 1", got)
	}
}

// refusingTransport fails every round trip at the transport layer, the
// shape of connection-refused while a server is down.
type refusingTransport struct{ calls atomic.Int64 }

func (rt *refusingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	rt.calls.Add(1)
	return nil, fmt.Errorf("dial tcp: connection refused")
}

// TestClientRetriesTransportErrors: connection-refused burns the full
// attempt budget (the server may be seconds from coming back), then
// surfaces the underlying error.
func TestClientRetriesTransportErrors(t *testing.T) {
	rt := &refusingTransport{}
	c := &Client{
		Base:  "http://127.0.0.1:0",
		HTTP:  &http.Client{Transport: rt},
		Retry: fastRetry,
	}
	_, err := c.Metrics()
	if err == nil {
		t.Fatal("metrics against a refusing transport succeeded")
	}
	if got := rt.calls.Load(); got != int64(fastRetry.Attempts) {
		t.Fatalf("transport saw %d attempts, want the full budget of %d", got, fastRetry.Attempts)
	}
}

// TestClientRecoversMidBudget: transport failures followed by a healthy
// answer inside the attempt budget succeed without surfacing any error
// — the vbrworker backoff loop leans on this to survive restarts.
func TestClientRecoversMidBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(MetricsSnapshot{JobsAccepted: 7})
	}))
	defer srv.Close()

	var calls atomic.Int64
	real := http.DefaultTransport
	c := &Client{
		Base: srv.URL,
		HTTP: &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
			if calls.Add(1) <= 2 {
				return nil, fmt.Errorf("read: connection reset by peer")
			}
			return real.RoundTrip(r)
		})},
		Retry: fastRetry,
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics through two resets: %v", err)
	}
	if m.JobsAccepted != 7 {
		t.Fatalf("metrics %+v, want the server's answer", m)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3", got)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestClientAttemptTimeout: a server that accepts the connection and
// then sits on it cannot park the client — the per-attempt deadline
// fires and the budget drains.
func TestClientAttemptTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block) // LIFO: unblock the handler before srv.Close waits on it

	c := &Client{
		Base:    srv.URL,
		Retry:   RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: time.Millisecond},
		Timeout: 50 * time.Millisecond,
	}
	start := time.Now()
	_, err := c.Health()
	if err == nil {
		t.Fatal("health against a hanging server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hanging server held the client for %s, want ~100ms", elapsed)
	}
}
