package farm

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestCachePersistence: results put under a content key survive a
// close/reopen byte-for-byte, and the hit/miss counters track lookups.
func TestCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	want := json.RawMessage(`{"ipc":0.3333333333333333,"cycles":1234}`)
	var got json.RawMessage
	if c.Get("k1", &got) {
		t.Fatal("phantom hit on an empty cache")
	}
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	if !c.Get("k1", &got) || !bytes.Equal(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 1 {
		t.Fatalf("reopened cache holds %d entries, want 1", c2.Len())
	}
	got = nil
	if !c2.Get("k1", &got) || !bytes.Equal(got, want) {
		t.Fatalf("after reopen got %s, want %s", got, want)
	}
}

// TestCacheFirstWriteWins: duplicate keys keep the original bytes — for
// a content-addressed store, equal keys must mean equal results, so the
// second write is redundant by definition.
func TestCacheFirstWriteWins(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put("k", json.RawMessage(`"first"`))
	c.Put("k", json.RawMessage(`"second"`))
	var got json.RawMessage
	if !c.Get("k", &got) || string(got) != `"first"` {
		t.Fatalf("got %s, want \"first\"", got)
	}
}
