package farm

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the lease-test clock: tests advance it explicitly, so
// TTL expiry is exercised without sleeping through real lease windows.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// startLeaseServer runs a coordinator-only server (no local execution,
// so every cell must flow through the lease protocol) on a fake lease
// clock with a fast real-time sweeper.
func startLeaseServer(t *testing.T, clock *fakeClock) (*Server, *Client) {
	t.Helper()
	s, err := NewServerWith(t.TempDir(), ServerOptions{
		Shards:        1,
		NoLocalExec:   true,
		LeaseTTL:      time.Minute,
		SweepInterval: 20 * time.Millisecond,
		Clock:         clock.Now,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Stop() })
	return s, &Client{Base: "http://" + addr.String(), Retry: RetryPolicy{Attempts: 1}}
}

// waitUntil polls cond (the sweeper runs on real time even when the
// lease clock is fake).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func oneCellSpec() JobSpec {
	return JobSpec{Litmus: &LitmusSpec{
		Tests: []string{"SB"}, Configs: []string{"baseline"}, Runs: 1, Seed: 3}}
}

// TestLeaseExpiryRequeueSecondWorker walks the full failure lifecycle:
// worker A checks a cell out and goes silent, the sweeper expires the
// lease and re-queues the cell, worker B leases the same cell and
// completes it, and A's eventual post-expiry completion is a benign
// duplicate — not an error, and not a second result.
func TestLeaseExpiryRequeueSecondWorker(t *testing.T) {
	clock := newFakeClock()
	srv, c := startLeaseServer(t, clock)

	st, err := c.Submit(oneCellSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 1 {
		t.Fatalf("spec expands to %d cells, want 1", st.Total)
	}

	// Worker A checks the cell out, then never heartbeats.
	la, err := c.Lease(LeaseRequest{Worker: "worker-a", Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Cells) != 1 {
		t.Fatalf("worker-a leased %d cells, want 1", len(la.Cells))
	}
	if la.TTLMillis != time.Minute.Milliseconds() {
		t.Fatalf("announced TTL %dms, want 60000", la.TTLMillis)
	}

	// Nothing is lease-able while A's lease is live.
	if lb, _ := c.Lease(LeaseRequest{Worker: "worker-b", Max: 4}); len(lb.Cells) != 0 {
		t.Fatalf("leased-out cell handed to a second worker: %d cells", len(lb.Cells))
	}

	// One TTL later the sweeper re-queues the cell.
	clock.Advance(time.Minute + time.Second)
	waitUntil(t, "lease expiry", func() bool {
		return srv.Snapshot().LeasesExpired >= 1
	})
	m := srv.Snapshot()
	if m.LeasesExpired != 1 || m.CellsRequeued != 1 || m.QueuedCells != 1 {
		t.Fatalf("after expiry: expired=%d requeued=%d queued=%d, want 1/1/1",
			m.LeasesExpired, m.CellsRequeued, m.QueuedCells)
	}

	// Worker B picks the same cell up and completes it.
	lb, err := c.Lease(LeaseRequest{Worker: "worker-b", Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Cells) != 1 || lb.Cells[0].Key != la.Cells[0].Key {
		t.Fatalf("worker-b leased %v, want the expired cell %s", lb.Cells, la.Cells[0].Key)
	}
	raw, err := lb.Cells[0].Cell.Execute()
	if err != nil {
		t.Fatal(err)
	}
	ack, err := c.Complete(CompleteRequest{Worker: "worker-b",
		Lease: lb.Cells[0].Lease, Key: lb.Cells[0].Key, Result: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || ack.Duplicate {
		t.Fatalf("first completion ack %+v, want accepted and not duplicate", ack)
	}
	st, err = c.Wait(st.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Digest == "" {
		t.Fatalf("job %+v, want done with a digest", st)
	}

	// A finally finishes the same cell (it never learned about the
	// expiry): a benign duplicate, resolved through the cache.
	ack, err = c.Complete(CompleteRequest{Worker: "worker-a",
		Lease: la.Cells[0].Lease, Key: la.Cells[0].Key, Result: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || !ack.Duplicate {
		t.Fatalf("post-expiry completion ack %+v, want accepted duplicate", ack)
	}
	m = srv.Snapshot()
	if m.DuplicateCompletions != 1 || m.RemoteCompletions != 1 {
		t.Fatalf("duplicates=%d remote=%d, want 1/1", m.DuplicateCompletions, m.RemoteCompletions)
	}
	if st2, _ := c.Status(st.ID); st2.Digest != st.Digest {
		t.Fatalf("duplicate completion changed the digest: %s vs %s", st2.Digest, st.Digest)
	}
}

// TestHeartbeatRenewsOnlyOwnLeases: a heartbeat is a liveness claim for
// one worker — it must extend exactly that worker's leases. Worker A
// heartbeats, worker B does not; only B's lease expires.
func TestHeartbeatRenewsOnlyOwnLeases(t *testing.T) {
	clock := newFakeClock()
	srv, c := startLeaseServer(t, clock)

	spec := JobSpec{Litmus: &LitmusSpec{
		Tests: []string{"SB"}, Configs: []string{"baseline", "nus-only"}, Runs: 1, Seed: 3}}
	if _, err := c.Submit(spec, false); err != nil {
		t.Fatal(err)
	}

	la, err := c.Lease(LeaseRequest{Worker: "worker-a", Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := c.Lease(LeaseRequest{Worker: "worker-b", Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Cells) != 1 || len(lb.Cells) != 1 {
		t.Fatalf("leases a=%d b=%d cells, want 1 each", len(la.Cells), len(lb.Cells))
	}

	// Half a TTL in, A heartbeats; B stays silent.
	clock.Advance(30 * time.Second)
	hb, err := c.Heartbeat("worker-a")
	if err != nil {
		t.Fatal(err)
	}
	if hb.Renewed != 1 {
		t.Fatalf("worker-a heartbeat renewed %d leases, want exactly its own 1", hb.Renewed)
	}
	if hb, _ := c.Heartbeat("worker-nobody"); hb.Renewed != 0 {
		t.Fatalf("stranger's heartbeat renewed %d leases, want 0", hb.Renewed)
	}

	// Past B's deadline but inside A's renewed one: only B expires.
	clock.Advance(31 * time.Second)
	waitUntil(t, "worker-b lease expiry", func() bool {
		return srv.Snapshot().LeasesExpired >= 1
	})
	m := srv.Snapshot()
	if m.LeasesExpired != 1 {
		t.Fatalf("expired %d leases, want only worker-b's 1", m.LeasesExpired)
	}

	// The re-queued cell is B's, not A's.
	lc, err := c.Lease(LeaseRequest{Worker: "worker-c", Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Cells) != 1 || lc.Cells[0].Key != lb.Cells[0].Key {
		t.Fatalf("re-queued cell %v, want worker-b's %s", lc.Cells, lb.Cells[0].Key)
	}
	for _, w := range m.Workers {
		if w.ID == "worker-a" && w.ActiveLeases != 1 {
			t.Fatalf("worker-a holds %d active leases, want 1 (heartbeat kept it alive)", w.ActiveLeases)
		}
		if w.ID == "worker-b" && w.ActiveLeases != 0 {
			t.Fatalf("worker-b holds %d active leases, want 0 after expiry", w.ActiveLeases)
		}
	}
}

// TestWorkerReportedErrorFailsJob: a worker-side execution error is a
// deterministic verdict (same build, same inputs), so it fails the job
// exactly as a local execution error would.
func TestWorkerReportedErrorFailsJob(t *testing.T) {
	clock := newFakeClock()
	_, c := startLeaseServer(t, clock)

	st, err := c.Submit(oneCellSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	la, err := c.Lease(LeaseRequest{Worker: "worker-a", Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Cells) != 1 {
		t.Fatalf("leased %d cells, want 1", len(la.Cells))
	}
	if _, err := c.Complete(CompleteRequest{Worker: "worker-a",
		Lease: la.Cells[0].Lease, Key: la.Cells[0].Key, Error: "simulated wreck"}); err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(st.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("job %+v, want failed with the worker's error", st)
	}
}

// TestLongPollBounded: a ?wait=1 status poll on a job that is not
// finishing answers within the server's long-poll horizon with the
// current (running) status instead of parking the connection forever.
func TestLongPollBounded(t *testing.T) {
	clock := newFakeClock()
	s, err := NewServerWith(t.TempDir(), ServerOptions{
		Shards:      1,
		NoLocalExec: true, // nobody will execute: the job stays running
		LeaseTTL:    time.Minute,
		LongPollMax: 150 * time.Millisecond,
		Clock:       clock.Now,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + addr.String(), Retry: RetryPolicy{Attempts: 1}}

	st, err := c.Submit(oneCellSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var got JobStatus
	if err := c.do("GET", "/v1/jobs/"+st.ID+"?wait=1", nil, &got, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded long-poll took %s, want ~150ms", elapsed)
	}
	if got.State != StateRunning {
		t.Fatalf("long-poll state %s, want still running", got.State)
	}

	// The client-side overall deadline also holds: Wait gives up on its
	// own schedule instead of hanging on the unfinishable job.
	if _, err := c.Wait(st.ID, 400*time.Millisecond); err == nil {
		t.Fatal("Wait on an unfinishable job returned without error")
	}
}
