// Farm service metrics: monotonically increasing counters for the
// /v1/metrics endpoint and the trace stream — jobs accepted and
// completed, cells executed on a worker versus served from the
// content-addressed cache, the pool's shard occupancy, and the
// distributed-worker lease protocol (grants, renewals, expirations,
// re-queues, remote and duplicate completions).

package farm

import "sync"

// Metrics counts farm activity since the server started.
type Metrics struct {
	mu            sync.Mutex
	jobsAccepted  uint64
	jobsCompleted uint64
	cellsExecuted uint64
	cellsCached   uint64

	leasesGrantedN uint64
	leasesRenewedN uint64
	leasesExpiredN uint64
	remoteDone     uint64
	duplicateDone  uint64
}

// WorkerSnapshot is one remote worker's registry entry in /v1/metrics.
type WorkerSnapshot struct {
	ID string `json:"id"`
	// ActiveLeases is how many cells the worker currently holds under
	// live leases; CellsLeased and Completions are lifetime counts.
	ActiveLeases int    `json:"active_leases"`
	CellsLeased  uint64 `json:"cells_leased"`
	Completions  uint64 `json:"completions"`
	// LastSeenMillis is how long ago the worker last leased,
	// heartbeated, or completed.
	LastSeenMillis int64 `json:"last_seen_ms"`
}

// MetricsSnapshot is the JSON shape of /v1/metrics.
type MetricsSnapshot struct {
	JobsAccepted  uint64 `json:"jobs_accepted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	// CellsExecuted counts cells simulated (locally or by a remote
	// worker); CellsCached counts cells served from the result cache
	// without running the simulator. Their ratio is the farm's dedup
	// win.
	CellsExecuted uint64 `json:"cells_executed"`
	CellsCached   uint64 `json:"cells_cached"`
	// ShardOccupancy is tasks executed per local pool worker;
	// TasksStolen is how many ran away from their home shard
	// (work-stealing traffic).
	ShardOccupancy []uint64 `json:"shard_occupancy"`
	TasksStolen    uint64   `json:"tasks_stolen"`
	// CacheEntries is the persistent result-cache size; CacheHits and
	// CacheMisses are this process's lookup outcomes.
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	// Lease protocol: cells checked out to remote workers, heartbeat
	// renewals, TTL expirations, and cells re-queued by the sweeper
	// (equal to expirations — every expired cell is re-queued).
	LeasesGranted uint64 `json:"leases_granted"`
	LeasesRenewed uint64 `json:"leases_renewed"`
	LeasesExpired uint64 `json:"leases_expired"`
	CellsRequeued uint64 `json:"cells_requeued"`
	// RemoteCompletions counts cells a remote worker finished;
	// DuplicateCompletions counts completions for cells somebody else
	// had already resolved — benign by content-addressing, tracked
	// because a high rate means leases are expiring under live workers.
	RemoteCompletions    uint64 `json:"remote_completions"`
	DuplicateCompletions uint64 `json:"duplicate_completions"`
	// QueuedCells is how many cells are currently lease-able;
	// PendingCells additionally counts cells claimed by an executor but
	// not yet resolved.
	QueuedCells  int `json:"queued_cells"`
	PendingCells int `json:"pending_cells"`
	// Workers is the remote-worker registry, sorted by ID.
	Workers []WorkerSnapshot `json:"workers,omitempty"`
}

func (m *Metrics) jobAccepted() {
	m.mu.Lock()
	m.jobsAccepted++
	m.mu.Unlock()
}

func (m *Metrics) jobCompleted() {
	m.mu.Lock()
	m.jobsCompleted++
	m.mu.Unlock()
}

func (m *Metrics) cellExecuted() {
	m.mu.Lock()
	m.cellsExecuted++
	m.mu.Unlock()
}

func (m *Metrics) cellCached() {
	m.mu.Lock()
	m.cellsCached++
	m.mu.Unlock()
}

func (m *Metrics) leasesGranted(n uint64) {
	m.mu.Lock()
	m.leasesGrantedN += n
	m.mu.Unlock()
}

func (m *Metrics) leasesRenewed(n uint64) {
	m.mu.Lock()
	m.leasesRenewedN += n
	m.mu.Unlock()
}

func (m *Metrics) leasesExpired(n uint64) {
	m.mu.Lock()
	m.leasesExpiredN += n
	m.mu.Unlock()
}

func (m *Metrics) remoteCompletion() {
	m.mu.Lock()
	m.remoteDone++
	m.mu.Unlock()
}

func (m *Metrics) duplicateCompletion() {
	m.mu.Lock()
	m.duplicateDone++
	m.mu.Unlock()
}

// snapshot captures the counters; pool, cache, queue, and worker
// fields are filled by the server, which owns those objects.
func (m *Metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		JobsAccepted:         m.jobsAccepted,
		JobsCompleted:        m.jobsCompleted,
		CellsExecuted:        m.cellsExecuted,
		CellsCached:          m.cellsCached,
		LeasesGranted:        m.leasesGrantedN,
		LeasesRenewed:        m.leasesRenewedN,
		LeasesExpired:        m.leasesExpiredN,
		CellsRequeued:        m.leasesExpiredN,
		RemoteCompletions:    m.remoteDone,
		DuplicateCompletions: m.duplicateDone,
	}
}
