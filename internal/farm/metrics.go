// Farm service metrics: monotonically increasing counters for the
// /v1/metrics endpoint and the trace stream — jobs accepted and
// completed, cells executed on a worker versus served from the
// content-addressed cache, and the pool's shard occupancy.

package farm

import "sync"

// Metrics counts farm activity since the server started.
type Metrics struct {
	mu            sync.Mutex
	jobsAccepted  uint64
	jobsCompleted uint64
	cellsExecuted uint64
	cellsCached   uint64
}

// MetricsSnapshot is the JSON shape of /v1/metrics.
type MetricsSnapshot struct {
	JobsAccepted  uint64 `json:"jobs_accepted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	// CellsExecuted counts cells simulated on a worker; CellsCached
	// counts cells served from the result cache without running the
	// simulator. Their ratio is the farm's dedup win.
	CellsExecuted uint64 `json:"cells_executed"`
	CellsCached   uint64 `json:"cells_cached"`
	// ShardOccupancy is tasks executed per worker; TasksStolen is how
	// many ran away from their home shard (work-stealing traffic).
	ShardOccupancy []uint64 `json:"shard_occupancy"`
	TasksStolen    uint64   `json:"tasks_stolen"`
	// CacheEntries is the persistent result-cache size; CacheHits and
	// CacheMisses are this process's lookup outcomes.
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
}

func (m *Metrics) jobAccepted() {
	m.mu.Lock()
	m.jobsAccepted++
	m.mu.Unlock()
}

func (m *Metrics) jobCompleted() {
	m.mu.Lock()
	m.jobsCompleted++
	m.mu.Unlock()
}

func (m *Metrics) cellExecuted() {
	m.mu.Lock()
	m.cellsExecuted++
	m.mu.Unlock()
}

func (m *Metrics) cellCached() {
	m.mu.Lock()
	m.cellsCached++
	m.mu.Unlock()
}

// snapshot captures the counters; pool and cache fields are filled by
// the server, which owns those objects.
func (m *Metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		JobsAccepted:  m.jobsAccepted,
		JobsCompleted: m.jobsCompleted,
		CellsExecuted: m.cellsExecuted,
		CellsCached:   m.cellsCached,
	}
}
