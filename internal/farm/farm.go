// Package farm is the simulation-farm service: a long-running server
// that accepts sweep jobs — machine configurations × workloads × seeds ×
// fault plans, litmus batteries, and simulator-speed bench cells — over
// HTTP, shards the cells across a work-stealing worker pool, and dedupes
// execution through a content-addressed result cache keyed on the
// machine-config digest, workload-parameters digest, seed, and code
// fingerprint (internal/farm/cachekey). Because the simulator is
// enforced-deterministic, a cell's result is a pure function of its key:
// the cache is exact, results are bit-identical across restarts, and a
// resubmitted job costs only the cells nobody has run before. Durability
// rides on the same fsynced JSONL journal the sweep CLIs use for
// -resume (internal/par): a server killed mid-job loses at worst the
// cells still queued, and the next start re-queues interrupted jobs from
// the journal.
package farm

// The package's mutex acquisition order, enforced by vbrlint's
// lockorder analyzer. The locks are deliberately never nested today
// (every helper releases one before taking the next); the declared
// order is the contract new code must follow if it ever has to hold
// two at once: server/pool/cache/metrics "mu" first, then the lease
// table's leaseMu, then a worker's heartbeat hbMu.
//
//vbr:lockorder mu leaseMu hbMu

import (
	"fmt"

	"vbmo/internal/config"
	"vbmo/internal/fault"
	"vbmo/internal/litmus"
	"vbmo/internal/workload"
)

// JobSpec is one submitted job: any non-empty subset of the three
// sections. A job's identity is the content digest of this spec plus
// the code-version fingerprint, so resubmitting the same spec to the
// same build is idempotent.
type JobSpec struct {
	// Litmus sweeps the memory-ordering battery (tests × configs × runs).
	Litmus *LitmusSpec `json:"litmus,omitempty"`
	// Matrix runs §5.1 performance cells (machines × workloads × samples).
	Matrix *MatrixSpec `json:"matrix,omitempty"`
	// Bench runs steady-state simulator-speed cells.
	Bench *BenchSpec `json:"bench,omitempty"`
}

// LitmusSpec selects a litmus sweep. Cell seeds derive exactly as
// litmus.Sweep derives them (litmus.CellSeed over the test × config
// indices), so a job naming the full battery and configuration list in
// their canonical order reproduces the litmus CLI bit-identically.
type LitmusSpec struct {
	// Tests names battery tests (empty = the full battery, in order).
	Tests []string `json:"tests,omitempty"`
	// Configs names sweep configurations (empty = all, in order).
	Configs []string `json:"configs,omitempty"`
	// Runs is the perturbed executions per (test, config) cell.
	Runs int `json:"runs"`
	// Seed is the sweep's base seed.
	Seed uint64 `json:"seed"`
	// Cores, when positive, widens every test to an SMP this size.
	Cores int `json:"cores,omitempty"`
	// Fault optionally injects faults into every run.
	Fault *fault.Config `json:"fault,omitempty"`
}

// MatrixSpec selects §5.1 performance cells with the same cell
// enumeration and seed derivation as experiments.Run: uniprocessor
// workloads on one core at Seed, multiprocessor workloads on MPCores
// with Samples samples at Seed + sample*101.
type MatrixSpec struct {
	// Machines names registry machines (empty = the five §5.1 configs).
	Machines []string `json:"machines,omitempty"`
	// Workloads restricts the workload set (empty = all non-bench-only).
	Workloads []string `json:"workloads,omitempty"`
	UniInstr  uint64   `json:"uni_instr"`
	MPInstr   uint64   `json:"mp_instr"`
	MPCores   int      `json:"mp_cores"`
	Samples   int      `json:"samples"`
	Seed      uint64   `json:"seed"`
}

// BenchSpec selects simulator-speed cells: warm a system past its
// compulsory-miss phase, reset statistics, then run a fixed
// committed-instruction window and report cycles, instructions, and
// IPC. The measurement contains no wall-clock term, so bench cells are
// as cacheable as any other.
type BenchSpec struct {
	Machines  []string `json:"machines"`
	Workloads []string `json:"workloads"`
	Cores     int      `json:"cores"`
	// Warm is the committed-instruction warmup before measurement.
	Warm uint64 `json:"warm"`
	// Window is the measured committed-instruction window.
	Window uint64 `json:"window"`
	Seed   uint64 `json:"seed"`
}

// Validate resolves every name in the spec against the registries,
// returning the first unknown so submission fails fast with a clear
// message instead of a worker panic.
func (s JobSpec) Validate() error {
	if s.Litmus == nil && s.Matrix == nil && s.Bench == nil {
		return fmt.Errorf("farm: empty job (no litmus, matrix, or bench section)")
	}
	if l := s.Litmus; l != nil {
		if l.Runs <= 0 {
			return fmt.Errorf("farm: litmus.runs must be positive")
		}
		for _, name := range l.Tests {
			if _, ok := litmus.ByName(name); !ok {
				return fmt.Errorf("farm: unknown litmus test %q", name)
			}
		}
		for _, name := range l.Configs {
			if _, ok := litmus.ConfigByName(name); !ok {
				return fmt.Errorf("farm: unknown litmus config %q", name)
			}
		}
		if l.Cores < 0 || l.Cores > config.MaxCores {
			return fmt.Errorf("farm: litmus.cores must be between 0 and %d", config.MaxCores)
		}
	}
	if m := s.Matrix; m != nil {
		if m.UniInstr == 0 && m.MPInstr == 0 {
			return fmt.Errorf("farm: matrix needs uni_instr or mp_instr")
		}
		for _, name := range m.Machines {
			if _, ok := config.ByName(name); !ok {
				return fmt.Errorf("farm: unknown machine %q", name)
			}
		}
		for _, name := range m.Workloads {
			if _, ok := workload.ByName(name); !ok {
				return fmt.Errorf("farm: unknown workload %q", name)
			}
		}
		if m.MPCores < 0 || m.MPCores > config.MaxCores {
			return fmt.Errorf("farm: matrix.mp_cores must be between 0 and %d", config.MaxCores)
		}
	}
	if b := s.Bench; b != nil {
		if b.Window == 0 {
			return fmt.Errorf("farm: bench.window must be positive")
		}
		if len(b.Machines) == 0 || len(b.Workloads) == 0 {
			return fmt.Errorf("farm: bench needs explicit machines and workloads")
		}
		for _, name := range b.Machines {
			if _, ok := config.ByName(name); !ok {
				return fmt.Errorf("farm: unknown machine %q", name)
			}
		}
		for _, name := range b.Workloads {
			if _, ok := workload.ByName(name); !ok {
				return fmt.Errorf("farm: unknown workload %q", name)
			}
		}
		if b.Cores <= 0 || b.Cores > config.MaxCores {
			return fmt.Errorf("farm: bench.cores must be between 1 and %d", config.MaxCores)
		}
	}
	return nil
}
