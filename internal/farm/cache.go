// The content-addressed result cache: a thin accounting layer over the
// same fsynced JSONL journal the sweep CLIs use for -resume. The
// journal's header fingerprint is the code-version fingerprint, so a
// cache written by one build is never silently consumed by another.

package farm

import (
	"encoding/json"
	"sync"

	"vbmo/internal/farm/cachekey"
	"vbmo/internal/par"
)

// Cache stores cell results keyed by their content-addressed keys.
// Every operation is safe for concurrent workers.
type Cache struct {
	j *par.Journal

	mu     sync.Mutex
	hits   uint64
	misses uint64
}

// OpenCache opens (or creates) the cache journal at path, bound to the
// current code-version fingerprint. A journal written by a different
// build is rejected, exactly like a sweep journal with a mismatched
// fingerprint — stale results are an error, not a fallback.
func OpenCache(path string) (*Cache, error) {
	j, err := par.OpenJournal(path, cachekey.Version())
	if err != nil {
		return nil, err
	}
	return &Cache{j: j}, nil
}

// Get looks key up, unmarshalling the stored result into out and
// counting the hit or miss.
func (c *Cache) Get(key string, out any) bool {
	ok := c.j.Lookup(key, out)
	c.mu.Lock()
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return ok
}

// Put records a result under key, fsyncing before returning. Duplicate
// keys are dropped by the journal (first write wins), which is exactly
// right for a content-addressed store: equal keys imply equal results.
func (c *Cache) Put(key string, result json.RawMessage) error {
	return c.j.Record(key, result)
}

// Len returns the number of cached results.
func (c *Cache) Len() int { return c.j.Done() }

// Stats returns the lifetime hit and miss counts of this process.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Close flushes and closes the underlying journal.
func (c *Cache) Close() error { return c.j.Close() }
