// The sharded work-stealing worker pool. Cells hash to shards by cache
// key, each shard owns a FIFO queue and a worker, and an idle worker
// steals the oldest task from the longest queue — cheap load balancing
// without any nondeterministic select. Determinism is not required of
// scheduling itself (results are content-addressed and folded by cell
// order, so completion order is invisible); what matters is that Stop
// drops queued tasks on the floor exactly like a crash would, leaving
// recovery entirely to the journal.

package farm

import "sync"

// Pool runs submitted tasks on one goroutine per shard.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]func()
	stopped bool
	wg      sync.WaitGroup

	executed []uint64 // tasks run, per worker
	stolen   uint64   // tasks taken from another shard's queue
}

// NewPool starts a pool with the given shard count (minimum 1).
func NewPool(shards int) *Pool {
	if shards < 1 {
		shards = 1
	}
	p := &Pool{
		queues:   make([][]func(), shards),
		executed: make([]uint64, shards),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < shards; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Shards returns the pool's shard count.
func (p *Pool) Shards() int { return len(p.queues) }

// Submit appends fn to the shard's queue, reporting false if the pool
// has stopped (the task is not queued).
func (p *Pool) Submit(shard int, fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	shard = shard % len(p.queues)
	if shard < 0 {
		shard = -shard
	}
	p.queues[shard] = append(p.queues[shard], fn)
	p.cond.Signal()
	return true
}

func (p *Pool) worker(i int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var fn func()
		for {
			if p.stopped {
				p.mu.Unlock()
				return
			}
			if fn = p.take(i); fn != nil {
				break
			}
			p.cond.Wait()
		}
		p.executed[i]++
		p.mu.Unlock()
		fn()
	}
}

// take pops the worker's own queue, falling back to stealing the oldest
// task from the longest queue. Caller holds p.mu.
func (p *Pool) take(i int) func() {
	if q := p.queues[i]; len(q) > 0 {
		fn := q[0]
		p.queues[i] = q[1:]
		return fn
	}
	best, bestLen := -1, 0
	for j := range p.queues {
		if l := len(p.queues[j]); l > bestLen {
			best, bestLen = j, l
		}
	}
	if best < 0 {
		return nil
	}
	fn := p.queues[best][0]
	p.queues[best] = p.queues[best][1:]
	p.stolen++
	return fn
}

// Stop discards every queued task (the crash analog: queued work is
// recovered from the journal, never from memory), waits for in-flight
// tasks to finish, and returns how many tasks were dropped.
func (p *Pool) Stop() (dropped int) {
	p.mu.Lock()
	p.stopped = true
	for i := range p.queues {
		dropped += len(p.queues[i])
		p.queues[i] = nil
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	return dropped
}

// Occupancy returns a snapshot of per-worker executed-task counts.
func (p *Pool) Occupancy() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, len(p.executed))
	copy(out, p.executed)
	return out
}

// Stolen returns how many tasks were executed away from their home
// shard.
func (p *Pool) Stolen() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stolen
}
