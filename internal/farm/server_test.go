package farm

import (
	"testing"
	"time"
)

func startServer(t *testing.T, dir string, shards int) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(dir, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	return s, &Client{Base: "http://" + addr.String()}
}

// TestServerEndToEnd drives the whole service over real HTTP: submit a
// mixed litmus+bench job, wait, fetch results, then resubmit fresh and
// watch every cell come back from the content-addressed cache with an
// identical digest.
func TestServerEndToEnd(t *testing.T) {
	srv, c := startServer(t, t.TempDir(), 4)
	defer srv.Stop()

	spec := testSpec()
	st, err := c.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 5 {
		t.Fatalf("job has %d cells, want 5", st.Total)
	}
	st, err = c.Wait(st.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job state %s (%s), want done", st.State, st.Error)
	}
	if st.Executed != st.Total || st.Cached != 0 {
		t.Fatalf("first run executed=%d cached=%d, want %d/0",
			st.Executed, st.Cached, st.Total)
	}
	if st.Digest == "" {
		t.Fatal("done job has no digest")
	}
	res, err := c.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != st.Total || res.Digest != st.Digest {
		t.Fatalf("results len=%d digest=%s, want %d/%s",
			len(res.Results), res.Digest, st.Total, st.Digest)
	}
	for i, cr := range res.Results {
		if cr.Index != i || cr.Error != "" || len(cr.Result) == 0 {
			t.Fatalf("cell %d malformed: %+v", i, cr)
		}
	}

	// Fresh resubmission: same ID, zero re-simulation, identical digest.
	st2, err := c.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmission changed the job ID: %s vs %s", st2.ID, st.ID)
	}
	st2, err = c.Wait(st2.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != st2.Total || st2.Executed != 0 {
		t.Fatalf("fresh rerun executed=%d cached=%d, want 0/%d",
			st2.Executed, st2.Cached, st2.Total)
	}
	if st2.Digest != st.Digest {
		t.Fatalf("cached rerun digest %s != original %s", st2.Digest, st.Digest)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.CellsExecuted != uint64(st.Total) || m.CellsCached != uint64(st.Total) {
		t.Fatalf("metrics executed=%d cached=%d, want %d/%d",
			m.CellsExecuted, m.CellsCached, st.Total, st.Total)
	}
	if m.JobsCompleted != 2 {
		t.Fatalf("metrics jobs_completed=%d, want 2", m.JobsCompleted)
	}
}

// TestServerRejectsBadSpec: validation errors surface as HTTP 400s with
// the server's message, not as accepted-then-failed jobs.
func TestServerRejectsBadSpec(t *testing.T) {
	srv, c := startServer(t, t.TempDir(), 1)
	defer srv.Stop()
	if _, err := c.Submit(JobSpec{}, false); err == nil {
		t.Fatal("empty job accepted")
	}
	if _, err := c.Submit(JobSpec{Litmus: &LitmusSpec{
		Runs: 1, Tests: []string{"no-such-test"}}}, false); err == nil {
		t.Fatal("unknown test accepted")
	}
}

// TestServerCrashRestartRecovery is the acceptance scenario: submit over
// HTTP, kill the server mid-job, restart on the same state directory,
// resubmit, and require (a) bit-identical results to an uninterrupted
// control run and (b) at least half the recovered job served from the
// journal-backed cache rather than re-simulated.
func TestServerCrashRestartRecovery(t *testing.T) {
	spec := JobSpec{Litmus: &LitmusSpec{Runs: 3, Seed: 13}} // full battery × all configs

	// Control: an uninterrupted run in its own state directory.
	ctrl, cc := startServer(t, t.TempDir(), 4)
	st, err := cc.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err = cc.Wait(st.ID, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("control job state %s (%s)", st.State, st.Error)
	}
	controlDigest := st.Digest
	total := st.Total
	ctrl.Stop()

	// Victim: same spec on a fresh directory, killed once at least half
	// the cells have landed. One shard throttles throughput so the kill
	// reliably catches the job mid-flight.
	dir := t.TempDir()
	srv1, c1 := startServer(t, dir, 1)
	if _, err := c1.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		cur, err := c1.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Done*2 >= cur.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %d/%d", cur.Done, cur.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Stop() // abrupt: queued cells dropped, journals closed

	// Restart on the same directory: recovery re-enqueues the
	// interrupted job from the jobs journal; its completed cells hit the
	// result cache. If the job happened to finish before the kill, the
	// resubmission below re-runs it through the cache instead — either
	// way every previously-done cell must be a hit.
	srv2, c2 := startServer(t, dir, 4)
	defer srv2.Stop()
	st2, err := c2.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("recovered job ID %s != original %s", st2.ID, st.ID)
	}
	st2, err = c2.Wait(st2.ID, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("recovered job state %s (%s)", st2.State, st2.Error)
	}
	if st2.Digest != controlDigest {
		t.Fatalf("recovered digest %s != control %s — restart broke bit-identity",
			st2.Digest, controlDigest)
	}
	if st2.Cached*2 < total {
		t.Fatalf("only %d/%d cells served from cache after restart, want >= half",
			st2.Cached, total)
	}
	if st2.Executed+st2.Cached != total {
		t.Fatalf("executed %d + cached %d != total %d",
			st2.Executed, st2.Cached, total)
	}
}
