package farm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverything: every submitted task runs exactly once and
// the occupancy counters account for all of them.
func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4)
	const n = 100
	var ran atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		if !p.Submit(i, func() { ran.Add(1); wg.Done() }) {
			t.Fatal("submit refused on a live pool")
		}
	}
	wg.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
	var occ uint64
	for _, c := range p.Occupancy() {
		occ += c
	}
	if occ != n {
		t.Fatalf("occupancy sums to %d, want %d", occ, n)
	}
	if dropped := p.Stop(); dropped != 0 {
		t.Fatalf("dropped %d tasks after completion", dropped)
	}
}

// TestPoolStealing: piling every task on one shard must not leave the
// other workers idle — they steal from the longest queue.
func TestPoolStealing(t *testing.T) {
	p := NewPool(4)
	defer p.Stop()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		p.Submit(0, func() {
			// Long enough that shard 0's worker cannot drain the queue
			// alone before the others wake.
			time.Sleep(time.Millisecond)
			wg.Done()
		})
	}
	wg.Wait()
	if p.Stolen() == 0 {
		t.Fatal("no tasks were stolen off the loaded shard")
	}
	busy := 0
	for _, c := range p.Occupancy() {
		if c > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d workers participated; stealing is broken", busy)
	}
}

// TestPoolStopDropsQueued: Stop is the crash analog — queued tasks are
// discarded (the journal recovers them), in-flight tasks finish.
func TestPoolStopDropsQueued(t *testing.T) {
	p := NewPool(1)
	started := make(chan struct{})
	release := make(chan struct{})
	finished := make(chan struct{})
	p.Submit(0, func() {
		close(started)
		<-release
		close(finished)
	})
	<-started
	const queued = 5
	for i := 0; i < queued; i++ {
		p.Submit(0, func() { t.Error("queued task ran after Stop") })
	}
	stopDone := make(chan int)
	go func() { stopDone <- p.Stop() }()
	// Give Stop time to mark the pool stopped and clear the queues; the
	// worker is parked inside the blocking task, not holding the lock.
	time.Sleep(50 * time.Millisecond)
	close(release)
	dropped := <-stopDone
	<-finished
	if dropped != queued {
		t.Fatalf("dropped %d queued tasks, want %d", dropped, queued)
	}
	if p.Submit(0, func() {}) {
		t.Fatal("submit accepted after Stop")
	}
}
