// The farm server: HTTP/JSON job intake, in-memory job state, and the
// durability story. Every accepted job spec is journaled before any
// cell runs, every finished cell is fsynced into the content-addressed
// result cache, and a completion marker closes the job out — so a
// server killed at any instant loses at worst the cells that were still
// queued. The next start replays the jobs journal: specs without a
// completion marker are re-enqueued, their already-cached cells hit,
// and only the genuinely lost cells are re-simulated. Determinism makes
// this exact: a recovered job's results (and digest) are bit-identical
// to an uninterrupted run's.

package farm

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vbmo/internal/farm/cachekey"
	"vbmo/internal/par"
	"vbmo/internal/trace"
)

// Job states reported by the status endpoint.
const (
	StateRunning     = "running"
	StateDone        = "done"
	StateInterrupted = "interrupted"
	StateFailed      = "failed"
)

// JobID derives a job's content-addressed identity: the digest of its
// spec joined with the code-version fingerprint, truncated for
// readability (64 bits of collision resistance is ample for a job
// registry). Equal specs on equal code get equal IDs — resubmission is
// idempotent by construction.
func JobID(spec JobSpec) string {
	type identity struct {
		Spec JobSpec `json:"spec"`
		Code string  `json:"code"`
	}
	return cachekey.Hash(identity{Spec: spec, Code: cachekey.Version()})[:16]
}

// CellResult is one cell's terminal record in a job's result list.
type CellResult struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	// Cached reports whether this run served the cell from the result
	// cache. It is execution metadata, not part of the result digest —
	// the same job is bit-identical whether its cells hit or ran.
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// JobStatus is the status endpoint's JSON shape.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Executed int    `json:"executed"`
	Cached   int    `json:"cached"`
	Digest   string `json:"digest,omitempty"`
	Error    string `json:"error,omitempty"`
}

// JobResults is the results endpoint's JSON shape. Digest is the
// content hash of the ordered result values alone (no cache metadata),
// so two runs of the same job can be compared for bit-identity by
// digest.
type JobResults struct {
	ID      string       `json:"id"`
	Digest  string       `json:"digest"`
	Results []CellResult `json:"results"`
}

// job is the in-memory state of one accepted job.
type job struct {
	id      string
	spec    JobSpec
	cells   []Cell
	keys    []string
	results []CellResult

	done, executed, cached int
	interrupted            bool
	failure                string
	digest                 string
}

func (j *job) state() string {
	switch {
	case j.failure != "":
		return StateFailed
	case j.done == len(j.cells):
		return StateDone
	case j.interrupted:
		return StateInterrupted
	default:
		return StateRunning
	}
}

func (j *job) status() JobStatus {
	return JobStatus{
		ID: j.id, State: j.state(), Total: len(j.cells),
		Done: j.done, Executed: j.executed, Cached: j.cached,
		Digest: j.digest, Error: j.failure,
	}
}

// ServerOptions tunes the farm service beyond its defaults. The zero
// value of every field means "use the default".
type ServerOptions struct {
	// Shards is the local work-stealing pool's shard count (default
	// GOMAXPROCS via NewServer; minimum 1).
	Shards int
	// NoLocalExec turns the server into a pure coordinator: cache
	// misses wait for remote workers instead of also being drained by
	// the local pool. The default (false) is hybrid execution — the
	// local pool is the fallback that finishes a job even if every
	// worker dies.
	NoLocalExec bool
	// LeaseTTL is how long a checked-out cell survives without a
	// heartbeat before the sweeper re-queues it (default 10s).
	LeaseTTL time.Duration
	// SweepInterval is the expiry sweeper's period (default LeaseTTL/4,
	// floored at 10ms).
	SweepInterval time.Duration
	// LongPollMax bounds a ?wait=1 status long-poll: the server answers
	// with the current status at this horizon even if the job is still
	// running (default 30s).
	LongPollMax time.Duration
	// MaxLeaseBatch caps the cells one lease request may check out
	// (default 64).
	MaxLeaseBatch int
	// Clock overrides the lease clock (nil = time.Now). A test seam:
	// lease-lifecycle tests advance a fake clock instead of sleeping
	// through real TTLs.
	Clock func() time.Time
}

// withDefaults fills unset options.
func (o ServerOptions) withDefaults() ServerOptions {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = o.LeaseTTL / 4
	}
	if o.SweepInterval < 10*time.Millisecond {
		o.SweepInterval = 10 * time.Millisecond
	}
	if o.LongPollMax <= 0 {
		o.LongPollMax = 30 * time.Second
	}
	if o.MaxLeaseBatch <= 0 {
		o.MaxLeaseBatch = 64
	}
	return o
}

// Server is the farm service. Create with NewServer (or NewServerWith
// for tuned options), serve with Start, shut down with Stop.
type Server struct {
	dir     string
	opt     ServerOptions
	pool    *Pool
	cache   *Cache
	jobs    *par.Journal
	tr      *trace.Tracer
	metrics *Metrics

	mu   sync.Mutex
	cond *sync.Cond
	byID map[string]*job

	// Lease state: pending cells by cache key, the FIFO of lease-able
	// cells, the worker registry, and the expiry sweeper.
	leaseMu  sync.Mutex
	pending  map[string]*pendingCell
	queue    []*pendingCell
	workers  map[string]*workerInfo
	leaseSeq uint64
	sweeper  *time.Timer
	closed   bool

	ln   net.Listener
	http *http.Server
}

// NewServer opens the farm's state directory with default options and
// the given local pool shard count. See NewServerWith.
func NewServer(dir string, shards int, tr *trace.Tracer) (*Server, error) {
	return NewServerWith(dir, ServerOptions{Shards: shards}, tr)
}

// NewServerWith opens the farm's state directory (results.jsonl: the
// content-addressed cache; jobs.jsonl: accepted specs and completion
// markers), starts the local pool and the lease-expiry sweeper, and
// re-enqueues any job the previous process accepted but never
// completed.
func NewServerWith(dir string, opt ServerOptions, tr *trace.Tracer) (*Server, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cache, err := OpenCache(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		return nil, err
	}
	jobs, err := par.OpenJournal(filepath.Join(dir, "jobs.jsonl"), cachekey.Version())
	if err != nil {
		_ = cache.Close() // the journal error is the one worth reporting
		return nil, err
	}
	s := &Server{
		dir:     dir,
		opt:     opt,
		pool:    NewPool(opt.Shards),
		cache:   cache,
		jobs:    jobs,
		tr:      tr,
		metrics: &Metrics{},
		byID:    make(map[string]*job),
		pending: make(map[string]*pendingCell),
		workers: make(map[string]*workerInfo),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		s.Stop()
		return nil, err
	}
	s.scheduleSweep()
	return s, nil
}

// recover replays the jobs journal: every spec record without a
// matching done marker is an interrupted job; re-enqueue it. Cells the
// dead process finished are in the result cache and hit immediately;
// only the lost tail re-executes.
func (s *Server) recover() error {
	keys := s.jobs.Keys()
	done := make(map[string]bool)
	for _, k := range keys {
		if id, ok := strings.CutPrefix(k, "done|"); ok {
			done[id] = true
		}
	}
	for _, k := range keys {
		id, ok := strings.CutPrefix(k, "spec|")
		if !ok || done[id] {
			continue
		}
		var spec JobSpec
		if !s.jobs.Lookup(k, &spec) {
			return fmt.Errorf("farm: unreadable spec for interrupted job %s", id)
		}
		if _, err := s.enqueue(spec, false); err != nil {
			return fmt.Errorf("farm: re-enqueueing interrupted job %s: %w", id, err)
		}
	}
	return nil
}

// enqueue registers the job and dispatches its cells: cache hits are
// filled synchronously, misses go to the pool shard their key hashes
// to. Resubmitting an ID already known to this process returns the
// existing state unless fresh is set, which re-runs the job through the
// cache (the cells still hit; fresh forces re-counting, not
// re-simulation).
func (s *Server) enqueue(spec JobSpec, fresh bool) (*job, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	id := JobID(spec)
	keys := make([]string, len(cells))
	for i, c := range cells {
		if keys[i], err = c.Key(); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	if existing, ok := s.byID[id]; ok {
		if !fresh || existing.state() == StateRunning {
			s.mu.Unlock()
			return existing, nil
		}
	}
	j := &job{id: id, spec: spec, cells: cells, keys: keys,
		results: make([]CellResult, len(cells))}
	s.byID[id] = j
	s.mu.Unlock()

	if err := s.jobs.Record("spec|"+id, spec); err != nil {
		return nil, err
	}
	s.metrics.jobAccepted()
	if s.tr != nil {
		s.tr.Emit(trace.Event{Kind: trace.KFarmJob, Reason: trace.RFarmJobAccepted,
			Core: -1, Aux: uint64(len(cells))})
	}

	for i := range cells {
		var raw json.RawMessage
		if s.cache.Get(keys[i], &raw) {
			s.finishCell(j, i, raw, true, nil)
			continue
		}
		// Cache miss: the cell goes to the dispatcher, where the local
		// pool and remote worker leases drain one shared queue. Equal
		// keys across jobs share one pending cell and one execution.
		s.dispatch(j, i, cells[i], keys[i])
	}
	return j, nil
}

// finishCell records one cell's terminal state and closes the job out
// when it was the last.
func (s *Server) finishCell(j *job, i int, raw json.RawMessage, cached bool, err error) {
	if cached {
		s.metrics.cellCached()
	} else if err == nil {
		s.metrics.cellExecuted()
	}
	if s.tr != nil {
		reason := trace.RFarmCellExecuted
		if cached {
			reason = trace.RFarmCellCached
		}
		s.tr.Emit(trace.Event{Kind: trace.KFarmCell, Reason: reason, Core: -1})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cr := CellResult{Index: i, Kind: j.cells[i].Kind, Key: j.keys[i], Cached: cached}
	if err != nil {
		cr.Error = err.Error()
		j.failure = fmt.Sprintf("cell %d (%s): %v", i, j.keys[i], err)
	} else {
		cr.Result = raw
		if cached {
			j.cached++
		} else {
			j.executed++
		}
	}
	j.results[i] = cr
	j.done++
	if j.done == len(j.cells) {
		s.completeLocked(j)
	}
	s.cond.Broadcast()
}

// completeLocked finalizes a job whose last cell just landed: compute
// the result digest, journal the completion marker, count it. Caller
// holds s.mu.
func (s *Server) completeLocked(j *job) {
	if j.failure == "" {
		values := make([]json.RawMessage, len(j.results))
		for i := range j.results {
			values[i] = j.results[i].Result
		}
		j.digest = cachekey.Hash(values)
		// The marker write is fsynced; an error here leaves the job
		// re-enqueueable, which recovery handles idempotently.
		if err := s.jobs.Record("done|"+j.id, j.digest); err != nil {
			j.failure = fmt.Sprintf("recording completion: %v", err)
			return
		}
	}
	s.metrics.jobCompleted()
	if s.tr != nil {
		s.tr.Emit(trace.Event{Kind: trace.KFarmJob, Reason: trace.RFarmJobDone,
			Core: -1, Value: uint64(j.executed), Aux: uint64(j.cached)})
	}
}

// shardOf hashes a cache key onto a shard. FNV-1a is deterministic
// across processes, so a cell always lands on the same home shard.
func shardOf(key string, shards int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error

	return int(h.Sum32() % uint32(shards))
}

// Snapshot returns the current metrics, including pool occupancy,
// cache counters, lease-protocol counters, and the worker registry.
func (s *Server) Snapshot() MetricsSnapshot {
	snap := s.metrics.snapshot()
	snap.ShardOccupancy = s.pool.Occupancy()
	snap.TasksStolen = s.pool.Stolen()
	snap.CacheEntries = s.cache.Len()
	snap.CacheHits, snap.CacheMisses = s.cache.Stats()
	snap.QueuedCells, snap.PendingCells = s.queueDepth()
	snap.Workers = s.workerSnapshots()
	return snap
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("POST /v1/cells/lease", s.handleLease)
	mux.HandleFunc("POST /v1/cells/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/cells/complete", s.handleComplete)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "ok", "version": cachekey.Version(),
		})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "farm: bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.enqueue(spec, r.URL.Query().Get("fresh") == "1")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait := r.URL.Query().Get("wait") == "1"
	// A long-poll is bounded: at the horizon the current status goes
	// back even if the job is still running, so a caller is never
	// parked on a connection indefinitely. Clients loop (Client.Wait).
	poll := s.opt.LongPollMax
	if ms, err := strconv.ParseInt(r.URL.Query().Get("poll_ms"), 10, 64); err == nil && ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < poll {
			poll = d
		}
	}
	s.mu.Lock()
	j, ok := s.byID[id]
	if ok && wait && j.state() == StateRunning {
		deadline := time.Now().Add(poll)
		// sync.Cond has no timed wait; an AfterFunc broadcast bounds it.
		t := time.AfterFunc(poll, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		for j.state() == StateRunning && time.Now().Before(deadline) {
			s.cond.Wait()
		}
		t.Stop()
	}
	var st JobStatus
	if ok {
		st = j.status()
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "farm: unknown job "+id, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.byID[id]
	var out JobResults
	state := ""
	if ok {
		state = j.state()
		if state == StateDone {
			out = JobResults{ID: j.id, Digest: j.digest,
				Results: append([]CellResult(nil), j.results...)}
		}
	}
	s.mu.Unlock()
	switch {
	case !ok:
		http.Error(w, "farm: unknown job "+id, http.StatusNotFound)
	case state != StateDone:
		http.Error(w, "farm: job "+id+" is "+state, http.StatusConflict)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// The connection may already be gone; an encode error has nowhere
	// useful to go.
	_ = json.NewEncoder(w).Encode(v)
}

// Start listens on addr (e.g. ":8373", "127.0.0.1:0") and serves the
// API until Stop. It returns the bound address, so tests and scripts
// can pass port 0.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go func() {
		// Serve returns on Stop's Close; nothing to report then.
		_ = s.http.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Stop shuts the server down abruptly — the crash analog the journal is
// built for. Queued cells are dropped (recovery re-runs them), in-flight
// cells finish into the cache, leases evaporate with the process's
// memory (a worker's late completion lands in the next incarnation's
// cache benignly), incomplete jobs are marked interrupted, and the
// journals are closed. Stop returns how many queued cells were dropped.
func (s *Server) Stop() int {
	s.stopSweeper()
	if s.http != nil {
		_ = s.http.Close()
	}
	dropped := s.pool.Stop()
	s.mu.Lock()
	ids := make([]string, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if j := s.byID[id]; j.state() == StateRunning {
			j.interrupted = true
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	_ = s.cache.Close()
	_ = s.jobs.Close()
	return dropped
}
