// Cell expansion and execution: a JobSpec flattens into a deterministic
// list of cells, each carrying everything needed to run it and derive
// its content-addressed cache key. Expansion order is part of the job's
// result contract — results are reported in cell order, and the job's
// digest is computed over that sequence.

package farm

import (
	"encoding/json"
	"fmt"

	"vbmo/internal/config"
	"vbmo/internal/experiments"
	"vbmo/internal/farm/cachekey"
	"vbmo/internal/fault"
	"vbmo/internal/litmus"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// Cell kinds.
const (
	KindLitmus = "litmus"
	KindMatrix = "matrix"
	KindBench  = "bench"
)

// Cell is one unit of farm execution. It is plain data: the journal
// and the HTTP API round-trip it through encoding/json.
type Cell struct {
	Kind string `json:"kind"`
	// Litmus cells.
	Test   string `json:"test,omitempty"`
	Config string `json:"config,omitempty"`
	Runs   int    `json:"runs,omitempty"`
	// Matrix and bench cells.
	Machine  string `json:"machine,omitempty"`
	Workload string `json:"workload,omitempty"`
	Instr    uint64 `json:"instr,omitempty"`
	Warm     uint64 `json:"warm,omitempty"`
	// Shared.
	Cores int           `json:"cores,omitempty"`
	Seed  uint64        `json:"seed"`
	Fault *fault.Config `json:"fault,omitempty"`
}

// BenchObs is the result of one bench cell: a steady-state window's
// cycle and commit counts. No wall-clock term appears, so the
// observation is deterministic and cacheable like any other.
type BenchObs struct {
	Cycles    int64   `json:"cycles"`
	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc"`
}

// Cells expands the spec into its deterministic cell list: litmus cells
// first (test-major, config-minor, exactly litmus.Sweep's order), then
// matrix cells (machine-major, catalog-order workloads, samples), then
// bench cells (machine-major).
func (s JobSpec) Cells() ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var cells []Cell
	if l := s.Litmus; l != nil {
		tests := l.Tests
		if len(tests) == 0 {
			for _, t := range litmus.Battery() {
				tests = append(tests, t.Name)
			}
		}
		cfgs := l.Configs
		if len(cfgs) == 0 {
			for _, c := range litmus.Configs() {
				cfgs = append(cfgs, c.Name)
			}
		}
		for ti, test := range tests {
			for ci, cfg := range cfgs {
				cells = append(cells, Cell{
					Kind: KindLitmus, Test: test, Config: cfg,
					Runs: l.Runs, Cores: l.Cores,
					Seed:  litmus.CellSeed(l.Seed, ti, ci),
					Fault: l.Fault,
				})
			}
		}
	}
	if m := s.Matrix; m != nil {
		machines := m.Machines
		if len(machines) == 0 {
			machines = experiments.MachineNames
		}
		samples := m.Samples
		if samples <= 0 {
			samples = 1
		}
		for _, mc := range machines {
			for _, w := range matrixWorkloads(m.Workloads) {
				if w.Multi {
					for sm := 0; sm < samples; sm++ {
						cells = append(cells, Cell{
							Kind: KindMatrix, Machine: mc, Workload: w.Name,
							Cores: m.MPCores, Instr: m.MPInstr,
							Seed: m.Seed + uint64(sm)*101,
						})
					}
				} else {
					cells = append(cells, Cell{
						Kind: KindMatrix, Machine: mc, Workload: w.Name,
						Cores: 1, Instr: m.UniInstr, Seed: m.Seed,
					})
				}
			}
		}
	}
	if b := s.Bench; b != nil {
		for _, mc := range b.Machines {
			for _, w := range b.Workloads {
				cells = append(cells, Cell{
					Kind: KindBench, Machine: mc, Workload: w,
					Cores: b.Cores, Warm: b.Warm, Instr: b.Window, Seed: b.Seed,
				})
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("farm: job expands to zero cells")
	}
	return cells, nil
}

// matrixWorkloads mirrors experiments.Config.workloadSet: catalog order,
// bench-only workloads excluded unless named explicitly.
func matrixWorkloads(names []string) []workload.Params {
	all := workload.Catalog()
	if len(names) == 0 {
		var out []workload.Params
		for _, w := range all {
			if !w.BenchOnly {
				out = append(out, w)
			}
		}
		return out
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []workload.Params
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// Key derives the cell's content-addressed cache key: the code-version
// fingerprint, the cell kind, the content digests of the machine and
// workload (not just their registry names — a retuned machine changes
// the key), and every remaining parameter in the clear.
func (c Cell) Key() (string, error) {
	switch c.Kind {
	case KindLitmus:
		cfg, ok := litmus.ConfigByName(c.Config)
		if !ok {
			return "", fmt.Errorf("farm: unknown litmus config %q", c.Config)
		}
		return cachekey.Join(cachekey.Version(), KindLitmus, c.Test, c.Config,
			cachekey.Machine(cfg.Machine),
			fmt.Sprintf("runs=%d", c.Runs), fmt.Sprintf("cores=%d", c.Cores),
			fmt.Sprintf("seed=%d", c.Seed), cachekey.Fault(c.Fault)), nil
	case KindMatrix, KindBench:
		mc, ok := config.ByName(c.Machine)
		if !ok {
			return "", fmt.Errorf("farm: unknown machine %q", c.Machine)
		}
		w, ok := workload.ByName(c.Workload)
		if !ok {
			return "", fmt.Errorf("farm: unknown workload %q", c.Workload)
		}
		return cachekey.Join(cachekey.Version(), c.Kind,
			cachekey.Machine(mc), cachekey.Workload(w),
			fmt.Sprintf("cores=%d", c.Cores), fmt.Sprintf("warm=%d", c.Warm),
			fmt.Sprintf("instr=%d", c.Instr), fmt.Sprintf("seed=%d", c.Seed)), nil
	default:
		return "", fmt.Errorf("farm: unknown cell kind %q", c.Kind)
	}
}

// Execute runs the cell and returns its result as canonical JSON — the
// exact bytes the cache stores and the API serves, so a cached replay
// is byte-identical to a fresh execution.
func (c Cell) Execute() (json.RawMessage, error) {
	switch c.Kind {
	case KindLitmus:
		t, ok := litmus.ByName(c.Test)
		if !ok {
			return nil, fmt.Errorf("farm: unknown litmus test %q", c.Test)
		}
		cfg, ok := litmus.ConfigByName(c.Config)
		if !ok {
			return nil, fmt.Errorf("farm: unknown litmus config %q", c.Config)
		}
		v := litmus.RunCell(t, cfg, litmus.Allowed(t), c.Runs, c.Seed, c.Fault, c.Cores)
		return json.Marshal(v)
	case KindMatrix:
		mc, ok := config.ByName(c.Machine)
		if !ok {
			return nil, fmt.Errorf("farm: unknown machine %q", c.Machine)
		}
		w, ok := workload.ByName(c.Workload)
		if !ok {
			return nil, fmt.Errorf("farm: unknown workload %q", c.Workload)
		}
		return json.Marshal(experiments.MeasureCell(mc, w, c.Cores, c.Instr, c.Seed))
	case KindBench:
		mc, ok := config.ByName(c.Machine)
		if !ok {
			return nil, fmt.Errorf("farm: unknown machine %q", c.Machine)
		}
		w, ok := workload.ByName(c.Workload)
		if !ok {
			return nil, fmt.Errorf("farm: unknown workload %q", c.Workload)
		}
		opt := system.Options{Cores: c.Cores, Seed: c.Seed, DMAInterval: 4000, DMABurst: 2}
		s := system.New(mc, w, opt)
		s.Advance(c.Warm, opt)
		s.ResetStats()
		s.Advance(c.Instr, opt)
		res := s.Result()
		obs := BenchObs{Cycles: s.CycleNum, Committed: res.Pipe.Committed, IPC: res.IPC}
		return json.Marshal(obs)
	default:
		return nil, fmt.Errorf("farm: unknown cell kind %q", c.Kind)
	}
}
