// The remote-worker runtime behind cmd/vbrworker: lease a batch of
// cells, execute them through the exact same litmus.RunCell /
// experiments.MeasureCell paths the server's local pool uses, upload
// each result (cache-before-acknowledge on the server side), and
// heartbeat in the background so the leases outlive long cells. The
// worker is deliberately stateless: it holds no journal and no cache,
// so SIGKILL at any instant loses at most the wall-clock time spent on
// the current batch — the server's lease sweeper re-queues the cells,
// and determinism guarantees whoever re-runs them produces the same
// bytes. Transient server unavailability (restart, partition) is ridden
// out with bounded exponential backoff on top of the client's own
// per-request retries.

package farm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vbmo/internal/farm/cachekey"
)

// VersionError reports a worker/server code-fingerprint mismatch. It is
// fatal by design: a mismatched worker would file results computed by
// different code under this server's cache keys.
type VersionError struct {
	Server, Worker string
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("farm: server runs code version %q, this worker %q; results would corrupt the content-addressed cache — rebuild the worker",
		e.Server, e.Worker)
}

// Worker pulls cells from a farm server and executes them. Configure
// the fields, then call Run; the zero values mean the defaults.
type Worker struct {
	// Client is the server connection (required). Its retry policy is
	// the inner defense; the worker's own backoff is the outer one.
	Client *Client
	// ID is this worker's stable identity (required).
	ID string
	// Batch is the cells checked out per lease round trip (default 4).
	Batch int
	// Heartbeat overrides the renewal interval (default: a third of the
	// server-announced lease TTL).
	Heartbeat time.Duration
	// Poll is the idle wait between empty lease answers; it backs off
	// exponentially to MaxPoll while there is no work or no server
	// (default 250ms).
	Poll time.Duration
	// MaxPoll caps the idle/unavailable backoff (default 5s).
	MaxPoll time.Duration
	// MaxIdle, when positive, makes Run return nil after this long
	// without obtaining any cell — the batch-job exit for CI and
	// scripts. Zero means run until the context is cancelled.
	MaxIdle time.Duration
	// ExecDelay inserts a pause before each cell's execution. A chaos /
	// test knob: it widens the mid-cell window so kill-tolerance tests
	// (and CI) can SIGKILL a worker that provably holds unfinished
	// leases. Zero for production.
	ExecDelay time.Duration
	// Logf, when set, receives progress lines (e.g. log.Printf).
	Logf func(format string, args ...any)

	completed atomic.Uint64

	hbMu    sync.Mutex
	hbTimer *time.Timer
	hbStop  bool
	ttl     time.Duration
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Completed returns how many cells this worker has successfully
// uploaded.
func (w *Worker) Completed() uint64 { return w.completed.Load() }

// sleepCtx pauses for d or until ctx is cancelled — without a
// multi-way select, which the determinism analyzer bans in this
// package. Two AfterFunc-style triggers race to close one channel; a
// sync.Once makes the race benign.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 || ctx.Err() != nil {
		return
	}
	done := make(chan struct{})
	var once sync.Once
	fire := func() { once.Do(func() { close(done) }) }
	t := time.AfterFunc(d, fire)
	defer t.Stop()
	stop := context.AfterFunc(ctx, fire)
	defer stop()
	<-done
}

// heartbeatInterval derives the renewal period from the override or the
// last server-announced TTL.
func (w *Worker) heartbeatInterval() time.Duration {
	if w.Heartbeat > 0 {
		return w.Heartbeat
	}
	w.hbMu.Lock()
	ttl := w.ttl
	w.hbMu.Unlock()
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if iv := ttl / 3; iv >= 50*time.Millisecond {
		return iv
	}
	return 50 * time.Millisecond
}

// noteTTL records the server-announced lease TTL for heartbeat pacing.
func (w *Worker) noteTTL(ms int64) {
	if ms <= 0 {
		return
	}
	w.hbMu.Lock()
	w.ttl = time.Duration(ms) * time.Millisecond
	w.hbMu.Unlock()
}

// startHeartbeat arms the self-rescheduling renewal timer. Errors are
// deliberately ignored: a missed heartbeat costs at worst a lease
// expiry and a benign duplicate execution.
func (w *Worker) startHeartbeat(ctx context.Context) {
	var tick func()
	tick = func() {
		if ctx.Err() != nil {
			return
		}
		if _, err := w.Client.Heartbeat(w.ID); err != nil {
			w.logf("vbrworker %s: heartbeat failed (will retry): %v", w.ID, err)
		}
		// Compute the interval before taking hbMu: heartbeatInterval
		// locks it too.
		iv := w.heartbeatInterval()
		w.hbMu.Lock()
		if !w.hbStop {
			w.hbTimer = time.AfterFunc(iv, tick)
		}
		w.hbMu.Unlock()
	}
	iv := w.heartbeatInterval()
	w.hbMu.Lock()
	w.hbTimer = time.AfterFunc(iv, tick)
	w.hbMu.Unlock()
}

func (w *Worker) stopHeartbeat() {
	w.hbMu.Lock()
	w.hbStop = true
	t := w.hbTimer
	w.hbMu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// Run is the worker's main loop: handshake versions, then lease /
// execute / complete until the context is cancelled (or MaxIdle starves
// it). Run returns nil on a clean exit, a *VersionError on a build
// mismatch, and otherwise only context errors — server unavailability
// is never fatal, only backed off.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.ID == "" {
		return fmt.Errorf("farm: worker needs a Client and an ID")
	}
	batch := w.Batch
	if batch <= 0 {
		batch = 4
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	maxPoll := w.MaxPoll
	if maxPoll <= 0 {
		maxPoll = 5 * time.Second
	}

	// Version handshake: keep knocking (bounded backoff) until the
	// server answers, then insist on an identical code fingerprint.
	delay := poll
	for {
		if ctx.Err() != nil {
			return nil
		}
		h, err := w.Client.Health()
		if err == nil {
			if h["version"] != cachekey.Version() {
				return &VersionError{Server: h["version"], Worker: cachekey.Version()}
			}
			break
		}
		w.logf("vbrworker %s: server unreachable (%v); backing off %s", w.ID, err, delay)
		sleepCtx(ctx, delay)
		if delay *= 2; delay > maxPoll {
			delay = maxPoll
		}
	}

	w.startHeartbeat(ctx)
	defer w.stopHeartbeat()
	w.logf("vbrworker %s: connected (batch %d)", w.ID, batch)

	idle := poll
	lastWork := time.Now()
	for ctx.Err() == nil {
		resp, err := w.Client.Lease(LeaseRequest{Worker: w.ID, Max: batch})
		if err != nil {
			w.logf("vbrworker %s: lease failed (%v); backing off %s", w.ID, err, idle)
			sleepCtx(ctx, idle)
			if idle *= 2; idle > maxPoll {
				idle = maxPoll
			}
			continue
		}
		if resp.Version != cachekey.Version() {
			// The server changed underneath us (redeploy): stop rather
			// than file wrong-build results.
			return &VersionError{Server: resp.Version, Worker: cachekey.Version()}
		}
		w.noteTTL(resp.TTLMillis)
		if len(resp.Cells) == 0 {
			if w.MaxIdle > 0 && time.Since(lastWork) > w.MaxIdle {
				w.logf("vbrworker %s: idle for %s; exiting", w.ID, w.MaxIdle)
				return nil
			}
			sleepCtx(ctx, idle)
			if idle *= 2; idle > maxPoll {
				idle = maxPoll
			}
			continue
		}
		idle = poll
		lastWork = time.Now()
		for _, lc := range resp.Cells {
			if ctx.Err() != nil {
				return nil
			}
			sleepCtx(ctx, w.ExecDelay)
			raw, execErr := lc.Cell.Execute()
			req := CompleteRequest{Worker: w.ID, Lease: lc.Lease, Key: lc.Key, Result: raw}
			if execErr != nil {
				req.Result = nil
				req.Error = execErr.Error()
			}
			ack, err := w.Client.Complete(req)
			if err != nil {
				// The server is gone beyond the client's retry budget.
				// Drop the rest of the batch: the leases will expire and
				// the cells re-queue, and re-leasing after the backoff
				// is cheaper than stockpiling results we cannot file.
				w.logf("vbrworker %s: completion failed (%v); dropping batch", w.ID, err)
				break
			}
			w.completed.Add(1)
			if ack.Duplicate {
				w.logf("vbrworker %s: %s was already resolved (benign duplicate)", w.ID, lc.Key)
			}
		}
	}
	return nil
}
