package cachekey

import (
	"strings"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/fault"
	"vbmo/internal/workload"
)

// TestHashDeterministic: equal inputs hash equal, across repeated calls
// and regardless of construction order — no pointer identity or map
// iteration order may leak into the digest.
func TestHashDeterministic(t *testing.T) {
	a, _ := config.ByName("baseline")
	b, _ := config.ByName("baseline")
	if Hash(a) != Hash(b) {
		t.Fatal("two independently-built copies of the same machine hash differently")
	}
	if Hash(a) != Hash(a) {
		t.Fatal("hash of the same value is not stable across calls")
	}
	// Maps marshal with sorted keys, so insertion order is invisible.
	m1 := map[string]int{}
	m1["x"] = 1
	m1["a"] = 2
	m1["q"] = 3
	m2 := map[string]int{}
	m2["q"] = 3
	m2["a"] = 2
	m2["x"] = 1
	if Hash(m1) != Hash(m2) {
		t.Fatal("map insertion order changed the hash")
	}
}

// TestMachineFieldSensitivity: any semantically relevant field change
// must change the machine digest.
func TestMachineFieldSensitivity(t *testing.T) {
	base, ok := config.ByName("baseline")
	if !ok {
		t.Fatal("baseline machine missing")
	}
	ref := Machine(base)
	mod := base
	mod.ROBSize++
	if Machine(mod) == ref {
		t.Fatal("ROB size change did not change the digest")
	}
	mod = base
	mod.Name = "renamed"
	if Machine(mod) == ref {
		t.Fatal("rename did not change the digest")
	}
	other, ok := config.ByName("replay-all")
	if !ok {
		t.Fatal("replay-all machine missing")
	}
	if Machine(other) == ref {
		t.Fatal("distinct machines collide")
	}
}

// TestWorkloadAndFaultDigests: workloads differ pairwise; the nil fault
// plan has a digest distinct from every enabled plan; a rate change
// changes an enabled plan's digest.
func TestWorkloadAndFaultDigests(t *testing.T) {
	seen := map[string]string{}
	for _, w := range workload.Catalog() {
		d := Workload(w)
		if prev, dup := seen[d]; dup {
			t.Fatalf("workloads %s and %s collide", prev, w.Name)
		}
		seen[d] = w.Name
	}
	off := Fault(nil)
	on := Fault(&fault.Config{Kinds: []fault.Kind{fault.LoadValue}, Rate: 0.5, Seed: 1})
	if off == on {
		t.Fatal("nil and enabled fault plans collide")
	}
	on2 := Fault(&fault.Config{Kinds: []fault.Kind{fault.LoadValue}, Rate: 0.25, Seed: 1})
	if on == on2 {
		t.Fatal("fault rate change did not change the digest")
	}
}

// TestVersionShape: the fingerprint embeds the schema constant (so a
// schema bump invalidates every cache) and is memoized-stable.
func TestVersionShape(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, Schema+"|") {
		t.Fatalf("version %q does not start with schema %q", v, Schema)
	}
	if v != Version() {
		t.Fatal("version is not stable within a process")
	}
}

// TestJoinInjective: joined parts cannot collide by concatenation
// (the separator never appears in hex digests or decimal numbers).
func TestJoinInjective(t *testing.T) {
	if Join("ab", "c") == Join("a", "bc") {
		t.Fatal("join is not injective over part boundaries")
	}
	if !strings.Contains(Join("a", "b"), "|") {
		t.Fatal("join separator missing")
	}
}
