// Package cachekey derives the content-addressed identities the farm
// service caches simulation results under. A cell key is a SHA-256
// digest over the canonical JSON encoding of everything that shapes the
// cell's result — machine configuration, workload parameters, fault
// plan, seed — joined with a code-version fingerprint. Because the
// simulator is enforced-deterministic (a cell's result is a pure
// function of these inputs), two cells with equal keys have bit-identical
// results, across processes, restarts, and hosts running the same code.
package cachekey

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"

	"vbmo/internal/config"
	"vbmo/internal/fault"
	"vbmo/internal/workload"
)

// Schema versions the key derivation itself. Bump it whenever the
// encoding of any keyed structure changes meaning (new semantically
// relevant field, changed seed derivation), so stale cached results
// can never be served for the new semantics.
const Schema = "farm-v1"

// Hash returns the hex SHA-256 of v's canonical JSON encoding.
// encoding/json writes struct fields in declaration order and sorts map
// keys, so the encoding — and therefore the digest — is deterministic
// across processes; no pointer identity or map iteration order leaks in.
func Hash(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		// Every keyed type in this repo is plain data; a marshal failure
		// is a programming error, but a distinguishable non-colliding key
		// is still safer than a panic inside the service.
		raw = []byte(fmt.Sprintf("unmarshalable:%T:%v", v, err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Machine returns the digest of a machine configuration. Two configs
// that differ in any field — sizes, latencies, filter composition —
// get different digests; renaming alone also changes the digest, which
// is deliberate: the registry name is part of what jobs request.
func Machine(mc config.Machine) string { return Hash(mc) }

// Workload returns the digest of a workload parameter block.
func Workload(w workload.Params) string { return Hash(w) }

// Fault returns the digest of a fault plan; the nil plan (injection
// off) has its own stable digest distinct from any enabled plan.
func Fault(fc *fault.Config) string {
	if fc == nil {
		return Hash("fault-off")
	}
	return Hash(*fc)
}

var (
	versionOnce sync.Once
	versionVal  string
)

// Version returns the code-version fingerprint: the key schema joined
// with the build's VCS revision (plus a dirty marker for modified
// trees). Binaries built without VCS stamping — go test, go run — all
// report "dev": they share cached results with each other but never
// with a stamped release build.
func Version() string {
	versionOnce.Do(func() {
		rev, dirty := "dev", ""
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					if s.Value == "true" {
						dirty = "+dirty"
					}
				}
			}
		}
		versionVal = Schema + "|" + rev + dirty
	})
	return versionVal
}

// Join builds a composite cache key from parts. Parts are joined with a
// separator that cannot appear in a hex digest or a decimal number, so
// distinct part vectors cannot collide by concatenation.
func Join(parts ...string) string { return strings.Join(parts, "|") }
