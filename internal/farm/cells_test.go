package farm

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"vbmo/internal/litmus"
)

func testSpec() JobSpec {
	return JobSpec{
		Litmus: &LitmusSpec{
			Tests:   []string{"SB", "MP"},
			Configs: []string{"baseline", "nus-only"},
			Runs:    2, Seed: 7,
		},
		Bench: &BenchSpec{
			Machines: []string{"baseline"}, Workloads: []string{"gzip"},
			Cores: 1, Warm: 1000, Window: 4000, Seed: 1,
		},
	}
}

// TestCellsExpansionDeterministic: the same spec always expands to the
// same cell list with the same keys — expansion order is part of the
// job's result contract.
func TestCellsExpansionDeterministic(t *testing.T) {
	a, err := testSpec().Cells()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec().Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	if len(a) != 5 { // 2 tests × 2 configs + 1 bench
		t.Fatalf("expanded to %d cells, want 5", len(a))
	}
	for i := range a {
		ka, err := a[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		kb, _ := b[i].Key()
		if ka != kb {
			t.Fatalf("cell %d key unstable: %s vs %s", i, ka, kb)
		}
	}
}

// TestCellKeySensitivity: changing any execution-relevant parameter
// changes the cache key, so stale results can never be served.
func TestCellKeySensitivity(t *testing.T) {
	base := Cell{Kind: KindLitmus, Test: "SB", Config: "baseline", Runs: 2, Seed: 7}
	ref, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range []Cell{
		{Kind: KindLitmus, Test: "SB", Config: "baseline", Runs: 3, Seed: 7},
		{Kind: KindLitmus, Test: "SB", Config: "baseline", Runs: 2, Seed: 8},
		{Kind: KindLitmus, Test: "SB", Config: "nus-only", Runs: 2, Seed: 7},
		{Kind: KindLitmus, Test: "MP", Config: "baseline", Runs: 2, Seed: 7},
		{Kind: KindLitmus, Test: "SB", Config: "baseline", Runs: 2, Seed: 7, Cores: 4},
	} {
		k, err := mod.Key()
		if err != nil {
			t.Fatal(err)
		}
		if k == ref {
			t.Fatalf("cell %+v collides with base", mod)
		}
	}
	bb := Cell{Kind: KindBench, Machine: "baseline", Workload: "gzip",
		Cores: 1, Warm: 1000, Instr: 4000, Seed: 1}
	bref, err := bb.Key()
	if err != nil {
		t.Fatal(err)
	}
	bm := bb
	bm.Machine = "replay-all"
	if k, _ := bm.Key(); k == bref {
		t.Fatal("machine change did not change the bench key")
	}
	bw := bb
	bw.Warm = 2000
	if k, _ := bw.Key(); k == bref {
		t.Fatal("warmup change did not change the bench key")
	}
	mx := bb
	mx.Kind = KindMatrix
	if k, _ := mx.Key(); k == bref {
		t.Fatal("matrix and bench cells with equal params collide")
	}
}

// TestLitmusCellMatchesSweep: a farm litmus cell must reproduce
// litmus.Sweep bit-identically — the farm expands in Sweep's battery
// order (tests outer, configs inner) with Sweep's per-cell seeds, so
// verdicts compare index for index.
func TestLitmusCellMatchesSweep(t *testing.T) {
	spec := JobSpec{Litmus: &LitmusSpec{
		Tests:   []string{"SB", "MP"},
		Configs: []string{"baseline", "nus-only"},
		Runs:    3, Seed: 11,
	}}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	var tests []*litmus.Test
	for _, name := range spec.Litmus.Tests {
		tt, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("unknown test %s", name)
		}
		tests = append(tests, tt)
	}
	var cfgs []litmus.Config
	for _, name := range spec.Litmus.Configs {
		c, ok := litmus.ConfigByName(name)
		if !ok {
			t.Fatalf("unknown config %s", name)
		}
		cfgs = append(cfgs, c)
	}
	want, err := litmus.Sweep(litmus.SweepOptions{
		Tests: tests, Configs: cfgs, Runs: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cells) {
		t.Fatalf("sweep has %d verdicts, farm %d cells", len(want), len(cells))
	}
	for i, c := range cells {
		raw, err := c.Execute()
		if err != nil {
			t.Fatal(err)
		}
		var got litmus.Verdict
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("cell %d (%s/%s):\nfarm  %+v\nsweep %+v",
				i, c.Test, c.Config, got, want[i])
		}
	}
}

// TestBenchCellDeterministic: a bench cell carries no wall-clock term,
// so two executions produce byte-identical observations.
func TestBenchCellDeterministic(t *testing.T) {
	c := Cell{Kind: KindBench, Machine: "baseline", Workload: "gzip",
		Cores: 1, Warm: 1000, Instr: 4000, Seed: 1}
	a, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("bench cell not deterministic:\n%s\n%s", a, b)
	}
	var obs BenchObs
	if err := json.Unmarshal(a, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Cycles <= 0 || obs.Committed == 0 || obs.IPC <= 0 {
		t.Fatalf("degenerate observation %+v", obs)
	}
}

// TestValidateRejects: bad specs fail at submission, not in a worker.
func TestValidateRejects(t *testing.T) {
	for _, spec := range []JobSpec{
		{},
		{Litmus: &LitmusSpec{Runs: 0}},
		{Litmus: &LitmusSpec{Runs: 1, Tests: []string{"no-such-test"}}},
		{Litmus: &LitmusSpec{Runs: 1, Configs: []string{"no-such-config"}}},
		{Matrix: &MatrixSpec{}},
		{Matrix: &MatrixSpec{UniInstr: 100, Machines: []string{"no-such-machine"}}},
		{Bench: &BenchSpec{Window: 100, Cores: 1}},
		{Bench: &BenchSpec{Window: 100, Cores: 1,
			Machines: []string{"baseline"}, Workloads: []string{"no-such-workload"}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %+v validated", spec)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}
