package deppred

import "testing"

func TestSimpleColdPredictsNoWait(t *testing.T) {
	s := NewSimple(64)
	if s.ShouldWait(0x100) {
		t.Error("untrained predictor should not stall loads")
	}
}

func TestSimpleTrainsOnViolation(t *testing.T) {
	s := NewSimple(64)
	s.TrainViolation(0x100)
	if !s.ShouldWait(0x100) {
		t.Error("trained PC should wait")
	}
	if s.ShouldWait(0x104) {
		t.Error("different PC should be unaffected")
	}
	if s.Trainings != 1 || s.Waits != 1 {
		t.Errorf("stats: %d trainings, %d waits", s.Trainings, s.Waits)
	}
}

func TestSimpleAliasing(t *testing.T) {
	s := NewSimple(16)
	s.TrainViolation(0x100)
	// PC 0x100>>2 = 0x40; alias at (0x40+16)<<2.
	alias := uint64((0x40 + 16) << 2)
	if !s.ShouldWait(alias) {
		t.Error("aliased PC should share the entry (destructive aliasing is real)")
	}
}

func TestSimpleBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-power-of-two size")
		}
	}()
	NewSimple(12)
}

func TestStoreSetsColdNoDependence(t *testing.T) {
	ss := NewStoreSets(64, 16)
	if ss.LoadDispatched(0x200) != -1 {
		t.Error("untrained load should be unconstrained")
	}
	if ss.StoreDispatched(0x300, 5) != -1 {
		t.Error("untrained store should be unconstrained")
	}
}

func TestStoreSetsViolationCreatesDependence(t *testing.T) {
	ss := NewStoreSets(64, 16)
	loadPC, storePC := uint64(0x200), uint64(0x300)
	ss.TrainViolation(loadPC, storePC)
	// The store dispatches, then the load must wait for it.
	ss.StoreDispatched(storePC, 7)
	if got := ss.LoadDispatched(loadPC); got != 7 {
		t.Errorf("load should wait for store tag 7, got %d", got)
	}
	// After the store retires, no dependence remains.
	ss.StoreRetired(storePC, 7)
	if got := ss.LoadDispatched(loadPC); got != -1 {
		t.Errorf("retired store still constrains load: %d", got)
	}
}

func TestStoreSetsSerializesStoresInSet(t *testing.T) {
	ss := NewStoreSets(64, 16)
	ss.TrainViolation(0x200, 0x300)
	ss.TrainViolation(0x200, 0x304) // merge second store into the set
	prev := ss.StoreDispatched(0x300, 10)
	if prev != -1 {
		t.Errorf("first store should see no predecessor, got %d", prev)
	}
	prev = ss.StoreDispatched(0x304, 11)
	if prev != 10 {
		t.Errorf("second store in set should order behind tag 10, got %d", prev)
	}
}

func TestStoreSetsMergeRules(t *testing.T) {
	ss := NewStoreSets(256, 16)
	// Two independent violations create two sets.
	ss.TrainViolation(0x400, 0x500)
	ss.TrainViolation(0x600, 0x700)
	s1 := ss.ssidOf(0x400)
	s2 := ss.ssidOf(0x600)
	if s1 < 0 || s2 < 0 || s1 == s2 {
		t.Fatalf("expected two distinct sets, got %d and %d", s1, s2)
	}
	// A violation bridging them merges to the smaller id.
	ss.TrainViolation(0x400, 0x700)
	m1, m2 := ss.ssidOf(0x400), ss.ssidOf(0x700)
	if m1 != m2 {
		t.Errorf("bridge violation should merge sets: %d vs %d", m1, m2)
	}
	want := s1
	if s2 < s1 {
		want = s2
	}
	if m1 != want {
		t.Errorf("merged to %d, want smaller id %d", m1, want)
	}
}

func TestStoreSetsSquashClearsYoungStores(t *testing.T) {
	ss := NewStoreSets(64, 16)
	ss.TrainViolation(0x200, 0x300)
	ss.StoreDispatched(0x300, 20)
	ss.SquashTag(15) // store 20 squashed
	if got := ss.LoadDispatched(0x200); got != -1 {
		t.Errorf("squashed store still constrains load: %d", got)
	}
}

func TestStoreSetsFalseDependences(t *testing.T) {
	// The pathology the paper observes on art: unrelated loads whose
	// PCs alias into a trained SSIT entry get stalled unnecessarily.
	ss := NewStoreSets(16, 8)
	ss.TrainViolation(0x200, 0x300)
	ss.StoreDispatched(0x300, 30)
	alias := uint64(0x200 + 16*4)
	if got := ss.LoadDispatched(alias); got != 30 {
		t.Errorf("aliased load should be (falsely) constrained, got %d", got)
	}
}
