// Package deppred implements the two memory dependence predictors the
// paper compares:
//
//   - Simple: the Alpha 21264-style PC-indexed 1-bit table used by the
//     value-based replay machine. A set bit makes the load wait until all
//     prior store addresses are known. It needs only the load's PC to
//     train — which is all the replay mechanism can supply, since a value
//     mismatch does not identify the conflicting store (paper §3).
//
//   - StoreSets: the Chrysos & Emer store-set predictor used by the
//     baseline (4k-entry SSIT, 128-entry LFST, Table 3). It requires the
//     identity of the conflicting store to train, which the associative
//     load queue provides and value-based replay cannot.
package deppred

// Simple is the PC-indexed 1-bit dependence predictor.
type Simple struct {
	bits []bool
	mask uint64
	// Trainings counts violation trainings; Waits counts positive
	// predictions returned.
	Trainings, Waits uint64
}

// NewSimple creates a table with the given entry count (power of two;
// the paper uses 4k).
func NewSimple(entries int) *Simple {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("deppred: entries must be a positive power of two")
	}
	return &Simple{bits: make([]bool, entries), mask: uint64(entries - 1)}
}

func (s *Simple) idx(pc uint64) uint64 { return (pc >> 2) & s.mask }

// ShouldWait reports whether the load at pc must wait for all prior
// store addresses to resolve before issuing.
func (s *Simple) ShouldWait(pc uint64) bool {
	if s.bits[s.idx(pc)] {
		s.Waits++
		return true
	}
	return false
}

// TrainViolation records that the load at pc suffered a memory-order
// violation.
func (s *Simple) TrainViolation(pc uint64) {
	s.Trainings++
	s.bits[s.idx(pc)] = true
}

// StoreSets is the store-set predictor. Tags identify dynamic stores
// (reorder-buffer sequence numbers).
type StoreSets struct {
	ssit   []int32 // PC index -> store set id, -1 = invalid
	lfst   []int64 // store set id -> tag of last fetched in-flight store, -1 = none
	mask   uint64
	nextID int32
	// Violations counts trainings; Dependences counts loads given a
	// store to wait on.
	Violations, Dependences uint64
}

// NewStoreSets creates a predictor with the given SSIT and LFST sizes
// (powers of two / positive; the paper uses 4096 and 128).
func NewStoreSets(ssitEntries, lfstEntries int) *StoreSets {
	if ssitEntries <= 0 || ssitEntries&(ssitEntries-1) != 0 {
		panic("deppred: SSIT entries must be a positive power of two")
	}
	if lfstEntries <= 0 {
		panic("deppred: LFST entries must be positive")
	}
	s := &StoreSets{
		ssit: make([]int32, ssitEntries),
		lfst: make([]int64, lfstEntries),
		mask: uint64(ssitEntries - 1),
	}
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	for i := range s.lfst {
		s.lfst[i] = -1
	}
	return s
}

func (s *StoreSets) idx(pc uint64) uint64 { return (pc >> 2) & s.mask }

// ssidOf returns the store set id assigned to pc, or -1.
func (s *StoreSets) ssidOf(pc uint64) int32 { return s.ssit[s.idx(pc)] }

// StoreDispatched records an in-flight store: it becomes the last
// fetched store of its set. It returns the tag of the previous store in
// the set, which this store must (conservatively) order behind, or -1.
func (s *StoreSets) StoreDispatched(pc uint64, tag int64) int64 {
	ssid := s.ssidOf(pc)
	if ssid < 0 {
		return -1
	}
	prev := s.lfst[ssid]
	s.lfst[ssid] = tag
	return prev
}

// LoadDispatched returns the tag of the in-flight store the load at pc
// must wait for, or -1 if unconstrained.
func (s *StoreSets) LoadDispatched(pc uint64) int64 {
	ssid := s.ssidOf(pc)
	if ssid < 0 {
		return -1
	}
	if t := s.lfst[ssid]; t >= 0 {
		s.Dependences++
		return t
	}
	return -1
}

// StoreRetired clears the LFST entry if it still names tag (the store
// has left the window).
func (s *StoreSets) StoreRetired(pc uint64, tag int64) {
	ssid := s.ssidOf(pc)
	if ssid >= 0 && s.lfst[ssid] == tag {
		s.lfst[ssid] = -1
	}
}

// TrainViolation merges the load and store into one store set using the
// standard store-set assignment rules.
func (s *StoreSets) TrainViolation(loadPC, storePC uint64) {
	s.Violations++
	li, si := s.idx(loadPC), s.idx(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls < 0 && ss < 0:
		// Allocate a new set id round-robin over the LFST.
		id := s.nextID
		s.nextID = (s.nextID + 1) % int32(len(s.lfst))
		s.ssit[li], s.ssit[si] = id, id
	case ls >= 0 && ss < 0:
		s.ssit[si] = ls
	case ls < 0 && ss >= 0:
		s.ssit[li] = ss
	case ls < ss:
		// Both assigned: merge to the smaller id (declining joins).
		s.ssit[si] = ls
	case ss < ls:
		s.ssit[li] = ss
	}
}

// SquashTag invalidates LFST entries naming stores younger than or equal
// to tag (called on pipeline squash so dead stores are not waited on).
func (s *StoreSets) SquashTag(tag int64) {
	for i, t := range s.lfst {
		if t >= tag {
			s.lfst[i] = -1
		}
	}
}
