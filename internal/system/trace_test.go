package system

import (
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

// runTraced runs one configuration with a CountSink attached and returns
// the sink and the run result.
func runTraced(t *testing.T, cfg config.Machine, workName string, cores int, insts uint64) (*trace.CountSink, Result) {
	t.Helper()
	work, ok := workload.ByName(workName)
	if !ok {
		t.Fatalf("unknown workload %q", workName)
	}
	cs := &trace.CountSink{}
	opt := Options{Cores: cores, Seed: 42, DMAInterval: 4000, DMABurst: 2,
		Trace: trace.New(cs)}
	s := New(cfg, work, opt)
	return cs, s.Run(insts, opt)
}

// checkAgreement asserts the DESIGN.md §6 contract: each lifecycle event
// kind's count equals the end-of-run counter it mirrors.
func checkAgreement(t *testing.T, cs *trace.CountSink, res Result) {
	t.Helper()
	p := res.Pipe
	if got, want := cs.Count(trace.KLoadIssue), p.DemandLoadAccesses+p.ForwardedLoads; got != want {
		t.Errorf("KLoadIssue count = %d, want demand+forwarded = %d", got, want)
	}
	if got, want := cs.Count(trace.KReplay), p.ReplayAccesses; got != want {
		t.Errorf("KReplay count = %d, want ReplayAccesses = %d", got, want)
	}
	if got, want := cs.Count(trace.KFilterDecision), res.Counters.Get("replay.loads_seen"); got != want {
		t.Errorf("KFilterDecision count = %d, want replay.loads_seen = %d", got, want)
	}
	if got, want := cs.Count(trace.KValueMismatch), res.Counters.Get("replay.mismatches"); got != want {
		t.Errorf("KValueMismatch count = %d, want replay.mismatches = %d", got, want)
	}
	squashes := p.SquashesMispredict + p.SquashesRAW + p.SquashesInval +
		p.SquashesLoadIssue + p.SquashesReplayRAW + p.SquashesReplayCons + p.SquashesVPred
	if got := cs.Count(trace.KSquash); got != squashes {
		t.Errorf("KSquash count = %d, want sum of squash counters = %d", got, squashes)
	}
	if got, want := cs.CountReason(trace.RSquashMispredict), p.SquashesMispredict; got != want {
		t.Errorf("mispredict squash events = %d, counter = %d", got, want)
	}
}

func TestTraceCounterAgreementReplayAll(t *testing.T) {
	cs, res := runTraced(t, config.Replay(core.ReplayAll), "gzip", 1, 20000)
	checkAgreement(t, cs, res)
	if cs.Count(trace.KReplay) == 0 {
		t.Error("replay-all run emitted no KReplay events")
	}
	if cs.CountReason(trace.RReplayAll) != cs.Count(trace.KFilterDecision) {
		t.Error("replay-all: every filter decision should carry RReplayAll")
	}
}

func TestTraceCounterAgreementBaseline(t *testing.T) {
	cs, res := runTraced(t, config.Baseline(), "gzip", 1, 20000)
	checkAgreement(t, cs, res)
	// The baseline has no replay engine: no replay-lifecycle events.
	if cs.Count(trace.KFilterDecision) != 0 || cs.Count(trace.KReplay) != 0 {
		t.Error("baseline run must not emit replay-lifecycle events")
	}
	if cs.Count(trace.KDMAWrite) != res.Counters.Get("bus.dma_writes") &&
		cs.Count(trace.KDMAWrite) == 0 {
		t.Error("DMA-active run emitted no KDMAWrite events")
	}
}

func TestTraceCounterAgreementMultiprocessor(t *testing.T) {
	cs, res := runTraced(t, config.Replay(core.NoRecentSnoop), "ocean", 4, 4000)
	checkAgreement(t, cs, res)
	if cs.Count(trace.KSnoopInval) == 0 {
		t.Error("4-core coherent run emitted no KSnoopInval events")
	}
	if cs.Count(trace.KExtFill) == 0 {
		t.Error("4-core coherent run emitted no KExtFill events")
	}
}

func TestTraceCounterAgreementVPred(t *testing.T) {
	cs, res := runTraced(t, config.ReplayVP(core.NoRecentSnoop), "gzip", 1, 20000)
	checkAgreement(t, cs, res)
}

func TestSnapshotSampling(t *testing.T) {
	work, _ := workload.ByName("gzip")
	cs := &trace.CountSink{}
	opt := Options{Cores: 1, Seed: 42, SnapshotInterval: 500, Trace: trace.New(cs)}
	s := New(config.Replay(core.ReplayAll), work, opt)
	s.Run(20000, opt)
	if s.Metrics == nil {
		t.Fatal("SnapshotInterval > 0 must create System.Metrics")
	}
	n := uint64(len(s.Metrics.Snapshots))
	if n == 0 {
		t.Fatal("no snapshots recorded")
	}
	if got := s.Metrics.ROB[0].Count(); got != n {
		t.Errorf("ROB histogram has %d samples, want one per snapshot (%d)", got, n)
	}
	// The occupancy counter events mirror the snapshot instants 1:1.
	for _, k := range []trace.Kind{trace.KROBOcc, trace.KLQOcc, trace.KSQOcc} {
		if got := cs.Count(k); got != n {
			t.Errorf("%v count = %d, want %d (one per snapshot)", k, got, n)
		}
	}
	// Interval deltas must sum back to the cumulative totals at the last
	// sample instant (conservation: nothing double-counted or lost).
	var committed uint64
	for _, snap := range s.Metrics.Snapshots {
		committed += snap.Deltas["committed"]
	}
	if committed == 0 || committed > s.Cores[0].Stats.Committed {
		t.Errorf("summed committed deltas = %d, want in (0, %d]",
			committed, s.Cores[0].Stats.Committed)
	}
}

func TestGraphEdgeTracing(t *testing.T) {
	work, _ := workload.ByName("ocean")
	cs := &trace.CountSink{}
	opt := Options{Cores: 2, Seed: 42, TrackConsistency: true, Trace: trace.New(cs)}
	s := New(config.Replay(core.ReplayAll), work, opt)
	s.Run(2000, opt)
	_, cyc, g := s.CheckSC()
	if cyc {
		t.Fatal("replay-all execution must be sequentially consistent")
	}
	if got, want := cs.Count(trace.KGraphEdge), uint64(g.EdgeCount); got != want {
		t.Errorf("KGraphEdge count = %d, want EdgeCount = %d", got, want)
	}
	if cs.CountReason(trace.REdgePO) == 0 {
		t.Error("constraint graph build emitted no program-order edges")
	}
}
