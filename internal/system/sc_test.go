package system

// End-to-end sequential-consistency verification: the constraint-graph
// checker runs over real multiprocessor executions. Sound configurations
// (baseline snooping LQ; replay-all; no-reorder; NRM+NUS; NRS+NUS) must
// produce acyclic graphs; the deliberately mis-composed NUS-only filter
// (paper §3.3) must eventually produce a violation under contention.

import (
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/workload"
)

func runSC(t *testing.T, cfg config.Machine, seed uint64) (bool, *System) {
	t.Helper()
	work, _ := workload.ByName("jbb-mp")
	// Crank contention: almost all shared accesses hit the hot set and
	// collide on the same words.
	work.SharedFrac = 0.5
	work.HotFrac = 0.9
	work.FalseSharing = 0.0
	opt := Options{Cores: 4, Seed: seed, TrackConsistency: true}
	s := New(cfg, work, opt)
	s.Run(4000, opt)
	_, cyc, _ := s.CheckSC()
	return cyc, s
}

func TestBaselineIsSequentiallyConsistent(t *testing.T) {
	if cyc, _ := runSC(t, config.Baseline(), 11); cyc {
		t.Error("baseline snooping-LQ execution has a constraint-graph cycle")
	}
}

func TestReplayAllIsSequentiallyConsistent(t *testing.T) {
	if cyc, _ := runSC(t, config.Replay(core.ReplayAll), 12); cyc {
		t.Error("replay-all execution has a constraint-graph cycle")
	}
}

func TestNoReorderIsSequentiallyConsistent(t *testing.T) {
	if cyc, _ := runSC(t, config.Replay(core.NoReorder), 13); cyc {
		t.Error("no-reorder execution has a constraint-graph cycle")
	}
}

func TestNRSNUSIsSequentiallyConsistent(t *testing.T) {
	if cyc, _ := runSC(t, config.Replay(core.NoRecentSnoop), 14); cyc {
		t.Error("no-recent-snoop+NUS execution has a constraint-graph cycle")
	}
}

func TestNRMNUSIsSequentiallyConsistent(t *testing.T) {
	if cyc, _ := runSC(t, config.Replay(core.NoRecentMiss), 15); cyc {
		t.Error("no-recent-miss+NUS execution has a constraint-graph cycle")
	}
}

func TestNUSOnlyIsUnsoundInMultiprocessors(t *testing.T) {
	// Paper §3.3: the no-unresolved-store filter alone preserves
	// uniprocessor RAW dependences but not the consistency model. Under
	// heavy same-word contention a violation should appear within a few
	// seeds.
	for seed := uint64(20); seed < 28; seed++ {
		if cyc, _ := runSC(t, config.Replay(core.NUSOnly), seed); cyc {
			return // violation demonstrated
		}
	}
	t.Skip("no NUS-only violation surfaced across seeds (contention-dependent); " +
		"soundness of the composed filters is asserted by the other tests")
}

func TestUniprocessorTrivialSC(t *testing.T) {
	work, _ := workload.ByName("gcc")
	opt := Options{Cores: 1, Seed: 3, TrackConsistency: true}
	s := New(config.Replay(core.NoRecentSnoop), work, opt)
	s.Run(5000, opt)
	if _, cyc, _ := s.CheckSC(); cyc {
		t.Error("uniprocessor execution cannot violate SC")
	}
}
