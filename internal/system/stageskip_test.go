// Tests for the per-stage readiness skip layer (DESIGN.md §14). The
// contract mirrors the quiescence fast-forward's: a run with stage
// skipping enabled must produce exactly the same Result — counters,
// pipeline statistics, cycle count, trace event counts, metrics
// snapshots — as the same run with every stage scanned every cycle,
// across the whole machine registry and at every supported core count.

package system

import (
	"reflect"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/pipeline"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

// skipPair runs the same (machine, workload, cores, seed) twice — once
// with stage skipping enabled (the default) and once with it disabled —
// and returns both systems and their run results. Fast-forward stays at
// its default in both runs: the layers must compose.
func skipPair(t *testing.T, cfg config.Machine, workName string, cores int, insts uint64, snapshot int64) (on, off *System, resOn, resOff Result, csOn, csOff *trace.CountSink) {
	t.Helper()
	work, ok := workload.ByName(workName)
	if !ok {
		t.Fatalf("unknown workload %q", workName)
	}
	run := func(noSkip bool) (*System, Result, *trace.CountSink) {
		cs := &trace.CountSink{}
		opt := Options{
			Cores: cores, Seed: 42,
			DMAInterval: 4000, DMABurst: 2,
			SnapshotInterval: snapshot,
			NoStageSkip:      noSkip,
			Trace:            trace.New(cs),
		}
		s := New(cfg, work, opt)
		res := s.Run(insts, opt)
		return s, res, cs
	}
	on, resOn, csOn = run(false)
	off, resOff, csOff = run(true)
	return
}

// assertSkipIdentical asserts the two runs of a pair are bit-identical.
func assertSkipIdentical(t *testing.T, on, off *System, resOn, resOff Result, csOn, csOff *trace.CountSink) {
	t.Helper()
	if off.StageSkipStats() != (pipeline.SkipStats{}) {
		t.Errorf("disabled run reports stage-skip activity: %+v", off.StageSkipStats())
	}
	if on.CycleNum != off.CycleNum {
		t.Errorf("CycleNum diverged: skip=%d plain=%d", on.CycleNum, off.CycleNum)
	}
	if !reflect.DeepEqual(resOn, resOff) {
		t.Errorf("Result diverged:\n skip:  %+v\n plain: %+v", resOn, resOff)
	}
	if !reflect.DeepEqual(resOn.Counters, resOff.Counters) {
		t.Errorf("Counters diverged:\n skip:  %v\n plain: %v", resOn.Counters, resOff.Counters)
	}
	if csOn.Total() != csOff.Total() {
		t.Errorf("trace event totals diverged: skip=%d plain=%d", csOn.Total(), csOff.Total())
	}
	for _, k := range []trace.Kind{
		trace.KLoadIssue, trace.KFilterDecision, trace.KReplay,
		trace.KValueMismatch, trace.KSquash, trace.KSnoopInval,
		trace.KExtFill, trace.KDMAWrite, trace.KROBOcc, trace.KWatchdog,
	} {
		if a, b := csOn.Count(k), csOff.Count(k); a != b {
			t.Errorf("trace kind %v count diverged: skip=%d plain=%d", k, a, b)
		}
	}
	if !reflect.DeepEqual(on.Metrics, off.Metrics) {
		t.Errorf("metrics snapshots diverged")
	}
}

// TestStageSkipBitIdenticalRegistry sweeps every registered machine:
// per-stage skipping must be invisible in every output. mcf's mix
// exercises loads, stores, branches, and (on the replay machines) the
// replay scan cursor.
func TestStageSkipBitIdenticalRegistry(t *testing.T) {
	for _, name := range config.Names() {
		cfg, ok := config.ByName(name)
		if !ok {
			t.Fatalf("registry lists unknown machine %q", name)
		}
		t.Run(name, func(t *testing.T) {
			on, off, resOn, resOff, csOn, csOff := skipPair(t, cfg, "mcf", 1, 4000, 0)
			assertSkipIdentical(t, on, off, resOn, resOff, csOn, csOff)
		})
	}
}

// TestStageSkipBitIdenticalMulti covers the lock-step multiprocessor at
// 4 and at the full 16-way configuration, snapshot sampling, and the
// fast-forward-heavy spin shape where both skip layers interleave.
func TestStageSkipBitIdenticalMulti(t *testing.T) {
	cases := []struct {
		name, machine, work string
		cores               int
		insts               uint64
		snapshot            int64
	}{
		{"ocean-4", "baseline", "ocean", 4, 1500, 0},
		{"ocean-snoop-4", "no-recent-snoop", "ocean", 4, 1500, 0},
		{"spin-mp-16", "baseline", "spin-mp", 16, 600, 0},
		{"gzip-snapshots", "baseline", "gzip", 1, 6000, 512},
		{"spin-ff-interleaved", "baseline", "spin", 1, 3000, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, ok := config.ByName(tc.machine)
			if !ok {
				t.Fatalf("unknown machine %q", tc.machine)
			}
			on, off, resOn, resOff, csOn, csOff := skipPair(t, cfg, tc.work, tc.cores, tc.insts, tc.snapshot)
			assertSkipIdentical(t, on, off, resOn, resOff, csOn, csOff)
		})
	}
}

// TestStageSkipEngagesOnGzip asserts the readiness layer actually
// elides scans on the busy high-IPC workload it was built for — a
// guard against the quiet flags silently degrading into "never set".
func TestStageSkipEngagesOnGzip(t *testing.T) {
	cfg, _ := config.ByName("baseline")
	on, off, resOn, resOff, csOn, csOff := skipPair(t, cfg, "gzip", 1, 20000, 0)
	assertSkipIdentical(t, on, off, resOn, resOff, csOn, csOff)
	sk := on.StageSkipStats()
	if sk.Total() == 0 {
		t.Fatalf("stage skip never engaged on gzip: %+v", sk)
	}
	cc := uint64(on.CycleNum)
	for _, st := range []struct {
		name string
		n    uint64
	}{
		{"writeback", sk.Writeback},
		{"capture", sk.Capture},
		{"commit", sk.Commit},
		{"issue", sk.Issue},
	} {
		if st.n == 0 {
			t.Errorf("stage %s never skipped on gzip", st.name)
		}
		if st.n >= cc {
			t.Errorf("stage %s skip count %d exceeds cycles %d", st.name, st.n, cc)
		}
	}
}

// TestStageSkipReplayCursor asserts the replay machines' settled-prefix
// cursor fires: on a replay-all machine every committed load replays,
// and whole-window-settled skips must still occur between bursts.
func TestStageSkipReplayCursor(t *testing.T) {
	cfg, ok := config.ByName("replay-all")
	if !ok {
		t.Skip("no replay-all machine registered")
	}
	on, off, resOn, resOff, csOn, csOff := skipPair(t, cfg, "gzip", 1, 20000, 0)
	assertSkipIdentical(t, on, off, resOn, resOff, csOn, csOff)
	if sk := on.StageSkipStats(); sk.Replay == 0 {
		t.Errorf("replay scan never skipped on replay-all/gzip: %+v", sk)
	}
}
