package system

import (
	"fmt"
	"strings"

	"vbmo/internal/pipeline"
	"vbmo/internal/trace"
)

// Watchdog internals: storm detection integrates per-core replay-squash
// deltas over fixed windows; a core whose delta crosses the threshold
// has fetch throttled with exponential backoff (a squash storm makes no
// forward progress worth its power — the paper's livelock discussion
// motivates damping refetch).
const (
	// wdStormWindow is the storm-integration window in cycles.
	wdStormWindow = 1024
	// wdStormThreshold is replay squashes per window that count as a
	// storm (one per ~32 cycles sustained).
	wdStormThreshold = 32
	// wdBackoffBase / wdBackoffMax bound the throttle: the first storm
	// stalls fetch wdBackoffBase cycles, doubling per consecutive stormy
	// window up to wdBackoffMax.
	wdBackoffBase = 64
	wdBackoffMax  = 8192
	// wdDumpROB bounds the per-core ROB dump in a deadlock report.
	wdDumpROB = 12
)

// DeadlockReport is the watchdog's structured account of a run that
// stopped committing.
type DeadlockReport struct {
	// Cycle is when the watchdog fired; LastCommitCycle the last cycle
	// any core committed; Window the configured no-commit threshold.
	Cycle           int64 `json:"cycle"`
	LastCommitCycle int64 `json:"last_commit_cycle"`
	Window          int64 `json:"window"`
	// Cores holds one state dump per core (ROB head, queue depths).
	Cores []pipeline.StateDump `json:"cores"`
}

// String renders the report for logs and panics.
func (r *DeadlockReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: no instruction committed machine-wide for %d cycles (cycle %d, last commit at %d)",
		r.Window, r.Cycle, r.LastCommitCycle)
	for _, c := range r.Cores {
		b.WriteString("\n  ")
		b.WriteString(c.String())
	}
	return b.String()
}

// WatchdogStats summarizes watchdog activity over a run.
type WatchdogStats struct {
	// Storms counts stormy (threshold-crossing) core-windows; Throttles
	// counts throttle applications (== Storms today, kept separate so a
	// future grace policy can skip the first).
	Storms    uint64 `json:"storms"`
	Throttles uint64 `json:"throttles"`
	// MaxBackoff is the largest backoff applied to any core.
	MaxBackoff int64 `json:"max_backoff,omitempty"`
}

// watchdog tracks machine-wide commit progress and per-core replay
// squash rates. One instance per system; stepped from Advance.
type watchdog struct {
	window        int64 // no-commit cycles before declaring deadlock
	lastTotal     uint64
	lastCommit    int64 // cycle of the last observed commit-count change
	nextStormScan int64
	lastSquash    []uint64 // per-core replay-squash count at window start
	backoff       []int64  // per-core current backoff (0 = calm)
	stats         WatchdogStats
}

func newWatchdog(window int64, cores int) *watchdog {
	return &watchdog{
		window:        window,
		nextStormScan: wdStormWindow,
		lastSquash:    make([]uint64, cores),
		backoff:       make([]int64, cores),
	}
}

// check observes one elapsed cycle; it returns true when the run must
// stop (deadlock declared, report stored on the system).
func (w *watchdog) check(s *System) bool {
	var total uint64
	for _, c := range s.Cores {
		total += c.Stats.Committed
	}
	if total != w.lastTotal {
		w.lastTotal = total
		w.lastCommit = s.CycleNum
	} else if s.CycleNum-w.lastCommit >= w.window {
		rep := &DeadlockReport{
			Cycle:           s.CycleNum,
			LastCommitCycle: w.lastCommit,
			Window:          w.window,
		}
		for _, c := range s.Cores {
			rep.Cores = append(rep.Cores, c.Dump(wdDumpROB))
		}
		s.Deadlock = rep
		if s.Trace != nil {
			s.Trace.Emit(trace.Event{Cycle: s.CycleNum, Core: -1,
				Kind: trace.KWatchdog, Reason: trace.RWatchdogDeadlock,
				Value: uint64(s.CycleNum - w.lastCommit)})
		}
		return true
	}

	if s.CycleNum >= w.nextStormScan {
		w.nextStormScan += wdStormWindow
		for i, c := range s.Cores {
			sq := c.ReplaySquashes()
			delta := sq - w.lastSquash[i]
			w.lastSquash[i] = sq
			if delta >= wdStormThreshold {
				// Stormy window: double the backoff and stall fetch.
				if w.backoff[i] == 0 {
					w.backoff[i] = wdBackoffBase
				} else if w.backoff[i] < wdBackoffMax {
					w.backoff[i] *= 2
				}
				w.stats.Storms++
				w.stats.Throttles++
				if w.backoff[i] > w.stats.MaxBackoff {
					w.stats.MaxBackoff = w.backoff[i]
				}
				c.Throttle(s.CycleNum + w.backoff[i])
				if s.Trace != nil {
					s.Trace.Emit(trace.Event{Cycle: s.CycleNum,
						Core: int32(i), Kind: trace.KWatchdog,
						Reason: trace.RWatchdogStorm,
						Value:  uint64(w.backoff[i])})
				}
			} else {
				w.backoff[i] = 0 // calm window: forgive
			}
		}
	}
	return false
}

// Watchdog returns the watchdog's activity stats (zero when disabled).
func (s *System) Watchdog() WatchdogStats {
	if s.wd == nil {
		return WatchdogStats{}
	}
	return s.wd.stats
}
