// Package system assembles complete machines: one or more pipeline
// cores over a shared memory image, a coherence bus with a DMA agent,
// and the lock-step cycle loop. It also hosts the machine-equivalence
// oracle used by the uniprocessor tests and the hooks the
// constraint-graph checker consumes.
package system

import (
	"fmt"
	"sort"

	"vbmo/internal/cache"
	"vbmo/internal/coherence"
	"vbmo/internal/config"
	"vbmo/internal/consistency"
	"vbmo/internal/fault"
	"vbmo/internal/isa"
	"vbmo/internal/pipeline"
	"vbmo/internal/prog"
	"vbmo/internal/stats"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

// Options configure a system build.
type Options struct {
	// Cores is the processor count (1 = uniprocessor).
	Cores int
	// Seed drives workload generation, data placement and the memory
	// image background.
	Seed uint64
	// DMAInterval enables the coherent DMA agent (0 disables). The
	// paper's uniprocessor observes snoops only from coherent I/O.
	DMAInterval int64
	// DMABurst is blocks per DMA burst.
	DMABurst int
	// MaxCycles bounds the run (0 = no bound).
	MaxCycles int64
	// RecordCommits retains every core's committed records (needed by
	// the consistency checker; costs memory).
	RecordCommits bool
	// TrackConsistency enables the shadow image and per-word version
	// chains so CheckSC can build the constraint graph. Implies
	// RecordCommits.
	TrackConsistency bool
	// Trace, when non-nil, is threaded through every core, the bus, and
	// the checker: the machine emits the DESIGN.md §6 event stream into
	// it. Nil (the default) keeps every hot path on its zero-cost
	// disabled branch.
	Trace *trace.Tracer
	// SnapshotInterval, when positive, samples per-core metrics
	// snapshots (counter deltas + ROB/LQ/SQ occupancy histograms) every
	// SnapshotInterval cycles into System.Metrics.
	SnapshotInterval int64
	// OnCycle, when non-nil, is invoked once per cycle before the cores
	// step — the perturbation hook litmus sweeps use to inject coherence
	// contention (Bus.Probe) or other timing noise mid-run.
	OnCycle func(cycle int64)
	// Fault, when enabled, builds a deterministic fault injector
	// (internal/fault) and threads it through every core and the
	// snoop/fill delivery paths. Nil or zero-rate keeps every hook on
	// its zero-cost disabled branch (DESIGN.md §10).
	Fault *fault.Config
	// NoFastForward disables the quiescence cycle-skipping fast-forward
	// (DESIGN.md §12). The skip is bit-identical to plain stepping, so
	// this exists for A/B equivalence tests and measurement, not for
	// correctness. Fast-forward is also suspended automatically whenever
	// OnCycle is set: a per-cycle hook must observe every cycle.
	NoFastForward bool
	// NoStageSkip disables the intra-cycle stage-skip readiness layer
	// (DESIGN.md §14): every core runs every stage scan every cycle.
	// Like NoFastForward this is an A/B escape hatch — skipping is
	// bit-identical to full stepping — not a correctness switch.
	NoStageSkip bool
	// WatchdogCycles, when positive, arms the forward-progress watchdog:
	// if no core commits an instruction for this many consecutive
	// cycles, the run stops and System.Deadlock holds a structured
	// report with per-core ROB/LSQ dumps. It also arms the
	// replay-squash-storm detector (exponential-backoff fetch
	// throttling). 0 (the default) disables both and leaves the cycle
	// loop untouched.
	WatchdogCycles int64
}

// System is a built machine: cores in lock-step over a shared image.
type System struct {
	Cfg      config.Machine
	Work     workload.Params
	Cores    []*pipeline.Core
	Image    *prog.Image
	Bus      *coherence.Bus
	DMA      *coherence.DMA
	Program  *prog.Program
	Shadow   *consistency.Shadow
	CycleNum int64
	// Commits[c] holds core c's committed records when RecordCommits
	// was set.
	Commits [][]prog.Committed
	// Trace is the event tracer the machine was built with (nil when
	// tracing is disabled).
	Trace *trace.Tracer
	// Metrics accumulates interval snapshots when Options.SnapshotInterval
	// was positive (nil otherwise).
	Metrics *trace.MetricsLog
	// snapInterval is the snapshot period in cycles (0 = disabled).
	snapInterval int64
	// onCycle is the per-cycle perturbation hook (nil = disabled).
	onCycle func(cycle int64)
	// Faults is the fault injector the machine was built with (nil when
	// fault injection is disabled).
	Faults *fault.Injector
	// Deadlock holds the watchdog's report when a run was stopped for
	// lack of forward progress (nil otherwise).
	Deadlock *DeadlockReport
	// wd is the armed watchdog (nil when disabled).
	wd *watchdog
	// ff accumulates quiescence fast-forward accounting (quiesce.go).
	ff FFStats
}

// New builds a system running the given workload on the given machine
// configuration.
func New(cfg config.Machine, work workload.Params, opt Options) *System {
	if opt.Cores <= 0 {
		opt.Cores = 1
	}
	if workload.IOBase != coherence.IOBase {
		panic("system: workload and coherence IOBase constants diverged")
	}
	program := workload.Generate(work, opt.Seed)
	inits := make([]prog.ArchState, opt.Cores)
	for c := range inits {
		inits[c] = workload.InitState(work, c, opt.Seed)
	}
	s := NewCustom(cfg, program, inits, opt)
	s.Work = work
	return s
}

// NewCustom builds a system running a hand-built program with explicit
// per-core initial states (one per core). Tests use this to reproduce
// the paper's Figure 1 scenarios exactly.
func NewCustom(cfg config.Machine, program *prog.Program, inits []prog.ArchState, opt Options) *System {
	if opt.Cores <= 0 {
		opt.Cores = len(inits)
	}
	if opt.Cores > config.MaxCores {
		panic(fmt.Sprintf("system: %d cores exceeds config.MaxCores (%d)",
			opt.Cores, config.MaxCores))
	}
	img := prog.NewImage(opt.Seed)
	bus := coherence.NewBus(opt.Cores, cfg.MemLatency)
	s := &System{
		Cfg:          cfg,
		Image:        img,
		Bus:          bus,
		Program:      program,
		Commits:      make([][]prog.Committed, opt.Cores),
		Trace:        opt.Trace,
		snapInterval: opt.SnapshotInterval,
		onCycle:      opt.OnCycle,
	}
	bus.Trace = opt.Trace
	bus.Now = func() int64 { return s.CycleNum }
	if opt.SnapshotInterval > 0 {
		s.Metrics = trace.NewMetricsLog(opt.Cores, opt.SnapshotInterval,
			cfg.ROBSize, cfg.LQSize, cfg.SQSize)
	}
	if opt.TrackConsistency {
		opt.RecordCommits = true
		s.Shadow = consistency.NewShadow(true)
	}
	if opt.Fault.Enabled() {
		s.Faults = fault.NewInjector(*opt.Fault, opt.Trace)
	}
	if opt.WatchdogCycles > 0 {
		s.wd = newWatchdog(opt.WatchdogCycles, opt.Cores)
	}
	for c := 0; c < opt.Cores; c++ {
		hier := cache.NewHierarchy(c, cfg.Hier, bus)
		bus.AttachPeer(c, hier)
		core := pipeline.New(c, cfg, program, img, hier, inits[c])
		core.SetStageSkip(!opt.NoStageSkip)
		// External invalidations reach the load queue (baseline) or the
		// no-recent-snoop filter; castouts must be treated identically
		// so snoop visibility is never lost (paper §3.1).
		onInval := core.HandleExternalInvalidation
		onFill := core.HandleExternalFill
		if s.Faults != nil && s.Faults.MessageFaults() {
			// Message faults interpose between delivery and the core's
			// ordering machinery: the cache state change already happened
			// (SnoopInvalidate / the fill itself), only the notification
			// is dropped or deferred. Deferred deliveries drain at the
			// top of each cycle (Advance), in jittered-due order, which
			// is what reorders back-to-back messages.
			onInval, onFill = s.wrapMessageFaults(core)
		}
		bus.OnInvalidation(c, onInval)
		hier.OnL3Evict = onInval
		hier.OnFill = onFill
		core.SetFaults(s.Faults)
		core.Shadow = s.Shadow
		core.SetTracer(opt.Trace)
		if opt.RecordCommits {
			idx := c
			core.CommitHook = func(r prog.Committed) {
				s.Commits[idx] = append(s.Commits[idx], r)
			}
		}
		s.Cores = append(s.Cores, core)
	}
	if opt.DMAInterval > 0 {
		burst := opt.DMABurst
		if burst <= 0 {
			burst = 2
		}
		s.DMA = &coherence.DMA{
			Bus: bus, Image: img, Blocks: workload.IOBlocks,
			Interval: opt.DMAInterval, Burst: burst,
		}
		if s.Shadow != nil {
			var dmaSeq uint64
			s.DMA.ShadowWrite = func(addr, value uint64) {
				dmaSeq++
				s.Shadow.Write(addr, consistency.MakeWriter(consistency.DMAProc, dmaSeq), value)
			}
		}
	}
	return s
}

// wrapMessageFaults returns invalidation/fill delivery callbacks for one
// core that route through the fault injector: a message may be dropped,
// deferred (redelivered by Advance at its jittered due cycle), or passed
// through untouched.
func (s *System) wrapMessageFaults(core *pipeline.Core) (onInval, onFill func(block uint64)) {
	id := core.ID
	flt := s.Faults
	if flt == nil {
		// Only reachable if a caller ever bypasses the install-site
		// check; the returned closures must still be safe to invoke.
		return core.HandleExternalInvalidation, core.HandleExternalFill
	}
	onInval = func(block uint64) {
		if dropped, extra := flt.SnoopFate(id, s.CycleNum); dropped {
			return
		} else if extra > 0 {
			flt.Defer(s.CycleNum+extra, func() { core.HandleExternalInvalidation(block) })
			return
		}
		core.HandleExternalInvalidation(block)
	}
	onFill = func(block uint64) {
		if dropped, extra := flt.FillFate(id, s.CycleNum); dropped {
			return
		} else if extra > 0 {
			flt.Defer(s.CycleNum+extra, func() { core.HandleExternalFill(block) })
			return
		}
		core.HandleExternalFill(block)
	}
	return onInval, onFill
}

// CheckSC builds the constraint graph over the recorded committed
// memory operations and tests it for a cycle. It requires
// TrackConsistency. It returns the offending operation when the
// execution is not sequentially consistent.
func (s *System) CheckSC() (consistency.Op, bool, *consistency.Graph) {
	procs, chains := s.buildOps()
	var onEdge func(from, to int32, kind consistency.EdgeKind)
	var g *consistency.Graph
	if s.Trace != nil {
		// Edge-insertion events make the checker's verdict auditable:
		// each edge lands in the trace as a KGraphEdge whose Tag/Aux are
		// the endpoint node indices and whose Reason names the dependence
		// order (DESIGN.md §6).
		onEdge = func(from, to int32, kind consistency.EdgeKind) {
			why := trace.REdgePO
			switch kind {
			case consistency.EdgeRAW:
				why = trace.REdgeRAW
			case consistency.EdgeWAW:
				why = trace.REdgeWAW
			case consistency.EdgeWAR:
				why = trace.REdgeWAR
			}
			s.Trace.Emit(trace.Event{Cycle: s.CycleNum, Core: -1,
				Kind: trace.KGraphEdge, Reason: why,
				Tag: int64(from), Aux: uint64(to)})
		}
	}
	g = consistency.BuildWith(procs, chains, s.Image.Background, onEdge)
	op, cyc := g.FindCycle()
	return op, cyc, g
}

// CheckCoherence verifies per-location sequential consistency (cache
// coherence) — the guarantee the insulated and hybrid load-queue
// designs provide on weakly-ordered machines (paper §2.1).
func (s *System) CheckCoherence() (consistency.Op, bool, *consistency.Graph) {
	procs, chains := s.buildOps()
	g := consistency.BuildPerLocation(procs, chains, s.Image.Background)
	op, cyc := g.FindCycle()
	return op, cyc, g
}

// Ops exposes the recorded committed memory operations and per-word
// version chains in the constraint checker's input form, so callers
// (the litmus subsystem) can build graphs with their own background
// content — litmus tests pre-initialize shared memory, so the initial
// value of a tested word is the test's, not the image hash's. Requires
// TrackConsistency.
func (s *System) Ops() ([][]consistency.Op, map[uint64][]consistency.Versioned) {
	return s.buildOps()
}

// Prewarm establishes a read copy of addr's block in core's hierarchy
// through the normal fill path (the bus directory registers the sharer,
// so later invalidations are still delivered). Litmus sweeps use it to
// start runs from a warmed-cache state.
func (s *System) Prewarm(core int, addr uint64) {
	s.Cores[core].Hierarchy().Prewarm(addr)
}

func (s *System) buildOps() ([][]consistency.Op, map[uint64][]consistency.Versioned) {
	if s.Shadow == nil {
		panic("system: consistency checks require Options.TrackConsistency")
	}
	procs := make([][]consistency.Op, len(s.Cores))
	for c, stream := range s.Commits {
		idx := 0
		for _, rec := range stream {
			switch rec.Op.Class() {
			case isa.ClassLoad:
				procs[c] = append(procs[c], consistency.Op{
					Proc: c, Index: idx, Kind: consistency.OpLoad,
					Addr: rec.Addr &^ 7, Value: rec.Result,
					ReadsFrom: consistency.Writer(rec.Writer),
				})
				idx++
			case isa.ClassStore:
				procs[c] = append(procs[c], consistency.Op{
					Proc: c, Index: idx, Kind: consistency.OpStore,
					Addr: rec.Addr &^ 7, Value: rec.Result,
					Self: consistency.Writer(rec.Writer),
				})
				idx++
			}
		}
	}
	chains := make(map[uint64][]consistency.Versioned)
	for _, addr := range allAddrs(procs) {
		if ch := s.Shadow.Chain(addr); len(ch) > 0 {
			chains[addr] = ch
		}
	}
	return procs, chains
}

// allAddrs returns the distinct word addresses touched by any stream,
// in ascending order, so downstream consumers never see map order.
func allAddrs(procs [][]consistency.Op) []uint64 {
	seen := make(map[uint64]struct{})
	for _, stream := range procs {
		for _, op := range stream {
			seen[op.Addr] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(seen))
	for addr := range seen {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StageSkipStats sums the per-core stage-skip counters (DESIGN.md §14).
// Like FFStats they live outside Result, so skipping stays invisible to
// the bit-identity contract while its rates remain observable.
func (s *System) StageSkipStats() pipeline.SkipStats {
	var t pipeline.SkipStats
	for _, c := range s.Cores {
		t.Add(c.Skip)
	}
	return t
}

// ResetStats zeroes all statistics (pipeline, caches, predictors, bus)
// after a warmup period; microarchitectural state is preserved.
func (s *System) ResetStats() {
	for _, c := range s.Cores {
		c.ResetStats()
	}
	s.Bus.Stats = coherence.Stats{}
	for i := range s.Commits {
		s.Commits[i] = nil
	}
}

// Run advances the system until every core has committed at least
// target instructions (or MaxCycles elapses). It returns the aggregate
// result.
func (s *System) Run(target uint64, opt Options) Result {
	s.Advance(target, opt)
	return s.Result()
}

// Advance is Run's cycle loop without the summary: it steps the system
// — per-cycle hook, DMA tick, lock-step core stepping, snapshot
// sampling — until every core has committed at least target
// instructions (cumulative since the last ResetStats) or MaxCycles
// elapses. Benchmarks and the allocation-regression tests use it to
// measure steady-state windows without Result's allocations.
//
//vbr:hotpath
func (s *System) Advance(target uint64, opt Options) {
	maxCycles := opt.MaxCycles
	if maxCycles == 0 {
		maxCycles = int64(target)*200 + 1_000_000
	}
	// The quiescence fast-forward (quiesce.go) is on by default — it is
	// bit-identical to plain stepping — but yields to the per-cycle hook,
	// which must observe every cycle.
	ff := !opt.NoFastForward && s.onCycle == nil
	prevTotal := ^uint64(0) // sentinel: never matches a real total
	idle := 0
	for {
		done := true
		var total uint64
		for _, c := range s.Cores {
			total += c.Stats.Committed
			if c.Stats.Committed < target {
				done = false
			}
		}
		if done || s.CycleNum >= maxCycles {
			break
		}
		if total != prevTotal {
			prevTotal = total
			idle = 0
		} else {
			idle++
		}
		if ff && idle >= ffProbeIdle && s.tryFastForward(target, maxCycles) {
			continue
		}
		if s.onCycle != nil {
			s.onCycle(s.CycleNum)
		}
		if s.Faults != nil {
			s.Faults.DeliverDue(s.CycleNum)
		}
		if s.DMA != nil {
			s.DMA.Tick(s.CycleNum)
		}
		for _, c := range s.Cores {
			if c.Stats.Committed < target {
				c.Step()
			}
		}
		s.CycleNum++
		if s.wd != nil && s.wd.check(s) {
			break // no forward progress: s.Deadlock holds the report
		}
		if s.snapInterval > 0 && s.CycleNum%s.snapInterval == 0 {
			s.sample()
		}
	}
}

// sample records one metrics snapshot per core (occupancies observed
// now, counter deltas since the previous snapshot) and, when a tracer
// is attached, mirrors the occupancies into the event stream as
// counter-track events so timeline viewers can plot them.
func (s *System) sample() {
	for i, c := range s.Cores {
		rob, lq, sq := c.ROBLen(), c.LQLen(), c.SQLen()
		if s.Metrics != nil {
			s.Metrics.Record(s.CycleNum, i, rob, lq, sq, coreTotals(c))
		}
		if s.Trace != nil {
			s.Trace.Emit(trace.Event{Cycle: s.CycleNum, Core: int32(i),
				Kind: trace.KROBOcc, Value: uint64(rob)})
			s.Trace.Emit(trace.Event{Cycle: s.CycleNum, Core: int32(i),
				Kind: trace.KLQOcc, Value: uint64(lq)})
			s.Trace.Emit(trace.Event{Cycle: s.CycleNum, Core: int32(i),
				Kind: trace.KSQOcc, Value: uint64(sq)})
		}
	}
}

// coreTotals collects the cumulative counters whose interval deltas the
// metrics log reports (EXPERIMENTS.md "Metrics snapshots").
func coreTotals(c *pipeline.Core) map[string]uint64 {
	ps := &c.Stats
	m := map[string]uint64{
		"committed":  ps.Committed,
		"loads":      ps.CommittedLoads,
		"stores":     ps.CommittedStores,
		"replays":    ps.ReplayAccesses,
		"mismatches": 0,
		"squashes": ps.SquashesMispredict + ps.SquashesRAW +
			ps.SquashesInval + ps.SquashesLoadIssue +
			ps.SquashesReplayRAW + ps.SquashesReplayCons + ps.SquashesVPred,
	}
	if eng := c.Engine(); eng != nil {
		m["mismatches"] = eng.Stats.Mismatches
	}
	return m
}

// Result summarizes a run.
type Result struct {
	Machine  string
	Workload string
	Cores    int
	Cycles   int64
	// IPC is the mean per-core IPC.
	IPC float64
	// Aggregated pipeline statistics (summed over cores).
	Pipe pipeline.Stats
	// Counters carries auxiliary named statistics.
	Counters *stats.Counters
}

// Result computes the current summary without advancing the system.
func (s *System) Result() Result {
	r := Result{
		Machine:  s.Cfg.Name,
		Workload: s.Work.Name,
		Cores:    len(s.Cores),
		Cycles:   s.CycleNum,
		Counters: stats.NewCounters(),
	}
	var ipcSum float64
	for _, c := range s.Cores {
		ps := &c.Stats
		ipcSum += ps.IPC()
		agg := &r.Pipe
		agg.Cycles += ps.Cycles
		agg.Committed += ps.Committed
		agg.CommittedLoads += ps.CommittedLoads
		agg.CommittedStores += ps.CommittedStores
		agg.CommittedBranches += ps.CommittedBranches
		agg.SilentStores += ps.SilentStores
		agg.DemandLoadAccesses += ps.DemandLoadAccesses
		agg.ForwardedLoads += ps.ForwardedLoads
		agg.ReplayAccesses += ps.ReplayAccesses
		agg.StoreAccesses += ps.StoreAccesses
		agg.SquashesMispredict += ps.SquashesMispredict
		agg.SquashesRAW += ps.SquashesRAW
		agg.SquashesInval += ps.SquashesInval
		agg.SquashesLoadIssue += ps.SquashesLoadIssue
		agg.SquashesReplayRAW += ps.SquashesReplayRAW
		agg.SquashesReplayCons += ps.SquashesReplayCons
		agg.SquashedInstrs += ps.SquashedInstrs
		agg.LoadsNUSFlagged += ps.LoadsNUSFlagged
		agg.LoadsReordered += ps.LoadsReordered
		agg.ValuePredictedLoads += ps.ValuePredictedLoads
		agg.ValuePredictedCommitted += ps.ValuePredictedCommitted
		agg.SquashesVPred += ps.SquashesVPred
		agg.ROBOccupancySum += ps.ROBOccupancySum
		agg.StallROB += ps.StallROB
		agg.StallIQ += ps.StallIQ
		agg.StallLQ += ps.StallLQ
		agg.StallSQ += ps.StallSQ
		agg.StallBarrier += ps.StallBarrier

		if eng := c.Engine(); eng != nil {
			r.Counters.Add("replay.loads_seen", eng.Stats.LoadsSeen)
			r.Counters.Add("replay.replays", eng.Stats.Replays)
			r.Counters.Add("replay.replays_nus", eng.Stats.ReplaysNUS)
			r.Counters.Add("replay.filtered", eng.Stats.Filtered)
			r.Counters.Add("replay.mismatches", eng.Stats.Mismatches)
			r.Counters.Add("replay.window_events", eng.Stats.WindowEvents)
		}
		if lq := c.LoadQueue(); lq != nil {
			r.Counters.Add("lq.searches", lq.Searches)
			r.Counters.Add("lq.searched_entries", lq.SearchedEntries)
			r.Counters.Add("lq.raw_squashes", lq.RAWSquashes)
			r.Counters.Add("lq.inval_squashes", lq.InvalSquashes)
			r.Counters.Add("lq.bloom_filtered", lq.BloomFiltered)
		}
		r.Counters.Add("sq.searches", c.StoreQueue().Searches)
		r.Counters.Add("sq.l2_searches", c.StoreQueue().L2Searches)
		r.Counters.Add("sq.l2_filtered", c.StoreQueue().L2Filtered)
		hs := c.Hierarchy().Stats
		r.Counters.Add("cache.remote_fills", hs.RemoteFills)
		r.Counters.Add("cache.snoop_invalidations", hs.SnoopInvalidations)
		if tlb := c.Hierarchy().DataTLB(); tlb != nil {
			r.Counters.Add("tlb.accesses", tlb.Accesses)
			r.Counters.Add("tlb.misses", tlb.Misses)
		}
		r.Counters.Add("bp.lookups", c.Predictor().Lookups)
		r.Counters.Add("bp.mispredicts", c.Predictor().Mispredicts)
		if vp := c.ValuePredictor(); vp != nil {
			r.Counters.Add("vpred.predictions", vp.Predictions)
			r.Counters.Add("vpred.correct", vp.Correct)
			r.Counters.Add("vpred.incorrect", vp.Incorrect)
		}
	}
	r.IPC = ipcSum / float64(len(s.Cores))
	return r
}

// String renders a short human-readable summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s cores=%d cycles=%d IPC=%.3f committed=%d",
		r.Machine, r.Workload, r.Cores, r.Cycles, r.IPC, r.Pipe.Committed)
}
