package system

import (
	"strings"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/fault"
	"vbmo/internal/workload"
)

func mustWork(t *testing.T, name string) workload.Params {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	return w
}

// TestWatchdogDetectsLivelock builds a synthetic livelock: every
// premature load value is corrupted (rate 1.0), the machine squashes and
// refetches the load itself on replay mismatch, and the forward-progress
// rule that would mark the refetched load no-replay is suppressed. The
// refetched load corrupts again, mismatches again, squashes again —
// forever. The watchdog must convert that into a structured deadlock
// report instead of a hung process.
func TestWatchdogDetectsLivelock(t *testing.T) {
	cfg := config.Replay(core.ReplayAll)
	cfg.SquashIncludesLoad = true
	work := mustWork(t, "gzip")
	opt := Options{
		Cores: 1, Seed: 42,
		Fault: &fault.Config{
			Kinds: []fault.Kind{fault.LoadValue, fault.SuppressRule3},
			Rate:  1.0, Seed: 7,
		},
		WatchdogCycles: 2000,
	}
	s := New(cfg, work, opt)
	res := s.Run(50000, opt)
	if s.Deadlock == nil {
		t.Fatalf("no deadlock declared (committed %d, cycles %d)", res.Pipe.Committed, res.Cycles)
	}
	rep := s.Deadlock
	if rep.Cycle-rep.LastCommitCycle < rep.Window {
		t.Fatalf("report window inconsistent: %+v", rep)
	}
	if len(rep.Cores) != 1 {
		t.Fatalf("report has %d core dumps, want 1", len(rep.Cores))
	}
	text := rep.String()
	if !strings.Contains(text, "no instruction committed") || !strings.Contains(text, "rob=") {
		t.Fatalf("report text lacks ROB/LSQ state:\n%s", text)
	}
	// The run must have stopped at the watchdog, not the commit target.
	if res.Pipe.Committed >= 50000 {
		t.Fatal("livelocked run reached its commit target")
	}
}

// TestWatchdogCleanRunNoDeadlock: a healthy run with the watchdog armed
// completes normally with no report and no storms.
func TestWatchdogCleanRunNoDeadlock(t *testing.T) {
	cfg := config.Replay(core.ReplayAll)
	work := mustWork(t, "gzip")
	opt := Options{Cores: 1, Seed: 42, WatchdogCycles: 2000}
	s := New(cfg, work, opt)
	res := s.Run(20000, opt)
	if s.Deadlock != nil {
		t.Fatalf("spurious deadlock: %s", s.Deadlock)
	}
	if res.Pipe.Committed < 20000 {
		t.Fatalf("committed %d of 20000", res.Pipe.Committed)
	}
	if wd := s.Watchdog(); wd.Storms != 0 {
		t.Fatalf("spurious storms: %+v", wd)
	}
}

// TestWatchdogThrottlesSquashStorm: corrupting every premature load on
// the replay-all machine (without the livelock ingredients) makes every
// verifiable load mismatch and squash — a replay-squash storm. The
// watchdog must detect it and throttle fetch, and the run must still
// reach its commit target (rule 3 marks refetched loads no-replay, so
// each load makes progress on its second trip).
func TestWatchdogThrottlesSquashStorm(t *testing.T) {
	cfg := config.Replay(core.ReplayAll)
	work := mustWork(t, "gzip")
	opt := Options{
		Cores: 1, Seed: 42,
		Fault: &fault.Config{
			Kinds: []fault.Kind{fault.LoadValue},
			Rate:  1.0, Seed: 7,
		},
		WatchdogCycles: 100000,
	}
	s := New(cfg, work, opt)
	res := s.Run(20000, opt)
	if s.Deadlock != nil {
		t.Fatalf("storm escalated to deadlock: %s", s.Deadlock)
	}
	if res.Pipe.Committed < 20000 {
		t.Fatalf("committed %d of 20000", res.Pipe.Committed)
	}
	wd := s.Watchdog()
	if wd.Storms == 0 {
		t.Fatal("no storm detected despite rate-1.0 corruption")
	}
	if wd.MaxBackoff < wdBackoffBase {
		t.Fatalf("no backoff applied: %+v", wd)
	}
}

// TestFaultDetectionReplayAll is the tentpole assertion at system
// level: on the replay-all machine every injected value corruption is
// detected (replay mismatch), vacated (killed by an unrelated squash
// before verification), or still in flight at end of run — never
// committed unverified.
func TestFaultDetectionReplayAll(t *testing.T) {
	cfg := config.Replay(core.ReplayAll)
	work := mustWork(t, "gzip")
	opt := Options{
		Cores: 1, Seed: 42,
		Fault: &fault.Config{
			Kinds: []fault.Kind{fault.LoadValue, fault.CacheData},
			Rate:  0.01, Seed: 99,
		},
	}
	s := New(cfg, work, opt)
	s.Run(30000, opt)
	st := s.Faults.Stats
	if st.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if st.Missed != 0 {
		t.Fatalf("replay-all missed %d corruptions: %s", st.Missed, s.Faults.Summary())
	}
	if st.Detected == 0 {
		t.Fatalf("nothing detected: %s", s.Faults.Summary())
	}
	if s.Faults.Lat.Mean() <= 0 {
		t.Fatal("detection latency histogram empty")
	}
}

// TestFaultEscapeBaseline is the contrast: the baseline machine never
// replays, so corruptions commit undetected — the injector must report
// them as misses, not silently lose them.
func TestFaultEscapeBaseline(t *testing.T) {
	cfg := config.Baseline()
	work := mustWork(t, "gzip")
	opt := Options{
		Cores: 1, Seed: 42,
		Fault: &fault.Config{
			Kinds: []fault.Kind{fault.LoadValue},
			Rate:  0.01, Seed: 99,
		},
	}
	s := New(cfg, work, opt)
	s.Run(30000, opt)
	st := s.Faults.Stats
	if st.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if st.Missed == 0 {
		t.Fatalf("baseline detected corruption it cannot detect? %s", s.Faults.Summary())
	}
	if st.Detected != 0 {
		t.Fatalf("baseline has no replay, detected must be 0: %s", s.Faults.Summary())
	}
}

// TestMessageFaultsAccounted: drop/delay interference on an MP run is
// counted, and a dropped or delayed notification must never corrupt
// architectural state in a way the checker attributes to the program —
// the run completes.
func TestMessageFaultsAccounted(t *testing.T) {
	cfg := config.Replay(core.ReplayAll)
	work := mustWork(t, "ocean")
	// Cross-core snoop invalidations are rare in this workload (a few
	// per run), so interference runs at rate 1.0 to touch them all.
	opt := Options{
		Cores: 4, Seed: 42,
		DMAInterval: 400, DMABurst: 2,
		Fault: &fault.Config{
			Kinds: []fault.Kind{fault.DropSnoop, fault.DelayFill},
			Rate:  1.0, Seed: 5, Delay: 8,
		},
	}
	s := New(cfg, work, opt)
	res := s.Run(3000, opt)
	if res.Pipe.Committed < 12000 {
		t.Fatalf("committed %d of 12000", res.Pipe.Committed)
	}
	st := s.Faults.Stats
	if st.Dropped == 0 || st.Delayed == 0 {
		t.Fatalf("no message interference recorded: %s", s.Faults.Summary())
	}
}

// TestFaultDisabledIsFree: a nil fault config must leave the system
// without an injector (the hooks are all nil-guarded; bit-identity of
// the reference outputs is asserted by the CLI-level checks).
func TestFaultDisabledIsFree(t *testing.T) {
	cfg := config.Replay(core.ReplayAll)
	work := mustWork(t, "gzip")
	opt := Options{Cores: 1, Seed: 42}
	s := New(cfg, work, opt)
	if s.Faults != nil {
		t.Fatal("injector built with faults disabled")
	}
	s.Run(1000, opt)
}
