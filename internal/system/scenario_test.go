package system

// Scenario tests reproducing the paper's Figure 1 examples and the
// §5.1 value-locality observations against the real pipeline.

import (
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/isa"
	"vbmo/internal/prog"
)

const scenBase = uint64(0x100000)

// rawHazardProgram builds the Figure 1(a) scenario as a loop: a store
// whose address resolves late (behind a divide), immediately followed
// by a load to the same address whose own address is ready at once.
// When silent is true the store rewrites the value already in memory.
func rawHazardProgram(silent bool) *prog.Program {
	b := prog.NewBuilder(0x1000)
	// r1 = target address, r9 = divisor, r20 = changing value.
	top := b.Here()
	if silent {
		// Load the current memory value and store it back.
		b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 20, Src1: 1})
	} else {
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	}
	// Late-resolving store address: r13 == r1, after a 12-cycle divide.
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 14, Src1: 20, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpXor, Dst: 15, Src1: 14, Src2: 14})
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 13, Src1: 1, Src2: 15})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 13, Src2: 20})
	// The premature load: address ready immediately.
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 1})
	// Pad with independent work so the window stays busy.
	for i := 0; i < 6; i++ {
		b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 22, Src1: 22, Src2: 22})
	}
	b.Branch(isa.OpJump, 0, top)
	return b.Build()
}

func scenInit() prog.ArchState {
	var st prog.ArchState
	st.WriteReg(1, scenBase)
	st.WriteReg(9, 3)
	return st
}

func runScenario(t *testing.T, cfg config.Machine, p *prog.Program, n uint64) *System {
	t.Helper()
	opt := Options{Cores: 1, Seed: 99, RecordCommits: true}
	s := NewCustom(cfg, p, []prog.ArchState{scenInit()}, opt)
	res := s.Run(n, opt)
	if res.Pipe.Committed < n {
		t.Fatalf("under-committed: %d < %d (cycles=%d)", res.Pipe.Committed, n, res.Cycles)
	}
	return s
}

func TestFigure1aBaselineSquashes(t *testing.T) {
	// The baseline's load-queue CAM search at store agen must catch the
	// premature load at least once (before the store-set predictor
	// learns the pair).
	s := runScenario(t, config.Baseline(), rawHazardProgram(false), 2000)
	if s.Cores[0].Stats.SquashesRAW == 0 {
		t.Error("baseline detected no RAW violations")
	}
	// The committed loads must nevertheless observe the stores' values:
	// compare against the functional oracle.
	assertOracleCustom(t, s, rawHazardProgram(false))
}

func TestFigure1aReplayDetectsMismatch(t *testing.T) {
	s := runScenario(t, config.Replay(core.ReplayAll), rawHazardProgram(false), 2000)
	if s.Cores[0].Stats.SquashesReplayRAW == 0 {
		t.Error("replay machine detected no RAW violations")
	}
	assertOracleCustom(t, s, rawHazardProgram(false))
}

func TestSilentStoreAvoidsReplaySquash(t *testing.T) {
	// §5.1 value locality: when the conflicting store is silent, the
	// premature load's value was correct — the baseline still squashes
	// on the address match, but value-based replay does not.
	base := runScenario(t, config.Baseline(), rawHazardProgram(true), 2000)
	if base.Cores[0].Stats.SquashesRAW == 0 {
		t.Error("baseline should squash on address match even for silent stores")
	}
	rep := runScenario(t, config.Replay(core.ReplayAll), rawHazardProgram(true), 2000)
	st := rep.Cores[0].Stats
	if st.SquashesReplayRAW != 0 || st.SquashesReplayCons != 0 {
		t.Errorf("replay squashed %d/%d times on silent stores",
			st.SquashesReplayRAW, st.SquashesReplayCons)
	}
}

func TestNUSFilterCatchesHazard(t *testing.T) {
	// The no-unresolved-store filter alone must catch uniprocessor RAW
	// hazards (it is the RAW half of the composition).
	s := runScenario(t, config.Replay(core.NUSOnly), rawHazardProgram(false), 2000)
	st := s.Cores[0].Stats
	if st.SquashesReplayRAW == 0 {
		t.Error("NUS filter missed the RAW hazard")
	}
	assertOracleCustom(t, s, rawHazardProgram(false))
	// And it must have filtered the pad loads... this program has no
	// other loads, so instead check replay count is below loads seen.
	eng := s.Cores[0].Engine()
	if eng.Stats.Replays >= eng.Stats.LoadsSeen {
		t.Errorf("NUS filtered nothing: %d replays of %d loads",
			eng.Stats.Replays, eng.Stats.LoadsSeen)
	}
}

func TestPredictorLearnsAndViolationsStop(t *testing.T) {
	// After training, the simple predictor must stall the load and stop
	// the violations: the violation count over the second half of the
	// run must be far lower than the first half.
	opt := Options{Cores: 1, Seed: 99}
	cfg := config.Replay(core.ReplayAll)
	s := NewCustom(cfg, rawHazardProgram(false), []prog.ArchState{scenInit()}, opt)
	s.Run(1500, opt)
	firstHalf := s.Cores[0].Stats.SquashesReplayRAW
	s.Run(3000, opt)
	secondHalf := s.Cores[0].Stats.SquashesReplayRAW - firstHalf
	if secondHalf > firstHalf {
		t.Errorf("violations did not decay: %d then %d", firstHalf, secondHalf)
	}
	if s.Cores[0].SimplePredictor().Trainings == 0 {
		t.Error("simple predictor never trained")
	}
}

// forwardProgram: a store with an immediately-resolved address followed
// by a same-address load — must forward from the store queue.
func forwardProgram() *prog.Program {
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 1, Src2: 20})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 1})
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 22, Src1: 21, Src2: 22})
	b.Branch(isa.OpJump, 0, top)
	return b.Build()
}

func TestStoreToLoadForwarding(t *testing.T) {
	s := runScenario(t, config.Baseline(), forwardProgram(), 2000)
	st := s.Cores[0].Stats
	if st.ForwardedLoads == 0 {
		t.Error("no loads forwarded from the store queue")
	}
	if st.SquashesRAW > 0 {
		t.Error("forwarded loads must not be squashed")
	}
	assertOracleCustom(t, s, forwardProgram())
}

// assertOracleCustom checks a custom-program run against the reference
// executor.
func assertOracleCustom(t *testing.T, s *System, p *prog.Program) {
	t.Helper()
	ex := prog.NewExecutor(p, prog.NewImage(99), scenInit())
	want := ex.Run(len(s.Commits[0]))
	for i, w := range want {
		g := s.Commits[0][i]
		if g.PC != w.PC || g.Result != w.Result || g.Addr != w.Addr {
			t.Fatalf("commit %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestFigure1bSnoopSquash(t *testing.T) {
	// Figure 1(b): processor p2 reorders two loads; p1's intervening
	// stores make the reordering visible. The snooping load queue must
	// squash at least once in a contended two-core run, and the
	// replay machine must observe consistency (non-NUS) activity.
	// Build: p-even stores to two shared words; p-odd loads them in a
	// dependence-free pair (reorderable).
	b := prog.NewBuilder(0x1000)
	top := b.Here()
	// Both cores run the same SPMD code: store to [r1], store to [r2],
	// then load [r2] and load [r1]. With two cores the stores of one
	// interleave with the loads of the other.
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 20, Src1: 20, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 1, Src2: 20})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 2, Src2: 20})
	// A long-latency op delays the first load so the second (younger)
	// load issues first — the Figure 1(b) reordering.
	b.Emit(isa.Inst{Op: isa.OpDiv, Dst: 14, Src1: 20, Src2: 9})
	b.Emit(isa.Inst{Op: isa.OpXor, Dst: 15, Src1: 14, Src2: 14})
	b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 13, Src1: 2, Src2: 15}) // r13 == r2, late
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 21, Src1: 13})         // load B (late addr)
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 22, Src1: 1})          // load A (early)
	b.Branch(isa.OpJump, 0, top)
	p := b.Build()

	mk := func(coreID int) prog.ArchState {
		var st prog.ArchState
		// Both cores touch the same two shared words.
		st.WriteReg(1, scenBase)
		st.WriteReg(2, scenBase+64)
		st.WriteReg(9, 3)
		st.WriteReg(20, uint64(coreID)*1000)
		return st
	}
	opt := Options{Cores: 2, Seed: 5}
	s := NewCustom(config.Baseline(), p, []prog.ArchState{mk(0), mk(1)}, opt)
	s.Run(4000, opt)
	inval := s.Cores[0].Stats.SquashesInval + s.Cores[1].Stats.SquashesInval
	if inval == 0 {
		t.Error("snooping load queue never squashed under contention")
	}

	s2 := NewCustom(config.Replay(core.NoRecentSnoop), p,
		[]prog.ArchState{mk(0), mk(1)}, opt)
	s2.Run(4000, opt)
	events := s2.Cores[0].Engine().Stats.WindowEvents + s2.Cores[1].Engine().Stats.WindowEvents
	if events == 0 {
		t.Error("no-recent-snoop filter observed no external events")
	}
}
