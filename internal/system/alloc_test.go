package system

import (
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/workload"
)

// steadyAllocsPerInstr builds the named machine on the given workload,
// warms it past cold misses and workload generation, then measures
// allocations per committed instruction over repeated Advance windows.
func steadyAllocsPerInstr(t *testing.T, machine string, window uint64) float64 {
	t.Helper()
	mc, ok := config.ByName(machine)
	if !ok {
		t.Fatalf("unknown machine %q", machine)
	}
	var work workload.Params
	for _, w := range workload.Catalog() {
		if w.Name == "gzip" {
			work = w
		}
	}
	opt := Options{Cores: 1, Seed: 42, DMAInterval: 4000, DMABurst: 2}
	s := New(mc, work, opt)
	s.Advance(10000, opt) // warmup: caches, predictors, pool slabs

	base := s.Cores[0].Stats.Committed
	runs := 0
	allocs := testing.AllocsPerRun(5, func() {
		runs++
		s.Advance(base+uint64(runs)*window, opt)
	})
	return allocs / float64(window)
}

// TestSteadyStateAllocs guards the tentpole claim of this layer: once
// warmed, the cycle loop — ring-buffered ROB/fetch queue, slab-pooled
// entries, preallocated side lists — commits instructions without
// heap-allocating. The bound is deliberately far below the pre-ring
// figure (~0.05 allocs/instr) so a reintroduced per-instruction or
// per-window allocation fails loudly, while the rare residual (a cache
// set touched for the first time, an MSHR growth) stays within it.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement skipped in -short")
	}
	for _, machine := range []string{"baseline", "no-recent-snoop"} {
		got := steadyAllocsPerInstr(t, machine, 4000)
		t.Logf("%s: %.5f allocs/committed instr", machine, got)
		if got > 0.005 {
			t.Errorf("%s: steady-state allocations regressed: %.5f allocs/instr (want <= 0.005)",
				machine, got)
		}
	}
}
