// The quiescence fast-forward (DESIGN.md §12): when every unfinished
// core is idle-stable — ROB empty or stalled-deterministic, LSQ
// drained or waiting on scheduled completions, no due replay compare,
// nothing to issue, dispatch, or fetch — and no machine-level event is
// due, Advance jumps the cycle counter to the earliest scheduled wake
// event instead of stepping through dead cycles one by one. The skip
// is bit-identical to plain stepping: the per-core predicate
// (pipeline.Core.Quiescent) vetoes any cycle that would mutate
// anything beyond the deterministic per-cycle accounting, and the
// window is capped by every machine-level wake source — the next DMA
// burst, the next deferred fault delivery, the watchdog's deadlock and
// storm-scan deadlines, the next metrics snapshot, and the run's cycle
// bound.

package system

// ffProbeIdle is how many consecutive commit-less cycles Advance waits
// before probing for quiescence. A committing cycle is never quiescent,
// and transient commit gaps (a blocked head with the pipeline still
// filling) fail the probe anyway; the small delay keeps the probe off
// the busy path so fast-forward costs nothing when it cannot help.
const ffProbeIdle = 4

// FFStats reports fast-forward activity over a run's lifetime.
type FFStats struct {
	// Windows is the number of quiescent windows skipped.
	Windows int64 `json:"windows"`
	// SkippedCycles is the total cycles fast-forwarded (already included
	// in CycleNum and every core's Stats.Cycles).
	SkippedCycles int64 `json:"skipped_cycles"`
}

// FastForwardStats returns the run's fast-forward accounting (zero when
// the skip never engaged or was disabled).
func (s *System) FastForwardStats() FFStats { return s.ff }

// tryFastForward attempts one quiescence skip. It returns true after
// jumping the machine (cores fast-forwarded, CycleNum advanced) to the
// earliest wake event, and false when any unfinished core is not
// quiescent or an event is due this cycle. Finished cores (committed
// past target) are not stepped by Advance and are likewise neither
// consulted nor advanced here.
//
//vbr:hotpath
func (s *System) tryFastForward(target uint64, maxCycles int64) bool {
	now := s.CycleNum
	w := maxCycles
	if s.DMA != nil && s.DMA.Interval > 0 {
		next := s.DMA.NextAt()
		if next <= now {
			return false // a DMA burst fires this cycle
		}
		if next < w {
			w = next
		}
	}
	if s.Faults != nil {
		if due, ok := s.Faults.NextDue(); ok {
			if due <= now {
				return false // a deferred message delivers this cycle
			}
			if due < w {
				w = due
			}
		}
	}
	if s.wd != nil {
		// The watchdog's deadlock check and storm scan run on exact
		// cycles and mutate its state; skip to just before each so the
		// normal loop executes them at the same cycle it always would.
		if d := s.wd.lastCommit + s.wd.window - 1; d < w {
			w = d
		}
		if d := s.wd.nextStormScan - 1; d < w {
			w = d
		}
	}
	if s.snapInterval > 0 {
		// The next snapshot fires when the post-increment cycle count
		// reaches a multiple of the interval; stop one short so the
		// normal loop takes the sample.
		next := (now/s.snapInterval+1)*s.snapInterval - 1
		if next < w {
			w = next
		}
	}
	if w <= now {
		return false
	}
	for _, c := range s.Cores {
		if c.Stats.Committed >= target {
			continue
		}
		wake, ok := c.Quiescent()
		if !ok {
			return false
		}
		if wake >= 0 && wake < w {
			w = wake
		}
	}
	n := w - now
	if n <= 0 {
		return false
	}
	for _, c := range s.Cores {
		if c.Stats.Committed < target {
			c.FastForward(n)
		}
	}
	s.CycleNum = w
	s.ff.Windows++
	s.ff.SkippedCycles += n
	return true
}
