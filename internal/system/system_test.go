package system

import (
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/prog"
	"vbmo/internal/workload"
)

// oracle runs the functional reference executor over the same program,
// image seed and initial state as the system, returning n committed
// records.
func oracle(work workload.Params, seed uint64, n int) []prog.Committed {
	p := workload.Generate(work, seed)
	im := prog.NewImage(seed)
	ex := prog.NewExecutor(p, im, workload.InitState(work, 0, seed))
	return ex.Run(n)
}

// assertMatchesOracle runs machine cfg on the workload and checks the
// committed stream is identical to the in-order reference execution.
func assertMatchesOracle(t *testing.T, cfg config.Machine, workName string, n uint64) {
	t.Helper()
	work, ok := workload.ByName(workName)
	if !ok {
		t.Fatalf("no workload %s", workName)
	}
	opt := Options{Cores: 1, Seed: 12345, RecordCommits: true}
	s := New(cfg, work, opt)
	res := s.Run(n, opt)
	if res.Pipe.Committed < n {
		t.Fatalf("%s/%s: committed only %d of %d (cycles=%d)",
			cfg.Name, workName, res.Pipe.Committed, n, res.Cycles)
	}
	want := oracle(work, 12345, int(n))
	got := s.Commits[0]
	for i := range want {
		if i >= len(got) {
			t.Fatalf("committed stream too short at %d", i)
		}
		g, w := got[i], want[i]
		if g.PC != w.PC || g.Op != w.Op || g.Result != w.Result ||
			g.Addr != w.Addr || g.Taken != w.Taken {
			t.Fatalf("%s/%s: commit %d differs:\n got %+v\nwant %+v",
				cfg.Name, workName, i, g, w)
		}
	}
	// Architectural register state must match too (the pipeline may
	// overshoot the target by part of a commit group; compare against
	// an oracle run of the exact committed count).
	ex := prog.NewExecutor(workload.Generate(work, 12345), prog.NewImage(12345),
		workload.InitState(work, 0, 12345))
	ex.Run(int(res.Pipe.Committed))
	arch := s.Cores[0].ArchState()
	for r := 1; r < 64; r++ {
		if arch.Regs[r] != ex.State.Regs[r] {
			t.Fatalf("%s/%s: r%d = %#x, oracle %#x",
				cfg.Name, workName, r, arch.Regs[r], ex.State.Regs[r])
		}
	}
}

func TestBaselineMatchesOracle(t *testing.T) {
	for _, w := range []string{"gzip", "vortex", "mcf"} {
		assertMatchesOracle(t, config.Baseline(), w, 8000)
	}
}

func TestReplayAllMatchesOracle(t *testing.T) {
	for _, w := range []string{"gzip", "vortex"} {
		assertMatchesOracle(t, config.Replay(core.ReplayAll), w, 8000)
	}
}

func TestReplayFiltersMatchOracle(t *testing.T) {
	for _, f := range []core.Filter{core.NoReorder, core.NoRecentMiss, core.NoRecentSnoop, core.NUSOnly} {
		assertMatchesOracle(t, config.Replay(f), "vortex", 6000)
	}
}

func TestConstrainedLQMatchesOracle(t *testing.T) {
	assertMatchesOracle(t, config.ConstrainedBaseline(16), "gzip", 6000)
}

func TestMultiprocessorSmoke(t *testing.T) {
	work, _ := workload.ByName("radiosity")
	opt := Options{Cores: 2, Seed: 7, DMAInterval: 5000}
	s := New(config.Baseline(), work, opt)
	res := s.Run(3000, opt)
	if res.Pipe.Committed < 6000 {
		t.Fatalf("MP run under-committed: %+v", res)
	}
	if res.Cores != 2 {
		t.Errorf("Cores = %d", res.Cores)
	}
}

func TestMultiprocessorReplaySmoke(t *testing.T) {
	work, _ := workload.ByName("radiosity")
	opt := Options{Cores: 2, Seed: 7, DMAInterval: 5000}
	s := New(config.Replay(core.NoRecentSnoop), work, opt)
	res := s.Run(3000, opt)
	if res.Pipe.Committed < 6000 {
		t.Fatalf("MP replay run under-committed: %+v", res)
	}
	if res.Counters.Get("replay.loads_seen") == 0 {
		t.Error("replay engine saw no loads")
	}
}

func TestInsulatedAndHybridMatchOracle(t *testing.T) {
	// The Alpha-style insulated and Power4-style hybrid load queues are
	// drop-in uniprocessor baselines; their committed streams must be
	// oracle-exact too.
	assertMatchesOracle(t, config.InsulatedBaseline(), "vortex", 6000)
	assertMatchesOracle(t, config.HybridBaseline(), "vortex", 6000)
}

func TestHybridMPSmoke(t *testing.T) {
	work, _ := workload.ByName("radiosity")
	opt := Options{Cores: 2, Seed: 9, DMAInterval: 5000}
	s := New(config.HybridBaseline(), work, opt)
	res := s.Run(3000, opt)
	if res.Pipe.Committed < 6000 {
		t.Fatalf("hybrid MP under-committed: %+v", res)
	}
}

func TestBloomBaselineMatchesOracleAndFilters(t *testing.T) {
	// The Bloom-filtered load queue is an energy optimization: it must
	// not change behaviour (oracle-exact) and must avoid a substantial
	// fraction of CAM searches.
	assertMatchesOracle(t, config.BloomBaseline(), "vortex", 6000)

	work, _ := workload.ByName("vortex")
	opt := Options{Cores: 1, Seed: 12345}
	plain := New(config.Baseline(), work, opt)
	rp := plain.Run(6000, opt)
	blm := New(config.BloomBaseline(), work, opt)
	rb := blm.Run(6000, opt)

	filtered := rb.Counters.Get("lq.bloom_filtered")
	if filtered == 0 {
		t.Fatal("bloom filter avoided no searches")
	}
	// Searches avoided + performed ≈ plain baseline's searches.
	total := rb.Counters.Get("lq.searches") + filtered
	if total < rp.Counters.Get("lq.searches")*9/10 {
		t.Errorf("search accounting off: bloom %d+%d vs plain %d",
			rb.Counters.Get("lq.searches"), filtered, rp.Counters.Get("lq.searches"))
	}
	// And performance is unchanged (same committed stream, same cycles
	// modulo nothing — the filter is timing-neutral in this model).
	if rb.Cycles != rp.Cycles {
		t.Errorf("bloom filter changed timing: %d vs %d cycles", rb.Cycles, rp.Cycles)
	}
}

func TestHierSQBaselineMatchesOracle(t *testing.T) {
	// Akkary et al.'s two-level store queue changes forwarding latency,
	// never values: oracle-exact, with level-two probes mostly
	// filtered.
	assertMatchesOracle(t, config.HierSQBaseline(), "vortex", 6000)
	work, _ := workload.ByName("vortex")
	opt := Options{Cores: 1, Seed: 12345}
	s := New(config.HierSQBaseline(), work, opt)
	res := s.Run(6000, opt)
	if res.Counters.Get("sq.l2_filtered") == 0 {
		t.Error("membership filter never skipped a level-two probe")
	}
}

func TestValuePredictionMatchesOracle(t *testing.T) {
	// Value-predicted loads feed consumers early; the replay stage
	// verifies every prediction, so the committed stream stays
	// oracle-exact even through mispredictions.
	cfg := config.ReplayVP(core.NoRecentSnoop)
	assertMatchesOracle(t, cfg, "gzip", 8000)

	work, _ := workload.ByName("gzip")
	opt := Options{Cores: 1, Seed: 12345}
	s := New(cfg, work, opt)
	res := s.Run(8000, opt)
	if res.Counters.Get("vpred.predictions") == 0 {
		t.Error("no value predictions issued")
	}
	if res.Pipe.ValuePredictedLoads == 0 {
		t.Error("no loads marked value-predicted")
	}
	// Every predicted load that commits must have replayed (the
	// filters may not skip them): replays >= committed predicted loads.
	if res.Pipe.ReplayAccesses < res.Pipe.ValuePredictedCommitted {
		t.Errorf("replays %d < committed value-predicted loads %d: verification skipped",
			res.Pipe.ReplayAccesses, res.Pipe.ValuePredictedCommitted)
	}
	if res.Pipe.ValuePredictedCommitted == 0 {
		t.Error("no predicted loads committed")
	}
}

func TestValuePredictionMPStillSC(t *testing.T) {
	// The Martin et al. hazard: naive value prediction can violate the
	// consistency model. Replay-verified prediction must not — the
	// constraint graph stays acyclic even under contention.
	work, _ := workload.ByName("jbb-mp")
	work.SharedFrac = 0.5
	work.HotFrac = 0.9
	work.FalseSharing = 0.0
	opt := Options{Cores: 4, Seed: 31, TrackConsistency: true}
	s := New(config.ReplayVP(core.NoRecentSnoop), work, opt)
	res := s.Run(4000, opt)
	if res.Counters.Get("vpred.predictions") == 0 {
		t.Skip("no predictions issued under this seed")
	}
	if _, cyc, _ := s.CheckSC(); cyc {
		t.Error("replay-verified value prediction violated sequential consistency")
	}
}

func TestSystemDeterminism(t *testing.T) {
	// Identical seeds must produce bit-identical results — the whole
	// simulator is deterministic (required for the Alameldeen–Wood
	// sampling methodology to mean anything).
	run := func() Result {
		work, _ := workload.ByName("radiosity")
		opt := Options{Cores: 4, Seed: 77, DMAInterval: 4000, DMABurst: 2}
		s := New(config.Replay(core.NoRecentSnoop), work, opt)
		return s.Run(3000, opt)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Pipe != b.Pipe {
		t.Errorf("nondeterministic simulation:\n %+v\nvs %+v", a.Pipe, b.Pipe)
	}
	if a.Counters.String() != b.Counters.String() {
		t.Error("nondeterministic counters")
	}
}

func TestSeedsChangeExecutions(t *testing.T) {
	run := func(seed uint64) int64 {
		work, _ := workload.ByName("gcc")
		opt := Options{Cores: 1, Seed: seed}
		s := New(config.Baseline(), work, opt)
		return s.Run(4000, opt).Cycles
	}
	if run(1) == run(2) && run(2) == run(3) {
		t.Error("three different seeds produced identical cycle counts")
	}
}

func TestSCSweepAcrossSoundConfigs(t *testing.T) {
	// A broader soundness sweep: every sound configuration across
	// several seeds and two MP workloads must verify SC.
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	configs := []config.Machine{
		config.Baseline(),
		config.Replay(core.ReplayAll),
		config.Replay(core.NoRecentSnoop),
		config.Replay(core.NoRecentMiss),
		config.ReplayVP(core.NoRecentMiss),
	}
	for _, name := range []string{"radiosity", "ocean"} {
		work, _ := workload.ByName(name)
		work.SharedFrac = 0.4
		work.HotFrac = 0.8
		work.FalseSharing = 0.2
		for _, cfg := range configs {
			for seed := uint64(1); seed <= 2; seed++ {
				opt := Options{Cores: 4, Seed: seed, TrackConsistency: true,
					DMAInterval: 4000, DMABurst: 2}
				s := New(cfg, work, opt)
				s.Run(2500, opt)
				if op, cyc, _ := s.CheckSC(); cyc {
					t.Errorf("%s/%s seed %d: SC violation at proc %d op %d addr %#x",
						cfg.Name, name, seed, op.Proc, op.Index, op.Addr)
				}
			}
		}
	}
}

func TestHybridInsulatedAreCoherentNotSC(t *testing.T) {
	// The paper (§2.1): insulated and hybrid load queues order only
	// same-address accesses — what weakly-ordered ISAs (Alpha, PowerPC)
	// require. Under a sequential-consistency lens they can violate;
	// under the per-location coherence lens they must not.
	work, _ := workload.ByName("jbb-mp")
	work.SharedFrac = 0.5
	work.HotFrac = 0.9
	work.FalseSharing = 0.0
	scViolations := 0
	for _, cfg := range []config.Machine{config.HybridBaseline(), config.InsulatedBaseline()} {
		for seed := uint64(1); seed <= 3; seed++ {
			opt := Options{Cores: 4, Seed: seed, TrackConsistency: true}
			s := New(cfg, work, opt)
			s.Run(3000, opt)
			if op, cyc, _ := s.CheckCoherence(); cyc {
				t.Errorf("%s seed %d: coherence violation at proc %d op %d addr %#x",
					cfg.Name, seed, op.Proc, op.Index, op.Addr)
			}
			if _, cyc, _ := s.CheckSC(); cyc {
				scViolations++
			}
		}
	}
	if scViolations == 0 {
		t.Log("no SC violation surfaced (contention-dependent); coherence verified")
	} else {
		t.Logf("%d SC violations observed — same-address-only ordering, as §2.1 describes", scViolations)
	}
}
