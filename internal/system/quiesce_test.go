// Tests for the quiescence fast-forward (DESIGN.md §12). The contract
// under test is bit-identity: a run with cycle skipping enabled must
// produce exactly the same Result — counters, pipeline statistics,
// cycle count, trace event counts, metrics snapshots — as the same run
// stepped cycle by cycle, across the whole machine registry and at
// every supported core count.

package system

import (
	"reflect"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/fault"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

// ffPair runs the same (machine, workload, cores, seed) twice — once
// with fast-forward enabled (the default) and once with it disabled —
// and returns both systems and their run results.
func ffPair(t *testing.T, cfg config.Machine, workName string, cores int, insts uint64, snapshot int64) (on, off *System, resOn, resOff Result, csOn, csOff *trace.CountSink) {
	t.Helper()
	work, ok := workload.ByName(workName)
	if !ok {
		t.Fatalf("unknown workload %q", workName)
	}
	run := func(noFF bool) (*System, Result, *trace.CountSink) {
		cs := &trace.CountSink{}
		opt := Options{
			Cores: cores, Seed: 42,
			DMAInterval: 4000, DMABurst: 2,
			SnapshotInterval: snapshot,
			NoFastForward:    noFF,
			Trace:            trace.New(cs),
		}
		s := New(cfg, work, opt)
		res := s.Run(insts, opt)
		return s, res, cs
	}
	on, resOn, csOn = run(false)
	off, resOff, csOff = run(true)
	return
}

// assertFFIdentical asserts the two runs of a pair are bit-identical.
func assertFFIdentical(t *testing.T, on, off *System, resOn, resOff Result, csOn, csOff *trace.CountSink) {
	t.Helper()
	if off.FastForwardStats() != (FFStats{}) {
		t.Errorf("disabled run reports fast-forward activity: %+v", off.FastForwardStats())
	}
	if on.CycleNum != off.CycleNum {
		t.Errorf("CycleNum diverged: ff=%d plain=%d", on.CycleNum, off.CycleNum)
	}
	if !reflect.DeepEqual(resOn, resOff) {
		t.Errorf("Result diverged:\n ff:    %+v\n plain: %+v", resOn, resOff)
	}
	if !reflect.DeepEqual(resOn.Counters, resOff.Counters) {
		t.Errorf("Counters diverged:\n ff:    %v\n plain: %v", resOn.Counters, resOff.Counters)
	}
	if csOn.Total() != csOff.Total() {
		t.Errorf("trace event totals diverged: ff=%d plain=%d", csOn.Total(), csOff.Total())
	}
	for _, k := range []trace.Kind{
		trace.KLoadIssue, trace.KFilterDecision, trace.KReplay,
		trace.KValueMismatch, trace.KSquash, trace.KSnoopInval,
		trace.KExtFill, trace.KDMAWrite, trace.KROBOcc, trace.KWatchdog,
	} {
		if a, b := csOn.Count(k), csOff.Count(k); a != b {
			t.Errorf("trace kind %v count diverged: ff=%d plain=%d", k, a, b)
		}
	}
	if !reflect.DeepEqual(on.Metrics, off.Metrics) {
		t.Errorf("metrics snapshots diverged")
	}
}

// TestFastForwardBitIdenticalRegistry sweeps every registered machine:
// skipping must be invisible in every output.
func TestFastForwardBitIdenticalRegistry(t *testing.T) {
	for _, name := range config.Names() {
		cfg, ok := config.ByName(name)
		if !ok {
			t.Fatalf("registry lists unknown machine %q", name)
		}
		t.Run(name, func(t *testing.T) {
			on, off, resOn, resOff, csOn, csOff := ffPair(t, cfg, "mcf", 1, 4000, 0)
			assertFFIdentical(t, on, off, resOn, resOff, csOn, csOff)
		})
	}
}

// TestFastForwardBitIdenticalMulti covers the lock-step multiprocessor
// at 4 and at the full 16-way configuration, and snapshot sampling.
func TestFastForwardBitIdenticalMulti(t *testing.T) {
	cases := []struct {
		name, machine, work string
		cores               int
		insts               uint64
		snapshot            int64
	}{
		{"ocean-4", "baseline", "ocean", 4, 1500, 0},
		{"ocean-snoop-4", "no-recent-snoop", "ocean", 4, 1500, 0},
		{"spin-mp-16", "baseline", "spin-mp", 16, 600, 0},
		{"gzip-snapshots", "baseline", "gzip", 1, 6000, 512},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, ok := config.ByName(tc.machine)
			if !ok {
				t.Fatalf("unknown machine %q", tc.machine)
			}
			on, off, resOn, resOff, csOn, csOff := ffPair(t, cfg, tc.work, tc.cores, tc.insts, tc.snapshot)
			assertFFIdentical(t, on, off, resOn, resOff, csOn, csOff)
		})
	}
}

// TestFastForwardEngagesOnSpin asserts the skip actually fires on the
// latency-bound workload it was built for — a guard against the
// predicate silently degrading into "never quiescent".
func TestFastForwardEngagesOnSpin(t *testing.T) {
	cfg, _ := config.ByName("baseline")
	on, off, resOn, resOff, csOn, csOff := ffPair(t, cfg, "spin", 1, 3000, 0)
	assertFFIdentical(t, on, off, resOn, resOff, csOn, csOff)
	ff := on.FastForwardStats()
	if ff.Windows == 0 || ff.SkippedCycles == 0 {
		t.Fatalf("fast-forward never engaged on spin: %+v", ff)
	}
	if frac := float64(ff.SkippedCycles) / float64(on.CycleNum); frac < 0.30 {
		t.Errorf("fast-forward skipped only %.1f%% of spin cycles (%d of %d)",
			100*frac, ff.SkippedCycles, on.CycleNum)
	}
}

// TestFastForwardDisabledByHook asserts the per-cycle perturbation hook
// suspends skipping entirely (fault campaigns observe every cycle).
func TestFastForwardDisabledByHook(t *testing.T) {
	cfg, _ := config.ByName("baseline")
	work, _ := workload.ByName("spin")
	opt := Options{Cores: 1, Seed: 42, OnCycle: func(int64) {}}
	s := New(cfg, work, opt)
	s.Run(500, opt)
	if s.FastForwardStats() != (FFStats{}) {
		t.Errorf("fast-forward engaged with OnCycle set: %+v", s.FastForwardStats())
	}
}

// findQuiescent steps the system cycle by cycle (mirroring Advance's
// order: DMA tick, core steps, cycle increment) until every core
// reports quiescent and no machine event is due, then returns.
func findQuiescent(t *testing.T, s *System) {
	t.Helper()
	for i := 0; i < 200000; i++ {
		quiet := true
		for _, c := range s.Cores {
			if _, ok := c.Quiescent(); !ok {
				quiet = false
				break
			}
		}
		if quiet && (s.DMA == nil || s.DMA.NextAt() > s.CycleNum) {
			return
		}
		if s.DMA != nil {
			s.DMA.Tick(s.CycleNum)
		}
		for _, c := range s.Cores {
			c.Step()
		}
		s.CycleNum++
	}
	t.Fatal("no quiescent instant found in 200000 cycles")
}

// TestFastForwardNeverCrossesFaultDelivery asserts tryFastForward's
// wake-event caps directly: a deferred fault message bounds the skip,
// and a message due this cycle vetoes it outright.
func TestFastForwardNeverCrossesFaultDelivery(t *testing.T) {
	cfg, _ := config.ByName("baseline")
	work, _ := workload.ByName("spin")
	opt := Options{Cores: 1, Seed: 42}
	s := New(cfg, work, opt)
	s.Faults = fault.NewInjector(fault.Config{}, nil)
	findQuiescent(t, s)

	start := s.CycleNum
	due := start + 7
	s.Faults.Defer(due, func() {})
	if !s.tryFastForward(^uint64(0), start+1_000_000) {
		t.Fatal("expected a skip from a quiescent instant")
	}
	if s.CycleNum > due {
		t.Fatalf("skip crossed a deferred fault delivery: now=%d due=%d", s.CycleNum, due)
	}
	if s.CycleNum <= start {
		t.Fatalf("skip did not advance: now=%d start=%d", s.CycleNum, start)
	}

	// A delivery due this cycle must veto the skip entirely.
	s.Faults.Defer(s.CycleNum, func() {})
	at := s.CycleNum
	if s.tryFastForward(^uint64(0), at+1_000_000) {
		t.Fatalf("skipped across a delivery due this cycle (now=%d)", s.CycleNum)
	}
	if s.CycleNum != at {
		t.Fatalf("vetoed skip still moved the clock: %d -> %d", at, s.CycleNum)
	}
}

// benchSpin measures simulated instructions per wall-second on the
// latency-bound spin workload with or without fast-forward; the BENCH_3
// gate (≥1.8× with skipping — the non-fast-forward baseline got faster
// in BENCH_3, shrinking the ratio) mirrors this pair.
func benchSpin(b *testing.B, noFF bool) {
	cfg, _ := config.ByName("baseline")
	work, _ := workload.ByName("spin")
	const insts = 20000
	for i := 0; i < b.N; i++ {
		opt := Options{Cores: 1, Seed: 42, DMAInterval: 4000, DMABurst: 2, NoFastForward: noFF}
		s := New(cfg, work, opt)
		s.Run(insts, opt)
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkSpinFastForward(b *testing.B) { benchSpin(b, false) }
func BenchmarkSpinPlain(b *testing.B)       { benchSpin(b, true) }

// TestFastForwardNeverCrossesDMABurst asserts the DMA agent's schedule
// bounds the skip the same way.
func TestFastForwardNeverCrossesDMABurst(t *testing.T) {
	cfg, _ := config.ByName("baseline")
	work, _ := workload.ByName("spin")
	opt := Options{Cores: 1, Seed: 42, DMAInterval: 4000, DMABurst: 2}
	s := New(cfg, work, opt)
	findQuiescent(t, s)

	next := s.DMA.NextAt()
	if next <= s.CycleNum {
		t.Fatalf("findQuiescent returned with a due burst: next=%d now=%d", next, s.CycleNum)
	}
	if !s.tryFastForward(^uint64(0), s.CycleNum+1_000_000) {
		t.Fatal("expected a skip from a quiescent instant")
	}
	if s.CycleNum > next {
		t.Fatalf("skip crossed a scheduled DMA burst: now=%d next=%d", s.CycleNum, next)
	}
}
