package workload

import (
	"testing"

	"vbmo/internal/isa"
	"vbmo/internal/prog"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) < 20 {
		t.Fatalf("catalog has only %d workloads", len(cat))
	}
	names := map[string]bool{}
	for _, p := range cat {
		if names[p.Name] {
			t.Errorf("duplicate workload %q", p.Name)
		}
		names[p.Name] = true
		if p.Suite == "" {
			t.Errorf("%s: missing suite", p.Name)
		}
		if p.WorkingSet&(p.WorkingSet-1) != 0 {
			t.Errorf("%s: working set %d not a power of two", p.Name, p.WorkingSet)
		}
	}
	for _, want := range []string{"gzip", "mcf", "vortex", "apsi", "art", "wupwise", "tpcb", "tpch", "jbb", "barnes", "ocean", "radiosity", "raytrace"} {
		if !names[want] {
			t.Errorf("catalog missing %q", want)
		}
	}
	benchOnly := 0
	for _, p := range cat {
		if p.BenchOnly {
			benchOnly++
		}
	}
	if benchOnly == 0 {
		t.Error("catalog should carry bench-only workloads for the bench harness")
	}
	if len(Uniprocessor())+len(Multiprocessor())+benchOnly != len(cat) {
		t.Error("uni + multi + bench-only should partition the catalog")
	}
	for _, p := range append(Uniprocessor(), Multiprocessor()...) {
		if p.BenchOnly {
			t.Errorf("%s: bench-only workload leaked into a sweep set", p.Name)
		}
	}
	for _, p := range Multiprocessor() {
		if !p.Multi {
			t.Errorf("%s in Multiprocessor() but not Multi", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatal("ByName(mcf) failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName(nosuch) should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("gcc")
	a := Generate(p, 42)
	b := Generate(p, 42)
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("programs differ at %d", i)
		}
	}
	c := Generate(p, 43)
	same := 0
	n := a.Len()
	if c.Len() < n {
		n = c.Len()
	}
	for i := 0; i < n; i++ {
		if a.Code[i] == c.Code[i] {
			same++
		}
	}
	if same == n && a.Len() == c.Len() {
		t.Error("different seeds produced identical programs")
	}
}

// runMix functionally executes a workload and returns per-class dynamic
// instruction fractions.
func runMix(t *testing.T, name string, n int) map[isa.Class]float64 {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	pr := Generate(p, 7)
	im := prog.NewImage(7)
	ex := prog.NewExecutor(pr, im, InitState(p, 0, 7))
	counts := map[isa.Class]int{}
	for i := 0; i < n; i++ {
		c := ex.Step()
		counts[c.Op.Class()]++
	}
	out := map[isa.Class]float64{}
	for k, v := range counts {
		out[k] = float64(v) / float64(n)
	}
	return out
}

func TestDynamicMixNearTargets(t *testing.T) {
	for _, name := range []string{"gzip", "gcc", "vortex", "apsi", "tpcb"} {
		p, _ := ByName(name)
		mix := runMix(t, name, 60000)
		ld := mix[isa.ClassLoad]
		st := mix[isa.ClassStore]
		if ld < p.LoadFrac-0.12 || ld > p.LoadFrac+0.12 {
			t.Errorf("%s: load fraction %.3f, target %.3f", name, ld, p.LoadFrac)
		}
		if st < p.StoreFrac-0.08 || st > p.StoreFrac+0.08 {
			t.Errorf("%s: store fraction %.3f, target %.3f", name, st, p.StoreFrac)
		}
		br := mix[isa.ClassBranch]
		if br < 0.02 || br > p.BranchFrac+0.12 {
			t.Errorf("%s: branch fraction %.3f out of range", name, br)
		}
	}
}

func TestFPWorkloadUsesFPUnits(t *testing.T) {
	mix := runMix(t, "apsi", 40000)
	fp := mix[isa.ClassFPALU] + mix[isa.ClassFPMul] + mix[isa.ClassFPDiv]
	if fp < 0.10 {
		t.Errorf("apsi FP fraction %.3f too low", fp)
	}
	intMix := runMix(t, "gzip", 40000)
	fpInt := intMix[isa.ClassFPALU] + intMix[isa.ClassFPMul] + intMix[isa.ClassFPDiv]
	if fpInt > 0.05 {
		t.Errorf("gzip FP fraction %.3f too high", fpInt)
	}
}

func TestAllWorkloadsExecute(t *testing.T) {
	for _, p := range Catalog() {
		pr := Generate(p, 11)
		if pr.Len() < 200 {
			t.Errorf("%s: program too short (%d)", p.Name, pr.Len())
		}
		im := prog.NewImage(11)
		ex := prog.NewExecutor(pr, im, InitState(p, 0, 11))
		pcs := map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			c := ex.Step()
			pcs[c.PC] = true
			if c.Op.Class() == isa.ClassLoad || c.Op.Class() == isa.ClassStore {
				// Every load/store must land in a known segment.
				inPriv := c.Addr >= PrivateBase0 && c.Addr < PrivateBase0+PrivateStride
				inShared := c.Addr >= SharedBase && c.Addr < SharedBase+SharedSize+(64<<10) // streaming may drift past the mask
				inIO := c.Addr >= IOBase && c.Addr < IOBase+IOBlocks*64+(64<<10)            // streaming drift
				if !inPriv && !inShared && !inIO {
					t.Fatalf("%s: memory access outside segments: %#x", p.Name, c.Addr)
				}
			}
		}
		// The program must actually loop (reach a reasonable fraction
		// of its static instructions).
		if len(pcs) < pr.Len()/4 {
			t.Errorf("%s: only %d of %d static instructions executed", p.Name, len(pcs), pr.Len())
		}
	}
}

func TestSharedAccessesOnlyInMultiWorkloads(t *testing.T) {
	check := func(name string, wantShared bool) {
		p, _ := ByName(name)
		pr := Generate(p, 5)
		ex := prog.NewExecutor(pr, prog.NewImage(5), InitState(p, 1, 5))
		shared := 0
		for i := 0; i < 30000; i++ {
			c := ex.Step()
			if (c.Op.Class() == isa.ClassLoad || c.Op.Class() == isa.ClassStore) &&
				c.Addr >= SharedBase && c.Addr < IOBase {
				shared++
			}
		}
		if wantShared && shared == 0 {
			t.Errorf("%s: no shared accesses in MP workload", name)
		}
		if !wantShared && shared != 0 {
			t.Errorf("%s: %d shared accesses in uniprocessor workload", name, shared)
		}
	}
	check("ocean", true)
	check("gzip", false)
}

func TestInitStatePerCore(t *testing.T) {
	p, _ := ByName("barnes")
	s0 := InitState(p, 0, 9)
	s1 := InitState(p, 1, 9)
	if s0.ReadReg(1) == s1.ReadReg(1) {
		t.Error("cores share a private base")
	}
	if s0.ReadReg(3) == s1.ReadReg(3) {
		t.Error("cores share an LCG seed")
	}
	if s0.ReadReg(16) == s1.ReadReg(16) {
		t.Error("cores share a false-sharing word offset")
	}
	if s0.ReadReg(5) != s1.ReadReg(5) {
		t.Error("cores must share the shared-segment base")
	}
}

func TestSilentStoreRatesDiffer(t *testing.T) {
	// vortex is configured with much higher store value locality than
	// art; measure actual silent-store rates functionally.
	rate := func(name string) float64 {
		p, _ := ByName(name)
		pr := Generate(p, 3)
		im := prog.NewImage(3)
		ex := prog.NewExecutor(pr, im, InitState(p, 0, 3))
		silent, stores := 0, 0
		for i := 0; i < 60000; i++ {
			pc := ex.State.PC
			in, _ := pr.Fetch(pc)
			if in.Class() == isa.ClassStore {
				addr := in.EffAddr(ex.State.ReadReg(in.Src1))
				old := im.Read(addr)
				c := ex.Step()
				stores++
				if c.Result == old {
					silent++
				}
				continue
			}
			ex.Step()
		}
		if stores == 0 {
			return 0
		}
		return float64(silent) / float64(stores)
	}
	v, a := rate("vortex"), rate("art")
	if v <= a {
		t.Errorf("vortex silent rate %.3f should exceed art %.3f", v, a)
	}
	if v < 0.3 {
		t.Errorf("vortex silent rate %.3f too low", v)
	}
}

func TestLateStoreAddressesPresent(t *testing.T) {
	// Workloads with StoreAddrLate > 0 must contain the div/xor/add
	// late-address idiom.
	p, _ := ByName("vortex")
	pr := Generate(p, 13)
	divs := 0
	for _, in := range pr.Code {
		if in.Op == isa.OpDiv && in.Dst == 14 {
			divs++
		}
	}
	if divs == 0 {
		t.Error("vortex program contains no late-address store chains")
	}
}

func TestCodeSizeControlsProgramLength(t *testing.T) {
	p, _ := ByName("gzip")
	small := Generate(p, 3)
	p.CodeSize = 6000
	big := Generate(p, 3)
	if big.Len() < 2*small.Len() {
		t.Errorf("CodeSize ignored: %d vs %d", big.Len(), small.Len())
	}
	// Commercial workloads exceed the 32k L1I by construction.
	tp, _ := ByName("tpcb")
	if Generate(tp, 3).Len()*4 < 40<<10 {
		t.Errorf("tpcb code footprint too small: %d instructions", Generate(tp, 3).Len())
	}
}

func TestIORegionAccessesGenerated(t *testing.T) {
	// With IOFrac > 0 the program occasionally reads the DMA ring.
	p, _ := ByName("tpch")
	p.IOFrac = 0.05 // crank for test determinism
	pr := Generate(p, 9)
	ex := prog.NewExecutor(pr, prog.NewImage(9), InitState(p, 0, 9))
	io := 0
	for i := 0; i < 60000; i++ {
		c := ex.Step()
		cls := c.Op.Class()
		if (cls == isa.ClassLoad || cls == isa.ClassStore) && c.Addr >= IOBase {
			io++
		}
	}
	if io == 0 {
		t.Error("no I/O-region accesses generated")
	}
}

func TestMembarsOnlyWithBarrierKnob(t *testing.T) {
	count := func(p Params) int {
		pr := Generate(p, 5)
		n := 0
		for _, in := range pr.Code {
			if in.Op == isa.OpMembar {
				n++
			}
		}
		return n
	}
	pNo, _ := ByName("barnes") // Barriers: 0
	if c := count(pNo); c != 0 {
		t.Errorf("barnes has %d membars with Barriers=0", c)
	}
	pYes, _ := ByName("specweb")
	if count(pYes) == 0 {
		t.Error("specweb should contain membars")
	}
}
