// Package workload generates the synthetic benchmark programs that stand
// in for the paper's SPEC CPU2000, SPLASH-2 and commercial workloads
// (DESIGN.md §2). Each named workload is a parameterised program whose
// dynamic properties — instruction mix, working-set size, branch
// predictability, pointer chasing, store value locality, late-resolving
// store addresses, and (for multiprocessor workloads) sharing and
// contention patterns — are the properties the value-based replay
// mechanism and its filters actually respond to.
package workload

// Params describes one synthetic workload. Fractions are of dynamic
// instructions unless stated otherwise; the generator self-balances its
// emission so the realized mix tracks these targets.
type Params struct {
	// Name identifies the workload ("gzip", "ocean", ...).
	Name string
	// Suite is "specint", "specfp", "commercial" or "splash2".
	Suite string
	// Multi marks workloads intended for the multiprocessor system.
	Multi bool
	// BenchOnly marks workloads used only by the benchmark harness
	// (cmd/experiments -experiment bench); they are excluded from the
	// figure and litmus sweeps so the paper-facing outputs are
	// unchanged by their presence.
	BenchOnly bool

	// Instruction mix targets. The remainder after loads, stores and
	// branches is ALU work, split by the FP/Mul/Div fractions below.
	LoadFrac   float64 // paper: loads ~30% of dynamic instructions
	StoreFrac  float64 // paper: stores ~14%
	BranchFrac float64

	// FPFrac is the fraction of ALU work executed on FP units; MulFrac
	// and DivFrac the fraction on integer multiplier/divider.
	FPFrac  float64
	MulFrac float64
	DivFrac float64

	// WorkingSet is the private data footprint in bytes (power of two).
	WorkingSet int
	// Locality is the number of memory accesses performed per computed
	// block base: higher values mean more spatial locality.
	Locality int
	// Stream is the probability a base-address update is a cheap
	// next-block stream (sequential access) rather than a random jump
	// within the working set.
	Stream float64
	// PointerChase is the probability a base-address computation is a
	// pointer dereference (load feeding the next load's address).
	PointerChase float64

	// SilentStores is the probability a store rewrites the value
	// already in memory (store value locality; Lepak & Lipasti).
	SilentStores float64
	// StoreAddrLate is the probability a store's address depends on a
	// long-latency (divide) chain, leaving it unresolved while younger
	// loads issue.
	StoreAddrLate float64
	// RAWHazard is the probability that a late-address store is
	// immediately followed by a load to the same address — the Figure
	// 1(a) premature-load scenario.
	RAWHazard float64
	// ForwardFrac is the probability a store is followed by a load to
	// the same address with a resolved store address (exercises
	// store→load forwarding).
	ForwardFrac float64

	// BranchBias is the taken-probability of data-dependent branches.
	BranchBias float64
	// RandomBranches is the fraction of conditional branches whose
	// outcome is data-dependent (hard to predict); the rest are
	// loop-closing countdown branches.
	RandomBranches float64
	// LoopTrip is the trip count of inner countdown loops.
	LoopTrip int

	// Multiprocessor knobs (ignored when Multi is false).

	// SharedFrac is the fraction of memory accesses to the shared
	// segment.
	SharedFrac float64
	// HotFrac is the fraction of shared accesses that target the small
	// hot set (contended blocks).
	HotFrac float64
	// FalseSharing is the probability a hot access uses a per-core
	// word within the shared block (coherence traffic without value
	// conflicts) rather than the same word (true races).
	FalseSharing float64
	// Barriers is the probability of emitting a membar after a shared
	// store.
	Barriers float64

	// CodeSize is the static program length in instructions. Large
	// commercial codes exceed the 32k L1 instruction cache, as their
	// real counterparts do.
	CodeSize int

	// IOFrac is the probability a base-address computation targets the
	// coherent memory-mapped I/O buffer region written by the DMA
	// agent. This applies to uniprocessor workloads too: coherent I/O
	// is the only snoop traffic a uniprocessor observes (paper §5.1).
	IOFrac float64
}

// sane fills defaults for fields a catalog entry leaves zero.
func (p Params) sane() Params {
	if p.LoadFrac == 0 {
		p.LoadFrac = 0.30
	}
	if p.StoreFrac == 0 {
		p.StoreFrac = 0.14
	}
	if p.BranchFrac == 0 {
		p.BranchFrac = 0.12
	}
	if p.WorkingSet == 0 {
		p.WorkingSet = 256 << 10
	}
	if p.Locality == 0 {
		p.Locality = 4
	}
	if p.Stream == 0 {
		p.Stream = 0.5
	}
	if p.BranchBias == 0 {
		p.BranchBias = 0.5
	}
	if p.LoopTrip == 0 {
		p.LoopTrip = 8
	}
	if p.IOFrac == 0 {
		p.IOFrac = 0.002
	}
	if p.CodeSize == 0 {
		p.CodeSize = 1600
	}
	return p
}

// Catalog returns every named workload, uniprocessor suites first.
// Parameter choices follow the published characteristics of each
// benchmark at the fidelity the experiments need; see DESIGN.md §2.
func Catalog() []Params {
	list := []Params{
		// SPECint2000-like uniprocessor workloads.
		{Name: "gzip", Suite: "specint", WorkingSet: 64 << 10, Locality: 10, Stream: 0.8,
			RandomBranches: 0.20, BranchBias: 0.6, SilentStores: 0.35,
			StoreAddrLate: 0.016, ForwardFrac: 0.15, RAWHazard: 0.02},
		{Name: "gcc", Suite: "specint", CodeSize: 6000, WorkingSet: 128 << 10, Locality: 18, Stream: 0.75,
			BranchFrac: 0.16, RandomBranches: 0.34, BranchBias: 0.55,
			SilentStores: 0.45, StoreAddrLate: 0.032, ForwardFrac: 0.20, RAWHazard: 0.03},
		{Name: "mcf", Suite: "specint", WorkingSet: 1 << 20, Locality: 6, Stream: 0.15,
			PointerChase: 0.65, RandomBranches: 0.30, BranchBias: 0.45,
			SilentStores: 0.30, StoreAddrLate: 0.020, RAWHazard: 0.02},
		{Name: "parser", Suite: "specint", WorkingSet: 64 << 10, Locality: 9, Stream: 0.6,
			PointerChase: 0.35, RandomBranches: 0.30, BranchBias: 0.5,
			SilentStores: 0.40, StoreAddrLate: 0.024, ForwardFrac: 0.18, RAWHazard: 0.03},
		{Name: "vortex", Suite: "specint", CodeSize: 5000, WorkingSet: 128 << 10, Locality: 16, Stream: 0.8,
			StoreFrac: 0.20, LoadFrac: 0.28, RandomBranches: 0.14, BranchBias: 0.7,
			SilentStores: 0.55, StoreAddrLate: 0.048, ForwardFrac: 0.25, RAWHazard: 0.04},
		{Name: "bzip2", Suite: "specint", WorkingSet: 128 << 10, Locality: 8, Stream: 0.7,
			RandomBranches: 0.34, BranchBias: 0.6, SilentStores: 0.30,
			StoreAddrLate: 0.016, ForwardFrac: 0.12, RAWHazard: 0.02},
		{Name: "twolf", Suite: "specint", WorkingSet: 32 << 10, Locality: 12, Stream: 0.7,
			PointerChase: 0.25, RandomBranches: 0.40, BranchBias: 0.5,
			SilentStores: 0.35, StoreAddrLate: 0.024, RAWHazard: 0.03},
		{Name: "gap", Suite: "specint", WorkingSet: 64 << 10, Locality: 12,
			MulFrac: 0.10, PointerChase: 0.20, RandomBranches: 0.20, BranchBias: 0.6,
			SilentStores: 0.40, StoreAddrLate: 0.020, ForwardFrac: 0.15, RAWHazard: 0.02},
		{Name: "perlbmk", Suite: "specint", CodeSize: 5000, WorkingSet: 64 << 10, Locality: 12, Stream: 0.7,
			BranchFrac: 0.18, PointerChase: 0.25, RandomBranches: 0.30, BranchBias: 0.55,
			SilentStores: 0.45, StoreAddrLate: 0.028, ForwardFrac: 0.22, RAWHazard: 0.03},
		{Name: "crafty", Suite: "specint", WorkingSet: 32 << 10, Locality: 10, Stream: 0.6,
			MulFrac: 0.05, PointerChase: 0.20, RandomBranches: 0.18, BranchBias: 0.6,
			SilentStores: 0.30, StoreAddrLate: 0.020, ForwardFrac: 0.10, RAWHazard: 0.02},
		{Name: "eon", Suite: "specint", WorkingSet: 16 << 10, Locality: 10, Stream: 0.6,
			FPFrac: 0.30, PointerChase: 0.15, RandomBranches: 0.14, BranchBias: 0.65,
			SilentStores: 0.25, StoreAddrLate: 0.020, ForwardFrac: 0.15, RAWHazard: 0.02},

		// SPECfp2000 workloads chosen by the paper for high reorder
		// buffer utilization.
		{Name: "apsi", Suite: "specfp", WorkingSet: 1 << 20, Locality: 12, Stream: 0.80,
			FPFrac: 0.65, DivFrac: 0.06, LoadFrac: 0.32, StoreFrac: 0.12,
			BranchFrac: 0.06, RandomBranches: 0.10, BranchBias: 0.7, LoopTrip: 16,
			SilentStores: 0.20, StoreAddrLate: 0.060, ForwardFrac: 0.10, RAWHazard: 0.05},
		{Name: "art", Suite: "specfp", WorkingSet: 2 << 20, Locality: 5, Stream: 0.6,
			FPFrac: 0.55, LoadFrac: 0.35, StoreFrac: 0.08, BranchFrac: 0.08,
			RandomBranches: 0.12, BranchBias: 0.6, LoopTrip: 32,
			SilentStores: 0.20, StoreAddrLate: 0.040, ForwardFrac: 0.05, RAWHazard: 0.04},
		{Name: "wupwise", Suite: "specfp", WorkingSet: 512 << 10, Locality: 10, Stream: 0.8,
			FPFrac: 0.60, MulFrac: 0.10, LoadFrac: 0.30, StoreFrac: 0.10,
			BranchFrac: 0.05, RandomBranches: 0.10, BranchBias: 0.8, LoopTrip: 24,
			SilentStores: 0.15, StoreAddrLate: 0.024, ForwardFrac: 0.08, RAWHazard: 0.02},

		// Commercial uniprocessor workloads.
		{Name: "tpcb", Suite: "commercial", CodeSize: 12000, WorkingSet: 512 << 10, Locality: 14, Stream: 0.75,
			BranchFrac: 0.16, RandomBranches: 0.34, BranchBias: 0.55,
			SilentStores: 0.50, StoreAddrLate: 0.040, ForwardFrac: 0.25, RAWHazard: 0.04},
		{Name: "tpch", Suite: "commercial", CodeSize: 10000, WorkingSet: 512 << 10, Locality: 10, Stream: 0.7,
			BranchFrac: 0.14, RandomBranches: 0.24, BranchBias: 0.6,
			SilentStores: 0.45, StoreAddrLate: 0.032, ForwardFrac: 0.20, RAWHazard: 0.03},
		{Name: "jbb", Suite: "commercial", CodeSize: 12000, WorkingSet: 512 << 10, Locality: 12, Stream: 0.7,
			PointerChase: 0.30, BranchFrac: 0.16, RandomBranches: 0.30,
			BranchBias: 0.55, SilentStores: 0.50, StoreAddrLate: 0.036,
			ForwardFrac: 0.22, RAWHazard: 0.04},

		// SPLASH-2 and commercial multiprocessor workloads.
		{Name: "barnes", Suite: "splash2", Multi: true, WorkingSet: 512 << 10,
			Locality: 9, FPFrac: 0.40, PointerChase: 0.25,
			RandomBranches: 0.20, BranchBias: 0.6, SilentStores: 0.30,
			StoreAddrLate: 0.024, RAWHazard: 0.02,
			SharedFrac: 0.10, HotFrac: 0.07, FalseSharing: 0.60},
		{Name: "ocean", Suite: "splash2", Multi: true, WorkingSet: 4 << 20,
			Locality: 18, Stream: 0.95, FPFrac: 0.50, LoadFrac: 0.33,
			RandomBranches: 0.10, BranchBias: 0.75, LoopTrip: 32,
			SilentStores: 0.20, StoreAddrLate: 0.020, RAWHazard: 0.02,
			SharedFrac: 0.17, HotFrac: 0.05, FalseSharing: 0.80},
		{Name: "radiosity", Suite: "splash2", Multi: true, WorkingSet: 512 << 10,
			Locality: 9, FPFrac: 0.35, PointerChase: 0.30,
			RandomBranches: 0.24, BranchBias: 0.55, SilentStores: 0.35,
			StoreAddrLate: 0.028, RAWHazard: 0.03,
			SharedFrac: 0.12, HotFrac: 0.17, FalseSharing: 0.40},
		{Name: "raytrace", Suite: "splash2", Multi: true, WorkingSet: 1 << 20,
			Locality: 9, FPFrac: 0.40, PointerChase: 0.40,
			RandomBranches: 0.24, BranchBias: 0.55, SilentStores: 0.30,
			StoreAddrLate: 0.024, RAWHazard: 0.02,
			SharedFrac: 0.10, HotFrac: 0.21, FalseSharing: 0.35},
		{Name: "specweb", Suite: "commercial", Multi: true, CodeSize: 12000, WorkingSet: 2 << 20,
			Locality: 9, BranchFrac: 0.16, RandomBranches: 0.34,
			BranchBias: 0.55, SilentStores: 0.50, StoreAddrLate: 0.036,
			ForwardFrac: 0.20, RAWHazard: 0.04,
			SharedFrac: 0.07, HotFrac: 0.14, FalseSharing: 0.50, Barriers: 0.05},
		{Name: "jbb-mp", Suite: "commercial", Multi: true, CodeSize: 12000, WorkingSet: 2 << 20,
			Locality: 9, PointerChase: 0.25, BranchFrac: 0.16,
			RandomBranches: 0.30, BranchBias: 0.55, SilentStores: 0.50,
			StoreAddrLate: 0.036, ForwardFrac: 0.20, RAWHazard: 0.04,
			SharedFrac: 0.12, HotFrac: 0.24, FalseSharing: 0.30, Barriers: 0.05},
		{Name: "tpch-mp", Suite: "commercial", Multi: true, CodeSize: 10000, WorkingSet: 4 << 20,
			Locality: 9, BranchFrac: 0.14, PointerChase: 0.25, RandomBranches: 0.24,
			BranchBias: 0.6, SilentStores: 0.45, StoreAddrLate: 0.032,
			ForwardFrac: 0.18, RAWHazard: 0.03,
			SharedFrac: 0.07, HotFrac: 0.10, FalseSharing: 0.55, Barriers: 0.03},

		// Benchmark-only workloads (excluded from figure/litmus sweeps).
		// spin is a latency-bound pointer chase: nearly every access
		// computes its base from the previous load's value over a
		// footprint far beyond the caches, so the core spends hundreds
		// of cycles per miss with an empty schedule — the stall-heavy
		// shape the quiescence fast-forward (DESIGN.md §12) exists for.
		{Name: "spin", Suite: "bench", BenchOnly: true, WorkingSet: 16 << 20,
			Locality: 1, Stream: 0.001, PointerChase: 0.95,
			LoadFrac: 0.42, StoreFrac: 0.04, BranchFrac: 0.05,
			RandomBranches: 0.02, BranchBias: 0.9, LoopTrip: 64,
			SilentStores: 0.20, StoreAddrLate: 0.004, RAWHazard: 0.01},
		// spin-mp is the 16-way variant: the same chase per core plus a
		// small shared hot set and barriers, so fast-forward windows are
		// bounded by cross-core coherence traffic as well as misses.
		{Name: "spin-mp", Suite: "bench", Multi: true, BenchOnly: true, WorkingSet: 16 << 20,
			Locality: 1, Stream: 0.001, PointerChase: 0.95,
			LoadFrac: 0.42, StoreFrac: 0.04, BranchFrac: 0.05,
			RandomBranches: 0.02, BranchBias: 0.9, LoopTrip: 64,
			SilentStores: 0.20, StoreAddrLate: 0.004, RAWHazard: 0.01,
			SharedFrac: 0.02, HotFrac: 0.10, FalseSharing: 0.50, Barriers: 0.01},
	}
	for i := range list {
		list[i] = list[i].sane()
	}
	return list
}

// ByName returns the catalog entry with the given name; ok is false when
// no workload has that name.
func ByName(name string) (Params, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// Uniprocessor returns the catalog's uniprocessor sweep workloads
// (benchmark-only entries excluded).
func Uniprocessor() []Params {
	var out []Params
	for _, p := range Catalog() {
		if !p.Multi && !p.BenchOnly {
			out = append(out, p)
		}
	}
	return out
}

// Multiprocessor returns the catalog's multiprocessor sweep workloads
// (benchmark-only entries excluded).
func Multiprocessor() []Params {
	var out []Params
	for _, p := range Catalog() {
		if p.Multi && !p.BenchOnly {
			out = append(out, p)
		}
	}
	return out
}
