package workload

import (
	"sync"

	"vbmo/internal/isa"
	"vbmo/internal/prog"
)

// Memory layout. Each core owns a private data segment; multiprocessor
// workloads also access one shared segment whose first HotBlocks cache
// blocks form the contended hot set.
const (
	// PrivateBase0 is core 0's private segment base.
	PrivateBase0 = uint64(1) << 32
	// PrivateStride separates consecutive cores' private segments.
	PrivateStride = uint64(1) << 28
	// SharedBase is the shared segment base address.
	SharedBase = uint64(1) << 40
	// SharedSize is the shared segment size in bytes.
	SharedSize = 1 << 20
	// HotBlocks is the number of contended 64-byte blocks.
	HotBlocks = 8
	// IOBase is the coherent memory-mapped I/O buffer region base; it
	// must match coherence.IOBase (asserted in the system package).
	IOBase = uint64(1) << 44
	// IOBlocks is the I/O buffer ring size in cache blocks.
	IOBlocks = 64
	// Entry is the program entry PC.
	Entry = uint64(0x10000)
)

// Register conventions used by generated programs.
const (
	rPrivBase  = isa.Reg(1)  // private segment base
	rPrivMask  = isa.Reg(2)  // private working-set mask
	rLCG       = isa.Reg(3)  // linear congruential generator state
	rChase     = isa.Reg(4)  // pointer-chase cursor
	rShrBase   = isa.Reg(5)  // shared segment base
	rShrMask   = isa.Reg(6)  // shared segment mask
	rHotMask   = isa.Reg(7)  // hot-set block mask (block-aligned bits)
	rBase      = isa.Reg(8)  // current block base address
	rBias      = isa.Reg(9)  // branch bias threshold (14-bit)
	rLoop      = isa.Reg(10) // inner countdown loop counter
	rT1        = isa.Reg(11) // scratch
	rT2        = isa.Reg(12) // scratch
	rT3        = isa.Reg(13) // scratch (late store address)
	rT4        = isa.Reg(14) // scratch (div result)
	rT5        = isa.Reg(15) // scratch
	rCoreWord  = isa.Reg(16) // per-core word offset for false sharing
	rShiftHi   = isa.Reg(17) // shift amount for branch condition bits
	rLCGMul    = isa.Reg(18) // LCG multiplier constant
	rShiftAddr = isa.Reg(19) // shift amount for address bits
	rVal0      = isa.Reg(20) // first of the rotating value registers
	numVals    = 12          // value registers r20..r31
	rShiftHi2  = isa.Reg(32) // alternate shift amount (decorrelates reuse)
	rBits14    = isa.Reg(33) // 14-bit mask for branch-bias comparisons
	rOne       = isa.Reg(34) // the constant 1
	rIOBase    = isa.Reg(35) // coherent I/O buffer region base
	rIOMask    = isa.Reg(36) // I/O region mask
)

// rng is a small deterministic xorshift64* generator used only at
// program-generation time.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// f64 returns a uniform float in [0,1).
func (r *rng) f64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// chance returns true with probability p.
func (r *rng) chance(p float64) bool { return r.f64() < p }

// probs are the per-emission sampling probabilities for each pattern
// category. They start at the Params mix targets and are calibrated
// (Generate runs the candidate program functionally and re-weights) so
// the realized dynamic mix tracks the targets despite the address-
// computation and branch-condition overhead each pattern carries.
type probs struct {
	load, store, branch float64
}

func (pr probs) normalized() probs {
	sum := pr.load + pr.store + pr.branch
	if sum > 0.92 {
		f := 0.92 / sum
		pr.load *= f
		pr.store *= f
		pr.branch *= f
	}
	return pr
}

// gen carries program-generation state.
type gen struct {
	b   *prog.Builder
	rnd *rng
	p   Params
	pp  probs

	memSinceBase int
	valNext      int
	baseCnt      int // base computations emitted (amortizes LCG advances)
	brCnt        int // data branches emitted (amortizes LCG advances)

	// open inner loop, if any
	loopOpen  bool
	loopLabel prog.Label
	loopLeft  int
}

func (g *gen) emit(in isa.Inst) {
	g.b.Emit(in)
}

// val returns the next rotating value register.
func (g *gen) val() isa.Reg {
	r := rVal0 + isa.Reg(g.valNext%numVals)
	g.valNext++
	return r
}

// advanceLCG emits the in-program random number generator step.
func (g *gen) advanceLCG() {
	g.emit(isa.Inst{Op: isa.OpMul, Dst: rLCG, Src1: rLCG, Src2: rLCGMul})
	g.emit(isa.Inst{Op: isa.OpAddI, Dst: rLCG, Src1: rLCG, Imm: 0x2f39})
}

// newBase emits code computing a fresh block base address into rBase.
func (g *gen) newBase() {
	g.memSinceBase = 0
	g.baseCnt++
	if g.rnd.chance(g.p.IOFrac) {
		// Rare read of the coherent I/O buffer region the DMA agent
		// writes: the resulting fills are externally sourced and the
		// DMA's invalidations become visible to this core.
		g.advanceLCG()
		g.emit(isa.Inst{Op: isa.OpShr, Dst: rT1, Src1: rLCG, Src2: rShiftAddr})
		g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT1, Src1: rT1, Src2: rIOMask})
		g.emit(isa.Inst{Op: isa.OpAdd, Dst: rBase, Src1: rIOBase, Src2: rT1})
		return
	}
	shared := g.p.Multi && g.rnd.chance(g.p.SharedFrac)
	if !shared && g.rnd.chance(g.p.PointerChase) {
		// Pointer chase: derive the next cursor from the last chased
		// value so consecutive bases form a load-to-load dependence
		// chain.
		g.emit(isa.Inst{Op: isa.OpLoad, Dst: rT1, Src1: rChase})
		g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT1, Src1: rT1, Src2: rPrivMask})
		g.emit(isa.Inst{Op: isa.OpAdd, Dst: rChase, Src1: rPrivBase, Src2: rT1})
		g.emit(isa.Inst{Op: isa.OpOr, Dst: rBase, Src1: rChase, Src2: isa.RZero})
		return
	}
	if !shared && g.rnd.chance(g.p.Stream) {
		// Streaming access: advance to the next cache block. The walk
		// re-anchors inside the working set at the next random base, so
		// drift past the mask is bounded and negligible.
		g.emit(isa.Inst{Op: isa.OpAddI, Dst: rBase, Src1: rBase, Imm: 64})
		return
	}
	// Random jump within the working set (or shared segment). The LCG
	// advances only every other jump; alternate jumps reuse its high
	// bits via a second shift amount.
	shift := rShiftAddr
	if g.baseCnt%2 == 1 {
		g.advanceLCG()
	} else {
		shift = rShiftHi2
	}
	g.emit(isa.Inst{Op: isa.OpShr, Dst: rT1, Src1: rLCG, Src2: shift})
	if shared && g.rnd.chance(g.p.HotFrac) {
		// Contended hot set: block-aligned offset within the hot
		// blocks; false sharing adds a per-core word offset.
		g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT1, Src1: rT1, Src2: rHotMask})
		if g.rnd.chance(g.p.FalseSharing) {
			g.emit(isa.Inst{Op: isa.OpAdd, Dst: rT1, Src1: rT1, Src2: rCoreWord})
		}
		g.emit(isa.Inst{Op: isa.OpAdd, Dst: rBase, Src1: rShrBase, Src2: rT1})
		return
	}
	if shared {
		g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT1, Src1: rT1, Src2: rShrMask})
		g.emit(isa.Inst{Op: isa.OpAdd, Dst: rBase, Src1: rShrBase, Src2: rT1})
		return
	}
	g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT1, Src1: rT1, Src2: rPrivMask})
	g.emit(isa.Inst{Op: isa.OpAdd, Dst: rBase, Src1: rPrivBase, Src2: rT1})
}

func (g *gen) ensureBase() {
	if g.memSinceBase >= g.p.Locality {
		g.newBase()
	}
}

func (g *gen) off() int64 {
	return int64(g.rnd.intn(8)) * 8
}

// emitLoad emits one load (plus any base computation it needs). In
// floating-point workloads a dependent FP operation often consumes the
// loaded value — the load-use chains that give apsi/art/wupwise their
// high reorder-buffer occupancy.
func (g *gen) emitLoad() {
	g.ensureBase()
	g.memSinceBase++
	dst := g.val()
	g.emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: rBase, Imm: g.off()})
	if g.rnd.chance(g.p.FPFrac * 0.6) {
		other := rVal0 + isa.Reg(g.rnd.intn(numVals))
		g.emit(isa.Inst{Op: isa.OpFAdd, Dst: g.val(), Src1: dst, Src2: other})
	}
}

// emitStore emits one store, with the silent-store, late-address,
// RAW-hazard and forwarding variations the experiments depend on.
func (g *gen) emitStore() {
	g.ensureBase()
	g.memSinceBase++
	off := g.off()
	silent := g.rnd.chance(g.p.SilentStores)
	var src isa.Reg
	if silent {
		// Store value locality: re-store the value already in memory.
		src = g.val()
		g.emit(isa.Inst{Op: isa.OpLoad, Dst: src, Src1: rBase, Imm: off})
	} else {
		src = rVal0 + isa.Reg(g.rnd.intn(numVals))
	}
	if g.rnd.chance(g.p.StoreAddrLate) {
		// Late-resolving store address: rT3 equals rBase but only after
		// a 12-cycle divide completes, so younger loads issue while
		// this store's address is unresolved (Figure 1(a) setup).
		g.emit(isa.Inst{Op: isa.OpDiv, Dst: rT4, Src1: rLCG, Src2: rBias})
		g.emit(isa.Inst{Op: isa.OpXor, Dst: rT5, Src1: rT4, Src2: rT4})
		g.emit(isa.Inst{Op: isa.OpAdd, Dst: rT3, Src1: rBase, Src2: rT5})
		g.emit(isa.Inst{Op: isa.OpStore, Src1: rT3, Src2: src, Imm: off})
		if g.rnd.chance(g.p.RAWHazard) {
			// The premature-load scenario: this load's address is ready
			// immediately, so it can issue before the store above
			// resolves. When the store was silent the premature value
			// is still correct — the squash the baseline load queue
			// takes is unnecessary, and value-based replay avoids it.
			g.emit(isa.Inst{Op: isa.OpLoad, Dst: g.val(), Src1: rBase, Imm: off})
		}
	} else {
		g.emit(isa.Inst{Op: isa.OpStore, Src1: rBase, Src2: src, Imm: off})
		if g.rnd.chance(g.p.ForwardFrac) {
			// Same-address load with both addresses resolved: exercises
			// store-to-load forwarding from the store queue.
			g.emit(isa.Inst{Op: isa.OpLoad, Dst: g.val(), Src1: rBase, Imm: off})
		}
	}
	if g.p.Multi && g.rnd.chance(g.p.Barriers) {
		g.emit(isa.Inst{Op: isa.OpMembar})
	}
}

// emitALU emits one arithmetic instruction on the rotating value
// registers, classed per the FP/Mul/Div mix.
func (g *gen) emitALU() {
	a := rVal0 + isa.Reg(g.rnd.intn(numVals))
	b := rVal0 + isa.Reg(g.rnd.intn(numVals))
	d := g.val()
	roll := g.rnd.f64()
	var op isa.Opcode
	switch {
	case roll < g.p.DivFrac:
		op = isa.OpDiv
	case roll < g.p.DivFrac+g.p.MulFrac:
		op = isa.OpMul
	case roll < g.p.DivFrac+g.p.MulFrac+g.p.FPFrac:
		op = []isa.Opcode{isa.OpFAdd, isa.OpFMul, isa.OpFDiv}[g.rnd.intn(3)]
	default:
		op = []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpOr, isa.OpAnd, isa.OpSltu}[g.rnd.intn(6)]
	}
	g.emit(isa.Inst{Op: op, Dst: d, Src1: a, Src2: b})
}

// emitBranch emits either a data-dependent biased forward branch or
// opens an inner countdown loop.
func (g *gen) emitBranch() {
	if !g.loopOpen && !g.rnd.chance(g.p.RandomBranches) {
		// Open a countdown loop; its body is whatever the main
		// emission loop produces until loopLeft instructions pass.
		g.emit(isa.Inst{Op: isa.OpLui, Dst: rLoop, Imm: int64(g.p.LoopTrip)})
		g.loopLabel = g.b.Here()
		g.loopOpen = true
		g.loopLeft = 8 + g.rnd.intn(12)
		return
	}
	g.brCnt++
	skip := g.b.NewLabel()
	if g.p.BranchBias > 0.38 && g.p.BranchBias < 0.62 {
		// Near-50/50 data branch: test the low bit of a recently
		// computed value register, the way real code branches on
		// values it already has in hand. One overhead instruction.
		src := rVal0 + isa.Reg(g.rnd.intn(numVals))
		g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT2, Src1: src, Src2: rOne})
		g.b.Branch(isa.OpBnez, rT2, skip)
	} else {
		// Strongly biased branch: compare fresh LCG bits against the
		// bias threshold; taken with probability rBias/2^14. The LCG
		// advances only every fourth such branch, with rotating shift
		// amounts decorrelating the reused bits.
		if g.brCnt%4 == 1 {
			g.advanceLCG()
		}
		shift := rShiftHi
		if g.brCnt%2 == 0 {
			shift = rShiftHi2
		}
		g.emit(isa.Inst{Op: isa.OpShr, Dst: rT2, Src1: rLCG, Src2: shift})
		g.emit(isa.Inst{Op: isa.OpAnd, Dst: rT2, Src1: rT2, Src2: rBits14})
		g.emit(isa.Inst{Op: isa.OpSltu, Dst: rT2, Src1: rT2, Src2: rBias})
		g.b.Branch(isa.OpBnez, rT2, skip)
	}
	g.emitALU()
	g.b.Bind(skip)
}

// closeLoop emits the countdown decrement and backward branch.
func (g *gen) closeLoop() {
	g.emit(isa.Inst{Op: isa.OpAddI, Dst: rLoop, Src1: rLoop, Imm: -1})
	g.b.Branch(isa.OpBnez, rLoop, g.loopLabel)
	g.loopOpen = false
}

// generateOnce builds one candidate program with the given sampling
// probabilities.
func generateOnce(p Params, seed uint64, pp probs) *prog.Program {
	g := &gen{b: prog.NewBuilder(Entry), rnd: newRng(seed), p: p, pp: pp.normalized()}
	top := g.b.Here()
	targetStatic := p.CodeSize
	for g.b.Pos() < targetStatic {
		if g.loopOpen {
			g.loopLeft--
			if g.loopLeft <= 0 {
				g.closeLoop()
				continue
			}
		}
		r := g.rnd.f64()
		switch {
		case r < g.pp.load:
			g.emitLoad()
		case r < g.pp.load+g.pp.store:
			g.emitStore()
		case r < g.pp.load+g.pp.store+g.pp.branch:
			g.emitBranch()
		default:
			g.emitALU()
		}
	}
	if g.loopOpen {
		g.closeLoop()
	}
	g.b.Branch(isa.OpJump, 0, top)
	return g.b.Build()
}

// measureMix functionally executes n instructions of pr and returns the
// realized load/store/branch dynamic fractions.
func measureMix(p Params, pr *prog.Program, seed uint64, n int) probs {
	ex := prog.NewExecutor(pr, prog.NewImage(seed), InitState(p, 0, seed))
	var m probs
	for i := 0; i < n; i++ {
		c := ex.Step()
		switch c.Op.Class() {
		case isa.ClassLoad:
			m.load++
		case isa.ClassStore:
			m.store++
		case isa.ClassBranch:
			m.branch++
		}
	}
	m.load /= float64(n)
	m.store /= float64(n)
	m.branch /= float64(n)
	return m
}

// genKey identifies one calibrated program: Params is a comparable
// value type, so (Params, seed) keys the memo directly.
type genKey struct {
	p    Params
	seed uint64
}

var genMemo struct {
	sync.Mutex
	m map[genKey]*prog.Program
}

// Generate builds the static program for the workload. All cores of a
// multiprocessor run execute the same program (SPMD); per-core data
// placement comes from InitState. Generation calibrates: it executes
// each candidate program functionally and re-weights the sampling
// probabilities so the realized dynamic mix tracks the Params targets.
//
// Generation is deterministic in (Params, seed) and the returned
// Program is read-only after construction, so results are memoized:
// experiment sweeps re-run the same workload across many machine
// configurations and samples, and each calibration costs three
// functional executions that the sweep need not repeat.
func Generate(p Params, seed uint64) *prog.Program {
	p = p.sane()
	key := genKey{p, seed}
	genMemo.Lock()
	if pr, ok := genMemo.m[key]; ok {
		genMemo.Unlock()
		return pr
	}
	genMemo.Unlock()
	pr := generate(p, seed)
	genMemo.Lock()
	if genMemo.m == nil {
		genMemo.m = make(map[genKey]*prog.Program)
	}
	genMemo.m[key] = pr
	genMemo.Unlock()
	return pr
}

// generate is the uncached calibration loop behind Generate.
func generate(p Params, seed uint64) *prog.Program {
	adj := probs{load: p.LoadFrac, store: p.StoreFrac, branch: p.BranchFrac}
	var out *prog.Program
	for iter := 0; iter < 3; iter++ {
		out = generateOnce(p, seed, adj)
		if iter == 2 {
			break
		}
		m := measureMix(p, out, seed, 12000)
		adj.load *= ratio(p.LoadFrac, m.load)
		adj.store *= ratio(p.StoreFrac, m.store)
		adj.branch *= ratio(p.BranchFrac, m.branch)
	}
	return out
}

// ratio returns target/actual clamped to [0.5, 2.5] to keep the
// calibration loop stable.
func ratio(target, actual float64) float64 {
	if actual < 0.005 {
		actual = 0.005
	}
	r := target / actual
	if r < 0.5 {
		r = 0.5
	}
	if r > 2.5 {
		r = 2.5
	}
	return r
}

// InitState returns the architectural register state for the given core.
// Different cores receive different private bases, LCG seeds, and
// false-sharing word offsets.
func InitState(p Params, core int, seed uint64) prog.ArchState {
	p = p.sane()
	var s prog.ArchState
	priv := PrivateBase0 + uint64(core)*PrivateStride
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	bias := int64(p.BranchBias * 16384)
	if bias < 1 {
		bias = 1
	}
	s.WriteReg(rPrivBase, priv)
	s.WriteReg(rPrivMask, uint64(p.WorkingSet-1))
	s.WriteReg(rLCG, mix(seed+uint64(core)*7919)|1)
	s.WriteReg(rChase, priv)
	s.WriteReg(rShrBase, SharedBase)
	s.WriteReg(rShrMask, SharedSize-1)
	s.WriteReg(rHotMask, uint64(HotBlocks*64-1)&^63)
	s.WriteReg(rBase, priv)
	s.WriteReg(rBias, uint64(bias))
	s.WriteReg(rCoreWord, uint64(core%8)*8)
	s.WriteReg(rShiftHi, 50)
	s.WriteReg(rLCGMul, 6364136223846793005)
	s.WriteReg(rShiftAddr, 16)
	s.WriteReg(rShiftHi2, 36)
	s.WriteReg(rBits14, 0x3fff)
	s.WriteReg(rOne, 1)
	s.WriteReg(rIOBase, IOBase)
	s.WriteReg(rIOMask, IOBlocks*64-1)
	for i := 0; i < numVals; i++ {
		s.WriteReg(rVal0+isa.Reg(i), mix(seed^uint64(0xabc+i)))
	}
	return s
}
