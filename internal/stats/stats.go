// Package stats provides the measurement utilities used throughout the
// simulator: named counters, sample summaries, and 95% confidence
// intervals following the multi-sample methodology of Alameldeen & Wood
// (HPCA 2003) that the paper uses for its multiprocessor results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a set of named uint64 event counters. The zero value is
// not ready to use; call NewCounters.
type Counters struct {
	m     map[string]uint64
	order []string
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Add increments counter name by n, creating it if needed.
func (c *Counters) Add(name string, n uint64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += n
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (zero if absent).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Set overwrites counter name.
func (c *Counters) Set(name string, v uint64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] = v
}

// Names returns counter names in first-use order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Merge adds every counter in other into c.
func (c *Counters) Merge(other *Counters) {
	for _, name := range other.order {
		c.Add(name, other.m[name])
	}
}

// Ratio returns counter a divided by counter b, or 0 when b is zero.
func (c *Counters) Ratio(a, b string) float64 {
	den := c.m[b]
	if den == 0 {
		return 0
	}
	return float64(c.m[a]) / float64(den)
}

// String formats the counters one per line, sorted by name.
func (c *Counters) String() string {
	names := c.Names()
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%-40s %12d\n", n, c.m[n])
	}
	return sb.String()
}

// Sample accumulates float64 observations and summarizes them.
type Sample struct {
	xs []float64
}

// Observe appends one observation.
func (s *Sample) Observe(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (Bessel-corrected).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond 30 the normal approximation 1.96 is used.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean. It is zero when fewer than two observations exist.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return t * s.StdDev() / math.Sqrt(float64(n))
}

// String formats the summary as "mean ± ci (n=k)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean(), s.CI95(), s.N())
}

// GeoMean returns the geometric mean of xs; zero or negative inputs are
// skipped (they would make the geometric mean undefined).
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
