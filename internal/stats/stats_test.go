package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("a", 2)
	c.Add("b", 10)
	if c.Get("a") != 3 || c.Get("b") != 10 || c.Get("missing") != 0 {
		t.Errorf("unexpected counts: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	c.Set("a", 1)
	if c.Get("a") != 1 {
		t.Error("Set failed")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestCountersMergeAndRatio(t *testing.T) {
	a := NewCounters()
	a.Add("x", 5)
	b := NewCounters()
	b.Add("x", 7)
	b.Add("y", 2)
	a.Merge(b)
	if a.Get("x") != 12 || a.Get("y") != 2 {
		t.Errorf("merge: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
	if r := a.Ratio("x", "y"); r != 6 {
		t.Errorf("Ratio = %v, want 6", r)
	}
	if r := a.Ratio("x", "absent"); r != 0 {
		t.Errorf("Ratio with zero denominator = %v, want 0", r)
	}
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Add("zeta", 1)
	c.Add("alpha", 2)
	s := c.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Error("String output should be sorted by name")
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Known sample stddev of this set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleCI95(t *testing.T) {
	var s Sample
	if s.CI95() != 0 {
		t.Error("empty sample should have zero CI")
	}
	s.Observe(1)
	if s.CI95() != 0 {
		t.Error("single-observation sample should have zero CI")
	}
	s.Observe(3)
	// n=2, df=1: t = 12.706, sd = sqrt(2), ci = 12.706*sqrt(2)/sqrt(2).
	if got := s.CI95(); math.Abs(got-12.706) > 1e-9 {
		t.Errorf("CI95 = %v, want 12.706", got)
	}
	// Large n should use the normal critical value.
	var big Sample
	for i := 0; i < 100; i++ {
		big.Observe(float64(i % 2))
	}
	sd := big.StdDev()
	want := 1.96 * sd / 10
	if got := big.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("large-n CI95 = %v, want %v", got, want)
	}
}

func TestSampleCIShrinksWithN(t *testing.T) {
	width := func(n int) float64 {
		var s Sample
		for i := 0; i < n; i++ {
			s.Observe(float64(i % 5))
		}
		return s.CI95()
	}
	if !(width(10) > width(40) && width(40) > width(160)) {
		t.Errorf("CI should shrink with n: %v %v %v", width(10), width(40), width(160))
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{0, -3, 9}); math.Abs(g-9) > 1e-12 {
		t.Errorf("GeoMean skipping nonpositive = %v, want 9", g)
	}
}

func TestMeanConstantProperty(t *testing.T) {
	err := quick.Check(func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || n == 0 || math.Abs(v) > 1e300 {
			return true
		}
		v = math.Mod(v, 1e12) // keep sums exactly representable
		var s Sample
		for i := 0; i < int(n); i++ {
			s.Observe(v)
		}
		return s.Mean() == v && s.StdDev() == 0 && s.CI95() == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
}
