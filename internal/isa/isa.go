// Package isa defines the synthetic RISC instruction set executed by the
// simulator. The ISA is deliberately small: the value-based replay
// mechanism studied here (Cain & Lipasti, ISCA 2004) depends only on the
// dynamic properties of the instruction stream — instruction class mix,
// register dataflow, memory addresses and values, and control flow — not
// on any particular commercial ISA. The PowerPC ISA used by the paper's
// PHARMsim platform is replaced by this one; see DESIGN.md §2.
//
// Registers: 64 architectural registers. R0 is hardwired to zero.
// Registers 32..63 are conventionally used by floating-point classed
// instructions, but all registers hold 64-bit integer patterns; "FP"
// instructions differ only in which functional unit (and latency class)
// executes them, which is all the timing model observes.
package isa

import "fmt"

// Reg names an architectural register. R0 reads as zero and ignores
// writes.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 64

// RZero is the hardwired zero register.
const RZero Reg = 0

// Class partitions opcodes by the functional unit that executes them and
// by how the pipeline must treat them.
type Class uint8

const (
	// ClassIntALU executes on an integer ALU (1-cycle in Table 3).
	ClassIntALU Class = iota
	// ClassIntMul executes on an integer multiplier (3-cycle).
	ClassIntMul
	// ClassIntDiv executes on the integer divider (12-cycle).
	ClassIntDiv
	// ClassFPALU executes on a floating-point ALU (4-cycle).
	ClassFPALU
	// ClassFPMul executes on a floating-point multiplier (4-cycle).
	ClassFPMul
	// ClassFPDiv executes on the floating-point divider (4-cycle).
	ClassFPDiv
	// ClassLoad reads memory.
	ClassLoad
	// ClassStore writes memory (at commit).
	ClassStore
	// ClassBranch is a conditional or unconditional control transfer.
	ClassBranch
	// ClassMembar is a memory barrier: dispatch stalls until it commits.
	ClassMembar
	// ClassNop does nothing.
	ClassNop

	// NumClasses counts the instruction classes.
	NumClasses
)

// String returns a short mnemonic name for the class.
func (c Class) String() string {
	switch c {
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassIntDiv:
		return "int-div"
	case ClassFPALU:
		return "fp-alu"
	case ClassFPMul:
		return "fp-mul"
	case ClassFPDiv:
		return "fp-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassMembar:
		return "membar"
	case ClassNop:
		return "nop"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Opcode identifies the operation an instruction performs.
type Opcode uint8

const (
	// OpNop does nothing.
	OpNop Opcode = iota

	// Integer ALU.

	// OpAdd computes Dst = Src1 + Src2.
	OpAdd
	// OpSub computes Dst = Src1 - Src2.
	OpSub
	// OpAnd computes Dst = Src1 & Src2.
	OpAnd
	// OpOr computes Dst = Src1 | Src2.
	OpOr
	// OpXor computes Dst = Src1 ^ Src2.
	OpXor
	// OpShl computes Dst = Src1 << (Src2 & 63).
	OpShl
	// OpShr computes Dst = Src1 >> (Src2 & 63) (logical).
	OpShr
	// OpAddI computes Dst = Src1 + Imm.
	OpAddI
	// OpLui loads Imm into Dst (load upper immediate analogue).
	OpLui
	// OpSltu sets Dst = 1 if Src1 < Src2 (unsigned), else 0.
	OpSltu

	// Integer multiply / divide.

	// OpMul computes Dst = Src1 * Src2.
	OpMul
	// OpDiv computes Dst = Src1 / Src2 (0 divisor yields all-ones).
	OpDiv

	// Floating-point classed operations. Semantically these are integer
	// operations over the 64-bit register patterns; they exist to occupy
	// the FP functional units with the FP latency classes.

	// OpFAdd computes Dst = Src1 + Src2 on the FP ALU.
	OpFAdd
	// OpFMul computes Dst = Src1*2 + Src2 on the FP multiplier.
	OpFMul
	// OpFDiv computes Dst = (Src1 >> 1) ^ Src2 on the FP divider.
	OpFDiv

	// Memory.

	// OpLoad reads Dst = Mem[Src1 + Imm] (64-bit).
	OpLoad
	// OpStore writes Mem[Src1 + Imm] = Src2 (64-bit).
	OpStore

	// Control.

	// OpBeqz branches to PC + Imm when Src1 == 0.
	OpBeqz
	// OpBnez branches to PC + Imm when Src1 != 0.
	OpBnez
	// OpJump branches unconditionally to PC + Imm.
	OpJump

	// OpMembar is a memory barrier.
	OpMembar

	// NumOpcodes counts the opcodes.
	NumOpcodes
)

var opcodeInfo = [NumOpcodes]struct {
	name  string
	class Class
}{
	OpNop:    {"nop", ClassNop},
	OpAdd:    {"add", ClassIntALU},
	OpSub:    {"sub", ClassIntALU},
	OpAnd:    {"and", ClassIntALU},
	OpOr:     {"or", ClassIntALU},
	OpXor:    {"xor", ClassIntALU},
	OpShl:    {"shl", ClassIntALU},
	OpShr:    {"shr", ClassIntALU},
	OpAddI:   {"addi", ClassIntALU},
	OpLui:    {"lui", ClassIntALU},
	OpSltu:   {"sltu", ClassIntALU},
	OpMul:    {"mul", ClassIntMul},
	OpDiv:    {"div", ClassIntDiv},
	OpFAdd:   {"fadd", ClassFPALU},
	OpFMul:   {"fmul", ClassFPMul},
	OpFDiv:   {"fdiv", ClassFPDiv},
	OpLoad:   {"load", ClassLoad},
	OpStore:  {"store", ClassStore},
	OpBeqz:   {"beqz", ClassBranch},
	OpBnez:   {"bnez", ClassBranch},
	OpJump:   {"jump", ClassBranch},
	OpMembar: {"membar", ClassMembar},
}

// Class reports the instruction class the opcode belongs to.
func (o Opcode) Class() Class {
	if int(o) >= len(opcodeInfo) {
		return ClassNop
	}
	return opcodeInfo[o].class
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if int(o) >= len(opcodeInfo) {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opcodeInfo[o].name
}

// Inst is a static instruction. Branch displacements and load/store
// offsets live in Imm. Branch Imm is measured in instruction slots
// relative to the branch itself.
type Inst struct {
	Op   Opcode
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
}

// Class reports the instruction's class.
func (in Inst) Class() Class { return in.Op.Class() }

// IsMem reports whether the instruction reads or writes memory.
func (in Inst) IsMem() bool {
	c := in.Class()
	return c == ClassLoad || c == ClassStore
}

// IsBranch reports whether the instruction is a control transfer.
func (in Inst) IsBranch() bool { return in.Class() == ClassBranch }

// IsConditional reports whether the instruction is a conditional branch.
func (in Inst) IsConditional() bool {
	return in.Op == OpBeqz || in.Op == OpBnez
}

// WritesReg reports whether the instruction produces a register result.
func (in Inst) WritesReg() bool {
	switch in.Class() {
	case ClassStore, ClassBranch, ClassMembar, ClassNop:
		return false
	}
	return in.Dst != RZero
}

// ReadsReg reports whether the instruction reads the given source slot
// (1 or 2).
func (in Inst) ReadsReg(slot int) bool {
	switch in.Class() {
	case ClassNop, ClassMembar:
		return false
	}
	switch in.Op {
	case OpLui:
		return false
	case OpAddI, OpLoad, OpBeqz, OpBnez:
		return slot == 1
	case OpJump:
		return false
	}
	return slot == 1 || slot == 2
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Class() {
	case ClassNop:
		return "nop"
	case ClassMembar:
		return "membar"
	case ClassLoad:
		return fmt.Sprintf("load r%d, %d(r%d)", in.Dst, in.Imm, in.Src1)
	case ClassStore:
		return fmt.Sprintf("store r%d, %d(r%d)", in.Src2, in.Imm, in.Src1)
	case ClassBranch:
		if in.Op == OpJump {
			return fmt.Sprintf("jump %+d", in.Imm)
		}
		return fmt.Sprintf("%s r%d, %+d", in.Op, in.Src1, in.Imm)
	}
	if in.Op == OpAddI || in.Op == OpLui {
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Dst, in.Src1, in.Imm)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Dst, in.Src1, in.Src2)
}

// Eval computes the result of a non-memory, non-branch instruction from
// its source operand values. Memory and control instructions are handled
// by the pipeline (they need addresses, memory content or PCs).
func (in Inst) Eval(src1, src2 uint64) uint64 {
	switch in.Op {
	case OpAdd:
		return src1 + src2
	case OpSub:
		return src1 - src2
	case OpAnd:
		return src1 & src2
	case OpOr:
		return src1 | src2
	case OpXor:
		return src1 ^ src2
	case OpShl:
		return src1 << (src2 & 63)
	case OpShr:
		return src1 >> (src2 & 63)
	case OpAddI:
		return src1 + uint64(in.Imm)
	case OpLui:
		return uint64(in.Imm)
	case OpSltu:
		if src1 < src2 {
			return 1
		}
		return 0
	case OpMul:
		return src1 * src2
	case OpDiv:
		if src2 == 0 {
			return ^uint64(0)
		}
		return src1 / src2
	case OpFAdd:
		return src1 + src2
	case OpFMul:
		return src1*2 + src2
	case OpFDiv:
		return (src1 >> 1) ^ src2
	}
	return 0
}

// BranchTaken evaluates a branch's direction from its first source
// operand value.
func (in Inst) BranchTaken(src1 uint64) bool {
	switch in.Op {
	case OpBeqz:
		return src1 == 0
	case OpBnez:
		return src1 != 0
	case OpJump:
		return true
	}
	return false
}

// EffAddr computes the effective address of a load or store, aligned to
// 8 bytes.
func (in Inst) EffAddr(base uint64) uint64 {
	return (base + uint64(in.Imm)) &^ 7
}
