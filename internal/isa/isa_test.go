package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op   Opcode
		want Class
	}{
		{OpNop, ClassNop},
		{OpAdd, ClassIntALU},
		{OpSub, ClassIntALU},
		{OpAnd, ClassIntALU},
		{OpOr, ClassIntALU},
		{OpXor, ClassIntALU},
		{OpShl, ClassIntALU},
		{OpShr, ClassIntALU},
		{OpAddI, ClassIntALU},
		{OpLui, ClassIntALU},
		{OpSltu, ClassIntALU},
		{OpMul, ClassIntMul},
		{OpDiv, ClassIntDiv},
		{OpFAdd, ClassFPALU},
		{OpFMul, ClassFPMul},
		{OpFDiv, ClassFPDiv},
		{OpLoad, ClassLoad},
		{OpStore, ClassStore},
		{OpBeqz, ClassBranch},
		{OpBnez, ClassBranch},
		{OpJump, ClassBranch},
		{OpMembar, ClassMembar},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestOpcodeStringsUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := OpNop; op < NumOpcodes; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(200).String() != "class(200)" {
		t.Errorf("out-of-range class should format numerically")
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		in         Inst
		s1, s2     uint64
		want       uint64
		wantString string
	}{
		{Inst{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, 5, 7, 12, "add r1, r2, r3"},
		{Inst{Op: OpSub, Dst: 1, Src1: 2, Src2: 3}, 5, 7, ^uint64(0) - 1, "sub r1, r2, r3"},
		{Inst{Op: OpAnd}, 0xf0, 0x3c, 0x30, ""},
		{Inst{Op: OpOr}, 0xf0, 0x3c, 0xfc, ""},
		{Inst{Op: OpXor}, 0xf0, 0x3c, 0xcc, ""},
		{Inst{Op: OpShl}, 1, 4, 16, ""},
		{Inst{Op: OpShl}, 1, 68, 16, ""}, // shift amount masked to 6 bits
		{Inst{Op: OpShr}, 16, 4, 1, ""},
		{Inst{Op: OpAddI, Imm: -3}, 10, 99, 7, ""},
		{Inst{Op: OpLui, Imm: 42}, 9, 9, 42, ""},
		{Inst{Op: OpSltu}, 3, 4, 1, ""},
		{Inst{Op: OpSltu}, 4, 3, 0, ""},
		{Inst{Op: OpSltu}, 4, 4, 0, ""},
		{Inst{Op: OpMul}, 6, 7, 42, ""},
		{Inst{Op: OpDiv}, 42, 6, 7, ""},
		{Inst{Op: OpDiv}, 42, 0, ^uint64(0), ""},
		{Inst{Op: OpFAdd}, 2, 3, 5, ""},
		{Inst{Op: OpFMul}, 2, 3, 7, ""},
		{Inst{Op: OpFDiv}, 8, 3, 7, ""},
	}
	for _, c := range cases {
		if got := c.in.Eval(c.s1, c.s2); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %d, want %d", c.in, c.s1, c.s2, got, c.want)
		}
		if c.wantString != "" && c.in.String() != c.wantString {
			t.Errorf("String() = %q, want %q", c.in.String(), c.wantString)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	if !(Inst{Op: OpBeqz}).BranchTaken(0) {
		t.Error("beqz with zero should be taken")
	}
	if (Inst{Op: OpBeqz}).BranchTaken(1) {
		t.Error("beqz with nonzero should not be taken")
	}
	if (Inst{Op: OpBnez}).BranchTaken(0) {
		t.Error("bnez with zero should not be taken")
	}
	if !(Inst{Op: OpBnez}).BranchTaken(5) {
		t.Error("bnez with nonzero should be taken")
	}
	if !(Inst{Op: OpJump}).BranchTaken(123) {
		t.Error("jump is always taken")
	}
	if (Inst{Op: OpAdd}).BranchTaken(0) {
		t.Error("non-branch is never taken")
	}
}

func TestEffAddrAlignment(t *testing.T) {
	in := Inst{Op: OpLoad, Imm: 5}
	if got := in.EffAddr(3); got != 8&^7 && got%8 != 0 {
		t.Errorf("EffAddr not 8-aligned: %d", got)
	}
	err := quick.Check(func(base uint64, imm int16) bool {
		in := Inst{Op: OpLoad, Imm: int64(imm)}
		return in.EffAddr(base)%8 == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWritesReadsReg(t *testing.T) {
	if (Inst{Op: OpStore, Dst: 3}).WritesReg() {
		t.Error("store writes no register")
	}
	if (Inst{Op: OpBeqz, Dst: 3}).WritesReg() {
		t.Error("branch writes no register")
	}
	if (Inst{Op: OpAdd, Dst: 0}).WritesReg() {
		t.Error("write to R0 is discarded")
	}
	if !(Inst{Op: OpAdd, Dst: 7}).WritesReg() {
		t.Error("add writes its destination")
	}
	if !(Inst{Op: OpLoad, Dst: 7}).WritesReg() {
		t.Error("load writes its destination")
	}

	if (Inst{Op: OpLui}).ReadsReg(1) || (Inst{Op: OpLui}).ReadsReg(2) {
		t.Error("lui reads no sources")
	}
	if !(Inst{Op: OpAddI}).ReadsReg(1) || (Inst{Op: OpAddI}).ReadsReg(2) {
		t.Error("addi reads only slot 1")
	}
	if !(Inst{Op: OpStore}).ReadsReg(1) || !(Inst{Op: OpStore}).ReadsReg(2) {
		t.Error("store reads base and value")
	}
	if !(Inst{Op: OpLoad}).ReadsReg(1) || (Inst{Op: OpLoad}).ReadsReg(2) {
		t.Error("load reads only its base")
	}
	if (Inst{Op: OpJump}).ReadsReg(1) {
		t.Error("jump reads no sources")
	}
	if (Inst{Op: OpMembar}).ReadsReg(1) {
		t.Error("membar reads no sources")
	}
}

func TestPredicates(t *testing.T) {
	if !(Inst{Op: OpLoad}).IsMem() || !(Inst{Op: OpStore}).IsMem() {
		t.Error("load/store are memory ops")
	}
	if (Inst{Op: OpAdd}).IsMem() {
		t.Error("add is not a memory op")
	}
	if !(Inst{Op: OpBeqz}).IsBranch() || !(Inst{Op: OpJump}).IsBranch() {
		t.Error("beqz/jump are branches")
	}
	if !(Inst{Op: OpBeqz}).IsConditional() || (Inst{Op: OpJump}).IsConditional() {
		t.Error("beqz conditional, jump not")
	}
}
