package config

import "testing"

func TestRegistryResolvesEveryName(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate registry name %q", name)
		}
		seen[name] = true
		m, ok := ByName(name)
		if !ok {
			t.Errorf("ByName(%q) failed", name)
		}
		if m.Name == "" {
			t.Errorf("machine %q has no Name", name)
		}
		if Describe(name) == "" {
			t.Errorf("machine %q has no description", name)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, ok := ByName("no-such-machine"); ok {
		t.Error("ByName must fail for unregistered names")
	}
	if Describe("no-such-machine") != "" {
		t.Error("Describe must be empty for unregistered names")
	}
}
