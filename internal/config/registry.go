// The machine-name registry: one table mapping the CLI / experiment /
// litmus names to machine constructors, so every front end (cmd/vbrsim,
// cmd/experiments, cmd/litmus) resolves and lists the same set instead
// of each growing its own switch.

package config

import "vbmo/internal/core"

// registryEntry pairs a public machine name with its constructor and a
// one-line description (shown by vbrsim -list-machines).
type registryEntry struct {
	name  string
	doc   string
	build func() Machine
}

// registry is ordered for presentation: the five §5.1 configurations
// first, then the related-work baselines, then the deliberately
// unsound ablation.
var registry = []registryEntry{
	{"baseline", "Table 3 baseline: snooping associative LQ, store sets",
		Baseline},
	{"replay-all", "value replay, no filter (every load replays)",
		func() Machine { return Replay(core.ReplayAll) }},
	{"no-reorder", "replay filter: only reordered loads replay",
		func() Machine { return Replay(core.NoReorder) }},
	{"no-recent-miss", "replay filter: NRM + NUS composition",
		func() Machine { return Replay(core.NoRecentMiss) }},
	{"no-recent-snoop", "replay filter: NRS + NUS composition",
		func() Machine { return Replay(core.NoRecentSnoop) }},
	{"baseline-lq16", "Figure 8 baseline, 16-entry load queue",
		func() Machine { return ConstrainedBaseline(16) }},
	{"baseline-lq32", "Figure 8 baseline, 32-entry load queue",
		func() Machine { return ConstrainedBaseline(32) }},
	{"baseline-insulated", "Alpha 21264-style insulated load queue",
		InsulatedBaseline},
	{"baseline-hybrid", "Power4-style snoop-mark hybrid load queue",
		HybridBaseline},
	{"baseline-bloom", "baseline with Bloom-filtered LQ searches",
		BloomBaseline},
	{"baseline-hiersq", "baseline with hierarchical store queue",
		HierSQBaseline},
	{"replay-vpred", "NRS replay machine with last-value prediction",
		func() Machine { return ReplayVP(core.NoRecentSnoop) }},
	{"nus-only", "UNSOUND on MP: NUS filter without a consistency filter (§3.3)",
		func() Machine { return Replay(core.NUSOnly) }},
}

// Names returns every registered machine name in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of a registered machine.
func Describe(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.doc
		}
	}
	return ""
}

// ByName builds the machine registered under name.
func ByName(name string) (Machine, bool) {
	for _, e := range registry {
		if e.name == name {
			return e.build(), true
		}
	}
	return Machine{}, false
}
