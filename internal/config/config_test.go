package config

import (
	"testing"

	"vbmo/internal/core"
	"vbmo/internal/lsq"
)

func TestBaselineMatchesTable3(t *testing.T) {
	m := Baseline()
	if m.Width != 8 || m.ROBSize != 256 || m.IQSize != 32 {
		t.Errorf("pipeline shape: %+v", m)
	}
	if m.IntALU != 8 || m.IntMulDiv != 3 || m.FPALU != 4 || m.FPMulDiv != 4 {
		t.Errorf("FU pool: %+v", m)
	}
	if m.IntLat != 1 || m.MulLat != 3 || m.DivLat != 12 || m.FPLat != 4 {
		t.Errorf("FU latencies: %+v", m)
	}
	if m.LoadPorts != 4 {
		t.Errorf("load ports = %d, want 4 (Table 3)", m.LoadPorts)
	}
	if m.MemLatency != 400 {
		t.Errorf("memory latency = %d, want 400", m.MemLatency)
	}
	if m.SSITEntries != 4096 || m.LFSTEntries != 128 || m.SimpleEntries != 4096 {
		t.Errorf("predictor sizes: %+v", m)
	}
	if !m.UseStoreSets || m.Scheme != BaselineLSQ || m.LQMode != lsq.Snooping {
		t.Errorf("ordering config: %+v", m)
	}
	if m.FetchBuf < m.Width*m.FrontEndDepth {
		t.Errorf("fetch buffer %d cannot sustain width %d over depth %d",
			m.FetchBuf, m.Width, m.FrontEndDepth)
	}
	// Table 3 caches.
	if m.Hier.L1D.Size != 32<<10 || m.Hier.L1D.Ways != 1 || m.Hier.L1D.Latency != 1 {
		t.Errorf("L1D: %+v", m.Hier.L1D)
	}
	if m.Hier.L2.Size != 256<<10 || m.Hier.L2.Ways != 8 || m.Hier.L2.Latency != 7 {
		t.Errorf("L2: %+v", m.Hier.L2)
	}
	if m.Hier.L3.Size != 8<<20 || m.Hier.L3.Ways != 8 || m.Hier.L3.Latency != 15 {
		t.Errorf("L3: %+v", m.Hier.L3)
	}
	// Table 3 branch predictor.
	if m.BP.BimodalEntries != 16*1024 || m.BP.GshareEntries != 16*1024 ||
		m.BP.SelectorEntries != 16*1024 || m.BP.BTBEntries != 8*1024 ||
		m.BP.RASEntries != 64 {
		t.Errorf("branch predictor: %+v", m.BP)
	}
}

func TestReplayConfig(t *testing.T) {
	m := Replay(core.NoRecentSnoop)
	if m.Scheme != ValueReplay {
		t.Error("scheme")
	}
	if m.Filter != core.NoRecentSnoop {
		t.Error("filter")
	}
	if m.UseStoreSets {
		t.Error("replay machines use the simple predictor (paper §3)")
	}
	if m.LQSize != m.ROBSize {
		t.Error("the FIFO load queue scales with the ROB")
	}
	if m.ReplayPerCycle != 1 {
		t.Error("paper: one replay per cycle")
	}
	if m.Name != "replay-no-recent-snoop" {
		t.Errorf("name = %q", m.Name)
	}
}

func TestConstrainedBaseline(t *testing.T) {
	for _, size := range []int{16, 32} {
		m := ConstrainedBaseline(size)
		if m.LQSize != size {
			t.Errorf("LQ size = %d, want %d", m.LQSize, size)
		}
		if m.Scheme != BaselineLSQ {
			t.Error("constrained machines are baselines")
		}
	}
	if ConstrainedBaseline(16).Name != "baseline-lq16" {
		t.Errorf("name = %q", ConstrainedBaseline(16).Name)
	}
	if ConstrainedBaseline(0).Name != "baseline-lq0" {
		t.Errorf("itoa(0) broken: %q", ConstrainedBaseline(0).Name)
	}
}

func TestSchemeString(t *testing.T) {
	if BaselineLSQ.String() != "baseline" || ValueReplay.String() != "value-replay" {
		t.Error("scheme names")
	}
}

func TestLQModeVariants(t *testing.T) {
	if InsulatedBaseline().LQMode != lsq.Insulated {
		t.Error("insulated baseline mode")
	}
	if HybridBaseline().LQMode != lsq.Hybrid {
		t.Error("hybrid baseline mode")
	}
	if InsulatedBaseline().Scheme != BaselineLSQ || HybridBaseline().Scheme != BaselineLSQ {
		t.Error("LQ variants are baselines")
	}
}

func TestReplayVPConfig(t *testing.T) {
	m := ReplayVP(core.NoRecentSnoop)
	if !m.UseValuePrediction || m.VPredEntries != 4096 {
		t.Errorf("VP config: %+v", m)
	}
	if m.Scheme != ValueReplay {
		t.Error("VP requires the replay machine (its verifier)")
	}
	if m.Name != "replay-no-recent-snoop-vpred" {
		t.Errorf("name = %q", m.Name)
	}
}

func TestBloomAndHierSQConfigs(t *testing.T) {
	if BloomBaseline().BloomCounters == 0 {
		t.Error("bloom baseline has no filter")
	}
	if HierSQBaseline().SQL1Size == 0 || HierSQBaseline().SQL2Latency == 0 {
		t.Error("hierarchical SQ baseline not configured")
	}
}
