// Package config defines machine configurations: the paper's Table 3
// baseline, the value-based replay variants of §5.1, and the
// size-constrained load-queue machines of §5.2 (Figure 8).
package config

import (
	"vbmo/internal/bpred"
	"vbmo/internal/cache"
	"vbmo/internal/core"
	"vbmo/internal/lsq"
)

// MaxCores is the largest supported SMP width. The bound comes from
// the coherence directory, which tracks each block's sharer set as a
// 32-bit mask; the paper's largest system (and the default experiment
// width) is 16-way.
const MaxCores = 32

// Scheme selects the memory-ordering mechanism.
type Scheme int

const (
	// BaselineLSQ is the conventional machine: associative load queue
	// plus a store-set dependence predictor.
	BaselineLSQ Scheme = iota
	// ValueReplay is the paper's machine: FIFO load queue, value-based
	// replay, and the simple Alpha-style dependence predictor.
	ValueReplay
)

// String names the scheme.
func (s Scheme) String() string {
	if s == ValueReplay {
		return "value-replay"
	}
	return "baseline"
}

// Machine is a complete core configuration (Table 3 unless noted).
type Machine struct {
	Name string

	// Pipeline shape.
	Width         int // fetch/dispatch/issue/commit width (8)
	ROBSize       int // 256
	IQSize        int // 32
	LQSize        int // load queue entries (128 in the unified baseline)
	SQSize        int // store queue entries
	FetchBuf      int // fetch-to-dispatch buffer
	FrontEndDepth int // cycles from fetch to dispatch eligibility

	// Functional units: counts and latencies.
	IntALU, IntMulDiv, FPALU, FPMulDiv int
	IntLat, MulLat, DivLat, FPLat      int
	LoadPorts                          int // L1D load ports in the OoO window (4)

	// Memory ordering.
	Scheme Scheme
	LQMode lsq.Mode    // baseline load-queue style
	Filter core.Filter // replay filter configuration

	// Dependence predictor sizes.
	SSITEntries, LFSTEntries int // store sets (baseline)
	SimpleEntries            int // simple predictor (replay)
	// UseStoreSets selects the baseline's predictor; the replay
	// machine always uses the simple predictor (it cannot identify the
	// conflicting store; paper §3). Exposed for the replay+store-set
	// ablation.
	UseStoreSets bool

	// BloomCounters, when nonzero, attaches a counting Bloom filter of
	// that many counters to the baseline's associative load queue so
	// store-agen and snoop searches can be skipped when no issued load
	// can match (Sethumadhavan et al.; paper §1 related work).
	BloomCounters int
	// BloomHashes is the filter's hash count (default 2).
	BloomHashes int

	// SQL1Size, when nonzero, makes the store queue hierarchical
	// (Akkary et al., paper §1 related work): the newest SQL1Size
	// stores form the fast level-one queue, deeper forwarding matches
	// cost SQL2Latency cycles, and a membership filter avoids
	// level-two probes.
	SQL1Size     int
	SQL2Latency  int
	SQFilterCtrs int

	// UseValuePrediction enables the last-value load predictor on
	// value-replay machines: predicted loads feed consumers at
	// dispatch and are verified by the replay/compare stages (paper
	// §1's Martin et al. discussion). Ignored on baseline machines,
	// which have no verification back end.
	UseValuePrediction bool
	// VPredEntries sizes the predictor table.
	VPredEntries int

	// ReplayPerCycle bounds replay bandwidth (paper: 1).
	ReplayPerCycle int
	// ReplayWindow is how deep from the reorder-buffer head the replay
	// stage reaches (two pipe stages × width).
	ReplayWindow int
	// SquashIncludesLoad selects the heavier squash variant in which
	// the mismatching load itself is refetched (forward-progress rule 3
	// then matters); the default commits the load with its replay
	// value.
	SquashIncludesLoad bool

	// Front end and memory system.
	BP         bpred.Config
	Hier       cache.HierConfig
	MemLatency int
}

// Baseline returns the Table 3 baseline machine with an unconstrained
// (128-entry) snooping load queue and store-set prediction.
func Baseline() Machine {
	return Machine{
		Name:          "baseline",
		Width:         8,
		ROBSize:       256,
		IQSize:        32,
		LQSize:        128,
		SQSize:        128,
		FrontEndDepth: 10, // 15-stage pipe: ~10 cycles fetch → dispatch
		FetchBuf:      96, // front-end pipe holds width × (depth + 2)
		IntALU:        8, IntMulDiv: 3, FPALU: 4, FPMulDiv: 4,
		IntLat: 1, MulLat: 3, DivLat: 12, FPLat: 4,
		LoadPorts:      4,
		Scheme:         BaselineLSQ,
		LQMode:         lsq.Snooping,
		SSITEntries:    4096,
		LFSTEntries:    128,
		SimpleEntries:  4096,
		UseStoreSets:   true,
		ReplayPerCycle: 1,
		ReplayWindow:   16,
		BP:             bpred.DefaultConfig(),
		Hier:           cache.DefaultHierConfig(),
		MemLatency:     400,
	}
}

// Replay returns the value-based replay machine with the given filter.
func Replay(f core.Filter) Machine {
	m := Baseline()
	m.Name = "replay-" + f.String()
	m.Scheme = ValueReplay
	m.Filter = f
	m.UseStoreSets = false
	// The FIFO load queue has no CAM, so it scales with the ROB.
	m.LQSize = m.ROBSize
	return m
}

// BloomBaseline returns the baseline augmented with a Bloom-filtered
// load-queue search (an energy optimization that keeps the CAM; the
// paper's introduction contrasts this class of designs with replay).
func BloomBaseline() Machine {
	m := Baseline()
	m.Name = "baseline-bloom"
	m.BloomCounters = 1024
	m.BloomHashes = 2
	return m
}

// HierSQBaseline returns the baseline with Akkary et al.'s two-level
// store queue: a 16-entry fast level one backed by the full queue with
// a 3-cycle level-two forwarding latency.
func HierSQBaseline() Machine {
	m := Baseline()
	m.Name = "baseline-hiersq"
	m.SQL1Size = 16
	m.SQL2Latency = 3
	m.SQFilterCtrs = 1024
	return m
}

// InsulatedBaseline returns an Alpha 21264-style machine: the load
// queue never processes external invalidations; instead every issuing
// load searches for younger already-issued loads to the same address
// (paper §2.1). Same-address load-load ordering is what weakly-ordered
// machines enforce in hardware.
func InsulatedBaseline() Machine {
	m := Baseline()
	m.Name = "baseline-insulated"
	m.LQMode = lsq.Insulated
	return m
}

// HybridBaseline returns an IBM Power4-style machine: snoops mark
// conflicting loads, and load-issue searches squash only marked
// conflicts (paper §2.1).
func HybridBaseline() Machine {
	m := Baseline()
	m.Name = "baseline-hybrid"
	m.LQMode = lsq.Hybrid
	return m
}

// ReplayVP returns the replay machine with last-value load prediction
// verified by the replay stage.
func ReplayVP(f core.Filter) Machine {
	m := Replay(f)
	m.Name = m.Name + "-vpred"
	m.UseValuePrediction = true
	m.VPredEntries = 4096
	return m
}

// ConstrainedBaseline returns the Figure 8 baseline whose separate
// associative load queue is limited by clock cycle time.
func ConstrainedBaseline(lqSize int) Machine {
	m := Baseline()
	m.Name = "baseline-lq" + itoa(lqSize)
	m.LQSize = lqSize
	return m
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
