// Package coherence implements the multiprocessor memory-system
// substrate: an invalidation-based MESI-style protocol over a
// Gigaplane-XB-like interconnect (the paper's 16-way SMP configuration:
// +32 cycle address latency, +20 cycle data latency), plus a coherent
// DMA agent standing in for the paper's cache-coherent memory-mapped
// I/O devices.
//
// The protocol is tracked with an exact-owner / over-approximate-sharer
// directory, which is behaviorally equivalent to a snoopy broadcast bus
// whose probes are filtered by each core's inclusive L3: probes of cores
// that no longer hold a copy return silently, and only probes that hit
// deliver an "invalidation observed" signal to the core (the input of
// snooping load queues and of the no-recent-snoop filter).
package coherence

import (
	"math/bits"

	"vbmo/internal/trace"
)

// Interconnect latency adders (paper §4).
const (
	// AddrLatency is the extra latency of an address message.
	AddrLatency = 32
	// DataLatency is the extra latency of a data message.
	DataLatency = 20
)

// Peer is one core's cache hierarchy as seen by the bus.
// *cache.Hierarchy implements it.
type Peer interface {
	// SnoopInvalidate purges the block locally; reports presence.
	SnoopInvalidate(block uint64) bool
	// SnoopSharedProbe reports local presence without state change.
	SnoopSharedProbe(block uint64) bool
}

const (
	ownerNone = -1
)

type entry struct {
	owner   int // core holding the block M/E, or ownerNone
	sharers uint32
}

// Stats counts bus-level events.
type Stats struct {
	Reads, ReadsRemote   uint64
	Upgrades, Exclusives uint64
	Invalidations        uint64 // invalidation probes delivered (hit a peer)
	FilteredProbes       uint64 // probes absorbed by inclusive hierarchies
	DMAWrites            uint64
}

// Bus is the shared interconnect + directory. It implements the cache
// package's Backend interface.
type Bus struct {
	peers []Peer
	onInv []func(block uint64)
	dir   map[uint64]entry
	// active marks cores that have issued any fetch or upgrade since
	// they were (re)attached. A directory sharer/owner bit can only be
	// set by that core's own traffic, so masking probe walks with
	// active is exact: a quiet core — attached but yet to touch memory
	// — provably holds no copy and is skipped without a directory
	// lookup. Re-attaching a core clears its bit until it re-arms with
	// new traffic.
	active uint32
	dma    map[uint64]bool // blocks last written by the DMA agent
	// lastWriter remembers the last agent that gained write ownership
	// of a block (DMA uses dmaWriter). A fill is "externally sourced"
	// whenever the block was last written by a different agent — even
	// if the data physically arrives from memory after a castout. This
	// is what makes the no-recent-miss filter sound: any fill that can
	// carry another agent's data is flagged.
	lastWriter map[uint64]int
	memLat     int
	// RemoteLat is the cache-to-cache transfer latency.
	remoteLat int
	Stats     Stats
	// Trace, when non-nil, receives bus-agent events (currently coherent
	// DMA writes, as KDMAWrite with Core -1); per-core snoop arrivals
	// are emitted by the receiving core, which knows its cycle. Now
	// supplies the current cycle (the bus has no clock of its own).
	Trace *trace.Tracer
	// Now returns the current system cycle for traced bus events; nil
	// stamps them with cycle 0.
	Now func() int64
}

// NewBus creates a bus for n cores with the given memory latency.
func NewBus(n, memLatency int) *Bus {
	return &Bus{
		peers:      make([]Peer, n),
		onInv:      make([]func(uint64), n),
		dir:        make(map[uint64]entry),
		dma:        make(map[uint64]bool),
		lastWriter: make(map[uint64]int),
		memLat:     memLatency,
		remoteLat:  AddrLatency + DataLatency + 15,
	}
}

// AttachPeer registers core's cache hierarchy. The core starts quiet:
// it is masked out of probe walks until its first fetch or upgrade.
func (b *Bus) AttachPeer(core int, p Peer) {
	b.peers[core] = p
	b.active &^= 1 << uint(core)
}

// probeMask returns the cores to probe for a directory entry: every
// sharer plus the owner, restricted to cores that have issued traffic.
// The restriction is exact, not heuristic — see the active field.
func (b *Bus) probeMask(e entry) uint32 {
	m := e.sharers
	if e.owner != ownerNone {
		m |= 1 << uint(e.owner)
	}
	return m & b.active
}

// OnInvalidation registers the callback invoked when core observes an
// external invalidation that hits its hierarchy (snooping load queues
// and the no-recent-snoop filter consume this).
func (b *Bus) OnInvalidation(core int, fn func(block uint64)) { b.onInv[core] = fn }

// Cores returns the number of attached cores.
func (b *Bus) Cores() int { return len(b.peers) }

// FetchRead implements cache.Backend: core obtains a readable copy.
func (b *Bus) FetchRead(core int, block uint64) (int, bool) {
	b.Stats.Reads++
	b.active |= 1 << uint(core)
	e, existed := b.dir[block]
	if !existed {
		e = entry{owner: ownerNone}
	}
	external := false
	lat := b.memLat + AddrLatency + DataLatency
	if len(b.peers) == 1 {
		lat = b.memLat
	}
	if e.owner != ownerNone && e.owner != core {
		// Cache-to-cache transfer from the modified owner.
		if b.peers[e.owner] == nil || b.peers[e.owner].SnoopSharedProbe(block) {
			external = true
			lat = b.remoteLat
			b.Stats.ReadsRemote++
		}
		e.sharers |= 1 << uint(e.owner)
		e.owner = ownerNone
	}
	if b.dma[block] {
		// Block most recently produced by the DMA agent: the fill is
		// externally sourced.
		external = true
		lat = b.remoteLat
		delete(b.dma, block)
	}
	if lw, ok := b.lastWriter[block]; ok && lw != core {
		// The block's last writer was another agent; even a memory
		// fill (post-castout) carries foreign data.
		external = true
	}
	e.sharers |= 1 << uint(core)
	b.dir[block] = e
	return lat, external
}

// FetchExclusive implements cache.Backend: core gains write ownership,
// invalidating all other holders. Each peer whose hierarchy still held
// the block receives an invalidation-observed signal.
func (b *Bus) FetchExclusive(core int, block uint64) (int, bool) {
	b.Stats.Exclusives++
	b.active |= 1 << uint(core)
	e, existed := b.dir[block]
	if !existed {
		e = entry{owner: ownerNone}
	}
	external := false
	mask := b.probeMask(e) &^ (1 << uint(core))
	hadRemoteCopy := mask != 0
	for m := mask; m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		if c == e.owner {
			external = true
		}
		b.probeInvalidate(c, block)
	}
	if b.dma[block] {
		external = true
		delete(b.dma, block)
	}
	if lw, ok := b.lastWriter[block]; ok && lw != core {
		external = true
	}
	var lat int
	switch {
	case e.owner == core:
		lat = 0
	case external:
		lat = b.remoteLat
	case hadRemoteCopy || e.sharers&(1<<uint(core)) != 0:
		// Upgrade of a shared copy: address message only.
		lat = AddrLatency
		if len(b.peers) == 1 {
			lat = 0
		}
		b.Stats.Upgrades++
	default:
		lat = b.memLat + AddrLatency + DataLatency
		if len(b.peers) == 1 {
			lat = b.memLat
		}
	}
	b.dir[block] = entry{owner: core, sharers: 1 << uint(core)}
	b.lastWriter[block] = core
	return lat, external
}

func (b *Bus) probeInvalidate(core int, block uint64) {
	p := b.peers[core]
	hit := false
	if p != nil {
		hit = p.SnoopInvalidate(block)
	}
	if hit {
		b.Stats.Invalidations++
		if fn := b.onInv[core]; fn != nil {
			fn(block)
		}
	} else {
		b.Stats.FilteredProbes++
	}
}

// Probe invalidates every cached copy of block without changing the
// block's data, ownership history, or external-source marking: pure
// coherence contention. Litmus sweeps use it as a timing perturbation —
// each delivered probe reaches the snooping load queues and the
// no-recent-snoop filter exactly like a real remote write's
// invalidation, while the memory image is untouched.
func (b *Bus) Probe(block uint64) {
	e, ok := b.dir[block]
	if !ok {
		return
	}
	for m := b.probeMask(e); m != 0; m &= m - 1 {
		b.probeInvalidate(bits.TrailingZeros32(m), block)
	}
	b.dir[block] = entry{owner: ownerNone}
}

// StillExclusive implements cache.Backend.
func (b *Bus) StillExclusive(core int, block uint64) bool {
	e, ok := b.dir[block]
	return ok && e.owner == core
}

// DMAWrite records a coherent DMA write to block: all cached copies are
// invalidated and the block is marked externally produced, so the next
// processor fill is an external-source fill.
func (b *Bus) DMAWrite(block uint64) {
	b.Stats.DMAWrites++
	if b.Trace != nil {
		var cyc int64
		if b.Now != nil {
			cyc = b.Now()
		}
		b.Trace.Emit(trace.Event{Cycle: cyc, Core: -1, Kind: trace.KDMAWrite, Addr: block})
	}
	e, ok := b.dir[block]
	if ok {
		for m := b.probeMask(e); m != 0; m &= m - 1 {
			b.probeInvalidate(bits.TrailingZeros32(m), block)
		}
	}
	b.dir[block] = entry{owner: ownerNone}
	b.dma[block] = true
	b.lastWriter[block] = dmaWriterID
}

// dmaWriterID is the lastWriter id used for the DMA agent.
const dmaWriterID = -2
