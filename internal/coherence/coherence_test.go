package coherence

import (
	"testing"

	"vbmo/internal/cache"
	"vbmo/internal/prog"
)

// Compile-time check: Bus satisfies the cache backend interface and
// cache.Hierarchy satisfies Peer.
var (
	_ cache.Backend = (*Bus)(nil)
	_ Peer          = (*cache.Hierarchy)(nil)
)

func twoCoreSystem(t *testing.T) (*Bus, []*cache.Hierarchy) {
	t.Helper()
	bus := NewBus(2, 400)
	hiers := make([]*cache.Hierarchy, 2)
	for c := 0; c < 2; c++ {
		cfg := cache.DefaultHierConfig()
		cfg.PrefetchEntries = 0
		hiers[c] = cache.NewHierarchy(c, cfg, bus)
		bus.AttachPeer(c, hiers[c])
	}
	return bus, hiers
}

func TestColdReadFromMemory(t *testing.T) {
	bus, h := twoCoreSystem(t)
	r := h[0].Read(0x40, 0x1000, 0)
	if r.External {
		t.Error("memory fill should not be external")
	}
	if r.Latency < 400+AddrLatency+DataLatency {
		t.Errorf("MP memory latency = %d, want >= %d", r.Latency, 400+AddrLatency+DataLatency)
	}
	if bus.Stats.Reads != 1 {
		t.Errorf("bus reads = %d", bus.Stats.Reads)
	}
}

func TestCacheToCacheTransfer(t *testing.T) {
	_, h := twoCoreSystem(t)
	// Core 0 writes the block (gains M), then core 1 reads it.
	h[0].Write(0x2000, 0)
	r := h[1].Read(0x40, 0x2000, 100)
	if !r.External {
		t.Error("read of a remotely-modified block must be an external fill")
	}
	if r.Latency > 400 {
		t.Errorf("cache-to-cache latency %d should beat memory", r.Latency)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	bus, h := twoCoreSystem(t)
	h[0].Read(0x40, 0x3000, 0)
	h[1].Read(0x40, 0x3000, 0)
	invalidated := []uint64{}
	bus.OnInvalidation(0, func(b uint64) { invalidated = append(invalidated, b) })
	h[1].Write(0x3000, 100)
	if len(invalidated) != 1 || invalidated[0] != 0x3000 {
		t.Fatalf("core 0 should observe one invalidation, got %v", invalidated)
	}
	if h[0].L1DContains(0x3000) {
		t.Error("core 0 copy not invalidated")
	}
}

func TestInclusiveHierarchyFiltersSnoops(t *testing.T) {
	bus, h := twoCoreSystem(t)
	seen := 0
	bus.OnInvalidation(0, func(uint64) { seen++ })
	// Core 0 never cached the block; core 1's write must be filtered.
	h[1].Write(0x4000, 0)
	h[1].Read(0x40, 0x4000, 10)
	if seen != 0 {
		t.Errorf("filtered snoop still delivered %d events", seen)
	}
	if bus.Stats.Invalidations != 0 {
		t.Errorf("bus recorded %d delivered invalidations", bus.Stats.Invalidations)
	}
}

func TestUpgradeLatencyCheaperThanMiss(t *testing.T) {
	_, h := twoCoreSystem(t)
	h[0].Read(0x40, 0x5000, 0) // S copy
	h[1].Read(0x40, 0x5000, 0) // S copy
	r := h[0].Write(0x5000, 100)
	if r.Latency > AddrLatency+1 {
		t.Errorf("upgrade of shared copy should cost an address message, got %d", r.Latency)
	}
}

func TestStillExclusive(t *testing.T) {
	bus, h := twoCoreSystem(t)
	h[0].Write(0x6000, 0)
	if !bus.StillExclusive(0, 0x6000) {
		t.Error("writer should be exclusive")
	}
	h[1].Read(0x40, 0x6000, 10)
	if bus.StillExclusive(0, 0x6000) {
		t.Error("remote read must revoke exclusivity")
	}
	// Re-writing requires an upgrade and re-invalidates core 1.
	h[0].Write(0x6000, 20)
	if !bus.StillExclusive(0, 0x6000) {
		t.Error("write should restore exclusivity")
	}
	if h[1].L1DContains(0x6000) {
		t.Error("core 1 copy should be gone after core 0's write")
	}
}

func TestWriteAfterWriteBetweenCores(t *testing.T) {
	_, h := twoCoreSystem(t)
	h[0].Write(0x7000, 0)
	r := h[1].Write(0x7000, 10)
	if !r.External {
		t.Error("write to a remotely-modified block is an external transfer")
	}
	if h[0].L1DContains(0x7000) {
		t.Error("old owner retains the block")
	}
}

func TestDMAWritesInvalidateAndMarkExternal(t *testing.T) {
	bus, h := twoCoreSystem(t)
	img := prog.NewImage(1)
	block := IOBase
	// Core 0 caches an I/O buffer block.
	h[0].Read(0x40, block, 0)
	events := 0
	bus.OnInvalidation(0, func(b uint64) {
		if b == block {
			events++
		}
	})
	d := &DMA{Bus: bus, Image: img, Blocks: 4, Interval: 100, Burst: 1}
	d.Tick(100)
	if events != 1 {
		t.Fatalf("DMA write should invalidate core 0 (events=%d)", events)
	}
	if d.Writes != 1 {
		t.Errorf("DMA writes = %d", d.Writes)
	}
	// The DMA data must be visible in the image.
	if img.Read(block) == prog.NewImage(1).Read(block) {
		t.Error("DMA did not write data")
	}
	// Next read of the block is an external fill.
	r := h[0].Read(0x40, block, 2000)
	if !r.External {
		t.Error("post-DMA fill should be external")
	}
}

func TestDMAIntervalAndRing(t *testing.T) {
	bus := NewBus(1, 400)
	h := cache.NewHierarchy(0, cache.DefaultHierConfig(), bus)
	bus.AttachPeer(0, h)
	d := &DMA{Bus: bus, Image: prog.NewImage(0), Blocks: 2, Interval: 50, Burst: 1}
	for cyc := int64(0); cyc < 500; cyc++ {
		d.Tick(cyc)
	}
	// 500/50 = 10 bursts of 1 block.
	if d.Writes != 10 {
		t.Errorf("DMA writes = %d, want 10", d.Writes)
	}
	if bus.Stats.DMAWrites != 10 {
		t.Errorf("bus DMA writes = %d", bus.Stats.DMAWrites)
	}
	d2 := &DMA{Bus: bus, Image: prog.NewImage(0), Blocks: 2, Interval: 0, Burst: 1}
	d2.Tick(1000)
	if d2.Writes != 0 {
		t.Error("disabled DMA should not write")
	}
}

func TestUniprocessorBusLatency(t *testing.T) {
	bus := NewBus(1, 400)
	h := cache.NewHierarchy(0, cache.DefaultHierConfig(), bus)
	bus.AttachPeer(0, h)
	r := h.Read(0x40, 0x8000, 0)
	// Single-core bus should not pay interconnect adders (the cold TLB
	// walk is the only addition beyond memory + hierarchy traversal).
	if r.Latency > 400+15+1+h.DataTLB().WalkLatency {
		t.Errorf("uniprocessor memory latency %d too high", r.Latency)
	}
}

func TestIOBaseMatchesWorkloadConstant(t *testing.T) {
	// coherence.IOBase and workload.IOBase must agree; the workload
	// package cannot import coherence, so both define the constant.
	if IOBase != uint64(1)<<44 {
		t.Errorf("IOBase = %#x", IOBase)
	}
}
