package coherence

// Tests for the bus's active-core probe masking: a core is masked out
// of probe walks until its first fetch/upgrade, re-attaching resets it
// to quiet, and — the regression guard for the in-flight rebinding bug
// class — a quiet core that re-arms with new traffic must receive
// every subsequent invalidation exactly as if it had never been
// masked.

import (
	"testing"

	"vbmo/internal/cache"
)

// maskSystem builds an n-core bus with hierarchies and per-core
// invalidation-observation counters keyed by block.
func maskSystem(t *testing.T, n int) (*Bus, []*cache.Hierarchy, []map[uint64]int) {
	t.Helper()
	bus := NewBus(n, 400)
	hiers := make([]*cache.Hierarchy, n)
	seen := make([]map[uint64]int, n)
	for c := 0; c < n; c++ {
		cfg := cache.DefaultHierConfig()
		cfg.PrefetchEntries = 0
		hiers[c] = cache.NewHierarchy(c, cfg, bus)
		bus.AttachPeer(c, hiers[c])
		seen[c] = map[uint64]int{}
		c := c
		bus.OnInvalidation(c, func(block uint64) { seen[c][block]++ })
	}
	return bus, hiers, seen
}

func TestActiveCoreMasking(t *testing.T) {
	const block = 0x4000
	cases := []struct {
		name string
		// arm runs the traffic that should (or should not) arm core 2.
		arm func(bus *Bus, h []*cache.Hierarchy)
		// wantInv is whether core 2 must observe the invalidation that
		// a Probe of block delivers afterwards.
		wantInv bool
	}{
		{
			name:    "quiet core is masked out",
			arm:     func(bus *Bus, h []*cache.Hierarchy) {},
			wantInv: false,
		},
		{
			name: "read re-arms the core",
			arm: func(bus *Bus, h []*cache.Hierarchy) {
				h[2].Read(0x40, block, 0)
			},
			wantInv: true,
		},
		{
			name: "write re-arms the core",
			arm: func(bus *Bus, h []*cache.Hierarchy) {
				h[2].Write(block, 0)
			},
			wantInv: true,
		},
		{
			name: "re-attach quiets the core again",
			arm: func(bus *Bus, h []*cache.Hierarchy) {
				h[2].Read(0x40, block, 0)
				// Re-attach: the hierarchy is rebuilt (and with it any
				// cached copies dropped), so the core is quiet until it
				// issues traffic again.
				cfg := cache.DefaultHierConfig()
				cfg.PrefetchEntries = 0
				h[2] = cache.NewHierarchy(2, cfg, bus)
				bus.AttachPeer(2, h[2])
			},
			wantInv: false,
		},
		{
			name: "re-attached core receives again after new traffic",
			arm: func(bus *Bus, h []*cache.Hierarchy) {
				h[2].Read(0x40, block, 0)
				cfg := cache.DefaultHierConfig()
				cfg.PrefetchEntries = 0
				h[2] = cache.NewHierarchy(2, cfg, bus)
				bus.AttachPeer(2, h[2])
				h[2].Read(0x40, block, 0)
			},
			wantInv: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bus, h, seen := maskSystem(t, 4)
			// Core 0 always holds the block so the directory entry and
			// Probe walk exist regardless of core 2's state.
			h[0].Read(0x40, block, 0)
			tc.arm(bus, h)
			bus.Probe(block)
			if got := seen[2][block] > 0; got != tc.wantInv {
				t.Fatalf("core 2 observed invalidation = %v, want %v (counts %v)",
					got, tc.wantInv, seen[2])
			}
			if seen[0][block] == 0 {
				t.Fatal("core 0 held the block but observed no invalidation")
			}
			if seen[3][block] != 0 {
				t.Fatal("core 3 never touched the block but observed an invalidation")
			}
		})
	}
}

// TestMaskedInvalidationAfterRearm drives the full sequence the ISSUE
// names: quiet core, remote writes it misses, re-arm, then a remote
// write it must observe — with exclusive-fetch invalidations rather
// than synthetic probes.
func TestMaskedInvalidationAfterRearm(t *testing.T) {
	const block = 0x8000
	bus, h, seen := maskSystem(t, 4)
	// Core 1 writes while core 2 is quiet: no delivery to core 2.
	h[1].Write(block, 0)
	if seen[2][block] != 0 {
		t.Fatal("quiet core observed an invalidation")
	}
	// Core 2 re-arms by reading the block (becomes a sharer).
	if r := h[2].Read(0x40, block, 10); !r.External {
		t.Fatal("fill after a remote write must be external")
	}
	// Core 1 upgrades again: core 2 is a sharer and must observe it.
	h[1].Write(block, 20)
	if seen[2][block] != 1 {
		t.Fatalf("re-armed sharer observed %d invalidations, want 1", seen[2][block])
	}
	// And the copy is really gone: the next read is another miss.
	if r := h[2].Read(0x40, block, 30); !r.External {
		t.Fatal("read after observed invalidation must refill externally")
	}
	if bus.Stats.Invalidations == 0 {
		t.Fatal("no invalidations counted on the bus")
	}
}
