package coherence

import "vbmo/internal/prog"

// IOBase is the base address of the coherent memory-mapped I/O buffer
// region written by the DMA agent and occasionally read by workloads.
const IOBase = uint64(1) << 44

// DMA is a coherent DMA agent standing in for the paper's I/O devices
// (disk, console, network adapter). Every Interval cycles it writes a
// burst of blocks into a ring of I/O buffers, invalidating any cached
// copies — the only source of snoop traffic a uniprocessor observes
// (paper §5.1: "no snoop requests ... other than coherent I/O
// operations issued by the DMA controller").
type DMA struct {
	// Bus is the interconnect the agent writes through.
	Bus *Bus
	// Image is the memory image DMA data lands in.
	Image *prog.Image
	// Blocks is the ring size in cache blocks.
	Blocks int
	// Interval is the cycle spacing of bursts (0 disables the agent).
	Interval int64
	// Burst is the number of blocks written per interval.
	Burst int

	// ShadowWrite, if set, is invoked for every word the agent writes
	// (consistency tracking).
	ShadowWrite func(addr, value uint64)

	cursor int
	nextAt int64
	// Writes counts blocks written.
	Writes uint64
}

// NextAt returns the cycle at which the next burst is scheduled: Tick
// is a no-op strictly before it. Zero until the first Tick (the agent
// fires on the first Tick it observes). The system's quiescence
// fast-forward uses it as a wake event: skipped windows never cross a
// scheduled burst.
func (d *DMA) NextAt() int64 { return d.nextAt }

// Tick advances the agent to the given cycle, performing any due burst.
func (d *DMA) Tick(cycle int64) {
	if d.Interval <= 0 || cycle < d.nextAt {
		return
	}
	d.nextAt = cycle + d.Interval
	for i := 0; i < d.Burst; i++ {
		block := IOBase + uint64(d.cursor)*64
		d.cursor = (d.cursor + 1) % d.Blocks
		// Write fresh data into every word of the block, then push the
		// invalidation through the bus.
		for w := uint64(0); w < 64; w += 8 {
			v := uint64(cycle) ^ (block + w) ^ 0xd1b54a32d192ed03
			d.Image.Write(block+w, v)
			if d.ShadowWrite != nil {
				d.ShadowWrite(block+w, v)
			}
		}
		d.Bus.DMAWrite(block)
		d.Writes++
	}
}
