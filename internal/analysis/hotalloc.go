package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //vbr:hotpath must not contain allocation-inducing " +
		"constructs; the cycle loop's allocation-free contract is structural",
	Run: runHotAlloc,
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

// checkHotFunc walks one //vbr:hotpath function body and flags every
// construct the compiler may lower to a heap allocation. Plain struct
// value literals (trace.Event{...}) are allowed — they stay on the
// stack; the flagged set is: new, &composite, slice/map/func literals,
// append to a slice not preallocated in this function, any fmt call,
// string concatenation, and boxing a concrete non-pointer value into
// an interface parameter.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	prealloc := preallocatedSlices(fn)

	// Collect objects declared inside fn so closures that capture them
	// can be detected (a capturing closure forces its frame to the heap).
	local := map[types.Object]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	var funcLits []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			funcLits = append(funcLits, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap in //vbr:hotpath function %s", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates in //vbr:hotpath function %s", kindName(t), fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, prealloc)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) {
				pass.Reportf(n.Pos(), "string concatenation allocates in //vbr:hotpath function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.Pos(), "string concatenation allocates in //vbr:hotpath function %s", fn.Name.Name)
			}
		}
		return true
	})

	for _, fl := range funcLits {
		captured := ""
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if captured != "" {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && local[obj] && !declaredWithin(obj, fl) {
					captured = obj.Name()
				}
			}
			return true
		})
		if captured != "" {
			pass.Reportf(fl.Pos(), "closure captures %q from //vbr:hotpath function %s; the captured frame escapes to the heap", captured, fn.Name.Name)
		} else {
			pass.Reportf(fl.Pos(), "func literal allocates in //vbr:hotpath function %s", fn.Name.Name)
		}
	}
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, prealloc map[string]bool) {
	info := pass.Pkg.Info
	// Builtins: new always allocates; append is allowed only onto a
	// slice proven preallocated in this function (make with capacity or
	// a s = s[:0] reset); make itself allocates.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				pass.Reportf(call.Pos(), "new allocates in //vbr:hotpath function %s", fn.Name.Name)
			case "make":
				pass.Reportf(call.Pos(), "make allocates in //vbr:hotpath function %s", fn.Name.Name)
			case "append":
				if len(call.Args) > 0 && !prealloc[exprString(call.Args[0])] {
					pass.Reportf(call.Pos(), "append to %s may grow the backing array in //vbr:hotpath function %s; preallocate (make with capacity, or reset with s = s[:0]) or //vbr:allow with the amortization argument", exprString(call.Args[0]), fn.Name.Name)
				}
			}
			return
		}
	}
	// Any fmt call: Sprintf allocates the string, Fprintf allocates
	// through the ...any varargs, Errorf allocates the error.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates in //vbr:hotpath function %s", obj.Name(), fn.Name.Name)
			return
		}
	}
	// Interface boxing: passing a concrete non-pointer-shaped value
	// where the callee takes an interface forces a heap copy
	// (runtime.convT*). Pointer-shaped values (pointers, chans, maps,
	// funcs) fit the interface word directly and are free.
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && !call.Ellipsis.IsValid():
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isPointerShaped(at) {
			continue
		}
		if _, argIsIface := at.Underlying().(*types.Interface); argIsIface {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s into interface parameter boxes it onto the heap in //vbr:hotpath function %s", at.String(), fn.Name.Name)
	}
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.Types[call.Fun].Type
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// preallocatedSlices scans fn's body for slices that were demonstrably
// given capacity inside the function: `s := make([]T, n, c)` (flagged
// separately as make, but it does prove capacity) or the steady-state
// reuse reset `s = s[:0]`. append onto these is allowed.
func preallocatedSlices(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lhs := exprString(as.Lhs[i])
			switch r := rhs.(type) {
			case *ast.CallExpr:
				if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "make" {
					out[lhs] = true
				}
			case *ast.SliceExpr:
				// s = s[:0] — reuse of retained capacity.
				if exprString(r.X) == lhs && r.Low == nil && r.High != nil {
					if lit, ok := r.High.(*ast.BasicLit); ok && lit.Value == "0" {
						out[lhs] = true
					}
				}
			}
		}
		return true
	})
	return out
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
