package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureDirs maps the fixture module's import paths onto testdata
// trees. The paths are chosen so each analyzer's scoping rules fire:
// fix/internal/pipeline and fix/internal/lsq get the determinism
// rules, fix/cmd/tool the cmd exit rules, and the trace/fault/exitcode
// stubs satisfy the suffix matching used by nilguard and exitcode.
var fixtureDirs = map[string]string{
	"fix/internal/trace":    "testdata/src/trace",
	"fix/internal/fault":    "testdata/src/fault",
	"fix/internal/exitcode": "testdata/src/exitcode",
	"fix/internal/pipeline": "testdata/src/determinism",
	"fix/internal/hot":      "testdata/src/hot",
	"fix/internal/guards":   "testdata/src/guards",
	"fix/cmd/tool":          "testdata/src/tool",
	"fix/internal/leaky":    "testdata/src/leaky",
	"fix/internal/lsq":      "testdata/src/allow",
	"fix/internal/nodoc":    "testdata/src/nodoc",
	"fix/internal/stubdoc":  "testdata/src/stubdoc",
	"fix/internal/baddoc":   "testdata/src/baddoc",
	// Flow-aware analyzer fixtures. The paths land inside the scopes
	// the analyzers guard: the farm subtree for lockorder, the par
	// subtree for goleak (both dodge the exact-suffix determinism
	// scopes), cmd for errflow, and a neutral package for the
	// tree-wide condguard.
	"fix/internal/farm/locks":  "testdata/src/lockorder",
	"fix/internal/condsync":    "testdata/src/condguard",
	"fix/internal/par/leakers": "testdata/src/goleak",
	"fix/cmd/errtool":          "testdata/src/errflow",
}

var (
	fixtureOnce sync.Once
	fixtureProg *Program
	fixtureErr  error
)

// loadFixtures type-checks the fixture module once per test binary
// (the source importer re-checks the stdlib, which is the slow part).
func loadFixtures(t *testing.T) *Program {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureProg, fixtureErr = LoadPackages("fix", fixtureDirs)
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixtureProg
}

func fixturePackage(t *testing.T, path string) *Package {
	t.Helper()
	for _, pkg := range loadFixtures(t).Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	t.Fatalf("fixture package %s not loaded", path)
	return nil
}

// want is one inline expectation: `// want <analyzer> "substr"` on the
// diagnostic's line, or `// want-below <analyzer> "substr"` on the
// line above it.
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

var wantRE = regexp.MustCompile(`want(-below)? (\w+) "([^"]*)"`)

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				w := &want{file: path, line: i + 1, analyzer: m[2], substr: m[3]}
				if m[1] == "-below" {
					w.line++
				}
				wants = append(wants, w)
			}
		}
	}
	return wants
}

// checkFixture lints one fixture package and compares the findings
// against its inline expectations, both directions: every want must be
// matched by a diagnostic, and every diagnostic must be wanted.
func checkFixture(t *testing.T, importPath string) []Diagnostic {
	t.Helper()
	pkg := fixturePackage(t, importPath)
	diags := RunPackage(pkg, Analyzers())
	wants := parseWants(t, pkg.Dir)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s finding containing %q, got none", w.file, w.line, w.analyzer, w.substr)
		}
	}
	return diags
}

func TestDeterminismFixture(t *testing.T) { checkFixture(t, "fix/internal/pipeline") }
func TestHotAllocFixture(t *testing.T)    { checkFixture(t, "fix/internal/hot") }
func TestNilGuardFixture(t *testing.T)    { checkFixture(t, "fix/internal/guards") }
func TestExitCodeCmdFixture(t *testing.T) { checkFixture(t, "fix/cmd/tool") }
func TestExitCodeInternalFixture(t *testing.T) {
	checkFixture(t, "fix/internal/leaky")
}

// The flow-aware analyzer fixtures: each proves true positives and
// guarded/suppressed negatives against the CFG/dataflow engine.
func TestLockOrderFixture(t *testing.T) { checkFixture(t, "fix/internal/farm/locks") }
func TestCondGuardFixture(t *testing.T) { checkFixture(t, "fix/internal/condsync") }
func TestGoLeakFixture(t *testing.T)    { checkFixture(t, "fix/internal/par/leakers") }
func TestErrFlowFixture(t *testing.T)   { checkFixture(t, "fix/cmd/errtool") }

// The doccheck fixtures cover the three failure modes one per package:
// no package comment at all, a stub comment, and a wrong-prefix
// comment duplicated across two files.
func TestDocCheckMissingFixture(t *testing.T) { checkFixture(t, "fix/internal/nodoc") }
func TestDocCheckStubFixture(t *testing.T)    { checkFixture(t, "fix/internal/stubdoc") }
func TestDocCheckPrefixFixture(t *testing.T)  { checkFixture(t, "fix/internal/baddoc") }

// TestStubsClean: the hook stubs themselves must lint clean — in
// particular, a hook method calling through its own receiver is
// "already guarded" and must not be flagged.
func TestStubsClean(t *testing.T) {
	for _, p := range []string{"fix/internal/trace", "fix/internal/fault", "fix/internal/exitcode"} {
		for _, d := range RunPackage(fixturePackage(t, p), Analyzers()) {
			t.Errorf("stub %s: unexpected diagnostic: %s", p, d)
		}
	}
}

// TestAllowSuppressesExactlyOne: the escape-hatch fixture contains four
// identical time.Now violations; the two carrying a matching directive
// (line-above and same-line placements) vanish, the other two remain.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	diags := checkFixture(t, "fix/internal/lsq")
	var det, meta int
	for _, d := range diags {
		switch d.Analyzer {
		case "determinism":
			det++
		case "vbrlint":
			meta++
		}
	}
	if det != 2 {
		t.Errorf("determinism findings after suppression = %d, want 2 (4 violations, 2 allowed)", det)
	}
	if meta != 3 {
		t.Errorf("vbrlint directive findings = %d, want 3 (2 unused + 1 malformed)", meta)
	}
}

// TestEachViolationFixtureNonzero mirrors the CLI contract: every
// violation fixture must produce at least one finding (vbrlint exits
// nonzero on each).
func TestEachViolationFixtureNonzero(t *testing.T) {
	for _, p := range []string{
		"fix/internal/pipeline", "fix/internal/hot", "fix/internal/guards",
		"fix/cmd/tool", "fix/internal/leaky", "fix/internal/lsq",
		"fix/internal/nodoc", "fix/internal/stubdoc", "fix/internal/baddoc",
		"fix/internal/farm/locks", "fix/internal/condsync",
		"fix/internal/par/leakers", "fix/cmd/errtool",
	} {
		if n := len(RunPackage(fixturePackage(t, p), Analyzers())); n == 0 {
			t.Errorf("%s: want nonzero findings, got 0", p)
		}
	}
}

// TestSelect pins the -analyzers flag semantics: canonical ordering,
// whitespace tolerance, empty-means-all, and a hard error (listing the
// valid names) on a typo.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	sel, err := Select(" errflow , lockorder ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "lockorder" || sel[1].Name != "errflow" {
		t.Errorf("Select subset = %v, want [lockorder errflow] in canonical order", names(sel))
	}
	if _, err := Select("lockordr"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("Select with a typo: err = %v, want unknown-analyzer error listing valid names", err)
	}
}

func names(as []*Analyzer) []string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return ns
}

// TestSubsetRunSkipsForeignAllows: a subset run must not call another
// analyzer's //vbr:allow directive unused — the directive was simply
// not exercised. The condguard fixture's directive is the probe.
func TestSubsetRunSkipsForeignAllows(t *testing.T) {
	pkg := fixturePackage(t, "fix/internal/condsync")
	sel, err := Select("lockorder")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunPackage(pkg, sel) {
		t.Errorf("subset run reported: %s", d)
	}
}

// TestDiagnosticJSON pins the machine-readable shape -json emits, so
// CI tooling can diff findings between commits.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", Package: "p", File: "f.go", Line: 3, Col: 7, Message: "m"}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	wantJSON := `{"analyzer":"determinism","package":"p","file":"f.go","line":3,"col":7,"message":"m"}`
	if got != wantJSON {
		t.Errorf("JSON shape drifted:\n got %s\nwant %s", got, wantJSON)
	}
}

// TestPatternMatching covers the ./... expansion the driver uses.
func TestPatternMatching(t *testing.T) {
	cases := []struct {
		path     string
		patterns []string
		want     bool
	}{
		{"vbmo/internal/pipeline", []string{"./..."}, true},
		{"vbmo/internal/pipeline", nil, true},
		{"vbmo/internal/pipeline", []string{"./internal/..."}, true},
		{"vbmo/internal/pipeline", []string{"./internal/pipeline"}, true},
		{"vbmo/internal/pipeline", []string{"./internal/lsq"}, false},
		{"vbmo/internal/pipeline", []string{"./cmd/..."}, false},
		{"vbmo/cmd/vbrsim", []string{"vbmo/cmd/vbrsim"}, true},
		{"vbmo", []string{"./..."}, true},
	}
	for _, c := range cases {
		if got := matchAny(c.path, "vbmo", c.patterns); got != c.want {
			t.Errorf("matchAny(%q, %v) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}
