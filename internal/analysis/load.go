package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked module package.
type Package struct {
	Path  string // import path, e.g. "vbmo/internal/pipeline"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Program is the loaded module: every non-test package, type-checked
// in dependency order against the real standard library.
type Program struct {
	ModulePath string
	Fset       *token.FileSet
	Packages   []*Package // sorted by import path
}

// LoadModule discovers, parses, and type-checks every non-test package
// under root (a directory containing go.mod). Test files, testdata
// trees, and hidden/underscore directories are skipped — the analyzers
// guard shipped simulator code, not its tests.
//
// Standard-library imports are resolved with the "source" importer
// (modern toolchains ship no pre-built export data), and module-local
// imports are served from the walked tree, so the loader needs neither
// GOPATH nor the go command.
func LoadModule(root string) (*Program, error) {
	modulePath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs := map[string]string{} // import path -> dir
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modulePath
		if rel != "." {
			imp = modulePath + "/" + filepath.ToSlash(rel)
		}
		dirs[imp] = path
		return nil
	})
	if err != nil {
		return nil, err
	}
	return LoadPackages(modulePath, dirs)
}

// LoadPackages parses and type-checks the packages in dirs (import
// path -> directory). It is the testing seam: fixture trees under
// testdata/src are loaded by mapping their real module import paths
// (including stubs for vbmo/internal/trace etc.) onto fixture dirs.
func LoadPackages(modulePath string, dirs map[string]string) (*Program, error) {
	fset := token.NewFileSet()
	l := &loader{
		fset: fset,
		dirs: dirs,
		pkgs: map[string]*Package{},
		std:  importer.ForCompiler(fset, "source", nil),
	}
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	prog := &Program{ModulePath: modulePath, Fset: fset}
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

type loader struct {
	fset     *token.FileSet
	dirs     map[string]string
	pkgs     map[string]*Package
	std      types.Importer
	checking []string // in-progress import paths, for cycle reporting
}

// Import implements types.Importer: module packages come from the
// walked tree, everything else from the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	for _, p := range l.checking {
		if p == path {
			return nil, fmt.Errorf("import cycle: %s", strings.Join(append(l.checking, path), " -> "))
		}
	}
	l.checking = append(l.checking, path)
	defer func() { l.checking = l.checking[:len(l.checking)-1] }()

	dir := l.dirs[path]
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true, nil
		}
	}
	return false, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
