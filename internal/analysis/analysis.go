// Package analysis is vbrlint's engine: a stdlib-only static-analysis
// framework (go/parser + go/types + go/importer — the module stays
// dependency-free) plus the project-specific analyzers that turn the
// simulator's runtime invariants into compile-time checks:
//
//   - determinism: simulator packages must stay bit-reproducible — no
//     wall-clock time, no global math/rand, no order-dependent map
//     iteration, no multi-way select.
//   - hotalloc: functions annotated //vbr:hotpath must not contain
//     allocation-inducing constructs (the cycle loop's 0.0005
//     allocs/instr budget is enforced structurally, not just by the
//     runtime regression tests).
//   - nilguard: every call through a *trace.Tracer or *fault.Injector
//     must be dominated by a nil check, preserving the zero-cost
//     disabled path.
//   - exitcode: cmd/* may exit only through internal/exitcode
//     constants; internal/* may not exit at all.
//   - doccheck: every package carries a real doc comment.
//
// Four further analyzers are flow-aware, built on the CFG +
// worklist-dataflow engine in the flow subpackage:
//
//   - lockorder: mutex discipline in internal/farm and internal/par —
//     declared //vbr:lockorder acquisition order, no relock
//     self-deadlock, every Lock released on all paths to return.
//   - condguard: the sync.Cond protocol (Wait in a for loop holding
//     the associated mutex; Signal/Broadcast while holding it).
//   - goleak: every goroutine has a reachable exit path and every
//     time.AfterFunc timer is captured and stopped.
//   - errflow: error results in farm, par, and cmd packages are used
//     on every path — never silently dropped or overwritten.
//
// Findings are suppressed with a line-targeted escape hatch:
//
//	//vbr:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. Unused
// or malformed directives are themselves diagnostics, so the shipped
// tree cannot accumulate stale suppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.Path,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, addressed by file:line:col.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in its canonical run order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		HotAllocAnalyzer,
		NilGuardAnalyzer,
		ExitCodeAnalyzer,
		DocCheckAnalyzer,
		LockOrderAnalyzer,
		CondGuardAnalyzer,
		GoLeakAnalyzer,
		ErrFlowAnalyzer,
	}
}

// Select resolves comma-separated analyzer names against the full
// suite, preserving canonical order. An empty spec selects everything;
// an unknown name is an error listing the valid names.
func Select(spec string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	valid := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		valid = append(valid, a.Name)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
		want[name] = true
	}
	var sel []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}

// allowDirective is one parsed "//vbr:allow <analyzer> <reason>"
// comment. It suppresses findings of the named analyzer on its own
// source line or the line directly below it (i.e. it may trail the
// offending statement or sit on its own line above it).
type allowDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

const (
	allowPrefix   = "//vbr:allow"
	hotpathMarker = "//vbr:hotpath"
)

// parseAllows extracts every allow directive in the package. Malformed
// directives (missing analyzer or reason) are reported as diagnostics
// under the pseudo-analyzer "vbrlint".
func parseAllows(pkg *Package, diags *[]Diagnostic) []*allowDirective {
	var allows []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // e.g. //vbr:allowing — not our directive
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Analyzer: "vbrlint",
						Package:  pkg.Path,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //vbr:allow: want \"//vbr:allow <analyzer> <reason>\"",
					})
					continue
				}
				allows = append(allows, &allowDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return allows
}

// RunPackage applies every analyzer to one package, then applies the
// //vbr:allow suppressions. A directive that suppresses nothing is
// itself reported, so stale allows cannot survive refactors silently.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	var meta []Diagnostic // malformed/unused directive findings
	allows := parseAllows(pkg, &meta)

	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
		a.Run(pass)
	}

	var kept []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, al := range allows {
			if al.analyzer == d.Analyzer && al.file == d.File &&
				(al.line == d.Line || al.line == d.Line-1) {
				al.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, al := range allows {
		if !al.used {
			// On a subset run, a directive for an analyzer that did not
			// run is not stale — it just was not exercised. Only a full
			// run may call a directive unused (that includes directives
			// naming analyzers that do not exist at all).
			if !ran[al.analyzer] && len(analyzers) != len(Analyzers()) {
				continue
			}
			pos := pkg.Fset.Position(al.pos)
			meta = append(meta, Diagnostic{
				Analyzer: "vbrlint",
				Package:  pkg.Path,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  fmt.Sprintf("unused //vbr:allow %s directive (no %s finding on this or the next line)", al.analyzer, al.analyzer),
			})
		}
	}
	kept = append(kept, meta...)
	sortDiagnostics(kept)
	return kept
}

// Run loads the module rooted at root, lints the packages whose import
// paths match the patterns (empty = all), and returns the sorted
// findings.
func Run(root string, patterns []string) ([]Diagnostic, error) {
	return RunAnalyzers(root, patterns, Analyzers())
}

// RunAnalyzers is Run restricted to a chosen analyzer subset (the
// cmd/vbrlint -analyzers flag).
func RunAnalyzers(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		if !matchAny(pkg.Path, prog.ModulePath, patterns) {
			continue
		}
		out = append(out, RunPackage(pkg, analyzers)...)
	}
	sortDiagnostics(out)
	return out, nil
}

// matchAny reports whether import path p is selected by the patterns.
// Supported forms: "./..." (everything), "./dir/..." (subtree),
// "./dir" (exact), and bare import paths with the same "..." suffix
// convention.
func matchAny(p, modulePath string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "..." || pat == "" {
			return true
		}
		full := pat
		if !strings.HasPrefix(pat, modulePath) {
			full = modulePath + "/" + pat
		}
		if sub, ok := strings.CutSuffix(full, "/..."); ok {
			if p == sub || strings.HasPrefix(p, sub+"/") {
				return true
			}
			continue
		}
		if p == full {
			return true
		}
	}
	return false
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// isHotpath reports whether fn carries the //vbr:hotpath annotation in
// its doc comment.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}
