package analysis

import (
	"go/ast"
	"go/types"

	"vbmo/internal/analysis/flow"
)

var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: "goroutine lifetime in the concurrent packages: every go statement's " +
		"body must have a reachable exit path (a loop that can stop via flag, " +
		"channel close, or return), and every time.AfterFunc timer must be " +
		"captured and stopped somewhere",
	Run: runGoLeak,
}

// goleakPackages mirrors lockorder's scope: the packages allowed to
// spawn goroutines.
var goleakPackages = []string{"internal/farm", "internal/par"}

func runGoLeak(pass *Pass) {
	if !pathInTree(pass.Pkg.Path, goleakPackages) {
		return
	}
	stopped := stoppedTimerNames(pass.Pkg)

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			case *ast.CallExpr:
				checkAfterFunc(pass, file, n, stopped)
			}
			return true
		})
	}
}

// checkGoStmt requires the spawned function's exit block to be
// reachable from its entry: a goroutine whose body is an
// unconditional infinite loop can never stop, which on the farm
// means a leaked worker per request.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	body := goBody(pass.Pkg, g.Call)
	if body == nil {
		return // callee not in this package; out of intra-procedural reach
	}
	cfg := flow.Build(body, terminatingFor(pass.Pkg.Info))
	if !cfg.ReachableFromEntry()[cfg.Exit] {
		pass.Reportf(g.Pos(), "goroutine started here can never exit: no path from its loop reaches a return; add a stop flag, context, or closed-channel check")
	}
}

// goBody resolves the body of the function a go statement spawns:
// either a literal, or a function/method declared in the same package.
func goBody(pkg *Package, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		return declBodyOf(pkg, pkg.Info.Uses[fun])
	case *ast.SelectorExpr:
		return declBodyOf(pkg, pkg.Info.Uses[fun.Sel])
	}
	return nil
}

// declBodyOf finds the FuncDecl body for obj among the package's files.
func declBodyOf(pkg *Package, obj types.Object) *ast.BlockStmt {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			if pkg.Info.Defs[d.Name] == fn {
				return d.Body
			}
		}
	}
	return nil
}

// checkAfterFunc requires the *time.Timer returned by time.AfterFunc
// to be captured and eventually stopped: a discarded timer (or a
// captured one nobody ever Stops) re-fires or pins its callback, the
// exact leak class of the lease sweeper and worker heartbeat.
func checkAfterFunc(pass *Pass, file *ast.File, call *ast.CallExpr, stopped map[string]bool) {
	if !isAfterFunc(pass.Pkg.Info, call) {
		return
	}
	target, ok := afterFuncTarget(file, call)
	if !ok {
		pass.Reportf(call.Pos(), "time.AfterFunc result is discarded; nothing can ever Stop this timer — capture the *time.Timer and stop it on shutdown")
		return
	}
	if !stopped[lastComponent(exprString(target))] {
		pass.Reportf(call.Pos(), "the *time.Timer stored in %s is never stopped anywhere in this package; stop it on shutdown or the callback can fire after close",
			exprString(target))
	}
}

func isAfterFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "AfterFunc"
}

// afterFuncTarget finds the expression the AfterFunc result is
// assigned to. A blank identifier or a bare expression statement is a
// discard (ok=false).
func afterFuncTarget(file *ast.File, call *ast.CallExpr) (ast.Expr, bool) {
	var target ast.Expr
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if rhs == call && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						return false
					}
					target = n.Lhs[i]
					found = true
					return false
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if v == call && i < len(n.Names) {
					if n.Names[i].Name == "_" {
						return false
					}
					target = n.Names[i]
					found = true
					return false
				}
			}
		}
		return true
	})
	return target, found
}

// stoppedTimerNames collects, package-wide, the base names on which a
// (*time.Timer).Stop or Reset is called — directly (t.Stop, s.sweeper.Stop)
// or through a one-level local alias (t := s.sweeper; t.Stop()), the
// idiom the farm uses to stop a timer outside its mutex.
func stoppedTimerNames(pkg *Package) map[string]bool {
	stopped := map[string]bool{}
	aliases := map[string][]string{} // local base name -> source base names
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i := range asg.Lhs {
				id, ok := asg.Lhs[i].(*ast.Ident)
				if !ok || !isTimerExpr(pkg.Info, asg.Rhs[i]) {
					continue
				}
				switch asg.Rhs[i].(type) {
				case *ast.Ident, *ast.SelectorExpr:
					src := lastComponent(exprString(asg.Rhs[i]))
					aliases[id.Name] = append(aliases[id.Name], src)
				}
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Name() != "Stop" && fn.Name() != "Reset" {
				return true
			}
			base := lastComponent(exprString(sel.X))
			stopped[base] = true
			for _, src := range aliases[base] {
				stopped[src] = true
			}
			return true
		})
	}
	return stopped
}

// isTimerExpr reports whether e has type *time.Timer.
func isTimerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	p, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Timer" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "time"
}
