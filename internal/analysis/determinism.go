package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simPackages are the packages whose behaviour must be a pure function
// of (config, seed): the simulator proper plus the pure-model packages
// it is built from. Here the full rule set applies — any wall-clock
// read, global RNG call, order-dependent map iteration, or multi-way
// select would break the nine fixed-seed reference outputs and the
// serial ≡ parallel ≡ resumed sweep guarantees.
var simPackages = []string{
	// named by the invariant audit
	"internal/pipeline", "internal/system", "internal/lsq", "internal/cache",
	"internal/coherence", "internal/consistency", "internal/litmus", "internal/fault",
	// pure-model dependencies with the same obligation
	"internal/bpred", "internal/config", "internal/core", "internal/deppred",
	"internal/energy", "internal/isa", "internal/prog", "internal/stats",
	"internal/vpred", "internal/workload",
}

// aggPackages aggregate simulator results. Their tables and JSON
// reports must also be reproducible (no map-order output, no global
// RNG), but measuring wall-clock time is their job (experiments) or
// they legitimately wait on it (the farm service's HTTP plumbing), so
// the time rules do not apply. The farm is here because its whole value
// proposition — content-addressed cell results shared across restarts —
// collapses if any map-order or global-RNG nondeterminism leaks into a
// cache key or a result fold.
var aggPackages = []string{
	"internal/experiments",
	"internal/farm", "internal/farm/cachekey",
}

// Deliberately out of scope: internal/par (worker pools need select
// and deadlines — determinism there is guaranteed by canonical-order
// folds, tested dynamically), internal/trace (wall-clock profiling
// metadata and IO), internal/analysis and internal/exitcode (not
// simulation code), and cmd/* + examples/* (drivers).

var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid nondeterminism sources (wall-clock time, global math/rand, " +
		"unsorted map iteration, multi-way select) in simulator packages",
	Run: runDeterminism,
}

// bannedTimeFuncs are the package time functions that read the
// wall clock or create timers. Types (time.Duration) and pure
// constructors (time.Unix) are not flagged.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandNames are the math/rand identifiers that do NOT consult
// the global generator: constructors for explicitly seeded streams and
// the type names themselves.
var allowedRandNames = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) {
	full := pathMatches(pass.Pkg.Path, simPackages)
	agg := pathMatches(pass.Pkg.Path, aggPackages)
	if !full && !agg {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if full && bannedTimeFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulator packages must be a pure function of (config, seed) — derive timing from the cycle counter instead", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					// Methods (r.Intn on a seeded *rand.Rand) are fine;
					// only package-level functions hit the global stream.
					fn, isFunc := obj.(*types.Func)
					if isFunc && fn.Type().(*types.Signature).Recv() == nil && !allowedRandNames[obj.Name()] {
						pass.Reportf(n.Pos(), "rand.%s uses the global generator, whose sequence is shared and seed-independent; use a seed-derived *rand.Rand or the splitmix64 pattern", obj.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			case *ast.SelectStmt:
				if nclauses := len(n.Body.List); nclauses > 1 {
					pass.Reportf(n.Pos(), "select with %d cases resolves races nondeterministically; simulator packages must use deterministic control flow (single-case select is allowed)", nclauses)
				}
			}
			return true
		})
	}
}

// checkMapRange flags `for ... := range m` when m is a map, unless the
// loop body only appends to a slice that is sorted by the statement
// immediately following the loop — the one idiom that launders map
// order back into a deterministic sequence.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.Pkg.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if collectsIntoSortedSlice(pass, file, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "iteration over map %s has nondeterministic order; collect keys into a slice and sort, or iterate a canonical index", exprString(rng.X))
}

// collectsIntoSortedSlice recognizes the allowed pattern:
//
//	for k := range m { s = append(s, k) }
//	sort.Slice(s, ...)        // or sort.Strings/Ints/..., slices.Sort*
//
// The body may only append to a single target (optionally under `if`
// filters — filtering is order-independent once sorted), and the
// statement immediately after the range in the enclosing block must be
// a recognized sort whose first argument mentions that target.
func collectsIntoSortedSlice(pass *Pass, file *ast.File, rng *ast.RangeStmt) bool {
	target := ""
	if !appendOnlyStmts(pass, rng.Body.List, &target) || target == "" {
		return false
	}
	next := nextStmt(file, rng)
	return next != nil && isSortOf(pass, next, target)
}

// appendOnlyStmts reports whether every statement is an append to one
// shared target, possibly nested under else-less if filters.
func appendOnlyStmts(pass *Pass, stmts []ast.Stmt, target *string) bool {
	if len(stmts) == 0 {
		return false
	}
	for _, stmt := range stmts {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Else == nil {
			if !appendOnlyStmts(pass, ifs.Body.List, target) {
				return false
			}
			continue
		}
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 ||
			(as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
			return false
		}
		lhs := exprString(as.Lhs[0])
		if exprString(call.Args[0]) != lhs {
			return false
		}
		if *target == "" {
			*target = lhs
		} else if *target != lhs {
			return false
		}
	}
	return true
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// nextStmt finds the statement immediately following n in its
// enclosing block (or case/comm clause body).
func nextStmt(file *ast.File, n ast.Stmt) ast.Stmt {
	var out ast.Stmt
	ast.Inspect(file, func(node ast.Node) bool {
		if out != nil {
			return false
		}
		var list []ast.Stmt
		switch node := node.(type) {
		case *ast.BlockStmt:
			list = node.List
		case *ast.CaseClause:
			list = node.Body
		case *ast.CommClause:
			list = node.Body
		default:
			return true
		}
		for i, s := range list {
			if s == n && i+1 < len(list) {
				out = list[i+1]
				return false
			}
		}
		return true
	})
	return out
}

// isSortOf reports whether stmt is a call to a recognized sorting
// function whose first argument mentions target.
func isSortOf(pass *Pass, stmt ast.Stmt, target string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	if !strings.HasPrefix(obj.Name(), "Sort") && !strings.HasPrefix(obj.Name(), "Slice") &&
		obj.Name() != "Strings" && obj.Name() != "Ints" && obj.Name() != "Float64s" {
		return false
	}
	// sort.Sort(byX(s)) wraps the slice in a conversion; look for the
	// target anywhere inside the first argument.
	return strings.Contains(exprString(call.Args[0]), target)
}
