// Package det is loaded under the import path fix/internal/pipeline,
// so the full determinism rule set applies: no wall clock, no global
// RNG, no unsorted map iteration, no multi-way select.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Timing reads the wall clock three ways.
func Timing() time.Duration {
	start := time.Now()          // want determinism "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want determinism "time.Sleep reads the wall clock"
	return time.Since(start)     // want determinism "time.Since reads the wall clock"
}

// GlobalRand consults the process-global generator.
func GlobalRand() int {
	return rand.Intn(8) // want determinism "global generator"
}

// SeededRand builds an explicit seed-derived stream: allowed.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// MapOrder folds map values in iteration order.
func MapOrder(m map[int]int) []int {
	var out []int
	for _, v := range m { // want determinism "nondeterministic order"
		out = append(out, v*2)
	}
	return out
}

// SortedCollect is the allowed collect-then-sort idiom.
func SortedCollect(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// FilteredCollect filters during collection; still allowed, the sort
// launders the order.
func FilteredCollect(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		if k > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// UnsortedCollect collects but never sorts: flagged.
func UnsortedCollect(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // want determinism "nondeterministic order"
		keys = append(keys, k)
	}
	return keys
}

// Racy resolves a race between two channels.
func Racy(a, b chan int) int {
	select { // want determinism "select with 2 cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Blocking is a single-case select: allowed.
func Blocking(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
