// Package guards exercises the nilguard analyzer against the stub hook
// types: every accepted dominance pattern, and the rejections.
package guards

import (
	"fix/internal/fault"
	"fix/internal/trace"
)

// Core carries the two hook fields, nil when disabled.
type Core struct {
	tr  *trace.Tracer
	flt *fault.Injector
}

// Unguarded would panic with tracing disabled.
func (c *Core) Unguarded(e trace.Event) {
	c.tr.Emit(e) // want nilguard "not dominated by a nil check"
}

// IfGuard is the canonical pattern.
func (c *Core) IfGuard(e trace.Event) {
	if c.tr != nil {
		c.tr.Emit(e)
	}
}

// ShortCircuit guards with &&.
func (c *Core) ShortCircuit() bool {
	return c.flt != nil && c.flt.Decide()
}

// OrGuard guards with the == nil || form.
func (c *Core) OrGuard() bool {
	return c.flt == nil || c.flt.Decide()
}

// EarlyOut guards with a terminating if at the top.
func (c *Core) EarlyOut(e trace.Event) {
	if c.tr == nil {
		return
	}
	c.tr.Emit(e)
}

// ElseBranch calls in the else of an == nil check.
func (c *Core) ElseBranch(e trace.Event) {
	if c.tr == nil {
		_ = e
	} else {
		c.tr.Emit(e)
	}
}

// SwitchGuard uses a tagless-switch case condition.
func (c *Core) SwitchGuard(e trace.Event) {
	switch {
	case c.tr != nil && e.Kind > 0:
		c.tr.Emit(e)
	}
}

// Reassigned invalidates its early-out guard before the call.
func (c *Core) Reassigned(e trace.Event) {
	if c.tr == nil {
		return
	}
	c.tr = nil
	c.tr.Emit(e) // want nilguard "not dominated by a nil check"
}

// FlushIsNilSafe needs no guard: Flush checks its own receiver.
func (c *Core) FlushIsNilSafe() {
	_ = c.tr.Flush()
}

// ClosureAfterGuard defines the closure after a dominating early-out.
func (c *Core) ClosureAfterGuard(e trace.Event) func() {
	if c.tr == nil {
		return func() {}
	}
	return func() { c.tr.Emit(e) }
}

// LocalAlias guards through a rebound local.
func (c *Core) LocalAlias(e trace.Event) {
	t := c.tr
	if t != nil {
		t.Emit(e)
	}
}

// UnguardedInjector covers the second hook type.
func (c *Core) UnguardedInjector(n int) {
	c.flt.OnSquash(n) // want nilguard "not dominated by a nil check"
}
