// Package exitcode is a fixture stub of the shared exit-code table.
package exitcode

const (
	// OK is the success exit.
	OK = 0
	// Err is the generic failure exit.
	Err = 1
)
