// Package trace is a fixture stub of the real tracer: the nilguard
// analyzer matches hook types by import-path suffix and type name, so
// this stub stands in for vbmo/internal/trace.
package trace

// Event mirrors the real fixed-size event value.
type Event struct{ Kind int }

// Tracer mirrors the real tracer's nil-means-disabled contract.
type Tracer struct{ n int }

// Emit must only be called on a non-nil Tracer.
func (t *Tracer) Emit(e Event) { t.n += e.Kind }

// Flush is nil-safe, like the real one.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	return nil
}
