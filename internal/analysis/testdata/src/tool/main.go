// Command tool exercises the exitcode analyzer's cmd/* rules: exits
// must go through the shared table.
package main

import (
	"fmt"
	"log"
	"os"

	"fix/internal/exitcode"
)

func main() {
	if len(os.Args) > 9 {
		os.Exit(1) // want exitcode "must be a constant from internal/exitcode"
	}
	if len(os.Args) > 8 {
		log.Fatal("boom") // want exitcode "exits outside the internal/exitcode table"
	}
	if len(os.Args) > 7 {
		log.Fatalf("boom %d", 7) // want exitcode "exits outside the internal/exitcode table"
	}
	if len(os.Args) > 6 {
		os.Exit(exitcode.Err) // table constant: allowed
	}
	fmt.Println("ok")
	os.Exit(exitcode.OK)
}
