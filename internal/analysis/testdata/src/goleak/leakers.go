// Package leakers is a goleak fixture exercising goroutine and timer
// lifetimes: unstoppable spin loops, discarded and never-stopped
// time.AfterFunc timers, and the clean stop-channel and
// captured-timer patterns.
package leakers

import "time"

// W owns a heartbeat-style timer stopped through a local alias, the
// farm's idiom for stopping a timer outside its mutex.
type W struct {
	hb     *time.Timer
	orphan *time.Timer
}

// SpinForever starts a goroutine whose loop has no exit path at all.
func SpinForever(tick chan int) {
	go func() { // want goleak "can never exit"
		for {
			<-tick
		}
	}()
}

// DropTimer discards the *time.Timer, so nothing can ever stop it.
func DropTimer(fire func()) {
	time.AfterFunc(time.Second, fire) // want goleak "discarded"
}

// ArmOrphan stores a timer nothing in the package ever stops.
func (w *W) ArmOrphan(fire func()) {
	w.orphan = time.AfterFunc(time.Second, fire) // want goleak "never stopped"
}

// DrainUntilClosed is the clean shape: ranging over a channel exits
// when the producer closes it.
func DrainUntilClosed(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// StopFlagged exits its loop through a stop-channel select arm.
func StopFlagged(stop chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// Arm captures the heartbeat timer; Halt stops it via a local alias,
// which must satisfy the package-wide stop scan.
func (w *W) Arm(fire func()) {
	w.hb = time.AfterFunc(time.Second, fire)
}

// Halt stops the heartbeat through the aliasing idiom.
func (w *W) Halt() {
	t := w.hb
	if t != nil {
		t.Stop()
	}
}

// SleepBounded arms and defers the stop in one scope, the sleepCtx
// pattern.
func SleepBounded(fire func()) {
	t := time.AfterFunc(time.Second, fire)
	defer t.Stop()
	fire()
}

// Daemon runs for the whole process lifetime by design; the directive
// records the decision.
func Daemon(tick chan int) {
	go func() { //vbr:allow goleak process-lifetime daemon, reaped at exit
		for {
			<-tick
		}
	}()
}
