// Package baddoc documents itself a second time in a second file, so
// godoc would concatenate two package comments in file order and the
// duplicate rule must flag the later copy.
package baddoc // want doccheck "duplicate package comment"

// Extra exists so this file has surface beyond its package clause.
const Extra = 2
