// This file collects assorted helpers and opens with prose that never
// names the package, which defeats godoc's package-index convention
// and is exactly what the prefix rule rejects.
package baddoc // want doccheck "should start with"

// Exported exists so the package has surface worth documenting.
const Exported = 1
