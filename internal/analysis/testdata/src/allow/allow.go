// Package allow exercises the //vbr:allow escape hatch. It is loaded
// under fix/internal/lsq so the determinism rules apply. Two identical
// violations: the suppressed one must vanish, the other must remain —
// i.e. the hatch suppresses exactly one finding. Unused and malformed
// directives are themselves findings.
package allow

import "time"

// Suppressed documents a deliberate wall-clock read.
func Suppressed() int64 {
	//vbr:allow determinism fixture demonstrates a documented exception
	return time.Now().UnixNano()
}

// Trailing uses the same-line directive placement.
func Trailing() int64 {
	return time.Now().UnixNano() //vbr:allow determinism same-line placement works too
}

// NotSuppressed is the identical violation without a directive.
func NotSuppressed() int64 {
	return time.Now().UnixNano() // want determinism "time.Now reads the wall clock"
}

// WrongAnalyzer suppresses the wrong analyzer: the finding stays and
// the directive is reported unused.
func WrongAnalyzer() int64 {
	//vbr:allow hotalloc misdirected suppression // want vbrlint "unused //vbr:allow"
	return time.Now().UnixNano() // want determinism "time.Now reads the wall clock"
}

// Unused sits on nothing.
func Unused() {
	//vbr:allow determinism nothing violated here // want vbrlint "unused //vbr:allow"
}

// Malformed is missing its reason.
func Malformed() {
	// want-below vbrlint "malformed //vbr:allow"
	//vbr:allow determinism
}
