// Package condsync is a condguard fixture exercising the sync.Cond
// protocol: Wait outside a loop, Wait and Signal without the
// associated mutex, and the canonical guarded queue that must stay
// clean.
package condsync

import "sync"

// Q is a tiny condition-guarded counter queue.
type Q struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// NewQ builds the queue and associates cond with mu.
func NewQ() *Q {
	q := &Q{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// IfWait re-checks the predicate with an if: a spurious or stolen
// wakeup slips straight past it.
func (q *Q) IfWait() {
	q.mu.Lock()
	if q.n == 0 {
		q.cond.Wait() // want condguard "not inside a for loop"
	}
	q.n--
	q.mu.Unlock()
}

// UnlockedWait calls Wait without the mutex: Wait's internal unlock
// panics, and the predicate read is a race.
func (q *Q) UnlockedWait() {
	for q.n == 0 {
		q.cond.Wait() // want condguard "without definitely holding mu"
	}
}

// UnlockedSignal wakes waiters without holding the mutex the
// predicate they will re-check is guarded by.
func (q *Q) UnlockedSignal() {
	q.cond.Signal() // want condguard "without definitely holding mu"
}

// ReleasedTooSoon holds the mutex on only one path to Broadcast, so
// "definitely held" fails at the join.
func (q *Q) ReleasedTooSoon(flush bool) {
	q.mu.Lock()
	q.n = 0
	if flush {
		q.mu.Unlock()
	}
	q.cond.Broadcast() // want condguard "without definitely holding mu"
	if !flush {
		q.mu.Unlock()
	}
}

// Take is the canonical clean consumer: Wait in a for loop under the
// associated mutex.
func (q *Q) Take() {
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	q.mu.Unlock()
}

// Put is the canonical clean producer: Signal under the mutex.
func (q *Q) Put() {
	q.mu.Lock()
	q.n++
	q.cond.Signal()
	q.mu.Unlock()
}

// External participates in a protocol where the caller holds the
// mutex; the directive records the exception.
func (q *Q) External() {
	q.cond.Broadcast() //vbr:allow condguard caller holds mu across this broadcast
}
