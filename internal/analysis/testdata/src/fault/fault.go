// Package fault is a fixture stub of the real injector for the
// nilguard analyzer.
package fault

// Injector mirrors the real injector's nil-means-disabled contract.
type Injector struct{ n int }

// OnSquash requires a non-nil receiver.
func (in *Injector) OnSquash(core int) { in.n += core }

// Decide requires a non-nil receiver.
func (in *Injector) Decide() bool { in.n++; return false }

// Resolve calls through its own receiver: inside a hook method the
// receiver is already guaranteed non-nil by the callers' guards, so
// nilguard must not flag this ("already-guarded method").
func (in *Injector) Resolve(core int) { in.OnSquash(core) }
