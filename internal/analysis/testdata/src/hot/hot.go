// Package hot exercises the hotalloc analyzer: only functions carrying
// the //vbr:hotpath annotation are checked.
package hot

import "fmt"

type entry struct{ v int }

type ring struct {
	buf  []entry
	free []*entry
	name string
}

func take(v any) {}

//vbr:hotpath
func (r *ring) Bad(n int) {
	e := new(entry)               // want hotalloc "new allocates"
	p := &entry{v: n}             // want hotalloc "escapes to the heap"
	s := []int{1, 2}              // want hotalloc "slice literal allocates"
	m := map[int]int{}            // want hotalloc "map literal allocates"
	r.free = append(r.free, p)    // want hotalloc "append to r.free"
	r.name = fmt.Sprintf("%d", n) // want hotalloc "fmt.Sprintf allocates"
	r.name += "x"                 // want hotalloc "string concatenation"
	_, _, _ = e, s, m
}

//vbr:hotpath
func (r *ring) BadConcat(a, b string) string {
	return a + b // want hotalloc "string concatenation"
}

//vbr:hotpath
func (r *ring) BadBox(n int) {
	take(n) // want hotalloc "boxes it onto the heap"
}

//vbr:hotpath
func (r *ring) BadClosure() func() int {
	x := 1
	return func() int { return x } // want hotalloc "closure captures"
}

//vbr:hotpath
func (r *ring) GoodBox(p *entry) {
	take(p) // pointer-shaped: fits the interface word, no allocation
}

//vbr:hotpath
func (r *ring) Good(n int) int {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, entry{v: n}) // reset proves retained capacity
	e := entry{v: n}                   // value literal stays on the stack
	return e.v + len(r.buf)
}

// NotHot has no annotation, so anything goes.
func (r *ring) NotHot() string {
	return fmt.Sprintf("%d", len(r.buf))
}
