// Package locks is a lockorder fixture exercising mutex discipline:
// leaked acquisitions, relock self-deadlocks, RWMutex side crossings,
// declared-order violations, and the clean defer/all-paths patterns.
package locks

import "sync"

//vbr:lockorder mu leaseMu

// S bundles the fixture's locks, mirroring the farm server shape.
type S struct {
	mu      sync.Mutex
	leaseMu sync.Mutex
	otherMu sync.Mutex
	rw      sync.RWMutex
	n       int
}

// LeakOnErr forgets the unlock on the early-return path.
func (s *S) LeakOnErr(ok bool) {
	s.mu.Lock() // want lockorder "may still be held at return"
	if !ok {
		return
	}
	s.mu.Unlock()
}

// Relock deadlocks against itself: sync mutexes are not reentrant.
func (s *S) Relock() {
	s.mu.Lock()
	s.mu.Lock() // want lockorder "self-deadlock"
	s.mu.Unlock()
}

// UnlockCold releases a mutex no path of the function acquired.
func (s *S) UnlockCold() {
	s.mu.Unlock() // want lockorder "no path through this function holds"
}

// WrongOrder nests mu inside leaseMu; the declared order says mu first.
func (s *S) WrongOrder() {
	s.leaseMu.Lock()
	s.mu.Lock() // want lockorder "lock order violation"
	s.mu.Unlock()
	s.leaseMu.Unlock()
}

// Undeclared nests a mutex the //vbr:lockorder never mentions.
func (s *S) Undeclared() {
	s.mu.Lock()
	s.otherMu.Lock() // want lockorder "not in the package's //vbr:lockorder"
	s.otherMu.Unlock()
	s.mu.Unlock()
}

// CrossSides upgrades a read lock in place, which self-deadlocks.
func (s *S) CrossSides() {
	s.rw.RLock()
	s.rw.Lock() // want lockorder "both sides"
	s.rw.Unlock()
	s.rw.RUnlock()
}

// DeferClean is the canonical safe shape: defer covers every path,
// including the early return.
func (s *S) DeferClean(ok bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		return 0
	}
	s.n++
	return s.n
}

// BranchClean releases explicitly on both paths.
func (s *S) BranchClean(ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// NestedClean takes both locks in the declared order.
func (s *S) NestedClean() {
	s.mu.Lock()
	s.leaseMu.Lock()
	s.n++
	s.leaseMu.Unlock()
	s.mu.Unlock()
}

// CallerHeld releases a lock its caller acquired; the directive keeps
// the deliberate exception out of the findings.
func (s *S) CallerHeld() {
	s.n++
	s.mu.Unlock() //vbr:allow lockorder caller acquires mu and delegates the release here
}

// LoopClean locks and unlocks inside a loop body; the back edge must
// not look like a leaked acquisition.
func (s *S) LoopClean(rounds int) {
	for i := 0; i < rounds; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}
