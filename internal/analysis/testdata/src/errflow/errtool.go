// Command errtool is an errflow fixture exercising dropped error
// results: overwrites before any check, branch-dependent drops, bare
// discarding call statements, and the checked/explicit/suppressed
// shapes that must stay clean.
package main

import "errors"

func work() error { return nil }

func step() (int, error) { return 0, nil }

func wrap(err error) error {
	if err == nil {
		return nil
	}
	return errors.New("wrapped: " + err.Error())
}

// Overwrite loses step one's error: the multi-assign reuses err while
// it is still unchecked.
func Overwrite() error {
	a, err := step() // want errflow "dropped on some path"
	b, err := step()
	return wrap(errIfOdd(a + b + boolToInt(err != nil)))
}

// BranchDrop checks the error on one path and forgets it on the other.
func BranchDrop(flag bool) error {
	err := work() // want errflow "dropped on some path"
	if flag {
		return err
	}
	return nil
}

// NilOverwrite clobbers a pending error with nil, the classic
// accidentally-cleared status variable.
func NilOverwrite() error {
	err := work() // want errflow "dropped on some path"
	err = nil
	return err
}

// BareCall drops the error at the call statement itself.
func BareCall() {
	work() // want errflow "silently discarded"
}

// Checked is the canonical clean shape.
func Checked() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// WrapInPlace reads the pending error in the same statement that
// redefines it, which is a use, not a drop.
func WrapInPlace() error {
	err := work()
	err = wrap(err)
	return err
}

// ExplicitDrop documents the discard with a blank assignment.
func ExplicitDrop() {
	_ = work()
}

// Suppressed records a deliberate best-effort call via the directive.
func Suppressed() {
	err := work() //vbr:allow errflow best-effort cleanup, failure is unobservable here
	err = nil
	_ = err
}

// ClosureEscape hands the error to a closure; intra-procedural
// analysis cannot see the closure run, so the variable is untracked.
func ClosureEscape() func() error {
	err := work()
	return func() error { return err }
}

func errIfOdd(n int) error {
	if n%2 == 1 {
		return errors.New("odd")
	}
	return nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func main() {
	_ = Overwrite()
	_ = BranchDrop(false)
	_ = NilOverwrite()
	BareCall()
	_ = Checked()
	_ = WrapInPlace()
	ExplicitDrop()
	Suppressed()
	_ = ClosureEscape()
}
