// Package stubdoc spins.
package stubdoc // want doccheck "is a stub"

// Exported exists so the package has surface worth documenting.
const Exported = 1
