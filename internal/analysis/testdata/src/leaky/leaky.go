// Package leaky exercises the exitcode analyzer's internal/* rule: no
// process exit at all, the driver owns the exit path.
package leaky

import "os"

// Die hijacks the process from library code.
func Die() {
	os.Exit(2) // want exitcode "internal package"
}
