package nodoc // want doccheck "no package comment"

// Exported exists so the package has surface worth documenting.
const Exported = 1
