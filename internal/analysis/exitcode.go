package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

var ExitCodeAnalyzer = &Analyzer{
	Name: "exitcode",
	Doc: "cmd/* may call os.Exit only with constants from internal/exitcode " +
		"(the documented CLI contract); internal/* may not exit the process at all",
	Run: runExitCode,
}

// exitTableSuffix identifies the shared exit-code table package.
const exitTableSuffix = "internal/exitcode"

func runExitCode(pass *Pass) {
	path := pass.Pkg.Path
	inCmd := strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/")
	inInternal := strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
	if !inCmd && !inInternal {
		return // examples/* and the module root are demo/driver code
	}
	if strings.HasSuffix(path, exitTableSuffix) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "os":
				if obj.Name() != "Exit" {
					return true
				}
				if inInternal {
					pass.Reportf(call.Pos(), "os.Exit in an internal package hijacks the process from the driver; return an error (or a typed verdict) and let cmd/* map it to an exitcode constant")
					return true
				}
				if len(call.Args) == 1 && isExitTableConst(info, call.Args[0]) {
					return true
				}
				pass.Reportf(call.Pos(), "os.Exit argument must be a constant from %s (the documented CLI exit contract), not an ad-hoc value", exitTableSuffix)
			case "log":
				name := obj.Name()
				if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
					pass.Reportf(call.Pos(), "log.%s exits outside the %s table; print the error and os.Exit an exitcode constant instead", name, exitTableSuffix)
				}
			}
			return true
		})
	}
}

// isExitTableConst reports whether arg is a selector resolving to a
// constant declared in the shared exit-code table.
func isExitTableConst(info *types.Info, arg ast.Expr) bool {
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	c, ok := info.Uses[sel.Sel].(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	p := c.Pkg().Path()
	return p == exitTableSuffix || strings.HasSuffix(p, "/"+exitTableSuffix)
}
