package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vbmo/internal/analysis/flow"
)

var ErrFlowAnalyzer = &Analyzer{
	Name: "errflow",
	Doc: "error results in the farm, par, and command packages must be used on " +
		"every path: an error assigned from a call must be read (checked, " +
		"returned, passed on) before being overwritten or going out of scope, " +
		"and calls returning an error must not be used as bare statements",
	Run: runErrFlow,
}

// errflowPackages: the durability-critical packages (the PR 9
// JournalError work showed a silently dropped error can corrupt
// recovery) plus every command.
var errflowPackages = []string{"internal/farm", "internal/par", "cmd"}

func runErrFlow(pass *Pass) {
	if !pathInTree(pass.Pkg.Path, errflowPackages) {
		return
	}
	for _, file := range pass.Pkg.Files {
		checkDiscardedErrCalls(pass, file)
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			checkErrFlowFunc(pass, name, body)
		})
	}
}

// checkDiscardedErrCalls flags ExprStmt calls whose callee returns an
// error that thus vanishes. go/defer statements are excluded (their
// results are inherently discarded and flagged only when they matter
// for durability, which defers of Close in this tree never do), as
// are the stdlib families whose error results are documented never to
// be meaningful (fmt printing, hash/strings/bytes writers).
func checkDiscardedErrCalls(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !callReturnsError(info, call) || errExemptCallee(info, call) {
			return true
		}
		pass.Reportf(call.Pos(), "result of %s includes an error that is silently discarded; check it, return it, or assign to _ to make the drop explicit",
			calleeLabel(call))
		return true
	})
}

func calleeLabel(call *ast.CallExpr) string {
	return exprString(call.Fun)
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExemptCallee exempts callees whose error results are
// conventionally meaningless: the fmt print family, and Write-style
// methods from hash/strings/bytes (documented to never fail).
func errExemptCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch {
	case path == "fmt":
		return true
	case path == "hash" || strings.HasPrefix(path, "hash/"):
		return true
	case (path == "strings" || path == "bytes") && strings.HasPrefix(obj.Name(), "Write"):
		return true
	}
	return false
}

// errFact tracks "pending" error definitions: error-typed locals
// assigned from a call and not yet read. The map is keyed by the
// variable object; the value is the assignment position (where the
// diagnostic points). Join is union — pending on any path is a drop
// if that path reaches exit or an overwrite.
type errFact map[types.Object]token.Pos

type errAnalysis struct {
	info    *types.Info
	tracked map[types.Object]bool
}

func (errAnalysis) Entry() errFact { return errFact{} }

func (a errAnalysis) Transfer(_ *flow.Block, n ast.Node, f errFact) errFact {
	reads, defs := a.readsAndDefs(n)
	if len(reads) == 0 && len(defs) == 0 {
		return f
	}
	g := make(errFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	for _, obj := range reads {
		delete(g, obj)
	}
	for obj, pos := range defs {
		if pos == token.NoPos {
			delete(g, obj) // non-call assignment (err = nil): kills pending
		} else {
			g[obj] = pos
		}
	}
	return g
}

func (errAnalysis) Join(a, b errFact) errFact {
	j := make(errFact, len(a)+len(b))
	for k, v := range a {
		j[k] = v
	}
	for k, v := range b {
		if old, ok := j[k]; !ok || v < old {
			j[k] = v
		}
	}
	return j
}

func (errAnalysis) Equal(a, b errFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// readsAndDefs splits one CFG node into the tracked objects it reads
// and the ones it (re)defines. A def carries the assignment position
// when the value comes from a call (a droppable error), or NoPos for
// a plain value (err = nil) that merely kills older pending state.
// Defer bodies are skipped: a deferred use runs at return, after the
// dataflow's exit check, and crediting it here would be unsound —
// except that a deferred read is still a genuine use, so defers count
// as reads but produce no defs.
func (a errAnalysis) readsAndDefs(n ast.Node) (reads []types.Object, defs map[types.Object]token.Pos) {
	defs = map[types.Object]token.Pos{}
	collectReads := func(e ast.Node) {
		if e == nil {
			return
		}
		var skipBody ast.Node // a RangeStmt head node carries its body blocks separately
		if r, ok := e.(*ast.RangeStmt); ok {
			skipBody = r.Body
		}
		ast.Inspect(e, func(m ast.Node) bool {
			if m == skipBody {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false // closure-captured vars are not tracked at all
			}
			if id, ok := m.(*ast.Ident); ok {
				if obj := a.info.Uses[id]; obj != nil && a.tracked[obj] {
					reads = append(reads, obj)
				}
			}
			return true
		})
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			collectReads(rhs)
		}
		fromCall := len(n.Rhs) == 1 && isCallLike(n.Rhs[0])
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				collectReads(lhs) // m[err] = ..., s.f = ... read their operands
				continue
			}
			obj := a.info.Defs[id]
			if obj == nil {
				obj = a.info.Uses[id]
			}
			if obj == nil || !a.tracked[obj] {
				continue
			}
			pos := token.NoPos
			if fromCall || (len(n.Rhs) == len(n.Lhs) && isCallLike(n.Rhs[i])) {
				pos = id.Pos()
			}
			defs[obj] = pos
		}
	default:
		collectReads(n)
	}
	return reads, defs
}

func isCallLike(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.ARROW // <-ch delivers a value that must be handled too
	case *ast.TypeAssertExpr:
		return true
	case *ast.IndexExpr:
		return true
	}
	return false
}

// trackedErrVars selects the variables the dataflow follows: locals
// of exactly type error declared inside this body, excluding named
// results (read by naked returns) and anything captured by a nested
// function literal (the closure may read it later, beyond
// intra-procedural sight).
func trackedErrVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	tracked := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil || obj.Parent() == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && isErrorType(v.Type()) && !v.IsField() {
			tracked[obj] = true
		}
		return true
	})
	// Remove anything a closure captures or a defer's call arguments
	// mention: those uses happen outside the straight-line flow.
	var pruneUses func(root ast.Node)
	pruneUses = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					delete(tracked, obj)
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pruneUses(n.Body)
			return false
		case *ast.DeferStmt:
			pruneUses(n.Call)
			return false
		case *ast.GoStmt:
			pruneUses(n.Call)
			return false
		}
		return true
	})
	return tracked
}

// checkErrFlowFunc solves the pending-error dataflow for one function
// and reports (a) definitions overwritten before any read and (b)
// definitions still pending at exit. Reports are emitted in a single
// deterministic replay pass, not during solving.
func checkErrFlowFunc(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	tracked := trackedErrVars(info, body)
	if len(tracked) == 0 {
		return
	}
	a := errAnalysis{info: info, tracked: tracked}
	g := flow.Build(body, terminatingFor(info))
	res := flow.Solve[errFact](g, a)

	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, obj types.Object) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, "error assigned to %s in %s is dropped on some path without being checked; handle it, return it, or suppress with //vbr:allow errflow",
			obj.Name(), name)
	}

	for _, blk := range g.Blocks {
		f, reachable := res.In[blk]
		if !reachable {
			continue
		}
		for _, n := range blk.Nodes {
			_, defs := a.readsAndDefs(n)
			next := a.Transfer(blk, n, f)
			for obj := range defs {
				if pos, pending := f[obj]; pending {
					// Redefined while still pending: the old value is lost.
					// A read in the same node (e.g. err = wrap(err)) counts
					// as a use and is not a drop.
					if _, stillPending := next[obj]; stillPending || defs[obj] == token.NoPos {
						if readsObj(a, n, obj) {
							continue
						}
						report(pos, obj)
					}
				}
			}
			f = next
		}
	}
	if exit, reachable := res.In[g.Exit]; reachable {
		for obj, pos := range exit {
			report(pos, obj)
		}
	}
}

// readsObj reports whether node n reads obj (outside nested literals).
func readsObj(a errAnalysis, n ast.Node, obj types.Object) bool {
	reads, _ := a.readsAndDefs(n)
	for _, r := range reads {
		if r == obj {
			return true
		}
	}
	return false
}
