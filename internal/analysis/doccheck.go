package analysis

import (
	"go/ast"
	"strings"
)

var DocCheckAnalyzer = &Analyzer{
	Name: "doccheck",
	Doc: "every package must carry a real package comment: one file owns a " +
		"doc comment starting \"Package <name>\" (or \"Command <name>\" for main), " +
		"long enough to say what the package is for",
	Run: runDocCheck,
}

// docCheckMinWords is the stub threshold: a package comment shorter
// than this cannot say what the package models, which paper section it
// reproduces, or how it is used — the three things every package
// comment in this tree answers. Real package comments here run 20-60
// words; the fixture stubs run 11-14.
const docCheckMinWords = 10

func runDocCheck(pass *Pass) {
	// parseDir returns files in directory order (sorted by name), so
	// "the first file" is deterministic across runs and machines.
	var docFiles []*ast.File
	for _, f := range pass.Pkg.Files {
		if f.Doc != nil {
			docFiles = append(docFiles, f)
		}
	}
	if len(docFiles) == 0 {
		if len(pass.Pkg.Files) > 0 {
			f := pass.Pkg.Files[0]
			pass.Reportf(f.Package, "package %s has no package comment; add a doc comment starting %q to exactly one file",
				f.Name.Name, docPrefix(f.Name.Name))
		}
		return
	}
	// Go convention (and this repo's detached-comment idiom): exactly
	// one file carries the package comment. Extra copies drift apart.
	for _, f := range docFiles[1:] {
		pass.Reportf(f.Package, "duplicate package comment for %s (godoc concatenates them in file order); keep the one in %s and detach this one with a blank line",
			f.Name.Name, pass.Pkg.Fset.Position(docFiles[0].Package).Filename)
	}

	f := docFiles[0]
	text := strings.TrimSpace(f.Doc.Text())
	// The prefix convention binds libraries everywhere and main
	// packages under cmd/*; examples/* demos open with a scenario
	// description instead, which godoc renders fine for demo code.
	path := pass.Pkg.Path
	inCmd := strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/")
	if f.Name.Name != "main" || inCmd {
		prefix := docPrefix(f.Name.Name)
		if !strings.HasPrefix(text, prefix+" ") && !strings.HasPrefix(text, prefix+".") &&
			!strings.HasPrefix(text, prefix+",") && !strings.HasPrefix(text, prefix+":") {
			pass.Reportf(f.Package, "package comment for %s should start with %q (godoc keys its package index on that prefix)",
				f.Name.Name, prefix)
		}
	}
	if words := len(strings.Fields(text)); words < docCheckMinWords {
		pass.Reportf(f.Package, "package comment for %s is a stub (%d words, want at least %d): say what the package models and how it is used",
			f.Name.Name, words, docCheckMinWords)
	}
}

// docPrefix is the conventional first phrase of a package comment:
// "Package <name>" for libraries, "Command <name>" for main packages,
// where <name> is the command directory rather than "main".
func docPrefix(pkgName string) string {
	if pkgName == "main" {
		return "Command"
	}
	return "Package " + pkgName
}
