package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var NilGuardAnalyzer = &Analyzer{
	Name: "nilguard",
	Doc: "calls through *trace.Tracer / *fault.Injector values must be dominated " +
		"by a nil check; the disabled path stays a predictable branch, never a panic",
	Run: runNilGuard,
}

// hookType describes one observability hook type whose nil value means
// "disabled". Methods listed in nilSafe check their own receiver and
// need no caller-side guard.
type hookType struct {
	pkgSuffix string // import-path suffix, e.g. "internal/trace"
	name      string
	nilSafe   map[string]bool
}

var hookTypes = []hookType{
	{pkgSuffix: "internal/trace", name: "Tracer", nilSafe: map[string]bool{"Flush": true}},
	{pkgSuffix: "internal/fault", name: "Injector"},
}

func matchHookType(t types.Type) *hookType {
	ptr, ok := t.(*types.Pointer)
	if ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	path := named.Obj().Pkg().Path()
	for i := range hookTypes {
		h := &hookTypes[i]
		if named.Obj().Name() != h.name {
			continue
		}
		if path == h.pkgSuffix || strings.HasSuffix(path, "/"+h.pkgSuffix) {
			return h
		}
	}
	return nil
}

func runNilGuard(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedCalls(pass, fn)
		}
	}
	_ = info
}

// checkGuardedCalls verifies every hook call in fn. A call recv.M(...)
// is accepted when:
//
//   - M is declared nil-safe (checks its own receiver), or
//   - fn is itself a method on the hook type and recv is fn's receiver
//     (callers guard the entry, so the body is already-guarded), or
//   - the call is dominated by a nil check of recv: an enclosing
//     `if recv != nil` (call in then-branch), an enclosing
//     `if recv == nil` (call in else-branch), the short-circuit forms
//     `recv != nil && ...call...` / `recv == nil || ...call...`, or an
//     earlier `if recv == nil { return/continue/break/panic }` early-out
//     in any enclosing block, with no reassignment of recv in between.
//
// Receivers are compared by printed expression text; an assignment to
// the receiver expression between guard and call invalidates the guard.
func checkGuardedCalls(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Receiver name when fn is itself a hook method.
	selfRecv := ""
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if t := info.Types[fn.Recv.List[0].Type].Type; t != nil && matchHookType(t) != nil {
			if len(fn.Recv.List[0].Names) == 1 {
				selfRecv = fn.Recv.List[0].Names[0].Name
			}
		}
	}

	// Parent map for the dominance walk.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvType := info.Types[sel.X].Type
		if recvType == nil {
			return true
		}
		hook := matchHookType(recvType)
		if hook == nil {
			return true
		}
		if hook.nilSafe[sel.Sel.Name] {
			return true
		}
		recv := exprString(sel.X)
		if selfRecv != "" && (recv == selfRecv || strings.HasPrefix(recv, selfRecv+".")) {
			return true // already-guarded method body
		}
		if isGuarded(call, recv, parents) {
			return true
		}
		pass.Reportf(call.Pos(), "call to (%s).%s is not dominated by a nil check of %s; a disabled (nil) hook would panic here — guard with `if %s != nil` or document with //vbr:allow",
			recvType.String(), sel.Sel.Name, recv, recv)
		return true
	})
}

// isGuarded walks from the call up through its ancestors looking for a
// dominating nil check of recv (printed form).
func isGuarded(call ast.Node, recv string, parents map[ast.Node]ast.Node) bool {
	child := ast.Node(call)
	for n := parents[call]; n != nil; child, n = n, parents[n] {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// recv != nil && <call>   /   recv == nil || <call>
			if n.Y == child || containsNode(n.Y, child) {
				if n.Op == token.LAND && impliesNonNil(n.X, recv) {
					return true
				}
				if n.Op == token.LOR && impliesNil(n.X, recv) {
					return true
				}
			}
		case *ast.IfStmt:
			if containsNode(n.Body, child) && impliesNonNil(n.Cond, recv) {
				return true
			}
			if n.Else != nil && containsNode(n.Else, child) && impliesNil(n.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			// Early-out guard in a preceding statement of this block.
			if earlyOutBefore(n, child, recv) {
				return true
			}
		case *ast.CaseClause:
			// Clause bodies are statement lists too; treat like blocks.
			if earlyOutBefore(n, child, recv) {
				return true
			}
			// In a tagless switch, a case condition implying recv != nil
			// dominates its body: `switch { case recv != nil && ...: }`.
			// (Body only — comma-separated case exprs are OR'd, so one
			// condition cannot guard a sibling condition.)
			inBody := false
			for _, s := range n.Body {
				if s == child {
					inBody = true
				}
			}
			if sw, ok := parents[parents[n]].(*ast.SwitchStmt); ok && inBody && sw.Tag == nil &&
				len(n.List) == 1 && impliesNonNil(n.List[0], recv) {
				return true
			}
		case *ast.CommClause:
			if earlyOutBefore(n, child, recv) {
				return true
			}
		case *ast.FuncLit:
			// Keep walking: a closure defined after a guard in the
			// enclosing function is still dominated by it as long as
			// the receiver is not reassigned (checked by earlyOutBefore's
			// reassignment scan on the enclosing blocks).
		}
	}
	return false
}

// earlyOutBefore reports whether some statement of block preceding the
// one containing child is `if recv == nil { ...terminating... }`, with
// no intervening assignment to recv.
func earlyOutBefore(block ast.Node, child ast.Node, recv string) bool {
	var list []ast.Stmt
	switch b := block.(type) {
	case *ast.BlockStmt:
		list = b.List
	case *ast.CaseClause:
		list = b.Body
	case *ast.CommClause:
		list = b.Body
	default:
		return false
	}
	idx := -1
	for i, s := range list {
		if s == child || containsNode(s, child) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	guarded := false
	for i := 0; i < idx; i++ {
		s := list[i]
		if guarded && assignsTo(s, recv) {
			guarded = false
		}
		ifs, ok := s.(*ast.IfStmt)
		if !ok || ifs.Else != nil {
			continue
		}
		if impliesNil(ifs.Cond, recv) && terminates(ifs.Body) {
			guarded = true
		}
	}
	return guarded
}

// impliesNonNil reports whether cond being true implies recv != nil.
func impliesNonNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return impliesNonNil(c.X, recv)
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return impliesNonNil(c.X, recv) || impliesNonNil(c.Y, recv)
		}
		if c.Op == token.NEQ {
			return isNilCompare(c, recv)
		}
	}
	return false
}

// impliesNil reports whether cond being true implies recv == nil —
// equivalently, the branch taken when cond is FALSE has recv != nil.
func impliesNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return impliesNil(c.X, recv)
	case *ast.BinaryExpr:
		if c.Op == token.LOR {
			// (a == nil || b == nil): false means both non-nil.
			return impliesNil(c.X, recv) || impliesNil(c.Y, recv)
		}
		if c.Op == token.EQL {
			return isNilCompare(c, recv)
		}
	}
	return false
}

func isNilCompare(b *ast.BinaryExpr, recv string) bool {
	x, y := exprString(b.X), exprString(b.Y)
	return (x == recv && y == "nil") || (y == recv && x == "nil")
}

// terminates reports whether a block always transfers control away:
// its last statement is return, break, continue, goto, or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// assignsTo reports whether stmt (shallowly or in nested statements)
// assigns to the expression recv.
func assignsTo(stmt ast.Stmt, recv string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if exprString(lhs) == recv {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func containsNode(root, target ast.Node) bool {
	if root == nil {
		return false
	}
	return target.Pos() >= root.Pos() && target.End() <= root.End()
}
