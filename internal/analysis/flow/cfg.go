// Package flow is vbrlint's intra-procedural control-flow and
// dataflow engine: it lowers one function body into basic blocks with
// branch, loop, switch, and select edges (stdlib go/ast only — no
// x/tools), records defer registrations as ordinary transfer nodes so
// analyzers can model them path-sensitively, and runs analyzer-defined
// lattices to a fixpoint with a generic forward worklist solver. The
// flow-aware analyzers (lockorder, condguard, goleak, errflow) are
// built on this engine.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal straight-line run of AST nodes
// (statements, plus the condition/tag expressions that gate its
// outgoing edges) with no internal control transfer.
type Block struct {
	// Index is the block's creation order, stable for tests and
	// deterministic output.
	Index int
	// Nodes are the block's AST nodes in evaluation order. Condition
	// expressions (if/for conditions, switch tags, case expressions)
	// appear as bare ast.Expr entries.
	Nodes []ast.Node
	// Succs and Preds are the explicit control-flow edges. The
	// function's synthetic Exit block collects every return path.
	Succs []*Block
	Preds []*Block
}

// A Graph is one function body's control-flow graph. Entry is where
// execution starts; Exit is a synthetic block reached by falling off
// the end and by every return statement. Panicking calls terminate
// their block with no successor: a path that dies cannot violate an
// all-paths-to-return obligation.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // all blocks in creation order, including Exit
	// Defers lists every defer's call expression in registration
	// order. Conditionally registered defers also appear as DeferStmt
	// nodes inside their block, so path-sensitive analyses can track
	// exactly which registrations dominate which paths.
	Defers []*ast.CallExpr
}

// Terminating reports whether a call expression never returns. Build
// always treats the panic builtin as terminating; the hook adds
// type-informed cases (os.Exit, log.Fatal*, runtime.Goexit).
type Terminating func(*ast.CallExpr) bool

// Build lowers body into a Graph. terminating may be nil.
func Build(body *ast.BlockStmt, terminating Terminating) *Graph {
	g := &Graph{}
	b := &builder{g: g, terminating: terminating, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	b.resolveGotos()
	return g
}

// labelBlocks is the jump-target record for one label: the block the
// labeled statement starts in (goto target) and, once the labeled
// loop/switch/select is built, its break/continue targets.
type labelBlocks struct {
	start      *Block
	breakTo    *Block
	continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	g           *Graph
	cur         *Block
	terminating Terminating
	frames      []loopFrame
	labels      map[string]*labelBlocks
	gotos       []pendingGoto
	// pendingLabel is the label of a LabeledStmt whose wrapped
	// loop/switch/select has not been entered yet.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// deadEnd parks the builder on a fresh unreachable block after a
// statement that transfers control away (return, break, panic, ...).
func (b *builder) deadEnd() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct now being
// built, so `L: for ...` wires break L/continue L to this loop.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// Start a fresh block so goto has a well-defined target.
		start := b.newBlock()
		b.edge(b.cur, start)
		b.cur = start
		b.labels[s.Label.Name] = &labelBlocks{start: start}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.ForStmt:
		b.buildFor(s)
	case *ast.RangeStmt:
		b.buildRange(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildClauses(s.Body.List, b.takeLabel(), true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildClauses(s.Body.List, b.takeLabel(), false)
	case *ast.SelectStmt:
		b.buildSelect(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.deadEnd()
	case *ast.BranchStmt:
		b.buildBranch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.callTerminates(call) {
			b.deadEnd()
		}
	case *ast.EmptyStmt:
	default:
		// AssignStmt, DeclStmt, GoStmt, SendStmt, IncDecStmt, ...
		b.add(s)
	}
}

func (b *builder) callTerminates(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.terminating != nil && b.terminating(call)
}

func (b *builder) buildIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock()
	b.edge(thenEnd, join)
	if elseEnd != nil {
		b.edge(elseEnd, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *builder) buildFor(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}

	exit := b.newBlock()
	if s.Cond != nil {
		b.edge(head, exit) // condition false
	}
	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}
	if lb := b.labels[label]; lb != nil {
		lb.breakTo, lb.continueTo = exit, continueTo
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, continueTo: continueTo})

	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
	}
	b.edge(b.cur, head)

	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) buildRange(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s.X)
	head := b.newBlock()
	b.edge(b.cur, head)
	// The RangeStmt node carries the per-iteration key/value bindings.
	head.Nodes = append(head.Nodes, s)

	exit := b.newBlock()
	b.edge(head, exit) // range exhausted
	if lb := b.labels[label]; lb != nil {
		lb.breakTo, lb.continueTo = exit, head
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, continueTo: head})

	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)

	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

// buildClauses wires a (type) switch: every clause block hangs off the
// block holding the tag, fallthrough chains to the next clause's body,
// and a missing default adds the skip edge straight to the join.
func (b *builder) buildClauses(clauses []ast.Stmt, label string, allowFallthrough bool) {
	head := b.cur
	exit := b.newBlock()
	if lb := b.labels[label]; lb != nil {
		lb.breakTo = exit
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit})

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		body := cc.Body
		fallsThrough := false
		if allowFallthrough && len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body = body[:len(body)-1]
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, exit)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) buildSelect(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	exit := b.newBlock()
	if lb := b.labels[label]; lb != nil {
		lb.breakTo = exit
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit})
	// No clause-skipping edge: a select without a default blocks until
	// some clause fires, and `select {}` blocks forever (exit stays
	// unreachable, which is exactly what goleak wants to see).
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) buildBranch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if to := b.findBreak(labelOf(s)); to != nil {
			b.edge(b.cur, to)
		}
		b.deadEnd()
	case token.CONTINUE:
		if to := b.findContinue(labelOf(s)); to != nil {
			b.edge(b.cur, to)
		}
		b.deadEnd()
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: labelOf(s)})
		b.deadEnd()
	case token.FALLTHROUGH:
		// Reached only for a fallthrough that is not the clause's last
		// statement (illegal Go); ignore.
	}
}

func labelOf(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

func (b *builder) findBreak(label string) *Block {
	if label != "" {
		if lb := b.labels[label]; lb != nil {
			return lb.breakTo
		}
		return nil
	}
	if len(b.frames) == 0 {
		return nil
	}
	return b.frames[len(b.frames)-1].breakTo
}

func (b *builder) findContinue(label string) *Block {
	if label != "" {
		if lb := b.labels[label]; lb != nil {
			return lb.continueTo
		}
		return nil
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].continueTo != nil {
			return b.frames[i].continueTo
		}
	}
	return nil
}

// resolveGotos wires each goto to its label's start block. Forward
// gotos resolve here because every label was recorded during the walk;
// a goto to a label the parser accepted but the walk never saw (broken
// input) conservatively falls through to Exit.
func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if lb := b.labels[g.label]; lb != nil && lb.start != nil {
			b.edge(g.from, lb.start)
		} else {
			b.edge(g.from, b.g.Exit)
		}
	}
}

// ReachableFromEntry returns the set of blocks reachable from Entry —
// the liveness question goleak asks of a goroutine body ("can this
// function ever return?") is Exit's membership in this set.
func (g *Graph) ReachableFromEntry() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
