package flow

import "go/ast"

// An Analysis is one forward dataflow problem over a Graph. F is the
// analyzer's fact (lattice element). Facts must be treated as
// immutable: Transfer and Join return new values rather than mutating
// their arguments, so one fact can safely flow into several blocks.
// The lattice must have finite height (every analyzer here bounds its
// sets by the function's syntax), which with a monotone Transfer
// guarantees the worklist terminates.
type Analysis[F any] interface {
	// Entry is the boundary fact at function entry.
	Entry() F
	// Transfer applies one AST node's effect to the incoming fact.
	Transfer(b *Block, n ast.Node, f F) F
	// Join merges facts where control-flow paths meet.
	Join(a, b F) F
	// Equal reports lattice equality; the solver stops re-propagating
	// a block whose out-fact did not change.
	Equal(a, b F) bool
}

// A Result holds the fixpoint: the fact entering and leaving every
// reachable block. In[g.Exit] is the all-return-paths join — the fact
// "at function exit" that obligation-style analyzers check.
type Result[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Solve runs a forward worklist iteration to fixpoint. Unreachable
// blocks (dead code after return/panic) never receive facts and are
// absent from the result maps.
func Solve[F any](g *Graph, a Analysis[F]) *Result[F] {
	res := &Result[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	solved := map[*Block]bool{}
	queued := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		var in F
		have := false
		if blk == g.Entry {
			in = a.Entry()
			have = true
		}
		for _, p := range blk.Preds {
			if !solved[p] {
				continue
			}
			if !have {
				in = res.Out[p]
				have = true
			} else {
				in = a.Join(in, res.Out[p])
			}
		}
		if !have {
			// Every predecessor is still unsolved (and this is not the
			// entry): a later solve of some pred re-queues this block.
			continue
		}
		res.In[blk] = in

		out := in
		for _, n := range blk.Nodes {
			out = a.Transfer(blk, n, out)
		}
		if solved[blk] && a.Equal(res.Out[blk], out) {
			continue
		}
		solved[blk] = true
		res.Out[blk] = out
		for _, s := range blk.Succs {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// FactAt replays blk's transfers from its in-fact up to (but not
// including) the node satisfying stop — the fact holding immediately
// before that node executes. ok is false when blk was unreachable or
// no node matched.
func FactAt[F any](res *Result[F], a Analysis[F], blk *Block, stop func(ast.Node) bool) (f F, ok bool) {
	in, reachable := res.In[blk]
	if !reachable {
		return f, false
	}
	cur := in
	for _, n := range blk.Nodes {
		if stop(n) {
			return cur, true
		}
		cur = a.Transfer(blk, n, cur)
	}
	return f, false
}
