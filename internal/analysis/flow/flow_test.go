package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse %q: %v", body, err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// exitNow stands in for os.Exit in these type-free tests: the
// Terminating hook matches it by name.
func testTerminating(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "exitNow"
}

// TestBuildShapes is the table-driven CFG-construction test: for each
// statement shape, the properties an analyzer depends on — can the
// function return, how many blocks the lowering produces, how many
// defers are registered.
func TestBuildShapes(t *testing.T) {
	cases := []struct {
		name          string
		body          string
		exitReachable bool
		defers        int
	}{
		{"straight line", "x := 1\n_ = x", true, 0},
		{"if without else", "if c() {\n\twork()\n}\nwork()", true, 0},
		{"if else join", "if c() {\n\twork()\n} else {\n\trest()\n}\nwork()", true, 0},
		{"if both branches return", "if c() {\n\treturn\n} else {\n\treturn\n}", true, 0},
		{"infinite for", "for {\n\twork()\n}", false, 0},
		{"for with condition", "for c() {\n\twork()\n}", true, 0},
		{"infinite for with break", "for {\n\tif c() {\n\t\tbreak\n\t}\n}", true, 0},
		{"labeled break from inner loop", "L:\nfor {\n\tfor {\n\t\tbreak L\n\t}\n}", true, 0},
		{"continue only", "for c() {\n\tcontinue\n}", true, 0},
		{"range loop", "for i := range xs() {\n\t_ = i\n}", true, 0},
		{"empty select", "select {}", false, 0},
		{"select with arm", "select {\ncase <-ch():\n\twork()\n}", true, 0},
		{"switch no default", "switch c() {\ncase true:\n\twork()\n}", true, 0},
		{"switch all cases return with default", "switch {\ncase c():\n\treturn\ndefault:\n\treturn\n}", true, 0},
		{"fallthrough chain", "switch {\ncase c():\n\twork()\n\tfallthrough\ndefault:\n\trest()\n}", true, 0},
		{"type switch", "switch v().(type) {\ncase int:\n\twork()\n}", true, 0},
		{"plain defer", "defer work()\nrest()", true, 1},
		{"conditional defer", "if c() {\n\tdefer work()\n}\ndefer rest()", true, 2},
		{"panic terminates", "panic(1)", false, 0},
		{"terminating hook", "exitNow()", false, 0},
		{"panic on one branch", "if c() {\n\tpanic(1)\n}\nwork()", true, 0},
		{"backward goto spin", "L:\nwork()\ngoto L", false, 0},
		{"forward goto", "goto L\nwork()\nL:\nrest()", true, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := Build(parseBody(t, c.body), testTerminating)
			if got := g.ReachableFromEntry()[g.Exit]; got != c.exitReachable {
				t.Errorf("exit reachable = %v, want %v", got, c.exitReachable)
			}
			if len(g.Defers) != c.defers {
				t.Errorf("defers = %d, want %d", len(g.Defers), c.defers)
			}
		})
	}
}

// TestBuildEdges pins the precise edge structure of an if/else: one
// condition block branching to two bodies that re-join.
func TestBuildEdges(t *testing.T) {
	g := Build(parseBody(t, "if c() {\n\twork()\n} else {\n\trest()\n}\nwork()"), nil)
	var cond *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "c" {
					cond = b
				}
			}
		}
	}
	if cond == nil {
		t.Fatal("condition block not found")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (then, else)", len(cond.Succs))
	}
	join1, join2 := cond.Succs[0].Succs, cond.Succs[1].Succs
	if len(join1) != 1 || len(join2) != 1 || join1[0] != join2[0] {
		t.Errorf("then/else do not re-join in a single block: %v vs %v", join1, join2)
	}
	for _, p := range join1[0].Preds {
		if p == cond {
			t.Errorf("condition block must not be a direct predecessor of the join when an else exists")
		}
	}
}

// writesAnalysis is a tiny solver client independent of any real
// analyzer: the fact is the set of variable names assigned so far
// (comma-joined, sorted — a canonical string keeps Equal trivial).
type writesAnalysis struct{}

func (writesAnalysis) Entry() string { return "" }

func (writesAnalysis) Transfer(_ *Block, n ast.Node, f string) string {
	asg, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	set := map[string]bool{}
	for _, name := range strings.Split(f, ",") {
		if name != "" {
			set[name] = true
		}
	}
	for _, lhs := range asg.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func (writesAnalysis) Join(x, y string) string { return joinSets(x, y) }

func joinSets(x, y string) string {
	if x == "" {
		return y
	}
	if y == "" {
		return x
	}
	set := map[string]bool{}
	for _, s := range strings.Split(x+","+y, ",") {
		set[s] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func (writesAnalysis) Equal(x, y string) bool { return x == y }

// TestSolveConvergence runs the writes analysis over a loop with a
// back edge: the fixpoint at the loop head must include writes from
// inside the loop body (i.e. the solver iterated the cycle), and the
// exit fact must be the union over all paths.
func TestSolveConvergence(t *testing.T) {
	body := parseBody(t, `
a := 1
for c() {
	b := 2
	if d() {
		e := 3
		_ = e
	}
	_ = b
}
f := 4
_ = f
_ = a`)
	g := Build(body, nil)
	res := Solve[string](g, writesAnalysis{})
	exit, ok := res.In[g.Exit]
	if !ok {
		t.Fatal("exit unreachable in a terminating function")
	}
	for _, name := range []string{"a", "b", "e", "f", "_"} {
		if !strings.Contains(","+exit+",", ","+name+",") {
			t.Errorf("exit fact %q missing write of %q", exit, name)
		}
	}
	// The loop-head fact must include body writes via the back edge.
	var head *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "c" {
					head = b
				}
			}
		}
	}
	if head == nil {
		t.Fatal("loop head not found")
	}
	if in := res.In[head]; !strings.Contains(","+in+",", ",b,") {
		t.Errorf("loop head in-fact %q lacks body write %q: back edge not iterated", in, "b")
	}
}

// TestSolveUnreachable: blocks dead code cannot reach get no facts.
func TestSolveUnreachable(t *testing.T) {
	g := Build(parseBody(t, "return\nx := 1\n_ = x"), nil)
	res := Solve[string](g, writesAnalysis{})
	for _, b := range g.Blocks {
		if b == g.Entry || b == g.Exit {
			continue
		}
		if _, ok := res.In[b]; ok && !g.ReachableFromEntry()[b] {
			t.Errorf("unreachable block %d received a fact", b.Index)
		}
	}
	if exit := res.In[g.Exit]; exit != "" {
		t.Errorf("exit fact = %q, want empty (the only return precedes every write)", exit)
	}
}

// TestFactAt replays transfers inside one block: the fact immediately
// before a chosen statement reflects exactly the writes above it.
func TestFactAt(t *testing.T) {
	body := parseBody(t, "a := 1\nb := 2\nsink()\nc := 3\n_, _, _ = a, b, c")
	g := Build(body, nil)
	res := Solve[string](g, writesAnalysis{})
	var blk *Block
	var stopNode ast.Node
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
						blk, stopNode = b, n
					}
				}
			}
		}
	}
	if blk == nil {
		t.Fatal("sink statement not found")
	}
	f, ok := FactAt[string](res, writesAnalysis{}, blk, func(n ast.Node) bool { return n == stopNode })
	if !ok {
		t.Fatal("FactAt: block unreachable or node missing")
	}
	if f != "a,b" {
		t.Errorf("fact before sink() = %q, want %q (a and b written, c not yet)", f, "a,b")
	}
}
