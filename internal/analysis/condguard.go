package analysis

import (
	"go/ast"
	"go/types"
)

var CondGuardAnalyzer = &Analyzer{
	Name: "condguard",
	Doc: "sync.Cond protocol: Wait only inside a for loop (the predicate must be " +
		"re-checked after every wakeup) and only while holding the condition's " +
		"mutex; Signal/Broadcast only while holding it",
	Run: runCondGuard,
}

var condMethods = map[string]bool{"Wait": true, "Signal": true, "Broadcast": true}

// condOpOf recognizes a sync.Cond method call and returns the
// receiver's printed expression plus the method name.
func condOpOf(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || !condMethods[fn.Name()] {
		return "", "", false
	}
	r := fn.Type().(*types.Signature).Recv()
	if r == nil {
		return "", "", false
	}
	rt := r.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Name() != "Cond" {
		return "", "", false
	}
	return exprString(sel.X), fn.Name(), true
}

// condMutexes maps each condition variable (by base name) to the base
// name of the mutex it was built over, scanning for
// sync.NewCond(&<mutex>) in assignments and composite initializers
// anywhere in the package.
func condMutexes(pkg *Package) map[string]string {
	assoc := map[string]string{}
	record := func(condExpr ast.Expr, call ast.Expr) {
		ce, ok := call.(*ast.CallExpr)
		if !ok || len(ce.Args) != 1 {
			return
		}
		sel, ok := ce.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "NewCond" {
			return
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		arg := ce.Args[0]
		if u, ok := arg.(*ast.UnaryExpr); ok {
			arg = u.X
		}
		assoc[lastComponent(exprString(condExpr))] = lastComponent(exprString(arg))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return assoc
}

func runCondGuard(pass *Pass) {
	info := pass.Pkg.Info
	assoc := condMutexes(pass.Pkg)

	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			if !hasCondOps(info, body) {
				return
			}
			checkCondFunc(pass, assoc, name, body)
		})
	}
}

func hasCondOps(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := condOpOf(info, call); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// checkCondFunc verifies every Cond call in one function body: the
// lock dataflow supplies "which mutexes are definitely held here", and
// an ancestor walk supplies "is this Wait inside a loop".
func checkCondFunc(pass *Pass, assoc map[string]string, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g, res, a := solveLocks(info, body)

	// Map each cond call to the CFG node containing it, then replay
	// that block's transfers to recover the lock state at the call.
	for _, blk := range g.Blocks {
		f, reachable := res.In[blk]
		if !reachable {
			continue
		}
		for _, n := range blk.Nodes {
			inspectOwnNode(n, func(m ast.Node) {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return
				}
				recv, method, ok := condOpOf(info, call)
				if !ok {
					return
				}
				condBase := lastComponent(recv)
				mutexBase, known := assoc[condBase]
				held := heldBases(f)
				switch {
				case known && !held[mutexBase]:
					pass.Reportf(call.Pos(), "%s.%s in %s without definitely holding %s (the mutex %s was created over); calling it unlocked is a data race on the predicate",
						recv, method, name, mutexBase, condBase)
				case !known && len(held) == 0:
					pass.Reportf(call.Pos(), "%s.%s in %s without holding any mutex; sync.Cond methods require the associated mutex held",
						recv, method, name)
				}
				if method == "Wait" && !insideLoop(body, call) {
					pass.Reportf(call.Pos(), "%s.Wait in %s is not inside a for loop; wakeups can be spurious, so the predicate must be re-checked in a loop",
						recv, name)
				}
			})
			f = a.Transfer(blk, n, f)
		}
	}
}

// inspectOwnNode visits m's subtree, skipping nested function
// literals (their calls belong to a different function activation).
func inspectOwnNode(n ast.Node, visit func(ast.Node)) {
	var skipBody ast.Node // a RangeStmt head node carries its body blocks separately
	if r, ok := n.(*ast.RangeStmt); ok {
		skipBody = r.Body
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == skipBody {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}

// heldBases projects the must-held lock tokens down to their base
// names (the names //vbr:lockorder and NewCond associations use).
func heldBases(f lockFact) map[string]bool {
	held := map[string]bool{}
	for tok := range f.must {
		if len(tok) > 3 && tok[len(tok)-3:] == "[r]" {
			tok = tok[:len(tok)-3]
		}
		held[lastComponent(tok)] = true
	}
	return held
}

// insideLoop reports whether the call has a for/range ancestor within
// the analyzed body (not crossing a function-literal boundary).
func insideLoop(body *ast.BlockStmt, call *ast.CallExpr) bool {
	inLoop := false
	var walk func(n ast.Node, loop bool) bool
	walk = func(n ast.Node, loop bool) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found || m == nil {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != n {
					return false
				}
			case *ast.ForStmt:
				if m != n {
					found = walk(m, true)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					found = walk(m, true)
					return false
				}
			case *ast.CallExpr:
				if m == call {
					inLoop = loop
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	walk(body, false)
	return inLoop
}
