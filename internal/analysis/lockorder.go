package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vbmo/internal/analysis/flow"
)

var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "sync.Mutex/RWMutex discipline in the concurrent packages: every Lock " +
		"reaches an Unlock (or defer Unlock) on all paths to return, no relock of a " +
		"held mutex (self-deadlock), and nested acquisition follows the package's " +
		"declared //vbr:lockorder total order",
	Run: runLockOrder,
}

// lockPackages are the packages with real concurrency: the farm
// service (server, pool, leases, workers) and the shared
// parallel-sweep helpers. The determinism analyzer keeps goroutines
// out of the simulator core, so mutex discipline is a farm/par
// obligation.
var lockPackages = []string{"internal/farm", "internal/par"}

// pathInTree reports whether pkgPath is one of the roots or below one
// (suffix-based, like pathMatches, so fixture module paths match too).
func pathInTree(pkgPath string, roots []string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasSuffix(pkgPath, "/"+r) ||
			strings.Contains(pkgPath, "/"+r+"/") {
			return true
		}
	}
	return false
}

const lockOrderPrefix = "//vbr:lockorder"

// parseLockOrder reads the package's declared acquisition order:
//
//	//vbr:lockorder mu leaseMu hbMu
//
// names are mutex field/variable base names in the order they may be
// acquired (a lock may only be taken while holding locks that appear
// strictly earlier). Returns nil when the package declares no order.
func parseLockOrder(pkg *Package) map[string]int {
	var rank map[string]int
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, lockOrderPrefix)
				if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
					continue
				}
				if rank == nil {
					rank = map[string]int{}
				}
				for _, name := range strings.Fields(rest) {
					if _, seen := rank[name]; !seen {
						rank[name] = len(rank)
					}
				}
			}
		}
	}
	return rank
}

// mutexOp is one sync.Mutex/sync.RWMutex method call. tok identifies
// the lock: the receiver's printed expression, with "[r]" appended for
// the read side of an RWMutex (the two sides deadlock differently).
type mutexOp struct {
	tok  string
	base string // last selector component, the //vbr:lockorder name
	name string // Lock, Unlock, RLock, RUnlock
	pos  token.Pos
}

var mutexMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
}

// mutexOpOf recognizes a mutex method call, including calls through an
// embedded mutex (the method object still belongs to package sync).
func mutexOpOf(info *types.Info, call *ast.CallExpr) *mutexOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || !mutexMethods[fn.Name()] {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil
	}
	expr := exprString(sel.X)
	op := &mutexOp{tok: expr, base: lastComponent(expr), name: fn.Name(), pos: call.Pos()}
	if fn.Name() == "RLock" || fn.Name() == "RUnlock" {
		op.tok += "[r]"
	}
	return op
}

func lastComponent(expr string) string {
	if i := strings.LastIndexByte(expr, '.'); i >= 0 {
		return expr[i+1:]
	}
	return expr
}

// lockFact is the lock-state lattice element. For each lock token it
// tracks the acquisition sites that may be held here with no release
// scheduled yet (held), the sites whose release a defer has already
// scheduled (cov — "covered"), and whether the token is definitely
// held on every path (must). held and cov join by union (a leak on
// any path is a leak) and must by intersection. Keeping coverage
// per-acquisition rather than as a path-insensitive flag matters:
// a function with an early return before mu.Lock() must not let that
// lock-free path launder the locked path's missing release — and
// conversely a defer mu.Unlock() must not count for a path that
// never reaches it. Facts are immutable; transfers copy on write.
type lockFact struct {
	held map[string]map[token.Pos]bool
	cov  map[string]map[token.Pos]bool
	must map[string]bool
}

func clonePosSets(m map[string]map[token.Pos]bool) map[string]map[token.Pos]bool {
	out := make(map[string]map[token.Pos]bool, len(m))
	for k, v := range m {
		set := make(map[token.Pos]bool, len(v))
		for p := range v {
			set[p] = true
		}
		out[k] = set
	}
	return out
}

func (f lockFact) clone() lockFact {
	g := lockFact{
		held: clonePosSets(f.held),
		cov:  clonePosSets(f.cov),
		must: make(map[string]bool, len(f.must)),
	}
	for k := range f.must {
		g.must[k] = true
	}
	return g
}

// mayHeld reports whether any acquisition of tok may be live here,
// scheduled for release or not.
func (f lockFact) mayHeld(tok string) bool {
	return len(f.held[tok]) > 0 || len(f.cov[tok]) > 0
}

// lockAnalysis is the flow.Analysis over lockFact. It carries no
// reporting: solving runs transfers repeatedly until fixpoint, so
// diagnostics are emitted by a separate single replay pass.
type lockAnalysis struct {
	info *types.Info
}

func (lockAnalysis) Entry() lockFact {
	return lockFact{
		held: map[string]map[token.Pos]bool{},
		cov:  map[string]map[token.Pos]bool{},
		must: map[string]bool{},
	}
}

// mutexOpsIn lists the mutex calls inside one CFG node in source
// order, skipping nested function literals (a closure's body runs on
// its own schedule and is analyzed as its own function).
func mutexOpsIn(info *types.Info, n ast.Node) []*mutexOp {
	var ops []*mutexOp
	skipRoot := n
	var skipBody ast.Node // a RangeStmt head node carries its body blocks separately
	if r, ok := n.(*ast.RangeStmt); ok {
		skipBody = r.Body
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == skipBody {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != skipRoot {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if op := mutexOpOf(info, call); op != nil {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

func (a lockAnalysis) Transfer(_ *flow.Block, n ast.Node, f lockFact) lockFact {
	deferred := false
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = d.Call
	}
	ops := mutexOpsIn(a.info, n)
	if len(ops) == 0 {
		return f
	}
	g := f.clone()
	for _, op := range ops {
		switch op.name {
		case "Lock", "RLock":
			if deferred {
				continue // defer mu.Lock() — pathological; not modeled
			}
			if g.held[op.tok] == nil {
				g.held[op.tok] = map[token.Pos]bool{}
			}
			g.held[op.tok][op.pos] = true
			g.must[op.tok] = true
		case "Unlock", "RUnlock":
			if deferred {
				// The release is scheduled for return: every acquisition
				// live on this path is covered from here on (the token
				// stays must-held until the function actually returns).
				if len(g.held[op.tok]) > 0 {
					if g.cov[op.tok] == nil {
						g.cov[op.tok] = map[token.Pos]bool{}
					}
					for p := range g.held[op.tok] {
						g.cov[op.tok][p] = true
					}
					delete(g.held, op.tok)
				}
				continue
			}
			delete(g.held, op.tok)
			delete(g.cov, op.tok)
			delete(g.must, op.tok)
		}
	}
	return g
}

func unionPosSets(a, b map[string]map[token.Pos]bool) map[string]map[token.Pos]bool {
	j := clonePosSets(a)
	for tok, set := range b {
		m := j[tok]
		if m == nil {
			m = map[token.Pos]bool{}
			j[tok] = m
		}
		for p := range set {
			m[p] = true
		}
	}
	return j
}

func equalPosSets(a, b map[string]map[token.Pos]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for tok, set := range a {
		other, ok := b[tok]
		if !ok || len(other) != len(set) {
			return false
		}
		for p := range set {
			if !other[p] {
				return false
			}
		}
	}
	return true
}

func (lockAnalysis) Join(a, b lockFact) lockFact {
	j := lockFact{
		held: unionPosSets(a.held, b.held),
		cov:  unionPosSets(a.cov, b.cov),
		must: map[string]bool{},
	}
	for tok := range a.must {
		if b.must[tok] {
			j.must[tok] = true
		}
	}
	return j
}

func (lockAnalysis) Equal(a, b lockFact) bool {
	if len(a.must) != len(b.must) {
		return false
	}
	for tok := range a.must {
		if !b.must[tok] {
			return false
		}
	}
	return equalPosSets(a.held, b.held) && equalPosSets(a.cov, b.cov)
}

// terminatingFor recognizes the calls that never return, so the CFG
// does not route impossible fall-through paths (and a panicking path
// is not asked to release its locks — the process is gone).
func terminatingFor(info *types.Info) flow.Terminating {
	return func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return obj.Name() == "Exit"
		case "runtime":
			return obj.Name() == "Goexit"
		case "log":
			return strings.HasPrefix(obj.Name(), "Fatal") || strings.HasPrefix(obj.Name(), "Panic")
		}
		return false
	}
}

// funcBodies yields every analyzable function body in the file:
// declarations first, then each function literal as its own unit (a
// closure's lock state starts empty — it runs on its own schedule).
func funcBodies(file *ast.File, visit func(name string, body *ast.BlockStmt)) {
	var walk func(name string, body *ast.BlockStmt)
	walk = func(name string, body *ast.BlockStmt) {
		visit(name, body)
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				walk(name+" (func literal)", lit.Body)
				return false
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			walk(fn.Name.Name, fn.Body)
		}
	}
}

// solveLocks builds the CFG for body and runs the lock dataflow.
func solveLocks(info *types.Info, body *ast.BlockStmt) (*flow.Graph, *flow.Result[lockFact], lockAnalysis) {
	a := lockAnalysis{info: info}
	g := flow.Build(body, terminatingFor(info))
	return g, flow.Solve[lockFact](g, a), a
}

// hasMutexOps is the cheap pre-scan that lets clean functions skip CFG
// construction entirely.
func hasMutexOps(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && mutexOpOf(info, call) != nil {
			found = true
		}
		return true
	})
	return found
}

func runLockOrder(pass *Pass) {
	if !pathInTree(pass.Pkg.Path, lockPackages) {
		return
	}
	info := pass.Pkg.Info
	rank := parseLockOrder(pass.Pkg)
	missingOrderReported := rank != nil // only one missing-directive report per package

	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			if !hasMutexOps(info, body) {
				return
			}
			if !missingOrderReported {
				missingOrderReported = true
				pass.Reportf(body.Pos(), "package acquires mutexes but declares no acquisition order; add a \"//vbr:lockorder <name>...\" directive listing its locks in acquisition order")
			}
			checkLockFunc(pass, rank, name, body)
		})
	}
}

// checkLockFunc solves the lock dataflow for one function, then
// replays each reachable block exactly once to emit diagnostics (the
// solver may run a transfer many times on its way to fixpoint, so
// reporting happens only in this deterministic second pass).
func checkLockFunc(pass *Pass, rank map[string]int, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g, res, a := solveLocks(info, body)

	reported := map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		f, reachable := res.In[blk]
		if !reachable {
			continue
		}
		for _, n := range blk.Nodes {
			deferred := false
			node := n
			if d, ok := node.(*ast.DeferStmt); ok {
				deferred = true
				node = d.Call
			}
			for _, op := range mutexOpsIn(info, node) {
				switch op.name {
				case "Lock", "RLock":
					if deferred {
						continue
					}
					checkAcquire(pass, rank, name, f, op, reported)
				case "Unlock", "RUnlock":
					if deferred {
						continue
					}
					if !f.mayHeld(op.tok) && !reported[op.pos] {
						reported[op.pos] = true
						pass.Reportf(op.pos, "%s.%s in %s, but no path through this function holds %s here (double unlock, or a lock owned by the caller — document with //vbr:allow)",
							op.tok, op.name, name, op.tok)
					}
				}
			}
			f = a.Transfer(blk, n, f)
		}
	}

	// All-paths release: an acquisition that reaches exit on some path
	// still "held" (never unlocked, and no defer covering it on that
	// path) leaks. Covered acquisitions are fine — their defer fires at
	// the return this fact describes.
	exit, reachable := res.In[g.Exit]
	if !reachable {
		return // every path panics or never returns
	}
	toks := make([]string, 0, len(exit.held))
	for tok := range exit.held {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		positions := make([]token.Pos, 0, len(exit.held[tok]))
		for p := range exit.held[tok] {
			positions = append(positions, p)
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		for _, p := range positions {
			if reported[p] {
				continue
			}
			reported[p] = true
			pass.Reportf(p, "%s locked in %s may still be held at return on some path; release it on every path or defer the unlock", tok, name)
		}
	}
}

// checkAcquire flags a relock of a held mutex (guaranteed
// self-deadlock: sync mutexes are not reentrant), a write/read
// cross-acquisition of the same RWMutex, and a nested acquisition that
// contradicts the declared //vbr:lockorder.
func checkAcquire(pass *Pass, rank map[string]int, name string, f lockFact, op *mutexOp, reported map[token.Pos]bool) {
	if reported[op.pos] {
		return
	}
	if f.must[op.tok] {
		reported[op.pos] = true
		pass.Reportf(op.pos, "%s.%s in %s while %s is already held: guaranteed self-deadlock (sync mutexes are not reentrant)",
			op.tok, op.name, name, op.tok)
		return
	}
	// Write lock while the read side is held (or vice versa) on the
	// same RWMutex is the same self-deadlock in different clothes.
	other := op.tok + "[r]"
	if strings.HasSuffix(op.tok, "[r]") {
		other = strings.TrimSuffix(op.tok, "[r]")
	}
	if f.must[other] {
		reported[op.pos] = true
		pass.Reportf(op.pos, "%s.%s in %s while %s is held: an RWMutex cannot be acquired on both sides by one goroutine (self-deadlock)",
			op.tok, op.name, name, other)
		return
	}
	if rank == nil {
		return
	}
	newRank, inOrder := rank[op.base]
	heldSet := map[string]bool{}
	for tok := range f.held {
		heldSet[tok] = true
	}
	for tok := range f.cov {
		heldSet[tok] = true
	}
	heldToks := make([]string, 0, len(heldSet))
	for tok := range heldSet {
		heldToks = append(heldToks, tok)
	}
	sort.Strings(heldToks)
	for _, held := range heldToks {
		if held == op.tok || held == other {
			continue
		}
		heldBase := lastComponent(strings.TrimSuffix(held, "[r]"))
		heldRank, heldInOrder := rank[heldBase]
		switch {
		case !inOrder:
			reported[op.pos] = true
			pass.Reportf(op.pos, "%s acquired in %s while holding %s, but %q is not in the package's //vbr:lockorder; add it to the declared order",
				op.tok, name, held, op.base)
			return
		case heldInOrder && newRank <= heldRank:
			reported[op.pos] = true
			pass.Reportf(op.pos, "lock order violation in %s: %s (rank %d) acquired while holding %s (rank %d); the declared //vbr:lockorder requires the opposite nesting",
				name, op.tok, newRank, held, heldRank)
			return
		}
	}
}
