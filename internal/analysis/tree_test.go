package analysis

import (
	"path/filepath"
	"testing"
)

// TestShippedTreeClean runs the full suite over the real module: the
// shipped tree must stay finding-free (deliberate exceptions carry
// //vbr:allow directives, and unused directives are findings too).
// This is the same gate CI applies via `go run ./cmd/vbrlint ./...`.
func TestShippedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("shipped tree not lint-clean: %s", d)
	}
}
