package analysis

import (
	"path/filepath"
	"testing"
)

// TestShippedTreeClean runs the full suite over the real module: the
// shipped tree must stay finding-free (deliberate exceptions carry
// //vbr:allow directives, and unused directives are findings too).
// This is the same gate CI applies via `go run ./cmd/vbrlint ./...`.
// The run must cover all nine analyzers — a suite that silently lost
// a registration would pass vacuously, so the roster is pinned here.
func TestShippedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	wantSuite := []string{
		"determinism", "hotalloc", "nilguard", "exitcode", "doccheck",
		"lockorder", "condguard", "goleak", "errflow",
	}
	suite := Analyzers()
	if len(suite) != len(wantSuite) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(wantSuite))
	}
	for i, name := range wantSuite {
		if suite[i].Name != name {
			t.Fatalf("suite[%d] = %s, want %s", i, suite[i].Name, name)
		}
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("shipped tree not lint-clean: %s", d)
	}
}
