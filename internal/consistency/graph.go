package consistency

import (
	"fmt"
	"sort"
)

// OpKind distinguishes loads from stores.
type OpKind int

const (
	// OpLoad is a committed load.
	OpLoad OpKind = iota
	// OpStore is a committed store.
	OpStore
)

// Op is one committed memory operation.
type Op struct {
	// Proc is the committing processor.
	Proc int
	// Index is the operation's program (commit) order within Proc.
	Index int
	// Kind distinguishes loads from stores.
	Kind OpKind
	// Addr is the word-aligned address accessed.
	Addr uint64
	// Value is the value read (loads) or written (stores).
	Value uint64
	// Self identifies this op when it is a store.
	Self Writer
	// ReadsFrom identifies the store a load observed (InitialValue for
	// background memory).
	ReadsFrom Writer
}

// Graph is the constraint graph: one node per operation, directed edges
// for program order, RAW (store → its readers), WAW (store version
// order), and WAR (reader → next version).
//
// The dependence edges are *value-aware*: a load that read value x is
// constrained only by version transitions that change the value. A run
// of stores all writing x (silent stores — Lepak & Lipasti's store
// value locality) leaves the load free to order anywhere within the
// run. This makes the checker verify value sequential consistency,
// which is exactly the guarantee value-based replay provides: the paper
// §2.1 observes that address-identity-based orderings are conservative
// precisely because of silent stores and false sharing.
type Graph struct {
	ops   []Op
	adj   [][]int32
	nodes map[Writer]int32 // store writer -> node
	// EdgeCount is the total number of edges.
	EdgeCount int
}

// EdgeKind labels a constraint-graph edge with the dependence order it
// encodes (used by the edge-insertion trace).
type EdgeKind int

const (
	// EdgePO is a program-order edge.
	EdgePO EdgeKind = iota
	// EdgeRAW is a reads-from edge (value transition → load).
	EdgeRAW
	// EdgeWAW is a store version-order edge.
	EdgeWAW
	// EdgeWAR is a load → next value transition edge.
	EdgeWAR
)

// Build constructs the constraint graph from per-processor committed
// operation streams, the per-word store version chains (coherence
// order, with values), and the background content function for
// never-written words.
func Build(procs [][]Op, chains map[uint64][]Versioned, background func(addr uint64) uint64) *Graph {
	return BuildWith(procs, chains, background, nil)
}

// BuildWith is Build with an edge-insertion observer: onEdge (when
// non-nil) is invoked once per edge with its endpoints (node indices
// into the flattened operation list, resolvable via At) and dependence
// order — the evidence stream that makes a cycle verdict auditable.
func BuildWith(procs [][]Op, chains map[uint64][]Versioned, background func(addr uint64) uint64, onEdge func(from, to int32, kind EdgeKind)) *Graph {
	g := &Graph{nodes: make(map[Writer]int32)}
	for _, stream := range procs {
		g.ops = append(g.ops, stream...)
	}
	g.adj = make([][]int32, len(g.ops))
	for i, op := range g.ops {
		if op.Kind == OpStore {
			g.nodes[op.Self] = int32(i)
		}
	}
	add := func(from, to int32, kind EdgeKind) {
		if from == to {
			return
		}
		g.adj[from] = append(g.adj[from], to)
		g.EdgeCount++
		if onEdge != nil {
			onEdge(from, to, kind)
		}
	}
	// Program order edges.
	base := 0
	for _, stream := range procs {
		for i := 1; i < len(stream); i++ {
			add(int32(base+i-1), int32(base+i), EdgePO)
		}
		base += len(stream)
	}

	// Group readers by (addr, writer) for the per-location passes.
	type key struct {
		addr uint64
		w    Writer
	}
	readers := make(map[key][]int32)
	for i, op := range g.ops {
		if op.Kind == OpLoad {
			readers[key{op.Addr, op.ReadsFrom}] = append(readers[key{op.Addr, op.ReadsFrom}], int32(i))
		}
	}

	// Iterate the version chains in ascending address order: edge
	// insertion order decides both the traced KGraphEdge stream and
	// which node FindCycle happens to report, so map order here would
	// leak into the fixed-seed reference outputs.
	addrs := make([]uint64, 0, len(chains))
	for addr := range chains {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		chain := chains[addr]
		// Position of each writer in the chain.
		pos := make(map[Writer]int, len(chain))
		for i, v := range chain {
			pos[v.W] = i
		}
		bg := uint64(0)
		if background != nil {
			bg = background(addr)
		}

		// WAW: the coherence (commit) order of stores is real machine
		// order, so it is kept strict.
		prev := int32(-1)
		prevValid := false
		for _, v := range chain {
			node, ok := g.nodes[v.W]
			if !ok {
				// Writer outside the recorded streams (e.g. DMA).
				prevValid = false
				continue
			}
			if prevValid {
				add(prev, node, EdgeWAW)
			}
			prev, prevValid = node, true
		}

		// RAW and WAR, value-aware. For a load of value x attributed to
		// version k (k = -1 for the initial value):
		//   - it must follow the version transition that established x:
		//     the first store of the maximal run of x-valued versions
		//     containing k (no edge if the run extends to the initial
		//     background value);
		//   - it must precede the first later version whose value
		//     differs from x.
		attach := func(loads []int32, k int) {
			for _, ld := range loads {
				x := g.ops[ld].Value
				// Scan left to find the run start.
				e := k
				for e >= 0 && chain[e].Value == x {
					e--
				}
				runStart := e + 1
				if runStart <= k {
					if !(runStart == 0 && bg == x) {
						if n, ok := g.nodes[chain[runStart].W]; ok {
							add(n, ld, EdgeRAW) // value transition → load
						}
					}
				}
				// Scan right for the first differing version.
				j := k + 1
				for j < len(chain) && chain[j].Value == x {
					j++
				}
				if j < len(chain) {
					if n, ok := g.nodes[chain[j].W]; ok {
						add(ld, n, EdgeWAR) // load → next value transition
					}
				}
			}
		}
		attach(readers[key{addr, InitialValue}], -1)
		// Attach in chain order, not pos-map order; the pos check keeps
		// the duplicate-writer semantics (last occurrence wins).
		for k, v := range chain {
			if pos[v.W] == k {
				attach(readers[key{addr, v.W}], k)
			}
		}
	}
	return g
}

// FindCycle reports whether the graph has a cycle, returning one node
// on it for diagnostics.
func (g *Graph) FindCycle() (Op, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.ops))
	type frame struct {
		node int32
		next int
	}
	for start := range g.ops {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: int32(start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				to := g.adj[f.node][f.next]
				f.next++
				switch color[to] {
				case gray:
					return g.ops[to], true
				case white:
					color[to] = gray
					stack = append(stack, frame{node: to})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return Op{}, false
}

// FindCyclePath returns the operations on one cycle (in order), or nil
// when the graph is acyclic. Slower than FindCycle; intended for
// diagnostics.
func (g *Graph) FindCyclePath() []Op {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.ops))
	type frame struct {
		node int32
		next int
	}
	for start := range g.ops {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: int32(start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				to := g.adj[f.node][f.next]
				f.next++
				switch color[to] {
				case gray:
					// Unwind the stack back to `to` to extract the cycle.
					var cyc []Op
					for i := range stack {
						if stack[i].node == to {
							for _, fr := range stack[i:] {
								cyc = append(cyc, g.ops[fr.node])
							}
							return cyc
						}
					}
					return []Op{g.ops[to]}
				case white:
					color[to] = gray
					stack = append(stack, frame{node: to})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// Nodes returns the number of operations in the graph.
func (g *Graph) Nodes() int { return len(g.ops) }

// At returns the operation at the given node index (the index space
// BuildWith's edge observer reports).
func (g *Graph) At(i int32) Op { return g.ops[i] }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("constraint graph: %d nodes, %d edges", len(g.ops), g.EdgeCount)
}

// BuildPerLocation constructs one constraint graph per memory location,
// with program order restricted to same-address operations. An acyclic
// result verifies cache coherence (per-location sequential
// consistency) — the guarantee the paper's *insulated* and *hybrid*
// load queues provide on weakly-ordered machines (§2.1: "an insulated
// load buffer ... order[s] those instructions that read the same
// address"), as opposed to the full sequential consistency the
// snooping queue and the composed replay filters enforce.
func BuildPerLocation(procs [][]Op, chains map[uint64][]Versioned, background func(addr uint64) uint64) *Graph {
	// Split each processor's stream into per-address streams; indices
	// are re-assigned within each stream, preserving relative order.
	type key struct {
		proc int
		addr uint64
	}
	split := make(map[key][]Op)
	var order []key
	for p, stream := range procs {
		for _, op := range stream {
			k := key{p, op.Addr}
			if _, ok := split[k]; !ok {
				order = append(order, k)
			}
			op.Index = len(split[k])
			split[k] = append(split[k], op)
		}
	}
	streams := make([][]Op, 0, len(order))
	for _, k := range order {
		streams = append(streams, split[k])
	}
	return Build(streams, chains, background)
}
