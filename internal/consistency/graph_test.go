package consistency

import "testing"

func TestWriterPacking(t *testing.T) {
	w := MakeWriter(5, 123)
	if w.Proc() != 5 || w.StoreSeq() != 123 {
		t.Errorf("roundtrip failed: proc=%d seq=%d", w.Proc(), w.StoreSeq())
	}
	if InitialValue.Proc() != -1 {
		t.Errorf("initial value proc = %d", InitialValue.Proc())
	}
	d := MakeWriter(DMAProc, 9)
	if d.Proc() != DMAProc {
		t.Errorf("DMA proc = %d", d.Proc())
	}
}

func TestShadow(t *testing.T) {
	s := NewShadow(true)
	if s.Read(0x100) != InitialValue {
		t.Error("unwritten word should read initial value")
	}
	w1 := MakeWriter(0, 0)
	w2 := MakeWriter(1, 0)
	s.Write(0x100, w1, 10)
	s.Write(0x100, w2, 20)
	s.Write(0x104, w1, 30) // same word as 0x100
	if s.Read(0x100) != w1 {
		t.Error("last writer of word 0x100 should be w1 (via 0x104 alias)")
	}
	ch := s.Chain(0x100)
	if len(ch) != 3 || ch[0].W != w1 || ch[1].W != w2 || ch[2].W != w1 {
		t.Errorf("chain = %v", ch)
	}
	if ch[0].Value != 10 || ch[2].Value != 30 {
		t.Errorf("chain values = %v", ch)
	}
	s2 := NewShadow(false)
	s2.Write(0x100, w1, 0)
	if len(s2.Chain(0x100)) != 0 {
		t.Error("chains disabled should record nothing")
	}
}

// seqOps builds a trivially SC execution: p0 stores A then B, p1 loads
// B then A reading exactly p0's values in order.
func scExecution() ([][]Op, map[uint64][]Versioned) {
	sA := MakeWriter(0, 0)
	sB := MakeWriter(0, 1)
	p0 := []Op{
		{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x100, Value: 1, Self: sA},
		{Proc: 0, Index: 1, Kind: OpStore, Addr: 0x200, Value: 2, Self: sB},
	}
	p1 := []Op{
		{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0x200, Value: 2, ReadsFrom: sB},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0x100, Value: 1, ReadsFrom: sA},
	}
	chains := map[uint64][]Versioned{0x100: {{W: sA, Value: 1}}, 0x200: {{W: sB, Value: 2}}}
	return [][]Op{p0, p1}, chains
}

func TestSCExecutionAcyclic(t *testing.T) {
	procs, chains := scExecution()
	g := Build(procs, chains, nil)
	if op, cyc := g.FindCycle(); cyc {
		t.Errorf("SC execution reported cyclic at %+v (%s)", op, g)
	}
	if g.Nodes() != 4 {
		t.Errorf("Nodes = %d", g.Nodes())
	}
}

func TestFigure1bViolationCyclic(t *testing.T) {
	// Figure 1(b): p1 stores A then B; p2 loads B (new value) then A
	// (old/initial value). Reading new B but old A with the load of B
	// first in program order is a classic SC violation.
	sA := MakeWriter(0, 0)
	sB := MakeWriter(0, 1)
	p0 := []Op{
		{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x100, Value: 1, Self: sA}, // store A
		{Proc: 0, Index: 1, Kind: OpStore, Addr: 0x200, Value: 2, Self: sB}, // store B
	}
	p1 := []Op{
		{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0x200, Value: 2, ReadsFrom: sB},           // load B: new
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0x100, Value: 9, ReadsFrom: InitialValue}, // load A: old!
	}
	chains := map[uint64][]Versioned{0x100: {{W: sA, Value: 1}}, 0x200: {{W: sB, Value: 2}}}
	g := Build(procs2(p0, p1), chains, nil)
	if _, cyc := g.FindCycle(); !cyc {
		t.Errorf("Figure 1(b) violation not detected (%s)", g)
	}
}

func TestFigure4Example(t *testing.T) {
	// Figure 4's shape (Dekker): p0 stores A then reads C; p1 stores C
	// then reads A. Both reading the *original* values cannot be
	// totally ordered — the WAR edges close a cross-processor cycle
	// with program order.
	sA := MakeWriter(0, 0)
	sC := MakeWriter(1, 0)
	p0 := []Op{
		{Proc: 0, Index: 0, Kind: OpStore, Addr: 0xA0, Value: 1, Self: sA},
		{Proc: 0, Index: 1, Kind: OpLoad, Addr: 0xC0, Value: 9, ReadsFrom: InitialValue},
	}
	p1bad := []Op{
		{Proc: 1, Index: 0, Kind: OpStore, Addr: 0xC0, Value: 2, Self: sC},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0xA0, Value: 9, ReadsFrom: InitialValue},
	}
	chains := map[uint64][]Versioned{0xA0: {{W: sA, Value: 1}}, 0xC0: {{W: sC, Value: 2}}}
	g := Build(procs2(p0, p1bad), chains, nil)
	// sA ->(PO) ldC ->(WAR) sC ->(PO) ldA ->(WAR) sA: cycle.
	if _, cyc := g.FindCycle(); !cyc {
		t.Errorf("Figure 4 violation not detected (%s)", g)
	}
	// The legal interleaving — p1's load reads the NEW A — is acyclic:
	// stA, ldC, stC, ldA is a valid total order.
	p1ok := []Op{
		{Proc: 1, Index: 0, Kind: OpStore, Addr: 0xC0, Value: 2, Self: sC},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0xA0, Value: 1, ReadsFrom: sA},
	}
	g2 := Build(procs2(p0, p1ok), chains, nil)
	if op, cyc := g2.FindCycle(); cyc {
		t.Errorf("legal execution flagged cyclic at %+v", op)
	}
}

func TestWAWOrderRespected(t *testing.T) {
	// Two stores to one address by different processors; a processor
	// that reads them in anti-chain order violates SC.
	s0 := MakeWriter(0, 0)
	s1 := MakeWriter(1, 0)
	p0 := []Op{{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x80, Value: 1, Self: s0}}
	p1 := []Op{{Proc: 1, Index: 0, Kind: OpStore, Addr: 0x80, Value: 2, Self: s1}}
	p2 := []Op{
		{Proc: 2, Index: 0, Kind: OpLoad, Addr: 0x80, Value: 2, ReadsFrom: s1},
		{Proc: 2, Index: 1, Kind: OpLoad, Addr: 0x80, Value: 1, ReadsFrom: s0},
	}
	chains := map[uint64][]Versioned{0x80: {{W: s0, Value: 1}, {W: s1, Value: 2}}} // coherence order: s0 then s1
	g := Build([][]Op{p0, p1, p2}, chains, nil)
	if _, cyc := g.FindCycle(); !cyc {
		t.Error("reading versions against coherence order must be cyclic")
	}
	// Reading in order is fine.
	p2ok := []Op{
		{Proc: 2, Index: 0, Kind: OpLoad, Addr: 0x80, Value: 1, ReadsFrom: s0},
		{Proc: 2, Index: 1, Kind: OpLoad, Addr: 0x80, Value: 2, ReadsFrom: s1},
	}
	g2 := Build([][]Op{p0, p1, p2ok}, chains, nil)
	if _, cyc := g2.FindCycle(); cyc {
		t.Error("in-order reads flagged cyclic")
	}
}

func TestInitialValueBeforeFirstStore(t *testing.T) {
	// A load of the initial value ordered after observing the first
	// store is a violation (it must precede the store).
	s0 := MakeWriter(0, 0)
	p0 := []Op{{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x40, Value: 1, Self: s0}}
	p1 := []Op{
		{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0x40, Value: 1, ReadsFrom: s0},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0x40, Value: 9, ReadsFrom: InitialValue},
	}
	chains := map[uint64][]Versioned{0x40: {{W: s0, Value: 1}}}
	g := Build(procs2(p0, p1), chains, nil)
	if _, cyc := g.FindCycle(); !cyc {
		t.Error("stale re-read of initial value must be cyclic")
	}
}

func TestUnknownWriterInChainIsSkipped(t *testing.T) {
	// DMA writers appear in chains but have no graph node; the chain
	// segment must break gracefully.
	s0 := MakeWriter(0, 0)
	dma := MakeWriter(DMAProc, 1)
	p0 := []Op{{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x40, Value: 1, Self: s0}}
	p1 := []Op{{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0x40, Value: 2, ReadsFrom: dma}}
	chains := map[uint64][]Versioned{0x40: {{W: s0, Value: 1}, {W: dma, Value: 2}}}
	g := Build(procs2(p0, p1), chains, nil)
	if _, cyc := g.FindCycle(); cyc {
		t.Error("DMA-read execution flagged cyclic")
	}
}

func procs2(a, b []Op) [][]Op { return [][]Op{a, b} }

func TestPerLocationCoherence(t *testing.T) {
	// The Figure 1(b) different-address reordering violates SC but not
	// per-location coherence.
	sA := MakeWriter(0, 0)
	sB := MakeWriter(0, 1)
	p0 := []Op{
		{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x100, Value: 1, Self: sA},
		{Proc: 0, Index: 1, Kind: OpStore, Addr: 0x200, Value: 2, Self: sB},
	}
	p1 := []Op{
		{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0x200, Value: 2, ReadsFrom: sB},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0x100, Value: 9, ReadsFrom: InitialValue},
	}
	chains := map[uint64][]Versioned{0x100: {{W: sA, Value: 1}}, 0x200: {{W: sB, Value: 2}}}
	if _, cyc := Build(procs2(p0, p1), chains, nil).FindCycle(); !cyc {
		t.Fatal("SC check must flag the reordering")
	}
	if _, cyc := BuildPerLocation(procs2(p0, p1), chains, nil).FindCycle(); cyc {
		t.Error("per-location coherence must accept different-address reordering")
	}
	// But a same-address inversion violates both.
	p1bad := []Op{
		{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0x100, Value: 1, ReadsFrom: sA},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0x100, Value: 9, ReadsFrom: InitialValue},
	}
	if _, cyc := BuildPerLocation(procs2(p0, p1bad), chains, nil).FindCycle(); !cyc {
		t.Error("per-location check must flag same-address inversion")
	}
}

func TestFindCyclePath(t *testing.T) {
	sA := MakeWriter(0, 0)
	sC := MakeWriter(1, 0)
	p0 := []Op{
		{Proc: 0, Index: 0, Kind: OpStore, Addr: 0xA0, Value: 1, Self: sA},
		{Proc: 0, Index: 1, Kind: OpLoad, Addr: 0xC0, Value: 9, ReadsFrom: InitialValue},
	}
	p1 := []Op{
		{Proc: 1, Index: 0, Kind: OpStore, Addr: 0xC0, Value: 2, Self: sC},
		{Proc: 1, Index: 1, Kind: OpLoad, Addr: 0xA0, Value: 9, ReadsFrom: InitialValue},
	}
	chains := map[uint64][]Versioned{0xA0: {{W: sA, Value: 1}}, 0xC0: {{W: sC, Value: 2}}}
	g := Build(procs2(p0, p1), chains, nil)
	path := g.FindCyclePath()
	if len(path) < 2 {
		t.Fatalf("cycle path too short: %d", len(path))
	}
	// Every node on the path is one of the four ops.
	for _, op := range path {
		if op.Proc != 0 && op.Proc != 1 {
			t.Errorf("foreign op on path: %+v", op)
		}
	}
	// Acyclic graph yields nil.
	ok := []Op{{Proc: 1, Index: 0, Kind: OpLoad, Addr: 0xA0, Value: 1, ReadsFrom: sA}}
	g2 := Build(procs2(p0[:1], ok), chains, nil)
	if g2.FindCyclePath() != nil {
		t.Error("acyclic graph returned a cycle path")
	}
}

func TestValueAwareSilentStoreNoFalsePositive(t *testing.T) {
	// A load attributed to an older writer whose value equals the next
	// (silent) version must not be over-constrained: reading "stale"
	// identity with identical value is value-SC.
	s0 := MakeWriter(0, 0) // writes 5
	s1 := MakeWriter(1, 0) // silent: writes 5 again
	p0 := []Op{{Proc: 0, Index: 0, Kind: OpStore, Addr: 0x40, Value: 5, Self: s0}}
	p1 := []Op{{Proc: 1, Index: 0, Kind: OpStore, Addr: 0x40, Value: 5, Self: s1}}
	p2 := []Op{
		// Reads attributed across the silent boundary in "wrong" order.
		{Proc: 2, Index: 0, Kind: OpLoad, Addr: 0x40, Value: 5, ReadsFrom: s1},
		{Proc: 2, Index: 1, Kind: OpLoad, Addr: 0x40, Value: 5, ReadsFrom: s0},
	}
	chains := map[uint64][]Versioned{0x40: {{W: s0, Value: 5}, {W: s1, Value: 5}}}
	g := Build([][]Op{p0, p1, p2}, chains, nil)
	if op, cyc := g.FindCycle(); cyc {
		t.Errorf("silent-store identity inversion flagged as violation at %+v", op)
	}
}
