// Package consistency implements the paper's back-end memory
// consistency checker (§3.1, Figure 4): the constraint graph — nodes are
// committed memory operations, edges are program order plus the RAW,
// WAW and WAR dependence orders per location — and its cycle test. An
// acyclic graph means the execution has a total order, i.e. it is
// sequentially consistent; a cycle is a consistency violation.
//
// Reads-from edges require knowing which store each load observed, so
// the simulator maintains a Shadow image mapping each word to the
// identity of its last writer; loads sample it at the same instant they
// sample their value.
package consistency

// Writer identifies a store operation (or the initial memory value).
// The zero Writer is the initial value.
type Writer uint64

// InitialValue is the Writer of never-written words.
const InitialValue Writer = 0

// DMAProc is the pseudo-processor id used for DMA writes.
const DMAProc = 0xfff

// MakeWriter packs a processor id and that processor's store sequence
// number.
func MakeWriter(proc int, storeSeq uint64) Writer {
	return Writer(uint64(proc+1)<<48 | (storeSeq & 0xffffffffffff))
}

// Proc returns the writing processor (-1 for the initial value).
func (w Writer) Proc() int { return int(w>>48) - 1 }

// StoreSeq returns the writer's per-processor store sequence number.
func (w Writer) StoreSeq() uint64 { return uint64(w) & 0xffffffffffff }

// Versioned is one entry of a word's version chain: a store identity
// and the value it wrote. Values make the constraint graph value-aware
// (silent stores do not over-constrain loads; see Build).
type Versioned struct {
	W     Writer
	Value uint64
}

// Shadow tracks, per word, the identity of the last committed store and
// the per-word version chain needed for WAW/WAR edges.
type Shadow struct {
	last  map[uint64]Writer
	chain map[uint64][]Versioned
	// KeepChains enables version-chain recording (needed only when a
	// constraint graph will be built; costs memory).
	KeepChains bool
}

// NewShadow creates an empty shadow image.
func NewShadow(keepChains bool) *Shadow {
	return &Shadow{
		last:       make(map[uint64]Writer),
		chain:      make(map[uint64][]Versioned),
		KeepChains: keepChains,
	}
}

// Write records a store commit of value to addr by the given writer.
func (s *Shadow) Write(addr uint64, w Writer, value uint64) {
	addr &^= 7
	s.last[addr] = w
	if s.KeepChains {
		s.chain[addr] = append(s.chain[addr], Versioned{W: w, Value: value})
	}
}

// Read returns the identity of addr's last writer.
func (s *Shadow) Read(addr uint64) Writer {
	return s.last[addr&^7]
}

// Chain returns addr's version chain (committed store order with
// values).
func (s *Shadow) Chain(addr uint64) []Versioned {
	return s.chain[addr&^7]
}
