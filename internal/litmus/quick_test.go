package litmus

import (
	"testing"
	"testing/quick"
)

// randomTest builds a small random litmus test from a seed: 2–3
// threads, 1–3 operations each, over two shared locations. The shapes
// intentionally go beyond the curated battery so the oracle/checker
// cross-validation is exercised on tests nobody hand-tuned.
func randomTest(seed uint64) *Test {
	r := &rng{s: seed ^ 0xda3e39cb94b95bdb}
	t := New("rand", "randomized", 2)
	threads := 2 + r.intn(2)
	for i := 0; i < threads; i++ {
		var ops []Op
		for n := 1 + r.intn(3); n > 0; n-- {
			loc := Loc(r.intn(2))
			if r.next()&1 == 0 {
				ops = append(ops, St(loc, uint64(1+r.intn(3))))
			} else {
				ops = append(ops, Ld(loc))
			}
		}
		t.Thread(ops...)
	}
	return t
}

// TestQuickWitnessGraphsAcyclic is the property-based half of the
// oracle/checker cross-check: for random small tests, every outcome the
// SC oracle derives must replay into an acyclic constraint graph. The
// two components were written independently — the oracle interleaves
// operations, the checker builds value-aware dependence edges — so a
// counterexample here would mean one of them misunderstands SC.
func TestQuickWitnessGraphsAcyclic(t *testing.T) {
	prop := func(seed uint64) bool {
		test := randomTest(seed)
		as := Allowed(test)
		for _, key := range as.Keys() {
			g := as.WitnessGraph(key)
			if g == nil {
				return false
			}
			if _, cyc := g.FindCycle(); cyc {
				t.Logf("seed %d: cyclic witness for %s (%d threads)", seed, key, len(test.Threads))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickNUSOnlyForbiddenImpliesCycle is the property on the machine
// side: whenever the deliberately unsound NUS-alone configuration
// produces an SC-forbidden outcome on SB, the constraint graph built
// from that same execution must be cyclic — the graph checker and the
// oracle agree not just on what is allowed but on each concrete
// violation.
func TestQuickNUSOnlyForbiddenImpliesCycle(t *testing.T) {
	sb, _ := ByName("SB")
	as := Allowed(sb)
	cfg, _ := ConfigByName("nus-only")
	forbidden := 0
	prop := func(seed uint64) bool {
		res := RunOne(cfg.Machine, sb, as, seed, nil)
		if !res.OK {
			return true
		}
		if res.Allowed && res.Cycle {
			t.Logf("seed %d: allowed outcome %s with graph cycle", seed, res.Key)
			return false
		}
		if !res.Allowed {
			forbidden++
			if !res.Cycle {
				t.Logf("seed %d: forbidden outcome %s but acyclic graph", seed, res.Key)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	if forbidden == 0 {
		t.Skip("no forbidden outcome sampled; property vacuous this run")
	}
}
