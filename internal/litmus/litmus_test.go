package litmus

import (
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/system"
)

// TestOracleSB pins down the SC-allowed set of the store-buffering
// test: (0,0) is the one forbidden load outcome and both stores always
// land, so exactly three outcomes are allowed.
func TestOracleSB(t *testing.T) {
	sb, ok := ByName("SB")
	if !ok {
		t.Fatal("SB missing from battery")
	}
	as := Allowed(sb)
	want := []string{"r=0,1 m=1,1", "r=1,0 m=1,1", "r=1,1 m=1,1"}
	got := as.Keys()
	if len(got) != len(want) {
		t.Fatalf("SB allowed set = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SB allowed set = %v, want %v", got, want)
		}
	}
	if as.Contains(Outcome{Loads: []uint64{0, 0}, Final: []uint64{1, 1}}) {
		t.Fatal("SB oracle admits the forbidden r=0,0 outcome")
	}
}

// TestOracleMP checks message passing: observing the flag set but the
// data stale is the sole forbidden load combination.
func TestOracleMP(t *testing.T) {
	mp, _ := ByName("MP")
	as := Allowed(mp)
	if as.Contains(Outcome{Loads: []uint64{1, 0}, Final: []uint64{1, 1}}) {
		t.Fatal("MP oracle admits the forbidden r=1,0 outcome")
	}
	for _, ok := range []string{"r=0,0 m=1,1", "r=0,1 m=1,1", "r=1,1 m=1,1"} {
		if _, found := as.Outcomes[ok]; !found {
			t.Fatalf("MP oracle missing allowed outcome %s (set %v)", ok, as.Keys())
		}
	}
}

// TestOracleFenceInert verifies fences do not change the SC-allowed
// set: the oracle already runs every interleaving atomically.
func TestOracleFenceInert(t *testing.T) {
	for _, name := range []string{"SB", "MP", "LB"} {
		plain, _ := ByName(name)
		fenced, _ := ByName(name + "+fences")
		a, b := Allowed(plain).Keys(), Allowed(fenced).Keys()
		if len(a) != len(b) {
			t.Fatalf("%s: fenced allowed set differs: %v vs %v", name, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: fenced allowed set differs: %v vs %v", name, a, b)
			}
		}
	}
}

// TestBatteryWellFormed asserts every battery member's canonical weak
// outcome is genuinely SC-forbidden (the predicate matches nothing in
// the allowed set) and that every allowed outcome's witness
// interleaving builds an acyclic constraint graph — the oracle and the
// graph checker cross-validating each other.
func TestBatteryWellFormed(t *testing.T) {
	for _, test := range Battery() {
		as := Allowed(test)
		if len(as.Outcomes) == 0 {
			t.Fatalf("%s: empty allowed set", test.Name)
		}
		if test.Weak == nil {
			t.Fatalf("%s: no weak predicate", test.Name)
		}
		if as.WeakAllowed() {
			t.Fatalf("%s: weak outcome is SC-allowed — malformed test", test.Name)
		}
		for _, key := range as.Keys() {
			g := as.WitnessGraph(key)
			if g == nil {
				t.Fatalf("%s: no witness for %s", test.Name, key)
			}
			if op, cyc := g.FindCycle(); cyc {
				t.Fatalf("%s: witness graph for SC outcome %s is cyclic at %+v",
					test.Name, key, op)
			}
		}
	}
}

// TestCompile checks the compiled shape: one section per thread with a
// distinct entry PC, every load PC mapped to a distinct observation
// slot, and address registers preloaded.
func TestCompile(t *testing.T) {
	iriw, _ := ByName("IRIW")
	c := Compile(iriw, []int{3, 0, 5, 1})
	if len(c.Inits) != 4 {
		t.Fatalf("IRIW compiled to %d cores, want 4", len(c.Inits))
	}
	seen := map[uint64]bool{}
	for i, st := range c.Inits {
		if st.PC == 0 || seen[st.PC] {
			t.Fatalf("core %d section PC %#x (zero or duplicate)", i, st.PC)
		}
		seen[st.PC] = true
		if st.Regs[rAddr0] != LocAddr(X) {
			t.Fatalf("core %d rAddr0 = %#x, want %#x", i, st.Regs[rAddr0], LocAddr(X))
		}
	}
	slots := map[int]bool{}
	for _, slot := range c.loadOf {
		if slots[slot] {
			t.Fatalf("duplicate observation slot %d", slot)
		}
		slots[slot] = true
	}
	if len(slots) != iriw.NumLoads() {
		t.Fatalf("%d load PCs mapped, want %d", len(slots), iriw.NumLoads())
	}
}

// TestCompileOnPadding checks the 16-way form: the test's threads keep
// their sections and the extra cores get distinct spin-only sections.
func TestCompileOnPadding(t *testing.T) {
	mp, _ := ByName("MP")
	c := CompileOn(mp, nil, 16)
	if len(c.Inits) != 16 {
		t.Fatalf("MP compiled onto %d cores, want 16", len(c.Inits))
	}
	base := Compile(mp, nil)
	for i, st := range base.Inits {
		if c.Inits[i].PC != st.PC {
			t.Fatalf("thread %d section moved: %#x vs %#x", i, c.Inits[i].PC, st.PC)
		}
	}
	seen := map[uint64]bool{}
	for i, st := range c.Inits {
		if st.PC == 0 || seen[st.PC] {
			t.Fatalf("core %d section PC %#x (zero or duplicate)", i, st.PC)
		}
		seen[st.PC] = true
	}
	if c.MinCommits != base.MinCommits {
		t.Fatalf("padding changed MinCommits: %d vs %d", c.MinCommits, base.MinCommits)
	}
	// At or below the thread count, CompileOn is exactly Compile.
	if n := len(CompileOn(mp, nil, 1).Inits); n != len(mp.Threads) {
		t.Fatalf("CompileOn(_, _, 1) compiled %d cores, want %d", n, len(mp.Threads))
	}
}

// TestSixteenWaySoundSB runs SB inside a 16-way SMP on every sound
// configuration: the spinning extra cores must not perturb soundness
// or completion.
func TestSixteenWaySoundSB(t *testing.T) {
	sb, _ := ByName("SB")
	as := Allowed(sb)
	for _, cfg := range Configs() {
		if !cfg.Sound {
			continue
		}
		for seed := uint64(0); seed < 4; seed++ {
			res := RunOneFaultOn(cfg.Machine, sb, as, seed, nil, nil, 16)
			if !res.OK {
				t.Fatalf("%s seed %d: incomplete 16-way run", cfg.Name, seed)
			}
			if !res.Allowed {
				t.Fatalf("%s seed %d: forbidden outcome %s", cfg.Name, seed, res.Key)
			}
			if res.Cycle {
				t.Fatalf("%s seed %d: constraint-graph cycle on allowed outcome %s",
					cfg.Name, seed, res.Key)
			}
		}
	}
}

// TestFastForwardVerdictParity runs one compiled test with and without
// the quiescence fast-forward and asserts the observed outcome, cycle
// count, and committed totals are bit-identical (the system-level
// equivalence contract, exercised on litmus code).
func TestFastForwardVerdictParity(t *testing.T) {
	mp, _ := ByName("MP")
	for _, cores := range []int{len(mp.Threads), 16} {
		comp := CompileOn(mp, nil, cores)
		run := func(noFF bool) (Outcome, bool, int64, uint64) {
			opt := system.Options{
				Cores: len(comp.Inits), Seed: 0,
				TrackConsistency: true, MaxCycles: maxCycles,
				NoFastForward: noFF,
			}
			s := system.NewCustom(Configs()[0].Machine, comp.Prog, comp.Inits, opt)
			comp.InitImage(s)
			res := s.Run(comp.MinCommits, opt)
			out, ok := comp.Extract(s)
			return out, ok, res.Cycles, res.Pipe.Committed
		}
		outFF, okFF, cycFF, comFF := run(false)
		outPlain, okPlain, cycPlain, comPlain := run(true)
		if okFF != okPlain || cycFF != cycPlain || comFF != comPlain {
			t.Fatalf("%d cores: run shape diverged: ok %v/%v cycles %d/%d committed %d/%d",
				cores, okFF, okPlain, cycFF, cycPlain, comFF, comPlain)
		}
		if outFF.Key() != outPlain.Key() {
			t.Fatalf("%d cores: outcome diverged: %s vs %s", cores, outFF.Key(), outPlain.Key())
		}
	}
}

// TestStageSkipVerdictParity runs every battery member with the
// per-stage readiness layer on and off — at the test's natural core
// count and inside a 16-way SMP, under a perturbed seed so skew, warm
// cores, and DMA noise are in play — and asserts the observed outcome,
// cycle count, and committed totals are bit-identical. This is the
// litmus-level leg of the DESIGN.md §14 equivalence contract; the
// sweep's Perturb.NoStageSkip fold re-proves it continuously in bulk.
func TestStageSkipVerdictParity(t *testing.T) {
	for _, test := range Battery() {
		for _, cores := range []int{len(test.Threads), 16} {
			for _, seed := range []uint64{0, 7} {
				r := &rng{s: seed * 0x2545f4914f6cdd1d}
				var p Perturb
				if seed == 0 {
					p = Perturb{Skew: make([]int, len(test.Threads)), Warm: make([]bool, len(test.Threads))}
				} else {
					p = perturbFor(r, len(test.Threads))
				}
				comp := CompileOn(test, p.Skew, cores)
				run := func(noSkip bool) (Outcome, bool, int64, uint64) {
					opt := system.Options{
						Cores: len(comp.Inits), Seed: seed,
						TrackConsistency: true, MaxCycles: maxCycles,
						DMAInterval: p.DMAInterval, DMABurst: 2,
						NoStageSkip: noSkip,
					}
					s := system.NewCustom(Configs()[0].Machine, comp.Prog, comp.Inits, opt)
					comp.InitImage(s)
					for c := range comp.Inits {
						if c < len(p.Warm) && p.Warm[c] {
							for _, addr := range comp.Addrs {
								s.Prewarm(c, addr)
							}
						}
					}
					res := s.Run(comp.MinCommits, opt)
					out, ok := comp.Extract(s)
					return out, ok, res.Cycles, res.Pipe.Committed
				}
				outOn, okOn, cycOn, comOn := run(false)
				outOff, okOff, cycOff, comOff := run(true)
				if okOn != okOff || cycOn != cycOff || comOn != comOff {
					t.Fatalf("%s/%d cores/seed %d: run shape diverged: ok %v/%v cycles %d/%d committed %d/%d",
						test.Name, cores, seed, okOn, okOff, cycOn, cycOff, comOn, comOff)
				}
				if outOn.Key() != outOff.Key() {
					t.Fatalf("%s/%d cores/seed %d: outcome diverged: %s vs %s",
						test.Name, cores, seed, outOn.Key(), outOff.Key())
				}
			}
		}
	}
}

// TestSoundConfigsSB runs SB — the sharpest discriminator — end to end
// on each sound machine across perturbed seeds: only SC-allowed
// outcomes, no constraint-graph cycles, every run complete.
func TestSoundConfigsSB(t *testing.T) {
	sb, _ := ByName("SB")
	as := Allowed(sb)
	for _, cfg := range Configs() {
		if !cfg.Sound {
			continue
		}
		for seed := uint64(0); seed < 12; seed++ {
			res := RunOne(cfg.Machine, sb, as, seed, nil)
			if !res.OK {
				t.Fatalf("%s seed %d: incomplete run", cfg.Name, seed)
			}
			if !res.Allowed {
				t.Fatalf("%s seed %d: forbidden outcome %s", cfg.Name, seed, res.Key)
			}
			if res.Cycle {
				t.Fatalf("%s seed %d: constraint-graph cycle on allowed outcome %s",
					cfg.Name, seed, res.Key)
			}
		}
	}
}

// TestCoherenceTestsEverywhere runs the coherence battery members on
// every config including the unsound one: NUS-alone breaks read
// atomicity across processors, but same-address ordering within the
// uniprocessor-visible coherence order must survive on all machines.
func TestCoherenceTestsEverywhere(t *testing.T) {
	for _, name := range []string{"CoRR", "CoWW"} {
		test, _ := ByName(name)
		as := Allowed(test)
		for _, cfg := range Configs() {
			for seed := uint64(0); seed < 6; seed++ {
				res := RunOne(cfg.Machine, test, as, seed, nil)
				if !res.OK {
					t.Fatalf("%s/%s seed %d: incomplete run", name, cfg.Name, seed)
				}
				if cfg.Sound && !res.Allowed {
					t.Fatalf("%s/%s seed %d: forbidden outcome %s",
						name, cfg.Name, seed, res.Key)
				}
			}
		}
	}
}

// TestNUSOnlyCaught demonstrates the paper's §3.3 argument as an
// executable fact: the NUS-alone filter lets premature loads commit
// unverified on a multiprocessor, and the SB battery member catches it
// — the forbidden r=0,0 outcome (or a graph cycle) shows up within a
// few perturbed seeds.
func TestNUSOnlyCaught(t *testing.T) {
	sb, _ := ByName("SB")
	as := Allowed(sb)
	cfg, ok := ConfigByName("nus-only")
	if !ok || cfg.Sound {
		t.Fatal("nus-only config missing or marked sound")
	}
	caught := 0
	for seed := uint64(0); seed < 20; seed++ {
		res := RunOne(cfg.Machine, sb, as, seed, nil)
		if res.OK && (!res.Allowed || res.Cycle) {
			caught++
			if !res.Allowed && !res.Cycle {
				t.Errorf("seed %d: forbidden outcome %s but graph acyclic — checker missed it",
					seed, res.Key)
			}
		}
	}
	if caught == 0 {
		t.Fatal("NUS-alone never produced a forbidden outcome on SB in 20 seeds")
	}
	t.Logf("NUS-alone caught on %d/20 seeds", caught)
}

// TestSweepSmall exercises the pooled sweep end to end on a small
// matrix and checks the summary logic.
func TestSweepSmall(t *testing.T) {
	sb, _ := ByName("SB")
	mpf, _ := ByName("MP+fences")
	cfgs := []Config{
		{Name: "baseline", Machine: tune(config.Baseline()), Sound: true},
		{Name: "nus-only", Machine: tune(config.Replay(core.NUSOnly)), Sound: false},
	}
	vs, err := Sweep(SweepOptions{
		Tests:   []*Test{sb, mpf},
		Configs: cfgs,
		Runs:    15,
		Workers: 2,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("got %d verdicts, want 4", len(vs))
	}
	sum := Summarize(vs)
	if !sum.SoundOK {
		t.Fatalf("baseline failed: %v", sum.FailedCells)
	}
	if !sum.UnsoundCaught {
		t.Fatal("nus-only not caught by SB in the small sweep")
	}
	for _, v := range vs {
		if v.Incomplete > 0 {
			t.Fatalf("%s/%s: %d incomplete runs", v.Test, v.Config, v.Incomplete)
		}
		total := 0
		for _, n := range v.Histogram {
			total += n
		}
		if total != v.Runs {
			t.Fatalf("%s/%s: histogram covers %d of %d runs", v.Test, v.Config, total, v.Runs)
		}
	}
}
