// The spec→machine compiler: lower a declarative litmus test to one
// prog.Program with a per-core section pinned to each core of an MP
// system machine, plus the metadata needed to extract the run's
// Outcome from the committed-record streams afterwards.

package litmus

import (
	"fmt"

	"vbmo/internal/isa"
	"vbmo/internal/prog"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// Register conventions of compiled litmus code. Location addresses are
// preloaded into registers by the per-core initial state; store values
// are materialized with lui.
const (
	rAddr0 = isa.Reg(1)  // address of location 0 (loc i at rAddr0+i)
	rVal   = isa.Reg(16) // store value scratch
	rPad   = isa.Reg(20) // skew-prologue filler accumulator
	rObs0  = isa.Reg(24) // first observation register (load i of a thread)
)

// Entry is the compiled program's entry PC (thread 0's section).
const Entry = uint64(0x4000)

// LocAddr maps a litmus location to its word address: each location
// gets its own cache block at the base of the shared segment, so the
// tests contend exactly where the MP workloads' hot set lives.
func LocAddr(loc Loc) uint64 { return workload.SharedBase + uint64(loc)*64 }

// Compiled is the machine form of a litmus test.
type Compiled struct {
	Test *Test
	Prog *prog.Program
	// Inits holds one per-core initial state; Inits[c].PC selects core
	// c's section of the program.
	Inits []prog.ArchState
	// Addrs is the word address of each location.
	Addrs []uint64
	// loadOf maps a load instruction's PC to its flattened observation
	// slot (each static load commits exactly once — sections are
	// straight-line and end in a self-loop).
	loadOf map[uint64]int
	// MinCommits is the per-core commit target that guarantees every
	// test operation has committed (the spin epilogue covers the rest).
	MinCommits uint64
}

// Compile lowers the test. skew, when non-nil, gives each thread a
// straight-line filler prologue of that many instructions — the sweep
// runner's timing perturbation that staggers the threads' entry into
// the test body. Threads beyond len(skew) get no prologue.
func Compile(t *Test, skew []int) *Compiled {
	return CompileOn(t, skew, 0)
}

// CompileOn is Compile for a machine with the given core count. A test
// has a fixed thread shape, so scaling the litmus sweep to a wider SMP
// (16-way; DESIGN.md §12) pads the extra cores with spin-only sections:
// they commit jumps, share the bus, and contribute snoop traffic and
// commit-target bookkeeping without touching the test's locations.
// cores below the thread count (including 0) compiles for exactly the
// test's threads.
func CompileOn(t *Test, skew []int, cores int) *Compiled {
	b := prog.NewBuilder(Entry)
	c := &Compiled{
		Test:   t,
		Addrs:  make([]uint64, t.Locs),
		loadOf: make(map[uint64]int),
	}
	for loc := range c.Addrs {
		c.Addrs[loc] = LocAddr(Loc(loc))
	}
	base := t.loadBase()
	longest := 0
	for th, ops := range t.Threads {
		start := b.Pos()
		pad := 0
		if th < len(skew) {
			pad = skew[th]
		}
		for i := 0; i < pad; i++ {
			b.Emit(isa.Inst{Op: isa.OpAddI, Dst: rPad, Src1: rPad, Imm: 1})
		}
		slot := 0
		for _, op := range ops {
			switch op.Kind {
			case OpStore:
				b.Emit(isa.Inst{Op: isa.OpLui, Dst: rVal, Imm: int64(op.Val)})
				b.Emit(isa.Inst{Op: isa.OpStore, Src1: rAddr0 + isa.Reg(op.Loc), Src2: rVal})
			case OpLoad:
				pc := Entry + uint64(b.Pos())*prog.InstBytes
				c.loadOf[pc] = base[th] + slot
				b.Emit(isa.Inst{Op: isa.OpLoad, Dst: rObs0 + isa.Reg(slot), Src1: rAddr0 + isa.Reg(op.Loc)})
				slot++
			case OpFence:
				b.Emit(isa.Inst{Op: isa.OpMembar})
			}
		}
		// Spin epilogue: the core keeps committing jumps so the system's
		// commit-target termination works for every thread length.
		spin := b.Here()
		b.Branch(isa.OpJump, 0, spin)

		var st prog.ArchState
		st.PC = Entry + uint64(start)*prog.InstBytes
		for loc := 0; loc < t.Locs; loc++ {
			st.WriteReg(rAddr0+isa.Reg(loc), c.Addrs[loc])
		}
		c.Inits = append(c.Inits, st)
		if n := b.Pos() - start; n > longest {
			longest = n
		}
	}
	for pad := len(t.Threads); pad < cores; pad++ {
		start := b.Pos()
		spin := b.Here()
		b.Branch(isa.OpJump, 0, spin)
		var st prog.ArchState
		st.PC = Entry + uint64(start)*prog.InstBytes
		c.Inits = append(c.Inits, st)
	}
	c.Prog = b.Build()
	c.MinCommits = uint64(longest) + 4
	return c
}

// InitImage writes the test's declared initial values into the shared
// memory image (before the run starts, so the shadow image still
// attributes first reads to the initial value).
func (c *Compiled) InitImage(s *system.System) {
	for loc, addr := range c.Addrs {
		s.Image.Write(addr, c.Test.InitVal(Loc(loc)))
	}
}

// Extract reads the run's Outcome from the system: observed load
// values from the committed-record streams (keyed by load PC, so only
// committed architectural loads count — squashed premature attempts
// are invisible, exactly as they should be) and final memory values
// from the image. ok is false when some test load never committed
// (the run hit its cycle bound early).
func (c *Compiled) Extract(s *system.System) (Outcome, bool) {
	o := Outcome{
		Loads: make([]uint64, c.Test.NumLoads()),
		Final: make([]uint64, c.Test.Locs),
	}
	seen := 0
	for _, stream := range s.Commits {
		for _, rec := range stream {
			if slot, ok := c.loadOf[rec.PC]; ok {
				o.Loads[slot] = rec.Result
				seen++
			}
		}
	}
	for loc, addr := range c.Addrs {
		o.Final[loc] = s.Image.Read(addr)
	}
	return o, seen == len(o.Loads)
}

// String renders the compiled program's disassembly with section
// markers (debugging aid).
func (c *Compiled) String() string {
	s := fmt.Sprintf("litmus %s: %d threads, %d locs\n", c.Test.Name, len(c.Inits), c.Test.Locs)
	return s + c.Prog.String()
}
