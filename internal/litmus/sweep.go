// The sweep runner: execute every battery test across machine
// configurations × seeds × timing perturbations (including a
// stage-skip on/off fold) in a bounded worker pool, collecting outcome
// histograms and soundness verdicts. The five
// sound configurations (baseline snooping LQ, replay-all, no-reorder,
// NRM+NUS, NRS+NUS) must observe only SC-allowed outcomes; the
// deliberately mis-composed NUS-alone filter (paper §3.3 — it assumes
// loads to the same address issue in order, which only the uniprocessor
// guarantees) must be caught by at least one test.

package litmus

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vbmo/internal/cache"
	"vbmo/internal/config"
	"vbmo/internal/consistency"
	"vbmo/internal/core"
	"vbmo/internal/fault"
	"vbmo/internal/par"
	"vbmo/internal/system"
	"vbmo/internal/trace"
)

// Config is one sweep column: a named machine configuration plus the
// soundness expectation litmus holds it to.
type Config struct {
	// Name is the sweep's short column name ("nrm+nus", "nus-only", ...).
	Name string
	// Machine is the tuned machine configuration.
	Machine config.Machine
	// Sound is true when the configuration must admit only SC-allowed
	// outcomes. The one unsound member (NUS alone) is expected to be
	// caught instead.
	Sound bool
}

// Configs returns the standard sweep columns. Machines are tuned for
// litmus scale: the battery touches a handful of cache blocks, so the
// Table 3 hierarchy (8 MB of L3 per core) would spend the entire sweep
// allocating arrays. Shrinking the caches changes capacity, not
// coherence or ordering behaviour, which is all litmus observes.
func Configs() []Config {
	return []Config{
		{Name: "baseline", Machine: tune(config.Baseline()), Sound: true},
		{Name: "replay-all", Machine: tune(config.Replay(core.ReplayAll)), Sound: true},
		{Name: "no-reorder", Machine: tune(config.Replay(core.NoReorder)), Sound: true},
		{Name: "nrm+nus", Machine: tune(config.Replay(core.NoRecentMiss)), Sound: true},
		{Name: "nrs+nus", Machine: tune(config.Replay(core.NoRecentSnoop)), Sound: true},
		{Name: "nus-only", Machine: tune(config.Replay(core.NUSOnly)), Sound: false},
	}
}

// ConfigByName returns the sweep column with the given name.
func ConfigByName(name string) (Config, bool) {
	for _, c := range Configs() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// tune shrinks a machine's memory system to litmus scale.
func tune(m config.Machine) config.Machine {
	m.Hier.L1I = cache.Config{Size: 4 << 10, Ways: 1, Latency: 1}
	m.Hier.L1D = cache.Config{Size: 4 << 10, Ways: 1, Latency: 1}
	m.Hier.L2 = cache.Config{Size: 16 << 10, Ways: 4, Latency: 3}
	m.Hier.L3 = cache.Config{Size: 64 << 10, Ways: 8, Latency: 8}
	m.Hier.PrefetchEntries = 32
	m.Hier.TLBEntries = 32
	m.Hier.TLBWays = 4
	m.Hier.TLBWalkLatency = 10
	m.BP.BimodalEntries = 512
	m.BP.GshareEntries = 512
	m.BP.SelectorEntries = 512
	m.BP.BTBEntries = 256
	m.BP.BTBWays = 4
	m.MemLatency = 120
	return m
}

// Perturb is one run's timing perturbation, derived from the seed: a
// per-thread skew prologue (staggers entry into the test body), a
// per-core cache-prewarm bit (warmed cores hit locally and issue loads
// earlier; cold cores miss to memory), an invalidation-probe period
// (coherence contention injection via Bus.Probe), and a DMA period
// (background snoop noise).
type Perturb struct {
	Skew        []int
	Warm        []bool
	ProbeEvery  int64
	DMAInterval int64
	// NoStageSkip folds the per-stage readiness layer (DESIGN.md §14)
	// into the sweep: roughly half the perturbed runs execute with the
	// layer disabled. Because the layer is bit-identical by contract,
	// this fold can never change a verdict — it exists so the sweep
	// itself continuously re-proves that contract on every battery
	// member under every perturbation shape.
	NoStageSkip bool
}

// rng is a splitmix64 stream, the same generator the workloads use;
// litmus keeps its own copy so perturbation derivation is independent
// of the machine's seeded internals.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// perturbFor derives the perturbation for one run. Seed 0 is the
// canonical unperturbed run: no skew, all cores cold, no noise.
func perturbFor(r *rng, threads int) Perturb {
	p := Perturb{Skew: make([]int, threads), Warm: make([]bool, threads)}
	for i := range p.Skew {
		p.Skew[i] = r.intn(24)
		p.Warm[i] = r.next()&1 == 0
	}
	if r.next()&1 == 0 {
		p.ProbeEvery = int64(29 + r.intn(200))
	}
	if r.next()&3 == 0 {
		p.DMAInterval = int64(200 + r.intn(400))
	}
	// Drawn last so the fold's addition left every earlier field's
	// derivation (and thus the historical sweep outcomes) unchanged.
	p.NoStageSkip = r.next()&1 == 0
	return p
}

// maxCycles bounds a single litmus run. The longest battery member
// commits ~15 instructions per core; even fully fenced, cold and
// contended that takes well under a thousand cycles, so hitting this
// bound means livelock, which the verdict reports as Incomplete runs.
const maxCycles = 60000

// RunResult is one classified litmus execution.
type RunResult struct {
	Outcome Outcome
	Key     string
	// OK is false when some test load never committed (cycle bound hit).
	OK bool
	// Allowed is true when the outcome is in the SC oracle's set.
	Allowed bool
	// Weak is true when the test's canonical weak predicate matched.
	Weak bool
	// Cycle is true when the constraint graph built from the run's
	// committed streams contains a cycle (the checker's independent
	// verdict on the same execution).
	Cycle bool
	// Faults is the injector's accounting when the run was fault-injected
	// (zero otherwise).
	Faults fault.Stats
}

// RunOne executes one litmus test once on one machine with the
// perturbation derived from seed, classifies the outcome against the
// oracle, and cross-checks the run with the constraint-graph checker.
func RunOne(mc config.Machine, t *Test, as *AllowedSet, seed uint64, tr *trace.Tracer) RunResult {
	return RunOneFault(mc, t, as, seed, tr, nil)
}

// RunOneFault is RunOne under fault injection: fc (when enabled) is
// instantiated with a per-run derived seed so every run of a sweep cell
// draws an independent, reproducible fault stream. A nil fc is exactly
// RunOne.
func RunOneFault(mc config.Machine, t *Test, as *AllowedSet, seed uint64, tr *trace.Tracer, fc *fault.Config) RunResult {
	return RunOneFaultOn(mc, t, as, seed, tr, fc, 0)
}

// RunOneFaultOn is RunOneFault on a machine of the given core count:
// cores beyond the test's threads run spin-only sections (CompileOn),
// so the test executes inside a wider SMP with the extra cores
// contributing bus traffic. cores at or below the thread count
// (including 0) is exactly RunOneFault.
func RunOneFaultOn(mc config.Machine, t *Test, as *AllowedSet, seed uint64, tr *trace.Tracer, fc *fault.Config, cores int) RunResult {
	r := &rng{s: seed * 0x2545f4914f6cdd1d}
	var p Perturb
	if seed == 0 {
		p = Perturb{Skew: make([]int, len(t.Threads)), Warm: make([]bool, len(t.Threads))}
	} else {
		p = perturbFor(r, len(t.Threads))
	}
	comp := CompileOn(t, p.Skew, cores)

	opt := system.Options{
		Cores:            len(comp.Inits),
		Seed:             seed,
		TrackConsistency: true,
		MaxCycles:        maxCycles,
		DMAInterval:      p.DMAInterval,
		DMABurst:         2,
		NoStageSkip:      p.NoStageSkip,
		Trace:            tr,
	}
	if fc.Enabled() {
		// Derive a per-run fault seed so runs stay independent but any
		// single (seed, fault seed) pair replays exactly.
		derived := *fc
		derived.Seed = fc.Seed ^ (seed * 0x2545f4914f6cdd1d)
		opt.Fault = &derived
	}
	// The probe hook needs the system, which needs the options: close
	// over a slot filled in after NewCustom.
	var sys *system.System
	if p.ProbeEvery > 0 {
		k := 0
		opt.OnCycle = func(cycle int64) {
			if cycle%p.ProbeEvery == 0 && sys != nil {
				sys.Bus.Probe(comp.Addrs[k%len(comp.Addrs)])
				k++
			}
		}
	}
	s := system.NewCustom(mc, comp.Prog, comp.Inits, opt)
	sys = s
	comp.InitImage(s)
	for c := range comp.Inits {
		if c < len(p.Warm) && p.Warm[c] {
			for _, addr := range comp.Addrs {
				s.Prewarm(c, addr)
			}
		}
	}
	s.Run(comp.MinCommits, opt)

	out, ok := comp.Extract(s)
	res := RunResult{
		Outcome: out,
		Key:     out.Key(),
		OK:      ok,
		Allowed: as.Contains(out),
		Weak:    t.Weak != nil && t.Weak(out),
	}
	if s.Faults != nil {
		res.Faults = s.Faults.Stats
	}
	if ok {
		// Rebuild the constraint graph with the litmus background (the
		// test pre-initializes its locations, so the image's hashed
		// background is wrong exactly there).
		procs, chains := s.Ops()
		bg := as.background()
		img := s.Image
		g := consistency.Build(procs, chains, func(addr uint64) uint64 {
			for _, a := range comp.Addrs {
				if addr&^7 == a {
					return bg(addr)
				}
			}
			return img.Background(addr)
		})
		_, res.Cycle = g.FindCycle()
	}
	if tr != nil {
		for i, v := range out.Loads {
			tr.Emit(trace.Event{
				Cycle: s.CycleNum, Core: -1, Kind: trace.KLitmusOutcome,
				Tag: int64(i), Value: v, Aux: seed,
			})
		}
		forb := uint64(0)
		if ok && !res.Allowed {
			forb = 1
		}
		tr.Emit(trace.Event{
			Cycle: s.CycleNum, Core: -1, Kind: trace.KLitmusOutcome,
			Tag: -1, Value: forb, Aux: seed,
		})
	}
	return res
}

// Verdict aggregates one (test, config) cell of the sweep.
type Verdict struct {
	Test   string `json:"test"`
	Config string `json:"config"`
	Sound  bool   `json:"sound"`
	Runs   int    `json:"runs"`
	// Histogram counts committed outcomes by canonical key.
	Histogram map[string]int `json:"histogram"`
	// Forbidden counts runs whose outcome the SC oracle rejects.
	Forbidden int `json:"forbidden"`
	// WeakHits counts runs matching the test's canonical weak predicate
	// (a subset of Forbidden for well-formed tests).
	WeakHits int `json:"weak_hits"`
	// Cycles counts runs whose constraint graph was cyclic.
	Cycles int `json:"cycles"`
	// Incomplete counts runs that hit the cycle bound before every test
	// load committed (excluded from the histogram and classification).
	Incomplete int `json:"incomplete"`
	// Fault accounting, summed over the cell's runs (zero without -fault):
	// value corruptions injected/caught/escaped, messages dropped or
	// delayed, filter signals suppressed.
	FaultInjected   uint64 `json:"fault_injected,omitempty"`
	FaultDetected   uint64 `json:"fault_detected,omitempty"`
	FaultMissed     uint64 `json:"fault_missed,omitempty"`
	FaultDropped    uint64 `json:"fault_dropped,omitempty"`
	FaultDelayed    uint64 `json:"fault_delayed,omitempty"`
	FaultSuppressed uint64 `json:"fault_suppressed,omitempty"`
	// Error is non-empty when the cell itself failed to run (worker
	// panic past its retries, or wall-clock timeout): an infrastructure
	// failure, distinct from a soundness verdict.
	Error string `json:"error,omitempty"`
}

// Pass reports the cell's verdict: a sound configuration passes when
// no completed run produced a forbidden outcome or a graph cycle; the
// unsound configuration's cell always "passes" individually — whether
// it was caught is a battery-level question (see Caught).
func (v Verdict) Pass() bool {
	if !v.Sound {
		return true
	}
	return v.Forbidden == 0 && v.Cycles == 0 && v.Incomplete == 0
}

// Caught reports whether this cell caught an unsound configuration:
// some run produced an SC-forbidden outcome or a constraint-graph
// cycle.
func (v Verdict) Caught() bool { return v.Forbidden > 0 || v.Cycles > 0 }

// Keys returns the histogram keys, most frequent first (ties by key).
func (v Verdict) Keys() []string {
	keys := make([]string, 0, len(v.Histogram))
	for k := range v.Histogram {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if v.Histogram[keys[i]] != v.Histogram[keys[j]] {
			return v.Histogram[keys[i]] > v.Histogram[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// SweepOptions configures a sweep.
type SweepOptions struct {
	// Tests is the battery subset to run (nil = full Battery).
	Tests []*Test
	// Configs is the machine set (nil = standard Configs).
	Configs []Config
	// Runs is the perturbed executions per (test, config) cell.
	Runs int
	// Workers bounds the worker pool (<=0 = one per runtime.GOMAXPROCS;
	// see par.Workers).
	Workers int
	// Seed offsets every run's perturbation stream.
	Seed uint64
	// Progress, when non-nil, is called after each finished cell.
	Progress func(done, total int, v Verdict)
	// Cores, when positive, runs every test on a machine of this many
	// cores, padding cores beyond a test's threads with spin-only
	// sections (see CompileOn). Zero keeps each test at its natural
	// thread count.
	Cores int
	// Fault, when enabled, injects faults into every run (per-run
	// derived seeds; see RunOneFault).
	Fault *fault.Config
	// Checkpoint, when non-empty, journals completed cells to this JSONL
	// file; re-running with the same path resumes, replaying journaled
	// cells bit-identically instead of re-simulating them.
	Checkpoint string
	// Retries re-attempts a panicked cell this many times.
	Retries int
	// CellTimeout, when positive, abandons a cell at this wall-clock
	// deadline (its verdict carries Error). Nondeterministic; leave 0
	// for reproducible sweeps.
	CellTimeout time.Duration
}

// CellSeed derives the perturbation base seed of the (ti, ci) sweep
// cell from the sweep seed. The derivation decorrelates the streams
// across cells while keeping run i of a cell reproducible in
// isolation; it is shared with the farm service so a farm-executed
// cell is bit-identical to the same cell inside a CLI sweep.
func CellSeed(seed uint64, ti, ci int) uint64 {
	return seed ^ (uint64(ti)<<40 | uint64(ci)<<32)
}

// RunCell executes one (test, config) sweep cell: runs perturbed
// executions seeded from base (see CellSeed), classified against the
// test's allowed set, folded into the cell's verdict. This is the
// farm service's unit of execution as well as Sweep's worker body, so
// the two produce identical verdicts for identical inputs.
func RunCell(t *Test, cfg Config, as *AllowedSet, runs int, base uint64, fc *fault.Config, cores int) Verdict {
	v := Verdict{
		Test: t.Name, Config: cfg.Name, Sound: cfg.Sound,
		Runs: runs, Histogram: make(map[string]int),
	}
	for i := 0; i < runs; i++ {
		res := RunOneFaultOn(cfg.Machine, t, as, base+uint64(i), nil, fc, cores)
		if res.OK {
			v.Histogram[res.Key]++
			if !res.Allowed {
				v.Forbidden++
			}
			if res.Weak {
				v.WeakHits++
			}
			if res.Cycle {
				v.Cycles++
			}
		} else {
			v.Incomplete++
		}
		v.FaultInjected += res.Faults.Injected
		v.FaultDetected += res.Faults.Detected
		v.FaultMissed += res.Faults.Missed
		v.FaultDropped += res.Faults.Dropped
		v.FaultDelayed += res.Faults.Delayed
		v.FaultSuppressed += res.Faults.Suppressed
	}
	return v
}

// Sweep runs the battery across the machine set in a bounded worker
// pool (par.Run) — one job per (test, config) cell, each cell running
// Runs perturbed executions — and returns the verdict matrix in
// battery order (tests outer, configs inner). Cell seeds depend only
// on the cell's (test, config) indices, so the matrix is identical at
// any worker count. A bad checkpoint path or a journal belonging to a
// different sweep is returned as an error (the CLIs map it to the
// exit-code table) rather than panicking.
func Sweep(o SweepOptions) ([]Verdict, error) {
	tests := o.Tests
	if tests == nil {
		tests = Battery()
	}
	cfgs := o.Configs
	if cfgs == nil {
		cfgs = Configs()
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 100
	}

	// The oracle is per-test, shared across the test's row.
	allowed := make([]*AllowedSet, len(tests))
	for i, t := range tests {
		allowed[i] = Allowed(t)
	}

	faultKey := ""
	if o.Fault.Enabled() {
		kinds := make([]string, len(o.Fault.Kinds))
		for i, k := range o.Fault.Kinds {
			kinds[i] = k.String()
		}
		faultKey = fmt.Sprintf("|fault=%s@%g/%d", strings.Join(kinds, ","), o.Fault.Rate, o.Fault.Seed)
	}
	if o.Cores > 0 {
		// Folded into the same suffix as the fault key so pre-existing
		// natural-width journals keep resuming unchanged.
		faultKey += fmt.Sprintf("|cores=%d", o.Cores)
	}
	cellKey := func(ti, ci int) string {
		return fmt.Sprintf("%s|%s|runs=%d|seed=%d%s",
			tests[ti].Name, cfgs[ci].Name, runs, o.Seed, faultKey)
	}
	var journal *par.Journal
	if o.Checkpoint != "" {
		names := make([]string, 0, len(tests)+len(cfgs))
		for _, t := range tests {
			names = append(names, t.Name)
		}
		for _, c := range cfgs {
			names = append(names, c.Name)
		}
		fp := fmt.Sprintf("litmus-v1|runs=%d|seed=%d|%s%s",
			runs, o.Seed, strings.Join(names, ","), faultKey)
		var err error
		if journal, err = par.OpenJournal(o.Checkpoint, fp); err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	verdicts := make([]Verdict, len(tests)*len(cfgs))
	var done int
	var mu sync.Mutex
	// abandoned marks cells the sweep gave up on (timeout): a straggler
	// goroutine that finishes later must not write its verdict slot.
	abandoned := make([]bool, len(verdicts))
	finish := func(cell int, v Verdict) {
		mu.Lock()
		defer mu.Unlock()
		if abandoned[cell] {
			return
		}
		verdicts[cell] = v
		done++
		if o.Progress != nil {
			o.Progress(done, len(verdicts), v)
		}
	}
	var todo []int
	for cell := range verdicts {
		ti, ci := cell/len(cfgs), cell%len(cfgs)
		var v Verdict
		if journal != nil && journal.Lookup(cellKey(ti, ci), &v) {
			finish(cell, v)
			continue
		}
		todo = append(todo, cell)
	}
	failures := par.RunSafe(par.SafeOptions{
		Workers: o.Workers, Retries: o.Retries, Timeout: o.CellTimeout,
		Label: func(j int) string {
			cell := todo[j]
			return cellKey(cell/len(cfgs), cell%len(cfgs))
		},
	}, len(todo), func(j int) error {
		cell := todo[j]
		ti, ci := cell/len(cfgs), cell%len(cfgs)
		v := RunCell(tests[ti], cfgs[ci], allowed[ti], runs, CellSeed(o.Seed, ti, ci), o.Fault, o.Cores)
		if journal != nil {
			if err := journal.Record(cellKey(ti, ci), v); err != nil {
				return err
			}
		}
		finish(cell, v)
		return nil
	})
	mu.Lock()
	for _, f := range failures {
		cell := todo[f.Index]
		ti, ci := cell/len(cfgs), cell%len(cfgs)
		abandoned[cell] = true
		verdicts[cell] = Verdict{
			Test: tests[ti].Name, Config: cfgs[ci].Name,
			Sound: cfgs[ci].Sound, Runs: runs, Error: f.String(),
		}
	}
	mu.Unlock()
	return verdicts, nil
}

// Summary condenses a verdict matrix into the battery-level result.
type Summary struct {
	// SoundOK is true when every sound cell passed.
	SoundOK bool `json:"sound_ok"`
	// UnsoundCaught is true when at least one cell caught each unsound
	// configuration present in the sweep (vacuously true without one).
	UnsoundCaught bool `json:"unsound_caught"`
	// FailedCells lists sound cells that failed, "test/config".
	FailedCells []string `json:"failed_cells,omitempty"`
	// CaughtBy lists unsound-config cells that observed a violation.
	CaughtBy []string `json:"caught_by,omitempty"`
	// Errors lists cells that did not run to completion (worker panic or
	// timeout) — infrastructure failures; the battery verdict cannot be
	// trusted until they are rerun, so callers must exit nonzero.
	Errors []string `json:"errors,omitempty"`
}

// Summarize computes the battery-level verdict: all sound cells clean,
// and every unsound config caught by at least one test.
func Summarize(vs []Verdict) Summary {
	sum := Summary{SoundOK: true}
	unsound := make(map[string]bool) // config name -> caught
	for _, v := range vs {
		if v.Error != "" {
			sum.Errors = append(sum.Errors, v.Test+"/"+v.Config+": "+v.Error)
			continue
		}
		if v.Sound {
			if !v.Pass() {
				sum.SoundOK = false
				sum.FailedCells = append(sum.FailedCells, v.Test+"/"+v.Config)
			}
			continue
		}
		if _, ok := unsound[v.Config]; !ok {
			unsound[v.Config] = false
		}
		if v.Caught() {
			unsound[v.Config] = true
			sum.CaughtBy = append(sum.CaughtBy, v.Test+"/"+v.Config)
		}
	}
	sum.UnsoundCaught = true
	names := make([]string, 0, len(unsound))
	for name := range unsound {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !unsound[name] {
			sum.UnsoundCaught = false
		}
	}
	sort.Strings(sum.FailedCells)
	sort.Strings(sum.CaughtBy)
	return sum
}
