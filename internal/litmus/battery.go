// The standard battery: the canonical two-, three- and four-thread
// litmus tests of the weak-memory literature (SB, MP, LB, S, R, 2+2W,
// WRC, IRIW) plus the coherence tests (CoRR, CoWW) and fully fenced
// variants of the classic trio. Registered like workloads: All() is
// the sweep runner's catalog, ByName the CLI's lookup.

package litmus

// Battery builds the full standard battery. Each call returns fresh
// Test values (they are immutable in practice, but callers may
// annotate).
func Battery() []*Test {
	sb := New("SB", "store buffering: both loads read the initial value", 2).
		Thread(St(X, 1), Ld(Y)).
		Thread(St(Y, 1), Ld(X)).
		WeakWhen(func(o Outcome) bool { return o.Load(0) == 0 && o.Load(1) == 0 })

	mp := New("MP", "message passing: data read stale after flag observed set", 2).
		Thread(St(X, 1), St(Y, 1)).
		Thread(Ld(Y), Ld(X)).
		WeakWhen(func(o Outcome) bool { return o.Load(0) == 1 && o.Load(1) == 0 })

	lb := New("LB", "load buffering: both loads read the other thread's later store", 2).
		Thread(Ld(X), St(Y, 1)).
		Thread(Ld(Y), St(X, 1)).
		WeakWhen(func(o Outcome) bool { return o.Load(0) == 1 && o.Load(1) == 1 })

	s := New("S", "store-to-load: the late store wins coherence yet its thread saw the flag", 2).
		Thread(St(X, 2), St(Y, 1)).
		Thread(Ld(Y), St(X, 1)).
		WeakWhen(func(o Outcome) bool { return o.Load(0) == 1 && o.FinalVal(X) == 2 })

	r := New("R", "write contest: the coherence-winning writer's read still misses the other store", 2).
		Thread(St(X, 1), St(Y, 1)).
		Thread(St(Y, 2), Ld(X)).
		WeakWhen(func(o Outcome) bool { return o.Load(0) == 0 && o.FinalVal(Y) == 2 })

	w22 := New("2+2W", "double write contest: both first writes win coherence", 2).
		Thread(St(X, 1), St(Y, 2)).
		Thread(St(Y, 1), St(X, 2)).
		WeakWhen(func(o Outcome) bool { return o.FinalVal(X) == 1 && o.FinalVal(Y) == 1 })

	wrc := New("WRC", "write-to-read causality: a third thread misses a causally prior store", 2).
		Thread(St(X, 1)).
		Thread(Ld(X), St(Y, 1)).
		Thread(Ld(Y), Ld(X)).
		WeakWhen(func(o Outcome) bool {
			return o.Load(0) == 1 && o.Load(1) == 1 && o.Load(2) == 0
		})

	iriw := New("IRIW", "independent reads of independent writes observed in opposite orders", 2).
		Thread(St(X, 1)).
		Thread(St(Y, 1)).
		Thread(Ld(X), Ld(Y)).
		Thread(Ld(Y), Ld(X)).
		WeakWhen(func(o Outcome) bool {
			return o.Load(0) == 1 && o.Load(1) == 0 &&
				o.Load(2) == 1 && o.Load(3) == 0
		})

	corr := New("CoRR", "coherent read-read: same-address loads observe writes out of order", 1).
		Thread(St(X, 1)).
		Thread(Ld(X), Ld(X)).
		WeakWhen(func(o Outcome) bool { return o.Load(0) == 1 && o.Load(1) == 0 })

	// CoWW with an observer thread: the two same-address stores must be
	// seen in program (= coherence) order, never regressing.
	coww := New("CoWW", "coherent write-write: an observer sees the same-address stores regress", 1).
		Thread(St(X, 1), St(X, 2)).
		Thread(Ld(X), Ld(X)).
		WeakWhen(func(o Outcome) bool {
			rank := func(v uint64) int { return int(v) } // 0 < 1 < 2 in write order
			return rank(o.Load(0)) > rank(o.Load(1)) || o.FinalVal(X) != 2
		})

	return []*Test{
		sb, sb.Fenced(),
		mp, mp.Fenced(),
		lb, lb.Fenced(),
		s, r, w22, wrc, iriw, corr, coww,
	}
}

// ByName returns the battery member with the given name.
func ByName(name string) (*Test, bool) {
	for _, t := range Battery() {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}
