// The SC outcome oracle: enumerate every sequentially consistent
// interleaving of a (small) litmus test to derive the set of outcomes
// SC allows, keeping one witness interleaving per outcome so each
// allowed outcome can be cross-checked against the constraint-graph
// checker (DESIGN.md §8): a witness execution must always produce an
// acyclic graph.

package litmus

import (
	"sort"

	"vbmo/internal/consistency"
)

// AllowedSet is the oracle's result: every SC-reachable outcome keyed
// by Outcome.Key, plus one witness interleaving per outcome (the
// sequence of thread indices that realized it).
type AllowedSet struct {
	Test     *Test
	Outcomes map[string]Outcome
	Witness  map[string][]int
}

// Allowed enumerates all sequentially consistent interleavings of the
// test — each operation atomic, program order preserved, fences inert
// (SC already orders everything) — and returns the allowed-outcome
// set. Litmus tests are tiny (a handful of operations per thread), so
// exhaustive enumeration is cheap: the largest battery member explores
// a few thousand interleavings.
func Allowed(t *Test) *AllowedSet {
	as := &AllowedSet{
		Test:     t,
		Outcomes: make(map[string]Outcome),
		Witness:  make(map[string][]int),
	}
	mem := make([]uint64, t.Locs)
	for i := range mem {
		mem[i] = t.InitVal(Loc(i))
	}
	idx := make([]int, len(t.Threads))
	base := t.loadBase()
	slot := make([]int, len(t.Threads)) // next load slot per thread
	scratch := Outcome{Loads: make([]uint64, t.NumLoads()), Final: mem}
	var order []int

	var rec func()
	rec = func() {
		done := true
		for th := range t.Threads {
			if idx[th] >= len(t.Threads[th]) {
				continue
			}
			done = false
			op := t.Threads[th][idx[th]]
			idx[th]++
			order = append(order, th)
			var savedMem, savedLoad uint64
			switch op.Kind {
			case OpStore:
				savedMem = mem[op.Loc]
				mem[op.Loc] = op.Val
			case OpLoad:
				savedLoad = scratch.Loads[base[th]+slot[th]]
				scratch.Loads[base[th]+slot[th]] = mem[op.Loc]
				slot[th]++
			}
			rec()
			switch op.Kind {
			case OpStore:
				mem[op.Loc] = savedMem
			case OpLoad:
				slot[th]--
				scratch.Loads[base[th]+slot[th]] = savedLoad
			}
			order = order[:len(order)-1]
			idx[th]--
		}
		if done {
			key := scratch.Key()
			if _, ok := as.Outcomes[key]; !ok {
				as.Outcomes[key] = scratch.clone()
				as.Witness[key] = append([]int(nil), order...)
			}
		}
	}
	rec()
	return as
}

// Contains reports whether the outcome is SC-allowed.
func (as *AllowedSet) Contains(o Outcome) bool {
	_, ok := as.Outcomes[o.Key()]
	return ok
}

// Keys returns the allowed outcome keys in sorted order.
func (as *AllowedSet) Keys() []string {
	out := make([]string, 0, len(as.Outcomes))
	for k := range as.Outcomes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WeakAllowed reports whether the test's canonical weak outcome is
// inside the SC-allowed set (it never should be for a well-formed
// test; the battery test asserts this).
func (as *AllowedSet) WeakAllowed() bool {
	if as.Test.Weak == nil {
		return false
	}
	for _, k := range as.Keys() {
		if as.Test.Weak(as.Outcomes[k]) {
			return true
		}
	}
	return false
}

// WitnessGraph replays the witness interleaving for the given allowed
// outcome into the constraint checker's input form and builds the
// graph. The oracle and the checker are independent implementations of
// "is this execution SC", so an acyclic result for every allowed
// outcome is the cross-check that keeps both honest.
func (as *AllowedSet) WitnessGraph(key string) *consistency.Graph {
	order, ok := as.Witness[key]
	if !ok {
		return nil
	}
	t := as.Test
	procs := make([][]consistency.Op, len(t.Threads))
	chains := make(map[uint64][]consistency.Versioned)
	writer := make([]consistency.Writer, t.Locs) // current writer per loc
	mem := make([]uint64, t.Locs)
	for i := range mem {
		mem[i] = t.InitVal(Loc(i))
	}
	idx := make([]int, len(t.Threads))
	seq := make([]uint64, len(t.Threads)) // per-proc store sequence
	for _, th := range order {
		op := t.Threads[th][idx[th]]
		idx[th]++
		addr := LocAddr(Loc(op.Loc))
		switch op.Kind {
		case OpStore:
			seq[th]++
			w := consistency.MakeWriter(th, seq[th])
			writer[op.Loc] = w
			mem[op.Loc] = op.Val
			chains[addr] = append(chains[addr], consistency.Versioned{W: w, Value: op.Val})
			procs[th] = append(procs[th], consistency.Op{
				Proc: th, Index: len(procs[th]), Kind: consistency.OpStore,
				Addr: addr, Value: op.Val, Self: w,
			})
		case OpLoad:
			procs[th] = append(procs[th], consistency.Op{
				Proc: th, Index: len(procs[th]), Kind: consistency.OpLoad,
				Addr: addr, Value: mem[op.Loc], ReadsFrom: writer[op.Loc],
			})
		}
	}
	return consistency.Build(procs, chains, as.background())
}

// background returns the checker background function for this test:
// tested locations read their declared initial values, everything else
// reads zero (no other address appears in witness executions).
func (as *AllowedSet) background() func(addr uint64) uint64 {
	t := as.Test
	return func(addr uint64) uint64 {
		for loc := 0; loc < t.Locs; loc++ {
			if LocAddr(Loc(loc)) == addr&^7 {
				return t.InitVal(Loc(loc))
			}
		}
		return 0
	}
}
