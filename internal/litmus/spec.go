// Package litmus implements a declarative memory-ordering litmus-test
// subsystem: small named tests (SB, MP, IRIW, ...) expressed over a
// tiny builder API, a compiler from test to multiprocessor machine
// programs, an SC oracle that enumerates every sequentially consistent
// interleaving to derive the allowed-outcome set, and a parallel sweep
// runner that executes each test across machine configurations, seeds
// and timing perturbations.
//
// Litmus tests turn the repo's soundness argument from "no constraint-
// graph cycle was found on big synthetic runs" (DESIGN.md §8) into
// "every canonical consistency test passes on every sound config and
// the deliberately mis-composed NUS-alone filter (paper §3.3) is
// caught": the instrument pins down exactly which reorderings a memory
// system admits, the way QED checks bounded executions for hardware
// MCM compliance.
package litmus

import (
	"fmt"
	"strings"
)

// Loc names a shared memory location of a test (0-based). The compiler
// maps each location to its own cache block in the shared segment, so
// two locations never exhibit false sharing unless a test asks for it.
type Loc int

// Conventional location names for two- and three-location tests.
const (
	X Loc = iota
	Y
	Z
)

// OpKind distinguishes the three litmus operations.
type OpKind int

const (
	// OpStore writes Val to Loc.
	OpStore OpKind = iota
	// OpLoad reads Loc into the next observation slot of its thread.
	OpLoad
	// OpFence is a full memory barrier (the ISA's membar).
	OpFence
)

// Op is one operation of one litmus thread.
type Op struct {
	Kind OpKind
	Loc  Loc
	Val  uint64 // store value (OpStore only)
}

// St builds a store of val to loc.
func St(loc Loc, val uint64) Op { return Op{Kind: OpStore, Loc: loc, Val: val} }

// Ld builds a load of loc.
func Ld(loc Loc) Op { return Op{Kind: OpLoad, Loc: loc} }

// Fence builds a full memory barrier.
func Fence() Op { return Op{Kind: OpFence} }

// Test is one declarative litmus test: named per-thread operation
// sequences over a small set of shared locations, an initial shared-
// memory state, and an optional predicate naming the canonical weak
// (non-SC) outcome the test is designed to detect. Outcome
// classification does not depend on Weak — the SC oracle derives the
// full allowed set — but verdict reports use it to say which weak
// behaviour was (or was not) observed.
type Test struct {
	// Name is the test's conventional name ("SB", "MP", "IRIW", ...).
	Name string
	// Doc is a one-line description of what the test detects.
	Doc string
	// Locs is the number of shared locations (X, Y, ... up to Locs-1).
	Locs int
	// Init is the initial value of each location (nil = all zeros).
	Init []uint64
	// Threads holds each thread's program-ordered operations.
	Threads [][]Op
	// Weak, when non-nil, recognizes the canonical forbidden outcome.
	Weak func(Outcome) bool
}

// New creates an empty test over locs shared locations.
func New(name, doc string, locs int) *Test {
	return &Test{Name: name, Doc: doc, Locs: locs}
}

// Thread appends one thread with the given operations and returns the
// test for chaining.
func (t *Test) Thread(ops ...Op) *Test {
	t.Threads = append(t.Threads, ops)
	return t
}

// WeakWhen sets the canonical-weak-outcome predicate and returns the
// test for chaining.
func (t *Test) WeakWhen(p func(Outcome) bool) *Test {
	t.Weak = p
	return t
}

// InitVal returns loc's initial value.
func (t *Test) InitVal(loc Loc) uint64 {
	if int(loc) < len(t.Init) {
		return t.Init[int(loc)]
	}
	return 0
}

// NumLoads returns the number of load operations across all threads —
// the length of every Outcome.Loads for this test.
func (t *Test) NumLoads() int {
	n := 0
	for _, th := range t.Threads {
		for _, op := range th {
			if op.Kind == OpLoad {
				n++
			}
		}
	}
	return n
}

// loadBase returns, per thread, the flattened observation-slot index of
// its first load (thread-major, program order within a thread).
func (t *Test) loadBase() []int {
	base := make([]int, len(t.Threads))
	n := 0
	for i, th := range t.Threads {
		base[i] = n
		for _, op := range th {
			if op.Kind == OpLoad {
				n++
			}
		}
	}
	return base
}

// Fenced derives the fully fenced variant of the test: a Fence after
// every operation but the last of each thread. The load layout (and so
// the Weak predicate, which is inherited) is unchanged.
func (t *Test) Fenced() *Test {
	out := &Test{
		Name: t.Name + "+fences",
		Doc:  t.Doc + " (membar between every pair of accesses)",
		Locs: t.Locs,
		Init: t.Init,
		Weak: t.Weak,
	}
	for _, th := range t.Threads {
		var ops []Op
		for i, op := range th {
			ops = append(ops, op)
			if i < len(th)-1 {
				ops = append(ops, Fence())
			}
		}
		out.Threads = append(out.Threads, ops)
	}
	return out
}

// Outcome is one execution's observable result: every load's value
// (thread-major, program order within a thread) and the final value of
// every location.
type Outcome struct {
	Loads []uint64
	Final []uint64
}

// Load returns the value observed by flattened load slot i.
func (o Outcome) Load(i int) uint64 { return o.Loads[i] }

// FinalVal returns the final value of loc.
func (o Outcome) FinalVal(loc Loc) uint64 { return o.Final[int(loc)] }

// Key renders the outcome as a canonical histogram key, e.g.
// "r=1,0 m=1,1" (observed load values, then final memory values).
func (o Outcome) Key() string {
	var b strings.Builder
	b.WriteString("r=")
	b.WriteString(joinVals(o.Loads))
	b.WriteString(" m=")
	b.WriteString(joinVals(o.Final))
	return b.String()
}

func joinVals(vs []uint64) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}

// clone copies the outcome (the enumerator mutates its scratch).
func (o Outcome) clone() Outcome {
	return Outcome{
		Loads: append([]uint64(nil), o.Loads...),
		Final: append([]uint64(nil), o.Final...),
	}
}
