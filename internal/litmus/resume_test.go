package litmus

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vbmo/internal/fault"
)

// sweepForResume is the shared scope: two tests, all configs, fault
// injection on (so the fault counters are part of what must survive the
// journal round trip).
func resumeOpts(t *testing.T, checkpoint string) SweepOptions {
	t.Helper()
	var tests []*Test
	for _, name := range []string{"SB", "MP"} {
		tt, ok := ByName(name)
		if !ok {
			t.Fatalf("no test %s", name)
		}
		tests = append(tests, tt)
	}
	return SweepOptions{
		Tests: tests, Configs: Configs(),
		Runs: 40, Workers: 4, Seed: 1,
		Fault: &fault.Config{
			Kinds: []fault.Kind{fault.LoadValue},
			Rate:  0.05, Seed: 11,
		},
		Checkpoint: checkpoint,
	}
}

// mustSweep fails the test on a sweep infrastructure error.
func mustSweep(t *testing.T, o SweepOptions) []Verdict {
	t.Helper()
	vs, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// TestSweepResumeDeterminism: verdicts from a sweep resumed off a
// partially-written journal must be bit-identical to an uninterrupted
// sweep, fault counters included.
func TestSweepResumeDeterminism(t *testing.T) {
	clean := mustSweep(t, resumeOpts(t, ""))

	journal := filepath.Join(t.TempDir(), "litmus.jsonl")
	full := mustSweep(t, resumeOpts(t, journal))
	if !reflect.DeepEqual(clean, full) {
		t.Fatal("journaled sweep diverges from plain sweep")
	}

	// Tear the journal: header + first third of the records, then a
	// torn trailing line.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	start := 0
	for i, c := range raw {
		if c == '\n' {
			lines = append(lines, raw[start:i+1])
			start = i + 1
		}
	}
	if len(lines) < 4 {
		t.Fatalf("journal too small to tear (%d lines)", len(lines))
	}
	var torn []byte
	for _, l := range lines[:1+(len(lines)-1)/3] {
		torn = append(torn, l...)
	}
	torn = append(torn, []byte(`{"key":"torn"`)...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := mustSweep(t, resumeOpts(t, journal))
	if !reflect.DeepEqual(clean, resumed) {
		for i := range clean {
			if !reflect.DeepEqual(clean[i], resumed[i]) {
				t.Errorf("verdict %d diverges:\n clean   %+v\n resumed %+v", i, clean[i], resumed[i])
			}
		}
		t.Fatal("resumed sweep diverges from uninterrupted sweep")
	}
}

// TestSweepFaultSeedIsolation: the same sweep with a different fault
// seed must (at this rate) interfere differently, proving per-run fault
// streams actually derive from the configured seed rather than being
// shared or ignored.
func TestSweepFaultSeedIsolation(t *testing.T) {
	a := mustSweep(t, resumeOpts(t, ""))
	o := resumeOpts(t, "")
	o.Fault.Seed = 999
	b := mustSweep(t, o)
	var ia, ib uint64
	for i := range a {
		ia += a[i].FaultInjected
		ib += b[i].FaultInjected
	}
	if ia == 0 || ib == 0 {
		t.Fatalf("no injections (a=%d b=%d)", ia, ib)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different fault seeds produced identical sweeps")
	}
}
