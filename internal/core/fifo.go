// Package core implements the paper's primary contribution: value-based
// memory ordering (Cain & Lipasti, ISCA 2004). It replaces the
// associative load queue with a plain FIFO (no CAM, no search ports) and
// enforces both uniprocessor RAW dependences and multiprocessor memory
// consistency by re-executing selected loads in program order just
// before commit and comparing the replayed value against the premature
// value. Four filtering heuristics keep the replay rate near 0.02 per
// committed instruction:
//
//   - no-unresolved-store (NUS): replay loads that issued past an older
//     store with an unresolved address (uniprocessor RAW safety);
//   - no-reorder: replay loads that issued while prior memory operations
//     were incomplete (the only filter that is sound in isolation);
//   - no-recent-miss (NRM): replay loads that were in the instruction
//     window when a block entered the local hierarchy from an external
//     source (incoming constraint-graph edge);
//   - no-recent-snoop (NRS): replay loads that were in the window when an
//     external invalidation was observed (outgoing WAR edge).
//
// NRM and NRS must each be paired with NUS (paper §3.3); the Engine
// enforces that composition.
package core

// FIFOEntry is one in-flight load in the replay machine's load queue.
// Unlike the associative queue it stores the premature value — needed by
// the compare stage — but requires no address CAM.
type FIFOEntry struct {
	Tag  int64
	PC   uint64
	Addr uint64
	// Value is the premature (out-of-order) load value.
	Value  uint64
	Issued bool
	// Forwarded is true when the value came from the store queue.
	Forwarded bool
	// NUS is set when the load issued while an older store's address
	// was unresolved (the no-unresolved-store filter's trigger).
	NUS bool
	// Reordered is set when the load issued while prior memory
	// operations were incomplete (the no-reorder filter's trigger).
	Reordered bool
	// NoReplay implements forward-progress rule 3: a dynamic load that
	// already caused a replay squash is not replayed again.
	NoReplay bool
	// ValuePredicted marks loads whose consumers ran on a predicted
	// value; such loads must always replay — the compare stage is
	// their verification (and what keeps value prediction consistent
	// in multiprocessors; paper §1).
	ValuePredicted bool
	// Replayed is set once the load has passed the replay stage.
	Replayed bool
}

// FIFOQueue is the non-associative load queue: a simple in-order buffer
// with head/tail access only. Its capacity can scale with the reorder
// buffer because nothing in it is searched.
//
// The tags live in a dense parallel array (struct-of-arrays, DESIGN.md
// §12): Find, Remove and Squash scan one int64 per load instead of
// striding over the ten-word FIFOEntry payload, which is only touched
// for the entry actually addressed. Both slices are preallocated to
// capacity and their indices always align.
type FIFOQueue struct {
	tags    []int64
	entries []FIFOEntry
	cap     int
}

// NewFIFOQueue creates a queue with the given capacity.
func NewFIFOQueue(capacity int) *FIFOQueue {
	return &FIFOQueue{
		cap:     capacity,
		tags:    make([]int64, 0, capacity),
		entries: make([]FIFOEntry, 0, capacity),
	}
}

// Len returns the occupancy.
func (q *FIFOQueue) Len() int { return len(q.tags) }

// Full reports whether another load can dispatch.
func (q *FIFOQueue) Full() bool { return len(q.tags) >= q.cap }

// Insert appends a load at dispatch, in program order.
func (q *FIFOQueue) Insert(tag int64, pc uint64) bool {
	if q.Full() {
		return false
	}
	if n := len(q.tags); n > 0 && q.tags[n-1] >= tag {
		panic("core: load tags must be inserted in program order")
	}
	q.tags = append(q.tags, tag)
	q.entries = append(q.entries, FIFOEntry{Tag: tag, PC: pc})
	return true
}

// Find returns the entry with the given tag, or nil.
//
//vbr:hotpath
func (q *FIFOQueue) Find(tag int64) *FIFOEntry {
	for i, t := range q.tags {
		if t == tag {
			return &q.entries[i]
		}
	}
	return nil
}

// Head returns the oldest entry, or nil.
func (q *FIFOQueue) Head() *FIFOEntry {
	if len(q.entries) == 0 {
		return nil
	}
	return &q.entries[0]
}

// Remove deletes the load with the given tag (at commit).
func (q *FIFOQueue) Remove(tag int64) {
	for i, t := range q.tags {
		if t == tag {
			q.tags = append(q.tags[:i], q.tags[i+1:]...)
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return
		}
	}
}

// Squash removes every load with tag >= fromTag.
func (q *FIFOQueue) Squash(fromTag int64) {
	for i, t := range q.tags {
		if t >= fromTag {
			q.tags = q.tags[:i]
			q.entries = q.entries[:i]
			return
		}
	}
}
