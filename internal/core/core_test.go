package core

import (
	"testing"
	"testing/quick"
)

func TestFIFOInsertOrderAndCapacity(t *testing.T) {
	q := NewFIFOQueue(2)
	if !q.Insert(1, 0x10) || !q.Insert(5, 0x20) {
		t.Fatal("inserts failed")
	}
	if q.Insert(9, 0x30) {
		t.Error("full queue accepted insert")
	}
	if q.Len() != 2 || !q.Full() {
		t.Errorf("Len=%d Full=%v", q.Len(), q.Full())
	}
	if h := q.Head(); h == nil || h.Tag != 1 {
		t.Errorf("Head = %+v", q.Head())
	}
}

func TestFIFOOutOfOrderInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order insert should panic")
		}
	}()
	q := NewFIFOQueue(4)
	q.Insert(5, 0)
	q.Insert(2, 0)
}

func TestFIFOFindRemoveSquash(t *testing.T) {
	q := NewFIFOQueue(8)
	for i := int64(1); i <= 5; i++ {
		q.Insert(i, uint64(i)*4)
	}
	if e := q.Find(3); e == nil || e.PC != 12 {
		t.Errorf("Find(3) = %+v", e)
	}
	if q.Find(99) != nil {
		t.Error("Find of absent tag should be nil")
	}
	q.Remove(1)
	q.Squash(4)
	if q.Len() != 2 || q.Head().Tag != 2 {
		t.Errorf("after remove+squash: len=%d head=%+v", q.Len(), q.Head())
	}
	empty := NewFIFOQueue(2)
	if empty.Head() != nil {
		t.Error("empty Head should be nil")
	}
}

func TestReplayAllReplaysEverything(t *testing.T) {
	e := NewEngine(ReplayAll, 8)
	en := &FIFOEntry{Tag: 1}
	if !e.ShouldReplay(en) {
		t.Error("replay-all must replay")
	}
	en2 := &FIFOEntry{Tag: 2, NUS: true, Reordered: true}
	if !e.ShouldReplay(en2) {
		t.Error("replay-all must replay flagged loads too")
	}
	if e.Stats.LoadsSeen != 2 || e.Stats.Filtered != 0 {
		t.Errorf("stats: %+v", e.Stats)
	}
}

func TestNoReorderFilter(t *testing.T) {
	e := NewEngine(NoReorder, 8)
	if e.ShouldReplay(&FIFOEntry{Tag: 1}) {
		t.Error("in-order load must be filtered")
	}
	if !e.ShouldReplay(&FIFOEntry{Tag: 2, Reordered: true}) {
		t.Error("reordered load must replay")
	}
	if e.Stats.Filtered != 1 {
		t.Errorf("Filtered = %d", e.Stats.Filtered)
	}
}

func TestNUSComposition(t *testing.T) {
	// NRS/NRM replay when either the NUS flag or the event window says
	// so (paper §3.3).
	for _, f := range []Filter{NoRecentMiss, NoRecentSnoop} {
		e := NewEngine(f, 8)
		if e.ShouldReplay(&FIFOEntry{Tag: 1}) {
			t.Errorf("%v: quiet window, no NUS: filtered expected", f)
		}
		if !e.ShouldReplay(&FIFOEntry{Tag: 2, NUS: true}) {
			t.Errorf("%v: NUS load must replay regardless of window", f)
		}
		e.NoteExternalEvent(10)
		if !e.ShouldReplay(&FIFOEntry{Tag: 3}) {
			t.Errorf("%v: open window must force replay", f)
		}
	}
}

func TestEventWindowOpensAndCloses(t *testing.T) {
	e := NewEngine(NoRecentSnoop, 8)
	e.NoteExternalEvent(10) // youngest in-window load is tag 10
	if !e.WindowOpen() {
		t.Fatal("window should open")
	}
	// Loads older than 10 replay and do not close the window.
	en := &FIFOEntry{Tag: 7}
	if !e.ShouldReplay(en) {
		t.Error("tag 7 must replay")
	}
	e.OnReplayComplete(en, en.Value)
	if !e.WindowOpen() {
		t.Error("window must stay open until the flagged load drains")
	}
	// The flagged load replays: window closes.
	en10 := &FIFOEntry{Tag: 10}
	e.ShouldReplay(en10)
	e.OnReplayComplete(en10, en10.Value)
	if e.WindowOpen() {
		t.Error("window should close after flagged load replays")
	}
	// Subsequent loads are filtered again.
	if e.ShouldReplay(&FIFOEntry{Tag: 11}) {
		t.Error("closed window should filter")
	}
}

func TestEventWindowClosedByFilteredLoadDraining(t *testing.T) {
	e := NewEngine(NoRecentMiss, 8)
	e.NoteExternalEvent(4)
	// A load past the flagged tag drains without replaying (e.g. it
	// replayed for other reasons or the window load was filtered by
	// rule 3): OnLoadPassedReplayStage must still close the window.
	e.OnLoadPassedReplayStage(5)
	if e.WindowOpen() {
		t.Error("window should close when a load >= ageTag drains")
	}
}

func TestEventWindowReLatch(t *testing.T) {
	e := NewEngine(NoRecentSnoop, 8)
	e.NoteExternalEvent(10)
	e.NoteExternalEvent(20) // later event re-latches
	en := &FIFOEntry{Tag: 10}
	e.ShouldReplay(en)
	e.OnReplayComplete(en, 0)
	if !e.WindowOpen() {
		t.Error("window latched to 20 must survive tag 10 draining")
	}
}

func TestNoteEventWithNoLoadsInWindow(t *testing.T) {
	e := NewEngine(NoRecentSnoop, 8)
	e.NoteExternalEvent(-1)
	if e.WindowOpen() {
		t.Error("event with empty window should be ignored")
	}
	if e.Stats.WindowEvents != 0 {
		t.Error("ignored event should not count")
	}
}

func TestMismatchDetectionAndClassification(t *testing.T) {
	e := NewEngine(ReplayAll, 8)
	en := &FIFOEntry{Tag: 1, Value: 42, NUS: true}
	if e.OnReplayComplete(en, 42) {
		t.Error("matching value must not squash")
	}
	en2 := &FIFOEntry{Tag: 2, Value: 42, NUS: true}
	if !e.OnReplayComplete(en2, 43) {
		t.Error("mismatch must squash")
	}
	en3 := &FIFOEntry{Tag: 3, Value: 7}
	if !e.OnReplayComplete(en3, 8) {
		t.Error("mismatch must squash")
	}
	s := e.Stats
	if s.Replays != 3 || s.Comparisons != 3 {
		t.Errorf("replay counts: %+v", s)
	}
	if s.Mismatches != 2 || s.MismatchesNUS != 1 {
		t.Errorf("mismatch classification: %+v", s)
	}
	if s.ReplaysNUS != 2 {
		t.Errorf("ReplaysNUS = %d", s.ReplaysNUS)
	}
}

func TestRule3SkipsReplay(t *testing.T) {
	e := NewEngine(ReplayAll, 8)
	en := &FIFOEntry{Tag: 1, NoReplay: true}
	if e.ShouldReplay(en) {
		t.Error("rule-3-marked load must not replay")
	}
	if e.Stats.Rule3Skips != 1 {
		t.Errorf("Rule3Skips = %d", e.Stats.Rule3Skips)
	}
}

func TestOnSquashReanchorsWindow(t *testing.T) {
	e := NewEngine(NoRecentSnoop, 8)
	e.Queue.Insert(5, 0)
	e.Queue.Insert(12, 0)
	e.NoteExternalEvent(12)
	e.OnSquash(10) // the flagged load (12) dies
	if e.Queue.Len() != 1 {
		t.Error("squash should drop load 12 from the queue")
	}
	if !e.WindowOpen() {
		t.Fatal("window must stay open across the squash")
	}
	// Surviving older load still replays...
	if !e.ShouldReplay(&FIFOEntry{Tag: 5}) {
		t.Error("pre-squash load must still replay")
	}
	// ...and the first post-squash load closes the window when it
	// drains.
	e.OnLoadPassedReplayStage(10)
	if e.WindowOpen() {
		t.Error("window should close at the re-anchored tag")
	}
}

func TestOnSquashKeepsOlderAnchor(t *testing.T) {
	e := NewEngine(NoRecentSnoop, 8)
	e.NoteExternalEvent(5)
	e.OnSquash(10) // flagged load 5 survives
	if !e.WindowOpen() {
		t.Fatal("window must stay open")
	}
	e.OnLoadPassedReplayStage(5)
	if e.WindowOpen() {
		t.Error("surviving anchor should close normally")
	}
}

func TestReplaysPerCommitted(t *testing.T) {
	e := NewEngine(ReplayAll, 8)
	en := &FIFOEntry{Tag: 1}
	e.OnReplayComplete(en, 0)
	if r := e.ReplaysPerCommitted(50); r != 0.02 {
		t.Errorf("ReplaysPerCommitted = %v, want 0.02", r)
	}
	if e.ReplaysPerCommitted(0) != 0 {
		t.Error("zero committed should yield 0")
	}
}

func TestFilterStringsAndEventNeeds(t *testing.T) {
	for _, f := range []Filter{ReplayAll, NoReorder, NoRecentMiss, NoRecentSnoop, NUSOnly} {
		if f.String() == "" {
			t.Errorf("filter %d unnamed", f)
		}
	}
	if !NoRecentMiss.NeedsMissEvents() || NoRecentMiss.NeedsSnoopEvents() {
		t.Error("NRM event needs wrong")
	}
	if !NoRecentSnoop.NeedsSnoopEvents() || NoRecentSnoop.NeedsMissEvents() {
		t.Error("NRS event needs wrong")
	}
	if ReplayAll.NeedsMissEvents() || ReplayAll.NeedsSnoopEvents() {
		t.Error("replay-all needs no events")
	}
}

func TestFIFOQueueProperty(t *testing.T) {
	// Property: after any sequence of inserts with increasing tags and
	// a squash at k, no entry with tag >= k remains and order is
	// preserved.
	err := quick.Check(func(n uint8, k uint8) bool {
		q := NewFIFOQueue(300)
		for i := int64(0); i < int64(n); i++ {
			q.Insert(i, uint64(i))
		}
		q.Squash(int64(k))
		last := int64(-1)
		for i := 0; i < q.Len(); i++ {
			e := q.entries[i]
			if e.Tag >= int64(k) || e.Tag <= last {
				return false
			}
			last = e.Tag
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
