package core

import (
	"fmt"

	"vbmo/internal/trace"
)

// Filter selects the replay-reduction configuration evaluated in the
// paper's Figure 5/6.
type Filter int

const (
	// ReplayAll replays every committed load (no filtering).
	ReplayAll Filter = iota
	// NoReorder replays only loads that issued while prior memory
	// operations were incomplete. Sound in isolation (paper §3.3).
	NoReorder
	// NoRecentMiss pairs the no-recent-miss consistency filter with the
	// no-unresolved-store RAW filter.
	NoRecentMiss
	// NoRecentSnoop pairs the no-recent-snoop consistency filter with
	// the no-unresolved-store RAW filter. The paper's best
	// configuration.
	NoRecentSnoop
	// NUSOnly is the no-unresolved-store filter in isolation. It is
	// deliberately unsound for multiprocessors (paper §3.3) and exists
	// so the constraint-graph checker can demonstrate why the filters
	// must be composed.
	NUSOnly
)

// String names the filter configuration.
func (f Filter) String() string {
	switch f {
	case ReplayAll:
		return "replay-all"
	case NoReorder:
		return "no-reorder"
	case NoRecentMiss:
		return "no-recent-miss"
	case NoRecentSnoop:
		return "no-recent-snoop"
	case NUSOnly:
		return "nus-only"
	}
	return fmt.Sprintf("filter(%d)", int(f))
}

// NeedsMissEvents reports whether the filter consumes external-fill
// notifications.
func (f Filter) NeedsMissEvents() bool { return f == NoRecentMiss }

// NeedsSnoopEvents reports whether the filter consumes external-
// invalidation (and castout) notifications.
func (f Filter) NeedsSnoopEvents() bool { return f == NoRecentSnoop }

// Stats counts the replay engine's events; the Figure 6 bandwidth
// breakdown and the §5.3 power model read these.
type Stats struct {
	// LoadsSeen counts loads that flowed through the replay stage.
	LoadsSeen uint64
	// Replays counts replay cache accesses performed.
	Replays uint64
	// ReplaysNUS counts replays required by the no-unresolved-store
	// condition (Figure 6's "RAW-needed" segment); the rest are
	// consistency-only replays.
	ReplaysNUS uint64
	// Comparisons counts word-sized value comparisons (equals Replays;
	// kept separate for the energy model's clarity).
	Comparisons uint64
	// Filtered counts loads whose replay was filtered out.
	Filtered uint64
	// Mismatches counts replay values that differed from the premature
	// value (each causes a squash).
	Mismatches uint64
	// MismatchesNUS counts mismatches on NUS-flagged loads
	// (uniprocessor RAW violations); the rest are consistency
	// violations.
	MismatchesNUS uint64
	// WindowEvents counts external events (snoops or misses, per the
	// filter) that opened a replay window.
	WindowEvents uint64
	// Rule3Skips counts replays suppressed by forward-progress rule 3.
	Rule3Skips uint64
}

// Engine is the value-based replay engine: it decides which loads must
// replay, tracks the external-event window of the no-recent-miss /
// no-recent-snoop filters, and classifies replay outcomes.
//
// The engine implements the paper's window mechanism literally (§3.1):
// an external event sets a "need-replay" flag and latches the age (tag)
// of the youngest load currently in the instruction window; every load
// reaching the replay stage while the flag is set must replay; when the
// latched load itself passes the replay stage the flag clears.
type Engine struct {
	// Filter is the active configuration.
	Filter Filter
	// Queue is the machine's FIFO load queue.
	Queue *FIFOQueue

	flag   bool
	ageTag int64

	Stats Stats
}

// NewEngine creates a replay engine with the given filter and load
// queue capacity.
func NewEngine(f Filter, lqCapacity int) *Engine {
	return &Engine{Filter: f, Queue: NewFIFOQueue(lqCapacity)}
}

// NoteExternalEvent records an external invalidation (no-recent-snoop)
// or external-source fill (no-recent-miss). youngestLoadTag is the tag
// of the youngest load in the instruction window at this moment; pass
// -1 when no load is in flight (the event then affects nothing).
func (e *Engine) NoteExternalEvent(youngestLoadTag int64) {
	if youngestLoadTag < 0 {
		return
	}
	e.Stats.WindowEvents++
	e.flag = true
	e.ageTag = youngestLoadTag
}

// WindowOpen reports whether the external-event replay window is open.
func (e *Engine) WindowOpen() bool { return e.flag }

// ShouldReplay decides whether the load must replay, per the active
// filter. It must be called exactly once per load reaching the replay
// stage (it maintains the statistics used by Figure 6).
func (e *Engine) ShouldReplay(en *FIFOEntry) bool {
	replay, _ := e.Decide(en)
	return replay
}

// Decide is ShouldReplay with the decision's provenance: which filter
// demanded the replay, or why it was skipped, as a trace reason. The
// same exactly-once contract applies (Decide and ShouldReplay maintain
// the same statistics; call one of them, once, per load).
func (e *Engine) Decide(en *FIFOEntry) (bool, trace.Reason) {
	e.Stats.LoadsSeen++
	if en.NoReplay {
		// Rule 3: a load that already caused a replay squash must not
		// replay again, ensuring forward progress under contention.
		e.Stats.Rule3Skips++
		return false, trace.RRule3
	}
	if en.ValuePredicted {
		// Value-predicted loads are verified by the compare stage;
		// no filter may skip them.
		return true, trace.RVPredVerify
	}
	replay, why := false, trace.RFiltered
	switch e.Filter {
	case ReplayAll:
		replay, why = true, trace.RReplayAll
	case NoReorder:
		if en.Reordered {
			replay, why = true, trace.RReordered
		}
	case NoRecentMiss, NoRecentSnoop:
		// Composition rule (§3.3): replay if either the RAW filter or
		// the consistency filter demands it. The RAW condition is
		// reported first so Figure 6's RAW-needed attribution matches.
		switch {
		case en.NUS:
			replay, why = true, trace.RNUS
		case e.flag:
			replay, why = true, trace.RWindow
		}
	case NUSOnly:
		if en.NUS {
			replay, why = true, trace.RNUS
		}
	}
	if !replay {
		e.Stats.Filtered++
	}
	return replay, why
}

// OnReplayComplete records the outcome of a replay: the re-executed
// value is compared with the premature value, and a mismatch means the
// premature load resolved its dependences incorrectly — the machine
// must squash everything younger. It returns true when a squash is
// required.
func (e *Engine) OnReplayComplete(en *FIFOEntry, replayValue uint64) (squash bool) {
	e.Stats.Replays++
	e.Stats.Comparisons++
	if en.NUS {
		e.Stats.ReplaysNUS++
	}
	en.Replayed = true
	e.closeWindow(en.Tag)
	if replayValue == en.Value {
		return false
	}
	e.Stats.Mismatches++
	if en.NUS {
		e.Stats.MismatchesNUS++
	}
	return true
}

// OnLoadPassedReplayStage must be called for loads that pass the replay
// stage without replaying (filtered loads), so the event window can
// close when the latched load drains.
func (e *Engine) OnLoadPassedReplayStage(tag int64) {
	e.closeWindow(tag)
}

func (e *Engine) closeWindow(tag int64) {
	if e.flag && tag >= e.ageTag {
		e.flag = false
	}
}

// OnSquash clears window state referring to squashed loads: if the
// latched youngest load was squashed, the window closes when any
// surviving older load (tag >= ageTag is then impossible) — instead we
// conservatively re-latch to the squash point so correctness never
// depends on a dead tag.
func (e *Engine) OnSquash(fromTag int64) {
	e.Queue.Squash(fromTag)
	if e.flag && e.ageTag >= fromTag {
		// The flagged load died. Keep the window open but anchor it at
		// the squash point: the first surviving/refetched load at or
		// past this tag closes it. (Conservative: may force a few
		// extra replays, never fewer.)
		e.ageTag = fromTag
	}
}

// ReplaysPerCommitted returns replays divided by committed instructions
// (the paper's headline 0.02 figure), given the commit count.
func (e *Engine) ReplaysPerCommitted(committed uint64) float64 {
	if committed == 0 {
		return 0
	}
	return float64(e.Stats.Replays) / float64(committed)
}
