// Package vpred implements a last-value load-value predictor. The
// paper's introduction highlights value prediction as a motivating
// client of value-based replay: Martin et al. (MICRO 2001) showed that
// naive value prediction can violate the memory consistency model in
// multiprocessors, and the paper notes that "our value-based replay
// implementation may be used to detect such errors." The replay
// machine gets value-prediction verification for free: a predicted
// load's value is checked against the commit-time cache value by the
// existing replay/compare stages, so a misprediction — or a
// consistency-violating prediction — squashes exactly like any other
// premature-value error.
package vpred

// LastValue is a PC-indexed last-value predictor with 2-bit confidence.
type LastValue struct {
	entries []lvEntry
	mask    uint64
	// Lookups counts prediction attempts, Predictions confident
	// predictions issued, Correct/Incorrect training outcomes for
	// issued predictions.
	Lookups, Predictions uint64
	Correct, Incorrect   uint64
}

type lvEntry struct {
	pc    uint64
	value uint64
	conf  uint8
}

// ConfidenceThreshold is the confidence needed to use a prediction.
const ConfidenceThreshold = 2

// New creates a predictor with the given entry count (power of two).
func New(entries int) *LastValue {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("vpred: entries must be a positive power of two")
	}
	return &LastValue{entries: make([]lvEntry, entries), mask: uint64(entries - 1)}
}

func (p *LastValue) slot(pc uint64) *lvEntry {
	return &p.entries[(pc>>2)&p.mask]
}

// Predict returns a confident value prediction for the load at pc.
func (p *LastValue) Predict(pc uint64) (uint64, bool) {
	p.Lookups++
	e := p.slot(pc)
	if e.pc == pc && e.conf >= ConfidenceThreshold {
		p.Predictions++
		return e.value, true
	}
	return 0, false
}

// Train updates the table with the load's true (commit-time) value.
// predicted reports whether a prediction was issued for this instance.
func (p *LastValue) Train(pc, actual uint64, predicted bool) {
	e := p.slot(pc)
	if e.pc != pc {
		*e = lvEntry{pc: pc, value: actual, conf: 0}
		return
	}
	if e.value == actual {
		if e.conf < 3 {
			e.conf++
		}
		if predicted {
			p.Correct++
		}
		return
	}
	if predicted {
		p.Incorrect++
	}
	e.value = actual
	e.conf = 0
}

// Accuracy returns correct/(correct+incorrect) over issued predictions.
func (p *LastValue) Accuracy() float64 {
	total := p.Correct + p.Incorrect
	if total == 0 {
		return 0
	}
	return float64(p.Correct) / float64(total)
}
