package vpred

import "testing"

func TestColdNoPrediction(t *testing.T) {
	p := New(64)
	if _, ok := p.Predict(0x100); ok {
		t.Error("cold predictor must not predict")
	}
}

func TestConfidenceBuildsAndPredicts(t *testing.T) {
	p := New(64)
	pc := uint64(0x100)
	// Three trainings with the same value build confidence past the
	// threshold (first allocates, next two increment).
	for i := 0; i < 3; i++ {
		p.Train(pc, 42, false)
	}
	v, ok := p.Predict(pc)
	if !ok || v != 42 {
		t.Fatalf("Predict = %d,%v", v, ok)
	}
}

func TestChangingValueResetsConfidence(t *testing.T) {
	p := New(64)
	pc := uint64(0x104)
	for i := 0; i < 3; i++ {
		p.Train(pc, 7, false)
	}
	p.Train(pc, 8, true) // misprediction outcome
	if _, ok := p.Predict(pc); ok {
		t.Error("confidence must reset after a value change")
	}
	if p.Incorrect != 1 {
		t.Errorf("Incorrect = %d", p.Incorrect)
	}
}

func TestAccuracy(t *testing.T) {
	p := New(64)
	pc := uint64(0x108)
	for i := 0; i < 3; i++ {
		p.Train(pc, 5, false)
	}
	p.Train(pc, 5, true)
	p.Train(pc, 5, true)
	p.Train(pc, 6, true)
	if acc := p.Accuracy(); acc < 0.66 || acc > 0.67 {
		t.Errorf("Accuracy = %v, want 2/3", acc)
	}
	if New(64).Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestAliasReplacement(t *testing.T) {
	p := New(16)
	a := uint64(0x100)
	b := a + 16*4 // same slot
	for i := 0; i < 3; i++ {
		p.Train(a, 1, false)
	}
	p.Train(b, 2, false) // evicts a
	if _, ok := p.Predict(a); ok {
		t.Error("evicted PC still predicts")
	}
}

func TestBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(48)
}
