package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Hist is a linear-bucket occupancy histogram with an exact mean —
// the ROB/LQ/SQ occupancy distributions behind the paper's Figure 7
// (whose bars are the time-average this histogram's Mean reproduces).
type Hist struct {
	// Max is the largest expected observation (the structure's
	// capacity); larger observations clamp into the last bucket.
	Max int
	// Buckets holds observation counts; bucket i covers the half-open
	// occupancy range [i*width, (i+1)*width).
	Buckets []uint64

	sum   uint64
	count uint64
}

// NewHist creates a histogram for observations in [0, max] with the
// given number of buckets.
func NewHist(max, buckets int) *Hist {
	if max <= 0 || buckets <= 0 {
		panic("trace: histogram max and buckets must be positive")
	}
	if buckets > max {
		buckets = max
	}
	return &Hist{Max: max, Buckets: make([]uint64, buckets)}
}

// Observe records one occupancy sample.
func (h *Hist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	i := v * len(h.Buckets) / (h.Max + 1)
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.sum += uint64(v)
	h.count++
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact mean of all observations (not the bucket
// approximation), so it is directly comparable to Figure 7's averages.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// String renders the histogram as aligned rows with proportional bars.
func (h *Hist) String() string {
	var sb strings.Builder
	var peak uint64
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	width := (h.Max + 1 + len(h.Buckets) - 1) / len(h.Buckets)
	for i, c := range h.Buckets {
		lo := i * width
		hi := lo + width - 1
		if hi > h.Max {
			hi = h.Max
		}
		bar := 0
		if peak > 0 {
			bar = int(c * 40 / peak)
		}
		fmt.Fprintf(&sb, "%4d-%-4d %10d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&sb, "mean %.1f over %d samples\n", h.Mean(), h.count)
	return sb.String()
}

// Snapshot is one interval sample of a core's counter deltas: how many
// of each event happened since the previous snapshot. A stream of
// snapshots is the time-resolved version of the end-of-run counters —
// where in a run the replays, squashes, and commits actually occurred.
type Snapshot struct {
	// Cycle is the sample instant.
	Cycle int64 `json:"cycle"`
	// Core is the sampled processor.
	Core int `json:"core"`
	// Deltas maps counter name to its increase over the interval.
	Deltas map[string]uint64 `json:"deltas"`
}

// MetricsLog accumulates periodic Snapshots and per-core ROB/LQ/SQ
// occupancy histograms. The system run loop drives it at a fixed cycle
// interval; it is inert (and costs nothing) when nil.
type MetricsLog struct {
	// Interval is the sampling period in cycles.
	Interval int64
	// Snapshots holds every interval sample, in time order.
	Snapshots []Snapshot
	// ROB, LQ and SQ are per-core occupancy histograms sampled at each
	// interval tick.
	ROB, LQ, SQ []*Hist

	prev []map[string]uint64
}

// NewMetricsLog creates a log for the given core count and sampling
// interval; robMax/lqMax/sqMax size the occupancy histograms to each
// structure's capacity.
func NewMetricsLog(cores int, interval int64, robMax, lqMax, sqMax int) *MetricsLog {
	if interval <= 0 {
		panic("trace: metrics interval must be positive")
	}
	m := &MetricsLog{Interval: interval, prev: make([]map[string]uint64, cores)}
	const buckets = 16
	for i := 0; i < cores; i++ {
		m.ROB = append(m.ROB, NewHist(robMax, buckets))
		m.LQ = append(m.LQ, NewHist(lqMax, buckets))
		m.SQ = append(m.SQ, NewHist(sqMax, buckets))
		m.prev[i] = make(map[string]uint64)
	}
	return m
}

// Record ingests one core's state at a sample instant: current
// occupancies plus the *cumulative* counter totals, from which the
// interval delta is computed against the previous sample.
func (m *MetricsLog) Record(cycle int64, core int, rob, lq, sq int, totals map[string]uint64) {
	m.ROB[core].Observe(rob)
	m.LQ[core].Observe(lq)
	m.SQ[core].Observe(sq)
	deltas := make(map[string]uint64, len(totals))
	for k, v := range totals {
		deltas[k] = v - m.prev[core][k]
		m.prev[core][k] = v
	}
	m.Snapshots = append(m.Snapshots, Snapshot{Cycle: cycle, Core: core, Deltas: deltas})
}

// WriteJSONL writes every snapshot as one JSON object per line — the
// metrics-snapshot output file format (EXPERIMENTS.md "Metrics
// snapshots").
func (m *MetricsLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range m.Snapshots {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// CounterNames returns every counter name appearing in any snapshot,
// sorted.
func (m *MetricsLog) CounterNames() []string {
	seen := map[string]bool{}
	for _, s := range m.Snapshots {
		for k := range s.Deltas {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
