package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestKindReasonJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal kind %d: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal kind %s: %v", b, err)
		}
		if back != k {
			t.Errorf("kind %d round-tripped to %d", k, back)
		}
	}
	for r := Reason(0); r < numReasons; r++ {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal reason %d: %v", r, err)
		}
		var back Reason
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal reason %s: %v", b, err)
		}
		if back != r {
			t.Errorf("reason %d round-tripped to %d", r, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Error("unknown kind name should fail to unmarshal")
	}
}

func TestNewNilSink(t *testing.T) {
	if New(nil) != nil {
		t.Error("New(nil) must return a nil tracer (tracing disabled)")
	}
	var tr *Tracer
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer Flush: %v", err)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRingSink(4)
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	for i := 0; i < 3; i++ {
		r.Emit(Event{Cycle: int64(i), Kind: KReplay})
	}
	if r.Len() != 3 {
		t.Fatalf("partial ring Len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	for i, ev := range got {
		if ev.Cycle != int64(i) {
			t.Errorf("pre-wrap snapshot[%d].Cycle = %d, want %d", i, ev.Cycle, i)
		}
	}
	// Push past capacity: events 3..9 over a 4-slot ring leave 6..9.
	for i := 3; i < 10; i++ {
		r.Emit(Event{Cycle: int64(i), Kind: KReplay})
	}
	if r.Len() != 4 {
		t.Fatalf("full ring Len = %d, want 4", r.Len())
	}
	got = r.Snapshot()
	for i, ev := range got {
		want := int64(6 + i)
		if ev.Cycle != want {
			t.Errorf("post-wrap snapshot[%d].Cycle = %d, want %d (oldest-first)", i, ev.Cycle, want)
		}
	}
}

func TestRingFreezeWhen(t *testing.T) {
	r := NewRingSink(8)
	r.FreezeWhen = func(ev Event) bool { return ev.Kind == KSquash }
	for i := 0; i < 3; i++ {
		r.Emit(Event{Cycle: int64(i), Kind: KLoadIssue})
	}
	r.Emit(Event{Cycle: 3, Kind: KSquash, Reason: RSquashReplayCons})
	if !r.Frozen() {
		t.Fatal("ring should freeze on the trigger event")
	}
	// Post-trigger traffic must not overwrite the post-mortem window.
	for i := 4; i < 100; i++ {
		r.Emit(Event{Cycle: int64(i), Kind: KReplay})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("frozen ring holds %d events, want 4", len(got))
	}
	last := got[len(got)-1]
	if last.Kind != KSquash || last.Cycle != 3 {
		t.Errorf("last retained event = %v %d, want the squash trigger at cycle 3", last.Kind, last.Cycle)
	}
}

func TestRingDump(t *testing.T) {
	r := NewRingSink(4)
	r.Emit(Event{Cycle: 10, Core: 1, Kind: KValueMismatch, Value: 0xbeef, Aux: 0xdead})
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"value-mismatch", "premature=0xdead", "val=0xbeef", "c1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentEmit exercises the sinks' concurrency contract: several
// goroutines standing in for per-core emitters write simultaneously and
// every event must be accounted for (run with -race to check the locks).
func TestConcurrentEmit(t *testing.T) {
	const cores, perCore = 8, 1000
	ring := NewRingSink(64)
	count := &CountSink{}
	var jsonBuf bytes.Buffer
	tee := &TeeSink{Sinks: []Sink{ring, count, NewJSONLSink(&jsonBuf)}}
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCore; i++ {
				tee.Emit(Event{Cycle: int64(i), Core: int32(c), Kind: KReplay})
			}
		}(c)
	}
	wg.Wait()
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count.Count(KReplay); got != cores*perCore {
		t.Errorf("CountSink saw %d events, want %d", got, cores*perCore)
	}
	if ring.Len() != 64 {
		t.Errorf("ring Len = %d, want full (64)", ring.Len())
	}
	evs, err := ReadJSONL(&jsonBuf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != cores*perCore {
		t.Errorf("JSONL holds %d events, want %d", len(evs), cores*perCore)
	}
}

func TestJSONLEventRoundTrip(t *testing.T) {
	in := []Event{
		{Cycle: 1, Core: 0, Kind: KLoadIssue, Tag: 42, PC: 0x400, Addr: 0x1000, Value: 7, Aux: FlagForwarded | FlagNUS},
		{Cycle: 2, Core: 1, Kind: KFilterDecision, Reason: RFiltered, Tag: 43},
		{Cycle: 3, Core: -1, Kind: KDMAWrite, Addr: 0x2000},
		{Cycle: 4, Core: 0, Kind: KSquash, Reason: RSquashVPred, Tag: 44, PC: 0x408},
	}
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, ev := range in {
		s.Emit(ev)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestChromeWellFormed checks the Chrome trace_event export is valid
// JSON with the expected structure — the well-formedness contract that
// makes the file loadable in Perfetto.
func TestChromeWellFormed(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Cycle: 5, Core: 0, Kind: KLoadIssue, Tag: 1, PC: 0x400, Addr: 0x1000, Value: 9})
	s.Emit(Event{Cycle: 6, Core: 0, Kind: KReplay, Tag: 1, Addr: 0x1000, Value: 9})
	s.Emit(Event{Cycle: 7, Core: 1, Kind: KSquash, Reason: RSquashMispredict, Tag: 8})
	s.Emit(Event{Cycle: 8, Core: 0, Kind: KROBOcc, Value: 17})
	s.Emit(Event{Cycle: 9, Core: -1, Kind: KDMAWrite, Addr: 0x2000})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 5 events + one thread_name metadata record per distinct core (0, 1, -1).
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d traceEvents, want 8", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	if phases["M"] != 3 || phases["X"] != 2 || phases["C"] != 1 || phases["i"] != 2 {
		t.Errorf("phase histogram = %v, want M:3 X:2 C:1 i:2", phases)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" && ev.Ts == nil {
			t.Errorf("event %q (ph=%s) lacks a ts field", ev.Name, ev.Ph)
		}
	}
}

func TestHist(t *testing.T) {
	h := NewHist(255, 16)
	for v := 0; v <= 255; v++ {
		h.Observe(v)
	}
	if h.Count() != 256 {
		t.Fatalf("Count = %d, want 256", h.Count())
	}
	if got, want := h.Mean(), 127.5; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	var total uint64
	for i, c := range h.Buckets {
		total += c
		if c != 16 {
			t.Errorf("bucket %d holds %d, want uniform 16", i, c)
		}
	}
	if total != 256 {
		t.Errorf("bucket total = %d, want 256", total)
	}
	// Clamping: negative and above-max observations must not panic.
	h.Observe(-5)
	h.Observe(100000)
	if h.Buckets[0] != 17 || h.Buckets[len(h.Buckets)-1] != 17 {
		t.Error("out-of-range observations should clamp into the edge buckets")
	}
	if !strings.Contains(h.String(), "mean") {
		t.Error("String output should report the mean")
	}
}

func TestMetricsLog(t *testing.T) {
	m := NewMetricsLog(2, 100, 256, 128, 64)
	m.Record(100, 0, 10, 5, 3, map[string]uint64{"committed": 50, "replays": 2})
	m.Record(100, 1, 20, 8, 1, map[string]uint64{"committed": 40, "replays": 0})
	m.Record(200, 0, 12, 6, 2, map[string]uint64{"committed": 125, "replays": 2})
	if len(m.Snapshots) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(m.Snapshots))
	}
	// The second core-0 sample must report the interval delta, not the total.
	last := m.Snapshots[2]
	if last.Deltas["committed"] != 75 || last.Deltas["replays"] != 0 {
		t.Errorf("deltas = %v, want committed:75 replays:0", last.Deltas)
	}
	if got := m.ROB[0].Count(); got != 2 {
		t.Errorf("core 0 ROB histogram has %d samples, want 2", got)
	}
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "committed" || names[1] != "replays" {
		t.Errorf("CounterNames = %v", names)
	}
	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("WriteJSONL wrote %d lines, want 3", got)
	}
}
