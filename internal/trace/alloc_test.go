package trace

import "testing"

// TestDisabledTracerZeroAlloc pins the package's core cost contract
// (see the package comment and DESIGN.md §6): with tracing disabled a
// hot path pays one nil check and allocates nothing, and even an
// enabled counting sink consumes fixed-size value events without
// heap traffic.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	tr := New(nil)
	if tr != nil {
		t.Fatal("New(nil) must return a nil (disabled) tracer")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush on disabled tracer: %v", err)
	}

	// The guard pattern every instrumentation site uses.
	emit := func() {
		if tr != nil {
			tr.Emit(Event{Kind: KReplay, Cycle: 1, Core: 0, Addr: 0x40})
		}
	}
	if allocs := testing.AllocsPerRun(1000, emit); allocs != 0 {
		t.Errorf("disabled-tracer emission path allocates %.1f per event, want 0", allocs)
	}
}

// TestCountSinkZeroAlloc verifies the enabled path through a counting
// sink stays allocation-free per event: Event is a value type and
// CountSink only bumps fixed arrays.
func TestCountSinkZeroAlloc(t *testing.T) {
	counts := &CountSink{}
	tr := New(counts)
	var cycle int64
	emit := func() {
		cycle++
		tr.Emit(Event{Kind: KLoadIssue, Cycle: cycle, Core: 0, Addr: 0x80, Value: 7, Aux: FlagNUS})
	}
	if allocs := testing.AllocsPerRun(1000, emit); allocs != 0 {
		t.Errorf("CountSink emission allocates %.1f per event, want 0", allocs)
	}
	if counts.Count(KLoadIssue) == 0 {
		t.Error("events were not counted")
	}
}
