package trace

import (
	"fmt"
	"io"
	"sync"
)

// RingSink retains the most recent N events in a fixed ring buffer —
// the "flight recorder" used for squash post-mortems: run with the ring
// attached, then read back the window of events that led up to the
// failure. Optionally it freezes on a trigger event so the window ends
// exactly at the squash of interest instead of being overwritten by
// later traffic.
//
// RingSink is safe for concurrent writers; its memory is allocated once
// at construction and Emit never allocates.
type RingSink struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	filled bool
	frozen bool
	// FreezeWhen, if set, is evaluated on every event after it is
	// recorded; the first event for which it returns true freezes the
	// ring (subsequent Emits are dropped), preserving the events that
	// led up to the trigger.
	FreezeWhen func(Event) bool
}

// NewRingSink creates a ring retaining the last n events (n must be
// positive).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		panic("trace: ring size must be positive")
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit implements Sink: the event overwrites the oldest slot; if the
// ring is frozen the event is dropped.
func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	if r.frozen {
		r.mu.Unlock()
		return
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	if r.FreezeWhen != nil && r.FreezeWhen(ev) {
		r.frozen = true
	}
	r.mu.Unlock()
}

// Flush implements Sink; it is a no-op (the ring lives in memory).
func (r *RingSink) Flush() error { return nil }

// Frozen reports whether the freeze trigger has fired.
func (r *RingSink) Frozen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Len returns the number of events currently retained.
func (r *RingSink) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the retained events oldest-first.
func (r *RingSink) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.filled {
		out = make([]Event, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.next]...)
	}
	return out
}

// Dump writes the retained events oldest-first as aligned human-readable
// text — the squash post-mortem format shown in README "Tracing &
// profiling".
func (r *RingSink) Dump(w io.Writer) error {
	for _, ev := range r.Snapshot() {
		line := fmt.Sprintf("%10d c%-2d %-15s", ev.Cycle, ev.Core, ev.Kind)
		if ev.Reason != RNone {
			line += fmt.Sprintf(" %-12s", ev.Reason)
		} else {
			line += fmt.Sprintf(" %-12s", "")
		}
		line += fmt.Sprintf(" tag=%-6d pc=%#-10x addr=%#-10x val=%#x",
			ev.Tag, ev.PC, ev.Addr, ev.Value)
		if ev.Kind == KValueMismatch {
			line += fmt.Sprintf(" premature=%#x", ev.Aux)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
