package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes one JSON object per event, newline-delimited — the
// machine-readable export consumed by ad-hoc analysis (jq, pandas) and
// by the trace/counter agreement tests. Output is buffered; call Flush
// once after the run.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink creates a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. The first encoding error sticks and is reported
// by Flush; later events are dropped.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(ev)
	}
	s.mu.Unlock()
}

// Flush implements Sink: it drains the buffer and returns the first
// error seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// ReadJSONL parses a JSONL event stream back into events — the inverse
// of JSONLSink, used by tests and post-processing tools.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, nil
}
