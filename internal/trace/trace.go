// Package trace is the simulator's observability layer: a low-overhead,
// pluggable event stream for the value-based-replay lifecycle (load
// issue, replay, value mismatch, filter decision, squash, snoop and fill
// arrival, constraint-graph edge insertion), plus interval-sampled
// metrics snapshots and occupancy histograms.
//
// Design contract (DESIGN.md §6): tracing is off by default and the
// disabled path costs a single nil check per potential event — hot loops
// guard every emission with `if tr != nil`, events are fixed-size value
// structs (no allocation to construct), and no trace code runs otherwise.
// Sinks serialize internally, so one Tracer may receive events from
// concurrently stepping cores.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Kind identifies the type of a traced event. Each kind corresponds
// one-to-one with a mechanism of the paper (see DESIGN.md §6 for the
// event taxonomy and the counter each kind must agree with).
type Kind uint8

const (
	// KLoadIssue is a load's premature (out-of-order) execution: the
	// instant it leaves the issue queue and samples memory or the store
	// queue. Value carries the premature value; Aux carries the
	// FlagForwarded/FlagNUS/FlagReordered/FlagVPred bits. One event per
	// DemandLoadAccesses + ForwardedLoads.
	KLoadIssue Kind = iota
	// KFilterDecision is the replay stage deciding whether a load must
	// replay (paper §3). Reason records which filter fired or why the
	// replay was skipped. One event per replay-engine LoadsSeen.
	KFilterDecision
	// KReplay is a replay cache access at the commit-stage port (paper
	// §3.1). Value carries the replayed (commit-time) value. One event
	// per ReplayAccesses.
	KReplay
	// KValueMismatch is a replay compare failing: the premature value
	// (Aux) differs from the replayed value (Value). One event per
	// replay-engine Mismatches.
	KValueMismatch
	// KSquash is a pipeline squash; Reason records the cause. Tag is the
	// first killed tag and PC the fetch redirect target. The per-run sum
	// over reasons equals the sum of the pipeline's Squashes* counters.
	KSquash
	// KSnoopInval is an external invalidation (or inclusion-victim
	// castout) arriving at a core — the input of snooping load queues
	// and the no-recent-snoop filter. Addr is the block address.
	KSnoopInval
	// KExtFill is an externally-sourced block entering a core's local
	// hierarchy — the input of the no-recent-miss filter. Addr is the
	// block address.
	KExtFill
	// KLQMark is a hybrid (Power4-style) load queue marking a conflicting
	// load on a snoop instead of squashing (paper §2.1).
	KLQMark
	// KGraphEdge is a constraint-graph edge insertion by the back-end
	// consistency checker (paper §3.1/Figure 4). Tag and Aux are the
	// endpoint node indices; Reason is the edge order (REdgePO, REdgeRAW,
	// REdgeWAW, REdgeWAR).
	KGraphEdge
	// KROBOcc, KLQOcc and KSQOcc are interval-sampled occupancy counters
	// (Value = entries in use) rendered as counter tracks by the Chrome
	// exporter; Figure 7 is the time-average of the KROBOcc track.
	KROBOcc
	KLQOcc
	KSQOcc
	// KDMAWrite is a coherent DMA agent write invalidating cached copies
	// (the paper's memory-mapped I/O traffic). Addr is the block address.
	KDMAWrite
	// KLitmusOutcome is one observed value of a litmus-test run: Core is
	// the observing thread, Tag the load's index within that thread,
	// Addr the tested location, and Value the observed value. A summary
	// event with Core -1 closes each run: Value is 1 when the outcome is
	// SC-forbidden, Aux the run's seed.
	KLitmusOutcome
	// KFaultInject is one act of the fault injector (internal/fault):
	// Reason records the fault kind (RFault*). For value corruptions,
	// Value is the corrupted value and Aux the original; for delayed
	// messages, Value is the extra delay in cycles.
	KFaultInject
	// KFaultDetect is an injected value corruption caught by the replay
	// compare (mismatch ⇒ squash). Value is the fault→detection latency
	// in cycles — the event stream behind the detection-latency
	// histogram.
	KFaultDetect
	// KFaultMiss is an injected value corruption that committed without
	// verification — the corrupted value became architectural. Value is
	// the corrupted value.
	KFaultMiss
	// KWatchdog is a forward-progress watchdog action: Reason is
	// RWatchdogDeadlock (no commit for the configured window; the run
	// stops with a structured report) or RWatchdogStorm (replay-squash
	// storm; Value is the throttle backoff applied to Core).
	KWatchdog
	// KFarmJob is a farm-service job lifecycle event: Reason is
	// RFarmJobAccepted (Aux the job's cell count) or RFarmJobDone (Value
	// cells executed, Aux cells served from the result cache).
	KFarmJob
	// KFarmCell is one farm sweep cell reaching a terminal state: Reason
	// is RFarmCellExecuted (simulated on a worker; Core is the shard),
	// RFarmCellCached (served from the content-addressed result cache),
	// or RFarmCellRemote (completed by a remote worker process).
	KFarmCell
	// KFarmLease is a distributed-worker lease event: Reason is
	// RFarmLeaseGranted (Aux the cells checked out), RFarmLeaseRenewed
	// (heartbeat; Aux the leases extended), or RFarmLeaseExpired (Aux
	// the cells re-queued after a missed heartbeat window).
	KFarmLease

	numKinds
)

var kindNames = [numKinds]string{
	KLoadIssue:      "load-issue",
	KFilterDecision: "filter-decision",
	KReplay:         "replay",
	KValueMismatch:  "value-mismatch",
	KSquash:         "squash",
	KSnoopInval:     "snoop-inval",
	KExtFill:        "ext-fill",
	KLQMark:         "lq-mark",
	KGraphEdge:      "graph-edge",
	KROBOcc:         "rob-occ",
	KLQOcc:          "lq-occ",
	KSQOcc:          "sq-occ",
	KDMAWrite:       "dma-write",
	KLitmusOutcome:  "litmus-outcome",
	KFaultInject:    "fault-inject",
	KFaultDetect:    "fault-detect",
	KFaultMiss:      "fault-miss",
	KWatchdog:       "watchdog",
	KFarmJob:        "farm-job",
	KFarmCell:       "farm-cell",
	KFarmLease:      "farm-lease",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its wire name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown kind %q", s)
}

// Reason qualifies a KFilterDecision (which paper §3 filter fired, or
// why the replay was skipped), a KSquash (its cause), or a KGraphEdge
// (its dependence order).
type Reason uint8

const (
	// RNone is the zero reason (events that need no qualifier).
	RNone Reason = iota

	// RReplayAll: the replay-all configuration replays unconditionally.
	RReplayAll
	// RNUS: the no-unresolved-store filter fired — the load issued past
	// an older store with an unresolved address (uniprocessor RAW
	// safety, paper §3.3).
	RNUS
	// RWindow: the no-recent-snoop / no-recent-miss external-event
	// window was open when the load reached the replay stage
	// (consistency safety, paper §3.1).
	RWindow
	// RReordered: the no-reorder filter fired — the load issued while a
	// prior memory operation was incomplete (paper §3.3).
	RReordered
	// RVPredVerify: the load's value was predicted and the compare stage
	// must verify the prediction; no filter may skip it.
	RVPredVerify
	// RFiltered: every active filter passed — the replay cache access is
	// skipped (the paper's 98% case).
	RFiltered
	// RRule3: forward-progress rule 3 suppressed the replay — the
	// refetched instance of a load that already caused a replay squash
	// is never replayed again (paper §3.2).
	RRule3

	// RSquashMispredict: branch misprediction recovery.
	RSquashMispredict
	// RSquashRAW: a baseline load queue's store-agen search found a
	// premature load that bypassed a conflicting store (Figure 1(a)).
	RSquashRAW
	// RSquashInval: a snooping load queue's invalidation search found a
	// possible consistency violation (Figure 1(b)).
	RSquashInval
	// RSquashLoadIssue: an insulated/hybrid load-issue search found a
	// younger issued load to the same address (Figure 1(c)).
	RSquashLoadIssue
	// RSquashReplayRAW: a replay compare mismatched on a NUS-flagged
	// load — a uniprocessor RAW violation caught by value.
	RSquashReplayRAW
	// RSquashReplayCons: a replay compare mismatched on a load kept by a
	// consistency filter — a cross-processor ordering violation caught
	// by value.
	RSquashReplayCons
	// RSquashVPred: a replay compare rejected a predicted load value.
	RSquashVPred

	// REdgePO is a program-order constraint-graph edge.
	REdgePO
	// REdgeRAW is a reads-from (value transition → load) edge.
	REdgeRAW
	// REdgeWAW is a store version-order edge.
	REdgeWAW
	// REdgeWAR is a load → next value transition edge.
	REdgeWAR

	// RFault* qualify KFaultInject events with the injected fault kind.
	// They are contiguous and ordered exactly like internal/fault's Kind
	// enum (fault maps a kind k to RFaultLoadValue + k).
	RFaultLoadValue
	RFaultCacheData
	RFaultDropSnoop
	RFaultDelaySnoop
	RFaultDropFill
	RFaultDelayFill
	RFaultSuppressNUS
	RFaultSuppressWindow
	RFaultSuppressRule3

	// RWatchdogDeadlock: no instruction committed machine-wide for the
	// configured watchdog window; the run stops with a deadlock report.
	RWatchdogDeadlock
	// RWatchdogStorm: a core's replay-squash rate crossed the storm
	// threshold and fetch was throttled with exponential backoff.
	RWatchdogStorm

	// RFarmJobAccepted / RFarmJobDone bracket a farm job's lifetime on
	// KFarmJob events.
	RFarmJobAccepted
	RFarmJobDone
	// RFarmCellExecuted / RFarmCellCached / RFarmCellRemote qualify
	// KFarmCell events: the cell was simulated on a local pool worker,
	// served from the content-addressed cache without running the
	// simulator, or completed by a remote worker process.
	RFarmCellExecuted
	RFarmCellCached
	RFarmCellRemote
	// RFarmLeaseGranted / RFarmLeaseRenewed / RFarmLeaseExpired qualify
	// KFarmLease events over a checked-out cell batch's lifetime: the
	// checkout itself, a heartbeat extending its TTL, and the sweeper
	// re-queueing cells whose worker stopped heartbeating.
	RFarmLeaseGranted
	RFarmLeaseRenewed
	RFarmLeaseExpired

	numReasons
)

var reasonNames = [numReasons]string{
	RNone:             "",
	RReplayAll:        "replay-all",
	RNUS:              "nus",
	RWindow:           "window",
	RReordered:        "reordered",
	RVPredVerify:      "vpred-verify",
	RFiltered:         "filtered",
	RRule3:            "rule3",
	RSquashMispredict: "mispredict",
	RSquashRAW:        "raw",
	RSquashInval:      "inval",
	RSquashLoadIssue:  "load-issue",
	RSquashReplayRAW:  "replay-raw",
	RSquashReplayCons: "replay-cons",
	RSquashVPred:      "replay-vpred",
	REdgePO:           "po",
	REdgeRAW:          "raw-edge",
	REdgeWAW:          "waw-edge",
	REdgeWAR:          "war-edge",

	RFaultLoadValue:      "fault-load-value",
	RFaultCacheData:      "fault-cache-data",
	RFaultDropSnoop:      "fault-drop-snoop",
	RFaultDelaySnoop:     "fault-delay-snoop",
	RFaultDropFill:       "fault-drop-fill",
	RFaultDelayFill:      "fault-delay-fill",
	RFaultSuppressNUS:    "fault-suppress-nus",
	RFaultSuppressWindow: "fault-suppress-window",
	RFaultSuppressRule3:  "fault-suppress-rule3",

	RWatchdogDeadlock: "wd-deadlock",
	RWatchdogStorm:    "wd-storm",

	RFarmJobAccepted:  "farm-job-accepted",
	RFarmJobDone:      "farm-job-done",
	RFarmCellExecuted: "farm-cell-exec",
	RFarmCellCached:   "farm-cell-hit",
	RFarmCellRemote:   "farm-cell-remote",
	RFarmLeaseGranted: "farm-lease-grant",
	RFarmLeaseRenewed: "farm-lease-renew",
	RFarmLeaseExpired: "farm-lease-expire",
}

// String returns the reason's stable wire name ("" for RNone).
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// MarshalJSON encodes the reason as its wire name.
func (r Reason) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// UnmarshalJSON decodes a reason from its wire name.
func (r *Reason) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range reasonNames {
		if n == s {
			*r = Reason(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown reason %q", s)
}

// Aux bit flags carried by KLoadIssue events.
const (
	// FlagForwarded: the premature value came from the store queue, not
	// the cache.
	FlagForwarded uint64 = 1 << iota
	// FlagNUS: the load issued past an unresolved-address store.
	FlagNUS
	// FlagReordered: a prior memory operation was incomplete at issue.
	FlagReordered
	// FlagVPred: the premature value is a value prediction.
	FlagVPred
)

// Event is one traced occurrence. It is a fixed-size value type so hot
// paths construct it on the stack with no allocation; field meaning
// varies by Kind (see the Kind constants).
type Event struct {
	// Cycle is the core-local cycle of the event (0 for post-run events
	// such as constraint-graph edges).
	Cycle int64 `json:"cycle"`
	// Core is the originating processor (-1 for agents outside any core,
	// e.g. the DMA engine).
	Core int32 `json:"core"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Reason qualifies filter decisions, squashes, and graph edges.
	Reason Reason `json:"reason,omitempty"`
	// Tag is the ROB sequence number of the instruction involved.
	Tag int64 `json:"tag,omitempty"`
	// PC is the instruction's program counter.
	PC uint64 `json:"pc,omitempty"`
	// Addr is the effective or block address involved.
	Addr uint64 `json:"addr,omitempty"`
	// Value is the data value involved (premature value for KLoadIssue,
	// replayed value for KReplay/KValueMismatch, occupancy for K*Occ).
	Value uint64 `json:"value,omitempty"`
	// Aux is kind-specific extra data (flag bits for KLoadIssue, the
	// premature value for KValueMismatch, edge target for KGraphEdge).
	Aux uint64 `json:"aux,omitempty"`
}

// Sink consumes traced events. Implementations must be safe for
// concurrent Emit calls (cores in parallel experiment goroutines may
// share one sink) and must not retain references into the event beyond
// the call (Event is a value type, so this is automatic).
type Sink interface {
	// Emit records one event.
	Emit(ev Event)
	// Flush finalizes any buffered output (close trailers, buffered
	// writers). It must be called once, after the last Emit.
	Flush() error
}

// Tracer is the handle hot paths hold. A nil *Tracer means tracing is
// disabled; instrumentation sites guard with a single `if tr != nil`
// check and construct no Event otherwise.
type Tracer struct {
	sink Sink
}

// New creates a tracer feeding the given sink; it returns nil (tracing
// disabled) when sink is nil, so callers can pass an optional sink
// straight through.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Emit forwards one event to the sink. Call only on a non-nil Tracer
// (the disabled path is the caller's nil check, not a branch here).
func (t *Tracer) Emit(ev Event) { t.sink.Emit(ev) }

// Flush flushes the underlying sink; safe on a nil Tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	return t.sink.Flush()
}

// CountSink tallies events per kind and per reason without retaining
// them — the cheapest way to assert trace/counter agreement (the
// system package's trace tests and the vbrsim -trace summary use it).
type CountSink struct {
	mu      sync.Mutex
	kinds   [numKinds]uint64
	reasons [numReasons]uint64
	total   uint64
}

// Emit implements Sink.
func (c *CountSink) Emit(ev Event) {
	c.mu.Lock()
	if int(ev.Kind) < len(c.kinds) {
		c.kinds[ev.Kind]++
	}
	if int(ev.Reason) < len(c.reasons) {
		c.reasons[ev.Reason]++
	}
	c.total++
	c.mu.Unlock()
}

// Flush implements Sink; it is a no-op.
func (c *CountSink) Flush() error { return nil }

// Count returns the number of events of the given kind.
func (c *CountSink) Count(k Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kinds[k]
}

// CountReason returns the number of events with the given reason.
func (c *CountSink) CountReason(r Reason) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reasons[r]
}

// Total returns the total number of events emitted.
func (c *CountSink) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// TeeSink fans one event stream out to several sinks (e.g. a ring
// post-mortem buffer alongside a JSONL file).
type TeeSink struct {
	// Sinks receive every event in order.
	Sinks []Sink
}

// Emit implements Sink.
func (t *TeeSink) Emit(ev Event) {
	for _, s := range t.Sinks {
		s.Emit(ev)
	}
}

// Flush implements Sink: it flushes every sub-sink, returning the first
// error.
func (t *TeeSink) Flush() error {
	var first error
	for _, s := range t.Sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
