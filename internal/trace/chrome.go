package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// ChromeSink exports the event stream in the Chrome trace_event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or about://tracing:
// one timeline row (tid) per core, replay/load activity as duration
// slices, squashes and snoops as instants, and the K*Occ samples as
// counter tracks — the per-core pipeline-occupancy view of a run.
// Cycles are mapped 1:1 to trace microseconds.
type ChromeSink struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	first bool
	named map[int32]bool
	err   error
}

// NewChromeSink creates a sink writing the trace_event JSON to w. The
// file is finalized by Flush; a trace without Flush is truncated and
// will not load.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{bw: bufio.NewWriterSize(w, 1<<16), first: true, named: make(map[int32]bool)}
	s.write(`{"displayTimeUnit":"ns","traceEvents":[`)
	return s
}

func (s *ChromeSink) write(str string) {
	if s.err == nil {
		_, s.err = s.bw.WriteString(str)
	}
}

// sep writes the element separator (manages the leading comma).
func (s *ChromeSink) sep() {
	if s.first {
		s.first = false
		return
	}
	s.write(",\n")
}

// Emit implements Sink, translating each event to a trace_event record.
func (s *ChromeSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.named[ev.Core] {
		s.named[ev.Core] = true
		s.sep()
		s.write(fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"core %d"}}`,
			ev.Core, ev.Core))
	}
	switch ev.Kind {
	case KROBOcc, KLQOcc, KSQOcc:
		// Counter tracks: one per structure per core.
		name := map[Kind]string{KROBOcc: "rob", KLQOcc: "lq", KSQOcc: "sq"}[ev.Kind]
		s.sep()
		s.write(fmt.Sprintf(
			`{"name":"%s occupancy (core %d)","ph":"C","ts":%d,"pid":0,"tid":%d,"args":{"entries":%d}}`,
			name, ev.Core, ev.Cycle, ev.Core, ev.Value))
	case KLoadIssue, KReplay:
		// Duration slices (1 cycle) so activity density is visible when
		// zoomed out.
		s.sep()
		s.write(fmt.Sprintf(
			`{"name":"%s","ph":"X","ts":%d,"dur":1,"pid":0,"tid":%d,"args":{"tag":%d,"pc":"%#x","addr":"%#x","value":"%#x"}}`,
			ev.Kind, ev.Cycle, ev.Core, ev.Tag, ev.PC, ev.Addr, ev.Value))
	default:
		// Everything else renders as a thread-scoped instant.
		s.sep()
		s.write(fmt.Sprintf(
			`{"name":"%s","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"reason":"%s","tag":%d,"pc":"%#x","addr":"%#x"}}`,
			ev.Kind, ev.Cycle, ev.Core, ev.Reason, ev.Tag, ev.PC, ev.Addr))
	}
}

// Flush implements Sink: it closes the JSON array and drains the
// buffer.
func (s *ChromeSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.write("]}\n")
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
