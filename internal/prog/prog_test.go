package prog

import (
	"testing"
	"testing/quick"

	"vbmo/internal/isa"
)

func TestImageBackgroundDeterministic(t *testing.T) {
	a := NewImage(42)
	b := NewImage(42)
	c := NewImage(43)
	for addr := uint64(0); addr < 1<<16; addr += 8 {
		if a.Read(addr) != b.Read(addr) {
			t.Fatalf("same-seed images disagree at %#x", addr)
		}
	}
	same := 0
	for addr := uint64(0); addr < 1<<12; addr += 8 {
		if a.Read(addr) == c.Read(addr) {
			same++
		}
	}
	if same > 4 {
		t.Errorf("different seeds produce %d identical words of 512", same)
	}
}

func TestImageReadWrite(t *testing.T) {
	im := NewImage(1)
	im.Write(0x1000, 99)
	if got := im.Read(0x1000); got != 99 {
		t.Errorf("Read = %d, want 99", got)
	}
	// Unaligned access aligns down.
	im.Write(0x2003, 7)
	if got := im.Read(0x2000); got != 7 {
		t.Errorf("unaligned write should align down; Read(0x2000) = %d", got)
	}
	if got := im.Read(0x2005); got != 7 {
		t.Errorf("unaligned read should align down; got %d", got)
	}
}

func TestImageSilentStoreDetection(t *testing.T) {
	im := NewImage(7)
	v := im.Read(0x4000)
	if !im.Write(0x4000, v) {
		t.Error("writing the existing value should be silent")
	}
	if im.Write(0x4000, v+1) {
		t.Error("writing a different value is not silent")
	}
	if !im.Write(0x4000, v+1) {
		t.Error("rewriting the same value is silent")
	}
}

func TestImageWriteReadProperty(t *testing.T) {
	im := NewImage(3)
	err := quick.Check(func(addr, val uint64) bool {
		im.Write(addr, val)
		return im.Read(addr) == val
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestImagePagesSparse(t *testing.T) {
	im := NewImage(0)
	for i := 0; i < 100; i++ {
		im.Read(uint64(i) << 20) // reads do not materialize pages
	}
	if im.Pages() != 0 {
		t.Errorf("reads materialized %d pages", im.Pages())
	}
	// Scattered single writes stay in the sparse overlay: no page
	// arrays for a pointer chase that dirties one word per page.
	im.Write(0, 1)
	im.Write(1<<20, 1)
	if im.Pages() != 0 {
		t.Errorf("scattered writes materialized %d pages", im.Pages())
	}
	if im.Read(0) != 1 || im.Read(1<<20) != 1 {
		t.Error("sparse overlay lost a written value")
	}
}

func TestImagePagePromotion(t *testing.T) {
	im := NewImage(7)
	// Remember what the whole page should look like after the writes.
	want := make([]uint64, pageWords)
	for i := range want {
		want[i] = im.Background(uint64(i) * 8)
	}
	// Write just enough distinct words to trigger promotion, plus one
	// rewrite that must not count twice.
	for i := 0; i < promoteWords-1; i++ {
		im.Write(uint64(i)*8, uint64(100+i))
		want[i] = uint64(100 + i)
	}
	im.Write(0, 100) // rewrite of an already-written word
	if im.Pages() != 0 {
		t.Fatalf("promoted after %d distinct words, want %d", promoteWords-1, promoteWords)
	}
	im.Write(uint64(promoteWords-1)*8, 999)
	want[promoteWords-1] = 999
	if im.Pages() != 1 {
		t.Fatalf("Pages = %d after %d distinct words, want 1", im.Pages(), promoteWords)
	}
	// Every word — written or background — must read identically
	// across the promotion.
	for i := range want {
		if got := im.Read(uint64(i) * 8); got != want[i] {
			t.Fatalf("word %d = %#x after promotion, want %#x", i, got, want[i])
		}
	}
	// Silent-store detection must agree with the materialized state.
	if !im.Write(8, 101) {
		t.Error("rewrite of same value not silent after promotion")
	}
	if im.Write(8, 42) {
		t.Error("value change reported silent after promotion")
	}
}

func TestArchStateR0(t *testing.T) {
	var s ArchState
	s.WriteReg(isa.RZero, 55)
	if s.ReadReg(isa.RZero) != 0 {
		t.Error("R0 must read as zero")
	}
	s.WriteReg(5, 55)
	if s.ReadReg(5) != 55 {
		t.Error("regular register write lost")
	}
}

// buildCountdownLoop builds: r1 = n; loop: r1 = r1 - 1 (via addi -1);
// store r1 -> [r2]; load r3 <- [r2]; bnez r1, loop; then jump to self.
func buildCountdownLoop(n int64) *Program {
	b := NewBuilder(0x1000)
	b.Emit(isa.Inst{Op: isa.OpLui, Dst: 1, Imm: n})
	b.Emit(isa.Inst{Op: isa.OpLui, Dst: 2, Imm: 0x8000})
	loop := b.Here()
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: 1, Imm: -1})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 2, Src2: 1})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 3, Src1: 2})
	b.Branch(isa.OpBnez, 1, loop)
	end := b.Here()
	b.Branch(isa.OpJump, 0, end)
	return b.Build()
}

func TestExecutorCountdownLoop(t *testing.T) {
	p := buildCountdownLoop(3)
	im := NewImage(9)
	ex := NewExecutor(p, im, ArchState{})
	// 2 setup + 3 iterations * 4 instructions = 14 instructions.
	recs := ex.Run(14)
	if ex.InstRet != 14 {
		t.Fatalf("InstRet = %d", ex.InstRet)
	}
	// After 3 iterations r1 == 0, memory holds 0.
	if got := im.Read(0x8000); got != 0 {
		t.Errorf("final store value = %d, want 0", got)
	}
	if ex.State.ReadReg(3) != 0 {
		t.Errorf("load result = %d, want 0", ex.State.ReadReg(3))
	}
	// The final bnez must be not-taken.
	last := recs[13]
	if last.Op != isa.OpBnez || last.Taken {
		t.Errorf("iteration-ending branch: op=%v taken=%v", last.Op, last.Taken)
	}
	// Loads observe the value just stored (RAW through memory).
	for _, r := range recs {
		if r.Op == isa.OpLoad && r.Addr != 0x8000 {
			t.Errorf("unexpected load address %#x", r.Addr)
		}
	}
}

func TestExecutorJumpSelfLoops(t *testing.T) {
	p := buildCountdownLoop(1)
	ex := NewExecutor(p, NewImage(0), ArchState{})
	recs := ex.Run(20)
	// After setup(2)+iter(4), the program spins on the self-jump.
	for _, r := range recs[6:] {
		if r.Op != isa.OpJump || !r.Taken {
			t.Fatalf("expected self-jump spin, got %v", r.Op)
		}
	}
}

func TestFetchOutsideProgram(t *testing.T) {
	p := &Program{Entry: 0x1000, Code: []isa.Inst{{Op: isa.OpAdd}}}
	if _, ok := p.Fetch(0x0ff0); ok {
		t.Error("fetch below entry should fail")
	}
	if _, ok := p.Fetch(0x1004); ok {
		t.Error("fetch past end should fail")
	}
	if in, ok := p.Fetch(0x1000); !ok || in.Op != isa.OpAdd {
		t.Error("fetch at entry failed")
	}
}

func TestBuilderForwardBackwardBranches(t *testing.T) {
	b := NewBuilder(0)
	fwd := b.NewLabel()
	b.Branch(isa.OpJump, 0, fwd) // index 0
	b.Emit(isa.Inst{Op: isa.OpNop})
	b.Bind(fwd) // index 2
	back := b.Here()
	b.Branch(isa.OpBeqz, 1, back) // index 2, displacement 0
	p := b.Build()
	if p.Code[0].Imm != 2 {
		t.Errorf("forward displacement = %d, want 2", p.Code[0].Imm)
	}
	if p.Code[2].Imm != 0 {
		t.Errorf("backward displacement = %d, want 0", p.Code[2].Imm)
	}
	// NextPC honors displacements in slots.
	if got := p.NextPC(p.Code[0], 0, true); got != 2*InstBytes {
		t.Errorf("NextPC taken = %#x", got)
	}
	if got := p.NextPC(p.Code[0], 0, false); got != InstBytes {
		t.Errorf("NextPC fallthrough = %#x", got)
	}
}

func TestBuilderUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with unbound label should panic")
		}
	}()
	b := NewBuilder(0)
	b.Branch(isa.OpJump, 0, b.NewLabel())
	b.Build()
}

func TestExecutorDeterminism(t *testing.T) {
	run := func() []Committed {
		p := buildCountdownLoop(50)
		return NewExecutor(p, NewImage(77), ArchState{}).Run(300)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic execution at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
