package prog

import (
	"fmt"

	"vbmo/internal/isa"
)

// Builder assembles a Program, resolving branch displacements from
// labels so workload generators can write structured control flow.
type Builder struct {
	entry   uint64
	code    []isa.Inst
	patches []patch
	labels  map[Label]int
	next    Label
}

// Label names a position in the program under construction.
type Label int

type patch struct {
	at    int // index of branch instruction
	label Label
}

// NewBuilder creates a builder whose program starts at entry.
func NewBuilder(entry uint64) *Builder {
	return &Builder{entry: entry, labels: make(map[Label]int)}
}

// Pos returns the index the next emitted instruction will occupy.
func (b *Builder) Pos() int { return len(b.code) }

// Emit appends one instruction and returns its index.
func (b *Builder) Emit(in isa.Inst) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// NewLabel allocates an unbound label.
func (b *Builder) NewLabel() Label {
	b.next++
	return b.next
}

// Bind binds a label to the current position.
func (b *Builder) Bind(l Label) {
	b.labels[l] = len(b.code)
}

// Here allocates a label bound to the current position.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// Branch emits a branch whose displacement will be resolved to l.
func (b *Builder) Branch(op isa.Opcode, src isa.Reg, l Label) int {
	idx := b.Emit(isa.Inst{Op: op, Src1: src})
	b.patches = append(b.patches, patch{at: idx, label: l})
	return idx
}

// Build resolves all branches and returns the program. It panics on an
// unbound label — that is a generator bug, not a runtime condition.
func (b *Builder) Build() *Program {
	for _, p := range b.patches {
		tgt, ok := b.labels[p.label]
		if !ok {
			panic(fmt.Sprintf("prog: unbound label %d", p.label))
		}
		b.code[p.at].Imm = int64(tgt - p.at)
	}
	return &Program{Entry: b.entry, Code: b.code}
}
