// Package prog holds program representation and architectural state for
// the synthetic ISA: static programs, the shared memory image, and an
// in-order functional reference executor used as a correctness oracle.
//
// The memory image is the committed architectural memory. Speculative
// (premature) loads in the timing model read it at the moment they issue;
// stores update it only at commit. In a multiprocessor system all cores
// share one image, so the value a premature load observes depends on the
// global interleaving of commits — exactly the property the value-based
// replay mechanism checks.
package prog

import (
	"fmt"

	"vbmo/internal/isa"
)

// InstBytes is the size of one instruction slot; PCs advance by this.
const InstBytes = 4

// Program is a static instruction sequence. Instruction i lives at
// PC = Entry + i*InstBytes. Conditional branch displacements are in
// instruction slots relative to the branch.
type Program struct {
	// Entry is the PC of the first instruction.
	Entry uint64
	// Code is the instruction sequence.
	Code []isa.Inst
}

// Fetch returns the instruction at pc. ok is false when pc is outside
// the program (e.g. down a mispredicted wrong path); callers should treat
// that as a nop-like filler.
func (p *Program) Fetch(pc uint64) (isa.Inst, bool) {
	if pc < p.Entry {
		return isa.Inst{Op: isa.OpNop}, false
	}
	idx := (pc - p.Entry) / InstBytes
	if idx >= uint64(len(p.Code)) {
		return isa.Inst{Op: isa.OpNop}, false
	}
	return p.Code[idx], true
}

// Target returns the branch target of the instruction at pc.
func (p *Program) Target(in isa.Inst, pc uint64) uint64 {
	return pc + uint64(in.Imm)*InstBytes
}

// NextPC computes the successor PC given the branch outcome.
func (p *Program) NextPC(in isa.Inst, pc uint64, taken bool) uint64 {
	if in.IsBranch() && taken {
		return p.Target(in, pc)
	}
	return pc + InstBytes
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// String renders a short disassembly (first n instructions).
func (p *Program) String() string {
	s := ""
	for i, in := range p.Code {
		s += fmt.Sprintf("%4x: %s\n", p.Entry+uint64(i)*InstBytes, in)
	}
	return s
}

const (
	pageShift = 12 // 4 KiB pages
	pageWords = 1 << (pageShift - 3)
	pageMask  = (uint64(1) << pageShift) - 1
)

// Image is a sparse 64-bit word-addressable memory image. Uninitialized
// words read as a deterministic hash of their address, so fresh memory
// has varied, reproducible content. Image is not safe for concurrent
// use; the simulator runs all cores in lock-step on one goroutine.
//
// Lightly-written pages live as individual words in a sparse overlay;
// a page is materialized as a 4 KiB array only once enough distinct
// words have been written to it. Pointer-chase workloads scatter a few
// stores over thousands of pages, and eagerly materializing each page
// (one array allocation plus a 512-word background fill per page) was
// the dominant allocation source of the whole simulator on them.
type Image struct {
	pages map[uint64]*[pageWords]uint64
	// sparse holds written words of pages that are not materialized:
	// word-aligned address → value.
	sparse map[uint64]uint64
	// sparseWords counts the distinct written words per unmaterialized
	// page, to decide promotion.
	sparseWords map[uint64]uint16
	seed        uint64
	// One-entry page cache: loads and stores cluster within pages, so
	// remembering the last page touched short-circuits the map lookup on
	// the simulator's per-access hot path.
	lastPN uint64
	lastPG *[pageWords]uint64
}

// promoteWords is the distinct-written-word count at which a page stops
// being a sparse overlay and becomes a real array: 1/16 of the page,
// the break-even point between per-word map entries and the 4 KiB
// array given map bucket overhead.
const promoteWords = pageWords / 16

// NewImage creates an image whose background content is derived from
// seed.
func NewImage(seed uint64) *Image {
	return &Image{
		pages:       make(map[uint64]*[pageWords]uint64),
		sparse:      make(map[uint64]uint64),
		sparseWords: make(map[uint64]uint16),
		seed:        seed,
	}
}

// mix64 is the SplitMix64 finalizer, used to derive background memory
// content and workload data from addresses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Background returns the initial (pre-write) content of the word at
// addr.
func (im *Image) Background(addr uint64) uint64 {
	return mix64((addr &^ 7) ^ im.seed)
}

// page returns the materialized page holding addr, or nil.
//
//vbr:hotpath
func (im *Image) page(addr uint64) *[pageWords]uint64 {
	pn := addr >> pageShift
	if pg := im.lastPG; pg != nil && im.lastPN == pn {
		return pg
	}
	pg := im.pages[pn]
	if pg != nil {
		im.lastPN, im.lastPG = pn, pg
	}
	return pg
}

// materialize promotes page pn from the sparse overlay to a real
// array: background fill, then the overlay words move in. Walking the
// page's word addresses (rather than ranging over the sparse map)
// keeps the fill order deterministic and the cost bounded by the page
// size. Cold by design: each page gets here at most once.
func (im *Image) materialize(pn uint64) *[pageWords]uint64 {
	pg := new([pageWords]uint64)
	base := pn << pageShift
	for i := range pg {
		a := base + uint64(i)*8
		if v, ok := im.sparse[a]; ok {
			pg[i] = v
			delete(im.sparse, a)
		} else {
			pg[i] = im.Background(a)
		}
	}
	im.pages[pn] = pg
	delete(im.sparseWords, pn)
	im.lastPN, im.lastPG = pn, pg
	return pg
}

// Read returns the 64-bit word at addr (aligned down to 8 bytes).
//
//vbr:hotpath
func (im *Image) Read(addr uint64) uint64 {
	addr &^= 7
	if pg := im.page(addr); pg != nil {
		return pg[(addr&pageMask)>>3]
	}
	if v, ok := im.sparse[addr]; ok {
		return v
	}
	return im.Background(addr)
}

// Write stores a 64-bit word at addr (aligned down to 8 bytes) and
// reports whether the store was silent (wrote the value already there).
//
//vbr:hotpath
func (im *Image) Write(addr, val uint64) (silent bool) {
	addr &^= 7
	if pg := im.page(addr); pg != nil {
		idx := (addr & pageMask) >> 3
		silent = pg[idx] == val
		pg[idx] = val
		return silent
	}
	old, wasWritten := im.sparse[addr]
	if !wasWritten {
		old = im.Background(addr)
	}
	silent = old == val
	im.sparse[addr] = val
	if !wasWritten {
		pn := addr >> pageShift
		if n := im.sparseWords[pn] + 1; n >= promoteWords {
			im.materialize(pn)
		} else {
			im.sparseWords[pn] = n
		}
	}
	return silent
}

// Pages reports how many pages have been materialized (for tests and
// footprint accounting). Pages whose writes all sit in the sparse
// overlay are not counted.
func (im *Image) Pages() int { return len(im.pages) }

// ArchState is per-processor architectural register state plus the PC.
type ArchState struct {
	PC   uint64
	Regs [isa.NumRegs]uint64
}

// ReadReg returns the architectural value of r (R0 reads as zero).
func (s *ArchState) ReadReg(r isa.Reg) uint64 {
	if r == isa.RZero {
		return 0
	}
	return s.Regs[r]
}

// WriteReg sets the architectural value of r (writes to R0 are ignored).
func (s *ArchState) WriteReg(r isa.Reg, v uint64) {
	if r != isa.RZero {
		s.Regs[r] = v
	}
}

// Committed describes one committed dynamic instruction, as produced by
// the reference executor and by the timing pipeline; equality of these
// streams is the machine-equivalence oracle for uniprocessor runs.
type Committed struct {
	Seq    uint64 // commit order, starting at 0
	PC     uint64
	Op     isa.Opcode
	Result uint64 // register result, or store value for stores
	Addr   uint64 // effective address for loads/stores
	Taken  bool   // branch outcome
	// Writer identifies the store a load's value came from, when the
	// system tracks consistency (see package consistency); 0 means the
	// initial memory value or tracking disabled.
	Writer uint64
}

// Executor runs a Program in order against an ArchState and an Image —
// the functional reference model.
type Executor struct {
	Prog  *Program
	State ArchState
	Mem   *Image
	// InstRet counts retired instructions.
	InstRet uint64
}

// NewExecutor creates a reference executor starting at the program
// entry, or at init.PC when it is nonzero (per-core entry points, as
// the timing pipeline honors them).
func NewExecutor(p *Program, mem *Image, init ArchState) *Executor {
	ex := &Executor{Prog: p, State: init, Mem: mem}
	if ex.State.PC == 0 {
		ex.State.PC = p.Entry
	}
	return ex
}

// Step executes one instruction and returns its committed record.
func (ex *Executor) Step() Committed {
	pc := ex.State.PC
	in, _ := ex.Prog.Fetch(pc)
	c := Committed{Seq: ex.InstRet, PC: pc, Op: in.Op}
	src1 := ex.State.ReadReg(in.Src1)
	src2 := ex.State.ReadReg(in.Src2)
	switch in.Class() {
	case isa.ClassLoad:
		c.Addr = in.EffAddr(src1)
		c.Result = ex.Mem.Read(c.Addr)
		ex.State.WriteReg(in.Dst, c.Result)
	case isa.ClassStore:
		c.Addr = in.EffAddr(src1)
		c.Result = src2
		ex.Mem.Write(c.Addr, src2)
	case isa.ClassBranch:
		c.Taken = in.BranchTaken(src1)
	case isa.ClassNop, isa.ClassMembar:
		// No architectural effect.
	default:
		c.Result = in.Eval(src1, src2)
		ex.State.WriteReg(in.Dst, c.Result)
	}
	ex.State.PC = ex.Prog.NextPC(in, pc, c.Taken)
	ex.InstRet++
	return c
}

// Run executes n instructions, returning the committed records.
func (ex *Executor) Run(n int) []Committed {
	out := make([]Committed, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ex.Step())
	}
	return out
}
