package fault

import (
	"strings"
	"testing"
)

func TestParseKinds(t *testing.T) {
	ks, err := ParseKinds("load-value,drop-snoop")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0] != LoadValue || ks[1] != DropSnoop {
		t.Fatalf("got %v", ks)
	}
	// "all" excludes suppress-rule3 (it livelocks by design).
	ks, err = ParseKinds("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if k == SuppressRule3 {
			t.Fatal("\"all\" must not include suppress-rule3")
		}
	}
	if len(ks) != int(numKinds)-1 {
		t.Fatalf("all: got %d kinds, want %d", len(ks), int(numKinds)-1)
	}
	if _, err := ParseKinds("no-such-kind"); err == nil {
		t.Fatal("want error for unknown kind")
	}
	if _, err := ParseKinds(""); err == nil {
		t.Fatal("want error for empty string")
	}
	// Round trip every name.
	for _, name := range Kinds() {
		ks, err := ParseKinds(name)
		if err != nil || len(ks) != 1 || ks[0].String() != name {
			t.Fatalf("round trip %q: %v %v", name, ks, err)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Fatal("nil config must be disabled")
	}
	if (&Config{Kinds: []Kind{LoadValue}}).Enabled() {
		t.Fatal("zero rate must be disabled")
	}
	if (&Config{Rate: 1}).Enabled() {
		t.Fatal("no kinds must be disabled")
	}
	if !(&Config{Kinds: []Kind{LoadValue}, Rate: 0.5}).Enabled() {
		t.Fatal("kinds+rate must be enabled")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() []Injection {
		in := NewInjector(Config{Kinds: []Kind{LoadValue}, Rate: 0.5, Seed: 7}, nil)
		for i := 0; i < 200; i++ {
			v, ok := in.CorruptLoadValue(0, int64(i), 0x400, uint64(i)*8, uint64(i), false, int64(i))
			if ok && v == uint64(i) {
				t.Fatal("corruption must change the value")
			}
		}
		return append([]Injection(nil), in.Log...)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.5 over 200 draws injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d injections", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRateOneAlwaysInjects(t *testing.T) {
	in := NewInjector(Config{Kinds: []Kind{LoadValue}, Rate: 1, Seed: 1}, nil)
	for i := 0; i < 50; i++ {
		if _, ok := in.CorruptLoadValue(0, int64(i), 0, 0, 0, false, 0); !ok {
			t.Fatalf("rate 1.0 skipped injection %d", i)
		}
	}
	if in.Stats.Injected != 50 {
		t.Fatalf("injected %d, want 50", in.Stats.Injected)
	}
}

func TestMaxBoundsInjections(t *testing.T) {
	in := NewInjector(Config{Kinds: []Kind{LoadValue}, Rate: 1, Seed: 1, Max: 3}, nil)
	n := 0
	for i := 0; i < 10; i++ {
		if _, ok := in.CorruptLoadValue(0, int64(i), 0, 0, 0, false, 0); ok {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("Max=3 allowed %d injections", n)
	}
}

func TestOutcomeAccounting(t *testing.T) {
	in := NewInjector(Config{Kinds: []Kind{LoadValue}, Rate: 1, Seed: 3}, nil)
	// tag 1: detected by replay mismatch.
	in.CorruptLoadValue(0, 1, 0, 0, 10, false, 5)
	in.OnReplayVerdict(0, 1, true, 9)
	// tag 2: replay compared equal — benign.
	in.CorruptLoadValue(0, 2, 0, 0, 20, false, 6)
	in.OnReplayVerdict(0, 2, false, 11)
	// tag 3: committed without verification — missed.
	in.CorruptLoadValue(0, 3, 0, 0, 30, false, 7)
	in.OnLoadCommit(0, 3, 12)
	// tag 4: squashed before verification — vacated.
	in.CorruptLoadValue(0, 4, 0, 0, 40, false, 8)
	in.OnSquash(0, 4, 13)
	s := in.Stats
	if s.Detected != 1 || s.Benign != 1 || s.Missed != 1 || s.Vacated != 1 {
		t.Fatalf("stats %+v", s)
	}
	if in.PendingInjections() != 0 {
		t.Fatalf("pending %d, want 0", in.PendingInjections())
	}
	if in.Lat.Mean() != 4 { // detection latency 9-5
		t.Fatalf("latency mean %v, want 4", in.Lat.Mean())
	}
	for _, rec := range in.Log {
		if rec.Fate == Pending {
			t.Fatalf("unresolved log record %+v", rec)
		}
	}
}

func TestSquashVacatesOnlyYoungerTags(t *testing.T) {
	in := NewInjector(Config{Kinds: []Kind{LoadValue}, Rate: 1, Seed: 3}, nil)
	in.CorruptLoadValue(0, 5, 0, 0, 1, false, 1)
	in.CorruptLoadValue(0, 9, 0, 0, 2, false, 2)
	in.OnSquash(0, 7, 3) // squash from tag 7: vacates 9, not 5
	if in.Stats.Vacated != 1 {
		t.Fatalf("vacated %d, want 1", in.Stats.Vacated)
	}
	in.OnReplayVerdict(0, 5, true, 4)
	if in.Stats.Detected != 1 {
		t.Fatalf("detected %d, want 1", in.Stats.Detected)
	}
}

func TestDeferredDeliveryOrder(t *testing.T) {
	in := NewInjector(Config{Kinds: []Kind{DelaySnoop}, Rate: 1, Seed: 1}, nil)
	var got []int
	in.Defer(20, func() { got = append(got, 2) })
	in.Defer(10, func() { got = append(got, 1) })
	in.Defer(20, func() { got = append(got, 3) }) // same due: insertion order
	in.DeliverDue(15)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after cycle 15: %v", got)
	}
	in.DeliverDue(25)
	if len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("after cycle 25: %v", got)
	}
	if in.PendingMessages() != 0 {
		t.Fatal("pending messages remain")
	}
}

func TestDropAndDelayFates(t *testing.T) {
	drop := NewInjector(Config{Kinds: []Kind{DropSnoop}, Rate: 1, Seed: 2}, nil)
	if dropped, _ := drop.SnoopFate(0, 1); !dropped {
		t.Fatal("DropSnoop at rate 1 must drop")
	}
	if dropped, extra := drop.FillFate(0, 1); dropped || extra != 0 {
		t.Fatal("DropSnoop must not affect fills")
	}
	delay := NewInjector(Config{Kinds: []Kind{DelayFill}, Rate: 1, Seed: 2, Delay: 16}, nil)
	dropped, extra := delay.FillFate(0, 1)
	if dropped {
		t.Fatal("DelayFill must not drop")
	}
	if extra < 16 || extra >= 32 {
		t.Fatalf("delay %d outside [16,32)", extra)
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Mean() != (1+2+3+100+1000)/5.0 {
		t.Fatalf("mean %v", h.Mean())
	}
	var h2 Hist
	h2.Add(7)
	h2.Merge(h)
	if h2.Mean() != (1+2+3+100+1000+7)/6.0 {
		t.Fatalf("merged mean %v", h2.Mean())
	}
	if !strings.Contains(h2.String(), "max=1000") {
		t.Fatalf("string %q", h2.String())
	}
}

func TestSummaryString(t *testing.T) {
	in := NewInjector(Config{Kinds: []Kind{LoadValue}, Rate: 1, Seed: 3}, nil)
	in.CorruptLoadValue(0, 1, 0, 0, 10, false, 5)
	in.OnReplayVerdict(0, 1, true, 9)
	s := in.Summary()
	if !strings.Contains(s, "injected=1") || !strings.Contains(s, "detected=1") {
		t.Fatalf("summary %q", s)
	}
}
