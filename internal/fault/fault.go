// Package fault is the simulator's deterministic fault injector: a
// seed-derived stream of adversarial events threaded through the
// pipeline, cache, and coherence layers so the verification machinery
// (value-based replay, the constraint-graph checker, the SC oracle) can
// be tested under active attack rather than by waiting for bugs.
//
// Cain & Lipasti observe that re-executing loads and comparing values is
// a general dynamic-verification net: besides ordering violations it
// catches transient value corruption. The injector makes that claim
// testable — it flips bits in premature load values and cache-sourced
// data, drops or delays the snoop/fill messages the NRS/NRM filters
// consume, and suppresses the NUS/window/rule-3 signals — and tracks
// every injection to an outcome (detected, missed, vacated, benign)
// with a fault→detection latency histogram.
//
// Determinism contract: all decisions come from one splitmix64 stream
// seeded by Config.Seed, consumed in simulation order. A system is
// stepped single-threaded, so a given (machine, workload, seed,
// fault-seed) tuple always injects the same faults at the same sites.
// Every hook is nil-guarded at the call site: with no injector attached
// the hot paths are bit-identical to an uninstrumented run.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"vbmo/internal/trace"
)

// Kind is one fault class of the taxonomy (DESIGN.md §10).
type Kind uint8

const (
	// LoadValue flips one bit in a load's premature value, wherever it
	// came from (cache read or store-queue forward) — a transient error
	// in the load's datapath. Replay must detect it by value mismatch.
	LoadValue Kind = iota
	// CacheData flips one bit in a value delivered by the cache data
	// array (demand reads only, not forwards) — a transient error in the
	// array itself.
	CacheData
	// DropSnoop discards an external invalidation message before the
	// core's ordering machinery observes it (the cache still loses the
	// block). Starves snooping load queues and the no-recent-snoop
	// filter; the checker/oracle must flag the resulting executions.
	DropSnoop
	// DelaySnoop delivers an external invalidation late, with a
	// seed-derived jitter so back-to-back messages can also reorder.
	DelaySnoop
	// DropFill discards an external-fill signal (the no-recent-miss
	// filter's input).
	DropFill
	// DelayFill delivers an external-fill signal late (jittered, so
	// fills can reorder).
	DelayFill
	// SuppressNUS clears a load's no-unresolved-store flag, blinding the
	// RAW half of the composed replay filters.
	SuppressNUS
	// SuppressWindow discards the NoteExternalEvent signal that opens
	// the NRM/NRS replay window, blinding the consistency half.
	SuppressWindow
	// SuppressRule3 prevents the forward-progress rule-3 mark, so a
	// replay-squashed load may replay (and squash) again — the lever the
	// watchdog livelock tests pull.
	SuppressRule3

	numKinds
)

var kindNames = [numKinds]string{
	LoadValue:      "load-value",
	CacheData:      "cache-data",
	DropSnoop:      "drop-snoop",
	DelaySnoop:     "delay-snoop",
	DropFill:       "drop-fill",
	DelayFill:      "delay-fill",
	SuppressNUS:    "suppress-nus",
	SuppressWindow: "suppress-window",
	SuppressRule3:  "suppress-rule3",
}

// String returns the kind's stable name (the -fault flag vocabulary).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// reason maps a kind to its trace reason.
func (k Kind) reason() trace.Reason {
	return trace.RFaultLoadValue + trace.Reason(k)
}

// Kinds returns every kind name, for usage strings.
func Kinds() []string {
	out := make([]string, numKinds)
	for i := range out {
		out[i] = Kind(i).String()
	}
	return out
}

// ParseKinds parses a comma-separated kind list ("load-value,drop-snoop").
// The pseudo-kind "all" selects everything except suppress-rule3 (which
// exists to provoke livelock and is only useful deliberately).
func ParseKinds(s string) ([]Kind, error) {
	var out []Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			for k := Kind(0); k < numKinds; k++ {
				if k != SuppressRule3 {
					out = append(out, k)
				}
			}
			continue
		}
		found := false
		for k := Kind(0); k < numKinds; k++ {
			if k.String() == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown kind %q (valid: %s)",
				name, strings.Join(Kinds(), ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: no kinds selected (valid: %s, or \"all\")",
			strings.Join(Kinds(), ", "))
	}
	return out, nil
}

// Config selects what to inject.
type Config struct {
	// Kinds is the enabled fault set.
	Kinds []Kind
	// Rate is the per-opportunity injection probability in [0, 1].
	Rate float64
	// Seed drives the injector's private decision stream.
	Seed uint64
	// Delay is the base latency (cycles) for Delay* kinds; each delayed
	// message gets a seed-derived jitter in [0, Delay) on top, so
	// messages can reorder. 0 selects the default (64).
	Delay int64
	// Max bounds total injections (0 = unlimited).
	Max uint64
}

// Enabled reports whether the configuration injects anything.
func (c *Config) Enabled() bool {
	return c != nil && len(c.Kinds) > 0 && c.Rate > 0
}

// Outcome classifies what became of one injection.
type Outcome uint8

const (
	// Pending: the corrupted load has not yet been verified or committed.
	Pending Outcome = iota
	// Detected: replay compared values, mismatched, and squashed.
	Detected
	// Missed: the corrupted value committed without a mismatch (the load
	// was filtered, or the machine has no replay stage).
	Missed
	// Vacated: the corrupted load was squashed for an unrelated reason
	// before verification (the corruption left the machine with it).
	Vacated
	// Benign: replay compared and the values matched — the flipped value
	// coincided with the commit-time memory value, so the committed
	// result is architecturally correct.
	Benign
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Pending:
		return "pending"
	case Detected:
		return "detected"
	case Missed:
		return "missed"
	case Vacated:
		return "vacated"
	case Benign:
		return "benign"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Injection records one value corruption and its fate.
type Injection struct {
	ID     uint64  `json:"id"`
	Kind   Kind    `json:"-"`
	KindS  string  `json:"kind"`
	Core   int     `json:"core"`
	Tag    int64   `json:"tag"`
	PC     uint64  `json:"pc"`
	Addr   uint64  `json:"addr"`
	Before uint64  `json:"before"`
	After  uint64  `json:"after"`
	Cycle  int64   `json:"cycle"`
	Detect int64   `json:"detect_cycle"` // -1 until resolved
	Fate   Outcome `json:"-"`
	FateS  string  `json:"outcome"`
}

// Stats aggregates the injector's activity.
type Stats struct {
	// Injected counts value corruptions planted (LoadValue + CacheData).
	Injected uint64 `json:"injected"`
	// Detected/Missed/Vacated/Benign partition resolved injections.
	Detected uint64 `json:"detected"`
	Missed   uint64 `json:"missed"`
	Vacated  uint64 `json:"vacated"`
	Benign   uint64 `json:"benign"`
	// Dropped and Delayed count snoop/fill messages interfered with.
	Dropped uint64 `json:"dropped"`
	Delayed uint64 `json:"delayed"`
	// Suppressed counts NUS/window/rule-3 signals discarded.
	Suppressed uint64 `json:"suppressed"`
}

// Resolved returns injections no longer pending.
func (s Stats) Resolved() uint64 { return s.Detected + s.Missed + s.Vacated + s.Benign }

// latBuckets is the latency histogram's bucket count: bucket i holds
// detections with latency in [2^(i-1), 2^i) cycles (bucket 0 is latency
// 0), the last bucket is open-ended.
const latBuckets = 20

// Hist is a log2-bucketed fault→detection latency histogram.
type Hist struct {
	Buckets [latBuckets]uint64 `json:"buckets"`
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum"`
	MaxLat  int64              `json:"max"`
}

// Add records one detection latency.
func (h *Hist) Add(lat int64) {
	if lat < 0 {
		lat = 0
	}
	b := 0
	for v := lat; v > 0; v >>= 1 {
		b++
	}
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += uint64(lat)
	if lat > h.MaxLat {
		h.MaxLat = lat
	}
}

// Merge folds another histogram into this one.
func (h *Hist) Merge(o Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.MaxLat > h.MaxLat {
		h.MaxLat = o.MaxLat
	}
}

// Mean returns the mean detection latency in cycles.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the non-empty buckets ("[4,8)=12 ..." style).
func (h *Hist) String() string {
	if h.Count == 0 {
		return "(empty)"
	}
	var b strings.Builder
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := int64(0), int64(1)
		if i > 0 {
			lo, hi = int64(1)<<(i-1), int64(1)<<i
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if i == latBuckets-1 {
			fmt.Fprintf(&b, "[%d,∞)=%d", lo, n)
		} else {
			fmt.Fprintf(&b, "[%d,%d)=%d", lo, hi, n)
		}
	}
	fmt.Fprintf(&b, " mean=%.1f max=%d", h.Mean(), h.MaxLat)
	return b.String()
}

// liveKey identifies an unresolved injection: tags are per-core unique.
type liveKey struct {
	core int
	tag  int64
}

// delivery is one deferred message.
type delivery struct {
	seq uint64 // tiebreak so equal-due deliveries stay deterministic
	due int64
	fn  func()
}

// Injector is one system's fault source. It is not safe for concurrent
// use; a system steps its cores on one goroutine, and each sweep cell
// builds its own injector.
type Injector struct {
	cfg       Config
	enabled   [numKinds]bool
	threshold uint64 // next() < threshold ⇒ inject
	rng       uint64
	nextID    uint64
	delaySeq  uint64

	live    map[liveKey]int // index into Log
	Log     []Injection
	pending []delivery

	tr *trace.Tracer

	Stats Stats
	// Lat is the fault→detection latency histogram (Detected only).
	Lat Hist
}

// maxLog bounds the retained injection log; stats and the histogram
// keep counting past it (a rate-1.0 run would otherwise hold millions
// of records).
const maxLog = 65536

// NewInjector builds an injector. tr may be nil (no event emission).
func NewInjector(cfg Config, tr *trace.Tracer) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 64
	}
	in := &Injector{
		cfg:  cfg,
		rng:  cfg.Seed*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019,
		live: make(map[liveKey]int),
		tr:   tr,
	}
	for _, k := range cfg.Kinds {
		if k < numKinds {
			in.enabled[k] = true
		}
	}
	switch {
	case cfg.Rate >= 1:
		in.threshold = ^uint64(0)
	case cfg.Rate <= 0:
		in.threshold = 0
	default:
		in.threshold = uint64(cfg.Rate * float64(1<<63) * 2)
	}
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decide draws one decision for an enabled kind.
func (in *Injector) decide(k Kind) bool {
	if !in.enabled[k] {
		return false
	}
	if in.cfg.Max > 0 && in.totalInterference() >= in.cfg.Max {
		return false
	}
	if in.threshold == ^uint64(0) {
		in.next() // keep the stream advancing identically at rate 1
		return true
	}
	return in.next() < in.threshold
}

func (in *Injector) totalInterference() uint64 {
	return in.Stats.Injected + in.Stats.Dropped + in.Stats.Delayed + in.Stats.Suppressed
}

// MessageFaults reports whether any snoop/fill message kind is enabled
// (the system only wraps the delivery callbacks when it is).
func (in *Injector) MessageFaults() bool {
	return in.enabled[DropSnoop] || in.enabled[DelaySnoop] ||
		in.enabled[DropFill] || in.enabled[DelayFill]
}

// ---------------------------------------------------------------------
// Value corruption (pipeline load path).

// CorruptLoadValue is called at a load's premature execution with the
// value it is about to bind. fromCache distinguishes demand reads
// (CacheData eligible) from store-queue forwards. It returns the
// possibly-corrupted value and whether an injection happened.
func (in *Injector) CorruptLoadValue(core int, tag int64, pc, addr, v uint64, fromCache bool, cycle int64) (uint64, bool) {
	kind := numKinds
	switch {
	case in.decide(LoadValue):
		kind = LoadValue
	case fromCache && in.decide(CacheData):
		kind = CacheData
	default:
		return v, false
	}
	bit := in.next() & 63
	after := v ^ (1 << bit)
	in.Stats.Injected++
	rec := Injection{
		ID: in.nextID, Kind: kind, KindS: kind.String(), Core: core, Tag: tag,
		PC: pc, Addr: addr, Before: v, After: after, Cycle: cycle,
		Detect: -1, Fate: Pending, FateS: Pending.String(),
	}
	in.nextID++
	key := liveKey{core, tag}
	if len(in.Log) < maxLog {
		in.Log = append(in.Log, rec)
		in.live[key] = len(in.Log) - 1
	} else {
		in.live[key] = -1
	}
	if in.tr != nil {
		in.tr.Emit(trace.Event{Cycle: cycle, Core: int32(core),
			Kind: trace.KFaultInject, Reason: kind.reason(),
			Tag: tag, PC: pc, Addr: addr, Value: after, Aux: v})
	}
	return after, true
}

// resolve finalizes a live injection with the given outcome.
func (in *Injector) resolve(core int, tag int64, cycle int64, o Outcome) bool {
	key := liveKey{core, tag}
	idx, ok := in.live[key]
	if !ok {
		return false
	}
	delete(in.live, key)
	var rec *Injection
	if idx >= 0 {
		rec = &in.Log[idx]
		rec.Detect = cycle
		rec.Fate = o
		rec.FateS = o.String()
	}
	switch o {
	case Detected:
		in.Stats.Detected++
		var lat int64
		if rec != nil {
			lat = cycle - rec.Cycle
		}
		in.Lat.Add(lat)
		if in.tr != nil {
			ev := trace.Event{Cycle: cycle, Core: int32(core),
				Kind: trace.KFaultDetect, Tag: tag, Value: uint64(lat)}
			if rec != nil {
				ev.PC, ev.Addr = rec.PC, rec.Addr
			}
			in.tr.Emit(ev)
		}
	case Missed:
		in.Stats.Missed++
		if in.tr != nil {
			ev := trace.Event{Cycle: cycle, Core: int32(core),
				Kind: trace.KFaultMiss, Tag: tag}
			if rec != nil {
				ev.PC, ev.Addr, ev.Value = rec.PC, rec.Addr, rec.After
			}
			in.tr.Emit(ev)
		}
	case Vacated:
		in.Stats.Vacated++
	case Benign:
		in.Stats.Benign++
	}
	return true
}

// OnReplayVerdict is called when the replay stage finished comparing a
// load's premature value against its replayed value.
func (in *Injector) OnReplayVerdict(core int, tag int64, mismatch bool, cycle int64) {
	if mismatch {
		in.resolve(core, tag, cycle, Detected)
	} else {
		in.resolve(core, tag, cycle, Benign)
	}
}

// OnLoadCommit is called when a load commits. An injection still live at
// commit escaped verification: the corrupted value is architectural.
func (in *Injector) OnLoadCommit(core int, tag int64, cycle int64) {
	in.resolve(core, tag, cycle, Missed)
}

// OnSquash vacates pending injections on killed loads (tag >= fromTag):
// the corruption left the machine with the squashed instruction.
func (in *Injector) OnSquash(core int, fromTag int64, cycle int64) {
	// resolve emits trace events and mutates in.live, so the vacated
	// set must be collected and ordered before resolving: map order
	// here would shuffle the traced event stream between runs.
	var hits []liveKey
	for key := range in.live {
		if key.core == core && key.tag >= fromTag {
			hits = append(hits, key)
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].tag < hits[j].tag })
	for _, key := range hits {
		in.resolve(key.core, key.tag, cycle, Vacated)
	}
}

// ---------------------------------------------------------------------
// Signal suppression (pipeline filter inputs).

func (in *Injector) suppress(k Kind, core int, cycle int64) bool {
	if !in.decide(k) {
		return false
	}
	in.Stats.Suppressed++
	if in.tr != nil {
		in.tr.Emit(trace.Event{Cycle: cycle, Core: int32(core),
			Kind: trace.KFaultInject, Reason: k.reason()})
	}
	return true
}

// SuppressNUS reports whether to clear this load's NUS flag.
func (in *Injector) SuppressNUS(core int, cycle int64) bool {
	return in.suppress(SuppressNUS, core, cycle)
}

// SuppressWindow reports whether to discard a NoteExternalEvent signal.
func (in *Injector) SuppressWindow(core int, cycle int64) bool {
	return in.suppress(SuppressWindow, core, cycle)
}

// SuppressRule3 reports whether to withhold the rule-3 no-replay mark.
func (in *Injector) SuppressRule3(core int, cycle int64) bool {
	return in.suppress(SuppressRule3, core, cycle)
}

// ---------------------------------------------------------------------
// Message interference (system snoop/fill wiring).

// fate decides a message's fate for a (drop, delay) kind pair: dropped,
// or delayed by extra cycles (0 = deliver now).
func (in *Injector) fate(drop, delay Kind, core int, cycle int64) (dropped bool, extra int64) {
	if in.decide(drop) {
		in.Stats.Dropped++
		if in.tr != nil {
			in.tr.Emit(trace.Event{Cycle: cycle, Core: int32(core),
				Kind: trace.KFaultInject, Reason: drop.reason()})
		}
		return true, 0
	}
	if in.decide(delay) {
		in.Stats.Delayed++
		extra = in.cfg.Delay + int64(in.next()%uint64(in.cfg.Delay))
		if in.tr != nil {
			in.tr.Emit(trace.Event{Cycle: cycle, Core: int32(core),
				Kind: trace.KFaultInject, Reason: delay.reason(),
				Value: uint64(extra)})
		}
		return false, extra
	}
	return false, 0
}

// SnoopFate decides an invalidation message's fate.
func (in *Injector) SnoopFate(core int, cycle int64) (dropped bool, extra int64) {
	return in.fate(DropSnoop, DelaySnoop, core, cycle)
}

// FillFate decides an external-fill signal's fate.
func (in *Injector) FillFate(core int, cycle int64) (dropped bool, extra int64) {
	return in.fate(DropFill, DelayFill, core, cycle)
}

// Defer schedules fn for the given cycle (delayed message delivery).
func (in *Injector) Defer(due int64, fn func()) {
	in.pending = append(in.pending, delivery{seq: in.delaySeq, due: due, fn: fn})
	in.delaySeq++
}

// DeliverDue runs every deferred delivery whose cycle has arrived, in
// (due, insertion) order — the jittered due cycles are what reorder
// messages relative to their send order.
func (in *Injector) DeliverDue(now int64) {
	if len(in.pending) == 0 {
		return
	}
	var due []delivery
	rest := in.pending[:0]
	for _, d := range in.pending {
		if d.due <= now {
			due = append(due, d)
		} else {
			rest = append(rest, d)
		}
	}
	in.pending = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].due != due[j].due {
			return due[i].due < due[j].due
		}
		return due[i].seq < due[j].seq
	})
	for _, d := range due {
		d.fn()
	}
}

// NextDue returns the earliest due cycle among undelivered deferred
// messages; ok is false when none are pending. The system's quiescence
// fast-forward uses it as a wake event: a skipped window never crosses
// (or lands on) a deferred delivery, so quiescence is never declared
// with a message due.
func (in *Injector) NextDue() (due int64, ok bool) {
	if len(in.pending) == 0 {
		return 0, false
	}
	due = in.pending[0].due
	for _, d := range in.pending[1:] {
		if d.due < due {
			due = d.due
		}
	}
	return due, true
}

// PendingMessages returns the count of undelivered deferred messages.
func (in *Injector) PendingMessages() int { return len(in.pending) }

// PendingInjections returns the count of unresolved value corruptions
// (loads still in flight at the end of a run).
func (in *Injector) PendingInjections() int { return len(in.live) }

// Summary renders the injector's end-of-run accounting in one line.
func (in *Injector) Summary() string {
	s := in.Stats
	return fmt.Sprintf(
		"faults: injected=%d detected=%d missed=%d vacated=%d benign=%d pending=%d dropped=%d delayed=%d suppressed=%d",
		s.Injected, s.Detected, s.Missed, s.Vacated, s.Benign,
		in.PendingInjections(), s.Dropped, s.Delayed, s.Suppressed)
}
