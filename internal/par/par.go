// Package par is the one shared bounded-parallelism helper behind
// every sweep in the simulator: the experiment matrix, the litmus
// campaign, and the CLI seed sweeps. Work is always expressed as n
// independent index-addressed cells whose results land in
// caller-preallocated slots, so parallel execution is free to schedule
// cells in any order while the caller's fold over the slots stays
// deterministic.
package par

// Mutex acquisition order for vbrlint's lockorder analyzer: the
// journal's mu (and RunSafe's panic-collection mu) stand alone and
// must never nest.
//
//vbr:lockorder mu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n itself when positive,
// otherwise runtime.GOMAXPROCS(0) — saturate the host by default
// instead of a hard-coded constant.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run invokes fn(i) for every i in [0, n), using up to workers
// goroutines (resolved through Workers). Cells are claimed from an
// atomic counter, so scheduling adapts to uneven cell costs without
// channel traffic. workers <= 1 (after resolution, or n == 1) runs
// serially on the calling goroutine. Run returns when every cell is
// done.
func Run(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
