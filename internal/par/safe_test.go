package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSafeAllSucceed(t *testing.T) {
	var n atomic.Int64
	fails := RunSafe(SafeOptions{Workers: 4}, 100, func(i int) error {
		n.Add(1)
		return nil
	})
	if len(fails) != 0 {
		t.Fatalf("failures: %v", fails)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d cells, want 100", n.Load())
	}
}

func TestRunSafePanicRecoveryWithIdentity(t *testing.T) {
	fails := RunSafe(SafeOptions{
		Workers: 4,
		Label:   func(i int) string { return fmt.Sprintf("machine=m%d", i) },
	}, 10, func(i int) error {
		if i == 3 || i == 7 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
	if len(fails) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(fails), fails)
	}
	// Sorted by index, carrying the caller's label and the stack.
	if fails[0].Index != 3 || fails[1].Index != 7 {
		t.Fatalf("indices %d,%d", fails[0].Index, fails[1].Index)
	}
	if fails[0].Label != "machine=m3" {
		t.Fatalf("label %q", fails[0].Label)
	}
	if !strings.Contains(fails[0].Err, "boom 3") {
		t.Fatalf("err %q", fails[0].Err)
	}
	if fails[0].Stack == "" {
		t.Fatal("panic failure must carry a stack")
	}
	if !strings.Contains(fails[0].String(), "machine=m3") {
		t.Fatalf("String() %q", fails[0].String())
	}
}

func TestRunSafeRetries(t *testing.T) {
	var attempts atomic.Int64
	fails := RunSafe(SafeOptions{Workers: 1, Retries: 2}, 1, func(i int) error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if len(fails) != 0 {
		t.Fatalf("failures after retries: %v", fails)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts %d, want 3", attempts.Load())
	}

	attempts.Store(0)
	fails = RunSafe(SafeOptions{Workers: 1, Retries: 2}, 1, func(i int) error {
		attempts.Add(1)
		return errors.New("permanent")
	})
	if len(fails) != 1 || fails[0].Attempts != 3 {
		t.Fatalf("want 1 failure after 3 attempts: %v", fails)
	}
}

func TestRunSafeTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	fails := RunSafe(SafeOptions{
		Workers: 2, Timeout: 20 * time.Millisecond,
		Retries: 5, // must NOT retry a timed-out cell
	}, 2, func(i int) error {
		if i == 1 {
			<-release // hangs past the deadline
		}
		return nil
	})
	if len(fails) != 1 {
		t.Fatalf("got %v", fails)
	}
	f := fails[0]
	if f.Index != 1 || !f.TimedOut || f.Attempts != 1 {
		t.Fatalf("failure %+v", f)
	}
	if !strings.Contains(f.String(), "timed-out") {
		t.Fatalf("String() %q", f.String())
	}
}
