package par

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type cellResult struct {
	IPC   float64 `json:"ipc"`
	Count uint64  `json:"count"`
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	want := cellResult{IPC: 1.0 / 3.0, Count: 42} // non-terminating float: exactness matters
	if err := j.Record("cell-a", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 1 {
		t.Fatalf("done %d, want 1", j2.Done())
	}
	var got cellResult
	if !j2.Lookup("cell-a", &got) {
		t.Fatal("cell-a not found")
	}
	if got != want {
		t.Fatalf("round trip %+v != %+v (float must be bit-exact)", got, want)
	}
	if j2.Lookup("cell-b", &got) {
		t.Fatal("phantom cell")
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, "fp-v2"); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("want fingerprint mismatch, got %v", err)
	}
}

func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "random.txt")
	if err := os.WriteFile(path, []byte("hello world\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, "fp-v1"); err == nil {
		t.Fatal("want error for non-journal file")
	}
}

func TestJournalPartialTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell-a", cellResult{IPC: 1, Count: 1})
	j.Record("cell-b", cellResult{IPC: 2, Count: 2})
	j.Close()

	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"cell-c","result":{"ip`)
	f.Close()

	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Done() != 2 {
		t.Fatalf("done %d, want 2 (partial tail dropped)", j2.Done())
	}
	// The truncated tail must be gone so new records append cleanly.
	if err := j2.Record("cell-c", cellResult{IPC: 3, Count: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	var got cellResult
	if j3.Done() != 3 || !j3.Lookup("cell-c", &got) || got.Count != 3 {
		t.Fatalf("healed journal: done=%d got=%+v", j3.Done(), got)
	}
}

// TestJournalGarbageTailTruncated covers the other crash shape: the
// final line is newline-terminated but unparsable (a torn write that
// happened to include the newline, or disk corruption). The journal
// must drop the garbage line and everything after it, keep the intact
// prefix bit-identical, and accept fresh appends cleanly.
func TestJournalGarbageTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	want := cellResult{IPC: 2.0 / 7.0, Count: 9}
	j.Record("cell-a", want)
	j.Record("cell-b", cellResult{IPC: 1, Count: 1})
	j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n")
	f.WriteString(`{"key":"cell-after-garbage","result":{"ipc":3,"count":3}}` + "\n")
	f.Close()

	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	// Everything from the first bad line on is untrusted and cut — the
	// record after the garbage line goes too.
	if j2.Done() != 2 {
		t.Fatalf("done %d, want 2 (garbage tail dropped)", j2.Done())
	}
	var got cellResult
	if !j2.Lookup("cell-a", &got) || got != want {
		t.Fatalf("intact prefix corrupted: got %+v want %+v", got, want)
	}
	// The file must have been rewritten to the valid prefix so appends
	// after recovery parse cleanly on the next open.
	if err := j2.Record("cell-c", cellResult{IPC: 4, Count: 4}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Done() != 3 || !j3.Lookup("cell-a", &got) || got != want {
		t.Fatalf("resume after recovery not bit-identical: done=%d got=%+v", j3.Done(), got)
	}
}

// TestJournalKeys pins the restart-recovery contract: Keys returns
// every recorded key, sorted, regardless of insertion order.
func TestJournalKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"zeta", "alpha", "mid"} {
		j.Record(k, cellResult{})
	}
	want := []string{"alpha", "mid", "zeta"}
	got := j.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys %v, want %v", got, want)
		}
	}
	j.Close()
	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got = j2.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys after reopen %v, want %v", got, want)
		}
	}
}

func TestJournalRecordAfterCloseDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A timed-out straggler finishing late must not crash or write.
	if err := j.Record("late", cellResult{}); err != nil {
		t.Fatalf("record after close: %v", err)
	}
	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 0 {
		t.Fatal("late record must be dropped")
	}
}

func TestJournalDuplicateKeyKeepsFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Record("cell-a", cellResult{Count: 1})
	j.Record("cell-a", cellResult{Count: 2})
	var got cellResult
	if !j.Lookup("cell-a", &got) || got.Count != 1 {
		t.Fatalf("got %+v, want first record", got)
	}
}

// failingFile wraps a journalFile, failing writes or syncs on command —
// the disk-full / dying-disk analog for the append path.
type failingFile struct {
	inner     journalFile
	failWrite bool
	failSync  bool
}

func (f *failingFile) Write(p []byte) (int, error) {
	if f.failWrite {
		return 0, errors.New("no space left on device")
	}
	return f.inner.Write(p)
}

func (f *failingFile) Sync() error {
	if f.failSync {
		return errors.New("input/output error")
	}
	return f.inner.Sync()
}

func (f *failingFile) Close() error { return f.inner.Close() }

// TestJournalAppendFailureTyped: a failed write or fsync surfaces as a
// *JournalError naming the file and operation, and the cell is NOT
// marked done in memory — the checkpoint never claims more than the
// disk durably holds. Clearing the fault lets the same key record
// normally.
func TestJournalAppendFailureTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ff := &failingFile{inner: j.f}
	j.f = ff

	for _, tc := range []struct {
		name   string
		arm    func()
		wantOp string
	}{
		{"write", func() { ff.failWrite = true; ff.failSync = false }, "append"},
		{"fsync", func() { ff.failWrite = false; ff.failSync = true }, "fsync"},
	} {
		tc.arm()
		err := j.Record("cell-"+tc.name, cellResult{IPC: 1, Count: 2})
		var je *JournalError
		if !errors.As(err, &je) {
			t.Fatalf("%s failure: got %v, want *JournalError", tc.name, err)
		}
		if je.Op != tc.wantOp || je.Path != path || je.Unwrap() == nil {
			t.Fatalf("%s failure: JournalError = %+v, want op %q on %s", tc.name, je, tc.wantOp, path)
		}
		var got cellResult
		if j.Lookup("cell-"+tc.name, &got) {
			t.Fatalf("%s failure: failed append still marked the cell done", tc.name)
		}
	}

	// Fault cleared: the key records and reads back.
	ff.failWrite, ff.failSync = false, false
	if err := j.Record("cell-write", cellResult{IPC: 1, Count: 2}); err != nil {
		t.Fatalf("record after clearing fault: %v", err)
	}
	var got cellResult
	if !j.Lookup("cell-write", &got) || got.Count != 2 {
		t.Fatalf("got %+v, want the recovered record", got)
	}
}
