package par

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type cellResult struct {
	IPC   float64 `json:"ipc"`
	Count uint64  `json:"count"`
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	want := cellResult{IPC: 1.0 / 3.0, Count: 42} // non-terminating float: exactness matters
	if err := j.Record("cell-a", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 1 {
		t.Fatalf("done %d, want 1", j2.Done())
	}
	var got cellResult
	if !j2.Lookup("cell-a", &got) {
		t.Fatal("cell-a not found")
	}
	if got != want {
		t.Fatalf("round trip %+v != %+v (float must be bit-exact)", got, want)
	}
	if j2.Lookup("cell-b", &got) {
		t.Fatal("phantom cell")
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, "fp-v2"); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("want fingerprint mismatch, got %v", err)
	}
}

func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "random.txt")
	if err := os.WriteFile(path, []byte("hello world\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, "fp-v1"); err == nil {
		t.Fatal("want error for non-journal file")
	}
}

func TestJournalPartialTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell-a", cellResult{IPC: 1, Count: 1})
	j.Record("cell-b", cellResult{IPC: 2, Count: 2})
	j.Close()

	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"cell-c","result":{"ip`)
	f.Close()

	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Done() != 2 {
		t.Fatalf("done %d, want 2 (partial tail dropped)", j2.Done())
	}
	// The truncated tail must be gone so new records append cleanly.
	if err := j2.Record("cell-c", cellResult{IPC: 3, Count: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	var got cellResult
	if j3.Done() != 3 || !j3.Lookup("cell-c", &got) || got.Count != 3 {
		t.Fatalf("healed journal: done=%d got=%+v", j3.Done(), got)
	}
}

func TestJournalRecordAfterCloseDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A timed-out straggler finishing late must not crash or write.
	if err := j.Record("late", cellResult{}); err != nil {
		t.Fatalf("record after close: %v", err)
	}
	j2, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 0 {
		t.Fatal("late record must be dropped")
	}
}

func TestJournalDuplicateKeyKeepsFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, "fp-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Record("cell-a", cellResult{Count: 1})
	j.Record("cell-a", cellResult{Count: 2})
	var got cellResult
	if !j.Lookup("cell-a", &got) || got.Count != 1 {
		t.Fatalf("got %+v, want first record", got)
	}
}
