package par

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Failure records one sweep cell that did not complete. The Label is
// the cell's identity in the caller's vocabulary ("machine=X
// workload=Y sample=3"), so a crash deep inside a worker is reportable
// without reconstructing the index mapping.
type Failure struct {
	// Index is the cell's position in [0, n).
	Index int `json:"index"`
	// Label is the caller-supplied cell identity.
	Label string `json:"label"`
	// Err is the final error (or recovered panic) message.
	Err string `json:"err"`
	// Stack is the goroutine stack at the final panic ("" for plain
	// errors and timeouts).
	Stack string `json:"stack,omitempty"`
	// Attempts is how many times the cell ran (1 + retries used).
	Attempts int `json:"attempts"`
	// TimedOut marks a cell abandoned at its wall-clock deadline.
	TimedOut bool `json:"timed_out,omitempty"`
}

func (f Failure) String() string {
	s := fmt.Sprintf("cell %d (%s): %s [attempts=%d", f.Index, f.Label, f.Err, f.Attempts)
	if f.TimedOut {
		s += " timed-out"
	}
	return s + "]"
}

// SafeOptions configure RunSafe.
type SafeOptions struct {
	// Workers as in Run/Workers.
	Workers int
	// Retries is how many times a failed cell is re-attempted (0 = run
	// once). Retries are for transient host-level trouble; a
	// deterministic panic will fail every attempt and land in Failures
	// with the attempt count.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (0 = retry immediately).
	Backoff time.Duration
	// Timeout, when positive, is each attempt's wall-clock deadline. An
	// attempt that overruns is abandoned: its goroutine keeps running
	// (Go cannot kill it) but RunSafe moves on; the straggler's writes
	// land only in its own result slot, which the caller must treat as
	// failed (it is listed in Failures). Wall-clock deadlines are
	// inherently nondeterministic — leave 0 for reproducible sweeps.
	Timeout time.Duration
	// Label names cell i for failure reports (nil = "cell <i>").
	Label func(i int) string
}

// RunSafe is Run with per-cell panic recovery, bounded retry, and
// optional wall-clock deadlines: the resilient sweep driver. fn(i) runs
// for every i in [0, n); a panic or returned error fails the attempt; a
// cell that exhausts its attempts is reported in the returned slice
// (sorted by index) instead of taking down the process. An empty slice
// means every cell completed.
func RunSafe(o SafeOptions, n int, fn func(int) error) []Failure {
	if n <= 0 {
		return nil
	}
	var mu sync.Mutex
	var failures []Failure
	Run(o.Workers, n, func(i int) {
		if f := runCell(o, i, fn); f != nil {
			mu.Lock()
			failures = append(failures, *f)
			mu.Unlock()
		}
	})
	sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })
	return failures
}

// runCell drives one cell through its attempts; nil means success.
func runCell(o SafeOptions, i int, fn func(int) error) *Failure {
	var last Failure
	backoff := o.Backoff
	for attempt := 1; ; attempt++ {
		err, stack, timedOut := attemptCell(o.Timeout, i, fn)
		if err == nil {
			return nil
		}
		last = Failure{
			Index: i, Label: cellLabel(o.Label, i), Err: err.Error(),
			Stack: stack, Attempts: attempt, TimedOut: timedOut,
		}
		if attempt > o.Retries {
			return &last
		}
		if timedOut {
			// The attempt's goroutine is still running; re-running the
			// same cell concurrently would race on its result slot.
			return &last
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

func cellLabel(label func(int) string, i int) string {
	if label != nil {
		return label(i)
	}
	return fmt.Sprintf("cell %d", i)
}

// attemptCell runs one attempt with panic recovery and an optional
// deadline.
func attemptCell(timeout time.Duration, i int, fn func(int) error) (err error, stack string, timedOut bool) {
	run := func() (err error, stack string) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
				stack = string(debug.Stack())
			}
		}()
		return fn(i), ""
	}
	if timeout <= 0 {
		err, stack = run()
		return err, stack, false
	}
	type outcome struct {
		err   error
		stack string
	}
	ch := make(chan outcome, 1)
	go func() {
		e, st := run()
		ch <- outcome{e, st}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.err, out.stack, false
	case <-timer.C:
		return fmt.Errorf("deadline exceeded (%s)", timeout), "", true
	}
}
