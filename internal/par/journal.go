package par

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// JournalError is a failed write or fsync on the journal's append path.
// Appends are the journal's durability promise — a sweep that keeps
// running after a silent append failure would re-simulate "checkpointed"
// cells on resume, and a farm cache that dropped a result would serve a
// cell cheaply now and expensively later — so the error is typed: any
// caller can errors.As for it and distinguish "the disk is failing"
// from "this cell misbehaved".
type JournalError struct {
	Path string // journal file
	Op   string // "append" or "fsync"
	Err  error  // the underlying filesystem error
}

func (e *JournalError) Error() string {
	return fmt.Sprintf("par: journal %s: %s failed: %v", e.Path, e.Op, e.Err)
}

func (e *JournalError) Unwrap() error { return e.Err }

// journalFile is the slice of *os.File the journal's append path needs;
// an interface so tests can inject disk-full-style failures.
type journalFile interface {
	io.WriteCloser
	Sync() error
}

// Journal is a JSONL checkpoint for sweeps: one header line binding the
// file to a sweep fingerprint, then one line per completed cell
// ({"key":..., "result":...}), appended and fsynced as cells finish. A
// sweep killed mid-run leaves at worst one truncated trailing line,
// which reopening tolerates; -resume then replays completed cells from
// the journal instead of re-simulating them. Results round-trip through
// encoding/json, whose float64 encoding is exact (shortest-form), so a
// resumed sweep's folds are bit-identical to an uninterrupted run's.
type Journal struct {
	mu     sync.Mutex
	f      journalFile
	path   string
	closed bool
	done   map[string]json.RawMessage
}

// journalLine is one cell record on disk.
type journalLine struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// journalHeader is the first line of the file.
type journalHeader struct {
	Fingerprint string `json:"fingerprint"`
}

// OpenJournal opens (or creates) the checkpoint at path. fingerprint
// must capture every input that shapes cell results (config, machine
// set, seeds, code-visible versions); a journal whose header carries a
// different fingerprint belongs to a different sweep and is discarded
// with an error rather than silently mixed in.
func OpenJournal(path, fingerprint string) (*Journal, error) {
	j := &Journal{path: path, done: make(map[string]json.RawMessage)}
	// validLen is how many leading bytes of the existing file hold intact
	// lines; everything after (a truncated tail from a killed run, or an
	// unparsable record) is cut before appending resumes.
	validLen := int64(0)
	if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
		rest := raw
		first := true
		for {
			idx := bytes.IndexByte(rest, '\n')
			if idx < 0 {
				break // partial trailing line: discard
			}
			line := rest[:idx]
			if first {
				first = false
				var h journalHeader
				if err := json.Unmarshal(line, &h); err != nil || h.Fingerprint == "" {
					return nil, fmt.Errorf("par: %s is not a sweep journal", path)
				}
				if h.Fingerprint != fingerprint {
					return nil, fmt.Errorf("par: journal %s belongs to a different sweep (fingerprint %q, want %q)",
						path, h.Fingerprint, fingerprint)
				}
			} else {
				var l journalLine
				if err := json.Unmarshal(line, &l); err != nil {
					break
				}
				j.done[l.Key] = l.Result
			}
			validLen += int64(idx) + 1
			rest = rest[idx+1:]
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	if err := f.Truncate(validLen); err != nil {
		_ = f.Close() // the write/truncate error is the one worth reporting
		return nil, err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		_ = f.Close() // the write/truncate error is the one worth reporting
		return nil, err
	}
	if validLen == 0 {
		hdr, _ := json.Marshal(journalHeader{Fingerprint: fingerprint})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			_ = f.Close() // the write/truncate error is the one worth reporting
			return nil, &JournalError{Path: path, Op: "append", Err: err}
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // the write/truncate error is the one worth reporting
			return nil, &JournalError{Path: path, Op: "fsync", Err: err}
		}
	}
	return j, nil
}

// Done returns how many completed cells the journal holds.
func (j *Journal) Done() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Keys returns every recorded cell key in sorted order. Restart
// recovery scans these to find work that completed before a crash.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	keys := make([]string, 0, len(j.done))
	for k := range j.done {
		keys = append(keys, k)
	}
	j.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Lookup unmarshals the stored result for key into out, reporting
// whether the cell was found.
func (j *Journal) Lookup(key string, out any) bool {
	j.mu.Lock()
	raw, ok := j.done[key]
	j.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Record appends one completed cell and fsyncs. Safe for concurrent
// workers; calls after Close are dropped (a timed-out straggler may
// finish after the sweep gave up on it). Write and fsync failures come
// back as a *JournalError, and the cell is NOT marked done in memory —
// the checkpoint only ever claims what the disk durably holds.
func (j *Journal) Record(key string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	line, err := json.Marshal(journalLine{Key: key, Result: raw})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if _, ok := j.done[key]; ok {
		return nil
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return &JournalError{Path: j.path, Op: "append", Err: err}
	}
	if err := j.f.Sync(); err != nil {
		return &JournalError{Path: j.path, Op: "fsync", Err: err}
	}
	j.done[key] = raw
	return nil
}

// Close flushes and closes the journal file. Further Records are
// silently dropped.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
