package cache

// TLB models address translation for the paper's physically-indexed
// data cache. Its role in this reproduction is the §3 observation that
// replay accesses are cheaper than premature ones: "the replay access
// can reuse the effective address calculated during the premature
// load's execution, and in systems with a physically indexed cache the
// TLB need not be accessed a second time." Demand accesses look the
// TLB up (and stall on misses for a page-walk latency); replay
// accesses do not, and the avoided lookups feed the §5.3 energy
// argument.
type TLB struct {
	entries []tlbEntry
	ways    int
	sets    int
	tick    uint32
	// WalkLatency is the page-table-walk penalty on a miss.
	WalkLatency int
	// Accesses, Misses count demand translations.
	Accesses, Misses uint64
}

type tlbEntry struct {
	vpn   uint64
	valid bool
	age   uint32
}

// PageShift is the page size (4 KiB) in bits.
const PageShift = 12

// NewTLB builds a set-associative TLB (entries must be a multiple of
// ways; set count a power of two).
func NewTLB(entries, ways, walkLatency int) *TLB {
	sets := entries / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: TLB set count must be a positive power of two")
	}
	return &TLB{
		entries:     make([]tlbEntry, entries),
		ways:        ways,
		sets:        sets,
		WalkLatency: walkLatency,
	}
}

// Translate performs a demand translation for addr, returning the added
// latency (0 on a hit, WalkLatency on a miss; the paper's machine walks
// page tables in hardware).
func (t *TLB) Translate(addr uint64) int {
	t.Accesses++
	vpn := addr >> PageShift
	set := int(vpn) & (t.sets - 1)
	base := set * t.ways
	t.tick++
	victim := base
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if e.valid && e.vpn == vpn {
			e.age = t.tick
			return 0
		}
		if !e.valid {
			victim = base + w
		} else if t.entries[victim].valid && e.age < t.entries[victim].age {
			victim = base + w
		}
	}
	t.Misses++
	t.entries[victim] = tlbEntry{vpn: vpn, valid: true, age: t.tick}
	return t.WalkLatency
}

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
