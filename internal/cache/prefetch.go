package cache

// StridePrefetcher is a per-PC stride prefetcher modeled after the
// Power4 hardware prefetcher referenced in Table 3: it tracks the last
// address and stride observed by each load PC and, once a stride repeats
// (confidence ≥ threshold), predicts the next block address to fetch.
type StridePrefetcher struct {
	entries []pfEntry
	mask    uint64
	// Issued counts prefetch predictions produced.
	Issued uint64
}

type pfEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8
}

const pfConfThreshold = 2

// NewStridePrefetcher builds a prefetcher with the given table size
// (power of two).
func NewStridePrefetcher(entries int) *StridePrefetcher {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("cache: prefetcher entries must be a positive power of two")
	}
	return &StridePrefetcher{entries: make([]pfEntry, entries), mask: uint64(entries - 1)}
}

// Observe records a demand access by the load at pc and returns the
// block address to prefetch, if any.
func (p *StridePrefetcher) Observe(pc, addr uint64) (prefetch uint64, ok bool) {
	e := &p.entries[(pc>>2)&p.mask]
	if e.pc != pc {
		*e = pfEntry{pc: pc, lastAddr: addr}
		return 0, false
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return 0, false
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return 0, false
	}
	if e.conf < pfConfThreshold {
		return 0, false
	}
	next := uint64(int64(addr) + stride)
	if BlockAddr(next) == BlockAddr(addr) {
		// Same block: predict the next block in stride direction
		// instead, so unit-stride word walks still cover new blocks.
		if stride > 0 {
			next = BlockAddr(addr) + BlockSize
		} else {
			next = BlockAddr(addr) - BlockSize
		}
	}
	p.Issued++
	return BlockAddr(next), true
}
