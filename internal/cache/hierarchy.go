package cache

// Source identifies where an access was satisfied.
type Source int

const (
	// SrcL1 .. SrcMemory name the level that supplied the data.
	SrcL1 Source = iota
	SrcL2
	SrcL3
	SrcMemory
	// SrcRemote marks a fill sourced from another processor's cache
	// (or a coherent DMA agent) — the "external source" of the paper's
	// no-recent-miss filter.
	SrcRemote
	// SrcMSHR marks an access merged into an outstanding miss.
	SrcMSHR
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcMemory:
		return "memory"
	case SrcRemote:
		return "remote"
	case SrcMSHR:
		return "mshr"
	}
	return "?"
}

// AccessResult reports the timing of one cache access.
type AccessResult struct {
	// Latency is the cycles until data is available.
	Latency int
	// Source is where the data came from.
	Source Source
	// External is true when the block entered the local hierarchy from
	// another processor's cache or a DMA agent.
	External bool
}

// Backend resolves accesses that miss the private hierarchy. The
// multiprocessor bus implements it; uniprocessors use MemoryBackend.
type Backend interface {
	// FetchRead obtains a readable copy of block for core.
	FetchRead(core int, block uint64) (latency int, external bool)
	// FetchExclusive obtains an exclusive (writable) copy of block for
	// core, invalidating remote copies.
	FetchExclusive(core int, block uint64) (latency int, external bool)
	// StillExclusive reports whether core already holds block
	// exclusively (no upgrade needed to write).
	StillExclusive(core int, block uint64) bool
}

// MemoryBackend is the uniprocessor backend: a flat memory with a fixed
// latency and no other agents.
type MemoryBackend struct {
	// Latency is the memory access latency (Table 3: 400 cycles).
	Latency int
}

// FetchRead implements Backend.
func (m MemoryBackend) FetchRead(int, uint64) (int, bool) { return m.Latency, false }

// FetchExclusive implements Backend.
func (m MemoryBackend) FetchExclusive(int, uint64) (int, bool) { return m.Latency, false }

// StillExclusive implements Backend: a uniprocessor always owns its
// cached blocks.
func (m MemoryBackend) StillExclusive(int, uint64) bool { return true }

// HierConfig sizes the private hierarchy.
type HierConfig struct {
	L1I, L1D, L2, L3 Config
	// PrefetchEntries sizes the stride prefetcher table (0 disables).
	PrefetchEntries int
	// TLBEntries/TLBWays size the data TLB (0 disables translation
	// modeling); TLBWalkLatency is the hardware page-walk penalty.
	TLBEntries, TLBWays, TLBWalkLatency int
}

// DefaultHierConfig returns the Table 3 hierarchy: 32k direct-mapped
// L1I/L1D (1 cycle), 256k 8-way L2 (7), 8M 8-way unified L3 (15).
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:             Config{Size: 32 << 10, Ways: 1, Latency: 1},
		L1D:             Config{Size: 32 << 10, Ways: 1, Latency: 1},
		L2:              Config{Size: 256 << 10, Ways: 8, Latency: 7},
		L3:              Config{Size: 8 << 20, Ways: 8, Latency: 15},
		PrefetchEntries: 256,
		TLBEntries:      128,
		TLBWays:         4,
		TLBWalkLatency:  30,
	}
}

// Stats are the hierarchy's event counters.
type Stats struct {
	Reads, Writes       uint64
	L1DHits             uint64
	L2Hits, L3Hits      uint64
	MemFills            uint64
	RemoteFills         uint64
	MSHRMerges          uint64
	Prefetches          uint64
	SnoopInvalidations  uint64 // external invalidations that hit locally
	SnoopMisses         uint64 // external invalidations filtered out
	InstrFetches        uint64
	InstrMisses         uint64
	WriteUpgrades       uint64
	ExternalFillSignals uint64
}

// Hierarchy is one core's private, inclusive, three-level cache
// hierarchy plus MSHRs and the stride prefetcher.
type Hierarchy struct {
	Core    int
	cfg     HierConfig
	l1i     *Array
	l1d     *Array
	l2      *Array
	l3      *Array
	pf      *StridePrefetcher
	tlb     *TLB
	backend Backend
	mshr    map[uint64]int64 // block -> fill-ready cycle
	// OnFill, if set, is called when a block enters the local hierarchy
	// (demand misses and store write-allocates) or re-enters it in a
	// new coherence state (a bus exclusivity upgrade). This is the
	// paper's no-recent-miss signal ("each time a new cache block
	// enters a processor's local cache, the cache unit asserts a
	// signal", §3.1), asserted for every demand fill regardless of
	// source: a fill from memory can race a remote store to the same
	// block — the data crosses the bus before the store performs, the
	// later invalidation is not a fill, and a premature load bound to
	// the fill's value would commit stale with no event in between (the
	// SB litmus test exposes exactly this with cold caches). Upgrades
	// are the write side of the same argument: a dependence cycle
	// through this processor must enter through some bus transaction
	// program-ordered before the vulnerable load, and with warm caches
	// a store's upgrade can be the only one (SB again, prewarmed).
	// External prefetch fills also assert it.
	OnFill func(block uint64)
	// OnExternalFill, if set, is called for the subset of fills sourced
	// from another processor's cache or a DMA agent.
	OnExternalFill func(block uint64)
	// OnL3Evict, if set, is called when a block leaves the inclusive
	// hierarchy. Load-queue snooping and the no-recent-snoop filter
	// subscribe so that external-invalidate visibility is not lost to
	// castouts (paper §3.1).
	OnL3Evict func(block uint64)
	Stats     Stats
}

// NewHierarchy builds one core's hierarchy over the given backend.
func NewHierarchy(core int, cfg HierConfig, backend Backend) *Hierarchy {
	h := &Hierarchy{
		Core:    core,
		cfg:     cfg,
		l1i:     NewArray(cfg.L1I),
		l1d:     NewArray(cfg.L1D),
		l2:      NewArray(cfg.L2),
		l3:      NewArray(cfg.L3),
		backend: backend,
		mshr:    make(map[uint64]int64),
	}
	if cfg.PrefetchEntries > 0 {
		h.pf = NewStridePrefetcher(cfg.PrefetchEntries)
	}
	if cfg.TLBEntries > 0 {
		h.tlb = NewTLB(cfg.TLBEntries, cfg.TLBWays, cfg.TLBWalkLatency)
	}
	return h
}

// DataTLB returns the data TLB (nil when translation modeling is off).
func (h *Hierarchy) DataTLB() *TLB { return h.tlb }

// fill inserts block into every level, enforcing inclusion on evictions
// (an L3 victim is purged from L2 and L1; an L2 victim from L1).
func (h *Hierarchy) fill(block uint64) {
	if v, ev := h.l3.Insert(block); ev {
		h.l2.Invalidate(v)
		h.l1d.Invalidate(v)
		h.l1i.Invalidate(v)
		if h.OnL3Evict != nil {
			h.OnL3Evict(v)
		}
	}
	if v, ev := h.l2.Insert(block); ev {
		h.l1d.Invalidate(v)
		h.l1i.Invalidate(v)
	}
	h.l1d.Insert(block)
}

// Read performs a demand data read for the load at pc, returning its
// timing. cycle is the current simulation cycle (for MSHR merging).
func (h *Hierarchy) Read(pc, addr uint64, cycle int64) AccessResult {
	h.Stats.Reads++
	block := BlockAddr(addr)
	res := h.lookupData(block, cycle)
	if h.tlb != nil {
		// Demand accesses translate; replay accesses (ReadReplay) reuse
		// the premature translation (paper §3).
		res.Latency += h.tlb.Translate(addr)
	}
	h.observePrefetch(pc, addr)
	return res
}

func (h *Hierarchy) lookupData(block uint64, cycle int64) AccessResult {
	if h.l1d.Lookup(block) {
		h.Stats.L1DHits++
		return AccessResult{Latency: h.cfg.L1D.Latency, Source: SrcL1}
	}
	if ready, ok := h.mshr[block]; ok {
		if ready > cycle {
			h.Stats.MSHRMerges++
			return AccessResult{Latency: int(ready - cycle), Source: SrcMSHR}
		}
		delete(h.mshr, block)
	}
	if h.l2.Lookup(block) {
		h.fill(block)
		h.Stats.L2Hits++
		return AccessResult{Latency: h.cfg.L2.Latency, Source: SrcL2}
	}
	if h.l3.Lookup(block) {
		h.fill(block)
		h.Stats.L3Hits++
		return AccessResult{Latency: h.cfg.L3.Latency, Source: SrcL3}
	}
	lat, external := h.backend.FetchRead(h.Core, block)
	lat += h.cfg.L3.Latency // miss traverses the hierarchy
	h.fill(block)
	h.mshr[block] = cycle + int64(lat)
	if h.OnFill != nil {
		h.OnFill(block)
	}
	src := SrcMemory
	if external {
		src = SrcRemote
		h.Stats.RemoteFills++
		h.signalExternalFill(block)
	} else {
		h.Stats.MemFills++
	}
	return AccessResult{Latency: lat, Source: src, External: external}
}

func (h *Hierarchy) signalExternalFill(block uint64) {
	h.Stats.ExternalFillSignals++
	if h.OnExternalFill != nil {
		h.OnExternalFill(block)
	}
}

func (h *Hierarchy) observePrefetch(pc, addr uint64) {
	if h.pf == nil {
		return
	}
	if next, ok := h.pf.Observe(pc, addr); ok {
		if !h.l1d.Contains(next) {
			// Prefetch fills are modeled as free background traffic;
			// in a multiprocessor they still acquire a read copy so
			// the coherence directory stays exact.
			if !h.l2.Contains(next) && !h.l3.Contains(next) {
				_, external := h.backend.FetchRead(h.Core, next)
				if external && h.OnFill != nil {
					// Prefetched externally-written blocks also "enter
					// the hierarchy" and must assert the signal.
					h.OnFill(next)
				}
			}
			h.fill(next)
			h.Stats.Prefetches++
		}
	}
}

// Prewarm establishes a read copy of addr's block through the normal
// fill path — the backend (bus directory) registers this core as a
// sharer, so later invalidations are still delivered — without charging
// an MSHR into the future and without asserting the no-recent-miss
// fill signal (prewarming models pre-run state, not a mid-run event).
func (h *Hierarchy) Prewarm(addr uint64) {
	block := BlockAddr(addr)
	if h.l1d.Lookup(block) {
		return
	}
	if !h.l2.Contains(block) && !h.l3.Contains(block) {
		h.backend.FetchRead(h.Core, block)
	}
	h.fill(block)
	delete(h.mshr, block)
}

// ReadReplay performs the replay stage's second cache access for a
// load: identical timing to Read, but it does not train the stride
// prefetcher (replays revisit old addresses and would destroy stride
// confidence).
func (h *Hierarchy) ReadReplay(addr uint64, cycle int64) AccessResult {
	h.Stats.Reads++
	return h.lookupData(BlockAddr(addr), cycle)
}

// Write performs a store's cache access at commit. The store's data is
// written to the shared memory image by the pipeline; this models the
// tag/coherence side: write-allocate and exclusivity upgrade.
func (h *Hierarchy) Write(addr uint64, cycle int64) AccessResult {
	h.Stats.Writes++
	if h.tlb != nil {
		// Store agens translated earlier in the pipe; commit-time
		// writes reuse that translation. Charge the lookup without a
		// stall (the agen hid the walk) but keep the statistics exact.
		h.tlb.Translate(addr)
	}
	block := BlockAddr(addr)
	present := h.l1d.Lookup(block) || h.l2.Contains(block) || h.l3.Contains(block)
	if present && h.backend.StillExclusive(h.Core, block) {
		return AccessResult{Latency: h.cfg.L1D.Latency, Source: SrcL1}
	}
	lat, external := h.backend.FetchExclusive(h.Core, block)
	h.Stats.WriteUpgrades++
	h.fill(block)
	if h.OnFill != nil {
		// A store's write-allocate brings a block into the hierarchy,
		// and an exclusivity upgrade re-acquires one over the bus; both
		// assert the no-recent-miss signal (see the OnFill doc — the
		// upgrade case is what catches warm-cache SB).
		h.OnFill(block)
	}
	if external {
		h.Stats.RemoteFills++
		h.signalExternalFill(block)
	}
	if present {
		// Upgrade of an already-present shared copy.
		lat = h.cfg.L1D.Latency
	}
	return AccessResult{Latency: lat, Source: SrcL1, External: external}
}

// InstrFetch models an instruction-cache access for the fetch stage.
func (h *Hierarchy) InstrFetch(pc uint64) AccessResult {
	h.Stats.InstrFetches++
	block := BlockAddr(pc)
	if h.l1i.Lookup(block) {
		return AccessResult{Latency: h.cfg.L1I.Latency, Source: SrcL1}
	}
	h.Stats.InstrMisses++
	lat := h.cfg.L2.Latency
	if !h.l2.Lookup(block) {
		if h.l3.Lookup(block) {
			lat = h.cfg.L3.Latency
		} else {
			mlat, _ := h.backend.FetchRead(h.Core, block)
			lat = h.cfg.L3.Latency + mlat
		}
		h.l3.Insert(block)
		h.l2.Insert(block)
	}
	h.l1i.Insert(block)
	return AccessResult{Latency: lat, Source: SrcL2}
}

// SnoopInvalidate implements the coherence peer interface: it purges the
// block from the whole private hierarchy and reports whether any copy
// was present (an inclusive hierarchy filters snoops that miss the L3).
func (h *Hierarchy) SnoopInvalidate(block uint64) bool {
	hit := h.l3.Invalidate(block)
	h.l2.Invalidate(block)
	h.l1d.Invalidate(block)
	delete(h.mshr, BlockAddr(block)) // kill any outstanding fill

	if hit {
		h.Stats.SnoopInvalidations++
	} else {
		h.Stats.SnoopMisses++
	}
	return hit
}

// SnoopSharedProbe reports whether the block is present locally (used
// for cache-to-cache transfer decisions); tag-only modeling needs no
// state change on a downgrade.
func (h *Hierarchy) SnoopSharedProbe(block uint64) bool {
	return h.l3.Contains(block) || h.l2.Contains(block) || h.l1d.Contains(block)
}

// L1DContains reports L1 data-cache presence (used by tests and the
// replay stage's hit assumption checks).
func (h *Hierarchy) L1DContains(addr uint64) bool { return h.l1d.Contains(BlockAddr(addr)) }

// MissRates returns the L1D/L2/L3 demand miss rates.
func (h *Hierarchy) MissRates() (l1, l2, l3 float64) {
	return h.l1d.MissRate(), h.l2.MissRate(), h.l3.MissRate()
}
