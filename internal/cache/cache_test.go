package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{Size: 1024, Ways: 2, Latency: 1} } // 8 sets

func TestArrayHitMiss(t *testing.T) {
	a := NewArray(small())
	if a.Lookup(0x100) {
		t.Error("cold cache should miss")
	}
	a.Insert(0x100)
	if !a.Lookup(0x100) {
		t.Error("inserted block should hit")
	}
	if !a.Lookup(0x13f) {
		t.Error("same block, different offset should hit")
	}
	if a.Lookup(0x140) {
		t.Error("adjacent block should miss")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := NewArray(small()) // 2 ways, 8 sets; set stride = 8*64 = 512
	// Three conflicting blocks in one set.
	b0, b1, b2 := uint64(0x0), uint64(0x200), uint64(0x400)
	a.Insert(b0)
	a.Insert(b1)
	a.Lookup(b0) // b0 now MRU
	victim, ev := a.Insert(b2)
	if !ev || victim != b1 {
		t.Errorf("expected b1 evicted, got %#x (evicted=%v)", victim, ev)
	}
	if !a.Contains(b0) || a.Contains(b1) || !a.Contains(b2) {
		t.Error("wrong post-eviction contents")
	}
}

func TestArrayInsertExistingRefreshes(t *testing.T) {
	a := NewArray(small())
	a.Insert(0x0)
	a.Insert(0x200)
	a.Insert(0x0) // refresh: should not evict, should make 0x0 MRU
	victim, ev := a.Insert(0x400)
	if !ev || victim != 0x200 {
		t.Errorf("refresh did not update LRU: victim %#x", victim)
	}
}

func TestArrayInvalidate(t *testing.T) {
	a := NewArray(small())
	a.Insert(0x100)
	if !a.Invalidate(0x100) {
		t.Error("invalidate of present block should report true")
	}
	if a.Invalidate(0x100) {
		t.Error("double invalidate should report false")
	}
	if a.Contains(0x100) {
		t.Error("invalidated block still present")
	}
}

func TestArrayMissRate(t *testing.T) {
	a := NewArray(small())
	a.Lookup(0x100) // miss
	a.Insert(0x100)
	a.Lookup(0x100) // hit
	if r := a.MissRate(); r != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", r)
	}
	if (NewArray(small())).MissRate() != 0 {
		t.Error("empty array miss rate should be 0")
	}
}

func TestArrayContainsProperty(t *testing.T) {
	a := NewArray(Config{Size: 4096, Ways: 4, Latency: 1})
	err := quick.Check(func(addr uint64) bool {
		a.Insert(addr)
		return a.Contains(addr) && a.Lookup(addr)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count should panic")
		}
	}()
	NewArray(Config{Size: 3 * 64, Ways: 1, Latency: 1})
}

func TestStridePrefetcher(t *testing.T) {
	p := NewStridePrefetcher(16)
	pc := uint64(0x40)
	// Unit-block stride: 0, 64, 128 -> confidence builds, 192 predicted.
	var got uint64
	var ok bool
	for _, addr := range []uint64{0, 64, 128, 192} {
		got, ok = p.Observe(pc, addr)
		_ = got
	}
	if !ok {
		t.Fatal("steady stride should trigger prefetch")
	}
	if got != 256 {
		t.Errorf("prefetch = %#x, want 0x100", got)
	}
}

func TestStridePrefetcherSubBlockStride(t *testing.T) {
	p := NewStridePrefetcher(16)
	pc := uint64(0x44)
	var got uint64
	var ok bool
	for _, addr := range []uint64{1000, 1008, 1016, 1024, 1032} {
		got, ok = p.Observe(pc, addr)
	}
	if !ok {
		t.Fatal("word-stride walk should trigger prefetch")
	}
	if got != BlockAddr(1032)+BlockSize {
		t.Errorf("sub-block stride should predict next block, got %#x", got)
	}
}

func TestStridePrefetcherRandomNoPrefetch(t *testing.T) {
	p := NewStridePrefetcher(16)
	pc := uint64(0x48)
	addrs := []uint64{100, 9000, 377, 51234, 777}
	fired := 0
	for _, a := range addrs {
		if _, ok := p.Observe(pc, a); ok {
			fired++
		}
	}
	if fired != 0 {
		t.Errorf("random addresses triggered %d prefetches", fired)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(0, DefaultHierConfig(), MemoryBackend{Latency: 400})
	r := h.Read(0x40, 0x10000, 0)
	if r.Source != SrcMemory || r.Latency < 400 {
		t.Errorf("cold read: %+v", r)
	}
	r = h.Read(0x40, 0x10000, 1000)
	if r.Source != SrcL1 || r.Latency != 1 {
		t.Errorf("warm read: %+v", r)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.PrefetchEntries = 0
	h := NewHierarchy(0, cfg, MemoryBackend{Latency: 400})
	r1 := h.Read(0x40, 0x20000, 0)
	// A second access to the same block 10 cycles later, while the miss
	// is outstanding, merges and waits out the remainder.
	r2 := h.Read(0x44, 0x20008, 10)
	if r2.Source != SrcL1 && r2.Source != SrcMSHR {
		t.Errorf("merge source = %v", r2.Source)
	}
	if r2.Source == SrcMSHR && r2.Latency != r1.Latency-10 {
		t.Errorf("merge latency = %d, want %d", r2.Latency, r1.Latency-10)
	}
}

func TestHierarchyInclusionOnL3Eviction(t *testing.T) {
	// Tiny hierarchy: L3 barely bigger than L1 so evictions happen.
	cfg := HierConfig{
		L1I: Config{Size: 1024, Ways: 1, Latency: 1},
		L1D: Config{Size: 1024, Ways: 1, Latency: 1},
		L2:  Config{Size: 2048, Ways: 2, Latency: 7},
		L3:  Config{Size: 4096, Ways: 2, Latency: 15},
	}
	h := NewHierarchy(0, cfg, MemoryBackend{Latency: 100})
	var evicted []uint64
	h.OnL3Evict = func(b uint64) { evicted = append(evicted, b) }
	// Touch many conflicting blocks to force L3 evictions.
	for i := 0; i < 64; i++ {
		h.Read(0x40, uint64(i)*4096, int64(i)*1000)
	}
	if len(evicted) == 0 {
		t.Fatal("no L3 evictions observed")
	}
	// Inclusion: every evicted block must be gone from L1D.
	for _, b := range evicted {
		if h.L1DContains(b) {
			t.Errorf("block %#x evicted from L3 but still in L1D", b)
		}
	}
}

func TestHierarchyPrefetchStreams(t *testing.T) {
	h := NewHierarchy(0, DefaultHierConfig(), MemoryBackend{Latency: 400})
	pc := uint64(0x80)
	// Stream through blocks; after warmup the prefetcher should cover
	// upcoming blocks, so late-stream reads hit.
	misses := 0
	for i := 0; i < 64; i++ {
		addr := 0x100000 + uint64(i)*64
		r := h.Read(pc, addr, int64(i)*500)
		if i > 8 && r.Source != SrcL1 {
			misses++
		}
	}
	if misses > 4 {
		t.Errorf("stream had %d post-warmup misses; prefetcher ineffective", misses)
	}
	if h.Stats.Prefetches == 0 {
		t.Error("no prefetches issued")
	}
}

func TestHierarchySnoopInvalidate(t *testing.T) {
	h := NewHierarchy(0, DefaultHierConfig(), MemoryBackend{Latency: 400})
	h.Read(0x40, 0x30000, 0)
	if !h.SnoopInvalidate(0x30000) {
		t.Error("snoop of present block should hit")
	}
	if h.L1DContains(0x30000) {
		t.Error("snooped block still in L1D")
	}
	if h.SnoopInvalidate(0x99000) {
		t.Error("snoop of absent block should be filtered")
	}
	if h.Stats.SnoopInvalidations != 1 || h.Stats.SnoopMisses != 1 {
		t.Errorf("snoop stats wrong: %+v", h.Stats)
	}
}

func TestHierarchyWriteUpgrade(t *testing.T) {
	h := NewHierarchy(0, DefaultHierConfig(), MemoryBackend{Latency: 400})
	r := h.Write(0x40000, 0)
	if r.Latency < 400 {
		t.Errorf("cold write should miss to memory: %+v", r)
	}
	r = h.Write(0x40000, 500)
	if r.Latency != 1 {
		t.Errorf("owned write should be L1 latency: %+v", r)
	}
}

func TestInstrFetch(t *testing.T) {
	h := NewHierarchy(0, DefaultHierConfig(), MemoryBackend{Latency: 400})
	r := h.InstrFetch(0x10000)
	if r.Latency <= 1 {
		t.Errorf("cold ifetch should miss: %+v", r)
	}
	r = h.InstrFetch(0x10004)
	if r.Latency != 1 {
		t.Errorf("warm ifetch should hit: %+v", r)
	}
	if h.Stats.InstrFetches != 2 || h.Stats.InstrMisses != 1 {
		t.Errorf("ifetch stats: %+v", h.Stats)
	}
}

func TestSourceString(t *testing.T) {
	for s := SrcL1; s <= SrcMSHR; s++ {
		if s.String() == "?" {
			t.Errorf("source %d unnamed", s)
		}
	}
}

func TestInclusionPropertyUnderRandomTraffic(t *testing.T) {
	// Inclusion invariant: any block in L1D is also in L2 and L3,
	// across arbitrary interleavings of reads, writes and snoops.
	cfg := HierConfig{
		L1I: Config{Size: 1024, Ways: 1, Latency: 1},
		L1D: Config{Size: 1024, Ways: 2, Latency: 1},
		L2:  Config{Size: 4096, Ways: 2, Latency: 7},
		L3:  Config{Size: 8192, Ways: 2, Latency: 15},
	}
	h := NewHierarchy(0, cfg, MemoryBackend{Latency: 50})
	touched := map[uint64]bool{}
	rng := uint64(12345)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for i := 0; i < 4000; i++ {
		addr := next(256) * 64
		switch next(4) {
		case 0, 1:
			h.Read(0x40, addr, int64(i)*100)
		case 2:
			h.Write(addr, int64(i)*100)
		case 3:
			h.SnoopInvalidate(addr)
		}
		touched[addr] = true
		if i%64 == 0 {
			for a := range touched {
				if h.l1d.Contains(a) && (!h.l2.Contains(a) || !h.l3.Contains(a)) {
					t.Fatalf("inclusion violated for %#x at step %d", a, i)
				}
				if h.l2.Contains(a) && !h.l3.Contains(a) {
					t.Fatalf("L2⊆L3 violated for %#x at step %d", a, i)
				}
			}
		}
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tlb := NewTLB(8, 2, 30) // 4 sets × 2 ways
	if lat := tlb.Translate(0x1000); lat != 30 {
		t.Errorf("cold translation latency = %d, want 30", lat)
	}
	if lat := tlb.Translate(0x1008); lat != 0 {
		t.Errorf("same-page hit latency = %d", lat)
	}
	// Three pages in one set (stride = sets × pagesize = 4×4096).
	p0, p1, p2 := uint64(0), uint64(4*4096), uint64(8*4096)
	tlb.Translate(p0)
	tlb.Translate(p1)
	tlb.Translate(p0) // p0 MRU
	if lat := tlb.Translate(p2); lat != 30 {
		t.Fatalf("conflict miss expected")
	}
	if lat := tlb.Translate(p0); lat != 0 {
		t.Error("MRU page evicted")
	}
	if lat := tlb.Translate(p1); lat != 30 {
		t.Errorf("LRU page should have been the victim (lat=%d)", lat)
	}
	if tlb.MissRate() <= 0 || tlb.MissRate() >= 1 {
		t.Errorf("MissRate = %v", tlb.MissRate())
	}
}

func TestTLBBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewTLB(12, 4, 30) // 3 sets: not a power of two
}

func TestReplayReadSkipsTLB(t *testing.T) {
	// The paper §3: replay accesses reuse the premature translation.
	h := NewHierarchy(0, DefaultHierConfig(), MemoryBackend{Latency: 400})
	h.Read(0x40, 0x100000, 0)
	demand := h.DataTLB().Accesses
	h.ReadReplay(0x100000, 100)
	h.ReadReplay(0x200000, 200) // even a new page: no translation
	if h.DataTLB().Accesses != demand {
		t.Errorf("replay accesses translated: %d -> %d", demand, h.DataTLB().Accesses)
	}
}

func TestDemandReadPaysTLBWalk(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.PrefetchEntries = 0
	h := NewHierarchy(0, cfg, MemoryBackend{Latency: 400})
	// Warm the cache block, then invalidate the TLB's view by touching
	// many distinct pages mapping to every set.
	h.Read(0x40, 0x100000, 0)
	r := h.Read(0x40, 0x100000, 1000)
	if r.Latency != cfg.L1D.Latency {
		t.Fatalf("warm read should be L1 + TLB hit: %+v", r)
	}
	for i := 1; i <= 4096; i++ {
		h.Read(0x40, 0x100000+uint64(i)<<PageShift, int64(1000+i*500))
	}
	r = h.Read(0x40, 0x100000, 9_000_000)
	if r.Latency < cfg.TLBWalkLatency {
		t.Errorf("TLB-cold read should pay the walk: %+v", r)
	}
}
