// Package cache models the Table 3 cache hierarchy as a timing filter:
// set-associative tag arrays with LRU replacement, an inclusive
// three-level private hierarchy, MSHR-style miss merging, and a
// Power4-style stride prefetcher. Data values live in the shared memory
// image (package prog); the caches decide only *latency* and *coherence
// events*, which is all the memory-ordering mechanisms consume.
package cache

// BlockSize is the cache block size in bytes (Table 3: 64-byte lines).
const BlockSize = 64

// BlockAddr returns the block-aligned address containing addr.
func BlockAddr(addr uint64) uint64 { return addr &^ (BlockSize - 1) }

// Config describes one cache level.
type Config struct {
	// Size is the capacity in bytes.
	Size int
	// Ways is the set associativity (1 = direct mapped).
	Ways int
	// Latency is the access latency in cycles.
	Latency int
}

type line struct {
	tag   uint64
	valid bool
	age   uint32 // lower is more recently used
}

// Array is a set-associative tag array with true-LRU replacement. It
// tracks presence only; block data lives in the memory image.
type Array struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	tick    uint32
	// arena is the tail of the current line-storage chunk; newSet carves
	// lazily-materialized sets out of it (see NewArray).
	arena []line
	// Accesses, Hits count Lookup calls and their hits.
	Accesses, Hits uint64
}

// NewArray builds a tag array. Size/BlockSize/Ways must divide evenly;
// the set count must be a power of two. Per-set line storage is
// allocated lazily on first Insert: a large lightly-used array (an 8 MB
// L3 per core) costs memory proportional to its touched footprint, and
// construction-heavy paths (one fresh hierarchy per experiment cell)
// stop paying for sets the run never references. A nil set behaves
// exactly like a set of invalid lines.
func NewArray(cfg Config) *Array {
	nsets := cfg.Size / BlockSize / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	return &Array{cfg: cfg, setMask: uint64(nsets - 1), sets: make([][]line, nsets)}
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

func (a *Array) setIndex(addr uint64) uint64 {
	return (addr / BlockSize) & a.setMask
}

// arenaSets is how many sets each storage chunk holds. Chunking keeps
// first-touch materialization amortized (one allocation per arenaSets
// sets) so a workload that keeps expanding its footprint does not pay
// one heap allocation per newly-touched set in steady state.
const arenaSets = 256

// newSet materializes storage for one set.
func (a *Array) newSet() []line {
	w := a.cfg.Ways
	if len(a.arena) < w {
		chunk := arenaSets
		if n := int(a.setMask) + 1; n < chunk {
			chunk = n
		}
		a.arena = make([]line, chunk*w)
	}
	s := a.arena[:w:w]
	a.arena = a.arena[w:]
	return s
}

func (a *Array) set(addr uint64) []line {
	return a.sets[a.setIndex(addr)]
}

// Lookup probes for addr's block, updating LRU and hit statistics.
func (a *Array) Lookup(addr uint64) bool {
	a.Accesses++
	tag := BlockAddr(addr)
	set := a.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			a.tick++
			set[i].age = a.tick
			a.Hits++
			return true
		}
	}
	return false
}

// Contains probes for addr's block without disturbing LRU or statistics.
func (a *Array) Contains(addr uint64) bool {
	tag := BlockAddr(addr)
	for _, l := range a.set(addr) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Insert fills addr's block, returning the evicted block address if a
// valid victim was displaced.
func (a *Array) Insert(addr uint64) (victim uint64, evicted bool) {
	tag := BlockAddr(addr)
	si := a.setIndex(addr)
	set := a.sets[si]
	if set == nil {
		set = a.newSet()
		a.sets[si] = set
	}
	a.tick++
	vi := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].age = a.tick // already present: refresh
			return 0, false
		}
		if !set[i].valid {
			vi = i
		} else if set[vi].valid && set[i].age < set[vi].age {
			vi = i
		}
	}
	if set[vi].valid {
		victim, evicted = set[vi].tag, true
	}
	set[vi] = line{tag: tag, valid: true, age: a.tick}
	return victim, evicted
}

// Invalidate removes addr's block, reporting whether it was present.
func (a *Array) Invalidate(addr uint64) bool {
	tag := BlockAddr(addr)
	set := a.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			return true
		}
	}
	return false
}

// MissRate returns 1 - hits/accesses.
func (a *Array) MissRate() float64 {
	if a.Accesses == 0 {
		return 0
	}
	return 1 - float64(a.Hits)/float64(a.Accesses)
}
