// Quickstart: build a value-based-replay machine, run a workload, and
// print the headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

func main() {
	// Pick a workload from the catalog (a synthetic stand-in for the
	// paper's SPEC CPU2000 gcc; see DESIGN.md §2).
	work, ok := workload.ByName("gcc")
	if !ok {
		panic("workload catalog missing gcc")
	}

	// Build the paper's best machine: value-based replay with the
	// no-recent-snoop + no-unresolved-store filters, on the Table 3
	// core (8-wide, 256-entry ROB, 5 GHz memory system).
	cfg := config.Replay(core.NoRecentSnoop)
	opt := system.Options{
		Cores:       1,
		Seed:        42,
		DMAInterval: 4000, // coherent I/O traffic, as in the paper
		DMABurst:    2,
	}
	sys := system.New(cfg, work, opt)

	// Run 100k instructions (50k warmup + 100k measured).
	sys.Run(50_000, opt)
	sys.ResetStats()
	res := sys.Run(100_000, opt)

	fmt.Printf("machine:   %s\n", res.Machine)
	fmt.Printf("workload:  %s\n", res.Workload)
	fmt.Printf("IPC:       %.3f\n", res.IPC)
	fmt.Printf("loads:     %d (%.1f%% of committed)\n",
		res.Pipe.CommittedLoads,
		100*float64(res.Pipe.CommittedLoads)/float64(res.Pipe.Committed))
	fmt.Printf("replays:   %d (%.4f per committed instruction; paper: 0.02)\n",
		res.Pipe.ReplayAccesses,
		float64(res.Pipe.ReplayAccesses)/float64(res.Pipe.Committed))

	eng := sys.Cores[0].Engine()
	fmt.Printf("filtered:  %d of %d loads (%.1f%%) skipped the replay cache access\n",
		eng.Stats.Filtered, eng.Stats.LoadsSeen,
		100*float64(eng.Stats.Filtered)/float64(eng.Stats.LoadsSeen))
	fmt.Printf("mismatches (ordering violations caught by value comparison): %d\n",
		eng.Stats.Mismatches)
}
