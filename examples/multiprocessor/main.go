// Multiprocessor demonstration: run a SPLASH-2-like shared-memory
// workload on several processors under the no-recent-snoop replay
// configuration, verify the committed execution is sequentially
// consistent with the constraint-graph checker (paper §3.1, Figure 4),
// and show the filter's external-event window at work.
//
//	go run ./examples/multiprocessor
package main

import (
	"fmt"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

func main() {
	work, _ := workload.ByName("radiosity")
	opt := system.Options{
		Cores:            4,
		Seed:             2026,
		DMAInterval:      4000,
		DMABurst:         2,
		TrackConsistency: true, // record provenance for the SC checker
	}

	cfg := config.Replay(core.NoRecentSnoop)
	s := system.New(cfg, work, opt)
	res := s.Run(10_000, opt)

	fmt.Printf("%d-way MP, %s on %s\n", opt.Cores, res.Machine, res.Workload)
	fmt.Printf("aggregate committed: %d, mean IPC %.3f, cycles %d\n\n",
		res.Pipe.Committed, res.IPC, res.Cycles)

	for i, c := range s.Cores {
		eng := c.Engine()
		hs := c.Hierarchy().Stats
		fmt.Printf("core %d: loads=%d replays=%d (%.1f%%) snoop-events=%d remote-fills=%d cons-squash=%d\n",
			i, c.Stats.CommittedLoads, eng.Stats.Replays,
			100*float64(eng.Stats.Replays)/float64(max(1, eng.Stats.LoadsSeen)),
			eng.Stats.WindowEvents, hs.RemoteFills,
			c.Stats.SquashesReplayCons)
	}

	// The back-end consistency checker: build the constraint graph over
	// every committed memory operation and test it for a cycle. An
	// acyclic graph proves this execution has a total order — it is
	// (value-)sequentially consistent.
	op, cyclic, g := s.CheckSC()
	fmt.Printf("\n%s\n", g)
	if cyclic {
		fmt.Printf("VIOLATION at proc %d op %d addr %#x — this must never happen "+
			"with a sound filter configuration\n", op.Proc, op.Index, op.Addr)
	} else {
		fmt.Println("execution verified sequentially consistent ✓")
	}

	// Contrast: the deliberately mis-composed NUS-only filter (paper
	// §3.3 explains why the RAW filter alone is unsound in
	// multiprocessors). Under contention it eventually commits a stale
	// value and the checker catches it.
	fmt.Println("\nhunting for a violation with the unsound NUS-only filter...")
	hot := work
	hot.SharedFrac = 0.5
	hot.HotFrac = 0.9
	hot.FalseSharing = 0
	for seed := uint64(1); seed <= 10; seed++ {
		o := opt
		o.Seed = seed
		s2 := system.New(config.Replay(core.NUSOnly), hot, o)
		s2.Run(5_000, o)
		if op2, cyc, _ := s2.CheckSC(); cyc {
			fmt.Printf("seed %d: SC violation detected at proc %d op %d addr %#x "+
				"— the consistency filters are not optional\n",
				seed, op2.Proc, op2.Index, op2.Addr)
			return
		}
	}
	fmt.Println("no violation surfaced in 10 seeds (contention-dependent)")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
