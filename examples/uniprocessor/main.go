// Uniprocessor comparison: run one workload on the conventional
// associative-load-queue baseline and on every value-based replay
// filter configuration, and show where the replay machine's costs and
// savings come from — including the store-value-locality effect that
// lets replay skip squashes an address-matching load queue must take.
//
//	go run ./examples/uniprocessor [workload]
package main

import (
	"fmt"
	"os"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

func run(cfg config.Machine, work workload.Params) system.Result {
	opt := system.Options{Cores: 1, Seed: 7, DMAInterval: 4000, DMABurst: 2}
	s := system.New(cfg, work, opt)
	s.Run(40_000, opt)
	s.ResetStats()
	return s.Run(80_000, opt)
}

func main() {
	name := "vortex"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	work, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try: go run ./cmd/vbrsim -list)\n", name)
		os.Exit(1)
	}
	if work.Multi {
		fmt.Fprintf(os.Stderr, "%s is a multiprocessor workload; see examples/multiprocessor\n", name)
		os.Exit(1)
	}

	base := run(config.Baseline(), work)
	fmt.Printf("workload %s: baseline IPC %.3f (store-set predictor, %d-entry snooping LQ)\n\n",
		name, base.IPC, config.Baseline().LQSize)
	fmt.Printf("%-18s %8s %10s %12s %12s %10s\n",
		"configuration", "IPC", "rel.", "replays", "extra-L1D%", "squashes")

	baseAccesses := float64(base.Pipe.TotalL1DAccesses())
	for _, f := range []core.Filter{core.ReplayAll, core.NoReorder, core.NoRecentMiss, core.NoRecentSnoop} {
		r := run(config.Replay(f), work)
		fmt.Printf("%-18s %8.3f %9.1f%% %12d %11.1f%% %10d\n",
			f, r.IPC, 100*r.IPC/base.IPC,
			r.Pipe.ReplayAccesses,
			100*float64(r.Pipe.ReplayAccesses)/baseAccesses,
			r.Pipe.SquashesReplayRAW+r.Pipe.SquashesReplayCons)
	}

	fmt.Printf("\nbaseline RAW squashes (address-match): %d\n", base.Pipe.SquashesRAW)
	rep := run(config.Replay(core.ReplayAll), work)
	fmt.Printf("replay RAW squashes (value-mismatch):  %d\n", rep.Pipe.SquashesReplayRAW)
	if base.Pipe.SquashesRAW > 0 {
		saved := 1 - float64(rep.Pipe.SquashesReplayRAW)/float64(base.Pipe.SquashesRAW)
		fmt.Printf("squashes avoided by store value locality: %.0f%% (paper §5.1: 59%%)\n", 100*saved)
	}
	fmt.Printf("silent stores: %.1f%% of committed stores\n",
		100*float64(base.Pipe.SilentStores)/float64(base.Pipe.CommittedStores))
}
